// Table 1: differences between claimed and observed blockchain performance.
// For each of Algorand, Avalanche and Solana the bench reruns the chain in
// the setup where the paper observed its best numbers and prints claimed vs
// measured throughput and latency side by side (§2). The three probes run
// as parallel cells.
#include <vector>

#include "bench/bench_util.h"
#include "src/chains/registry.h"

namespace diablo {
namespace {

// Probe rates chosen to expose each chain's peak (offered load above its
// ceiling), as the paper's best-of-all-configurations numbers were.
struct Probe {
  const char* chain;
  double tps;
};

void Run() {
  PrintHeader("Table 1 — claimed vs observed performance");
  const double scale = ScaleFromEnv();
  const std::vector<Probe> probes = {
      {"algorand", 1500}, {"avalanche", 1000}, {"solana", 2000}};

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const Probe& probe : probes) {
    const ClaimedPerformance* claim = FindClaim(probe.chain);
    const std::string chain = probe.chain;
    const std::string setup = claim->observed_setup;
    const double tps = probe.tps;
    cells.push_back({chain, [chain, setup, tps, scale] {
                       return RunNativeBenchmark(chain, setup, tps, 120,
                                                 /*seed=*/1, scale);
                     }});
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  std::printf("%-10s %18s %12s %8s | %12s %10s %12s\n", "chain", "claimed tput",
              "claimed lat", "setup", "observed", "latency", "setup");
  for (size_t i = 0; i < probes.size(); ++i) {
    const ClaimedPerformance* claim = FindClaim(probes[i].chain);
    const RunResult& result = results[i];
    std::printf("%-10s %18s %12s %8s | %8.0f TPS %8.1f s %12s\n", probes[i].chain,
                claim->claimed_throughput.c_str(), claim->claimed_latency.c_str(),
                claim->claimed_setup.c_str(), result.report.avg_throughput,
                result.report.avg_latency, claim->observed_setup.c_str());
  }
  std::printf(
      "\npaper observations: Algorand 885 TPS / 8.5 s (testnet), Avalanche\n"
      "323 TPS / 49 s (datacenter), Solana 8,845 TPS / 12 s (datacenter) —\n"
      "all orders of magnitude under the claims, which is the table's point.\n");
  FinishRunnerReport("table1_claimed_vs_observed", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
