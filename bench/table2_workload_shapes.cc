// Table 2: the five DApps and their workload shapes (submitted transactions
// per second over time), regenerated from the trace generators (§3).
#include "bench/bench_util.h"
#include "src/workload/dapps.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader("Table 2 — DApps and their real-trace workloads");
  std::printf("%-10s %-10s %-25s %8s %9s %9s %10s\n", "DApp", "contract", "trace",
              "secs", "avg TPS", "peak TPS", "total txs");
  for (const std::string& name : AllDappNames()) {
    const DappWorkload dapp = GetDappWorkload(name);
    const Trace& trace = dapp.trace;
    std::printf("%-10s %-10s %-25s %8zu %9.0f %9.0f %10.0f\n", name.c_str(),
                dapp.contract.c_str(), trace.name.c_str(), trace.duration_seconds(),
                trace.AverageTps(), trace.PeakTps(), trace.TotalTxs());
  }
  std::printf("\nsubmission-rate profiles (each row spans the trace duration):\n");
  for (const std::string& name : AllDappNames()) {
    const Trace trace = GetDappWorkload(name).trace;
    std::printf("%-10s |%s| peak %.0f TPS\n", name.c_str(),
                Sparkline(trace.tps, 60).c_str(), trace.PeakTps());
  }
  std::printf("\nNASDAQ per-stock opening bursts (first second):\n");
  for (const char* stock : {"google", "amazon", "facebook", "microsoft", "apple"}) {
    const Trace trace = GetTrace(stock);
    std::printf("%-10s |%s| burst %.0f TPS\n", stock, Sparkline(trace.tps, 60).c_str(),
                trace.tps[0]);
  }
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
