// Figure 6: CDF of transaction latencies under the NASDAQ per-stock load
// peaks — Google (800 tx in the first second), Microsoft (4,000) and Apple
// (10,000) — on the consortium configuration (§6.5). A CDF that plateaus
// below 100% means the chain dropped the remaining transactions.
#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Figure 6 — availability under load peaks (NASDAQ per-stock bursts)\n"
      "CDF of transaction latencies; plateau < 100% = dropped transactions");
  const double scale = ScaleFromEnv();

  for (const char* stock : {"google", "microsoft", "apple"}) {
    std::printf("\n--- %s workload ---\n", stock);
    std::printf("%-10s %9s %9s %9s %9s %9s %9s  %s\n", "chain", "p25", "p50", "p75",
                "p90", "max(s)", "commit%", "latency CDF sparkline");
    for (const std::string& chain : AllChainNames()) {
      const RunResult result =
          RunDappBenchmark(chain, "consortium", stock, /*seed=*/1, scale);
      const Report& r = result.report;
      std::vector<double> cdf;
      for (const auto& [x, frac] : r.latencies.CdfSeries(40)) {
        (void)x;
        cdf.push_back(frac * r.commit_ratio);  // plateau at the commit ratio
      }
      std::printf("%-10s %9.1f %9.1f %9.1f %9.1f %9.1f %8.1f%%  |%s|\n", chain.c_str(),
                  r.latencies.Percentile(0.25), r.latencies.Percentile(0.5),
                  r.latencies.Percentile(0.75), r.latencies.Percentile(0.9),
                  r.max_latency, 100.0 * r.commit_ratio,
                  Sparkline(cdf, 40).c_str());
      std::fflush(stdout);
    }
  }
  std::printf(
      "\npaper shapes: Quorum commits 100%% on all three bursts (91%% within 8 s\n"
      "on Apple); Diem plateaus at ~75%% (all < 30 s); Algorand ~77%% and Solana\n"
      "~52%% on Apple; Avalanche ~90%% but with latencies up to 162 s; Ethereum\n"
      "slowest on Google (~118 s) and ~64%% on Microsoft.\n");
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
