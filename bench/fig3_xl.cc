// Figure 3-XL: the validator axis pushed two orders of magnitude past the
// paper's committee sizes — 1k/5k/10k validators under a constant native
// workload, for the three engines whose message complexity stays tractable
// at that scale (HotStuff's linear leader rounds, Algorand's committee
// sortition, Avalanche's constant-size peer samples).
//
// Deployments this large take the streamed O(n)-byte delay model (see
// docs/performance.md) instead of the n×n matrix: at 10k validators the
// matrix alone would cost ~1.6 GB, more than the whole 1-vCPU container.
// DIABLO_XL_MAX_N caps the validator axis (CI smoke runs use 1000).
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "src/support/strings.h"

namespace diablo {
namespace {

int64_t MaxNFromEnv() {
  const char* raw = std::getenv("DIABLO_XL_MAX_N");
  int64_t value = 0;
  if (raw != nullptr && ParseInt64(raw, &value) && value > 0) {
    return value;
  }
  return 10000;
}

void Run() {
  PrintHeader(
      "Figure 3-XL — validator-axis scalability: 100 TPS native transfers, 30 s\n"
      "(throughput TPS / latency s per validator count)");
  const double scale = ScaleFromEnv();
  const int64_t max_n = MaxNFromEnv();
  const std::vector<int> counts_all = {1000, 5000, 10000};
  std::vector<int> counts;
  for (const int n : counts_all) {
    if (n <= max_n) {
      counts.push_back(n);
    }
  }
  // diem = HotStuff, per Table 4.
  const std::vector<std::string> chains = {"diem", "algorand", "avalanche"};

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const std::string& chain : chains) {
    for (const int n : counts) {
      const std::string deployment = "xl-" + std::to_string(n);
      cells.push_back({chain + "/" + deployment, [chain, deployment, scale] {
                         return RunNativeBenchmark(chain, deployment, 100, 30,
                                                   /*seed=*/1, scale);
                       }});
    }
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  std::printf("%-10s", "chain");
  for (const int n : counts) {
    std::printf("  %16d nodes", n);
  }
  std::printf("\n");
  size_t cell = 0;
  for (const std::string& chain : chains) {
    std::printf("%-10s", chain.c_str());
    for (size_t c = 0; c < counts.size(); ++c, ++cell) {
      const RunResult& result = results[cell];
      std::printf("  %9.0f TPS %6.1f s", result.report.avg_throughput,
                  result.report.avg_latency);
    }
    std::printf("\n");
  }
  FinishRunnerReport("fig3_xl", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
