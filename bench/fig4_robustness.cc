// Figure 4: throughput and latency of each blockchain when stressed with a
// constant workload of 1,000 TPS versus 10,000 TPS, each deployed in the
// configuration where it performs best at 1,000 TPS (§6.3). Both load
// points of every chain run as independent parallel cells.
#include <vector>

#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

// Best configurations per §6.2's results (Table 1 setups for the three
// chains it lists).
const char* BestDeployment(const std::string& chain) {
  if (chain == "algorand") {
    return "testnet";
  }
  if (chain == "ethereum") {
    return "testnet";
  }
  return "datacenter";
}

void Run() {
  PrintHeader(
      "Figure 4 — robustness: 1,000 vs 10,000 TPS constant workload, 120 s\n"
      "(each chain in its best configuration)");
  const double scale = ScaleFromEnv();
  const std::vector<std::string> chains = AllChainNames();
  const std::vector<double> loads = {1000, 10000};

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const std::string& chain : chains) {
    const std::string deployment = BestDeployment(chain);
    for (const double load : loads) {
      cells.push_back({chain + "@" + std::to_string(static_cast<int>(load)),
                       [chain, deployment, load, scale] {
                         return RunNativeBenchmark(chain, deployment, load, 120,
                                                   /*seed=*/1, scale);
                       }});
    }
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  std::printf("%-10s %-11s %26s %26s %10s\n", "chain", "config", "1,000 TPS",
              "10,000 TPS", "ratio");
  for (size_t i = 0; i < chains.size(); ++i) {
    const std::string& chain = chains[i];
    const RunResult& low = results[2 * i];
    const RunResult& high = results[2 * i + 1];
    const double ratio = high.report.avg_throughput > 0
                             ? low.report.avg_throughput / high.report.avg_throughput
                             : 0.0;
    std::printf("%-10s %-11s %10.0f TPS %8.1f s %10.0f TPS %8.1f s   /%.2f\n",
                chain.c_str(), BestDeployment(chain), low.report.avg_throughput,
                low.report.avg_latency, high.report.avg_throughput,
                high.report.avg_latency, ratio);
    if (chain == "ethereum") {
      std::printf("%-10s %-11s   commit ratio at 10,000 TPS: %.2f%%\n", "", "",
                  100.0 * high.report.commit_ratio);
    }
  }
  std::printf(
      "\npaper shapes: Diem /10, Quorum -> ~0, Algorand /1.45, Solana /1.94,\n"
      "Avalanche not degraded (x1.38), Ethereum commits 0.09%% at 10k TPS.\n");
  FinishRunnerReport("fig4_robustness", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
