// Table 3: the five deployment configurations (left) and the inter-region
// round-trip time / bandwidth matrix (right). The matrix is re-measured
// iperf3-style through the simulated network — small probes for RTT, a
// large transfer for achieved bandwidth — and printed in the paper's
// layout: bandwidth above the diagonal, RTT below.
#include "bench/bench_util.h"
#include "src/net/deployment.h"
#include "src/net/network.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader("Table 3 — deployment configurations and measured network matrix");

  std::printf("%-12s %7s %8s %8s  %s\n", "config", "nodes", "vCPUs", "memory",
              "regions");
  for (const DeploymentConfig& deployment : AllDeployments()) {
    std::printf("%-12s %7d %8d %5d GiB  %zu\n", deployment.name.c_str(),
                deployment.node_count, deployment.machine.vcpus,
                deployment.machine.memory_gib, deployment.regions.size());
  }

  Simulation sim(1);
  Network net(&sim, /*jitter_frac=*/0.0);
  std::vector<HostId> hosts;
  for (const Region region : AllRegions()) {
    hosts.push_back(net.AddHost(region));
  }

  std::printf("\nmeasured matrix: bandwidth Mbps above diagonal, RTT ms below\n");
  std::printf("%-11s", "");
  for (const Region region : AllRegions()) {
    std::printf("%9.7s", std::string(RegionName(region)).c_str());
  }
  std::printf("\n");
  for (int i = 0; i < kRegionCount; ++i) {
    std::printf("%-11s", std::string(RegionName(static_cast<Region>(i))).c_str());
    for (int j = 0; j < kRegionCount; ++j) {
      if (i == j) {
        std::printf("%9s", "-");
        continue;
      }
      if (i < j) {
        // iperf-style: 8 MB bulk transfer; bandwidth from transfer time
        // minus propagation.
        const int64_t bytes = 8'000'000;
        const SimDuration total = net.DelaySample(hosts[i], hosts[j], bytes);
        const SimDuration prop = net.DelaySample(hosts[i], hosts[j], 1);
        const double seconds = ToSeconds(total - prop);
        std::printf("%9.1f", 8.0 * static_cast<double>(bytes) / (seconds * 1e6));
      } else {
        // Ping: round trip of a 64-byte probe.
        const SimDuration rtt = net.DelaySample(hosts[i], hosts[j], 64) +
                                net.DelaySample(hosts[j], hosts[i], 64);
        std::printf("%9.1f", ToMilliseconds(rtt));
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
