// Figure 3: average throughput and average latency of each blockchain under
// a constant 1,000 TPS native-transfer workload for 120 s, on the
// datacenter, testnet, devnet and community configurations (§6.2).
//
// Every (chain, deployment) cell is independent, so the whole matrix fans
// out across DIABLO_JOBS workers; results are bit-identical to a serial run.
#include <vector>

#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Figure 3 — scalability: 1,000 TPS native transfers, 120 s\n"
      "(throughput TPS / latency s per deployment configuration)");
  const double scale = ScaleFromEnv();
  const std::vector<std::string> deployments = {"datacenter", "testnet", "devnet",
                                                "community"};
  const std::vector<std::string> chains = AllChainNames();

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const std::string& chain : chains) {
    for (const std::string& deployment : deployments) {
      cells.push_back({chain + "/" + deployment, [chain, deployment, scale] {
                         return RunNativeBenchmark(chain, deployment, 1000, 120,
                                                   /*seed=*/1, scale);
                       }});
    }
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  std::printf("%-10s", "chain");
  for (const std::string& deployment : deployments) {
    std::printf("  %22s", deployment.c_str());
  }
  std::printf("\n");
  size_t cell = 0;
  for (const std::string& chain : chains) {
    std::printf("%-10s", chain.c_str());
    for (size_t d = 0; d < deployments.size(); ++d, ++cell) {
      const RunResult& result = results[cell];
      std::printf("  %9.0f TPS %6.1f s", result.report.avg_throughput,
                  result.report.avg_latency);
    }
    std::printf("\n");
  }
  FinishRunnerReport("fig3_scalability", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
