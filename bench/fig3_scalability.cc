// Figure 3: average throughput and average latency of each blockchain under
// a constant 1,000 TPS native-transfer workload for 120 s, on the
// datacenter, testnet, devnet and community configurations (§6.2).
#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Figure 3 — scalability: 1,000 TPS native transfers, 120 s\n"
      "(throughput TPS / latency s per deployment configuration)");
  const double scale = ScaleFromEnv();
  const char* deployments[] = {"datacenter", "testnet", "devnet", "community"};

  std::printf("%-10s", "chain");
  for (const char* deployment : deployments) {
    std::printf("  %22s", deployment);
  }
  std::printf("\n");

  for (const std::string& chain : AllChainNames()) {
    std::printf("%-10s", chain.c_str());
    for (const char* deployment : deployments) {
      const RunResult result =
          RunNativeBenchmark(chain, deployment, 1000, 120, /*seed=*/1, scale);
      std::printf("  %9.0f TPS %6.1f s", result.report.avg_throughput,
                  result.report.avg_latency);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
