// Ablations over the design choices DESIGN.md calls out:
//   A. Solana commitment depth: 1 vs 30 confirmations (latency floor).
//   B. Quorum mempool policy: never-drop (IBFT) vs a bounded pool, under
//      the 10,000 TPS flood of §6.3.
//   C. Avalanche block period: the ~1.9 s throttle vs faster production.
//   D. Clique block period sweep (Ethereum).
//   E. Gossip batching interval (dissemination latency vs message count).
#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

RunResult RunWith(const ChainParams& params, const std::string& deployment, double tps,
                  int seconds, double scale) {
  BenchmarkSetup setup;
  setup.chain = params.name;
  setup.params = params;
  setup.deployment = deployment;
  setup.scale = scale;
  Primary primary(setup);
  return primary.RunNative(ConstantTrace(tps, seconds));
}

void AblateSolanaConfirmations(double scale) {
  std::printf("\nA. Solana commitment depth (datacenter, 1,000 TPS):\n");
  for (const int depth : {1, 10, 30}) {
    ChainParams params = GetChainParams("solana");
    params.confirmation_depth = depth;
    const RunResult result = RunWith(params, "datacenter", 1000, 60, scale);
    std::printf("  %2d confirmations: latency %6.2f s, throughput %7.1f TPS\n", depth,
                result.report.avg_latency, result.report.avg_throughput);
  }
  std::printf("  -> the 30-confirmation rule (§5.2), not consensus, dominates the"
              " ~13 s latency.\n");
}

void AblateQuorumMempool(double scale) {
  std::printf("\nB. Quorum mempool policy under a 10,000 TPS flood (datacenter):\n");
  {
    const RunResult result =
        RunWith(GetChainParams("quorum"), "datacenter", 10000, 120, scale);
    std::printf("  never-drop (IBFT design): throughput %7.1f TPS, %llu view changes\n",
                result.report.avg_throughput,
                static_cast<unsigned long long>(result.chain_stats.view_changes));
  }
  {
    ChainParams params = GetChainParams("quorum");
    params.mempool.global_cap = 20000;  // drop excess instead of hoarding it
    params.proposal_overhead_quadratic = 0;
    const RunResult result = RunWith(params, "datacenter", 10000, 120, scale);
    std::printf("  bounded pool (cap 20k):   throughput %7.1f TPS, commit %5.1f%%\n",
                result.report.avg_throughput, 100.0 * result.report.commit_ratio);
  }
  std::printf("  -> never dropping a request is what turns overload into collapse"
              " (§6.3).\n");
}

void AblateAvalanchePeriod(double scale) {
  std::printf("\nC. Avalanche block period (datacenter, 1,000 TPS):\n");
  for (const double period_s : {0.5, 1.9, 5.0}) {
    ChainParams params = GetChainParams("avalanche");
    params.block_interval = SecondsF(period_s);
    const RunResult result = RunWith(params, "datacenter", 1000, 60, scale);
    std::printf("  period %.1f s: throughput %7.1f TPS, latency %6.1f s\n", period_s,
                result.report.avg_throughput, result.report.avg_latency);
  }
  std::printf("  -> the >=1.9 s throttle plus the 8M-gas cap pins Avalanche's"
              " ceiling (§6.2).\n");
}

void AblateCliquePeriod(double scale) {
  std::printf("\nD. Ethereum Clique block period (testnet, 500 TPS):\n");
  for (const int period_s : {1, 5, 15}) {
    ChainParams params = GetChainParams("ethereum");
    params.block_interval = Seconds(period_s);
    const RunResult result = RunWith(params, "testnet", 500, 60, scale);
    std::printf("  period %2d s: throughput %7.1f TPS, latency %6.1f s\n", period_s,
                result.report.avg_throughput, result.report.avg_latency);
  }
}

void AblateSignatureScheme(double scale) {
  std::printf("\nF. Signature scheme (Avalanche, 1,000 TPS x 120 s pre-signing):\n");
  std::printf("   (the paper's setup initially used RSA4096 as recommended and the\n"
              "    signing 'was taking too long due to the scale', §5.2)\n");
  // Diablo pre-signs the whole workload before the benchmark starts: the
  // wall-clock cost of that setup phase is what broke RSA4096.
  const double txs = 1000.0 * 120.0 * scale;
  const double worker_cores = 10 * 4;  // 10 secondaries on c5.xlarge
  for (const SignatureScheme scheme :
       {SignatureScheme::kEcdsa, SignatureScheme::kEd25519, SignatureScheme::kRsa4096}) {
    const SignatureCost cost = CostOf(scheme);
    const double presign_s = txs * ToSeconds(cost.sign) / worker_cores;
    std::printf("  %-8s sign %6.2f ms/tx -> pre-signing the workload takes %7.1f s"
                " (%d-byte signatures)\n",
                scheme == SignatureScheme::kEcdsa     ? "ECDSA"
                : scheme == SignatureScheme::kEd25519 ? "Ed25519"
                                                      : "RSA4096",
                ToMilliseconds(cost.sign), presign_s, cost.bytes);
  }
  std::printf("  -> verification cost barely moves the chain; signing cost breaks"
              " the harness.\n");
}

void AblateGossipBatching(double scale) {
  std::printf("\nE. Gossip batch interval (quorum, devnet, 800 TPS):\n");
  for (const int batch_ms : {10, 200, 1000}) {
    ChainParams params = GetChainParams("quorum");
    params.gossip_batch_interval = Milliseconds(batch_ms);
    const RunResult result = RunWith(params, "devnet", 800, 60, scale);
    std::printf("  batch %4d ms: latency %5.2f s, throughput %7.1f TPS\n", batch_ms,
                result.report.avg_latency, result.report.avg_throughput);
  }
  std::printf("  -> batching adds half an interval of latency; it exists to bound"
              " message counts.\n");
}

void AblateCommitDetection(double scale) {
  std::printf("\nH. Client commit-detection interval (Algorand, testnet, 500 TPS):\n");
  std::printf("   (§5.2: diablo switched from Algorand's blocking API to polling\n"
              "    every appended block, 'which improved significantly Algorand's\n"
              "    performance')\n");
  for (const int poll_ms : {100, 500, 2000, 5000}) {
    ChainParams params = GetChainParams("algorand");
    params.client_poll_interval = Milliseconds(poll_ms);
    const RunResult result = RunWith(params, "testnet", 500, 60, scale);
    std::printf("  poll %4d ms: observed latency %5.2f s, throughput %6.1f TPS\n",
                poll_ms, result.report.avg_latency, result.report.avg_throughput);
  }
  std::printf("  -> a blocking per-transaction wait behaves like a multi-second\n"
              "     detection interval and inflates every measured latency.\n");
}

void AblateLeaderlessBft(double scale) {
  std::printf("\nG. Leader-based vs leaderless deterministic BFT at 10,000 TPS"
              " (datacenter):\n");
  std::printf("   (§6.3/§6.6: Smart Red Belly's leaderless DBFT 'is immune to"
              " this problem')\n");
  for (const char* chain : {"quorum", "redbelly"}) {
    const RunResult result = RunWith(GetChainParams(chain), "datacenter", 10000,
                                     120, scale);
    std::printf("  %-9s (%s): throughput %7.1f TPS, latency %6.1f s,"
                " %llu view changes\n",
                chain, GetChainParams(chain).consensus_name.c_str(),
                result.report.avg_throughput, result.report.avg_latency,
                static_cast<unsigned long long>(result.chain_stats.view_changes));
  }
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::PrintHeader("Ablations — design choices called out in DESIGN.md");
  const double scale = diablo::ScaleFromEnv();
  diablo::AblateSolanaConfirmations(scale);
  diablo::AblateQuorumMempool(scale);
  diablo::AblateAvalanchePeriod(scale);
  diablo::AblateCliquePeriod(scale);
  diablo::AblateSignatureScheme(scale);
  diablo::AblateGossipBatching(scale);
  diablo::AblateCommitDetection(scale);
  diablo::AblateLeaderlessBft(scale);
  return 0;
}
