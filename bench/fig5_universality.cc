// Figure 5: throughput and latency of each blockchain when stressed with
// the Uber workload (810-900 TPS of compute-intensive Mobility service DApp
// invocations) on the consortium configuration; an X marks chains whose VM
// cannot execute the DApp (§6.4).
#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Figure 5 — universality: Mobility service DApp (Uber, 810-900 TPS)\n"
      "consortium configuration (200 nodes x 8 vCPUs, 10 regions)");
  const double scale = ScaleFromEnv();
  for (const std::string& chain : AllChainNames()) {
    const RunResult result =
        RunDappBenchmark(chain, "consortium", "uber", /*seed=*/1, scale);
    PrintRunRow(chain, result);
    std::fflush(stdout);
  }
  std::printf(
      "\npaper shapes: Algorand/Diem/Solana = X (budget exceeded);\n"
      "Quorum ~622 TPS; Avalanche & Ethereum < 169 TPS.\n");
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
