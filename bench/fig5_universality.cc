// Figure 5: throughput and latency of each blockchain when stressed with
// the Uber workload (810-900 TPS of compute-intensive Mobility service DApp
// invocations) on the consortium configuration; an X marks chains whose VM
// cannot execute the DApp (§6.4). One parallel cell per chain.
#include <vector>

#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Figure 5 — universality: Mobility service DApp (Uber, 810-900 TPS)\n"
      "consortium configuration (200 nodes x 8 vCPUs, 10 regions)");
  const double scale = ScaleFromEnv();
  const std::vector<std::string> chains = AllChainNames();

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const std::string& chain : chains) {
    cells.push_back({chain, [chain, scale] {
                       return RunDappBenchmark(chain, "consortium", "uber",
                                               /*seed=*/1, scale);
                     }});
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  for (size_t i = 0; i < chains.size(); ++i) {
    PrintRunRow(chains[i], results[i]);
  }
  std::printf(
      "\npaper shapes: Algorand/Diem/Solana = X (budget exceeded);\n"
      "Quorum ~622 TPS; Avalanche & Ethereum < 169 TPS.\n");
  FinishRunnerReport("fig5_universality", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
