// Shared helpers for the table/figure reproduction binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/core/parallel_runner.h"
#include "src/core/runner.h"
#include "src/support/stats.h"
#include "src/support/strings.h"

namespace diablo {

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

// Runs `cells` on `runner`, announcing the fan-out (so a user watching a
// slow sweep knows how many cells are in flight on how many workers).
inline std::vector<RunResult> RunCells(ParallelRunner& runner,
                                       std::vector<ExperimentCell> cells) {
  std::printf("[runner] %zu cells on %d worker%s (DIABLO_JOBS)\n", cells.size(),
              runner.jobs(), runner.jobs() == 1 ? "" : "s");
  std::fflush(stdout);
  return runner.Run(std::move(cells));
}

// Records the binary's runner stats into BENCH_runner.json (cwd), keeping
// other binaries' entries under the shared schema_version stamp
// (kRunnerStatsSchemaVersion), and prints the one-line summary. Every
// figure/table binary calls this, so a full suite pass leaves one entry per
// binary in the file.
inline void FinishRunnerReport(const std::string& binary,
                               const ParallelRunner& runner) {
  const RunnerStats& stats = runner.stats();
  std::printf(
      "[runner] %s: %zu cells in %.2f s wall, %llu events (%.0f events/s) "
      "with %d jobs (schema v%d)\n",
      binary.c_str(), stats.cells, stats.wall_seconds,
      static_cast<unsigned long long>(stats.total_events),
      stats.EventsPerSecond(), stats.jobs, kRunnerStatsSchemaVersion);
  if (!WriteRunnerStatsJson("BENCH_runner.json", binary, stats)) {
    std::fprintf(stderr, "[runner] warning: could not write BENCH_runner.json\n");
  }
}

inline void PrintRunRow(const std::string& label, const RunResult& result) {
  if (result.unsupported) {
    std::printf("%-28s  %s\n", label.c_str(), "(absent: contract not supported)");
    return;
  }
  if (!result.failure_reason.empty()) {
    std::printf("%-28s  X  (%s)\n", label.c_str(), result.failure_reason.c_str());
    return;
  }
  const Report& r = result.report;
  std::printf("%-28s  tput %8.1f TPS   lat %7.2f s   committed %5.1f%%\n",
              label.c_str(), r.avg_throughput, r.avg_latency, 100.0 * r.commit_ratio);
}

// An ASCII sparkline of a trace (one char per bucket of seconds).
inline std::string Sparkline(const std::vector<double>& values, size_t width) {
  static const char* kLevels = " .:-=+*#%@";
  if (values.empty() || width == 0) {
    return std::string();
  }
  double peak = 0;
  for (const double v : values) {
    peak = std::max(peak, v);
  }
  if (peak <= 0) {
    return std::string(width, ' ');
  }
  std::string out;
  for (size_t i = 0; i < width; ++i) {
    const size_t from = i * values.size() / width;
    const size_t to = std::max(from + 1, (i + 1) * values.size() / width);
    double bucket = 0;
    for (size_t j = from; j < to && j < values.size(); ++j) {
      bucket = std::max(bucket, values[j]);
    }
    const int level = static_cast<int>(9.0 * bucket / peak);
    out.push_back(kLevels[level]);
  }
  return out;
}

}  // namespace diablo

#endif  // BENCH_BENCH_UTIL_H_
