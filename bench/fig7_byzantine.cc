// Byzantine adversary sweep (beyond the paper's crash-fault evaluation):
// every consensus family under five malicious behaviours — equivocating
// leaders, double-voting, vote withholding, signer censorship and lazy
// proposers — at adversary fractions of 5%, 20%, 33% and 40% of the
// deployment, armed for a mid-run window.
//
// Expected shapes: safety never breaks (the DIABLO_CHECKED invariant in
// FinalizeBlock would abort on two committed blocks at one height); what
// degrades is liveness. The BFT chains keep committing through <= 33%
// withholding (quorum 7 of 10 still reachable) and stall inside the window
// at 40%; equivocation costs view changes, not safety; censorship and lazy
// proposing cost throughput in proportion to how often an adversary holds
// the proposer slot.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chains/params.h"
#include "src/fault/schedule.h"

namespace diablo {
namespace {

struct Scenario {
  std::string name;
  FaultSchedule faults;
};

// One window per behaviour: adversaries armed from 10 s to 40 s of the
// 60 s run, so every row shows a healthy lead-in, the degraded window, and
// the recovery after disarm.
std::vector<Scenario> Scenarios() {
  constexpr SimTime kFrom = Seconds(10);
  constexpr SimTime kTo = Seconds(40);
  std::vector<Scenario> out;
  for (const double fraction : {0.05, 0.20, 0.33, 0.40}) {
    const int pct = static_cast<int>(100.0 * fraction + 0.5);
    out.push_back({StrFormat("equivocate-%d%%", pct),
                   FaultScheduleBuilder()
                       .EquivocateFraction(fraction, kFrom, kTo)
                       .Build()});
    out.push_back({StrFormat("double-vote-%d%%", pct),
                   FaultScheduleBuilder()
                       .DoubleVoteFraction(fraction, kFrom, kTo)
                       .Build()});
    out.push_back({StrFormat("withhold-%d%%", pct),
                   FaultScheduleBuilder()
                       .WithholdVotesFraction(fraction, kFrom, kTo)
                       .Build()});
    // Censor the first quarter of the 2,000 submitting accounts — the
    // workload assigns signers round-robin, so a quarter of the offered
    // load inside the window belongs to the censored set.
    std::vector<int> censored(500);
    for (int i = 0; i < 500; ++i) {
      censored[i] = i;
    }
    out.push_back({StrFormat("censor-%d%%", pct),
                   FaultScheduleBuilder()
                       .CensorFraction(fraction, std::move(censored), kFrom, kTo)
                       .Build()});
    out.push_back({StrFormat("lazy-%d%%", pct),
                   FaultScheduleBuilder()
                       .LazyProposerFraction(fraction, kFrom, kTo)
                       .Build()});
  }
  return out;
}

void PrintByzantineRow(const std::string& label, const RunResult& result) {
  if (!result.failure_reason.empty()) {
    std::printf("%-20s  X  (%s)\n", label.c_str(), result.failure_reason.c_str());
    return;
  }
  const Report& r = result.report;
  const unsigned long long evidence =
      static_cast<unsigned long long>(r.equivocations_seen) +
      static_cast<unsigned long long>(r.double_votes_seen) +
      static_cast<unsigned long long>(r.votes_withheld);
  std::printf(
      "%-20s  tput %7.1f TPS  commit %5.1f%%  min-ivl %5.1f%%  views %4llu  "
      "evidence %6llu  censored %5llu  lazy %4llu\n",
      label.c_str(), r.avg_throughput, 100.0 * r.commit_ratio,
      100.0 * r.min_interval_commit_ratio,
      static_cast<unsigned long long>(r.view_changes), evidence,
      static_cast<unsigned long long>(r.txs_censored),
      static_cast<unsigned long long>(r.lazy_proposals));
}

void Run() {
  PrintHeader(
      "Byzantine sweep — equivocation, double votes, withholding, censorship\n"
      "and lazy proposers at 5/20/33/40% adversaries on testnet\n"
      "(200 TPS offered for 60 s; adversary window 10 s - 40 s)");
  const double scale = ScaleFromEnv();

  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = Seconds(2);
  retry.backoff = Milliseconds(500);

  std::vector<std::string> chains = AllChainNames();
  chains.push_back("redbelly");
  const std::vector<Scenario> scenarios = Scenarios();

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const std::string& chain : chains) {
    for (const Scenario& scenario : scenarios) {
      cells.push_back({chain + "+" + scenario.name,
                       [chain, scenario, retry, scale] {
                         return RunFaultBenchmark(chain, "testnet", 200, 60,
                                                  scenario.faults, retry,
                                                  /*seed=*/1, scale);
                       }});
    }
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  size_t index = 0;
  for (const std::string& chain : chains) {
    std::printf("\n-- %s --\n", chain.c_str());
    for (const Scenario& scenario : scenarios) {
      PrintByzantineRow(scenario.name, results[index]);
      ++index;
    }
  }
  std::printf(
      "\nevidence = equivocations + double votes + withheld votes observed\n"
      "by honest nodes; min-ivl = worst per-submit-second commit ratio (the\n"
      "adversary-window dip). Safety holds throughout: checked builds abort\n"
      "on conflicting commits at one height, and none occur.\n");
  FinishRunnerReport("fig7_byzantine", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
