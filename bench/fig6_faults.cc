// Fault sweep (beyond the paper's healthy-path evaluation, §7 future
// work): every consensus family under a leader crash with restart, a
// minority and a majority partition with heal, and uniform message-loss
// rates, all driven by declarative fault schedules. Clients retry with
// exponential backoff, so the resilience metrics separate "the chain
// stalled" from "the client gave up".
//
// Expected shapes: quorum protocols ride out the leader crash and the
// minority partition (view changes spike, throughput dips, recovery within
// seconds of the heal); the majority partition stalls them until the heal;
// proposer-schedule chains skip dead slots and degrade smoothly with loss.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chains/params.h"
#include "src/fault/schedule.h"

namespace diablo {
namespace {

struct Scenario {
  std::string name;
  FaultSchedule faults;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> out;
  // Leader crash: node 0 (the initial leader everywhere) dies at 10 s and
  // rejoins at 30 s.
  out.push_back({"leader-crash",
                 FaultScheduleBuilder().Crash(0, Seconds(10), Seconds(30)).Build()});
  // Minority partition: 3 of 10 testnet nodes (= f for the BFT chains) cut
  // off from 10 s to 40 s.
  out.push_back({"minority-part",
                 FaultScheduleBuilder()
                     .Partition({0, 1, 2}, Seconds(10), Seconds(40))
                     .Build()});
  // Majority partition: 6 of 10 — no quorum anywhere until the heal.
  out.push_back({"majority-part",
                 FaultScheduleBuilder()
                     .Partition({0, 1, 2, 3, 4, 5}, Seconds(10), Seconds(40))
                     .Build()});
  for (const double rate : {0.01, 0.05, 0.10}) {
    out.push_back({StrFormat("loss-%.0f%%", 100.0 * rate),
                   FaultScheduleBuilder()
                       .Loss(rate, Seconds(10), Seconds(40))
                       .Build()});
  }
  return out;
}

void PrintFaultRow(const std::string& label, const RunResult& result) {
  if (!result.failure_reason.empty()) {
    std::printf("%-24s  X  (%s)\n", label.c_str(), result.failure_reason.c_str());
    return;
  }
  const Report& r = result.report;
  std::string recovery = "    -";
  if (!r.recoveries.empty()) {
    recovery = r.recoveries[0] < 0 ? "never"
                                   : StrFormat("%5.1f", r.recoveries[0]);
  }
  std::printf(
      "%-24s  tput %7.1f TPS  commit %5.1f%%  min-ivl %5.1f%%  views %4llu  "
      "retries %5llu  ttr %s s\n",
      label.c_str(), r.avg_throughput, 100.0 * r.commit_ratio,
      100.0 * r.min_interval_commit_ratio,
      static_cast<unsigned long long>(r.view_changes),
      static_cast<unsigned long long>(r.client_retries), recovery.c_str());
}

void Run() {
  PrintHeader(
      "Fault sweep — leader crash, partitions and message loss on testnet\n"
      "(200 TPS offered for 60 s; clients retry up to 3 times with backoff)");
  const double scale = ScaleFromEnv();

  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = Seconds(2);
  retry.backoff = Milliseconds(500);

  std::vector<std::string> chains = AllChainNames();
  chains.push_back("redbelly");
  const std::vector<Scenario> scenarios = Scenarios();

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const std::string& chain : chains) {
    for (const Scenario& scenario : scenarios) {
      cells.push_back({chain + "+" + scenario.name,
                       [chain, scenario, retry, scale] {
                         return RunFaultBenchmark(chain, "testnet", 200, 60,
                                                  scenario.faults, retry,
                                                  /*seed=*/1, scale);
                       }});
    }
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  size_t index = 0;
  for (const std::string& chain : chains) {
    std::printf("\n-- %s --\n", chain.c_str());
    for (const Scenario& scenario : scenarios) {
      PrintFaultRow(scenario.name, results[index]);
      ++index;
    }
  }
  std::printf(
      "\nttr = time from the heal/restart instant to the first commit after\n"
      "it; min-ivl = worst per-submit-second commit ratio (the fault dip).\n");
  FinishRunnerReport("fig6_faults", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
