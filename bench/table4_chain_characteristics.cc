// Table 4: characteristics of the evaluated blockchains — consistency
// property, consensus protocol, virtual machine and DApp language — printed
// from the parameter sheets, plus the protocol limits the simulators
// enforce (§5.2).
#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader("Table 4 — evaluated blockchains");
  std::printf("%-10s %-6s %-10s %-7s %-9s\n", "chain", "prop.", "consensus", "VM",
              "language");
  for (const ChainParams& params : AllChainParams()) {
    std::printf("%-10s %-6s %-10s %-7s %-9s\n", params.name.c_str(),
                params.property.c_str(), params.consensus_name.c_str(),
                params.vm_name.c_str(), params.dapp_language.c_str());
  }

  std::printf("\nprotocol limits enforced by the simulators (§5.2):\n");
  for (const ChainParams& params : AllChainParams()) {
    std::printf("%-10s", params.name.c_str());
    if (params.block_gas_limit > 0) {
      std::printf("  block gas %.3gM",
                  static_cast<double>(params.block_gas_limit) / 1e6);
    }
    if (params.block_interval >= Seconds(1)) {
      std::printf("  period >= %.1f s", ToSeconds(params.block_interval));
    }
    if (params.slot_duration != Milliseconds(400) || params.name == "solana") {
      if (params.name == "solana") {
        std::printf("  %.0f ms slots", ToMilliseconds(params.slot_duration));
      }
    }
    if (params.confirmation_depth > 0) {
      std::printf("  %d confirmations", params.confirmation_depth);
    }
    if (params.mempool.per_signer_cap > 0) {
      std::printf("  %zu txs/signer", params.mempool.per_signer_cap);
    }
    if (params.mempool.global_cap > 0) {
      std::printf("  pool cap %zu", params.mempool.global_cap);
    }
    if (params.mempool.global_cap == 0) {
      std::printf("  unbounded pool");
    }
    if (params.mempool.ttl > 0) {
      std::printf("  tx ttl %.0f s", ToSeconds(params.mempool.ttl));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
