// Figure 8 — multicore speedup of the sharded vote plane: one fig3-XL-sized
// cell (HotStuff at 1,000 validators, 100 TPS native transfers, 30 s) run at
// DIABLO_CELL_WORKERS in {1, 2, 4, 8}, recording wall-clock, events/s and
// the window-occupancy split (share of events still executed on the serial
// loop vs inside parallel windows).
//
// Output lands in BENCH_runner.json under "fig8_multicore". Two properties
// are asserted (exit code 1 on violation) so CI keeps the speedup story
// honest: the sweep itself must run windowed (a fig3-XL cell is
// shard-eligible), and the serial-shard residency must stay below 30% — the
// engine shard and the client shards together must carry the bulk of the
// event stream, or there is nothing for extra cores to speed up. On the
// 1-vCPU CI container the wall-clock column shows no speedup (that is
// expected and stated in EXPERIMENTS.md); the residency split is
// machine-independent, so it is what the assertion pins.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/support/profile.h"
#include "src/support/thread_pool.h"

namespace diablo {
namespace {

struct SweepPoint {
  int workers = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  double events_per_second = 0;
  double serial_residency = 0;  // serial-loop events / all events, in [0, 1]
};

void Run() {
  PrintHeader(
      "Figure 8 — multicore sweep: sharded vote plane on a fig3-XL cell\n"
      "(diem/HotStuff, 1000 validators, 100 TPS x 30 s, workers in {1,2,4,8})");
  const double scale = ScaleFromEnv();
  const std::vector<int> worker_counts = {1, 2, 4, 8};
  const char* previous = std::getenv("DIABLO_CELL_WORKERS");
  const std::string restore = previous != nullptr ? previous : "";

  std::vector<SweepPoint> sweep;
  bool any_windowed = false;
  for (const int workers : worker_counts) {
    setenv("DIABLO_CELL_WORKERS", std::to_string(workers).c_str(), 1);
    const uint64_t serial_before = profile::SerialLoopEvents();
    const uint64_t windowed_before = profile::WindowedWorkerEvents();

    ParallelRunner runner(1);
    std::vector<ExperimentCell> cells;
    cells.push_back({"diem/xl-1000", [scale] {
                       return RunNativeBenchmark("diem", "xl-1000", 100, 30,
                                                 /*seed=*/1, scale);
                     }});
    const std::vector<RunResult> results = RunCells(runner, std::move(cells));

    const uint64_t serial = profile::SerialLoopEvents() - serial_before;
    const uint64_t windowed = profile::WindowedWorkerEvents() - windowed_before;
    SweepPoint point;
    point.workers = workers;
    point.wall_seconds = runner.stats().wall_seconds;
    point.events = results[0].events_executed;
    point.events_per_second =
        point.wall_seconds > 0
            ? static_cast<double>(point.events) / point.wall_seconds
            : 0;
    point.serial_residency =
        serial + windowed > 0
            ? static_cast<double>(serial) / static_cast<double>(serial + windowed)
            : 1.0;
    any_windowed = any_windowed || windowed > 0;
    sweep.push_back(point);
  }
  if (previous != nullptr) {
    setenv("DIABLO_CELL_WORKERS", restore.c_str(), 1);
  } else {
    unsetenv("DIABLO_CELL_WORKERS");
  }

  std::printf("%8s  %12s  %14s  %18s\n", "workers", "wall s", "events/s",
              "serial residency");
  for (const SweepPoint& point : sweep) {
    std::printf("%8d  %12.3f  %14.0f  %17.1f%%\n", point.workers,
                point.wall_seconds, point.events_per_second,
                100.0 * point.serial_residency);
  }

  // BENCH_runner.json entry: the sweep rows plus the machine context needed
  // to interpret the wall-clock column.
  std::string entry = "{\"sweep\": [";
  for (size_t i = 0; i < sweep.size(); ++i) {
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s{\"workers\": %d, \"wall_seconds\": %.6f, "
                  "\"total_events\": %llu, \"events_per_second\": %.1f, "
                  "\"serial_residency\": %.4f}",
                  i > 0 ? ", " : "", sweep[i].workers, sweep[i].wall_seconds,
                  static_cast<unsigned long long>(sweep[i].events),
                  sweep[i].events_per_second, sweep[i].serial_residency);
    entry += row;
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail), "], \"hardware_threads\": %d}",
                ThreadPool::HardwareConcurrency());
  entry += tail;
  if (!WriteRunnerJsonEntry("BENCH_runner.json", "fig8_multicore", entry)) {
    std::fprintf(stderr, "[runner] warning: could not write BENCH_runner.json\n");
  }

  // The assertions that keep the speedup story honest.
  if (!any_windowed) {
    std::fprintf(stderr,
                 "fig8_multicore: FAIL — the fig3-XL cell never entered a "
                 "parallel window (sharding gate rejected it)\n");
    std::exit(1);
  }
  double min_residency = 1.0;
  for (const SweepPoint& point : sweep) {
    min_residency = std::min(min_residency, point.serial_residency);
  }
  if (min_residency >= 0.30) {
    std::fprintf(stderr,
                 "fig8_multicore: FAIL — serial-shard residency %.1f%% is not "
                 "below 30%%; the serial loop still carries the run\n",
                 100.0 * min_residency);
    std::exit(1);
  }
  std::printf("fig8_multicore: serial residency %.1f%% < 30%% — the sharded "
              "planes carry the event stream\n",
              100.0 * min_residency);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
