// Micro benchmarks (google-benchmark) for the substrates: event loop
// throughput, network delay sampling, SHA-256, Merkle trees, VM execution
// per dialect, mempool operations, trace generation and YAML parsing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include <chrono>
#include <memory>

#include "src/chain/mempool.h"
#include "src/chain/node.h"
#include "src/chain/vote_round.h"
#include "src/chains/params.h"
#include "src/config/yaml.h"
#include "src/contracts/contracts.h"
#include "src/core/parallel_runner.h"
#include "src/crypto/merkle.h"
#include "src/crypto/sha256.h"
#include "src/net/deployment.h"
#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/sim/simulation.h"
#include "src/support/rng.h"
#include "src/vm/interpreter.h"
#include "src/workload/trace.h"

// --- allocation-counting hook -----------------------------------------------
// This TU replaces the global allocator with a counting shim so benches can
// assert allocation behaviour, not just time: BM_BlockAssembly reports
// allocs_per_block, which must be zero in steady state after the arena /
// pre-reserve work in src/chain. Counting is relaxed-atomic; the overhead is
// a few ns per allocation and identical for baseline and current code paths.
static std::atomic<std::uint64_t> g_alloc_count{0};

// GCC cannot see that new and delete are replaced as a matched pair here
// (both are malloc/free underneath), so it reports a mismatched-allocator
// false positive at every delete in the TU.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace diablo {
namespace {

void BM_EventLoop(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    Simulation sim(1);
    uint64_t sink = 0;
    for (int64_t i = 0; i < events; ++i) {
      sim.Schedule(i, [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoop)->Arg(1000)->Arg(100000);

// The seed's event path, reconstructed: the same binary heap but with
// std::function entries (one heap allocation per capture beyond the
// libstdc++ 16-byte inline buffer). BM_EventLoop vs this pair is the
// before/after of the EventFn small-buffer swap.
class StdFunctionQueue {
 public:
  void Push(SimTime time, std::function<void()> fn) {
    heap_.push_back(Entry{time, next_seq_++, std::move(fn)});
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!(heap_[parent] > heap_[i])) {
        break;
      }
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  bool empty() const { return heap_.empty(); }

  std::function<void()> Pop(SimTime* time) {
    Entry top = std::move(heap_.front());
    *time = top.time;
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      SiftDown();
    } else {
      heap_.pop_back();
    }
    return std::move(top.fn);
  }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  void SiftDown() {
    const size_t n = heap_.size();
    size_t i = 0;
    while (true) {
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      size_t smallest = i;
      if (left < n && heap_[smallest] > heap_[left]) {
        smallest = left;
      }
      if (right < n && heap_[smallest] > heap_[right]) {
        smallest = right;
      }
      if (smallest == i) {
        return;
      }
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

// Capture shape mirroring the simulator's real closures: a couple of
// pointers plus ids/sizes, ~32 bytes — over std::function's inline buffer,
// under EventFn's.
struct FatCapture {
  uint64_t* sink;
  uint64_t a, b, c;
};

// The seed's BM_EventLoop workload (one pointer capture) on the seed's
// std::function queue — the direct baseline for BM_EventLoop.
void BM_EventLoopStdFunctionSmall(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    StdFunctionQueue queue;
    uint64_t sink = 0;
    for (int64_t i = 0; i < events; ++i) {
      queue.Push(i, [&sink] { ++sink; });
    }
    SimTime t = 0;
    while (!queue.empty()) {
      queue.Pop(&t)();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoopStdFunctionSmall)->Arg(1000)->Arg(100000);

void BM_EventLoopStdFunction(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    StdFunctionQueue queue;
    uint64_t sink = 0;
    for (int64_t i = 0; i < events; ++i) {
      FatCapture capture{&sink, static_cast<uint64_t>(i), 2, 3};
      queue.Push(i, [capture] { *capture.sink += capture.a; });
    }
    SimTime t = 0;
    while (!queue.empty()) {
      queue.Pop(&t)();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoopStdFunction)->Arg(1000)->Arg(100000);

void BM_EventLoopSboFunctor(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    EventQueue queue;
    uint64_t sink = 0;
    for (int64_t i = 0; i < events; ++i) {
      FatCapture capture{&sink, static_cast<uint64_t>(i), 2, 3};
      queue.Push(i, [capture] { *capture.sink += capture.a; });
    }
    SimTime t = 0;
    while (!queue.empty()) {
      queue.Pop(&t)();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoopSboFunctor)->Arg(1000)->Arg(100000);

void BM_NetworkDelaySample(benchmark::State& state) {
  Simulation sim(1);
  Network net(&sim);
  std::vector<HostId> hosts;
  for (int i = 0; i < 20; ++i) {
    hosts.push_back(net.AddHost(static_cast<Region>(i % kRegionCount)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.DelaySample(hosts[i % 20], hosts[(i + 7) % 20], 256));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkDelaySample);

// The seed's delay math, reconstructed: triangle-matrix lookups plus unit
// conversions and a bandwidth division per sample, instead of the cached
// flat LinkParams table Network::DelaySample now reads.
void BM_NetworkDelayUncached(benchmark::State& state) {
  Simulation sim(1);
  Rng rng = sim.ForkRng();
  std::vector<Region> regions;
  for (int i = 0; i < 20; ++i) {
    regions.push_back(static_cast<Region>(i % kRegionCount));
  }
  const double jitter_frac = 0.05;
  size_t i = 0;
  for (auto _ : state) {
    const Region a = regions[i % 20];
    const Region b = regions[(i + 7) % 20];
    const SimDuration prop = MillisecondsF(Topology::RttMs(a, b) / 2.0);
    const double mbps = Topology::BandwidthMbps(a, b);
    const SimDuration trans =
        SecondsF(static_cast<double>(int64_t{256}) * 8.0 / (mbps * 1e6));
    const double jitter_scale = jitter_frac * std::abs(rng.NextGaussian(0.0, 1.0));
    const SimDuration jitter =
        static_cast<SimDuration>(static_cast<double>(prop) * jitter_scale);
    benchmark::DoNotOptimize(prop + trans + jitter);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkDelayUncached);

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Digest256> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256Digest(std::string("tx") + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleRoot(leaves));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(64)->Arg(1024);

void BM_VmCounterAdd(benchmark::State& state) {
  const Program program = CompileContract(*FindContract("counter"));
  ContractState contract_state;
  ExecRequest request;
  request.program = &program;
  request.function = "add";
  request.state = &contract_state;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Execute(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmCounterAdd);

void BM_VmUberCheckDistance(benchmark::State& state) {
  // The heavy one: 10,000 Newton square roots per call.
  const ContractDef& def = *FindContract("uber");
  const Program program = CompileContract(def);
  ContractState contract_state;
  ExecRequest init;
  init.program = &program;
  init.function = "init";
  init.args = def.init_args;
  init.state = &contract_state;
  Execute(init);

  ExecRequest request;
  request.program = &program;
  request.function = "check_distance";
  const std::vector<int64_t> args = {5000, 5000};
  request.args = args;
  request.state = &contract_state;
  request.dialect = static_cast<VmDialect>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Execute(request));
  }
}
BENCHMARK(BM_VmUberCheckDistance)
    ->Arg(static_cast<int>(VmDialect::kGeth))   // full execution
    ->Arg(static_cast<int>(VmDialect::kEbpf));  // stops at the budget

void BM_MempoolChurn(benchmark::State& state) {
  MempoolConfig config;
  Mempool pool(config);
  SimTime now = 0;
  TxId id = 0;
  std::vector<TxId> expired;
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      pool.Add(id, id % 64, now, now + 1000);
      ++id;
    }
    now += Seconds(1);
    benchmark::DoNotOptimize(
        pool.TakeReady(now, 0, 0, 100, [](TxId) { return 21000; },
                       [](TxId) { return 110; }, &expired));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_MempoolChurn);

// Byte-for-byte replica of the seed mempool (std::priority_queue of 24-byte
// entries + unordered_map signer counts + unordered_set gone/zombie tracking)
// so the A/B comparison against the struct-of-arrays pool runs inside one
// binary under identical load. Mirrors the seed source, same trick as
// StdFunctionQueue above.
class SeedMempool {
 public:
  explicit SeedMempool(MempoolConfig config, Rng* rng = nullptr)
      : config_(config), rng_(rng) {}

  AdmitResult Add(TxId id, uint32_t signer, SimTime ingress_time, SimTime ready_time,
                  TxId* evicted = nullptr) {
    if (evicted != nullptr) {
      *evicted = kInvalidTx;
    }
    if (config_.global_cap > 0 && live_count_ >= config_.global_cap) {
      if (!config_.evict_on_full || rng_ == nullptr) {
        return AdmitResult::kPoolFull;
      }
      const TxId victim = EvictRandom();
      if (victim == kInvalidTx) {
        return AdmitResult::kPoolFull;
      }
      if (evicted != nullptr) {
        *evicted = victim;
      }
    }
    if (config_.per_signer_cap > 0) {
      uint32_t& count = signer_counts_[signer];
      if (count >= config_.per_signer_cap) {
        return AdmitResult::kSignerCapReached;
      }
      ++count;
    }
    queue_.push(Entry{ready_time, ingress_time, id, signer});
    if (config_.evict_on_full) {
      ring_.emplace_back(id, signer);
      CompactRingIfNeeded();
    }
    ++live_count_;
    return AdmitResult::kAdmitted;
  }

  template <typename GasFn, typename BytesFn>
  void TakeReady(SimTime now, int64_t gas_budget, int64_t byte_budget, size_t max_txs,
                 GasFn gas_of, BytesFn bytes_of, std::vector<TxId>* taken,
                 std::vector<TxId>* expired) {
    int64_t gas = 0;
    int64_t bytes = 0;
    while (!queue_.empty() && taken->size() < max_txs) {
      const Entry& top = queue_.top();
      if (zombies_.erase(top.id) > 0) {
        queue_.pop();
        continue;
      }
      if (top.ready > now) {
        break;
      }
      if (config_.ttl > 0 && now - top.ingress > config_.ttl) {
        expired->push_back(top.id);
        Remove(top);
        continue;
      }
      const int64_t tx_gas = gas_of(top.id);
      const int64_t tx_bytes = bytes_of(top.id);
      if (gas_budget > 0 && gas + tx_gas > gas_budget && !taken->empty()) {
        break;
      }
      if (byte_budget > 0 && bytes + tx_bytes > byte_budget && !taken->empty()) {
        break;
      }
      if (gas_budget > 0 && tx_gas > gas_budget && taken->empty()) {
        expired->push_back(top.id);
        Remove(top);
        continue;
      }
      gas += tx_gas;
      bytes += tx_bytes;
      taken->push_back(top.id);
      Remove(top);
    }
  }

  size_t size() const { return live_count_; }

 private:
  struct Entry {
    SimTime ready;
    SimTime ingress;
    TxId id;
    uint32_t signer;
    bool operator>(const Entry& other) const {
      if (ready != other.ready) {
        return ready > other.ready;
      }
      return id > other.id;
    }
  };

  void Remove(const Entry& top) {
    NoteGone(top.id);
    ReleaseSigner(top.signer);
    --live_count_;
    queue_.pop();
  }

  void NoteGone(TxId id) {
    if (config_.evict_on_full) {
      gone_.insert(id);
    }
  }

  void ReleaseSigner(uint32_t signer) {
    if (config_.per_signer_cap == 0) {
      return;
    }
    const auto it = signer_counts_.find(signer);
    if (it != signer_counts_.end() && it->second > 0) {
      --it->second;
    }
  }

  TxId EvictRandom() {
    while (!ring_.empty()) {
      const size_t slot = rng_->NextBelow(ring_.size());
      const auto [id, signer] = ring_[slot];
      ring_[slot] = ring_.back();
      ring_.pop_back();
      if (gone_.erase(id) > 0) {
        continue;
      }
      zombies_.insert(id);
      ReleaseSigner(signer);
      --live_count_;
      return id;
    }
    return kInvalidTx;
  }

  void CompactRingIfNeeded() {
    if (ring_.size() < 64 || ring_.size() < 2 * live_count_) {
      return;
    }
    std::vector<std::pair<TxId, uint32_t>> compacted;
    compacted.reserve(live_count_);
    for (const auto& [id, signer] : ring_) {
      if (gone_.erase(id) > 0) {
        continue;
      }
      compacted.emplace_back(id, signer);
    }
    ring_ = std::move(compacted);
  }

  MempoolConfig config_;
  Rng* rng_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_map<uint32_t, uint32_t> signer_counts_;
  std::vector<std::pair<TxId, uint32_t>> ring_;
  std::unordered_set<TxId> gone_;
  std::unordered_set<TxId> zombies_;
  size_t live_count_ = 0;
};

// The per-transaction admit/take data path at block-production granularity
// under geth-style overload (§6.3/§6.5): arrivals are double the pool's
// global cap, so the back half of every admission wave evicts a random
// victim, and the drain pops one zombie per taken transaction. This is the
// regime the admission machinery exists for — the seed pays hash traffic in
// gone_/zombies_/signer_counts_ on every one of those operations, the
// struct-of-arrays pool pays byte writes. Ids are fresh across iterations
// (they never recur in real runs), so both benches run a fixed iteration
// count over an identical workload. Items/sec counts transactions through
// the full admit+take cycle.
constexpr size_t kAdmitTakeBlock = 512;
constexpr int kAdmitTakeIterations = 12;
constexpr size_t kAdmitTakeSigners = 4096;

MempoolConfig AdmitTakePolicies(size_t n) {
  MempoolConfig config;
  config.global_cap = n / 2;
  config.per_signer_cap = n;
  config.ttl = Seconds(3600);
  config.evict_on_full = true;
  return config;
}

void BM_MempoolAdmitTake(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  Mempool pool(AdmitTakePolicies(n), &rng);
  pool.Reserve(n * static_cast<size_t>(kAdmitTakeIterations));
  std::vector<TxId> taken;
  std::vector<TxId> expired;
  taken.reserve(kAdmitTakeBlock);
  expired.reserve(kAdmitTakeBlock);
  TxId next = 0;
  SimTime now = 0;
  for (auto _ : state) {
    for (size_t k = 0; k < n; ++k) {
      pool.Add(next, next % kAdmitTakeSigners, now, now);
      ++next;
    }
    now += Seconds(1);
    while (pool.size() > 0) {
      taken.clear();
      expired.clear();
      pool.TakeReady(now, 0, 0, kAdmitTakeBlock, [](TxId) { return 21000; },
                     [](TxId) { return 110; }, &taken, &expired);
      benchmark::DoNotOptimize(taken.data());
      if (taken.empty() && expired.empty()) {
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_MempoolAdmitTake)
    ->Arg(100000)
    ->Iterations(kAdmitTakeIterations)
    ->Unit(benchmark::kMillisecond);

void BM_MempoolAdmitTakeBaseline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  SeedMempool pool(AdmitTakePolicies(n), &rng);
  std::vector<TxId> taken;
  std::vector<TxId> expired;
  taken.reserve(kAdmitTakeBlock);
  expired.reserve(kAdmitTakeBlock);
  TxId next = 0;
  SimTime now = 0;
  for (auto _ : state) {
    for (size_t k = 0; k < n; ++k) {
      pool.Add(next, next % kAdmitTakeSigners, now, now);
      ++next;
    }
    now += Seconds(1);
    while (pool.size() > 0) {
      taken.clear();
      expired.clear();
      pool.TakeReady(now, 0, 0, kAdmitTakeBlock, [](TxId) { return 21000; },
                     [](TxId) { return 110; }, &taken, &expired);
      benchmark::DoNotOptimize(taken.data());
      if (taken.empty() && expired.empty()) {
        break;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_MempoolAdmitTakeBaseline)
    ->Arg(100000)
    ->Iterations(kAdmitTakeIterations)
    ->Unit(benchmark::kMillisecond);

// Steady-state block production through the real ChainContext under
// sustained overload: every block admits more transactions than it drains
// (arrivals at 125% of capacity), the pool sits pinned at its global cap,
// and each admission beyond the cap evicts a random victim that the caller
// drops — the geth scenario of §6.3/§6.5, and the configuration where every
// admission policy (global cap, signer accounting, TTL check, eviction) is
// on the per-transaction path. An untimed warmup runs the pool to its
// steady state first, so the timed region measures settled behaviour and
// the allocs_per_block counter (from the global allocation hook) must be 0
// on the arena + flat-pool path.
constexpr int kAssemblyIterations = 2000;
constexpr int kAssemblyWarmupBlocks = 64;
constexpr size_t kAssemblyAdmitPerBlock = 640;
constexpr size_t kAssemblySigners = 4096;

MempoolConfig AssemblyPolicies() {
  MempoolConfig config;
  config.global_cap = 4096;
  config.per_signer_cap = 64;
  config.ttl = Seconds(120);
  config.evict_on_full = true;
  return config;
}

void BM_BlockAssembly(benchmark::State& state) {
  Simulation sim(7);
  Network net(&sim);
  ChainParams params = GetChainParams("quorum");
  params.block_gas_limit = 0;
  params.max_block_bytes = 0;
  params.max_block_txs = kAdmitTakeBlock;
  params.congestion_threshold = 0;
  params.ingress_capacity = 0;
  params.mempool = AssemblyPolicies();
  ChainContext ctx(&sim, &net, GetDeployment("testnet"), params);
  const size_t total_txs = kAssemblyAdmitPerBlock *
                           static_cast<size_t>(kAssemblyIterations + kAssemblyWarmupBlocks);
  ctx.ReserveTxs(total_txs);
  ctx.ledger().Reserve(static_cast<size_t>(kAssemblyIterations + kAssemblyWarmupBlocks) + 1);
  for (size_t i = 0; i < total_txs; ++i) {
    Transaction tx;
    tx.account = static_cast<uint32_t>(i % kAssemblySigners);
    tx.gas = 21000;
    tx.size_bytes = 110;
    ctx.txs().Add(tx);
  }

  uint64_t height = 1;
  TxId next = 0;
  SimTime now = 0;
  auto run_block = [&] {
    for (size_t k = 0; k < kAssemblyAdmitPerBlock; ++k) {
      TxId evicted = kInvalidTx;
      ctx.mempool().Add(next, next % kAssemblySigners, now, now, &evicted);
      if (evicted != kInvalidTx) {
        ctx.DropTx(evicted);
      }
      ++next;
    }
    ChainContext::BuiltBlock built = ctx.BuildBlock(now, 0);
    benchmark::DoNotOptimize(built.tx_count);
    ctx.FinalizeBlock(height, 0, std::move(built), now, now + Milliseconds(900));
    ++height;
    now += Seconds(1);
  };
  for (int i = 0; i < kAssemblyWarmupBlocks; ++i) {
    run_block();
  }

  uint64_t measured_allocs = 0;
  int64_t measured_blocks = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    run_block();
    const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
    measured_allocs += after - before;
    ++measured_blocks;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kAdmitTakeBlock));
  state.counters["allocs_per_block"] =
      measured_blocks > 0
          ? static_cast<double>(measured_allocs) / static_cast<double>(measured_blocks)
          : 0.0;
}
BENCHMARK(BM_BlockAssembly)->Iterations(kAssemblyIterations);

// The seed-shaped assembly path under the identical overload workload:
// hash-container mempool, a freshly allocated std::vector<TxId> per drafted
// block, blocks owning their tx vectors. Eviction drops and commit
// bookkeeping (per-tx commit times from the same rng recipe, drawn from the
// same stream as the eviction draws) match the real pipeline so both sides
// do the same work per transaction.
void BM_BlockAssemblyBaseline(benchmark::State& state) {
  struct OldBlock {
    uint64_t height = 0;
    int64_t gas_used = 0;
    int64_t bytes = 0;
    std::vector<TxId> txs;
  };
  Rng rng(7);
  SeedMempool pool(AssemblyPolicies(), &rng);
  const size_t total_txs = kAssemblyAdmitPerBlock *
                           static_cast<size_t>(kAssemblyIterations + kAssemblyWarmupBlocks);
  std::vector<Transaction> txs;
  txs.reserve(total_txs);
  for (size_t i = 0; i < total_txs; ++i) {
    Transaction tx;
    tx.account = static_cast<uint32_t>(i % kAssemblySigners);
    tx.gas = 21000;
    tx.size_bytes = 110;
    txs.push_back(tx);
  }
  std::vector<OldBlock> ledger;
  ledger.reserve(static_cast<size_t>(kAssemblyIterations + kAssemblyWarmupBlocks) + 1);
  const SimDuration poll = GetChainParams("quorum").client_poll_interval;

  uint64_t height = 1;
  TxId next = 0;
  SimTime now = 0;
  auto run_block = [&] {
    for (size_t k = 0; k < kAssemblyAdmitPerBlock; ++k) {
      TxId evicted = kInvalidTx;
      pool.Add(next, next % kAssemblySigners, now, now, &evicted);
      if (evicted != kInvalidTx) {
        txs[evicted].phase = TxPhase::kDropped;
      }
      ++next;
    }
    OldBlock block;
    block.height = height;
    std::vector<TxId> expired;
    pool.TakeReady(now, 0, 0, kAdmitTakeBlock,
                   [&txs](TxId id) { return txs[id].gas; },
                   [&txs](TxId id) { return static_cast<int64_t>(txs[id].size_bytes); },
                   &block.txs, &expired);
    for (const TxId id : expired) {
      txs[id].phase = TxPhase::kDropped;
    }
    for (const TxId id : block.txs) {
      block.gas_used += txs[id].gas;
      block.bytes += txs[id].size_bytes;
    }
    const SimTime final_time = now + Milliseconds(900);
    for (const TxId id : block.txs) {
      const SimDuration observe =
          Milliseconds(1) +
          static_cast<SimDuration>(rng.NextBelow(static_cast<uint64_t>(poll) + 1));
      Transaction& tx = txs[id];
      tx.phase = TxPhase::kCommitted;
      tx.commit_time = final_time + observe;
    }
    benchmark::DoNotOptimize(block.txs.data());
    ledger.push_back(std::move(block));
    ++height;
    now += Seconds(1);
  };
  for (int i = 0; i < kAssemblyWarmupBlocks; ++i) {
    run_block();
  }

  uint64_t measured_allocs = 0;
  int64_t measured_blocks = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    run_block();
    const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
    measured_allocs += after - before;
    ++measured_blocks;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kAdmitTakeBlock));
  state.counters["allocs_per_block"] =
      measured_blocks > 0
          ? static_cast<double>(measured_allocs) / static_cast<double>(measured_blocks)
          : 0.0;
}
BENCHMARK(BM_BlockAssemblyBaseline)->Iterations(kAssemblyIterations);

// --- message-plane and VM dispatch kernels ----------------------------------
// The four A/B pairs behind the "kernels" entry of BENCH_runner.json: each
// current-path kernel runs against a byte-for-byte replica of the seed shape
// (allocating per-receiver reductions, per-call broadcast vectors, the
// byte-decoding VM loop) inside this one binary, same compiler flags, same
// data. The custom main() below re-times the pairs with plain chrono medians
// and records the speedups.

// Seed-shaped QuorumArrival: a fresh arrivals vector per receiver, double
// multiply for every hop, nth_element from scratch each time.
SimDuration SeedQuorumArrival(const PairwiseDelays& delays,
                              const std::vector<SimDuration>& send_times,
                              size_t receiver, size_t quorum, double hop_scale) {
  std::vector<SimDuration> arrivals;
  arrivals.reserve(send_times.size());
  for (size_t j = 0; j < send_times.size(); ++j) {
    if (send_times[j] == kUnreachable) {
      continue;
    }
    const SimDuration hop = delays.at(j, receiver);
    if (hop == kUnreachable) {
      continue;
    }
    arrivals.push_back(send_times[j] +
                       static_cast<SimDuration>(static_cast<double>(hop) * hop_scale));
  }
  if (arrivals.size() < quorum || quorum == 0) {
    return kUnreachable;
  }
  std::nth_element(arrivals.begin(), arrivals.begin() + static_cast<long>(quorum - 1),
                   arrivals.end());
  return arrivals[quorum - 1];
}

std::vector<SimDuration> SeedQuorumArrivalAll(const PairwiseDelays& delays,
                                              const std::vector<SimDuration>& send_times,
                                              size_t quorum, double hop_scale) {
  std::vector<SimDuration> result(send_times.size(), kUnreachable);
  for (size_t i = 0; i < send_times.size(); ++i) {
    result[i] = SeedQuorumArrival(delays, send_times, i, quorum, hop_scale);
  }
  return result;
}

SimDuration SeedMedianDelay(const std::vector<SimDuration>& delays) {
  std::vector<SimDuration> reachable;
  reachable.reserve(delays.size());
  for (const SimDuration d : delays) {
    if (d != kUnreachable) {
      reachable.push_back(d);
    }
  }
  if (reachable.empty()) {
    return kUnreachable;
  }
  const size_t mid = reachable.size() / 2;
  std::nth_element(reachable.begin(), reachable.begin() + static_cast<long>(mid),
                   reachable.end());
  return reachable[mid];
}

// A 200-validator message plane (the fig3 upper end): jittered delay matrix,
// Byzantine quorum, gossip hop scale 4.0, and 64 pre-generated send-time
// rounds so consecutive reductions see realistically similar distributions
// (that similarity is what the carried selection windows exploit).
struct PlaneFixture {
  static constexpr int kNodes = 200;
  Simulation sim{11};
  Network net{&sim};
  std::vector<HostId> hosts;
  std::unique_ptr<PairwiseDelays> delays;
  MessagePlaneScratch plane;
  std::vector<std::vector<SimDuration>> rounds;
  size_t quorum = 0;
  double hop_scale = 1.0;

  PlaneFixture() {
    const DeploymentConfig testnet = GetDeployment("testnet");
    for (int i = 0; i < kNodes; ++i) {
      hosts.push_back(net.AddHost(testnet.NodeRegion(i)));
    }
    delays = std::make_unique<PairwiseDelays>(&net, hosts, 256);
    quorum = static_cast<size_t>(ByzantineQuorum(kNodes));
    hop_scale = GossipHopScale(kNodes);
    Rng rng(99);
    rounds.resize(64);
    for (auto& sends : rounds) {
      sends.resize(kNodes);
      for (auto& s : sends) {
        s = rng.NextBelow(16) == 0
                ? kUnreachable
                : Milliseconds(50) + static_cast<SimDuration>(rng.NextBelow(
                                         static_cast<uint64_t>(Milliseconds(200))));
      }
    }
  }

  const std::vector<SimDuration>& SendsFor(size_t iteration) const {
    return rounds[iteration % rounds.size()];
  }
};

// One PBFT-shaped round reduction: two chained all-receiver quorum stages
// plus the commit median — the per-block work every engine performs.
SimDuration RoundReductionCurrent(PlaneFixture& f, const std::vector<SimDuration>& sends) {
  QuorumArrivalAllInto(*f.delays, sends, f.quorum, f.hop_scale, &f.plane,
                       &f.plane.stage_b, /*hint_slot=*/0);
  QuorumArrivalAllInto(*f.delays, f.plane.stage_b, f.quorum, f.hop_scale, &f.plane,
                       &f.plane.stage_c, /*hint_slot=*/1);
  return MedianDelayInto(f.plane.stage_c, &f.plane);
}

SimDuration RoundReductionSeed(PlaneFixture& f, const std::vector<SimDuration>& sends) {
  const std::vector<SimDuration> prepared =
      SeedQuorumArrivalAll(*f.delays, sends, f.quorum, f.hop_scale);
  const std::vector<SimDuration> committed =
      SeedQuorumArrivalAll(*f.delays, prepared, f.quorum, f.hop_scale);
  return SeedMedianDelay(committed);
}

void BM_PairwiseDelays(benchmark::State& state) {
  PlaneFixture f;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoundReductionCurrent(f, f.SendsFor(i++)));
  }
  state.SetItemsProcessed(state.iterations() * PlaneFixture::kNodes * 2);
}
BENCHMARK(BM_PairwiseDelays);

void BM_PairwiseDelaysBaseline(benchmark::State& state) {
  PlaneFixture f;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoundReductionSeed(f, f.SendsFor(i++)));
  }
  state.SetItemsProcessed(state.iterations() * PlaneFixture::kNodes * 2);
}
BENCHMARK(BM_PairwiseDelaysBaseline);

void BM_QuorumArrival(benchmark::State& state) {
  PlaneFixture f;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuorumArrivalInto(*f.delays, f.SendsFor(i), i % 200,
                                               f.quorum, f.hop_scale, &f.plane));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuorumArrival);

void BM_QuorumArrivalBaseline(benchmark::State& state) {
  PlaneFixture f;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SeedQuorumArrival(*f.delays, f.SendsFor(i), i % 200, f.quorum, f.hop_scale));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuorumArrivalBaseline);

// Seed-shaped broadcast: fresh result/order/frontier vectors every call,
// otherwise the same shuffled BFS gossip tree as Network::BroadcastDelaysInto
// (reconstructed over the public topology API, with its own rng and the
// default 5% jitter fraction).
std::vector<SimDuration> SeedBroadcastDelays(Network& net, Rng& rng, HostId origin,
                                             const std::vector<HostId>& recipients,
                                             int64_t bytes, int fanout) {
  constexpr double kJitterFrac = 0.05;
  std::vector<SimDuration> result(recipients.size(), kUnreachable);
  if (fanout < 1) {
    fanout = 1;
  }
  std::vector<size_t> order;
  order.reserve(recipients.size());
  for (size_t i = 0; i < recipients.size(); ++i) {
    if (recipients[i] == origin) {
      result[i] = 0;
      continue;
    }
    order.push_back(i);
  }
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }
  struct TreeNode {
    HostId host;
    SimDuration ready;
  };
  std::vector<TreeNode> frontier = {{origin, 0}};
  size_t next = 0;
  size_t frontier_head = 0;
  while (next < order.size() && frontier_head < frontier.size()) {
    TreeNode parent = frontier[frontier_head++];
    for (int k = 0; k < fanout && next < order.size(); ++k, ++next) {
      const size_t idx = order[next];
      const HostId child = recipients[idx];
      const Region pr = net.HostRegion(parent.host);
      const Region cr = net.HostRegion(child);
      const LinkParams& link = Topology::Link(pr, cr);
      const SimDuration slot =
          Topology::TransmissionDelayOn(link, bytes) * static_cast<SimDuration>(k + 1);
      const SimDuration prop = link.propagation;
      const double jitter_scale = kJitterFrac * std::abs(rng.NextGaussian(0.0, 1.0));
      const SimDuration jitter =
          static_cast<SimDuration>(static_cast<double>(prop) * jitter_scale);
      const SimDuration arrival = parent.ready + slot + prop + jitter;
      result[idx] = arrival;
      frontier.push_back(TreeNode{child, arrival});
    }
  }
  return result;
}

void BM_Broadcast(benchmark::State& state) {
  PlaneFixture f;
  for (auto _ : state) {
    f.net.BroadcastDelaysInto(f.hosts[0], f.hosts, /*bytes=*/50'000, /*fanout=*/8,
                              &f.plane.broadcast, &f.plane.stage_a);
    benchmark::DoNotOptimize(f.plane.stage_a.data());
  }
  state.SetItemsProcessed(state.iterations() * PlaneFixture::kNodes);
}
BENCHMARK(BM_Broadcast);

void BM_BroadcastBaseline(benchmark::State& state) {
  PlaneFixture f;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SeedBroadcastDelays(f.net, rng, f.hosts[0], f.hosts, 50'000, 8).data());
  }
  state.SetItemsProcessed(state.iterations() * PlaneFixture::kNodes);
}
BENCHMARK(BM_BroadcastBaseline);

// VM dispatch A/B: the same heavy contract call (10,000 Newton square roots)
// through the pre-decoded dispatch loop vs the byte-decoding loop. The
// baseline program is a copy with the decoded table stripped, which routes
// Execute through the reference interpreter.
struct VmDispatchFixture {
  Program decoded_program;
  Program byte_program;
  ContractState state;
  std::vector<int64_t> args{5000, 5000};

  VmDispatchFixture() {
    const ContractDef& def = *FindContract("uber");
    decoded_program = CompileContract(def);
    byte_program = decoded_program;
    byte_program.decoded.clear();
    ExecRequest init;
    init.program = &decoded_program;
    init.function = "init";
    init.args = def.init_args;
    init.state = &state;
    Execute(init);
  }

  ExecResult Run(const Program& program) {
    ExecRequest request;
    request.program = &program;
    request.function = "check_distance";
    request.args = args;
    request.state = &state;
    return Execute(request);
  }
};

void BM_VmDispatch(benchmark::State& state) {
  VmDispatchFixture f;
  int64_t ops = 0;
  for (auto _ : state) {
    const ExecResult result = f.Run(f.decoded_program);
    benchmark::DoNotOptimize(result.gas_used);
    ops += result.ops_executed;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_VmDispatch);

void BM_VmDispatchBaseline(benchmark::State& state) {
  VmDispatchFixture f;
  int64_t ops = 0;
  for (auto _ : state) {
    const ExecResult result = f.Run(f.byte_program);
    benchmark::DoNotOptimize(result.gas_used);
    ops += result.ops_executed;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_VmDispatchBaseline);

// Window-merge A/B: canonicalising the per-worker push buffers at a window
// barrier. Each worker's buffer is already sorted by drain index (events
// buffer pushes in drain order), so two correct algorithms compete:
// concatenate + stable_sort on the uint32 drain key (the shipping merge in
// Simulation::RunWindow) versus a k-way streamed merge over the buffer heads
// through a binary heap. Both produce the same canonical sequence; the live
// queue insertion that follows is common to both and measured by
// BM_EventLoop, so the kernel times only the canonicalisation.
struct WindowMergeFixture {
  struct MergeItem {
    uint32_t drain;
    SimTime time;
  };
  static constexpr int kWorkers = 4;
  static constexpr size_t kPushesPerWorker = 256;

  std::vector<std::vector<MergeItem>> buffers;
  std::vector<MergeItem> merged;

  WindowMergeFixture() {
    uint64_t state = 0x9e3779b97f4a7c15ull;
    buffers.resize(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      buffers[static_cast<size_t>(w)].reserve(kPushesPerWorker);
      for (size_t i = 0; i < kPushesPerWorker; ++i) {
        // Post-window arrival times, scattered like jittered network delays;
        // drain indices increasing per worker and congruent to the worker id,
        // the shape a real window produces.
        const SimTime time =
            Milliseconds(10) + static_cast<SimTime>(SplitMix64(state) % Milliseconds(50));
        const uint32_t drain = static_cast<uint32_t>(i) * kWorkers +
                               static_cast<uint32_t>(w);
        buffers[static_cast<size_t>(w)].push_back(MergeItem{drain, time});
      }
    }
    merged.reserve(kWorkers * kPushesPerWorker);
  }

  uint64_t Checksum() const {
    // Order-sensitive fold so the compiler cannot elide or reorder the merge.
    uint64_t sum = 0;
    for (const MergeItem& item : merged) {
      sum = sum * 31 + item.drain + static_cast<uint64_t>(item.time);
    }
    return sum;
  }

  // The shipping merge: concatenate, then one bulk stable_sort on the key.
  uint64_t MergeCurrent() {
    merged.clear();
    for (const auto& buffer : buffers) {
      merged.insert(merged.end(), buffer.begin(), buffer.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const MergeItem& a, const MergeItem& b) { return a.drain < b.drain; });
    return Checksum();
  }

  // Baseline: k-way merge of the sorted buffers through a binary heap.
  uint64_t MergeBaseline() {
    merged.clear();
    using Head = std::pair<uint32_t, int>;  // (head drain index, worker)
    std::priority_queue<Head, std::vector<Head>, std::greater<>> heads;
    std::array<size_t, kWorkers> cursor{};
    for (int w = 0; w < kWorkers; ++w) {
      heads.emplace(buffers[static_cast<size_t>(w)].front().drain, w);
    }
    while (!heads.empty()) {
      const int w = heads.top().second;
      heads.pop();
      auto& buffer = buffers[static_cast<size_t>(w)];
      merged.push_back(buffer[cursor[static_cast<size_t>(w)]]);
      if (++cursor[static_cast<size_t>(w)] < buffer.size()) {
        heads.emplace(buffer[cursor[static_cast<size_t>(w)]].drain, w);
      }
    }
    for (size_t w = 0; w < kWorkers; ++w) {
      cursor[w] = 0;
    }
    return Checksum();
  }
};

void BM_WindowMerge(benchmark::State& state) {
  WindowMergeFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.MergeCurrent());
  }
  state.SetItemsProcessed(state.iterations() * WindowMergeFixture::kWorkers *
                          static_cast<int64_t>(WindowMergeFixture::kPushesPerWorker));
}
BENCHMARK(BM_WindowMerge);

void BM_WindowMergeBaseline(benchmark::State& state) {
  WindowMergeFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.MergeBaseline());
  }
  state.SetItemsProcessed(state.iterations() * WindowMergeFixture::kWorkers *
                          static_cast<int64_t>(WindowMergeFixture::kPushesPerWorker));
}
BENCHMARK(BM_WindowMergeBaseline);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(NasdaqGafamTrace());
    benchmark::DoNotOptimize(FifaTrace());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_YamlParse(benchmark::State& state) {
  const std::string doc = R"yaml(let:
  - &acc { sample: !account { number: 2000 } }
workloads:
  - number: 3
    client:
      behavior:
        - interaction: !invoke
            from: *acc
            function: "update(1, 1)"
          load:
            0: 4432
            120: 0
)yaml";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseYaml(doc));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_YamlParse);

// --- kernel speedup summary --------------------------------------------------
// Re-times the four kernel pairs with plain chrono medians (shared work
// functions with the registered benchmarks above) and records the results as
// the "kernels" entry of BENCH_runner.json, next to the runner binaries'
// stats. Medians of several repetitions keep one descheduling blip from
// polluting the recorded speedups.

template <typename Fn>
double MedianNsPerOp(Fn&& fn, int iters, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    // detlint: allow(D2, benchmark harness: timing the kernel is the point; nothing simulated reads it)
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      fn(static_cast<size_t>(i));
    }
    // detlint: allow(D2, benchmark harness: timing the kernel is the point; nothing simulated reads it)
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
        static_cast<double>(iters));
  }
  std::nth_element(samples.begin(), samples.begin() + reps / 2, samples.end());
  return samples[static_cast<size_t>(reps) / 2];
}

std::string KernelEntryJson(double current_ns, double baseline_ns) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"current_ns\": %.1f, \"baseline_ns\": %.1f, \"speedup\": %.2f}",
                current_ns, baseline_ns,
                current_ns > 0 ? baseline_ns / current_ns : 0.0);
  return buf;
}

void WriteKernelSummary(const char* path) {
  std::string json = "{";

  {
    PlaneFixture f;
    volatile SimDuration sink = 0;
    const double current = MedianNsPerOp(
        [&](size_t i) { sink = RoundReductionCurrent(f, f.SendsFor(i)); }, 200, 5);
    PlaneFixture g;
    const double baseline = MedianNsPerOp(
        [&](size_t i) { sink = RoundReductionSeed(g, g.SendsFor(i)); }, 200, 5);
    (void)sink;
    json += "\"pairwise_delays\": " + KernelEntryJson(current, baseline);
  }
  {
    PlaneFixture f;
    volatile SimDuration sink = 0;
    const double current = MedianNsPerOp(
        [&](size_t i) {
          sink = QuorumArrivalInto(*f.delays, f.SendsFor(i), i % 200, f.quorum,
                                   f.hop_scale, &f.plane);
        },
        20000, 5);
    const double baseline = MedianNsPerOp(
        [&](size_t i) {
          sink = SeedQuorumArrival(*f.delays, f.SendsFor(i), i % 200, f.quorum,
                                   f.hop_scale);
        },
        20000, 5);
    (void)sink;
    json += ", \"quorum_arrival\": " + KernelEntryJson(current, baseline);
  }
  {
    PlaneFixture f;
    Rng rng(5);
    volatile int64_t sink = 0;
    const double current = MedianNsPerOp(
        [&](size_t) {
          f.net.BroadcastDelaysInto(f.hosts[0], f.hosts, 50'000, 8,
                                    &f.plane.broadcast, &f.plane.stage_a);
          sink = f.plane.stage_a.back();
        },
        2000, 5);
    const double baseline = MedianNsPerOp(
        [&](size_t) {
          sink = SeedBroadcastDelays(f.net, rng, f.hosts[0], f.hosts, 50'000, 8).back();
        },
        2000, 5);
    (void)sink;
    json += ", \"broadcast\": " + KernelEntryJson(current, baseline);
  }
  {
    VmDispatchFixture f;
    volatile int64_t sink = 0;
    const double current =
        MedianNsPerOp([&](size_t) { sink = f.Run(f.decoded_program).gas_used; }, 20, 3);
    const double baseline =
        MedianNsPerOp([&](size_t) { sink = f.Run(f.byte_program).gas_used; }, 20, 3);
    (void)sink;
    json += ", \"vm_dispatch\": " + KernelEntryJson(current, baseline);
  }
  {
    WindowMergeFixture f;
    volatile uint64_t sink = 0;
    const double current =
        MedianNsPerOp([&](size_t) { sink = f.MergeCurrent(); }, 500, 5);
    WindowMergeFixture g;
    const double baseline =
        MedianNsPerOp([&](size_t) { sink = g.MergeBaseline(); }, 500, 5);
    (void)sink;
    json += ", \"window_merge\": " + KernelEntryJson(current, baseline);
  }

  json += "}";
  WriteRunnerJsonEntry(path, "kernels", json);
}

}  // namespace

// Called from main; reachable through the enclosing namespace even though the
// definition sits in the unnamed namespace of this TU.
void RunKernelSummary(const char* path) { WriteKernelSummary(path); }

}  // namespace diablo

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The kernel summary runs unconditionally (it is quick) so every bench
  // invocation refreshes the recorded speedups alongside the runner stats.
  diablo::RunKernelSummary("BENCH_runner.json");
  return 0;
}
