// Micro benchmarks (google-benchmark) for the substrates: event loop
// throughput, network delay sampling, SHA-256, Merkle trees, VM execution
// per dialect, mempool operations, trace generation and YAML parsing.
#include <benchmark/benchmark.h>

#include <cmath>
#include <functional>

#include "src/chain/mempool.h"
#include "src/config/yaml.h"
#include "src/contracts/contracts.h"
#include "src/crypto/merkle.h"
#include "src/crypto/sha256.h"
#include "src/net/network.h"
#include "src/sim/simulation.h"
#include "src/vm/interpreter.h"
#include "src/workload/trace.h"

namespace diablo {
namespace {

void BM_EventLoop(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    Simulation sim(1);
    uint64_t sink = 0;
    for (int64_t i = 0; i < events; ++i) {
      sim.Schedule(i, [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoop)->Arg(1000)->Arg(100000);

// The seed's event path, reconstructed: the same binary heap but with
// std::function entries (one heap allocation per capture beyond the
// libstdc++ 16-byte inline buffer). BM_EventLoop vs this pair is the
// before/after of the EventFn small-buffer swap.
class StdFunctionQueue {
 public:
  void Push(SimTime time, std::function<void()> fn) {
    heap_.push_back(Entry{time, next_seq_++, std::move(fn)});
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!(heap_[parent] > heap_[i])) {
        break;
      }
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  bool empty() const { return heap_.empty(); }

  std::function<void()> Pop(SimTime* time) {
    Entry top = std::move(heap_.front());
    *time = top.time;
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      SiftDown();
    } else {
      heap_.pop_back();
    }
    return std::move(top.fn);
  }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  void SiftDown() {
    const size_t n = heap_.size();
    size_t i = 0;
    while (true) {
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      size_t smallest = i;
      if (left < n && heap_[smallest] > heap_[left]) {
        smallest = left;
      }
      if (right < n && heap_[smallest] > heap_[right]) {
        smallest = right;
      }
      if (smallest == i) {
        return;
      }
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

// Capture shape mirroring the simulator's real closures: a couple of
// pointers plus ids/sizes, ~32 bytes — over std::function's inline buffer,
// under EventFn's.
struct FatCapture {
  uint64_t* sink;
  uint64_t a, b, c;
};

// The seed's BM_EventLoop workload (one pointer capture) on the seed's
// std::function queue — the direct baseline for BM_EventLoop.
void BM_EventLoopStdFunctionSmall(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    StdFunctionQueue queue;
    uint64_t sink = 0;
    for (int64_t i = 0; i < events; ++i) {
      queue.Push(i, [&sink] { ++sink; });
    }
    SimTime t = 0;
    while (!queue.empty()) {
      queue.Pop(&t)();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoopStdFunctionSmall)->Arg(1000)->Arg(100000);

void BM_EventLoopStdFunction(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    StdFunctionQueue queue;
    uint64_t sink = 0;
    for (int64_t i = 0; i < events; ++i) {
      FatCapture capture{&sink, static_cast<uint64_t>(i), 2, 3};
      queue.Push(i, [capture] { *capture.sink += capture.a; });
    }
    SimTime t = 0;
    while (!queue.empty()) {
      queue.Pop(&t)();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoopStdFunction)->Arg(1000)->Arg(100000);

void BM_EventLoopSboFunctor(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    EventQueue queue;
    uint64_t sink = 0;
    for (int64_t i = 0; i < events; ++i) {
      FatCapture capture{&sink, static_cast<uint64_t>(i), 2, 3};
      queue.Push(i, [capture] { *capture.sink += capture.a; });
    }
    SimTime t = 0;
    while (!queue.empty()) {
      queue.Pop(&t)();
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoopSboFunctor)->Arg(1000)->Arg(100000);

void BM_NetworkDelaySample(benchmark::State& state) {
  Simulation sim(1);
  Network net(&sim);
  std::vector<HostId> hosts;
  for (int i = 0; i < 20; ++i) {
    hosts.push_back(net.AddHost(static_cast<Region>(i % kRegionCount)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.DelaySample(hosts[i % 20], hosts[(i + 7) % 20], 256));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkDelaySample);

// The seed's delay math, reconstructed: triangle-matrix lookups plus unit
// conversions and a bandwidth division per sample, instead of the cached
// flat LinkParams table Network::DelaySample now reads.
void BM_NetworkDelayUncached(benchmark::State& state) {
  Simulation sim(1);
  Rng rng = sim.ForkRng();
  std::vector<Region> regions;
  for (int i = 0; i < 20; ++i) {
    regions.push_back(static_cast<Region>(i % kRegionCount));
  }
  const double jitter_frac = 0.05;
  size_t i = 0;
  for (auto _ : state) {
    const Region a = regions[i % 20];
    const Region b = regions[(i + 7) % 20];
    const SimDuration prop = MillisecondsF(Topology::RttMs(a, b) / 2.0);
    const double mbps = Topology::BandwidthMbps(a, b);
    const SimDuration trans =
        SecondsF(static_cast<double>(int64_t{256}) * 8.0 / (mbps * 1e6));
    const double jitter_scale = jitter_frac * std::abs(rng.NextGaussian(0.0, 1.0));
    const SimDuration jitter =
        static_cast<SimDuration>(static_cast<double>(prop) * jitter_scale);
    benchmark::DoNotOptimize(prop + trans + jitter);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkDelayUncached);

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(65536);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Digest256> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256Digest(std::string("tx") + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleRoot(leaves));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(64)->Arg(1024);

void BM_VmCounterAdd(benchmark::State& state) {
  const Program program = CompileContract(*FindContract("counter"));
  ContractState contract_state;
  ExecRequest request;
  request.program = &program;
  request.function = "add";
  request.state = &contract_state;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Execute(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VmCounterAdd);

void BM_VmUberCheckDistance(benchmark::State& state) {
  // The heavy one: 10,000 Newton square roots per call.
  const ContractDef& def = *FindContract("uber");
  const Program program = CompileContract(def);
  ContractState contract_state;
  ExecRequest init;
  init.program = &program;
  init.function = "init";
  init.args = def.init_args;
  init.state = &contract_state;
  Execute(init);

  ExecRequest request;
  request.program = &program;
  request.function = "check_distance";
  const std::vector<int64_t> args = {5000, 5000};
  request.args = args;
  request.state = &contract_state;
  request.dialect = static_cast<VmDialect>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Execute(request));
  }
}
BENCHMARK(BM_VmUberCheckDistance)
    ->Arg(static_cast<int>(VmDialect::kGeth))   // full execution
    ->Arg(static_cast<int>(VmDialect::kEbpf));  // stops at the budget

void BM_MempoolChurn(benchmark::State& state) {
  MempoolConfig config;
  Mempool pool(config);
  SimTime now = 0;
  TxId id = 0;
  std::vector<TxId> expired;
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      pool.Add(id, id % 64, now, now + 1000);
      ++id;
    }
    now += Seconds(1);
    benchmark::DoNotOptimize(
        pool.TakeReady(now, 0, 0, 100, [](TxId) { return 21000; },
                       [](TxId) { return 110; }, &expired));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_MempoolChurn);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(NasdaqGafamTrace());
    benchmark::DoNotOptimize(FifaTrace());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_YamlParse(benchmark::State& state) {
  const std::string doc = R"yaml(let:
  - &acc { sample: !account { number: 2000 } }
workloads:
  - number: 3
    client:
      behavior:
        - interaction: !invoke
            from: *acc
            function: "update(1, 1)"
          load:
            0: 4432
            120: 0
)yaml";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseYaml(doc));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_YamlParse);

}  // namespace
}  // namespace diablo

BENCHMARK_MAIN();
