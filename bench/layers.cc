// Per-layer breakdown extension (in the spirit of Blockbench's layered
// benchmarks, §7): isolate the consensus layer (empty-block cadence and
// finality), the execution layer (VM gas throughput per dialect) and the
// data layer (block dissemination time across the WAN).
#include "bench/bench_util.h"
#include "src/chain/vote_round.h"
#include "src/chains/chain_factory.h"
#include "src/chains/params.h"
#include "src/contracts/contracts.h"
#include "src/vm/interpreter.h"

namespace diablo {
namespace {

void ConsensusLayer() {
  std::printf("\nconsensus layer — empty-chain block cadence and finality"
              " (consortium, no load):\n");
  std::printf("%-10s %14s %16s\n", "chain", "blocks/min", "median finality");
  for (const std::string& name : AllChainNames()) {
    Simulation sim(5);
    Network net(&sim);
    const auto chain = BuildChain(name, GetDeployment("consortium"), &sim, &net);
    chain->Start();
    sim.RunUntil(Seconds(120));
    const Ledger& ledger = chain->context().ledger();
    SampleSet finality;
    for (size_t i = 0; i < ledger.block_count(); ++i) {
      finality.Add(ToSeconds(ledger.block(i).finalized_at - ledger.block(i).proposed_at));
    }
    std::printf("%-10s %14.1f %14.2f s\n", name.c_str(),
                static_cast<double>(ledger.block_count()) / 2.0, finality.Median());
  }
}

void ExecutionLayer() {
  std::printf("\nexecution layer — measured VM cost per DApp call, per dialect:\n");
  std::printf("%-10s", "");
  for (const char* contract : {"exchange", "dota", "counter", "uber", "youtube"}) {
    std::printf(" %14s", contract);
  }
  std::printf("\n");
  const struct {
    VmDialect dialect;
    const char* function;
  } kCalls[] = {{VmDialect::kGeth, nullptr}, {VmDialect::kEbpf, nullptr}};
  (void)kCalls;
  for (const VmDialect dialect :
       {VmDialect::kGeth, VmDialect::kAvm, VmDialect::kMoveVm, VmDialect::kEbpf}) {
    std::printf("%-10s", std::string(DialectName(dialect)).c_str());
    const struct {
      const char* contract;
      const char* function;
      std::vector<int64_t> args;
    } kProbes[] = {{"exchange", "buy_apple", {}},
                   {"dota", "update", {1, 1}},
                   {"counter", "add", {}},
                   {"uber", "check_distance", {5000, 5000}},
                   {"youtube", "upload", {1024}}};
    for (const auto& probe : kProbes) {
      CostOracle oracle(dialect);
      const int index = oracle.Deploy(*FindContract(probe.contract));
      if (index < 0) {
        std::printf(" %14s", "absent");
        continue;
      }
      const CallProfile& profile = oracle.Profile(index, probe.function, probe.args);
      if (profile.status != VmStatus::kOk) {
        std::printf(" %14s", "budget!");
      } else {
        std::printf(" %11lldgas", static_cast<long long>(profile.gas));
      }
    }
    std::printf("\n");
  }
}

void DataLayer() {
  std::printf("\ndata layer — 90th-percentile dissemination of a 1,000-tx block"
              " across 200 geo-distributed nodes:\n");
  Simulation sim(5);
  Network net(&sim);
  const DeploymentConfig consortium = GetDeployment("consortium");
  std::vector<HostId> hosts;
  for (int i = 0; i < consortium.node_count; ++i) {
    hosts.push_back(net.AddHost(consortium.NodeRegion(i)));
  }
  for (const int fanout : {4, 8, 199}) {
    const auto delays = net.BroadcastDelays(hosts[0], hosts, 1000 * 140, fanout);
    SampleSet arrival;
    for (const SimDuration d : delays) {
      if (d != kUnreachable) {
        arrival.Add(ToSeconds(d));
      }
    }
    std::printf("  fanout %3d (%s): p50 %5.2f s  p90 %5.2f s  max %5.2f s\n", fanout,
                fanout == 199 ? "leader star, HotStuff-style" : "gossip tree",
                arrival.Percentile(0.5), arrival.Percentile(0.9), arrival.Max());
  }
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::PrintHeader("Layer breakdown — consensus / execution / data (Blockbench-style)");
  diablo::ConsensusLayer();
  diablo::ExecutionLayer();
  diablo::DataLayer();
  return 0;
}
