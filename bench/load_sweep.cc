// Load sweep extension: offered load vs achieved throughput and latency for
// every chain — the classic saturation ("hockey stick") curves that §6.2 and
// §6.3 sample at two points (1,000 and 10,000 TPS).
#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Load sweep — offered native TPS vs achieved throughput / latency\n"
      "(datacenter configuration, 60 s per point)");
  const double scale = ScaleFromEnv();
  const double loads[] = {100, 300, 1000, 3000, 10000};

  std::printf("%-10s", "chain");
  for (const double load : loads) {
    std::printf("  %8.0f TPS offered", load);
  }
  std::printf("\n");

  for (const std::string& chain : AllChainNames()) {
    std::printf("%-10s", chain.c_str());
    for (const double load : loads) {
      const RunResult result =
          RunNativeBenchmark(chain, "datacenter", load, 60, /*seed=*/1, scale);
      std::printf("  %7.0f @ %7.1fs", result.report.avg_throughput,
                  result.report.avg_latency);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading the curve: throughput tracks the offered load until the chain's\n"
      "ceiling, then the overload behaviour of §6.3 takes over (saturation for\n"
      "the probabilistic chains, collapse for the leader-based BFT ones).\n");
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
