// Load sweep extension: offered load vs achieved throughput and latency for
// every chain — the classic saturation ("hockey stick") curves that §6.2 and
// §6.3 sample at two points (1,000 and 10,000 TPS). The (chain, load) grid
// fans out across DIABLO_JOBS workers.
#include <vector>

#include "bench/bench_util.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Load sweep — offered native TPS vs achieved throughput / latency\n"
      "(datacenter configuration, 60 s per point)");
  const double scale = ScaleFromEnv();
  const std::vector<double> loads = {100, 300, 1000, 3000, 10000};
  const std::vector<std::string> chains = AllChainNames();

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const std::string& chain : chains) {
    for (const double load : loads) {
      cells.push_back(
          {chain + "@" + std::to_string(static_cast<int>(load)), [chain, load, scale] {
             return RunNativeBenchmark(chain, "datacenter", load, 60, /*seed=*/1,
                                       scale);
           }});
    }
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  std::printf("%-10s", "chain");
  for (const double load : loads) {
    std::printf("  %8.0f TPS offered", load);
  }
  std::printf("\n");
  size_t cell = 0;
  for (const std::string& chain : chains) {
    std::printf("%-10s", chain.c_str());
    for (size_t l = 0; l < loads.size(); ++l, ++cell) {
      const RunResult& result = results[cell];
      std::printf("  %7.0f @ %7.1fs", result.report.avg_throughput,
                  result.report.avg_latency);
    }
    std::printf("\n");
  }
  std::printf(
      "\nreading the curve: throughput tracks the offered load until the chain's\n"
      "ceiling, then the overload behaviour of §6.3 takes over (saturation for\n"
      "the probabilistic chains, collapse for the leader-based BFT ones).\n");
  FinishRunnerReport("load_sweep", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
