// Fault-tolerance extension (beyond the paper's evaluation; in the spirit
// of Blockbench's fault injection, §7): partition a growing fraction of
// nodes mid-run and measure how each chain's throughput responds.
//
// Expected shapes: BFT quorum protocols (IBFT, HotStuff, BA*) survive f
// failures and stall past f; single-proposer schedules (Clique, TowerBFT,
// Avalanche) degrade gracefully by skipping dead proposers.
#include "bench/bench_util.h"
#include "src/chains/chain_factory.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

struct Outcome {
  double before_tps;
  double after_tps;
};

Outcome RunWithPartition(const std::string& chain_name, int partitioned) {
  Simulation sim(21);
  Network net(&sim);
  const auto chain =
      BuildChain(chain_name, GetDeployment("testnet"), &sim, &net);
  ChainContext& ctx = chain->context();

  // 200 TPS for 60 s; nodes die at t = 20 s.
  const double tps = 200;
  uint32_t seq = 0;
  for (int s = 0; s < 60; ++s) {
    for (int i = 0; i < static_cast<int>(tps); ++i) {
      Transaction tx;
      tx.account = seq % 200;
      tx.gas = NativeTransferGas(ctx.params().dialect);
      tx.size_bytes = kNativeTransferBytes;
      tx.submit_time = Seconds(s) + Milliseconds(5 * i);
      const TxId id = ctx.txs().Add(tx);
      const int endpoint =
          static_cast<int>(seq % static_cast<uint32_t>(ctx.node_count()));
      // Submit through live endpoints only once the partition hits.
      sim.ScheduleAt(tx.submit_time, [&ctx, id, endpoint, partitioned] {
        const int target = endpoint < partitioned
                               ? partitioned % ctx.node_count()
                               : endpoint;
        ctx.SubmitAtEndpoint(id, target, ctx.sim()->Now());
      });
      ++seq;
    }
  }
  sim.ScheduleAt(Seconds(20), [&net, &ctx, partitioned] {
    for (int i = 0; i < partitioned; ++i) {
      net.SetPartitioned(ctx.hosts()[static_cast<size_t>(i)], true);
    }
  });

  chain->Start();
  sim.RunUntil(Seconds(120));

  const TxStore& txs = ctx.txs();
  size_t before = 0;
  size_t after = 0;
  for (TxId id = 0; id < txs.size(); ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase != TxPhase::kCommitted) {
      continue;
    }
    if (tx.commit_time < Seconds(20)) {
      ++before;
    } else if (tx.commit_time >= Seconds(25) && tx.commit_time < Seconds(85)) {
      ++after;  // skip the 5 s transition window, stop at drain end
    }
  }
  return Outcome{static_cast<double>(before) / 20.0,
                 static_cast<double>(after) / 60.0};
}

void Run() {
  PrintHeader(
      "Fault tolerance — partitioning k of 10 testnet nodes at t = 20 s\n"
      "(200 TPS offered; committed TPS before vs after the partition)");
  std::printf("%-10s %20s %20s %20s\n", "chain", "k=0", "k=3 (= f)", "k=4 (> f)");
  for (const std::string& chain : AllChainNames()) {
    std::printf("%-10s", chain.c_str());
    for (const int k : {0, 3, 4}) {
      const Outcome outcome = RunWithPartition(chain, k);
      std::printf("   %6.0f -> %-6.0f TPS", outcome.before_tps, outcome.after_tps);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nBFT-quorum chains (quorum, diem, algorand) stall past f = 3 of 10;\n"
      "proposer-schedule chains (ethereum, solana, avalanche) keep committing\n"
      "the live nodes' share.\n");
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
