// Figure 2: evaluation of blockchain performance when executing realistic
// DApps. For each DApp (column) and blockchain (row): average workload
// submitted, average throughput, average latency and proportion of committed
// transactions. Consortium configuration: 200 machines, 8 vCPUs / 16 GiB,
// 10 regions (§6.1).
//
// The YouTube and Dota workloads carry millions of transactions; set
// DIABLO_SCALE (e.g. 0.2) to shrink them while preserving shape.
#include "bench/bench_util.h"
#include "src/chains/params.h"
#include "src/workload/dapps.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Figure 2 — realistic DApps on the consortium configuration\n"
      "(200 nodes x 8 vCPUs / 16 GiB over 10 regions)");
  const double scale = ScaleFromEnv();
  if (scale != 1.0) {
    std::printf("DIABLO_SCALE=%.3f: workload rates scaled down, shapes kept\n", scale);
  }

  for (const std::string& dapp : AllDappNames()) {
    const Trace trace = GetDappWorkload(dapp).trace.Scaled(scale);
    std::printf("\n--- %s: avg workload %.0f TPS, peak %.0f TPS, %zu s ---\n",
                dapp.c_str(), trace.AverageTps(), trace.PeakTps(),
                trace.duration_seconds());
    for (const std::string& chain : AllChainNames()) {
      const RunResult result =
          RunDappBenchmark(chain, "consortium", dapp, /*seed=*/1, scale);
      PrintRunRow(chain, result);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\npaper shapes: <1%% committed on YouTube everywhere; only Quorum > 622 TPS\n"
      "on Uber/FIFA; <= 66 TPS on Dota for every chain; no latency < 27 s; on\n"
      "NASDAQ Avalanche & Quorum commit > 86%%, the rest <= 47%%; Algorand has no\n"
      "YouTube bar (TEAL state limit).\n");
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
