// Figure 2: evaluation of blockchain performance when executing realistic
// DApps. For each DApp (column) and blockchain (row): average workload
// submitted, average throughput, average latency and proportion of committed
// transactions. Consortium configuration: 200 machines, 8 vCPUs / 16 GiB,
// 10 regions (§6.1).
//
// The YouTube and Dota workloads carry millions of transactions; set
// DIABLO_SCALE (e.g. 0.2) to shrink them while preserving shape. All
// (dapp, chain) cells run in parallel under DIABLO_JOBS.
#include <vector>

#include "bench/bench_util.h"
#include "src/chains/params.h"
#include "src/workload/dapps.h"

namespace diablo {
namespace {

void Run() {
  PrintHeader(
      "Figure 2 — realistic DApps on the consortium configuration\n"
      "(200 nodes x 8 vCPUs / 16 GiB over 10 regions)");
  const double scale = ScaleFromEnv();
  if (scale != 1.0) {
    std::printf("DIABLO_SCALE=%.3f: workload rates scaled down, shapes kept\n", scale);
  }
  const std::vector<std::string> dapps = AllDappNames();
  const std::vector<std::string> chains = AllChainNames();

  ParallelRunner runner;
  std::vector<ExperimentCell> cells;
  for (const std::string& dapp : dapps) {
    for (const std::string& chain : chains) {
      cells.push_back({dapp + "/" + chain, [chain, dapp, scale] {
                         return RunDappBenchmark(chain, "consortium", dapp,
                                                 /*seed=*/1, scale);
                       }});
    }
  }
  const std::vector<RunResult> results = RunCells(runner, std::move(cells));

  size_t cell = 0;
  for (const std::string& dapp : dapps) {
    const Trace trace = GetDappWorkload(dapp).trace.Scaled(scale);
    std::printf("\n--- %s: avg workload %.0f TPS, peak %.0f TPS, %zu s ---\n",
                dapp.c_str(), trace.AverageTps(), trace.PeakTps(),
                trace.duration_seconds());
    for (const std::string& chain : chains) {
      PrintRunRow(chain, results[cell++]);
    }
  }
  std::printf(
      "\npaper shapes: <1%% committed on YouTube everywhere; only Quorum > 622 TPS\n"
      "on Uber/FIFA; <= 66 TPS on Dota for every chain; no latency < 27 s; on\n"
      "NASDAQ Avalanche & Quorum commit > 86%%, the rest <= 47%%; Algorand has no\n"
      "YouTube bar (TEAL state limit).\n");
  FinishRunnerReport("fig2_dapps_consortium", runner);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::Run();
  return 0;
}
