// End-to-end invariants across the full matrix of chains × deployments and
// workload kinds: transaction conservation, timestamp sanity, ledger
// consistency and report/accounting agreement.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <tuple>

#include "src/core/interface.h"
#include "src/core/results.h"
#include "src/core/runner.h"
#include "src/core/secondary.h"

namespace diablo {
namespace {

using MatrixParam = std::tuple<std::string, std::string>;

class ChainDeploymentMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ChainDeploymentMatrix, ConservationAndTimestampInvariants) {
  const auto& [chain, deployment] = GetParam();
  BenchmarkSetup setup;
  setup.chain = chain;
  setup.deployment = deployment;
  setup.drain = Seconds(45);
  Primary primary(setup);
  const RunResult result = primary.RunNative(ConstantTrace(120, 8));
  const Report& report = result.report;

  // Conservation: every submitted transaction is in exactly one bucket.
  EXPECT_EQ(report.submitted,
            report.committed + report.dropped + report.aborted + report.pending)
      << chain << "/" << deployment;
  EXPECT_EQ(report.submitted, 960u);
  EXPECT_GT(report.committed, 0u) << chain << "/" << deployment;

  // Latency sanity.
  if (report.latencies.count() > 0) {
    EXPECT_GT(report.latencies.Min(), 0.0);
    EXPECT_LE(report.avg_latency, report.max_latency);
    EXPECT_LE(report.median_latency, report.p95_latency);
  }

  // Per-second series agree with the totals.
  EXPECT_EQ(report.submitted_per_second.TotalCount(), report.submitted);
  EXPECT_EQ(report.committed_per_second.TotalCount(), report.committed);

  // The ledger carried at least the committed transactions.
  EXPECT_GE(result.chain_stats.blocks_produced, 1u);
  EXPECT_GE(result.chain_stats.txs_committed, report.committed);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ChainDeploymentMatrix,
    ::testing::Combine(::testing::Values("algorand", "avalanche", "diem", "quorum",
                                         "ethereum", "solana"),
                       ::testing::Values("testnet", "devnet")),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

class DappMatrix : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(DappMatrix, DappRunsAccountForEveryTransaction) {
  const auto& [chain, dapp] = GetParam();
  const RunResult result = RunDappBenchmark(chain, "testnet", dapp, 1, /*scale=*/0.01);
  if (result.unsupported) {
    // Only youtube-on-algorand may be unsupported in this matrix.
    EXPECT_EQ(chain, "algorand");
    EXPECT_EQ(dapp, "youtube");
    return;
  }
  const Report& report = result.report;
  EXPECT_EQ(report.submitted,
            report.committed + report.dropped + report.aborted + report.pending)
      << chain << "/" << dapp;
  if (!result.failure_reason.empty()) {
    // Budget-exceeded runs abort everything client-side.
    EXPECT_EQ(report.committed, 0u);
    EXPECT_EQ(report.aborted, report.submitted - report.dropped - report.pending);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChainsByDapps, DappMatrix,
    ::testing::Combine(::testing::Values("algorand", "diem", "quorum", "solana"),
                       ::testing::Values("exchange", "fifa", "uber", "youtube")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(LedgerConsistencyTest, BlocksCarryMonotoneHeightsAndFinality) {
  Simulation sim(9);
  Network net(&sim);
  const auto chain = BuildChain("quorum", GetDeployment("testnet"), &sim, &net);
  ChainContext& ctx = chain->context();
  for (int i = 0; i < 500; ++i) {
    Transaction tx;
    tx.account = static_cast<uint32_t>(i % 50);
    tx.gas = 21000;
    tx.size_bytes = kNativeTransferBytes;
    tx.submit_time = Milliseconds(10 * i);
    const TxId id = ctx.txs().Add(tx);
    sim.ScheduleAt(tx.submit_time, [&ctx, id, i] {
      ctx.SubmitAtEndpoint(id, i % ctx.node_count(), ctx.sim()->Now());
    });
  }
  chain->Start();
  sim.RunUntil(Seconds(30));

  const Ledger& ledger = ctx.ledger();
  ASSERT_GT(ledger.block_count(), 1u);
  uint64_t prev_height = 0;
  SimTime prev_final = -1;
  size_t ledger_txs = 0;
  for (size_t i = 0; i < ledger.block_count(); ++i) {
    const Block& block = ledger.block(i);
    EXPECT_GT(block.height, prev_height);
    EXPECT_GE(block.finalized_at, block.proposed_at);
    EXPECT_GE(block.finalized_at, prev_final);
    EXPECT_GE(block.bytes, kBlockHeaderBytes);
    prev_height = block.height;
    prev_final = block.finalized_at;
    ledger_txs += block.tx_count;
  }
  EXPECT_EQ(ledger_txs, ledger.total_txs());
  EXPECT_EQ(ledger_txs, ctx.stats().txs_committed);
}

TEST(ResultsRoundTripTest, CsvFileMatchesStore) {
  const std::string path = "/tmp/diablo_test_results.csv";
  TxStore txs;
  for (int i = 0; i < 10; ++i) {
    Transaction tx;
    tx.submit_time = Seconds(i);
    tx.commit_time = Seconds(i) + Milliseconds(1500);
    tx.phase = i % 3 == 0 ? TxPhase::kDropped : TxPhase::kCommitted;
    txs.Add(tx);
  }
  ASSERT_TRUE(WriteResultsCsvFile(path, txs));
  std::ifstream file(path);
  std::string line;
  std::getline(file, line);
  EXPECT_EQ(line, "submit_time,latency,status");
  size_t rows = 0;
  size_t dropped = 0;
  while (std::getline(file, line)) {
    ++rows;
    if (line.find("dropped") != std::string::npos) {
      ++dropped;
    }
  }
  EXPECT_EQ(rows, 10u);
  EXPECT_EQ(dropped, 4u);
  std::remove(path.c_str());
}

TEST(SecondaryAccountingTest, SchedulesAndSubmitsEverything) {
  Simulation sim(4);
  Network net(&sim);
  const auto chain = BuildChain("solana", GetDeployment("testnet"), &sim, &net);
  SimConnector connector(chain.get());
  ResourceSpec accounts_spec;
  accounts_spec.kind = ResourceSpec::Kind::kAccounts;
  accounts_spec.account_count = 10;
  Resource accounts;
  connector.CreateResource(accounts_spec, &accounts);

  Secondary secondary(0, Region::kOhio, &sim,
                      connector.CreateClient(Region::kOhio, {0}));
  for (int i = 0; i < 50; ++i) {
    const TxId id = connector.Encode(InteractionSpec{}, accounts,
                                     Milliseconds(100 * i));
    secondary.Assign(Milliseconds(100 * i), id);
  }
  EXPECT_EQ(secondary.assigned(), 50u);
  secondary.Start();
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(secondary.submitted(), 50u);
  EXPECT_EQ(secondary.behind_schedule(), 0u);
}

}  // namespace
}  // namespace diablo
