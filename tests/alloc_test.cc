// Heap-allocation lock for the consensus message plane.
//
// The whole point of MessagePlaneScratch is that steady-state vote rounds
// run without touching the allocator: broadcast, stage fills, both quorum
// reductions and the median all work over warm caller-owned buffers. This
// binary replaces global operator new/delete with counting wrappers and
// asserts that, after one warm-up round, a full engine-style round performs
// ZERO heap allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/chain/vote_round.h"
#include "src/net/deployment.h"
#include "src/net/network.h"
#include "src/sim/simulation.h"
#include "src/support/check.h"

namespace {

std::atomic<uint64_t> g_allocation_count{0};

void* CountedAlloc(size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }

namespace diablo {
namespace {

// One PBFT-shaped round over the scratch plane: proposal broadcast, arrival
// transform in place, two vote stages, commit median. Mirrors what
// IbftEngine::Round does per block.
SimDuration EngineStyleRound(Network* net, const std::vector<HostId>& hosts,
                             const PairwiseDelays& delays,
                             MessagePlaneScratch* plane, size_t quorum) {
  const size_t n = hosts.size();
  std::vector<SimDuration>& bcast = plane->stage_a;
  net->BroadcastDelaysInto(hosts[0], hosts, /*bytes=*/50'000, /*fanout=*/8,
                           &plane->broadcast, &bcast);
  for (size_t i = 0; i < n; ++i) {
    if (bcast[i] != kUnreachable) {
      bcast[i] += Milliseconds(5);  // stand-in for build + verify time
    }
  }
  std::vector<SimDuration>& prepared = plane->stage_b;
  QuorumArrivalAllInto(delays, bcast, quorum, 1.0, plane, &prepared, /*hint_slot=*/0);
  std::vector<SimDuration>& committed = plane->stage_c;
  QuorumArrivalAllInto(delays, prepared, quorum, 1.0, plane, &committed,
                       /*hint_slot=*/1);
  return MedianDelayInto(committed, plane);
}

TEST(AllocationLock, SteadyStateVoteRoundAllocatesNothing) {
  if (kCheckedBuild) {
    // Checked builds sample nth_element cross-checks inside the vote plane,
    // and those intentionally allocate reference buffers. The zero-allocation
    // guarantee is a property of the unchecked production build.
    GTEST_SKIP() << "allocation lock does not apply under DIABLO_CHECKED";
  }
  Simulation sim(42);
  Network net(&sim);
  const DeploymentConfig testnet = GetDeployment("testnet");
  const int n = 100;
  std::vector<HostId> hosts;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(net.AddHost(testnet.NodeRegion(i)));
  }
  PairwiseDelays delays(&net, hosts, 256);
  MessagePlaneScratch plane;
  const size_t quorum = static_cast<size_t>(ByzantineQuorum(n));

  // Warm-up: first round sizes every buffer in the scratch.
  const SimDuration warm = EngineStyleRound(&net, hosts, delays, &plane, quorum);
  EXPECT_NE(warm, kUnreachable);

  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  SimDuration latest = 0;
  for (int round = 0; round < 10; ++round) {
    const SimDuration finality =
        EngineStyleRound(&net, hosts, delays, &plane, quorum);
    ASSERT_NE(finality, kUnreachable);
    latest = finality;
  }
  const uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations across 10 steady-state rounds";
  EXPECT_GT(latest, 0);
}

TEST(AllocationLock, CounterSeesOrdinaryAllocations) {
  // Sanity check that the counting allocator is actually installed.
  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  std::vector<int>* v = new std::vector<int>(1000);
  v->resize(5000);
  delete v;
  const uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_GE(after - before, 2u);
}

}  // namespace
}  // namespace diablo
