// Calibration guards: the §6 result *shapes* that EXPERIMENTS.md documents
// must survive refactoring. Each test pins one headline observation of the
// paper with tolerances wide enough for legitimate re-tuning.
#include <gtest/gtest.h>

#include "src/core/runner.h"

namespace diablo {
namespace {

// --- Fig. 3: scalability at 1,000 TPS ---------------------------------------

TEST(CalibrationFig3, SolanaHandlesEveryConfiguration) {
  for (const char* deployment : {"datacenter", "community"}) {
    const RunResult result = RunNativeBenchmark("solana", deployment, 1000, 60);
    EXPECT_GE(result.report.avg_throughput, 750.0) << deployment;
    EXPECT_LE(result.report.avg_latency, 21.0) << deployment;
  }
}

TEST(CalibrationFig3, DiemShinesOnlyLocally) {
  const RunResult local = RunNativeBenchmark("diem", "datacenter", 1000, 60);
  EXPECT_GE(local.report.avg_throughput, 900.0);
  EXPECT_LE(local.report.avg_latency, 2.0);
  const RunResult wan = RunNativeBenchmark("diem", "community", 1000, 60);
  EXPECT_LE(wan.report.avg_throughput, 0.6 * local.report.avg_throughput);
  EXPECT_GE(wan.report.avg_latency, 5.0 * local.report.avg_latency);
}

TEST(CalibrationFig3, AvalancheThrottledEverywhere) {
  for (const char* deployment : {"datacenter", "community"}) {
    const RunResult result = RunNativeBenchmark("avalanche", deployment, 1000, 60);
    EXPECT_LE(result.report.avg_throughput, 280.0) << deployment;
  }
}

TEST(CalibrationFig3, DatacenterEqualsTestnet) {
  // §6.2: "no significant difference between the datacenter and the testnet".
  for (const char* chain : {"quorum", "solana", "algorand"}) {
    const RunResult dc = RunNativeBenchmark(chain, "datacenter", 1000, 60);
    const RunResult tn = RunNativeBenchmark(chain, "testnet", 1000, 60);
    EXPECT_NEAR(dc.report.avg_throughput, tn.report.avg_throughput,
                0.1 * dc.report.avg_throughput + 10)
        << chain;
  }
}

TEST(CalibrationFig3, AlgorandLatencyBand) {
  // Table 1: ~885 TPS at ~8.5 s on the testnet.
  const RunResult result = RunNativeBenchmark("algorand", "testnet", 1000, 120);
  EXPECT_GE(result.report.avg_throughput, 650.0);
  EXPECT_LE(result.report.avg_throughput, 1000.0);
  EXPECT_GE(result.report.avg_latency, 5.0);
  EXPECT_LE(result.report.avg_latency, 13.0);
}

// --- Fig. 4: robustness at 10,000 TPS ----------------------------------------

TEST(CalibrationFig4, LeaderBasedBftDegradesHardest) {
  const RunResult diem_low = RunNativeBenchmark("diem", "datacenter", 1000, 60);
  const RunResult diem_high = RunNativeBenchmark("diem", "datacenter", 10000, 60);
  EXPECT_LE(diem_high.report.avg_throughput, diem_low.report.avg_throughput / 5.0);

  const RunResult quorum_high = RunNativeBenchmark("quorum", "datacenter", 10000, 120);
  EXPECT_LE(quorum_high.report.avg_throughput, 300.0);  // collapse toward zero
  EXPECT_GT(quorum_high.chain_stats.view_changes, 0u);
}

TEST(CalibrationFig4, ProbabilisticChainsSurvive) {
  const RunResult avalanche_low = RunNativeBenchmark("avalanche", "datacenter", 1000, 60);
  const RunResult avalanche_high =
      RunNativeBenchmark("avalanche", "datacenter", 10000, 60);
  // §6.3: Avalanche's throughput is not negatively affected.
  EXPECT_GE(avalanche_high.report.avg_throughput,
            0.9 * avalanche_low.report.avg_throughput);

  const RunResult solana_high = RunNativeBenchmark("solana", "datacenter", 10000, 60);
  EXPECT_GE(solana_high.report.avg_throughput, 200.0);  // degraded, not dead
}

TEST(CalibrationFig4, EthereumCommitsAlmostNothing) {
  const RunResult result = RunNativeBenchmark("ethereum", "testnet", 10000, 120);
  EXPECT_LE(result.report.commit_ratio, 0.03);
}

// --- Fig. 5: universality -----------------------------------------------------

TEST(CalibrationFig5, OnlyGethChainsRunTheUberDApp) {
  for (const char* chain : {"algorand", "diem", "solana"}) {
    const RunResult result = RunDappBenchmark(chain, "consortium", "uber", 1, 0.05);
    EXPECT_EQ(result.failure_reason, "budget exceeded") << chain;
  }
  const RunResult quorum = RunDappBenchmark("quorum", "consortium", "uber", 1, 1.0);
  EXPECT_GE(quorum.report.avg_throughput, 350.0);
  const RunResult ethereum = RunDappBenchmark("ethereum", "consortium", "uber", 1, 1.0);
  EXPECT_LE(ethereum.report.avg_throughput, 169.0);
  EXPECT_GE(quorum.report.avg_throughput, 5.0 * ethereum.report.avg_throughput);
}

// --- Fig. 6: availability ------------------------------------------------------

TEST(CalibrationFig6, QuorumAbsorbsTheAppleBurst) {
  const RunResult result = RunDappBenchmark("quorum", "consortium", "apple");
  EXPECT_GE(result.report.commit_ratio, 0.99);
  EXPECT_LE(result.report.median_latency, 10.0);
}

TEST(CalibrationFig6, DroppingChainsPlateauOnApple) {
  for (const char* chain : {"algorand", "diem", "solana"}) {
    const RunResult result = RunDappBenchmark(chain, "consortium", "apple");
    EXPECT_LE(result.report.commit_ratio, 0.85) << chain;
    EXPECT_GE(result.report.commit_ratio, 0.30) << chain;
  }
}

TEST(CalibrationFig6, EveryoneHandlesTheGoogleBurst) {
  // §6.5: all chains commit >97% of the Google workload.
  for (const char* chain : {"algorand", "avalanche", "diem", "quorum", "solana"}) {
    const RunResult result = RunDappBenchmark(chain, "consortium", "google");
    EXPECT_GE(result.report.commit_ratio, 0.97) << chain;
  }
}

// --- Fig. 2: the headline ------------------------------------------------------

TEST(CalibrationFig2, NobodySurvivesYoutube) {
  // §6.1: the proportion of commits is lower than 1% for all evaluated
  // blockchains (checked at 10% workload scale to keep the test quick; the
  // overload is ~40x even then).
  for (const char* chain : {"quorum", "solana"}) {
    const RunResult result = RunDappBenchmark(chain, "consortium", "youtube", 1, 0.1);
    EXPECT_LE(result.report.commit_ratio, 0.10) << chain;
  }
}

}  // namespace
}  // namespace diablo
