#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"
#include "src/support/check.h"
#include "src/support/rng.h"
#include "src/support/shard_guard.h"

namespace diablo {
namespace {

TEST(EventFnTest, InvokesInlineCapture) {
  int fired = 0;
  EventFn fn([&fired] { ++fired; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventFnTest, DefaultIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFnTest, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  EventFn a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(counter.use_count(), 2);
  b();
  EXPECT_EQ(*counter, 1);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
}

TEST(EventFnTest, DestructionReleasesCapture) {
  auto token = std::make_shared<int>(7);
  {
    EventFn fn([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventFnTest, OversizedCaptureUsesHeapAndStillRuns) {
  // Way past kInlineSize: forces the heap fallback path.
  std::array<uint64_t, 16> payload{};
  payload[0] = 41;
  payload[15] = 1;
  uint64_t out = 0;
  EventFn fn([payload, &out] { out = payload[0] + payload[15]; });
  EventFn moved(std::move(fn));
  moved();
  EXPECT_EQ(out, 42u);
}

TEST(EventFnTest, AssignmentDestroysPreviousCapture) {
  auto first = std::make_shared<int>(1);
  auto second = std::make_shared<int>(2);
  EventFn fn([first] { (void)*first; });
  fn = EventFn([second] { (void)*second; });
  EXPECT_EQ(first.use_count(), 1);
  EXPECT_EQ(second.use_count(), 2);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Push(Seconds(3), [&] { fired.push_back(3); });
  queue.Push(Seconds(1), [&] { fired.push_back(1); });
  queue.Push(Seconds(2), [&] { fired.push_back(2); });
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Push(Seconds(1), [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, PopReturnsTime) {
  EventQueue queue;
  queue.Push(Milliseconds(250), [] {});
  SimTime t = 0;
  queue.Pop(&t);
  EXPECT_EQ(t, Milliseconds(250));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, ClearResets) {
  EventQueue queue;
  queue.Push(1, [] {});
  queue.Push(2, [] {});
  queue.Clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, ClearReleasesCaptures) {
  auto token = std::make_shared<int>(0);
  EventQueue queue;
  queue.Push(1, [token] { ++*token; });
  queue.Push(2, [token] { ++*token; });
  EXPECT_EQ(token.use_count(), 3);
  queue.Clear();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueueTest, TiesFireInInsertionOrderAfterClear) {
  // Clear() resets the tie-break sequence; a reused queue must still fire
  // equal-time events in their (new) insertion order.
  EventQueue queue;
  queue.Push(5, [] {});
  queue.Clear();
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    queue.Push(Seconds(2), [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t)();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, MixedInlineAndHeapCaptures) {
  EventQueue queue;
  queue.Reserve(64);
  std::vector<int> fired;
  std::array<int, 32> big{};
  big[31] = 2;
  queue.Push(Seconds(2), [&fired, big] { fired.push_back(big[31]); });
  queue.Push(Seconds(1), [&fired] { fired.push_back(1); });
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, LargeHeapStaysSorted) {
  EventQueue queue;
  // Push pseudo-random times, then verify pops are monotone.
  uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    queue.Push(static_cast<SimTime>(SplitMix64(state) % 1000000), [] {});
  }
  SimTime prev = -1;
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SimulationTest, ClockAdvances) {
  Simulation sim(1);
  SimTime observed = -1;
  sim.Schedule(Seconds(5), [&] { observed = sim.Now(); });
  sim.Run();
  EXPECT_EQ(observed, Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim(1);
  std::vector<SimTime> times;
  sim.Schedule(Seconds(1), [&] {
    times.push_back(sim.Now());
    sim.Schedule(Seconds(1), [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Seconds(1));
  EXPECT_EQ(times[1], Seconds(2));
}

TEST(SimulationTest, RunUntilStopsAtHorizon) {
  Simulation sim(1);
  int fired = 0;
  sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Schedule(Seconds(10), [&] { ++fired; });
  const uint64_t executed = sim.RunUntil(Seconds(5));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StopHaltsLoop) {
  Simulation sim(1);
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // A later Run resumes with the remaining events.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, PastSchedulesClampToNow) {
  Simulation sim(1);
  SimTime when = -1;
  sim.Schedule(Seconds(3), [&] {
    sim.ScheduleAt(Seconds(1), [&] { when = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(when, Seconds(3));
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim(1);
  SimTime when = -1;
  sim.Schedule(-Seconds(4), [&] { when = sim.Now(); });
  sim.Run();
  EXPECT_EQ(when, 0);
}

TEST(SimulationTest, EventCountTracked) {
  Simulation sim(1);
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(Seconds(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

// --- Windowed (intra-cell parallel) scheduler ---

// One scenario, parameterised only by the worker count: four shards firing
// six rounds of events close enough in time to share lookahead windows. Each
// sharded event logs its own clock and a draw from its shard-owned stream,
// and pushes a serial recorder whose order is decided by the barrier merge.
// Every observable must be identical at any worker count — including the
// legacy single-threaded loop (workers == 0, ConfigureCellWorkers never
// called).
struct ShardScenarioResult {
  std::vector<std::vector<std::pair<SimTime, uint64_t>>> shard_logs;
  std::vector<std::tuple<SimTime, int, int>> serial_log;  // time, shard, round
  uint64_t events = 0;
  uint64_t barriers = 0;
  SimTime end_now = 0;

  bool operator==(const ShardScenarioResult& o) const {
    return shard_logs == o.shard_logs && serial_log == o.serial_log &&
           events == o.events && end_now == o.end_now;
  }
};

ShardScenarioResult RunShardScenario(int workers) {
  constexpr int kShards = 4;
  constexpr int kRounds = 6;
  ShardScenarioResult out;
  out.shard_logs.resize(kShards);
  std::vector<Rng> rngs;
  for (int s = 0; s < kShards; ++s) {
    rngs.emplace_back(1000 + static_cast<uint64_t>(s));
  }
  Simulation sim(7);
  if (workers > 0) {
    sim.ConfigureCellWorkers(workers, Milliseconds(10));
  }
  for (int s = 0; s < kShards; ++s) {
    for (int r = 0; r < kRounds; ++r) {
      // Shards s=0..3 land at 20r..20r+3 ms: all four fit one 10 ms window.
      const SimTime at = Milliseconds(20 * r + s);
      sim.ScheduleAtOn(static_cast<uint32_t>(s), at, [&, s, r, at] {
        out.shard_logs[static_cast<size_t>(s)].emplace_back(sim.Now(),
                                                            rngs[static_cast<size_t>(s)].NextU64());
        // +15 ms is past the window end (20r + 10 ms): conservatism holds.
        sim.ScheduleAt(at + Milliseconds(15), [&out, &sim, s, r] {
          out.serial_log.emplace_back(sim.Now(), s, r);
        });
      });
    }
  }
  sim.RunUntil(Seconds(1));
  out.events = sim.events_executed();
  out.barriers = sim.window_barriers();
  out.end_now = sim.Now();
  return out;
}

TEST(WindowedSimulationTest, TrajectoryIsWorkerCountInvariant) {
  const ShardScenarioResult legacy = RunShardScenario(0);
  ASSERT_EQ(legacy.serial_log.size(), 24u);
  EXPECT_EQ(legacy.barriers, 0u);
  for (const int workers : {1, 2, 4}) {
    const ShardScenarioResult got = RunShardScenario(workers);
    EXPECT_TRUE(got == legacy) << "workers=" << workers;
    EXPECT_GT(got.barriers, 0u) << "workers=" << workers;
  }
}

TEST(WindowedSimulationTest, BarrierMergePreservesSerialPushOrder) {
  for (const int workers : {1, 2, 4}) {
    Simulation sim(3);
    sim.ConfigureCellWorkers(workers, Milliseconds(5));
    std::vector<int> order;
    for (int s = 0; s < 4; ++s) {
      // All four recorders land at the same timestamp, so their relative
      // order is decided purely by the canonical (drain-order) merge.
      sim.ScheduleAtOn(static_cast<uint32_t>(s), Milliseconds(1), [&sim, &order, s] {
        sim.ScheduleAt(Milliseconds(10), [&order, s] { order.push_back(s); });
      });
    }
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3})) << "workers=" << workers;
  }
}

TEST(WindowedSimulationTest, WorkerNowIsTheEventsOwnTimestamp) {
  Simulation sim(2);
  sim.ConfigureCellWorkers(2, Milliseconds(10));
  std::array<SimTime, 2> seen{-1, -1};
  sim.ScheduleAtOn(0, Milliseconds(1), [&] { seen[0] = sim.Now(); });
  sim.ScheduleAtOn(1, Milliseconds(2), [&] { seen[1] = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen[0], Milliseconds(1));
  EXPECT_EQ(seen[1], Milliseconds(2));
}

TEST(WindowedSimulationTest, ScheduleOnFromWorkerIsRelativeToEventTime) {
  Simulation sim(2);
  sim.ConfigureCellWorkers(2, Milliseconds(5));
  SimTime second = -1;
  sim.ScheduleAtOn(0, Milliseconds(1), [&] {
    sim.ScheduleOn(0, Milliseconds(8), [&] { second = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(second, Milliseconds(9));
}

TEST(WindowedSimulationTest, ScratchArenaIsWorkerOwnedDuringWindows) {
  Simulation sim(5);
  sim.ConfigureCellWorkers(4, Milliseconds(5));
  std::array<bool, 4> intact{};
  for (int s = 0; s < 4; ++s) {
    sim.ScheduleAtOn(static_cast<uint32_t>(s), Milliseconds(1), [&sim, &intact, s] {
      uint32_t* data = sim.scratch_arena().AllocateArray<uint32_t>(64);
      for (uint32_t i = 0; i < 64; ++i) {
        data[i] = static_cast<uint32_t>(s) * 1000 + i;
      }
      bool good = true;
      for (uint32_t i = 0; i < 64; ++i) {
        good = good && data[i] == static_cast<uint32_t>(s) * 1000 + i;
      }
      intact[static_cast<size_t>(s)] = good;
    });
  }
  sim.Run();
  for (const bool good : intact) {
    EXPECT_TRUE(good);
  }
  // Outside any window the serial fallback arena serves allocations.
  EXPECT_NE(sim.scratch_arena().AllocateArray<uint32_t>(4), nullptr);
}

TEST(WindowedSimulationTest, RunUntilHorizonSemanticsMatchLegacy) {
  Simulation sim(1);
  sim.ConfigureCellWorkers(2, Milliseconds(5));
  int fired = 0;
  sim.ScheduleAtOn(0, Seconds(1), [&] { ++fired; });
  sim.ScheduleAtOn(1, Seconds(10), [&] { ++fired; });
  const uint64_t executed = sim.RunUntil(Seconds(5));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(WindowedSimulationDeathTest, LookaheadViolationTripsCheckedBuild) {
  if (!kCheckedBuild) {
    GTEST_SKIP() << "invariant assertions are compiled out of this build";
  }
  ASSERT_DEATH(
      {
        Simulation sim(1);
        sim.ConfigureCellWorkers(1, Milliseconds(10));
        sim.ScheduleAtOn(0, Milliseconds(1), [&sim] {
          // Scheduling inside the event's own window breaks conservatism.
          sim.ScheduleAt(Milliseconds(2), [] {});
        });
        sim.Run();
      },
      "lookahead");
}

TEST(ShardGuardTest, OwnedAndSerialAccessesPass) {
  // The tracker's allow conditions: owner-shard access inside a window,
  // serial access outside any window, and any access while unbound. All
  // three must be silent at any worker count.
  Simulation sim(1);
  sim.ConfigureCellWorkers(2, Milliseconds(10));
  shard_guard::ShardOwner owner;
  owner.AssertAccess();  // unbound: always allowed
  owner.Bind(3, "test structure");
  owner.AssertAccess();  // serial context: allowed
  int touched = 0;
  sim.ScheduleAtOn(3, Milliseconds(1), [&] {
    owner.AssertAccess();  // owning shard inside a window: allowed
    ++touched;
  });
  sim.Run();
  EXPECT_EQ(touched, 1);
}

TEST(ShardGuardDeathTest, CrossShardAccessTripsCheckedBuild) {
  if (!kCheckedBuild) {
    GTEST_SKIP() << "shard-ownership tracking is compiled out of this build";
  }
  ASSERT_DEATH(
      {
        Simulation sim(1);
        sim.ConfigureCellWorkers(1, Milliseconds(10));
        shard_guard::ShardOwner owner;
        owner.Bind(0, "test structure");
        // An event on shard 1 touching shard 0's structure is exactly the
        // cross-shard write the windowed scheduler cannot tolerate. One
        // worker is enough: ownership is compared shard-to-shard, so the
        // violation fires even when both shards map to the same thread.
        sim.ScheduleAtOn(1, Milliseconds(1), [&owner] { owner.AssertAccess(); });
        sim.Run();
      },
      "shard-guard");
}

TEST(ShardGuardDeathTest, SerialOnlyBindingRejectsWindowedAccess) {
  if (!kCheckedBuild) {
    GTEST_SKIP() << "shard-ownership tracking is compiled out of this build";
  }
  ASSERT_DEATH(
      {
        Simulation sim(1);
        sim.ConfigureCellWorkers(1, Milliseconds(10));
        shard_guard::ShardOwner owner;
        // kUnowned as an explicit owner means serial-only (the
        // clients-sharded/engine-serial configuration in primary.cc).
        owner.Bind(shard_guard::kUnowned, "test structure");
        sim.ScheduleAtOn(2, Milliseconds(1), [&owner] { owner.AssertAccess(); });
        sim.Run();
      },
      "serial-only");
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    Rng rng = sim.ForkRng();
    std::vector<uint64_t> draws;
    for (int i = 0; i < 10; ++i) {
      sim.Schedule(Seconds(i), [&] { draws.push_back(rng.NextU64()); });
    }
    sim.Run();
    return draws;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace diablo
