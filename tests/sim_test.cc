#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulation.h"

namespace diablo {
namespace {

TEST(EventFnTest, InvokesInlineCapture) {
  int fired = 0;
  EventFn fn([&fired] { ++fired; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventFnTest, DefaultIsEmpty) {
  EventFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(EventFnTest, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  EventFn a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(counter.use_count(), 2);
  b();
  EXPECT_EQ(*counter, 1);
  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
}

TEST(EventFnTest, DestructionReleasesCapture) {
  auto token = std::make_shared<int>(7);
  {
    EventFn fn([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventFnTest, OversizedCaptureUsesHeapAndStillRuns) {
  // Way past kInlineSize: forces the heap fallback path.
  std::array<uint64_t, 16> payload{};
  payload[0] = 41;
  payload[15] = 1;
  uint64_t out = 0;
  EventFn fn([payload, &out] { out = payload[0] + payload[15]; });
  EventFn moved(std::move(fn));
  moved();
  EXPECT_EQ(out, 42u);
}

TEST(EventFnTest, AssignmentDestroysPreviousCapture) {
  auto first = std::make_shared<int>(1);
  auto second = std::make_shared<int>(2);
  EventFn fn([first] { (void)*first; });
  fn = EventFn([second] { (void)*second; });
  EXPECT_EQ(first.use_count(), 1);
  EXPECT_EQ(second.use_count(), 2);
}

TEST(EventQueueTest, OrdersByTime) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Push(Seconds(3), [&] { fired.push_back(3); });
  queue.Push(Seconds(1), [&] { fired.push_back(1); });
  queue.Push(Seconds(2), [&] { fired.push_back(2); });
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Push(Seconds(1), [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t)();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, PopReturnsTime) {
  EventQueue queue;
  queue.Push(Milliseconds(250), [] {});
  SimTime t = 0;
  queue.Pop(&t);
  EXPECT_EQ(t, Milliseconds(250));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, ClearResets) {
  EventQueue queue;
  queue.Push(1, [] {});
  queue.Push(2, [] {});
  queue.Clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, ClearReleasesCaptures) {
  auto token = std::make_shared<int>(0);
  EventQueue queue;
  queue.Push(1, [token] { ++*token; });
  queue.Push(2, [token] { ++*token; });
  EXPECT_EQ(token.use_count(), 3);
  queue.Clear();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueueTest, TiesFireInInsertionOrderAfterClear) {
  // Clear() resets the tie-break sequence; a reused queue must still fire
  // equal-time events in their (new) insertion order.
  EventQueue queue;
  queue.Push(5, [] {});
  queue.Clear();
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    queue.Push(Seconds(2), [&fired, i] { fired.push_back(i); });
  }
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t)();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, MixedInlineAndHeapCaptures) {
  EventQueue queue;
  queue.Reserve(64);
  std::vector<int> fired;
  std::array<int, 32> big{};
  big[31] = 2;
  queue.Push(Seconds(2), [&fired, big] { fired.push_back(big[31]); });
  queue.Push(Seconds(1), [&fired] { fired.push_back(1); });
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, LargeHeapStaysSorted) {
  EventQueue queue;
  // Push pseudo-random times, then verify pops are monotone.
  uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    queue.Push(static_cast<SimTime>(SplitMix64(state) % 1000000), [] {});
  }
  SimTime prev = -1;
  while (!queue.empty()) {
    SimTime t = 0;
    queue.Pop(&t);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SimulationTest, ClockAdvances) {
  Simulation sim(1);
  SimTime observed = -1;
  sim.Schedule(Seconds(5), [&] { observed = sim.Now(); });
  sim.Run();
  EXPECT_EQ(observed, Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim(1);
  std::vector<SimTime> times;
  sim.Schedule(Seconds(1), [&] {
    times.push_back(sim.Now());
    sim.Schedule(Seconds(1), [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Seconds(1));
  EXPECT_EQ(times[1], Seconds(2));
}

TEST(SimulationTest, RunUntilStopsAtHorizon) {
  Simulation sim(1);
  int fired = 0;
  sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Schedule(Seconds(10), [&] { ++fired; });
  const uint64_t executed = sim.RunUntil(Seconds(5));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Seconds(5));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, StopHaltsLoop) {
  Simulation sim(1);
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // A later Run resumes with the remaining events.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, PastSchedulesClampToNow) {
  Simulation sim(1);
  SimTime when = -1;
  sim.Schedule(Seconds(3), [&] {
    sim.ScheduleAt(Seconds(1), [&] { when = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(when, Seconds(3));
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim(1);
  SimTime when = -1;
  sim.Schedule(-Seconds(4), [&] { when = sim.Now(); });
  sim.Run();
  EXPECT_EQ(when, 0);
}

TEST(SimulationTest, EventCountTracked) {
  Simulation sim(1);
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(Seconds(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulation sim(seed);
    Rng rng = sim.ForkRng();
    std::vector<uint64_t> draws;
    for (int i = 0; i < 10; ++i) {
      sim.Schedule(Seconds(i), [&] { draws.push_back(rng.NextU64()); });
    }
    sim.Run();
    return draws;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace diablo
