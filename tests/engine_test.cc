// Per-engine protocol properties: cadences, pipelines, confirmation rules,
// committee math and the gossip hop-scale model.
#include <gtest/gtest.h>

#include <set>

#include "src/chains/chain_factory.h"
#include "src/chains/params.h"
#include "src/support/stats.h"

namespace diablo {
namespace {

struct EngineRun {
  Simulation sim;
  Network net;
  std::unique_ptr<ChainInstance> chain;

  EngineRun(ChainParams params, const std::string& deployment, uint64_t seed = 3)
      : sim(seed), net(&sim) {
    chain = BuildChainFromParams(params, GetDeployment(deployment), &sim, &net);
  }

  void SubmitConstant(int tps, int seconds) {
    ChainContext& ctx = chain->context();
    uint32_t seq = 0;
    for (int s = 0; s < seconds; ++s) {
      for (int i = 0; i < tps; ++i) {
        Transaction tx;
        tx.account = seq % 500;
        tx.gas = NativeTransferGas(ctx.params().dialect);
        tx.size_bytes = kNativeTransferBytes;
        tx.submit_time = Seconds(s) + Milliseconds(1000LL * i / tps);
        const TxId id = ctx.txs().Add(tx);
        const int endpoint = static_cast<int>(seq) % ctx.node_count();
        sim.ScheduleAt(tx.submit_time, [this, id, endpoint] {
          chain->context().SubmitAtEndpoint(id, endpoint, sim.Now());
        });
        ++seq;
      }
    }
  }

  void Go(int horizon_s) {
    chain->Start();
    sim.RunUntil(Seconds(horizon_s));
  }
};

TEST(GossipHopScaleTest, GrowsLogarithmically) {
  EXPECT_DOUBLE_EQ(GossipHopScale(10), 1.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(25), 1.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(50), 2.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(200), 4.0);
  EXPECT_GT(GossipHopScale(400), GossipHopScale(200));
}

TEST(CliqueEngineTest, BlocksFollowThePeriod) {
  ChainParams params = GetChainParams("ethereum");
  EngineRun run(params, "testnet");
  run.SubmitConstant(50, 20);
  run.Go(60);
  // ~60 s / 5 s period = ~12 produced; stats count *finalized* blocks, so
  // the 6 still awaiting confirmations are excluded.
  const uint64_t blocks = run.chain->context().stats().blocks_produced;
  EXPECT_GE(blocks, 5u);
  EXPECT_LE(blocks, 7u);
}

TEST(CliqueEngineTest, ConfirmationDepthHoldsBackTheTail) {
  // With depth 6, the last produced blocks are not yet final at any instant,
  // so a fresh transaction's latency is at least depth x period.
  ChainParams params = GetChainParams("ethereum");
  EngineRun run(params, "testnet");
  run.SubmitConstant(10, 5);
  run.Go(120);
  const TxStore& txs = run.chain->context().txs();
  for (TxId id = 0; id < txs.size(); ++id) {
    if (txs.at(id).phase == TxPhase::kCommitted) {
      EXPECT_GE(txs.at(id).LatencySeconds(),
                ToSeconds(params.block_interval) * params.confirmation_depth * 0.8);
    }
  }
}

TEST(HotStuffEngineTest, ThreeChainLeavesPipelineTail) {
  ChainParams params = GetChainParams("diem");
  EngineRun run(params, "testnet");
  run.SubmitConstant(100, 10);
  run.Go(60);
  ChainContext& ctx = run.chain->context();
  // Rounds fire every ~block_interval; the last two certified blocks are
  // still in the pipeline (not in the ledger) when the run stops.
  const uint64_t rounds_approx =
      static_cast<uint64_t>(Seconds(60) / params.block_interval);
  EXPECT_LT(ctx.ledger().block_count(), rounds_approx);
  EXPECT_GT(ctx.ledger().block_count(), rounds_approx / 2);
}

TEST(AlgorandEngineTest, StepTimersFloorTheRound) {
  ChainParams params = GetChainParams("algorand");
  EngineRun run(params, "testnet");
  run.SubmitConstant(50, 20);
  run.Go(90);
  ChainContext& ctx = run.chain->context();
  ASSERT_GE(ctx.ledger().block_count(), 2u);
  // Certification cannot precede the sequential soft+certify timers (2λ).
  for (size_t i = 0; i < ctx.ledger().block_count(); ++i) {
    const Block& block = ctx.ledger().block(i);
    EXPECT_GE(block.finalized_at - block.proposed_at, 2 * params.step_timeout);
  }
}

TEST(AlgorandEngineTest, RotatingSortitionProposers) {
  ChainParams params = GetChainParams("algorand");
  EngineRun run(params, "testnet");
  run.SubmitConstant(20, 30);
  run.Go(120);
  ChainContext& ctx = run.chain->context();
  std::set<uint32_t> proposers;
  for (size_t i = 0; i < ctx.ledger().block_count(); ++i) {
    proposers.insert(ctx.ledger().block(i).proposer);
  }
  EXPECT_GT(proposers.size(), 2u);
}

TEST(AvalancheEngineTest, DecisionTimeGrowsWithBeta) {
  auto block_interval = [](int beta) {
    ChainParams params = GetChainParams("avalanche");
    params.beta = beta;
    params.block_interval = Milliseconds(1);  // expose the decision time
    EngineRun run(params, "devnet");
    run.SubmitConstant(50, 10);
    run.Go(60);
    const Ledger& ledger = run.chain->context().ledger();
    double total = 0;
    for (size_t i = 0; i < ledger.block_count(); ++i) {
      total += ToSeconds(ledger.block(i).finalized_at - ledger.block(i).proposed_at);
    }
    return total / static_cast<double>(ledger.block_count());
  };
  EXPECT_GT(block_interval(24), 1.5 * block_interval(6));
}

TEST(SolanaEngineTest, SlotCountMatchesWallClock) {
  ChainParams params = GetChainParams("solana");
  EngineRun run(params, "testnet");
  run.SubmitConstant(100, 10);
  run.Go(40);
  // 40 s / 0.4 s slots ≈ 100 slots regardless of load.
  const uint64_t blocks = run.chain->context().stats().blocks_produced;
  EXPECT_GE(blocks, 95u);
  EXPECT_LE(blocks, 101u);
}

TEST(SolanaEngineTest, PartitionedLeaderSkipsItsWindow) {
  ChainParams params = GetChainParams("solana");
  EngineRun run(params, "testnet");
  run.SubmitConstant(100, 10);
  run.net.SetPartitioned(run.chain->context().hosts()[0], true);
  run.Go(40);
  ChainContext& ctx = run.chain->context();
  // Node 0's slots are skipped (counted as view changes); others produce.
  EXPECT_GT(ctx.stats().view_changes, 0u);
  for (size_t i = 0; i < ctx.ledger().block_count(); ++i) {
    EXPECT_NE(ctx.ledger().block(i).proposer, 0u);
  }
  EXPECT_GT(ctx.stats().txs_committed, 0u);
}

TEST(IbftEngineTest, LanRoundsFasterThanWan) {
  auto median_round = [](const std::string& deployment) {
    ChainParams params = GetChainParams("quorum");
    EngineRun run(params, deployment);
    run.SubmitConstant(100, 10);
    run.Go(60);
    const Ledger& ledger = run.chain->context().ledger();
    SampleSet rounds;
    for (size_t i = 0; i < ledger.block_count(); ++i) {
      rounds.Add(ToSeconds(ledger.block(i).finalized_at - ledger.block(i).proposed_at));
    }
    return rounds.Median();
  };
  EXPECT_LT(median_round("testnet"), 0.5 * median_round("devnet"));
}

TEST(IbftEngineTest, RotatesLeaders) {
  ChainParams params = GetChainParams("quorum");
  EngineRun run(params, "testnet");
  run.SubmitConstant(100, 15);
  run.Go(60);
  const Ledger& ledger = run.chain->context().ledger();
  std::set<uint32_t> proposers;
  for (size_t i = 0; i < ledger.block_count(); ++i) {
    proposers.insert(ledger.block(i).proposer);
  }
  EXPECT_GE(proposers.size(), 5u);
}

TEST(EngineTest, EmptyChainStillProducesEmptyBlocks) {
  for (const std::string& chain_name : AllChainNames()) {
    EngineRun run(GetChainParams(chain_name), "testnet");
    run.Go(90);  // long enough for Clique's 6-deep confirmation window
    const ChainStats& stats = run.chain->context().stats();
    EXPECT_GT(stats.blocks_produced, 0u) << chain_name;
    EXPECT_EQ(stats.txs_committed, 0u) << chain_name;
    EXPECT_EQ(stats.blocks_produced, stats.empty_blocks) << chain_name;
  }
}

}  // namespace
}  // namespace diablo
