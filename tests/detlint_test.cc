// Locks the determinism linter's rule behavior against the fixture corpus in
// tests/detlint_fixtures/: each rule D1–D6 must fire on its known violation
// at the exact line, each suppressed variant must be marked suppressed, and
// reasonless suppressions must surface as SUP findings without suppressing.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "tools/detlint/lint.h"

namespace diablo::detlint {
namespace {

// (rule, line, suppressed) triples in file order.
using Triple = std::tuple<std::string, int, bool>;

std::vector<Triple> Lint(const std::string& fixture) {
  const LintResult result =
      LintFile(std::string(DETLINT_FIXTURE_DIR) + "/" + fixture);
  std::vector<Triple> out;
  for (const Finding& f : result.findings) {
    out.emplace_back(f.rule, f.line, f.suppressed);
  }
  return out;
}

TEST(Detlint, D1FiresOnUnorderedIterationAndHonorsSuppression) {
  const auto got = Lint("d1_unordered_iteration.cc");
  const std::vector<Triple> want = {
      {"D1", 8, false},   // range-for over unordered_map
      {"D1", 11, false},  // counts.begin()
      {"D1", 14, true},   // suppressed range-for
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D2FiresOnWallClockAndLibcEntropy) {
  const auto got = Lint("d2_wall_clock.cc");
  const std::vector<Triple> want = {
      {"D2", 6, false},   // steady_clock
      {"D2", 11, false},  // rand()
      {"D2", 17, true},   // suppressed system_clock
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D3FiresOnPointerKeysAndPointerCasts) {
  const auto got = Lint("d3_pointer_keys.cc");
  const std::vector<Triple> want = {
      {"D3", 8, false},   // std::map<Node*, ...>
      {"D3", 11, false},  // reinterpret_cast<uint64_t>(ptr)
      {"D3", 15, true},   // suppressed unordered_map<Node*, ...>
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D4FiresOnSharedRngDrawsButNotForkedReceivers) {
  const auto got = Lint("d4_shared_rng.cc");
  const std::vector<Triple> want = {
      {"D4", 11, false},  // engine->rng().NextU64()
      {"D4", 15, false},  // static Rng
      {"D4", 24, true},   // suppressed draw
      // line 18 (ctx->rng()) is absent: ctx is an allowlisted forked stream
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D6FiresOnAccessorDrawsInsideParallelPhaseRegions) {
  const auto got = Lint("d6_parallel_phase_rng.cc");
  const std::vector<Triple> want = {
      {"D6", 13, false},  // ctx->rng() inside the region (D4-allowlisted,
                          // but no accessor stream is shard-owned)
      {"D6", 22, true},   // suppressed draw inside the region
      // line 7 (ctx->rng() before the begin marker) is absent: D6 only
      // applies between parallel-phase(begin) and parallel-phase(end)
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D6FiresOnGlobalWritesInsideParallelPhaseRegions) {
  const auto got = Lint("d6_global_write.cc");
  const std::vector<Triple> want = {
      {"D6", 11, false},  // g_counter = v
      {"D6", 12, false},  // g_counter += v
      {"D6", 13, false},  // g_total *= 2.0 (split compound op)
      {"D6", 14, false},  // ++g_counter (prefix, split tokens)
      {"D6", 15, false},  // g_counter++ (postfix, split tokens)
      {"D6", 16, false},  // g_flag.store(true)
      {"D6", 28, true},   // suppressed assignment
      // quiet by design: the write at line 7 (outside the region), the
      // comparisons at lines 20 and 23 (`==` and `<=` lex as split `=`
      // tokens the assignment pattern rejects), and the read at line 21
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D6GlobalWriteIgnoresUnaryPlusOperands) {
  const LintResult result = LintSource("unary.cc", R"cc(
    unsigned long g_counter = 0;
    // detlint: parallel-phase(begin)
    unsigned long Read(unsigned long a) {
      return a + +g_counter;  // unary plus on a read, not a prefix increment
    }
    // detlint: parallel-phase(end)
  )cc");
  EXPECT_TRUE(result.findings.empty());
}

TEST(Detlint, D6RegionLeftOpenExtendsToEndOfFile) {
  const LintResult result = LintSource("open_region.cc", R"cc(
    // detlint: parallel-phase(begin)
    unsigned long Draw(diablo::ChainContext* ctx) {
      return ctx->rng().NextU64();
    }
  )cc");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "D6");
  EXPECT_EQ(result.findings[0].line, 4);
  EXPECT_FALSE(result.findings[0].suppressed);
}

TEST(Detlint, D5FiresOnFloatAccumulationInsideUnorderedLoops) {
  const auto got = Lint("d5_float_accumulation.cc");
  const std::vector<Triple> want = {
      {"D1", 7, false},  // the loop itself
      {"D5", 8, false},  // total += inside it
      {"D1", 17, true},  // suppressed loop
      {"D5", 19, true},  // suppressed accumulation
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, ReasonlessSuppressionIsAFindingAndSuppressesNothing) {
  const auto got = Lint("sup_missing_reason.cc");
  const std::vector<Triple> want = {
      {"SUP", 6, false},  // allow(D2) with no reason
      {"D2", 7, false},   // ...which therefore does not cover the rand()
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, CountUnsuppressedIgnoresSuppressedFindings) {
  const LintResult result =
      LintFile(std::string(DETLINT_FIXTURE_DIR) + "/d5_float_accumulation.cc");
  EXPECT_EQ(result.findings.size(), 4u);
  EXPECT_EQ(CountUnsuppressed(result), 2u);
}

TEST(Detlint, FormatFindingCarriesFileLineRuleAndHint) {
  Finding f{"src/foo.cc", 12, "D1", "range-for over an unordered container",
            "iterate a sorted copy", false, {}};
  EXPECT_EQ(FormatFinding(f),
            "src/foo.cc:12: [D1] range-for over an unordered container "
            "(hint: iterate a sorted copy)");
  f.suppressed = true;
  f.suppress_reason = "fixture";
  EXPECT_EQ(FormatFinding(f),
            "src/foo.cc:12: [D1] range-for over an unordered container "
            "[suppressed: fixture]");
}

TEST(Detlint, CleanSourceProducesNoFindings) {
  const LintResult result = LintSource("clean.cc", R"cc(
    #include <vector>
    int Sum(const std::vector<int>& xs) {
      int total = 0;
      for (const int x : xs) {
        total += x;
      }
      return total;
    }
  )cc");
  EXPECT_TRUE(result.findings.empty());
}

TEST(Detlint, CommentsAndStringsDoNotTriggerRules) {
  const LintResult result = LintSource("strings.cc", R"cc(
    // steady_clock in a comment is fine, as is rand() here.
    /* std::unordered_map<int*, int> in a block comment too */
    const char* kMessage = "calling rand() or steady_clock::now()";
  )cc");
  EXPECT_TRUE(result.findings.empty());
}

}  // namespace
}  // namespace diablo::detlint
