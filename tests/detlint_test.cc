// Locks the determinism linter's rule behavior against the fixture corpus in
// tests/detlint_fixtures/: each rule D1–D8 must fire on its known violation
// at the exact line, each suppressed variant must be marked suppressed, and
// reasonless suppressions must surface as SUP findings without suppressing.
// The D7/D8 cases cover the call-graph pass: hazards one and two call levels
// below a parallel-phase region, which the per-file v1 scan provably missed
// (nothing in those helpers is lexically inside a region).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "tools/detlint/lint.h"

namespace diablo::detlint {
namespace {

// (rule, line, suppressed) triples in file order.
using Triple = std::tuple<std::string, int, bool>;

std::string FixturePath(const std::string& fixture) {
  return std::string(DETLINT_FIXTURE_DIR) + "/" + fixture;
}

std::vector<Triple> Triples(const LintResult& result) {
  std::vector<Triple> out;
  for (const Finding& f : result.findings) {
    out.emplace_back(f.rule, f.line, f.suppressed);
  }
  return out;
}

std::vector<Triple> Lint(const std::string& fixture) {
  return Triples(LintFile(FixturePath(fixture)));
}

TEST(Detlint, D1FiresOnUnorderedIterationAndHonorsSuppression) {
  const auto got = Lint("d1_unordered_iteration.cc");
  const std::vector<Triple> want = {
      {"D1", 8, false},   // range-for over unordered_map
      {"D1", 11, false},  // counts.begin()
      {"D1", 14, true},   // suppressed range-for
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D2FiresOnWallClockAndLibcEntropy) {
  const auto got = Lint("d2_wall_clock.cc");
  const std::vector<Triple> want = {
      {"D2", 6, false},   // steady_clock
      {"D2", 11, false},  // rand()
      {"D2", 17, true},   // suppressed system_clock
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D3FiresOnPointerKeysAndPointerCasts) {
  const auto got = Lint("d3_pointer_keys.cc");
  const std::vector<Triple> want = {
      {"D3", 8, false},   // std::map<Node*, ...>
      {"D3", 11, false},  // reinterpret_cast<uint64_t>(ptr)
      {"D3", 15, true},   // suppressed unordered_map<Node*, ...>
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D4FiresOnSharedRngDrawsButNotForkedReceivers) {
  const auto got = Lint("d4_shared_rng.cc");
  const std::vector<Triple> want = {
      {"D4", 11, false},  // engine->rng().NextU64()
      {"D4", 15, false},  // static Rng
      {"D4", 24, true},   // suppressed draw
      // line 18 (ctx->rng()) is absent: ctx is an allowlisted forked stream
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D6FiresOnAccessorDrawsInsideParallelPhaseRegions) {
  const auto got = Lint("d6_parallel_phase_rng.cc");
  const std::vector<Triple> want = {
      {"D6", 13, false},  // ctx->rng() inside the region (D4-allowlisted,
                          // but no accessor stream is shard-owned)
      {"D6", 22, true},   // suppressed draw inside the region
      // line 7 (ctx->rng() before the begin marker) is absent: D6 only
      // applies between parallel-phase(begin) and parallel-phase(end)
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D6FiresOnGlobalWritesInsideParallelPhaseRegions) {
  const auto got = Lint("d6_global_write.cc");
  const std::vector<Triple> want = {
      {"D6", 11, false},  // g_counter = v
      {"D6", 12, false},  // g_counter += v
      {"D6", 13, false},  // g_total *= 2.0 (split compound op)
      {"D6", 14, false},  // ++g_counter (prefix, split tokens)
      {"D6", 15, false},  // g_counter++ (postfix, split tokens)
      {"D6", 16, false},  // g_flag.store(true)
      {"D6", 28, true},   // suppressed assignment
      // quiet by design: the write at line 7 (outside the region), the
      // comparisons at lines 20 and 23 (`==` and `<=` lex as split `=`
      // tokens the assignment pattern rejects), and the read at line 21
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D6GlobalWriteIgnoresUnaryPlusOperands) {
  const LintResult result = LintSource("unary.cc", R"cc(
    unsigned long g_counter = 0;
    // detlint: parallel-phase(begin)
    unsigned long Read(unsigned long a) {
      return a + +g_counter;  // unary plus on a read, not a prefix increment
    }
    // detlint: parallel-phase(end)
  )cc");
  EXPECT_TRUE(result.findings.empty());
}

TEST(Detlint, D6RegionLeftOpenExtendsToEndOfFile) {
  const LintResult result = LintSource("open_region.cc", R"cc(
    // detlint: parallel-phase(begin)
    unsigned long Draw(diablo::ChainContext* ctx) {
      return ctx->rng().NextU64();
    }
  )cc");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "D6");
  EXPECT_EQ(result.findings[0].line, 4);
  EXPECT_FALSE(result.findings[0].suppressed);
}

TEST(Detlint, D5FiresOnFloatAccumulationInsideUnorderedLoops) {
  const auto got = Lint("d5_float_accumulation.cc");
  const std::vector<Triple> want = {
      {"D1", 7, false},  // the loop itself
      {"D5", 8, false},  // total += inside it
      {"D1", 17, true},  // suppressed loop
      {"D5", 19, true},  // suppressed accumulation
  };
  EXPECT_EQ(got, want);
}

// --- D7/D8: the call-graph pass -------------------------------------------

TEST(Detlint, D7FiresOnHazardsReachableThroughTheCallGraph) {
  const auto got = Lint("d7_transitive_rng.cc");
  const std::vector<Triple> want = {
      {"D7", 9, false},   // ctx->rng() one call below the region (v1: missed)
      {"D7", 13, false},  // g_tally += two calls below the region
      {"D7", 20, true},   // suppressed helper draw
      // line 24 (Unreached) is absent: no parallel-phase root calls it
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D7FindingsCarryTheFullCallChain) {
  const LintResult result = LintFile(FixturePath("d7_transitive_rng.cc"));
  ASSERT_EQ(result.findings.size(), 3u);
  EXPECT_EQ(result.findings[0].chain,
            (std::vector<std::string>{"Root", "HelperDraw"}));
  EXPECT_EQ(result.findings[1].chain,
            (std::vector<std::string>{"Root", "Middle", "HelperWrite"}));
  EXPECT_EQ(result.findings[2].chain,
            (std::vector<std::string>{"Root", "HelperSuppressed"}));
}

TEST(Detlint, D7DoesNotDuplicateInRegionSitesCoveredByD6) {
  // Inside a marked region D6 owns the finding; D7 must not double-report.
  for (const Finding& f : LintFile(FixturePath("d6_parallel_phase_rng.cc")).findings) {
    EXPECT_NE(f.rule, "D7") << FormatFinding(f);
  }
  for (const Finding& f : LintFile(FixturePath("d7_transitive_rng.cc")).findings) {
    EXPECT_NE(f.rule, "D6") << FormatFinding(f);
  }
}

TEST(Detlint, D8FiresOnSerialOnlyApisReachableFromParallelPhase) {
  const auto got = Lint("d8_serial_api.cc");
  const std::vector<Triple> want = {
      {"D8", 5, false},   // sim->ScheduleAt in a helper (v1: missed)
      {"D8", 9, false},   // printf in a helper
      {"D8", 14, true},   // suppressed helper ScheduleAt
      {"D8", 22, false},  // ScheduleAt directly inside the region
      // ScheduleOn / ScheduleAtOn (lines 23-24) are absent: shard-owned
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, D8ChainsNameTheRootEvenForInRegionSites) {
  const LintResult result = LintFile(FixturePath("d8_serial_api.cc"));
  ASSERT_EQ(result.findings.size(), 4u);
  EXPECT_EQ(result.findings[0].chain,
            (std::vector<std::string>{"Root", "HelperSchedule"}));
  EXPECT_EQ(result.findings[3].chain, (std::vector<std::string>{"Root"}));
}

TEST(Detlint, D7CrossesTranslationUnits) {
  const LintResult result = LintProject({
      SourceFile{"src/a.cc", R"cc(
        // detlint: parallel-phase(begin)
        void RootFn(diablo::ChainContext* ctx) { HelperAcross(ctx); }
        // detlint: parallel-phase(end)
      )cc"},
      SourceFile{"src/b.cc", R"cc(
        unsigned long HelperAcross(diablo::ChainContext* ctx) {
          return ctx->rng().NextU64();
        }
      )cc"},
  });
  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& f = result.findings[0];
  EXPECT_EQ(f.file, "src/b.cc");
  EXPECT_EQ(f.rule, "D7");
  EXPECT_EQ(f.line, 3);
  EXPECT_EQ(f.chain, (std::vector<std::string>{"RootFn", "HelperAcross"}));
}

TEST(Detlint, ReachabilityDoesNotCrossIntoTestHelpers) {
  // A production root must not drag same-named helpers under tests/ (or
  // bench/, examples/, tools/) into the fixpoint.
  const LintResult result = LintProject({
      SourceFile{"src/a.cc", R"cc(
        // detlint: parallel-phase(begin)
        void RootFn(diablo::ChainContext* ctx) { HelperAcross(ctx); }
        // detlint: parallel-phase(end)
      )cc"},
      SourceFile{"tests/b_test.cc", R"cc(
        unsigned long HelperAcross(diablo::ChainContext* ctx) {
          return ctx->rng().NextU64();
        }
      )cc"},
  });
  EXPECT_TRUE(result.findings.empty());
}

TEST(Detlint, BuiltinWorkerEntryPointsAreRootsWithoutMarkers) {
  // SimClient::Trigger runs on a windowed worker even if its region marker
  // were dropped; the analyzer treats it as a root by qualified name.
  const LintResult result = LintProject({
      SourceFile{"src/client.cc", R"cc(
        class SimClient {
         public:
          void Trigger(diablo::ChainContext* ctx) { HelperDraws(ctx); }
        };
      )cc"},
      SourceFile{"src/helper.cc", R"cc(
        unsigned long HelperDraws(diablo::ChainContext* ctx) {
          return ctx->rng().NextU64();
        }
      )cc"},
  });
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "D7");
  EXPECT_EQ(result.findings[0].chain,
            (std::vector<std::string>{"SimClient::Trigger", "HelperDraws"}));
}

// --- Raw string literals ---------------------------------------------------

TEST(Detlint, RawStringsAreDataIncludingPrefixedForms) {
  const auto got = Lint("raw_string.cc");
  const std::vector<Triple> want = {
      {"D2", 15, true},  // the real rand(), suppressed by the directive the
                         // v1 prefix bug would have swallowed
      // nothing fires for rand()/steady_clock/unordered_map<int*,...> inside
      // the raw strings on lines 5-10, prefixed or not
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, RawStringDelimitersAndEmbeddedQuotesDoNotDesyncTheLexer) {
  const LintResult result = LintSource("raw.cc", R"outer(
    const char* a = uR"(first " embedded quote, rand() is data)";
    const char* b = R"d(second with )" decoy closer, time(nullptr))d";
    int Live() { return 1 + clock(); }
  )outer");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "D2");
  EXPECT_EQ(result.findings[0].line, 4);  // proves line counting stayed true
}

// --- Plumbing --------------------------------------------------------------

TEST(Detlint, ReasonlessSuppressionIsAFindingAndSuppressesNothing) {
  const auto got = Lint("sup_missing_reason.cc");
  const std::vector<Triple> want = {
      {"SUP", 6, false},  // allow(D2) with no reason
      {"D2", 7, false},   // ...which therefore does not cover the rand()
  };
  EXPECT_EQ(got, want);
}

TEST(Detlint, CountUnsuppressedIgnoresSuppressedFindings) {
  const LintResult result = LintFile(FixturePath("d5_float_accumulation.cc"));
  EXPECT_EQ(result.findings.size(), 4u);
  EXPECT_EQ(CountUnsuppressed(result), 2u);
}

TEST(Detlint, FormatFindingCarriesFileLineRuleHintAndChain) {
  Finding f{"src/foo.cc", 12, "D1", "range-for over an unordered container",
            "iterate a sorted copy", false, {}, {}};
  EXPECT_EQ(FormatFinding(f),
            "src/foo.cc:12: [D1] range-for over an unordered container "
            "(hint: iterate a sorted copy)");
  f.suppressed = true;
  f.suppress_reason = "fixture";
  EXPECT_EQ(FormatFinding(f),
            "src/foo.cc:12: [D1] range-for over an unordered container "
            "[suppressed: fixture]");
  f.chain = {"Root", "Helper"};
  EXPECT_EQ(FormatFinding(f),
            "src/foo.cc:12: [D1] range-for over an unordered container "
            "[suppressed: fixture] [via Root -> Helper]");
}

TEST(Detlint, FindingsAsJsonEscapesAndCarriesChains) {
  LintResult result;
  result.findings.push_back(Finding{"src/a \"b\".cc", 7, "D7", "msg\nline",
                                    "hint", false, "", {"Root", "Helper"}});
  const std::string json = FindingsAsJson(result);
  EXPECT_EQ(json,
            "{\"findings\":[{\"file\":\"src/a \\\"b\\\".cc\",\"line\":7,"
            "\"rule\":\"D7\",\"message\":\"msg\\nline\",\"hint\":\"hint\","
            "\"suppressed\":false,\"reason\":\"\","
            "\"chain\":[\"Root\",\"Helper\"]}]}");
}

TEST(Detlint, ShardReportInventoriesRootsCalleesAndState) {
  const std::vector<SourceFile> files = {
      SourceFile{"src/a.cc", R"cc(
        // detlint: parallel-phase(begin, fixture-region)
        void RootFn(diablo::ChainContext* ctx) { HelperAcross(ctx); }
        // detlint: parallel-phase(end)
      )cc"},
      SourceFile{"src/b.cc", R"cc(
        unsigned long g_hits = 0;
        unsigned long HelperAcross(diablo::ChainContext* ctx) {
          g_hits += 1;
          return ctx->rng().NextU64();
        }
      )cc"},
  };
  const std::string report = ShardReport(files);
  EXPECT_NE(report.find("root RootFn (src/a.cc) region=fixture-region"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("HelperAcross (src/b.cc)"), std::string::npos) << report;
  EXPECT_NE(report.find("rng-accessor ctx->rng().NextU64 (src/b.cc)"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("global-write g_hits (src/b.cc)"), std::string::npos)
      << report;
  // Deterministic: byte-identical on re-run.
  EXPECT_EQ(report, ShardReport(files));
}

TEST(Detlint, CleanSourceProducesNoFindings) {
  const LintResult result = LintSource("clean.cc", R"cc(
    #include <vector>
    int Sum(const std::vector<int>& xs) {
      int total = 0;
      for (const int x : xs) {
        total += x;
      }
      return total;
    }
  )cc");
  EXPECT_TRUE(result.findings.empty());
}

TEST(Detlint, CommentsAndStringsDoNotTriggerRules) {
  const LintResult result = LintSource("strings.cc", R"cc(
    // steady_clock in a comment is fine, as is rand() here.
    /* std::unordered_map<int*, int> in a block comment too */
    const char* kMessage = "calling rand() or steady_clock::now()";
  )cc");
  EXPECT_TRUE(result.findings.empty());
}

}  // namespace
}  // namespace diablo::detlint
