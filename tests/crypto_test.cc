#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/crypto/merkle.h"
#include "src/crypto/sha256.h"
#include "src/crypto/signature.h"
#include "src/crypto/sortition.h"

namespace diablo {
namespace {

// FIPS 180-4 test vectors.
TEST(Sha256Test, KnownVectors) {
  EXPECT_EQ(DigestHex(Sha256Digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestHex(Sha256Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(DigestHex(Sha256Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(DigestHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 hasher;
  hasher.Update("hello ");
  hasher.Update("world");
  EXPECT_EQ(hasher.Finish(), Sha256Digest("hello world"));
}

TEST(Sha256Test, BoundaryLengths) {
  // Exercise padding around the 55/56/64-byte boundaries.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string data(len, 'x');
    Sha256 incremental;
    for (char c : data) {
      incremental.Update(&c, 1);
    }
    EXPECT_EQ(incremental.Finish(), Sha256Digest(data)) << len;
  }
}

TEST(Sha256Test, PrefixAndHex) {
  const Digest256 d = Sha256Digest("abc");
  EXPECT_EQ(DigestPrefix64(d) & 0xff, 0xba);
  EXPECT_EQ(DigestHex(d).size(), 64u);
}

TEST(MerkleTest, EmptyAndSingle) {
  EXPECT_EQ(MerkleRoot({}), Sha256Digest(""));
  const Digest256 leaf = Sha256Digest("tx");
  EXPECT_EQ(MerkleRoot({leaf}), leaf);
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  std::vector<Digest256> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(Sha256Digest(std::string("tx") + std::to_string(i)));
  }
  const Digest256 root = MerkleRoot(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i] = Sha256Digest("evil");
    EXPECT_NE(MerkleRoot(mutated), root) << i;
  }
}

TEST(MerkleTest, OddLeafCountDuplicatesLast) {
  std::vector<Digest256> three = {Sha256Digest("a"), Sha256Digest("b"), Sha256Digest("c")};
  std::vector<Digest256> four = {Sha256Digest("a"), Sha256Digest("b"), Sha256Digest("c"),
                                 Sha256Digest("c")};
  EXPECT_EQ(MerkleRoot(three), MerkleRoot(four));
}

class MerkleProofTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MerkleProofTest, ProveAndVerifyEveryLeaf) {
  const size_t n = GetParam();
  std::vector<Digest256> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256Digest("leaf" + std::to_string(i)));
  }
  const Digest256 root = MerkleRoot(leaves);
  for (size_t i = 0; i < n; ++i) {
    const auto proof = MerkleProve(leaves, i);
    EXPECT_TRUE(MerkleVerify(leaves[i], proof, root)) << "leaf " << i;
    // A proof for one leaf must not verify another.
    if (n > 1) {
      EXPECT_FALSE(MerkleVerify(leaves[(i + 1) % n], proof, root));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 33));

TEST(SignatureTest, SignVerifyRoundTrip) {
  const Signature sig = Sign(42, "transfer 100 from A to B");
  EXPECT_TRUE(Verify(42, "transfer 100 from A to B", sig));
  EXPECT_FALSE(Verify(43, "transfer 100 from A to B", sig));
  EXPECT_FALSE(Verify(42, "transfer 101 from A to B", sig));
}

TEST(SignatureTest, CostModelShape) {
  const SignatureCost ecdsa = CostOf(SignatureScheme::kEcdsa);
  const SignatureCost ed = CostOf(SignatureScheme::kEd25519);
  const SignatureCost rsa = CostOf(SignatureScheme::kRsa4096);
  // Ed25519 signs faster than ECDSA; RSA4096 signing is the outlier that
  // broke Avalanche's setup in the paper (§5.2).
  EXPECT_LT(ed.sign, ecdsa.sign);
  EXPECT_GT(rsa.sign, 50 * ecdsa.sign);
  EXPECT_LT(rsa.verify, rsa.sign);
  EXPECT_GT(rsa.bytes, ecdsa.bytes);
}

TEST(SortitionTest, DrawsAreDeterministicAndUniform) {
  EXPECT_DOUBLE_EQ(SortitionDraw(1, 2, 3, 4), SortitionDraw(1, 2, 3, 4));
  EXPECT_NE(SortitionDraw(1, 2, 3, 4), SortitionDraw(1, 2, 3, 5));
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double draw = SortitionDraw(9, 9, 9, static_cast<uint64_t>(i));
    EXPECT_GE(draw, 0.0);
    EXPECT_LT(draw, 1.0);
    sum += draw;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(SortitionTest, CommitteeSizeNearExpected) {
  const auto committee = SelectCommittee(7, 1, 2, 10000, 100.0);
  EXPECT_GT(committee.size(), 60u);
  EXPECT_LT(committee.size(), 140u);
  // Members are sorted and unique by construction.
  std::set<uint32_t> unique(committee.begin(), committee.end());
  EXPECT_EQ(unique.size(), committee.size());
}

TEST(SortitionTest, CommitteeChangesPerRound) {
  const auto round1 = SelectCommittee(7, 1, 0, 1000, 50.0);
  const auto round2 = SelectCommittee(7, 2, 0, 1000, 50.0);
  EXPECT_NE(round1, round2);
}

TEST(SortitionTest, ProposerInRangeAndRotates) {
  std::set<uint32_t> proposers;
  for (uint64_t round = 0; round < 50; ++round) {
    const uint32_t p = SelectProposer(3, round, 20);
    EXPECT_LT(p, 20u);
    proposers.insert(p);
  }
  // Over 50 rounds many distinct proposers should appear.
  EXPECT_GT(proposers.size(), 10u);
}

}  // namespace
}  // namespace diablo
