// fig3-XL locks: the streamed large-N delay model against the dense matrix
// path, bitset vote tracking against vector-based counting under every
// engine's quorum rule, the SoA ValidatorTable, the xl-<n> deployments, and
// the 10k-validator memory budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/chain/validator_table.h"
#include "src/chain/vote_round.h"
#include "src/chains/chain_factory.h"
#include "src/core/runner.h"
#include "src/net/deployment.h"
#include "src/net/network.h"
#include "src/support/rng.h"

namespace diablo {
namespace {

// --- xl deployments ---------------------------------------------------------

TEST(XlDeploymentTest, ParsesValidatorCount) {
  const DeploymentConfig xl = GetDeployment("xl-10000");
  EXPECT_EQ(xl.name, "xl-10000");
  EXPECT_EQ(xl.node_count, 10000);
  EXPECT_EQ(xl.machine.vcpus, 4);
  EXPECT_EQ(xl.regions.size(), static_cast<size_t>(kRegionCount));
  EXPECT_EQ(GetDeployment("XL-1000").node_count, 1000);
}

TEST(XlDeploymentTest, RejectsMalformedCounts) {
  EXPECT_THROW(GetDeployment("xl-"), std::invalid_argument);
  EXPECT_THROW(GetDeployment("xl-abc"), std::invalid_argument);
  EXPECT_THROW(GetDeployment("xl-0"), std::invalid_argument);
  EXPECT_THROW(GetDeployment("xl--5"), std::invalid_argument);
  EXPECT_THROW(GetDeployment("xl-2000000"), std::invalid_argument);
}

TEST(XlDeploymentTest, PairwiseOverflowPredicate) {
  EXPECT_FALSE(PairwiseDelayCountOverflows(0));
  EXPECT_FALSE(PairwiseDelayCountOverflows(1));
  EXPECT_FALSE(PairwiseDelayCountOverflows(100000));
  // 2^32 squared wraps a 64-bit size_t; anything at or past it must trip.
  EXPECT_TRUE(PairwiseDelayCountOverflows(size_t{1} << 32));
  EXPECT_TRUE(PairwiseDelayCountOverflows(std::numeric_limits<size_t>::max()));
}

// --- streamed delay model ---------------------------------------------------

std::vector<HostId> MakeHosts(Network* net, const DeploymentConfig& deployment) {
  std::vector<HostId> hosts;
  for (int i = 0; i < deployment.node_count; ++i) {
    hosts.push_back(net->AddHost(deployment.NodeRegion(i)));
  }
  return hosts;
}

DeploymentConfig SmallXl(int n) {
  DeploymentConfig d = GetDeployment("devnet");
  d.node_count = n;
  return d;
}

TEST(StreamedDelaysTest, PureFunctionOfThePair) {
  Simulation sim(7);
  Network net(&sim, 0.05);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(40));
  StreamedDelays model(&net, hosts, 256);
  ASSERT_EQ(model.size(), hosts.size());
  for (size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_EQ(model.at(i, i), 0);
    for (size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) {
        continue;
      }
      const SimDuration d = model.at(i, j);
      EXPECT_GT(d, 0) << i << "," << j;
      // Random access is a pure function: asking again gives the same delay.
      EXPECT_EQ(model.at(i, j), d);
    }
  }
}

TEST(StreamedDelaysTest, PartitionSnapshotIsUnreachable) {
  Simulation sim(7);
  Network net(&sim, 0.05);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(10));
  net.SetPartitioned(hosts[3], true);
  StreamedDelays model(&net, hosts, 256);
  for (size_t j = 0; j < hosts.size(); ++j) {
    if (j == 3) {
      continue;
    }
    EXPECT_EQ(model.at(3, j), kUnreachable);
    EXPECT_EQ(model.at(j, 3), kUnreachable);
  }
  EXPECT_NE(model.at(0, 1), kUnreachable);
}

TEST(StreamedDelaysTest, MinLinkDelayMatchesBruteForceAtZeroJitter) {
  Simulation sim(7);
  Network net(&sim, /*jitter_frac=*/0.0);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(40));
  StreamedDelays model(&net, hosts, 256);
  // Zero jitter makes at() the pure per-pair base, so the streamed bound must
  // equal the brute-force minimum over every random access.
  SimDuration brute = std::numeric_limits<SimDuration>::max();
  for (size_t i = 0; i < hosts.size(); ++i) {
    for (size_t j = 0; j < hosts.size(); ++j) {
      if (i != j) {
        brute = std::min(brute, model.at(i, j));
      }
    }
  }
  EXPECT_GT(model.MinLinkDelay(), 0);
  EXPECT_EQ(model.MinLinkDelay(), brute);
}

TEST(StreamedDelaysTest, MinLinkDelayLowerBoundsEveryAccessWithJitter) {
  Simulation sim(7);
  Network net(&sim, 0.05);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(40));
  StreamedDelays model(&net, hosts, 256);
  const SimDuration bound = model.MinLinkDelay();
  ASSERT_GT(bound, 0);
  for (size_t i = 0; i < hosts.size(); ++i) {
    for (size_t j = 0; j < hosts.size(); ++j) {
      if (i != j) {
        EXPECT_LE(bound, model.at(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(StreamedDelaysTest, MinLinkDelayExcludesPartitionedSnapshot) {
  Simulation sim(7);
  Network net(&sim, 0.05);
  std::vector<HostId> hosts;
  hosts.push_back(net.AddHost(Region::kOhio));
  hosts.push_back(net.AddHost(Region::kOhio));
  net.SetPartitioned(hosts[1], true);
  StreamedDelays model(&net, hosts, 256);
  // One reachable host leaves no link to bound; the frozen snapshot drops
  // the partitioned peer entirely.
  EXPECT_EQ(model.MinLinkDelay(), 0);
}

TEST(StreamedDelaysTest, ApproxBytesIsLinear) {
  Simulation sim(7);
  Network net(&sim, 0.05);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(600));
  StreamedDelays model(&net, hosts, 256);
  // Two bytes of per-host state plus the fixed region-pair table.
  EXPECT_LE(model.ApproxBytes(), 8 * hosts.size() + sizeof(StreamedDelays) + 1024);
}

// Materialises a streamed model into a dense PairwiseDelays with identical
// entries, so dense kernels can serve as the reference for streamed ones.
PairwiseDelays Materialize(const StreamedDelays& model) {
  const size_t n = model.size();
  std::vector<SimDuration> dense(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dense[i * n + j] = model.at(i, j);
    }
  }
  return PairwiseDelays(n, std::move(dense));
}

TEST(StreamedQuorumTest, MatchesDenseKernelOverMaterializedMatrix) {
  Simulation sim(11);
  Network net(&sim, 0.05);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(80));
  StreamedDelays model(&net, hosts, 256);
  const PairwiseDelays dense = Materialize(model);

  Rng rng(42);
  const size_t n = hosts.size();
  MessagePlaneScratch dense_scratch;
  std::vector<SimDuration> streamed_scratch;
  for (int round = 0; round < 50; ++round) {
    std::vector<SimDuration> sends(n);
    for (size_t j = 0; j < n; ++j) {
      sends[j] = rng.NextBelow(10) == 0
                     ? kUnreachable
                     : static_cast<SimDuration>(rng.NextBelow(Milliseconds(50)));
    }
    const double hop_scale = (round % 3 == 0) ? 1.0 : (round % 3 == 1) ? 2.0 : 1.5;
    for (const size_t quorum : {size_t{1}, n / 3, 2 * n / 3, n}) {
      for (const size_t receiver : {size_t{0}, n / 2, n - 1}) {
        const SimDuration want = QuorumArrivalInto(dense, sends, receiver, quorum,
                                                   hop_scale, &dense_scratch);
        const SimDuration got =
            QuorumArrivalLargeN(model, sends.data(), n, receiver, quorum,
                                hop_scale, &streamed_scratch);
        ASSERT_EQ(got, want) << "round " << round << " q " << quorum << " r "
                             << receiver << " scale " << hop_scale;
      }
    }
  }
}

TEST(StreamedQuorumTest, SenderListFormMatchesExpandedForm) {
  Simulation sim(13);
  Network net(&sim, 0.05);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(70));
  StreamedDelays model(&net, hosts, 256);

  Rng rng(7);
  const size_t n = hosts.size();
  std::vector<SimDuration> scratch_a;
  std::vector<SimDuration> scratch_b;
  for (int round = 0; round < 30; ++round) {
    // A sorted unique committee, the shape sortition produces.
    std::vector<uint32_t> committee;
    std::vector<SimDuration> times;
    std::vector<SimDuration> expanded(n, kUnreachable);
    for (uint32_t i = 0; i < n; ++i) {
      if (rng.NextBelow(3) == 0) {
        const SimDuration t = static_cast<SimDuration>(rng.NextBelow(Seconds(1)));
        committee.push_back(i);
        times.push_back(t);
        expanded[i] = t;
      }
    }
    if (committee.empty()) {
      continue;
    }
    const size_t quorum = 1 + committee.size() / 2;
    for (const size_t receiver : {size_t{0}, n - 1}) {
      const SimDuration want = QuorumArrivalLargeN(model, expanded.data(), n,
                                                   receiver, quorum, 2.0, &scratch_a);
      const SimDuration got =
          QuorumArrivalLargeN(model, committee.data(), times.data(),
                              committee.size(), receiver, quorum, 2.0, &scratch_b);
      ASSERT_EQ(got, want) << "round " << round << " r " << receiver;
    }
  }
}

// --- VoteDelays facade -------------------------------------------------------

TEST(VoteDelaysTest, RepresentationFollowsThreshold) {
  Simulation sim(3);
  Network net(&sim, 0.05);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(20));
  const VoteDelays dense(&net, hosts, 256, /*dense_threshold=*/21);
  EXPECT_TRUE(dense.dense());
  Simulation sim2(3);
  Network net2(&sim2, 0.05);
  const std::vector<HostId> hosts2 = MakeHosts(&net2, SmallXl(20));
  const VoteDelays streamed(&net2, hosts2, 256, /*dense_threshold=*/20);
  EXPECT_FALSE(streamed.dense());
  EXPECT_EQ(dense.size(), streamed.size());
  // The streamed plane is orders of magnitude smaller even at toy scale.
  EXPECT_LT(streamed.ApproxBytes(), dense.ApproxBytes());
}

TEST(VoteDelaysTest, DenseFacadeForwardsBitIdentically) {
  // Two networks with the same seed draw the same matrix; the facade must
  // return exactly what the direct dense kernels return.
  Simulation sim_a(17);
  Network net_a(&sim_a, 0.05);
  const std::vector<HostId> hosts_a = MakeHosts(&net_a, SmallXl(30));
  const PairwiseDelays direct(&net_a, hosts_a, 256);
  Simulation sim_b(17);
  Network net_b(&sim_b, 0.05);
  const std::vector<HostId> hosts_b = MakeHosts(&net_b, SmallXl(30));
  const VoteDelays facade(&net_b, hosts_b, 256);
  ASSERT_TRUE(facade.dense());

  Rng rng(5);
  const size_t n = hosts_a.size();
  MessagePlaneScratch scratch_direct;
  MessagePlaneScratch scratch_facade;
  std::vector<SimDuration> all_direct;
  std::vector<SimDuration> all_facade;
  for (int round = 0; round < 20; ++round) {
    std::vector<SimDuration> sends(n);
    for (size_t j = 0; j < n; ++j) {
      sends[j] = static_cast<SimDuration>(rng.NextBelow(Milliseconds(20)));
    }
    const size_t quorum = 2 * n / 3;
    ASSERT_EQ(QuorumArrivalInto(facade, sends, 0, quorum, 1.0, &scratch_facade),
              QuorumArrivalInto(direct, sends, 0, quorum, 1.0, &scratch_direct));
    QuorumArrivalAllInto(direct, sends, quorum, 1.0, &scratch_direct, &all_direct);
    QuorumArrivalAllInto(facade, sends, quorum, 1.0, &scratch_facade, &all_facade);
    ASSERT_EQ(all_facade, all_direct);
  }
}

TEST(VoteDelaysTest, CommitteeKernelMatchesFullKernelBothRepresentations) {
  for (const size_t threshold : {size_t{1000}, size_t{1}}) {
    Simulation sim(23);
    Network net(&sim, 0.05);
    const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(60));
    const VoteDelays delays(&net, hosts, 256, threshold);
    const size_t n = hosts.size();

    Rng rng(9);
    MessagePlaneScratch scratch;
    std::vector<SimDuration> committee_result;
    for (int round = 0; round < 10; ++round) {
      std::vector<uint32_t> committee;
      std::vector<SimDuration> times;
      std::vector<SimDuration> expanded(n, kUnreachable);
      for (uint32_t i = 0; i < n; ++i) {
        if (rng.NextBelow(2) == 0) {
          const SimDuration t =
              static_cast<SimDuration>(rng.NextBelow(Milliseconds(100)));
          committee.push_back(i);
          times.push_back(t);
          expanded[i] = t;
        }
      }
      if (committee.size() < 2) {
        continue;
      }
      // Receivers with a duplicate, which the kernel must compute once.
      std::vector<uint32_t> receivers = {0, static_cast<uint32_t>(n - 1),
                                         committee[0], 0};
      const size_t quorum = 1 + committee.size() / 2;
      QuorumArrivalCommitteeInto(delays, committee, times, receivers, n, quorum,
                                 1.5, &scratch, &committee_result);
      ASSERT_EQ(committee_result.size(), n);
      std::vector<bool> listed(n, false);
      for (const uint32_t r : receivers) {
        listed[r] = true;
      }
      MessagePlaneScratch reference_scratch;
      for (size_t r = 0; r < n; ++r) {
        if (!listed[r]) {
          ASSERT_EQ(committee_result[r], kUnreachable);
          continue;
        }
        const SimDuration want =
            QuorumArrivalInto(delays, expanded, r, quorum, 1.5, &reference_scratch);
        ASSERT_EQ(committee_result[r], want)
            << "threshold " << threshold << " receiver " << r;
      }
    }
  }
}

// Exercises the facade's streamed path enough times to hit the checked-build
// sampled cross-check cadence (every 257th selection), so a DIABLO_CHECKED
// test run replays streamed answers through the dense matrix path.
TEST(VoteDelaysTest, StreamedFacadeSurvivesCheckedCrossCheckCadence) {
  Simulation sim(29);
  Network net(&sim, 0.05);
  const std::vector<HostId> hosts = MakeHosts(&net, SmallXl(40));
  const VoteDelays delays(&net, hosts, 256, /*dense_threshold=*/1);
  ASSERT_FALSE(delays.dense());
  const size_t n = hosts.size();
  Rng rng(31);
  MessagePlaneScratch scratch;
  std::vector<SimDuration> sends(n);
  for (int round = 0; round < 600; ++round) {
    for (size_t j = 0; j < n; ++j) {
      sends[j] = static_cast<SimDuration>(rng.NextBelow(Milliseconds(30)));
    }
    const SimDuration got =
        QuorumArrivalInto(delays, sends, round % n, 2 * n / 3, 1.0, &scratch);
    ASSERT_NE(got, kUnreachable);
  }
}

// --- bitset vote tracking ----------------------------------------------------

// One quorum rule per engine: the counter semantics the engines reduce votes
// with. VoteBitset must agree with a plain vector under each of them.
struct QuorumRule {
  const char* engine;
  size_t n;
  size_t quorum;
};

std::vector<QuorumRule> AllEngineRules() {
  return {
      {"hotstuff", 100, static_cast<size_t>(ByzantineQuorum(100))},
      {"ibft", 40, static_cast<size_t>(ByzantineQuorum(40))},
      {"dbft", 52, static_cast<size_t>(ByzantineQuorum(52))},
      {"raft", 25, 25 / 2 + 1},
      // BA* soft/cert threshold over an expected committee of 60.
      {"algorand", 60, 42},
      // alpha = 0.8 of a k=20 sample.
      {"avalanche", 20, 16},
      // Majority of the signer set.
      {"clique", 30, 30 / 2 + 1},
      // Supermajority of stake-weighted voters.
      {"solana", 150, 2 * 150 / 3 + 1},
  };
}

TEST(VoteBitsetTest, MatchesVectorCountingUnderEveryEngineRule) {
  for (const QuorumRule& rule : AllEngineRules()) {
    Rng rng(0x5eedULL ^ rule.n);
    VoteBitset bits;
    bits.Reset(rule.n);
    std::vector<uint8_t> reference(rule.n, 0);
    for (int op = 0; op < 2000; ++op) {
      const size_t who = rng.NextBelow(rule.n);
      if (rng.NextBelow(5) == 0) {
        bits.Clear(who);
        reference[who] = 0;
      } else {
        const bool fresh = bits.Set(who);
        ASSERT_EQ(fresh, reference[who] == 0) << rule.engine;
        reference[who] = 1;
      }
      const size_t count = static_cast<size_t>(
          std::count(reference.begin(), reference.end(), uint8_t{1}));
      ASSERT_EQ(bits.Count(), count) << rule.engine << " after op " << op;
      ASSERT_EQ(bits.HasQuorum(rule.quorum), count >= rule.quorum)
          << rule.engine << " after op " << op;
      ASSERT_TRUE(bits.Test(who) == (reference[who] != 0));
    }
    // Reset drops everything and keeps working.
    bits.Reset(rule.n);
    EXPECT_EQ(bits.Count(), 0u);
    EXPECT_FALSE(bits.HasQuorum(1));
  }
}

TEST(VoteBitsetTest, AssignAndBoundaryBits) {
  VoteBitset bits;
  bits.Reset(65);  // straddles a word boundary
  bits.Assign(0, true);
  bits.Assign(63, true);
  bits.Assign(64, true);
  EXPECT_EQ(bits.Count(), 3u);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  bits.Assign(63, false);
  EXPECT_EQ(bits.Count(), 2u);
  EXPECT_FALSE(bits.Test(63));
  // Redundant operations do not skew the counter.
  bits.Assign(64, true);
  bits.Clear(63);
  EXPECT_EQ(bits.Count(), 2u);
}

// --- ValidatorTable ----------------------------------------------------------

TEST(ValidatorTableTest, RegionsMatchDeploymentRoundRobin) {
  const DeploymentConfig community = GetDeployment("community");
  const ValidatorTable table(community);
  ASSERT_EQ(table.count(), static_cast<size_t>(community.node_count));
  for (int i = 0; i < community.node_count; ++i) {
    EXPECT_EQ(table.region(i), community.NodeRegion(i));
  }
}

TEST(ValidatorTableTest, DownBitsAllocateLazily) {
  ValidatorTable table(GetDeployment("devnet"));
  EXPECT_FALSE(table.Down(3));
  EXPECT_EQ(table.DownCount(), 0u);
  // Clearing an untouched table must not allocate the bitset.
  table.SetDown(2, false);
  EXPECT_LE(table.ApproxBytes(), sizeof(ValidatorTable) + table.count() + 64);
  table.SetDown(3, true);
  EXPECT_TRUE(table.Down(3));
  EXPECT_FALSE(table.Down(4));
  EXPECT_EQ(table.DownCount(), 1u);
  table.SetDown(3, false);
  EXPECT_FALSE(table.Down(3));
  EXPECT_EQ(table.DownCount(), 0u);
}

TEST(ValidatorTableTest, CpuOverridesAreSparse) {
  ValidatorTable table(GetDeployment("community"));
  EXPECT_FALSE(table.AnyCpuOverride());
  EXPECT_DOUBLE_EQ(table.CpuFactor(7), 1.0);
  table.SetCpuFactor(9, 0.25);
  table.SetCpuFactor(3, 0.5);
  table.SetCpuFactor(120, 0.75);
  EXPECT_TRUE(table.AnyCpuOverride());
  EXPECT_DOUBLE_EQ(table.CpuFactor(3), 0.5);
  EXPECT_DOUBLE_EQ(table.CpuFactor(9), 0.25);
  EXPECT_DOUBLE_EQ(table.CpuFactor(120), 0.75);
  EXPECT_DOUBLE_EQ(table.CpuFactor(8), 1.0);
  table.SetCpuFactor(9, 0.1);
  EXPECT_DOUBLE_EQ(table.CpuFactor(9), 0.1);
  // Factor 1.0 erases the entry instead of storing a no-op.
  table.SetCpuFactor(3, 1.0);
  table.SetCpuFactor(9, 1.0);
  table.SetCpuFactor(120, 1.0);
  EXPECT_FALSE(table.AnyCpuOverride());
}

// --- the 10k budget ----------------------------------------------------------

// The documented fig3-XL bound: the per-deployment state that used to be
// quadratic — the vote-delay plane — plus the per-validator table must stay
// within 64 bytes per validator (docs/performance.md). The dense matrix
// alone would be 2·8·n per validator (160 KB each at 10k).
TEST(XlBudgetTest, TenThousandValidatorsStayUnder64BytesEach) {
  for (const char* chain : {"diem", "algorand"}) {
    Simulation sim(1);
    Network net(&sim);
    const DeploymentConfig xl = GetDeployment("xl-10000");
    auto instance = BuildChain(chain, xl, &sim, &net);
    ASSERT_NE(instance, nullptr);
    const ChainContext& ctx = instance->context();
    EXPECT_FALSE(ctx.vote_delays().dense()) << chain;
    const size_t n = static_cast<size_t>(xl.node_count);
    EXPECT_LE(ctx.vote_delays().ApproxBytes(), 64 * n) << chain;
    EXPECT_LE(ctx.validators().ApproxBytes(), 16 * n + 4096) << chain;
  }
}

TEST(XlBudgetTest, SmallDeploymentsKeepTheDenseMatrix) {
  Simulation sim(1);
  Network net(&sim);
  auto instance = BuildChain("quorum", GetDeployment("community"), &sim, &net);
  EXPECT_TRUE(instance->context().vote_delays().dense());
}

// A 10k-validator cell must actually run end to end, quickly. The full-length
// cells live in bench/fig3_xl.cc; this is the correctness gate.
TEST(XlBudgetTest, TenThousandValidatorCellsComplete) {
  for (const char* chain : {"diem", "algorand", "avalanche"}) {
    const RunResult result = RunNativeBenchmark(chain, "xl-10000", /*tps=*/20,
                                                /*seconds=*/5, /*seed=*/1);
    EXPECT_FALSE(result.unsupported) << chain;
    EXPECT_TRUE(result.failure_reason.empty()) << chain << ": "
                                               << result.failure_reason;
    EXPECT_GT(result.report.submitted, 0u) << chain;
    EXPECT_GT(result.report.committed, 0u) << chain;
  }
}

}  // namespace
}  // namespace diablo
