#include <gtest/gtest.h>

#include "src/config/spec.h"
#include "src/config/yaml.h"

namespace diablo {
namespace {

// The gaming DApp configuration of §4, verbatim.
constexpr char kPaperSpec[] = R"yaml(let:
  - &loc { sample: !location [ "us-east-2" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 2000 } }
  - &dapp { sample: !contract { name: "dota" } }
workloads:
  - number: 3
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "update(1, 1)"
          load:
            0: 4432
            50: 4438
            120: 0
)yaml";

TEST(YamlTest, ScalarsAndNesting) {
  const YamlResult result = ParseYaml("a: 1\nb:\n  c: hello\n  d: 2.5\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(result.root.IsMap());
  EXPECT_EQ(result.root.GetInt("a", 0), 1);
  const YamlNode* b = result.root.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->GetString("c", ""), "hello");
  double d = 0;
  EXPECT_TRUE(b->Find("d")->AsDouble(&d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(result.root.Find("zzz"), nullptr);
}

TEST(YamlTest, BlockSequences) {
  const YamlResult result = ParseYaml("items:\n  - one\n  - two\n  - 3\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* items = result.root.Find("items");
  ASSERT_TRUE(items->IsList());
  ASSERT_EQ(items->items.size(), 3u);
  EXPECT_EQ(items->items[0].scalar, "one");
  int64_t three = 0;
  EXPECT_TRUE(items->items[2].AsInt64(&three));
  EXPECT_EQ(three, 3);
}

TEST(YamlTest, CompactMappingItems) {
  const YamlResult result =
      ParseYaml("list:\n  - name: a\n    size: 1\n  - name: b\n    size: 2\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* list = result.root.Find("list");
  ASSERT_TRUE(list->IsList());
  ASSERT_EQ(list->items.size(), 2u);
  EXPECT_EQ(list->items[0].GetString("name", ""), "a");
  EXPECT_EQ(list->items[1].GetInt("size", 0), 2);
}

TEST(YamlTest, FlowCollections) {
  const YamlResult result = ParseYaml(R"(inline: { a: 1, b: [x, "y z", 3] })");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* node = result.root.Find("inline");
  ASSERT_TRUE(node->IsMap());
  EXPECT_EQ(node->GetInt("a", 0), 1);
  const YamlNode* b = node->Find("b");
  ASSERT_TRUE(b->IsList());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_EQ(b->items[1].scalar, "y z");
}

TEST(YamlTest, AnchorsAndAliases) {
  const YamlResult result = ParseYaml("a: &x 42\nb: *x\nc: *x\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.root.GetInt("b", 0), 42);
  EXPECT_EQ(result.root.GetInt("c", 0), 42);
}

TEST(YamlTest, TagsPreserved) {
  const YamlResult result = ParseYaml("k: !invoke\n  f: 1\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* k = result.root.Find("k");
  EXPECT_EQ(k->tag, "invoke");
  EXPECT_TRUE(k->IsMap());
  EXPECT_EQ(k->GetInt("f", 0), 1);
}

TEST(YamlTest, CommentsStripped) {
  const YamlResult result =
      ParseYaml("# header\na: 1  # trailing\nb: \"has # inside\"\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.root.GetInt("a", 0), 1);
  EXPECT_EQ(result.root.GetString("b", ""), "has # inside");
}

TEST(YamlTest, ErrorsReported) {
  EXPECT_FALSE(ParseYaml("a: *nope\n").ok);
  EXPECT_FALSE(ParseYaml("a: [1, 2\n").ok);
  const YamlResult result = ParseYaml("a: 1\nb: *missing\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 2"), std::string::npos);
}

TEST(SpecTest, ParsesPaperExample) {
  const SpecResult result = ParseWorkloadSpec(kPaperSpec);
  ASSERT_TRUE(result.ok) << result.error;
  const WorkloadSpec& spec = result.spec;
  ASSERT_EQ(spec.groups.size(), 1u);
  const WorkloadGroup& group = spec.groups[0];
  EXPECT_EQ(group.clients, 3);
  ASSERT_EQ(group.locations.size(), 1u);
  EXPECT_EQ(group.locations[0], "us-east-2");
  ASSERT_EQ(group.endpoints.size(), 1u);
  EXPECT_EQ(group.endpoints[0], ".*");
  ASSERT_EQ(group.behaviors.size(), 1u);
  const ClientBehavior& behavior = group.behaviors[0];
  EXPECT_EQ(behavior.interaction, "invoke");
  EXPECT_EQ(behavior.contract, "dota");
  EXPECT_EQ(behavior.function, "update");
  EXPECT_EQ(behavior.args, (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(behavior.accounts, 2000);
  ASSERT_EQ(behavior.load.size(), 3u);
  EXPECT_DOUBLE_EQ(behavior.load[0].tps, 4432);
  EXPECT_DOUBLE_EQ(behavior.load[1].at_seconds, 50);
  EXPECT_DOUBLE_EQ(behavior.load[2].tps, 0);
  EXPECT_EQ(spec.TotalAccounts(), 2000);
  EXPECT_EQ(spec.PrimaryContract(), "dota");
}

TEST(SpecTest, TraceAggregatesClients) {
  const SpecResult result = ParseWorkloadSpec(kPaperSpec);
  ASSERT_TRUE(result.ok) << result.error;
  const Trace trace = result.spec.ToTrace();
  // §4: 3 clients at 4432 TPS for 50 s, then 4438 TPS until 120 s.
  ASSERT_EQ(trace.duration_seconds(), 120u);
  EXPECT_DOUBLE_EQ(trace.tps[0], 3 * 4432.0);
  EXPECT_DOUBLE_EQ(trace.tps[49], 3 * 4432.0);
  EXPECT_DOUBLE_EQ(trace.tps[50], 3 * 4438.0);
  EXPECT_DOUBLE_EQ(trace.tps[119], 3 * 4438.0);
}

TEST(SpecTest, TransferWorkload) {
  const SpecResult result = ParseWorkloadSpec(R"(workloads:
  - number: 2
    client:
      behavior:
        - interaction: !transfer
          load:
            0: 500
            120: 0
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec.PrimaryContract(), "");
  const Trace trace = result.spec.ToTrace();
  EXPECT_DOUBLE_EQ(trace.tps[0], 1000.0);
  EXPECT_EQ(trace.duration_seconds(), 120u);
}

TEST(SpecTest, Errors) {
  EXPECT_FALSE(ParseWorkloadSpec("nothing: here\n").ok);
  EXPECT_FALSE(ParseWorkloadSpec("workloads:\n  - client:\n      behavior:\n").ok);
}

namespace {

// A minimal valid workload the fault tests can hang a `faults:` section on.
std::string WithFaults(const std::string& faults) {
  return "workloads:\n  - client:\n      behavior:\n"
         "        - interaction: !transfer\n          load:\n"
         "            0: 100\n            60: 0\n" +
         faults;
}

}  // namespace

TEST(SpecFaultsTest, ParsesFullFaultSchedule) {
  const SpecResult result = ParseWorkloadSpec(WithFaults(R"(faults:
  - crash: { node: 0, at: 10, restart: 30 }
  - partition: { nodes: [1, 2, 3], from: 10, to: 40 }
  - partition: { region: ohio, from: 45, to: 50 }
  - loss: { rate: 0.05, from: 45, to: 50, between: [ohio, tokyo] }
  - delay: { extra_ms: 250, from: 50, to: 55 }
  - straggler: { node: 4, cpu_factor: 0.5, from: 5, to: 20 }
)"));
  ASSERT_TRUE(result.ok) << result.error;
  const FaultSchedule& faults = result.spec.faults;
  ASSERT_EQ(faults.events.size(), 6u);
  EXPECT_EQ(faults.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(faults.events[0].node, 0);
  EXPECT_EQ(faults.events[0].at, Seconds(10));
  EXPECT_EQ(faults.events[0].until, Seconds(30));
  EXPECT_EQ(faults.events[1].nodes, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(faults.events[2].by_region);
  EXPECT_EQ(faults.events[2].region, Region::kOhio);
  EXPECT_DOUBLE_EQ(faults.events[3].loss_rate, 0.05);
  EXPECT_TRUE(faults.events[3].region_pair);
  EXPECT_EQ(faults.events[3].pair_b, Region::kTokyo);
  EXPECT_EQ(faults.events[4].extra_delay, Milliseconds(250));
  EXPECT_FALSE(faults.events[4].region_pair);
  EXPECT_DOUBLE_EQ(faults.events[5].cpu_factor, 0.5);
}

TEST(SpecFaultsTest, NoFaultSectionMeansEmptySchedule) {
  const SpecResult result = ParseWorkloadSpec(WithFaults(""));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.spec.faults.empty());
}

TEST(SpecFaultsTest, RejectsMalformedEntries) {
  // Malformed time.
  SpecResult result = ParseWorkloadSpec(
      WithFaults("faults:\n  - crash: { node: 0, at: banana }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("malformed fault time"), std::string::npos)
      << result.error;

  // Missing required fields.
  EXPECT_FALSE(
      ParseWorkloadSpec(WithFaults("faults:\n  - crash: { at: 10 }\n")).ok);
  EXPECT_FALSE(
      ParseWorkloadSpec(WithFaults("faults:\n  - loss: { from: 1, to: 2 }\n")).ok);

  // Unknown kind and unknown region.
  result = ParseWorkloadSpec(
      WithFaults("faults:\n  - meteor: { node: 0, at: 10 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown fault kind"), std::string::npos)
      << result.error;
  result = ParseWorkloadSpec(
      WithFaults("faults:\n  - partition: { region: atlantis, from: 10 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown region"), std::string::npos)
      << result.error;

  // `between` must name exactly two regions.
  EXPECT_FALSE(ParseWorkloadSpec(WithFaults(
                   "faults:\n  - loss: { rate: 0.1, from: 1, between: [ohio] }\n"))
                   .ok);
}

TEST(SpecFaultsTest, RejectsInvalidSchedulesAtParseTime) {
  // Heal before onset.
  SpecResult result = ParseWorkloadSpec(
      WithFaults("faults:\n  - crash: { node: 0, at: 30, restart: 10 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("heal time"), std::string::npos) << result.error;

  // Overlapping windows on the same scope.
  result = ParseWorkloadSpec(WithFaults(
      "faults:\n"
      "  - crash: { node: 0, at: 10, restart: 30 }\n"
      "  - crash: { node: 0, at: 20, restart: 40 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("overlaps"), std::string::npos) << result.error;

  // Out-of-range rate.
  EXPECT_FALSE(ParseWorkloadSpec(
                   WithFaults("faults:\n  - loss: { rate: 1.5, from: 1 }\n"))
                   .ok);
}

TEST(SpecFaultsTest, ParsesByzantineKinds) {
  const SpecResult result = ParseWorkloadSpec(WithFaults(R"(faults:
  - equivocate: { nodes: [0], from: 5, to: 15 }
  - double-vote: { fraction: 0.2, from: 20, to: 30 }
  - withhold: { nodes: [1, 2], from: 35, to: 45 }
  - censor: { nodes: [3], signers: [0, 1, 2], from: 50, to: 55 }
  - lazy: { fraction: 0.1, from: 56, to: 58 }
)"));
  ASSERT_TRUE(result.ok) << result.error;
  const FaultSchedule& faults = result.spec.faults;
  ASSERT_EQ(faults.events.size(), 5u);
  EXPECT_EQ(faults.events[0].kind, FaultKind::kEquivocate);
  EXPECT_EQ(faults.events[0].nodes, (std::vector<int>{0}));
  EXPECT_EQ(faults.events[1].kind, FaultKind::kDoubleVote);
  EXPECT_DOUBLE_EQ(faults.events[1].fraction, 0.2);
  EXPECT_EQ(faults.events[2].kind, FaultKind::kWithholdVotes);
  EXPECT_EQ(faults.events[3].kind, FaultKind::kCensor);
  EXPECT_EQ(faults.events[3].censored_signers, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(faults.events[4].kind, FaultKind::kLazyProposer);
  EXPECT_EQ(faults.events[4].until, Seconds(58));
}

TEST(SpecFaultsTest, RejectsMalformedByzantineEntries) {
  // Both nodes and fraction, and neither, are ambiguous scopes.
  SpecResult result = ParseWorkloadSpec(WithFaults(
      "faults:\n  - equivocate: { nodes: [0], fraction: 0.2, from: 1, to: 2 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("exactly one"), std::string::npos) << result.error;
  EXPECT_FALSE(ParseWorkloadSpec(
                   WithFaults("faults:\n  - withhold: { from: 1, to: 2 }\n"))
                   .ok);

  // Censorship without its signer list.
  result = ParseWorkloadSpec(
      WithFaults("faults:\n  - censor: { nodes: [0], from: 1, to: 2 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("signers"), std::string::npos) << result.error;

  // Fraction outside (0, 1).
  EXPECT_FALSE(ParseWorkloadSpec(WithFaults(
                   "faults:\n  - lazy: { fraction: 1.5, from: 1, to: 2 }\n"))
                   .ok);
}

TEST(SpecFaultsTest, RejectsZeroDurationWindows) {
  const SpecResult result = ParseWorkloadSpec(WithFaults(
      "faults:\n  - double-vote: { fraction: 0.2, from: 10, to: 10 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("zero-duration"), std::string::npos)
      << result.error;
}

TEST(SpecFaultsTest, RejectsUnknownKeysWithSourceLine) {
  // A typo'd key is an error, not silently ignored — and the diagnostic
  // names the offending line of the workload file.
  SpecResult result = ParseWorkloadSpec(WithFaults(
      "faults:\n  - crash: { node: 0, at: 10, restrat: 25 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown key 'restrat'"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("(line 9)"), std::string::npos) << result.error;

  result = ParseWorkloadSpec(WithFaults(
      "faults:\n  - equivocate: { nodes: [0], rate: 0.5, from: 1, to: 2 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown key 'rate'"), std::string::npos)
      << result.error;

  // Unknown kinds carry the line too.
  result = ParseWorkloadSpec(
      WithFaults("faults:\n  - meteor: { node: 0, at: 10 }\n"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown fault kind: meteor (line 9)"),
            std::string::npos)
      << result.error;
}

TEST(FunctionRefTest, Parsing) {
  std::string name;
  std::vector<int64_t> args;
  EXPECT_TRUE(ParseFunctionRef("update(1, 1)", &name, &args));
  EXPECT_EQ(name, "update");
  EXPECT_EQ(args, (std::vector<int64_t>{1, 1}));
  EXPECT_TRUE(ParseFunctionRef("add", &name, &args));
  EXPECT_EQ(name, "add");
  EXPECT_TRUE(args.empty());
  EXPECT_TRUE(ParseFunctionRef("f()", &name, &args));
  EXPECT_TRUE(args.empty());
  EXPECT_FALSE(ParseFunctionRef("f(1", &name, &args));
  EXPECT_FALSE(ParseFunctionRef("f(x)", &name, &args));
  EXPECT_FALSE(ParseFunctionRef("", &name, &args));
}

}  // namespace
}  // namespace diablo
