#include <gtest/gtest.h>

#include "src/config/spec.h"
#include "src/config/yaml.h"

namespace diablo {
namespace {

// The gaming DApp configuration of §4, verbatim.
constexpr char kPaperSpec[] = R"yaml(let:
  - &loc { sample: !location [ "us-east-2" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 2000 } }
  - &dapp { sample: !contract { name: "dota" } }
workloads:
  - number: 3
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "update(1, 1)"
          load:
            0: 4432
            50: 4438
            120: 0
)yaml";

TEST(YamlTest, ScalarsAndNesting) {
  const YamlResult result = ParseYaml("a: 1\nb:\n  c: hello\n  d: 2.5\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_TRUE(result.root.IsMap());
  EXPECT_EQ(result.root.GetInt("a", 0), 1);
  const YamlNode* b = result.root.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->GetString("c", ""), "hello");
  double d = 0;
  EXPECT_TRUE(b->Find("d")->AsDouble(&d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(result.root.Find("zzz"), nullptr);
}

TEST(YamlTest, BlockSequences) {
  const YamlResult result = ParseYaml("items:\n  - one\n  - two\n  - 3\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* items = result.root.Find("items");
  ASSERT_TRUE(items->IsList());
  ASSERT_EQ(items->items.size(), 3u);
  EXPECT_EQ(items->items[0].scalar, "one");
  int64_t three = 0;
  EXPECT_TRUE(items->items[2].AsInt64(&three));
  EXPECT_EQ(three, 3);
}

TEST(YamlTest, CompactMappingItems) {
  const YamlResult result =
      ParseYaml("list:\n  - name: a\n    size: 1\n  - name: b\n    size: 2\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* list = result.root.Find("list");
  ASSERT_TRUE(list->IsList());
  ASSERT_EQ(list->items.size(), 2u);
  EXPECT_EQ(list->items[0].GetString("name", ""), "a");
  EXPECT_EQ(list->items[1].GetInt("size", 0), 2);
}

TEST(YamlTest, FlowCollections) {
  const YamlResult result = ParseYaml(R"(inline: { a: 1, b: [x, "y z", 3] })");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* node = result.root.Find("inline");
  ASSERT_TRUE(node->IsMap());
  EXPECT_EQ(node->GetInt("a", 0), 1);
  const YamlNode* b = node->Find("b");
  ASSERT_TRUE(b->IsList());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_EQ(b->items[1].scalar, "y z");
}

TEST(YamlTest, AnchorsAndAliases) {
  const YamlResult result = ParseYaml("a: &x 42\nb: *x\nc: *x\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.root.GetInt("b", 0), 42);
  EXPECT_EQ(result.root.GetInt("c", 0), 42);
}

TEST(YamlTest, TagsPreserved) {
  const YamlResult result = ParseYaml("k: !invoke\n  f: 1\n");
  ASSERT_TRUE(result.ok) << result.error;
  const YamlNode* k = result.root.Find("k");
  EXPECT_EQ(k->tag, "invoke");
  EXPECT_TRUE(k->IsMap());
  EXPECT_EQ(k->GetInt("f", 0), 1);
}

TEST(YamlTest, CommentsStripped) {
  const YamlResult result =
      ParseYaml("# header\na: 1  # trailing\nb: \"has # inside\"\n");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.root.GetInt("a", 0), 1);
  EXPECT_EQ(result.root.GetString("b", ""), "has # inside");
}

TEST(YamlTest, ErrorsReported) {
  EXPECT_FALSE(ParseYaml("a: *nope\n").ok);
  EXPECT_FALSE(ParseYaml("a: [1, 2\n").ok);
  const YamlResult result = ParseYaml("a: 1\nb: *missing\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 2"), std::string::npos);
}

TEST(SpecTest, ParsesPaperExample) {
  const SpecResult result = ParseWorkloadSpec(kPaperSpec);
  ASSERT_TRUE(result.ok) << result.error;
  const WorkloadSpec& spec = result.spec;
  ASSERT_EQ(spec.groups.size(), 1u);
  const WorkloadGroup& group = spec.groups[0];
  EXPECT_EQ(group.clients, 3);
  ASSERT_EQ(group.locations.size(), 1u);
  EXPECT_EQ(group.locations[0], "us-east-2");
  ASSERT_EQ(group.endpoints.size(), 1u);
  EXPECT_EQ(group.endpoints[0], ".*");
  ASSERT_EQ(group.behaviors.size(), 1u);
  const ClientBehavior& behavior = group.behaviors[0];
  EXPECT_EQ(behavior.interaction, "invoke");
  EXPECT_EQ(behavior.contract, "dota");
  EXPECT_EQ(behavior.function, "update");
  EXPECT_EQ(behavior.args, (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(behavior.accounts, 2000);
  ASSERT_EQ(behavior.load.size(), 3u);
  EXPECT_DOUBLE_EQ(behavior.load[0].tps, 4432);
  EXPECT_DOUBLE_EQ(behavior.load[1].at_seconds, 50);
  EXPECT_DOUBLE_EQ(behavior.load[2].tps, 0);
  EXPECT_EQ(spec.TotalAccounts(), 2000);
  EXPECT_EQ(spec.PrimaryContract(), "dota");
}

TEST(SpecTest, TraceAggregatesClients) {
  const SpecResult result = ParseWorkloadSpec(kPaperSpec);
  ASSERT_TRUE(result.ok) << result.error;
  const Trace trace = result.spec.ToTrace();
  // §4: 3 clients at 4432 TPS for 50 s, then 4438 TPS until 120 s.
  ASSERT_EQ(trace.duration_seconds(), 120u);
  EXPECT_DOUBLE_EQ(trace.tps[0], 3 * 4432.0);
  EXPECT_DOUBLE_EQ(trace.tps[49], 3 * 4432.0);
  EXPECT_DOUBLE_EQ(trace.tps[50], 3 * 4438.0);
  EXPECT_DOUBLE_EQ(trace.tps[119], 3 * 4438.0);
}

TEST(SpecTest, TransferWorkload) {
  const SpecResult result = ParseWorkloadSpec(R"(workloads:
  - number: 2
    client:
      behavior:
        - interaction: !transfer
          load:
            0: 500
            120: 0
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.spec.PrimaryContract(), "");
  const Trace trace = result.spec.ToTrace();
  EXPECT_DOUBLE_EQ(trace.tps[0], 1000.0);
  EXPECT_EQ(trace.duration_seconds(), 120u);
}

TEST(SpecTest, Errors) {
  EXPECT_FALSE(ParseWorkloadSpec("nothing: here\n").ok);
  EXPECT_FALSE(ParseWorkloadSpec("workloads:\n  - client:\n      behavior:\n").ok);
}

TEST(FunctionRefTest, Parsing) {
  std::string name;
  std::vector<int64_t> args;
  EXPECT_TRUE(ParseFunctionRef("update(1, 1)", &name, &args));
  EXPECT_EQ(name, "update");
  EXPECT_EQ(args, (std::vector<int64_t>{1, 1}));
  EXPECT_TRUE(ParseFunctionRef("add", &name, &args));
  EXPECT_EQ(name, "add");
  EXPECT_TRUE(args.empty());
  EXPECT_TRUE(ParseFunctionRef("f()", &name, &args));
  EXPECT_TRUE(args.empty());
  EXPECT_FALSE(ParseFunctionRef("f(1", &name, &args));
  EXPECT_FALSE(ParseFunctionRef("f(x)", &name, &args));
  EXPECT_FALSE(ParseFunctionRef("", &name, &args));
}

}  // namespace
}  // namespace diablo
