#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/chain/block.h"
#include "src/chain/execution.h"
#include "src/chain/mempool.h"
#include "src/chain/node.h"
#include "src/chain/tx.h"
#include "src/chain/vote_round.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

TEST(TxStoreTest, AddAndPhaseCounts) {
  TxStore store;
  Transaction tx;
  tx.account = 7;
  const TxId a = store.Add(tx);
  const TxId b = store.Add(tx);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  store.at(b).phase = TxPhase::kCommitted;
  const auto counts = store.PhaseCounts();
  EXPECT_EQ(counts[static_cast<size_t>(TxPhase::kCreated)], 1u);
  EXPECT_EQ(counts[static_cast<size_t>(TxPhase::kCommitted)], 1u);
}

TEST(TxTest, LatencyComputation) {
  Transaction tx;
  EXPECT_DOUBLE_EQ(tx.LatencySeconds(), -1.0);
  tx.submit_time = Seconds(1);
  tx.commit_time = Seconds(4);
  EXPECT_DOUBLE_EQ(tx.LatencySeconds(), 3.0);
}

TEST(TxTest, PhaseNames) {
  EXPECT_EQ(TxPhaseName(TxPhase::kCommitted), "committed");
  EXPECT_EQ(TxPhaseName(TxPhase::kDropped), "dropped");
}

TEST(LedgerTest, AppendAndDigest) {
  Ledger ledger;
  EXPECT_TRUE(ledger.empty());
  EXPECT_EQ(ledger.next_height(), 1u);
  Block block;
  block.height = 1;
  block.tx_count = 3;
  ledger.Append(block);
  EXPECT_EQ(ledger.block_count(), 1u);
  EXPECT_EQ(ledger.total_txs(), 3u);
  EXPECT_EQ(ledger.next_height(), 2u);
  const Digest256 d1 = ledger.HeaderChainDigest();
  Block second;
  second.height = 2;
  ledger.Append(second);
  EXPECT_NE(ledger.HeaderChainDigest(), d1);
}

TEST(MempoolTest, FifoByReadiness) {
  Mempool pool(MempoolConfig{});
  pool.Add(0, 1, Seconds(0), Seconds(2));
  pool.Add(1, 1, Seconds(0), Seconds(1));
  pool.Add(2, 1, Seconds(0), Seconds(3));
  std::vector<TxId> expired;
  const auto taken = pool.TakeReady(Seconds(10), 0, 0, 100, [](TxId) { return 1; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(taken, (std::vector<TxId>{1, 0, 2}));
  EXPECT_TRUE(expired.empty());
}

TEST(MempoolTest, ReadinessGates) {
  Mempool pool(MempoolConfig{});
  pool.Add(0, 1, Seconds(0), Seconds(5));
  std::vector<TxId> expired;
  EXPECT_TRUE(pool.TakeReady(Seconds(4), 0, 0, 10, [](TxId) { return 1; }, [](TxId) { return 110; }, &expired).empty());
  EXPECT_EQ(pool.TakeReady(Seconds(5), 0, 0, 10, [](TxId) { return 1; }, [](TxId) { return 110; }, &expired).size(), 1u);
}

TEST(MempoolTest, GlobalCap) {
  MempoolConfig config;
  config.global_cap = 2;
  Mempool pool(config);
  EXPECT_EQ(pool.Add(0, 1, 0, 0), AdmitResult::kAdmitted);
  EXPECT_EQ(pool.Add(1, 2, 0, 0), AdmitResult::kAdmitted);
  EXPECT_EQ(pool.Add(2, 3, 0, 0), AdmitResult::kPoolFull);
  EXPECT_EQ(pool.rejected(), 1u);
  std::vector<TxId> expired;
  pool.TakeReady(Seconds(1), 0, 0, 10, [](TxId) { return 1; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(pool.Add(2, 3, 0, 0), AdmitResult::kAdmitted);
}

TEST(MempoolTest, PerSignerCapReleasedOnTake) {
  MempoolConfig config;
  config.per_signer_cap = 2;
  Mempool pool(config);
  EXPECT_EQ(pool.Add(0, 9, 0, 0), AdmitResult::kAdmitted);
  EXPECT_EQ(pool.Add(1, 9, 0, 0), AdmitResult::kAdmitted);
  EXPECT_EQ(pool.Add(2, 9, 0, 0), AdmitResult::kSignerCapReached);
  // Another signer is unaffected.
  EXPECT_EQ(pool.Add(3, 10, 0, 0), AdmitResult::kAdmitted);
  std::vector<TxId> expired;
  pool.TakeReady(Seconds(1), 0, 0, 1, [](TxId) { return 1; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(pool.Add(2, 9, 0, 0), AdmitResult::kAdmitted);
}

TEST(MempoolTest, GasBudgetStopsTake) {
  Mempool pool(MempoolConfig{});
  for (TxId id = 0; id < 5; ++id) {
    pool.Add(id, id, 0, 0);
  }
  std::vector<TxId> expired;
  const auto taken =
      pool.TakeReady(Seconds(1), /*gas_budget=*/250, 0, 10, [](TxId) { return 100; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(MempoolTest, OversizedTxExpiredNotWedged) {
  Mempool pool(MempoolConfig{});
  pool.Add(0, 1, 0, 0);  // gas 1000 > budget
  pool.Add(1, 2, 0, 0);  // gas 10
  std::vector<TxId> expired;
  const auto taken = pool.TakeReady(
      Seconds(1), /*gas_budget=*/100, 0, 10,
      [](TxId id) { return id == 0 ? 1000 : 10; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(taken, (std::vector<TxId>{1}));
  EXPECT_EQ(expired, (std::vector<TxId>{0}));
}

TEST(MempoolTest, EvictOnFullReplacesRandomVictim) {
  MempoolConfig config;
  config.global_cap = 4;
  config.evict_on_full = true;
  Rng rng(99);
  Mempool pool(config, &rng);
  for (TxId id = 0; id < 4; ++id) {
    TxId evicted = kInvalidTx;
    EXPECT_EQ(pool.Add(id, id, 0, 0, &evicted), AdmitResult::kAdmitted);
    EXPECT_EQ(evicted, kInvalidTx);
  }
  // The pool is full: the next admission evicts one of the four.
  TxId evicted = kInvalidTx;
  EXPECT_EQ(pool.Add(4, 4, 0, 0, &evicted), AdmitResult::kAdmitted);
  EXPECT_NE(evicted, kInvalidTx);
  EXPECT_LT(evicted, 4u);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.evictions(), 1u);

  // TakeReady never returns the zombie.
  std::vector<TxId> expired;
  const auto taken = pool.TakeReady(Seconds(1), 0, 0, 10, [](TxId) { return 1; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(taken.size(), 4u);
  for (const TxId id : taken) {
    EXPECT_NE(id, evicted);
  }
  EXPECT_EQ(pool.size(), 0u);
}

TEST(MempoolTest, EvictionChurnKeepsPoolAtCap) {
  MempoolConfig config;
  config.global_cap = 100;
  config.evict_on_full = true;
  Rng rng(7);
  Mempool pool(config, &rng);
  for (TxId id = 0; id < 10000; ++id) {
    TxId evicted = kInvalidTx;
    ASSERT_EQ(pool.Add(id, id % 32, 0, 0, &evicted), AdmitResult::kAdmitted);
  }
  EXPECT_EQ(pool.size(), 100u);
  EXPECT_EQ(pool.evictions(), 9900u);
  std::vector<TxId> expired;
  const auto taken = pool.TakeReady(Seconds(1), 0, 0, 200, [](TxId) { return 1; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(taken.size(), 100u);
  EXPECT_TRUE(expired.empty());
}

TEST(MempoolTest, EvictionDisabledWithoutRng) {
  MempoolConfig config;
  config.global_cap = 1;
  config.evict_on_full = true;
  Mempool pool(config, nullptr);
  EXPECT_EQ(pool.Add(0, 0, 0, 0), AdmitResult::kAdmitted);
  EXPECT_EQ(pool.Add(1, 1, 0, 0), AdmitResult::kPoolFull);
}

TEST(MempoolTest, ByteBudgetStopsTake) {
  Mempool pool(MempoolConfig{});
  for (TxId id = 0; id < 6; ++id) {
    pool.Add(id, id, 0, 0);
  }
  std::vector<TxId> expired;
  // Each tx is 400 bytes; a 1000-byte block fits two.
  const auto taken = pool.TakeReady(
      Seconds(1), 0, /*byte_budget=*/1000, 10, [](TxId) { return 1; },
      [](TxId) { return 400; }, &expired);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(MempoolTest, TtlExpiry) {
  MempoolConfig config;
  config.ttl = Seconds(10);
  Mempool pool(config);
  pool.Add(0, 1, /*ingress=*/Seconds(0), /*ready=*/Seconds(1));
  pool.Add(1, 1, /*ingress=*/Seconds(15), /*ready=*/Seconds(16));
  std::vector<TxId> expired;
  const auto taken = pool.TakeReady(Seconds(20), 0, 0, 10, [](TxId) { return 1; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(taken, (std::vector<TxId>{1}));
  EXPECT_EQ(expired, (std::vector<TxId>{0}));
}

// --- semantics locks for the mempool hot path ------------------------------
// These pin the admission-control corner cases (victim accounting, zombie
// skipping, TTL vs Requeue, signer-slot release ordering) so the flat
// struct-of-arrays implementation is observably identical to the original
// hash-container one.

TEST(MempoolTest, EvictOnFullVictimEvictedEvenWhenNewcomerFailsSignerCap) {
  // Eviction happens before the per-signer check: a full pool sheds a victim
  // for a newcomer that is then itself rejected by its signer cap. The caller
  // owns dropping both; the pool must report the victim and stay below cap.
  MempoolConfig config;
  config.global_cap = 2;
  config.per_signer_cap = 1;
  config.evict_on_full = true;
  Rng rng(5);
  Mempool pool(config, &rng);
  EXPECT_EQ(pool.Add(0, /*signer=*/1, 0, 0), AdmitResult::kAdmitted);
  EXPECT_EQ(pool.Add(1, /*signer=*/2, 0, 0), AdmitResult::kAdmitted);
  // Signer 1 is at its cap. A full-pool admission for signer 1 evicts its
  // victim FIRST; whether the newcomer then lands depends on whether the
  // victim freed signer 1's slot. Either way the victim is out and reported.
  TxId evicted = kInvalidTx;
  const AdmitResult result = pool.Add(2, /*signer=*/1, 0, 0, &evicted);
  EXPECT_NE(evicted, kInvalidTx);
  EXPECT_EQ(pool.evictions(), 1u);
  if (evicted == 0) {
    // Victim shared signer 1: its slot was released, the newcomer fits.
    EXPECT_EQ(result, AdmitResult::kAdmitted);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.rejected(), 0u);
  } else {
    // Victim was signer 2's tx: signer 1 stays at cap, the newcomer bounces,
    // and the pool is left one short of its cap.
    EXPECT_EQ(result, AdmitResult::kSignerCapReached);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.rejected(), 1u);
  }
}

TEST(MempoolTest, EvictionReleasesVictimSignerSlot) {
  MempoolConfig config;
  config.global_cap = 1;
  config.per_signer_cap = 1;
  config.evict_on_full = true;
  Rng rng(3);
  Mempool pool(config, &rng);
  EXPECT_EQ(pool.Add(0, /*signer=*/7, 0, 0), AdmitResult::kAdmitted);
  // Tx 0 (signer 7) is the only candidate victim; its eviction must free
  // signer 7's slot so tx 2 can use it immediately afterwards.
  TxId evicted = kInvalidTx;
  EXPECT_EQ(pool.Add(1, /*signer=*/8, 0, 0, &evicted), AdmitResult::kAdmitted);
  EXPECT_EQ(evicted, 0u);
  evicted = kInvalidTx;
  EXPECT_EQ(pool.Add(2, /*signer=*/7, 0, 0, &evicted), AdmitResult::kAdmitted);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(MempoolTest, ZombiesSkippedAcrossMultipleTakes) {
  MempoolConfig config;
  config.global_cap = 3;
  config.evict_on_full = true;
  Rng rng(11);
  Mempool pool(config, &rng);
  // Fill, then churn enough admissions that several zombie entries pile up
  // in the queue ahead of live ones.
  std::vector<bool> evicted_ids(64, false);
  for (TxId id = 0; id < 10; ++id) {
    TxId evicted = kInvalidTx;
    ASSERT_EQ(pool.Add(id, id, 0, Seconds(1)), AdmitResult::kAdmitted)
        << "id " << id;
    (void)evicted;
  }
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.evictions(), 7u);
  // Take one at a time: zombies at the queue head are silently popped and
  // never surface, and the live count stays exact.
  std::vector<TxId> expired;
  std::vector<TxId> all_taken;
  for (int i = 0; i < 3; ++i) {
    const auto taken = pool.TakeReady(
        Seconds(2), 0, 0, 1, [](TxId) { return 1; }, [](TxId) { return 110; },
        &expired);
    ASSERT_EQ(taken.size(), 1u);
    all_taken.push_back(taken[0]);
  }
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(expired.empty());
  EXPECT_TRUE(pool.TakeReady(Seconds(2), 0, 0, 10, [](TxId) { return 1; },
                             [](TxId) { return 110; }, &expired)
                  .empty());
}

TEST(MempoolTest, TtlExpiryRacesRequeue) {
  MempoolConfig config;
  config.ttl = Seconds(10);
  config.per_signer_cap = 1;
  Mempool pool(config);
  pool.Add(0, /*signer=*/1, /*ingress=*/Seconds(0), /*ready=*/Seconds(1));
  std::vector<TxId> expired;
  const auto taken = pool.TakeReady(Seconds(5), 0, 0, 10, [](TxId) { return 1; },
                                    [](TxId) { return 110; }, &expired);
  ASSERT_EQ(taken, (std::vector<TxId>{0}));

  // Leader failure: the tx goes back with its ORIGINAL ingress time, so the
  // TTL clock keeps running across the requeue.
  pool.Requeue({0}, {1}, {Seconds(0)}, {Seconds(6)});
  EXPECT_EQ(pool.size(), 1u);
  // Signer slot is re-held after requeue.
  EXPECT_EQ(pool.Add(7, /*signer=*/1, Seconds(6), Seconds(6)),
            AdmitResult::kSignerCapReached);

  const auto after = pool.TakeReady(Seconds(20), 0, 0, 10, [](TxId) { return 1; },
                                    [](TxId) { return 110; }, &expired);
  EXPECT_TRUE(after.empty());
  EXPECT_EQ(expired, (std::vector<TxId>{0}));
  EXPECT_EQ(pool.size(), 0u);
  // Expiry released the signer slot.
  EXPECT_EQ(pool.Add(8, /*signer=*/1, Seconds(20), Seconds(20)),
            AdmitResult::kAdmitted);
}

TEST(MempoolTest, SignerSlotReleaseOrdering) {
  MempoolConfig config;
  config.per_signer_cap = 1;
  config.ttl = Seconds(10);
  Mempool pool(config);
  std::vector<TxId> expired;
  // Take releases the slot.
  EXPECT_EQ(pool.Add(0, 5, Seconds(0), Seconds(0)), AdmitResult::kAdmitted);
  EXPECT_EQ(pool.Add(1, 5, Seconds(0), Seconds(0)), AdmitResult::kSignerCapReached);
  pool.TakeReady(Seconds(1), 0, 0, 10, [](TxId) { return 1; },
                 [](TxId) { return 110; }, &expired);
  // TTL expiry releases the slot too.
  EXPECT_EQ(pool.Add(2, 5, Seconds(1), Seconds(2)), AdmitResult::kAdmitted);
  const auto taken = pool.TakeReady(Seconds(30), 0, 0, 10, [](TxId) { return 1; },
                                    [](TxId) { return 110; }, &expired);
  EXPECT_TRUE(taken.empty());
  EXPECT_EQ(expired, (std::vector<TxId>{2}));
  // An over-budget head is treated as expired and must also release its slot.
  EXPECT_EQ(pool.Add(3, 5, Seconds(30), Seconds(30)), AdmitResult::kAdmitted);
  expired.clear();
  pool.TakeReady(Seconds(31), /*gas_budget=*/10, 0, 10,
                 [](TxId) { return 100; }, [](TxId) { return 110; }, &expired);
  EXPECT_EQ(expired, (std::vector<TxId>{3}));
  EXPECT_EQ(pool.Add(4, 5, Seconds(31), Seconds(31)), AdmitResult::kAdmitted);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(MempoolTest, RequeuePreservesReadinessOrder) {
  Mempool pool(MempoolConfig{});
  pool.Add(0, 1, Seconds(0), Seconds(1));
  pool.Add(1, 2, Seconds(0), Seconds(2));
  std::vector<TxId> expired;
  auto taken = pool.TakeReady(Seconds(5), 0, 0, 10, [](TxId) { return 1; },
                              [](TxId) { return 110; }, &expired);
  ASSERT_EQ(taken.size(), 2u);
  // Requeue in reverse; readiness times still dictate the pop order.
  pool.Requeue({1, 0}, {2, 1}, {Seconds(0), Seconds(0)},
               {Seconds(2), Seconds(1)});
  EXPECT_EQ(pool.size(), 2u);
  taken = pool.TakeReady(Seconds(1), 0, 0, 10, [](TxId) { return 1; },
                         [](TxId) { return 110; }, &expired);
  EXPECT_EQ(taken, (std::vector<TxId>{0}));
  taken = pool.TakeReady(Seconds(5), 0, 0, 10, [](TxId) { return 1; },
                         [](TxId) { return 110; }, &expired);
  EXPECT_EQ(taken, (std::vector<TxId>{1}));
}

TEST(VoteRoundTest, ByzantineQuorums) {
  EXPECT_EQ(ByzantineQuorum(4), 3);
  EXPECT_EQ(ByzantineQuorum(7), 5);
  EXPECT_EQ(ByzantineQuorum(10), 7);
  EXPECT_EQ(ByzantineQuorum(200), 133);
}

TEST(VoteRoundTest, QuorumArrivalBasics) {
  Simulation sim(3);
  Network net(&sim, 0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 4; ++i) {
    hosts.push_back(net.AddHost(Region::kOhio));
  }
  PairwiseDelays delays(&net, hosts, 256);
  // Everyone sends at t=0; quorum of 3 at receiver 0 is the 3rd earliest
  // arrival (self-vote at 0 counts).
  std::vector<SimDuration> sends(4, 0);
  const SimDuration q3 = QuorumArrival(delays, sends, 0, 3);
  EXPECT_GT(q3, 0);
  EXPECT_LT(q3, Milliseconds(5));
  // Quorum of all 4 is later or equal.
  EXPECT_LE(q3, QuorumArrival(delays, sends, 0, 4));
  // Unreachable senders reduce the vote count.
  sends[1] = kUnreachable;
  sends[2] = kUnreachable;
  EXPECT_EQ(QuorumArrival(delays, sends, 0, 3), kUnreachable);
}

TEST(VoteRoundTest, MedianDelay) {
  EXPECT_EQ(MedianDelay({}), kUnreachable);
  EXPECT_EQ(MedianDelay({Seconds(5)}), Seconds(5));
  EXPECT_EQ(MedianDelay({Seconds(1), kUnreachable, Seconds(3), Seconds(2)}), Seconds(2));
}

// --- semantics locks for the vote-round reduction plane --------------------
// These pin the exact arithmetic of PairwiseDelays / QuorumArrival[All] /
// MedianDelay / GossipHopScale — order statistics, hop-scale rounding,
// unreachable filtering — so a scratch-buffer rewrite of the message plane
// is observably identical to this reference implementation.

TEST(VoteRoundTest, GossipHopScaleExactValues) {
  EXPECT_DOUBLE_EQ(GossipHopScale(1), 1.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(10), 1.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(25), 1.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(50), 2.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(100), 3.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(200), 4.0);
  EXPECT_DOUBLE_EQ(GossipHopScale(26), 1.0 + std::log2(26.0 / 25.0));
}

TEST(VoteRoundTest, PairwiseDelaysMatchDelaySamples) {
  // With zero jitter every sample of a pair is identical, so the matrix must
  // equal a fresh DelaySample per pair: propagation + transmission, zero on
  // the diagonal, symmetric.
  Simulation sim(5);
  Network net(&sim, /*jitter_frac=*/0.0);
  const DeploymentConfig devnet = GetDeployment("devnet");
  std::vector<HostId> hosts;
  for (int i = 0; i < devnet.node_count; ++i) {
    hosts.push_back(net.AddHost(devnet.NodeRegion(i)));
  }
  PairwiseDelays delays(&net, hosts, 256);
  ASSERT_EQ(delays.size(), hosts.size());
  for (size_t i = 0; i < hosts.size(); ++i) {
    for (size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) {
        EXPECT_EQ(delays.at(i, j), 0);
        continue;
      }
      EXPECT_EQ(delays.at(i, j), net.DelaySample(hosts[i], hosts[j], 256))
          << i << "," << j;
      EXPECT_EQ(delays.at(i, j), delays.at(j, i));
    }
  }
}

TEST(VoteRoundTest, PairwiseDelaysDeterministicPerSeed) {
  // Jittered fills consume the network RNG in a fixed pair order, so two
  // identically-seeded networks produce bit-identical matrices.
  const DeploymentConfig devnet = GetDeployment("devnet");
  auto build = [&](uint64_t seed) {
    Simulation sim(seed);
    Network net(&sim);
    std::vector<HostId> hosts;
    for (int i = 0; i < devnet.node_count; ++i) {
      hosts.push_back(net.AddHost(devnet.NodeRegion(i)));
    }
    PairwiseDelays delays(&net, hosts, 256);
    std::vector<SimDuration> flat;
    for (size_t i = 0; i < hosts.size(); ++i) {
      for (size_t j = 0; j < hosts.size(); ++j) {
        flat.push_back(delays.at(i, j));
      }
    }
    return flat;
  };
  EXPECT_EQ(build(99), build(99));
  EXPECT_NE(build(99), build(100));
}

TEST(VoteRoundTest, QuorumArrivalMatchesSortReference) {
  // The exactness lock: for a multi-region jittered matrix and send times
  // with unreachable holes, QuorumArrival must return exactly the
  // (quorum-1)-th order statistic of {send[j] + trunc(hop * scale)} over
  // reachable (sender, edge) pairs — for every receiver, quorum and scale.
  Simulation sim(1234);
  Network net(&sim);
  const DeploymentConfig devnet = GetDeployment("devnet");
  const int n = 37;
  std::vector<HostId> hosts;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(net.AddHost(devnet.NodeRegion(i)));
  }
  PairwiseDelays delays(&net, hosts, 256);

  Rng rng(7);
  std::vector<SimDuration> sends(static_cast<size_t>(n));
  for (auto& s : sends) {
    s = rng.NextBelow(8) == 0
            ? kUnreachable
            : static_cast<SimDuration>(rng.NextBelow(static_cast<uint64_t>(Seconds(2))));
  }

  for (const double hop_scale : {1.0, 2.0, 4.0, 1.0 + std::log2(37.0 / 25.0)}) {
    const std::vector<SimDuration> all =
        QuorumArrivalAll(delays, sends, /*quorum=*/25, hop_scale);
    ASSERT_EQ(all.size(), sends.size());
    for (size_t receiver = 0; receiver < sends.size(); ++receiver) {
      std::vector<SimDuration> arrivals;
      for (size_t j = 0; j < sends.size(); ++j) {
        if (sends[j] == kUnreachable || delays.at(j, receiver) == kUnreachable) {
          continue;
        }
        arrivals.push_back(sends[j] +
                           static_cast<SimDuration>(
                               static_cast<double>(delays.at(j, receiver)) * hop_scale));
      }
      std::sort(arrivals.begin(), arrivals.end());
      for (const size_t quorum : {size_t{1}, size_t{13}, size_t{25}, arrivals.size()}) {
        const SimDuration expected =
            quorum == 0 || arrivals.size() < quorum ? kUnreachable : arrivals[quorum - 1];
        EXPECT_EQ(QuorumArrival(delays, sends, receiver, quorum, hop_scale), expected)
            << "receiver " << receiver << " quorum " << quorum << " scale " << hop_scale;
      }
      EXPECT_EQ(all[receiver], QuorumArrival(delays, sends, receiver, 25, hop_scale));
    }
  }
}

TEST(VoteRoundTest, QuorumArrivalHopScaleAppliesToNetworkDelayOnly) {
  // One LAN region, zero jitter: every off-diagonal hop is the same h. The
  // scale multiplies h (truncated back to integer ticks), never the send
  // time; a quorum of 1 is satisfied by the instant self-vote.
  Simulation sim(2);
  Network net(&sim, /*jitter_frac=*/0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 5; ++i) {
    hosts.push_back(net.AddHost(Region::kOhio));
  }
  PairwiseDelays delays(&net, hosts, 256);
  const SimDuration h = delays.at(0, 1);
  ASSERT_GT(h, 0);
  const std::vector<SimDuration> sends(5, Seconds(3));
  EXPECT_EQ(QuorumArrival(delays, sends, 0, 1, 2.5), Seconds(3));
  EXPECT_EQ(QuorumArrival(delays, sends, 0, 2, 2.5),
            Seconds(3) + static_cast<SimDuration>(static_cast<double>(h) * 2.5));
  EXPECT_EQ(QuorumArrival(delays, sends, 0, 2, 1.0), Seconds(3) + h);
}

TEST(VoteRoundTest, QuorumArrivalEdgeCases) {
  Simulation sim(3);
  Network net(&sim, 0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 4; ++i) {
    hosts.push_back(net.AddHost(Region::kOhio));
  }
  PairwiseDelays delays(&net, hosts, 256);
  const std::vector<SimDuration> sends(4, 0);
  // Quorum zero is defined as unreachable (no "instant" quorum).
  EXPECT_EQ(QuorumArrival(delays, sends, 0, 0), kUnreachable);
  // Quorum above the voter count can never assemble.
  EXPECT_EQ(QuorumArrival(delays, sends, 0, 5), kUnreachable);
  // All senders dark: every receiver is unreachable.
  const std::vector<SimDuration> dark(4, kUnreachable);
  for (const SimDuration d : QuorumArrivalAll(delays, dark, 1)) {
    EXPECT_EQ(d, kUnreachable);
  }
}

TEST(VoteRoundTest, MedianDelayUpperMedianLock) {
  // Even-sized inputs take the element at index size/2 — the upper median.
  EXPECT_EQ(MedianDelay({Seconds(1), Seconds(2), Seconds(3), Seconds(4)}), Seconds(3));
  EXPECT_EQ(MedianDelay({Seconds(4), Seconds(3), Seconds(2), Seconds(1)}), Seconds(3));
  // Unreachable entries are filtered before the median is taken.
  EXPECT_EQ(MedianDelay({kUnreachable, Seconds(9), kUnreachable, Seconds(1), Seconds(5)}),
            Seconds(5));
  EXPECT_EQ(MedianDelay({kUnreachable, kUnreachable}), kUnreachable);
}

TEST(ExecutionModelTest, ScalesWithVcpus) {
  ExecutionModel model;
  model.gas_per_second_per_vcpu = 100e6;
  EXPECT_EQ(model.ExecTime(100'000'000, 1), Seconds(1));
  EXPECT_EQ(model.ExecTime(100'000'000, 4), Milliseconds(250));
}

TEST(CostOracleTest, DeploysAndProfiles) {
  CostOracle oracle(VmDialect::kGeth);
  const int exchange = oracle.Deploy(*FindContract("exchange"));
  ASSERT_GE(exchange, 0);
  const CallProfile& buy = oracle.Profile(exchange, "buy_apple", {});
  EXPECT_EQ(buy.status, VmStatus::kOk);
  EXPECT_GT(buy.gas, LimitsOf(VmDialect::kGeth).intrinsic_gas);
  // Cached: same object returned.
  EXPECT_EQ(&oracle.Profile(exchange, "buy_apple", {}), &buy);
  EXPECT_EQ(oracle.ContractName(exchange), "exchange");
  EXPECT_GE(oracle.FunctionIndex(exchange, "buy_google"), 0);
  EXPECT_EQ(oracle.FunctionIndex(exchange, "nope"), -1);
}

TEST(CostOracleTest, UberBudgetExceededOnCappedDialects) {
  for (const VmDialect dialect :
       {VmDialect::kAvm, VmDialect::kMoveVm, VmDialect::kEbpf}) {
    CostOracle oracle(dialect);
    const int uber = oracle.Deploy(*FindContract("uber"));
    ASSERT_GE(uber, 0) << DialectName(dialect);
    EXPECT_EQ(oracle.Profile(uber, "check_distance", {5000, 5000}).status,
              VmStatus::kBudgetExceeded)
        << DialectName(dialect);
  }
  CostOracle geth(VmDialect::kGeth);
  const int uber = geth.Deploy(*FindContract("uber"));
  EXPECT_EQ(geth.Profile(uber, "check_distance", {5000, 5000}).status, VmStatus::kOk);
}

TEST(CostOracleTest, YoutubeUndeployableOnAvm) {
  CostOracle avm(VmDialect::kAvm);
  EXPECT_EQ(avm.Deploy(*FindContract("youtube")), -1);
  CostOracle geth(VmDialect::kGeth);
  EXPECT_GE(geth.Deploy(*FindContract("youtube")), 0);
}

TEST(ChainContextTest, SubmitBuildFinalize) {
  Simulation sim(11);
  Network net(&sim);
  ChainParams params = GetChainParams("quorum");
  ChainContext ctx(&sim, &net, GetDeployment("testnet"), params);
  EXPECT_EQ(ctx.node_count(), 10);
  EXPECT_EQ(ctx.hosts().size(), 10u);

  // Encode three native transfers.
  std::vector<TxId> ids;
  for (int i = 0; i < 3; ++i) {
    Transaction tx;
    tx.account = static_cast<uint32_t>(i);
    tx.gas = NativeTransferGas(params.dialect);
    tx.size_bytes = kNativeTransferBytes;
    tx.submit_time = 0;
    ids.push_back(ctx.txs().Add(tx));
  }
  int completions = 0;
  ctx.on_tx_complete = [&](TxId) { ++completions; };

  for (const TxId id : ids) {
    EXPECT_TRUE(ctx.SubmitAtEndpoint(id, 0, 0));
    EXPECT_EQ(ctx.txs().at(id).phase, TxPhase::kSubmitted);
  }
  EXPECT_EQ(ctx.mempool().size(), 3u);

  // Nothing is ready immediately (gossip latency), everything within 2 s.
  ChainContext::BuiltBlock empty = ctx.BuildBlock(0, 0);
  EXPECT_EQ(empty.tx_count, 0u);
  ChainContext::BuiltBlock full = ctx.BuildBlock(Seconds(2), 0);
  EXPECT_EQ(full.tx_count, 3u);
  EXPECT_EQ(ctx.BlockTxs(full).size(), 3u);
  EXPECT_GT(full.gas, 0);
  EXPECT_GT(full.bytes, kBlockHeaderBytes);
  EXPECT_GT(full.build_time, 0);

  ctx.FinalizeBlock(1, 0, std::move(full), Seconds(2), Seconds(3));
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(ctx.stats().txs_committed, 3u);
  EXPECT_EQ(ctx.ledger().block_count(), 1u);
  for (const TxId id : ids) {
    EXPECT_EQ(ctx.txs().at(id).phase, TxPhase::kCommitted);
    EXPECT_GE(ctx.txs().at(id).commit_time, Seconds(3));
  }
}

TEST(ChainContextTest, CongestionShrinksBlocks) {
  Simulation sim(13);
  Network net(&sim);
  ChainParams params = GetChainParams("solana");
  params.congestion_threshold = 10;
  params.max_block_txs = 100;
  params.mempool.global_cap = 0;
  params.mempool.ttl = 0;
  ChainContext ctx(&sim, &net, GetDeployment("testnet"), params);
  for (int i = 0; i < 1000; ++i) {
    Transaction tx;
    tx.account = static_cast<uint32_t>(i);
    tx.gas = 1000;
    tx.size_bytes = 100;
    const TxId id = ctx.txs().Add(tx);
    ASSERT_TRUE(ctx.SubmitAtEndpoint(id, 0, 0));
  }
  // Pool of ~1000 vs threshold 10 -> capacity collapses to ~1 tx per block.
  const ChainContext::BuiltBlock block = ctx.BuildBlock(Seconds(5), 0);
  EXPECT_LE(block.tx_count, 5u);
  EXPECT_GE(block.tx_count, 1u);
}

TEST(ChainContextTest, DroppedTxReported) {
  Simulation sim(17);
  Network net(&sim);
  ChainParams params = GetChainParams("ethereum");
  params.mempool.global_cap = 1;
  params.mempool.evict_on_full = false;  // reject instead of replacing
  ChainContext ctx(&sim, &net, GetDeployment("testnet"), params);
  std::vector<TxId> completed;
  ctx.on_tx_complete = [&](TxId id) { completed.push_back(id); };
  Transaction tx;
  tx.gas = 21000;
  tx.size_bytes = 110;
  const TxId a = ctx.txs().Add(tx);
  const TxId b = ctx.txs().Add(tx);
  EXPECT_TRUE(ctx.SubmitAtEndpoint(a, 0, 0));
  EXPECT_FALSE(ctx.SubmitAtEndpoint(b, 0, 0));
  EXPECT_EQ(ctx.txs().at(b).phase, TxPhase::kDropped);
  EXPECT_EQ(completed, (std::vector<TxId>{b}));
  EXPECT_EQ(ctx.stats().txs_dropped, 1u);
}

TEST(ChainParamsTest, TableFourCharacteristics) {
  // Table 4 of the paper.
  const ChainParams algorand = GetChainParams("algorand");
  EXPECT_EQ(algorand.property, "prob.");
  EXPECT_EQ(algorand.vm_name, "AVM");
  EXPECT_EQ(algorand.dapp_language, "PyTeal");

  const ChainParams diem = GetChainParams("diem");
  EXPECT_EQ(diem.property, "det.");
  EXPECT_EQ(diem.consensus_name, "HotStuff");
  EXPECT_EQ(diem.mempool.per_signer_cap, 100u);  // §5.2

  const ChainParams quorum = GetChainParams("quorum");
  EXPECT_EQ(quorum.consensus_name, "IBFT");
  EXPECT_EQ(quorum.mempool.global_cap, 0u);  // never drops

  const ChainParams avalanche = GetChainParams("avalanche");
  EXPECT_EQ(avalanche.block_gas_limit, 8'000'000);           // §5.2
  EXPECT_GE(avalanche.block_interval, MillisecondsF(1900));  // §5.2

  const ChainParams solana = GetChainParams("solana");
  EXPECT_EQ(solana.confirmation_depth, 30);            // §5.2
  EXPECT_EQ(solana.slot_duration, Milliseconds(400));  // §5.2
  EXPECT_EQ(solana.mempool.ttl, Seconds(120));         // §5.2

  const ChainParams ethereum = GetChainParams("ethereum");
  EXPECT_EQ(ethereum.consensus_name, "Clique");
  EXPECT_GT(ethereum.confirmation_depth, 0);

  EXPECT_THROW(GetChainParams("bitcoin"), std::invalid_argument);
  EXPECT_EQ(AllChainParams().size(), 6u);
}

}  // namespace
}  // namespace diablo
