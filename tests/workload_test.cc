#include <gtest/gtest.h>

#include <set>

#include "src/workload/arrival.h"
#include "src/workload/dapps.h"
#include "src/workload/trace.h"

namespace diablo {
namespace {

TEST(TraceTest, ConstantTrace) {
  const Trace trace = ConstantTrace(1000, 120);
  EXPECT_EQ(trace.duration_seconds(), 120u);
  EXPECT_DOUBLE_EQ(trace.AverageTps(), 1000.0);
  EXPECT_DOUBLE_EQ(trace.PeakTps(), 1000.0);
  EXPECT_DOUBLE_EQ(trace.TotalTxs(), 120000.0);
}

TEST(TraceTest, ScaledPreservesShape) {
  const Trace full = FifaTrace();
  const Trace half = full.Scaled(0.5);
  ASSERT_EQ(half.tps.size(), full.tps.size());
  for (size_t s = 0; s < full.tps.size(); ++s) {
    EXPECT_DOUBLE_EQ(half.tps[s], full.tps[s] / 2.0);
  }
}

TEST(TraceTest, NasdaqStockBurstsMatchPaper) {
  // §3: initial demand ~800 (Google), 1300 (Amazon), 3000 (Facebook),
  // 4000 (Microsoft), 10000 (Apple), dropping to a 10-60 TPS tail.
  const struct {
    const char* stock;
    double peak;
  } kExpected[] = {{"google", 800},
                   {"amazon", 1300},
                   {"facebook", 3000},
                   {"microsoft", 4000},
                   {"apple", 10000}};
  for (const auto& expected : kExpected) {
    const Trace trace = NasdaqStockTrace(expected.stock);
    EXPECT_DOUBLE_EQ(trace.tps[0], expected.peak) << expected.stock;
    EXPECT_EQ(trace.duration_seconds(), 180u);
    // Low tail after the burst (sized so the accumulated tail sits in the
    // paper's 25-140 TPS band).
    for (size_t s = 20; s < trace.duration_seconds(); ++s) {
      EXPECT_GE(trace.tps[s], 5.0) << expected.stock << " @" << s;
      EXPECT_LE(trace.tps[s], 16.0) << expected.stock << " @" << s;
    }
  }
  EXPECT_THROW(NasdaqStockTrace("tesla"), std::invalid_argument);
}

TEST(TraceTest, GafamAccumulation) {
  const Trace gafam = NasdaqGafamTrace();
  // §3: peak of 19,800 TPS before dropping to 25-140 TPS; 3 minutes.
  EXPECT_EQ(gafam.duration_seconds(), 180u);
  EXPECT_DOUBLE_EQ(gafam.PeakTps(), 19800.0);
  for (size_t s = 20; s < gafam.duration_seconds(); ++s) {
    EXPECT_GE(gafam.tps[s], 25.0);
    EXPECT_LE(gafam.tps[s], 140.0);
  }
  // Average workload of the exchange DApp is ~168 TPS (§6.1).
  EXPECT_NEAR(gafam.AverageTps(), 168.0, 25.0);
}

TEST(TraceTest, DotaNearlyConstant13k) {
  const Trace dota = DotaTrace();
  EXPECT_EQ(dota.duration_seconds(), 276u);  // §3: 276 s
  EXPECT_NEAR(dota.AverageTps(), 13000.0, 1000.0);
  for (const double rate : dota.tps) {
    EXPECT_NEAR(rate, 13300.0, 100.0);
  }
}

TEST(TraceTest, FifaBand) {
  const Trace fifa = FifaTrace();
  EXPECT_EQ(fifa.duration_seconds(), 176u);  // §3: 176 s
  for (const double rate : fifa.tps) {
    EXPECT_GE(rate, 1416.0);
    EXPECT_LE(rate, 5305.0);
  }
  // §6.1: average workload ~3,483 TPS.
  EXPECT_NEAR(fifa.AverageTps(), 3400.0, 300.0);
}

TEST(TraceTest, UberBand) {
  const Trace uber = UberTrace();
  EXPECT_EQ(uber.duration_seconds(), 120u);
  for (const double rate : uber.tps) {
    EXPECT_GE(rate, 810.0);  // §6.4: 810-900 TPS
    EXPECT_LE(rate, 900.0);
  }
}

TEST(TraceTest, YoutubeVeryDemanding) {
  const Trace youtube = YoutubeTrace();
  EXPECT_NEAR(youtube.AverageTps(), 38761.0, 500.0);  // §3
}

TEST(TraceTest, LookupByName) {
  EXPECT_EQ(GetTrace("dota").name, "dota");
  EXPECT_EQ(GetTrace("NASDAQ").name, "gafam");
  EXPECT_EQ(GetTrace("apple").tps[0], 10000.0);
  EXPECT_THROW(GetTrace("minecraft"), std::invalid_argument);
}

TEST(TraceTest, Deterministic) {
  EXPECT_EQ(FifaTrace().tps, FifaTrace().tps);
  EXPECT_EQ(NasdaqGafamTrace().tps, NasdaqGafamTrace().tps);
}

TEST(DappTest, FiveWorkloads) {
  EXPECT_EQ(AllDappNames().size(), 5u);
  for (const std::string& name : AllDappNames()) {
    const DappWorkload dapp = GetDappWorkload(name);
    EXPECT_FALSE(dapp.contract.empty()) << name;
    EXPECT_GT(dapp.trace.TotalTxs(), 0.0) << name;
    // Every workload can produce invocations.
    const Invocation invocation = dapp.InvocationFor(0);
    EXPECT_FALSE(invocation.function.empty()) << name;
  }
  EXPECT_THROW(GetDappWorkload("tiktok"), std::invalid_argument);
}

TEST(DappTest, ExchangeMixCoversAllStocks) {
  const DappWorkload exchange = GetDappWorkload("exchange");
  std::set<std::string> functions;
  for (uint64_t i = 0; i < 500; ++i) {
    functions.insert(exchange.InvocationFor(i).function);
  }
  EXPECT_EQ(functions.size(), 5u);
  EXPECT_TRUE(functions.contains("buy_apple"));
  EXPECT_TRUE(functions.contains("buy_google"));
}

TEST(DappTest, FixedInvocationOverrides) {
  DappWorkload dapp = GetDappWorkload("dota");
  dapp.fixed = Invocation{"update", {2, 3}};
  EXPECT_EQ(dapp.InvocationFor(7).args, (std::vector<int64_t>{2, 3}));
}

TEST(DappTest, UberPositionsVary) {
  const DappWorkload uber = GetDappWorkload("uber");
  const Invocation a = uber.InvocationFor(0);
  const Invocation b = uber.InvocationFor(1);
  EXPECT_EQ(a.function, "check_distance");
  EXPECT_NE(a.args, b.args);
  for (uint64_t i = 0; i < 100; ++i) {
    for (const int64_t arg : uber.InvocationFor(i).args) {
      EXPECT_GE(arg, 0);
      EXPECT_LT(arg, 10000);
    }
  }
}

TEST(ArrivalTest, UniformPacing) {
  const Trace trace = ConstantTrace(10, 3);
  const auto arrivals = ExpandArrivals(trace, ArrivalProcess::kUniform, nullptr);
  ASSERT_EQ(arrivals.size(), 30u);
  // Ten per second, evenly spaced.
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const SimTime expected = Seconds(static_cast<int64_t>(i / 10)) +
                             Milliseconds(100 * static_cast<int64_t>(i % 10));
    EXPECT_NEAR(static_cast<double>(arrivals[i]), static_cast<double>(expected),
                static_cast<double>(Milliseconds(1)));
  }
}

TEST(ArrivalTest, FractionalRatesAccumulate) {
  const Trace trace = ConstantTrace(0.5, 10);
  const auto arrivals = ExpandArrivals(trace, ArrivalProcess::kUniform, nullptr);
  EXPECT_EQ(arrivals.size(), 5u);
}

TEST(ArrivalTest, PoissonTotalsApproximate) {
  Rng rng(9);
  const Trace trace = ConstantTrace(1000, 10);
  const auto arrivals = ExpandArrivals(trace, ArrivalProcess::kPoisson, &rng);
  EXPECT_EQ(arrivals.size(), 10000u);  // count per second is exact; gaps vary
  // Sorted and within the trace window.
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], arrivals[i - 1]);
  }
  EXPECT_LT(arrivals.back(), Seconds(10));
}

}  // namespace
}  // namespace diablo
