// ThreadPool unit tests plus the determinism regression contract of the
// parallel experiment runner: same seed => bit-identical results, serially
// and under any DIABLO_JOBS.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/config/json.h"
#include "src/core/parallel_runner.h"
#include "src/core/results.h"
#include "src/core/runner.h"
#include "src/support/thread_pool.h"

namespace diablo {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("cell exploded"); });
  ok.get();
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
    // Destructor must finish every queued task before joining.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

TEST(ParallelRunnerTest, JobsFromEnvParsesOverride) {
  ASSERT_EQ(setenv("DIABLO_JOBS", "3", 1), 0);
  EXPECT_EQ(ParallelRunner::JobsFromEnv(), 3);
  ASSERT_EQ(setenv("DIABLO_JOBS", "bogus", 1), 0);
  EXPECT_EQ(ParallelRunner::JobsFromEnv(), ThreadPool::HardwareConcurrency());
  ASSERT_EQ(unsetenv("DIABLO_JOBS"), 0);
  EXPECT_EQ(ParallelRunner::JobsFromEnv(), ThreadPool::HardwareConcurrency());
}

TEST(ParallelRunnerTest, CellWorkersFromEnvParsesOverride) {
  ASSERT_EQ(setenv("DIABLO_CELL_WORKERS", "3", 1), 0);
  EXPECT_EQ(ParallelRunner::CellWorkersFromEnv(), 3);
  ASSERT_EQ(setenv("DIABLO_CELL_WORKERS", "bogus", 1), 0);
  EXPECT_EQ(ParallelRunner::CellWorkersFromEnv(), 0);
  ASSERT_EQ(setenv("DIABLO_CELL_WORKERS", "0", 1), 0);
  EXPECT_EQ(ParallelRunner::CellWorkersFromEnv(), 0);
  ASSERT_EQ(unsetenv("DIABLO_CELL_WORKERS"), 0);
  EXPECT_EQ(ParallelRunner::CellWorkersFromEnv(), 0);
}

TEST(ParallelRunnerTest, ResultsComeBackInCellOrder) {
  ParallelRunner runner(4);
  std::vector<ExperimentCell> cells;
  for (int i = 0; i < 8; ++i) {
    cells.push_back({"cell" + std::to_string(i), [i] {
                       RunResult result;
                       result.behind_schedule = static_cast<size_t>(i);
                       return result;
                     }});
  }
  const std::vector<RunResult> results = runner.Run(std::move(cells));
  ASSERT_EQ(results.size(), 8u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].behind_schedule, i);
  }
}

TEST(ParallelRunnerTest, CellExceptionPropagates) {
  ParallelRunner runner(2);
  std::vector<ExperimentCell> cells;
  cells.push_back({"ok", [] { return RunResult(); }});
  cells.push_back({"bad", []() -> RunResult {
                     throw std::runtime_error("cell failed");
                   }});
  EXPECT_THROW(runner.Run(std::move(cells)), std::runtime_error);
}

TEST(ParallelRunnerTest, StatsAccumulateEvents) {
  ParallelRunner runner(1);
  std::vector<ExperimentCell> cells;
  cells.push_back({"a", [] {
                     RunResult result;
                     result.events_executed = 10;
                     return result;
                   }});
  cells.push_back({"b", [] {
                     RunResult result;
                     result.events_executed = 32;
                     return result;
                   }});
  runner.Run(std::move(cells));
  EXPECT_EQ(runner.stats().cells, 2u);
  EXPECT_EQ(runner.stats().total_events, 42u);
}

TEST(CellSeedTest, DistinctAndThreadIndependent) {
  EXPECT_NE(CellSeed(1, 0), CellSeed(1, 1));
  EXPECT_NE(CellSeed(1, 0), CellSeed(2, 0));
  EXPECT_EQ(CellSeed(7, 3), CellSeed(7, 3));
}

// Everything the report serializes plus the raw counters; if two runs agree
// on all of this, they took the same simulated trajectory.
std::string Fingerprint(const RunResult& result) {
  return ReportToJson(result.report) + "|events=" +
         std::to_string(result.events_executed) +
         "|behind=" + std::to_string(result.behind_schedule) +
         "|fail=" + result.failure_reason;
}

// Small native runs: enough traffic to exercise consensus, short enough for
// a unit test.
RunResult RunDeterminismCell(const std::string& chain, uint64_t seed) {
  return RunNativeBenchmark(chain, "testnet", /*tps=*/30, /*seconds=*/10, seed);
}

TEST(DeterminismTest, SerialRunsAreBitIdentical) {
  for (const char* chain : {"algorand", "solana"}) {
    const RunResult a = RunDeterminismCell(chain, 11);
    const RunResult b = RunDeterminismCell(chain, 11);
    EXPECT_EQ(Fingerprint(a), Fingerprint(b)) << chain;
  }
}

TEST(DeterminismTest, ParallelResultsInvariantToJobCount) {
  // The same 4-cell grid (2 chains x 2 cell-indexed seeds) must produce
  // bit-identical results serially, with jobs=1 and with jobs=4.
  const std::vector<std::string> chains = {"algorand", "solana"};
  auto build_cells = [&chains] {
    std::vector<ExperimentCell> cells;
    for (size_t c = 0; c < chains.size(); ++c) {
      for (uint64_t rep = 0; rep < 2; ++rep) {
        const std::string chain = chains[c];
        const uint64_t seed = CellSeed(/*base_seed=*/1, c * 2 + rep);
        cells.push_back({chain + "#" + std::to_string(rep),
                         [chain, seed] { return RunDeterminismCell(chain, seed); }});
      }
    }
    return cells;
  };

  std::vector<std::string> serial;
  for (ExperimentCell& cell : build_cells()) {
    serial.push_back(Fingerprint(cell.run()));
  }

  ParallelRunner one_job(1);
  const std::vector<RunResult> with_one = one_job.Run(build_cells());
  ParallelRunner four_jobs(4);
  const std::vector<RunResult> with_four = four_jobs.Run(build_cells());

  ASSERT_EQ(with_one.size(), serial.size());
  ASSERT_EQ(with_four.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(Fingerprint(with_one[i]), serial[i]) << "cell " << i;
    EXPECT_EQ(Fingerprint(with_four[i]), serial[i]) << "cell " << i;
  }
}

TEST(DeterminismTest, InvariantToCellWorkersTimesJobsMatrix) {
  // The full composition knob cross-product: intra-cell workers
  // (DIABLO_CELL_WORKERS, windowed scheduler) x inter-cell jobs
  // (ParallelRunner). Every combination must reproduce the baseline
  // fingerprints computed with both knobs off.
  ASSERT_EQ(unsetenv("DIABLO_CELL_WORKERS"), 0);
  const std::vector<std::string> chains = {"algorand", "solana"};
  auto build_cells = [&chains] {
    std::vector<ExperimentCell> cells;
    for (size_t c = 0; c < chains.size(); ++c) {
      const std::string chain = chains[c];
      const uint64_t seed = CellSeed(/*base_seed=*/5, c);
      cells.push_back(
          {chain, [chain, seed] { return RunDeterminismCell(chain, seed); }});
    }
    return cells;
  };

  std::vector<std::string> baseline;
  for (ExperimentCell& cell : build_cells()) {
    baseline.push_back(Fingerprint(cell.run()));
  }

  for (const char* workers : {"1", "2", "4"}) {
    ASSERT_EQ(setenv("DIABLO_CELL_WORKERS", workers, 1), 0);
    for (const int jobs : {1, 4}) {
      ParallelRunner runner(jobs);
      const std::vector<RunResult> got = runner.Run(build_cells());
      ASSERT_EQ(got.size(), baseline.size());
      for (size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(Fingerprint(got[i]), baseline[i])
            << "workers=" << workers << " jobs=" << jobs << " cell " << i;
      }
    }
  }
  ASSERT_EQ(unsetenv("DIABLO_CELL_WORKERS"), 0);
}

TEST(DeterminismTest, FaultCellsInvariantToJobCount) {
  // Fault-schedule runs (crash + restart, loss window, retries) must be
  // byte-identical serially and across DIABLO_JOBS, like healthy cells —
  // the injector draws only from the cell's own deterministic streams.
  const FaultSchedule faults = FaultScheduleBuilder()
                                   .Crash(0, Seconds(2), Seconds(5))
                                   .Loss(0.1, Seconds(6), Seconds(8))
                                   .Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = Seconds(1);
  const std::vector<std::string> chains = {"quorum", "solana"};
  auto build_cells = [&] {
    std::vector<ExperimentCell> cells;
    for (size_t c = 0; c < chains.size(); ++c) {
      const std::string chain = chains[c];
      const uint64_t seed = CellSeed(/*base_seed=*/3, c);
      cells.push_back({chain + "+faults", [chain, seed, faults, retry] {
                         return RunFaultBenchmark(chain, "testnet", 30, 10,
                                                  faults, retry, seed);
                       }});
    }
    return cells;
  };

  std::vector<std::string> serial;
  for (ExperimentCell& cell : build_cells()) {
    serial.push_back(Fingerprint(cell.run()));
  }
  ParallelRunner four_jobs(4);
  const std::vector<RunResult> parallel = four_jobs.Run(build_cells());
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(Fingerprint(parallel[i]), serial[i]) << "cell " << i;
    // The resilience fields ride in the fingerprint's JSON: make sure they
    // are actually populated rather than trivially equal-and-empty.
    EXPECT_NE(serial[i].find("time_to_recovery_s"), std::string::npos);
  }
}

TEST(DeterminismTest, FaultedCellsInvariantToCellWorkersTimesJobsMatrix) {
  // Faulted runs are shard-eligible: crash / partition / delay-spike
  // mutations publish as serial events at window barriers, so a schedule of
  // all three (previously forced onto the serial loop wholesale) must stay
  // byte-identical across the full workers x jobs matrix. The spike window
  // also exercises the window-aware lookahead provider.
  ASSERT_EQ(unsetenv("DIABLO_CELL_WORKERS"), 0);
  const FaultSchedule faults = FaultScheduleBuilder()
                                   .Crash(0, Seconds(2), Seconds(5))
                                   .Partition({1}, Seconds(3), Seconds(6))
                                   .DelaySpike(Milliseconds(80), Seconds(6), Seconds(8))
                                   .Build();
  const RetryPolicy no_retry;
  const std::vector<std::string> chains = {"quorum", "solana"};
  auto build_cells = [&] {
    std::vector<ExperimentCell> cells;
    for (size_t c = 0; c < chains.size(); ++c) {
      const std::string chain = chains[c];
      const uint64_t seed = CellSeed(/*base_seed=*/9, c);
      cells.push_back({chain + "+faults", [chain, seed, faults, no_retry] {
                         return RunFaultBenchmark(chain, "testnet", 30, 10,
                                                  faults, no_retry, seed);
                       }});
    }
    return cells;
  };

  std::vector<std::string> baseline;
  for (ExperimentCell& cell : build_cells()) {
    baseline.push_back(Fingerprint(cell.run()));
  }

  for (const char* workers : {"1", "2", "4"}) {
    ASSERT_EQ(setenv("DIABLO_CELL_WORKERS", workers, 1), 0);
    for (const int jobs : {1, 4}) {
      ParallelRunner runner(jobs);
      const std::vector<RunResult> got = runner.Run(build_cells());
      ASSERT_EQ(got.size(), baseline.size());
      for (size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(Fingerprint(got[i]), baseline[i])
            << "workers=" << workers << " jobs=" << jobs << " cell " << i;
      }
    }
  }
  ASSERT_EQ(unsetenv("DIABLO_CELL_WORKERS"), 0);
}

TEST(DeterminismTest, LossAndRetryCellsShardEngineOnlyAndStayIdentical) {
  // Loss windows and retry policies keep the *clients* on the serial loop
  // (their submissions feed shared loss draws and retry stats), but the
  // consensus engine still shards. The output must not notice.
  ASSERT_EQ(unsetenv("DIABLO_CELL_WORKERS"), 0);
  const FaultSchedule faults = FaultScheduleBuilder()
                                   .Crash(0, Seconds(2), Seconds(5))
                                   .Loss(0.1, Seconds(6), Seconds(8))
                                   .Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = Seconds(1);
  auto run_cell = [&] {
    return RunFaultBenchmark("quorum", "testnet", 30, 10, faults, retry,
                             CellSeed(/*base_seed=*/13, 0));
  };

  const std::string baseline = Fingerprint(run_cell());
  for (const char* workers : {"2", "4"}) {
    ASSERT_EQ(setenv("DIABLO_CELL_WORKERS", workers, 1), 0);
    EXPECT_EQ(Fingerprint(run_cell()), baseline) << "workers=" << workers;
  }
  ASSERT_EQ(unsetenv("DIABLO_CELL_WORKERS"), 0);
}

TEST(RunnerStatsTest, JsonRoundTripKeepsOtherBinaries) {
  const std::string path = ::testing::TempDir() + "/BENCH_runner_test.json";
  RunnerStats first;
  first.jobs = 4;
  first.cells = 24;
  first.wall_seconds = 1.5;
  first.total_events = 3000;
  ASSERT_TRUE(WriteRunnerStatsJson(path, "fig3_scalability", first));

  RunnerStats second;
  second.jobs = 2;
  second.cells = 3;
  second.wall_seconds = 0.25;
  second.total_events = 500;
  ASSERT_TRUE(WriteRunnerStatsJson(path, "table1", second));
  // Overwrite fig3's entry; table1's must survive.
  first.cells = 48;
  ASSERT_TRUE(WriteRunnerStatsJson(path, "fig3_scalability", first));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonResult parsed = ParseJson(buffer.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_TRUE(parsed.value.IsObject());
  const JsonValue* fig3 = parsed.value.Find("fig3_scalability");
  const JsonValue* table1 = parsed.value.Find("table1");
  ASSERT_NE(fig3, nullptr);
  ASSERT_NE(table1, nullptr);
  EXPECT_EQ(fig3->GetNumber("cells", 0), 48);
  EXPECT_EQ(fig3->GetNumber("jobs", 0), 4);
  EXPECT_EQ(table1->GetNumber("total_events", 0), 500);
  EXPECT_GT(fig3->GetNumber("events_per_second", -1), 0);
  // The schema stamp is emitted exactly once, never duplicated by the
  // keep-other-entries pass.
  EXPECT_EQ(parsed.value.GetNumber("schema_version", -1), kRunnerStatsSchemaVersion);
  int stamps = 0;
  for (const auto& [key, value] : parsed.value.members) {
    (void)value;
    stamps += key == "schema_version" ? 1 : 0;
  }
  EXPECT_EQ(stamps, 1);
}

}  // namespace
}  // namespace diablo
