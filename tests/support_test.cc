#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/support/check.h"
#include "src/support/rng.h"
#include "src/support/stats.h"
#include "src/support/strings.h"
#include "src/support/time.h"

namespace diablo {
namespace {

TEST(TimeTest, SaturatingBackoffDoublesThenSaturates) {
  constexpr SimDuration kCeiling = INT64_MAX / 4;
  EXPECT_EQ(SaturatingBackoff(Seconds(1), 0), Seconds(1));
  EXPECT_EQ(SaturatingBackoff(Seconds(1), 1), Seconds(2));
  EXPECT_EQ(SaturatingBackoff(Seconds(1), 6), Seconds(64));
  EXPECT_EQ(SaturatingBackoff(Milliseconds(250), 3), Seconds(2));
  // Pathological round_timeout configurations must clamp instead of
  // overflowing: 2e17 ns << 6 would wrap int64.
  EXPECT_EQ(SaturatingBackoff(Seconds(200'000'000), 6), kCeiling);
  EXPECT_EQ(SaturatingBackoff(kCeiling, 1), kCeiling);
  EXPECT_EQ(SaturatingBackoff(INT64_MAX, 62), kCeiling);
  // Degenerate inputs stay inert.
  EXPECT_EQ(SaturatingBackoff(0, 5), 0);
  EXPECT_EQ(SaturatingBackoff(-5, 3), 0);
  EXPECT_EQ(SaturatingBackoff(Seconds(1), -2), Seconds(1));
  // The ceiling leaves headroom: now + backoff cannot wrap either.
  EXPECT_LT(kCeiling + SaturatingBackoff(INT64_MAX, 10), INT64_MAX);
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Seconds(3), 3'000'000'000);
  EXPECT_EQ(Milliseconds(5), 5'000'000);
  EXPECT_EQ(Microseconds(7), 7'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(9)), 9.0);
  EXPECT_EQ(SecondsF(1.5), 1'500'000'000);
  EXPECT_EQ(MillisecondsF(0.5), 500'000);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPoisson(3.0));
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(19);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPoisson(500.0));
  }
  EXPECT_NEAR(sum / n, 500.0, 5.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.NextGaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(29);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream is distinct from the parent's subsequent draws.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RunningStatsTest, Basics) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  stats.Add(2.0);
  stats.Add(4.0);
  stats.Add(6.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 6.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
}

TEST(SampleSetTest, PercentilesExact) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) {
    set.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(set.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(set.Percentile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(set.Percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(set.Percentile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(set.Percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(set.Median(), 50.0);
  EXPECT_DOUBLE_EQ(set.Min(), 1.0);
  EXPECT_DOUBLE_EQ(set.Max(), 100.0);
  EXPECT_DOUBLE_EQ(set.Mean(), 50.5);
}

TEST(SampleSetTest, EmptySafe) {
  SampleSet set;
  EXPECT_EQ(set.count(), 0u);
  EXPECT_DOUBLE_EQ(set.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(set.CdfAt(1.0), 0.0);
  EXPECT_TRUE(set.CdfSeries(10).empty());
}

TEST(SampleSetTest, CdfMonotone) {
  SampleSet set;
  Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    set.Add(rng.NextDouble() * 10.0);
  }
  const auto series = set.CdfSeries(50);
  ASSERT_EQ(series.size(), 50u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(SampleSetTest, CdfAtValues) {
  SampleSet set;
  set.Add(1.0);
  set.Add(2.0);
  set.Add(3.0);
  set.Add(4.0);
  EXPECT_DOUBLE_EQ(set.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(set.CdfAt(2.0), 0.5);
  EXPECT_DOUBLE_EQ(set.CdfAt(2.5), 0.5);
  EXPECT_DOUBLE_EQ(set.CdfAt(10.0), 1.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(-1.0);   // clamps into bucket 0
  hist.Add(0.5);    // bucket 0
  hist.Add(5.0);    // bucket 2
  hist.Add(100.0);  // clamps into last bucket
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_EQ(hist.BucketCount(0), 2u);
  EXPECT_EQ(hist.BucketCount(2), 1u);
  EXPECT_EQ(hist.BucketCount(4), 1u);
  EXPECT_DOUBLE_EQ(hist.BucketLow(2), 4.0);
}

TEST(TimeSeriesTest, PerSecondBuckets) {
  TimeSeries series;
  series.Add(0.2, 1.0);
  series.Add(0.9, 2.0);
  series.Add(3.5, 4.0);
  EXPECT_EQ(series.size(), 4u);
  EXPECT_DOUBLE_EQ(series.SumAt(0), 3.0);
  EXPECT_EQ(series.CountAt(0), 2u);
  EXPECT_DOUBLE_EQ(series.MeanAt(0), 1.5);
  EXPECT_DOUBLE_EQ(series.SumAt(1), 0.0);
  EXPECT_DOUBLE_EQ(series.SumAt(3), 4.0);
  EXPECT_DOUBLE_EQ(series.TotalSum(), 7.0);
  EXPECT_EQ(series.TotalCount(), 3u);
  // Out of range reads are zero.
  EXPECT_DOUBLE_EQ(series.SumAt(100), 0.0);
}

TEST(TimeSeriesTest, NegativeTimeClampsToZero) {
  TimeSeries series;
  series.Add(-5.0, 1.0);
  EXPECT_EQ(series.CountAt(0), 1u);
}

TEST(AsciiBarTest, Rendering) {
  EXPECT_EQ(AsciiBar(5.0, 10.0, 10), "#####     ");
  EXPECT_EQ(AsciiBar(20.0, 10.0, 4), "####");
  EXPECT_EQ(AsciiBar(0.0, 10.0, 4), "    ");
  EXPECT_EQ(AsciiBar(1.0, 0.0, 4), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, SplitWhitespace) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_FALSE(EndsWith("ef", "def"));
}

TEST(StringsTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, FormatJoinLower) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(CheckTest, PassingCheckIsSilentInEveryBuild) {
  int evaluations = 0;
  DIABLO_CHECK([&] {
    ++evaluations;
    return true;
  }(), "a passing check must not fire");
  if (kCheckedBuild) {
    EXPECT_EQ(evaluations, 1);
  } else {
    // Unchecked builds must not even evaluate the condition.
    EXPECT_EQ(evaluations, 0);
  }
}

TEST(CheckTest, CheckedOnlyCodeCompilesOutOfUncheckedBuilds) {
  int ticks = 0;
  DIABLO_CHECKED_ONLY(++ticks;)
  EXPECT_EQ(ticks, kCheckedBuild ? 1 : 0);
}

TEST(CheckDeathTest, FailingCheckAbortsUnderCheckedBuild) {
  if (!kCheckedBuild) {
    GTEST_SKIP() << "checks compile to no-ops without DIABLO_CHECKED";
  }
  EXPECT_DEATH(DIABLO_CHECK(1 + 1 == 3, "arithmetic is broken"),
               "DIABLO_CHECK failed.*arithmetic is broken");
}

}  // namespace
}  // namespace diablo
