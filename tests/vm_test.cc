#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/vm/assembler.h"
#include "src/vm/dialect.h"
#include "src/vm/interpreter.h"
#include "src/vm/opcode.h"
#include "src/vm/state.h"

namespace diablo {
namespace {

ExecResult RunVm(const Program& program, std::string_view function,
               std::vector<int64_t> args = {}, ContractState* state = nullptr,
               VmDialect dialect = VmDialect::kGeth, int64_t gas_limit = 0) {
  ExecRequest request;
  request.program = &program;
  request.function = function;
  request.args = args;
  request.caller = 777;
  request.state = state;
  request.dialect = dialect;
  request.gas_limit = gas_limit;
  return Execute(request);
}

Program MustAssemble(std::string_view source) {
  AssembleResult result = Assemble("test", source);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

TEST(OpcodeTest, NamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(Opcode::kOpcodeCount); ++i) {
    const Opcode op = static_cast<Opcode>(i);
    Opcode parsed;
    ASSERT_FALSE(OpcodeName(op).empty());
    ASSERT_TRUE(ParseOpcode(OpcodeName(op), &parsed));
    EXPECT_EQ(parsed, op);
  }
  Opcode dummy;
  EXPECT_FALSE(ParseOpcode("frobnicate", &dummy));
}

TEST(OpcodeTest, StorageOpsCostMoreThanArithmetic) {
  EXPECT_GT(OpcodeGas(Opcode::kSstore), 100 * OpcodeGas(Opcode::kAdd));
  EXPECT_GT(OpcodeGas(Opcode::kSload), 10 * OpcodeGas(Opcode::kAdd));
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  AssembleResult result = Assemble("bad", "push 1\nbogus\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 2"), std::string::npos);

  result = Assemble("bad", ".func f\n  jump nowhere\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("nowhere"), std::string::npos);

  result = Assemble("bad", "push\n");
  EXPECT_FALSE(result.ok);

  result = Assemble("bad", "pop 3\n");
  EXPECT_FALSE(result.ok);

  result = Assemble("bad", "x:\nx:\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("duplicate"), std::string::npos);

  result = Assemble("bad", ".func dangling\n");
  EXPECT_FALSE(result.ok);
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  const Program program = MustAssemble(R"(
; full line comment
.func main
  push 5   ; trailing comment
  return
)");
  EXPECT_EQ(RunVm(program, "main").return_value, 5);
}

TEST(AssemblerTest, DisassembleShowsFunctionsAndImmediates) {
  const Program program = MustAssemble(".func main\n  push 42\n  return\n");
  const std::string text = Disassemble(program);
  EXPECT_NE(text.find(".func main"), std::string::npos);
  EXPECT_NE(text.find("push 42"), std::string::npos);
}


TEST(AssemblerTest, FunctionNamesAreCallTargets) {
  const Program program = MustAssemble(R"(
.func helper
  push 21
  push 2
  mul
  ret
.func main
  call helper
  return
)");
  EXPECT_EQ(RunVm(program, "main").return_value, 42);
}

TEST(InterpreterTest, PreResolvedEntryMatchesNameDispatch) {
  const Program program = MustAssemble(R"(
.func other
  push 1
  return
.func main
  push 42
  return
)");
  const ExecResult by_name = RunVm(program, "main");
  ASSERT_EQ(by_name.status, VmStatus::kOk);

  ExecRequest request;
  request.program = &program;
  request.function = "main";
  request.entry = program.EntryOf("main");
  request.caller = 777;
  const ExecResult by_entry = Execute(request);
  EXPECT_EQ(by_entry.status, by_name.status);
  EXPECT_EQ(by_entry.return_value, by_name.return_value);
  EXPECT_EQ(by_entry.gas_used, by_name.gas_used);

  // A bogus name with a valid pre-resolved entry must still run: the offset
  // wins, the name is informational.
  request.function = "no-such-function";
  EXPECT_EQ(Execute(request).return_value, by_name.return_value);
}

TEST(InterpreterTest, Arithmetic) {
  const Program program = MustAssemble(R"(
.func main
  push 7
  push 3
  sub       ; 4
  push 5
  mul       ; 20
  push 6
  div       ; 3
  push 2
  mod       ; 1
  push 41
  add
  return
)");
  const ExecResult result = RunVm(program, "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 42);
}

TEST(InterpreterTest, Comparisons) {
  const Program program = MustAssemble(R"(
.func main
  push 2
  push 3
  lt        ; 1
  push 3
  push 3
  le        ; 1
  and       ; 1
  push 5
  push 4
  gt        ; 1
  and
  push 4
  push 4
  ge
  and
  push 1
  push 2
  neq
  and
  push 9
  push 9
  eq
  and
  return
)");
  EXPECT_EQ(RunVm(program, "main").return_value, 1);
}

TEST(InterpreterTest, ShiftAndLogic) {
  const Program program = MustAssemble(R"(
.func main
  push 1
  push 6
  shl       ; 64
  push 2
  shr       ; 16
  push 0
  not       ; 1
  mul       ; 16
  return
)");
  EXPECT_EQ(RunVm(program, "main").return_value, 16);
}

TEST(InterpreterTest, LoopComputesSum) {
  // sum of 1..10 = 55
  const Program program = MustAssemble(R"(
.func main
  push 0    ; sum
  push 1    ; i
loop:
  dup 0
  push 10
  le
  jumpi body
  pop
  return
body:
  dup 0     ; [sum, i, i]
  swap 2    ; [i, i, sum]
  add       ; [i, sum']
  swap 1    ; [sum', i]
  push 1
  add
  jump loop
)");
  const ExecResult result = RunVm(program, "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 55);
}

TEST(InterpreterTest, StatePersistsAcrossCalls) {
  const Program program = MustAssemble(R"(
.func bump
  push 9
  dup 0
  sload
  push 1
  add
  sstore
  stop
.func read
  push 9
  sload
  return
)");
  ContractState state;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunVm(program, "bump", {}, &state).status, VmStatus::kOk);
  }
  EXPECT_EQ(RunVm(program, "read", {}, &state).return_value, 3);
}

TEST(InterpreterTest, RevertDiscardsWrites) {
  const Program program = MustAssemble(R"(
.func failing
  push 9
  push 123
  sstore
  revert
)");
  ContractState state;
  const ExecResult result = RunVm(program, "failing", {}, &state);
  EXPECT_EQ(result.status, VmStatus::kReverted);
  EXPECT_EQ(state.Load(9), 0);
}

TEST(InterpreterTest, ReadsObserveOwnWrites) {
  const Program program = MustAssemble(R"(
.func main
  push 5
  push 11
  sstore
  push 5
  sload
  return
)");
  ContractState state;
  const ExecResult result = RunVm(program, "main", {}, &state);
  EXPECT_EQ(result.return_value, 11);
  EXPECT_EQ(state.Load(5), 11);
}

TEST(InterpreterTest, ArgsAndCaller) {
  const Program program = MustAssemble(R"(
.func main
  arg 0
  arg 1
  add
  caller
  add
  argcount
  add
  return
)");
  const ExecResult result = RunVm(program, "main", {10, 20});
  EXPECT_EQ(result.return_value, 10 + 20 + 777 + 2);
  // Missing args read as zero.
  EXPECT_EQ(RunVm(program, "main", {}).return_value, 777);
}

TEST(InterpreterTest, EventsCounted) {
  const Program program = MustAssemble(R"(
.func main
  push 1
  push 2
  emit 2
  push 3
  emit 1
  stop
)");
  const ExecResult result = RunVm(program, "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.events_emitted, 2);
}

TEST(InterpreterTest, SubroutinesCallAndReturn) {
  // A shared "double" subroutine called twice: f(x) = 4x.
  const Program program = MustAssemble(R"(
.func main
  arg 0
  call double
  call double
  return
double:
  push 2
  mul
  ret
)");
  const ExecResult result = RunVm(program, "main", {5});
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 20);
}

TEST(InterpreterTest, NestedCallsAndDepthLimit) {
  const Program nested = MustAssemble(R"(
.func main
  push 1
  call a
  return
a:
  call b
  ret
b:
  push 10
  add
  ret
)");
  EXPECT_EQ(RunVm(nested, "main").return_value, 11);

  // Unbounded recursion trips the call-depth limit, not the host stack.
  const Program recursive = MustAssemble(R"(
.func main
  call main
  stop
)");
  EXPECT_EQ(RunVm(recursive, "main").status, VmStatus::kStackOverflow);
}

TEST(InterpreterTest, RetWithoutCallFails) {
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  ret\n"), "f").status,
            VmStatus::kStackUnderflow);
}

TEST(InterpreterTest, TransientMemory) {
  const Program program = MustAssemble(R"(
.func main
  push 7      ; mem[7] = 41
  push 41
  mstore
  push 7
  mload
  push 1
  add
  push 99     ; unset address reads as zero
  mload
  add
  return
)");
  const ExecResult result = RunVm(program, "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 42);
}

TEST(InterpreterTest, MemoryBoundsEnforced) {
  const Program program = MustAssemble(R"(
.func f
  push 100000
  push 1
  mstore
  stop
)");
  EXPECT_EQ(RunVm(program, "f").status, VmStatus::kInvalidJump);
}

TEST(InterpreterTest, MemoryIsTransientAcrossCalls) {
  const Program program = MustAssemble(R"(
.func write
  push 0
  push 123
  mstore
  stop
.func read
  push 0
  mload
  return
)");
  ContractState state;
  EXPECT_EQ(RunVm(program, "write", {}, &state).status, VmStatus::kOk);
  // A fresh call sees fresh memory (unlike SSTORE state).
  EXPECT_EQ(RunVm(program, "read", {}, &state).return_value, 0);
}

TEST(InterpreterTest, ErrorsDetected) {
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  pop\n"), "f").status, VmStatus::kStackUnderflow);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  push 1\n  push 0\n  div\n"), "f").status,
            VmStatus::kDivisionByZero);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  push 1\n  push 0\n  mod\n"), "f").status,
            VmStatus::kDivisionByZero);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  stop\n"), "nope").status,
            VmStatus::kNoSuchFunction);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  dup 5\n"), "f").status,
            VmStatus::kStackUnderflow);
}

TEST(InterpreterTest, StackOverflowDetected) {
  const Program program = MustAssemble(R"(
.func f
loop:
  push 1
  jump loop
)");
  EXPECT_EQ(RunVm(program, "f").status, VmStatus::kStackOverflow);
}

TEST(InterpreterTest, GasLimitEnforced) {
  const Program program = MustAssemble(R"(
.func f
loop:
  push 1
  pop
  jump loop
)");
  const ExecResult result = RunVm(program, "f", {}, nullptr, VmDialect::kGeth,
                                /*gas_limit=*/25000);
  EXPECT_EQ(result.status, VmStatus::kOutOfGas);
  EXPECT_LE(result.gas_used, 25000 + 20);
}

TEST(InterpreterTest, IntrinsicGasCharged) {
  const Program program = MustAssemble(".func f\n  stop\n");
  const ExecResult result = RunVm(program, "f");
  EXPECT_EQ(result.gas_used, LimitsOf(VmDialect::kGeth).intrinsic_gas);
}

TEST(DialectTest, AvmOpBudget) {
  // A loop of ~4 ops per iteration blows the 700-op AVM budget but runs
  // fine on geth.
  const Program program = MustAssemble(R"(
.func f
  push 0
loop:
  push 1
  add
  dup 0
  push 300
  lt
  jumpi loop
  return
)");
  EXPECT_EQ(RunVm(program, "f", {}, nullptr, VmDialect::kGeth).status, VmStatus::kOk);
  EXPECT_EQ(RunVm(program, "f", {}, nullptr, VmDialect::kAvm).status,
            VmStatus::kBudgetExceeded);
}

TEST(DialectTest, GasBudgetsHardCapped) {
  // 80 sstores ~= 164k gas: over MoveVM's 150k budget, under eBPF's 200k.
  const Program program = MustAssemble(R"(
.func f
  push 0
loop:
  dup 0
  dup 0
  sstore
  push 1
  add
  dup 0
  push 80
  lt
  jumpi loop
  stop
)");
  ContractState state;
  EXPECT_EQ(RunVm(program, "f", {}, &state, VmDialect::kMoveVm).status,
            VmStatus::kBudgetExceeded);
  EXPECT_EQ(RunVm(program, "f", {}, &state, VmDialect::kEbpf).status, VmStatus::kOk);
  EXPECT_EQ(RunVm(program, "f", {}, &state, VmDialect::kGeth).status, VmStatus::kOk);
}

TEST(DialectTest, AvmStateEntryLimit) {
  const Program program = MustAssemble(R"(
.func f
  push 40
  arg 0
  sstoreb
  stop
)");
  ContractState state;
  // 100 bytes fit in AVM's 128-byte entries; 1024 do not.
  EXPECT_EQ(RunVm(program, "f", {100}, &state, VmDialect::kAvm).status, VmStatus::kOk);
  EXPECT_EQ(RunVm(program, "f", {1024}, &state, VmDialect::kAvm).status,
            VmStatus::kStateLimitExceeded);
  EXPECT_EQ(RunVm(program, "f", {1024}, &state, VmDialect::kGeth).status, VmStatus::kOk);
  EXPECT_EQ(state.BlobSize(40), 1024);
}

TEST(DialectTest, StoredBytesCostGas) {
  const Program program = MustAssemble(R"(
.func f
  push 40
  arg 0
  sstoreb
  stop
)");
  ContractState s1;
  ContractState s2;
  const ExecResult small = RunVm(program, "f", {10}, &s1);
  const ExecResult large = RunVm(program, "f", {1000}, &s2);
  EXPECT_EQ(large.gas_used - small.gas_used, kGasPerStoredByte * 990);
}

TEST(DialectTest, Registry) {
  EXPECT_EQ(DialectName(VmDialect::kGeth), "geth");
  EXPECT_EQ(DialectName(VmDialect::kAvm), "avm");
  EXPECT_EQ(DialectName(VmDialect::kMoveVm), "movevm");
  EXPECT_EQ(DialectName(VmDialect::kEbpf), "ebpf");
  EXPECT_EQ(LimitsOf(VmDialect::kGeth).gas_budget, 0);
  EXPECT_EQ(LimitsOf(VmDialect::kAvm).op_budget, 700);
  EXPECT_EQ(LimitsOf(VmDialect::kAvm).max_kv_bytes, 128);
  EXPECT_EQ(LimitsOf(VmDialect::kEbpf).gas_budget, 200000);
}

TEST(StateTest, Basics) {
  ContractState state;
  EXPECT_EQ(state.Load(1), 0);
  state.Store(1, 5);
  state.Store(1, 6);
  EXPECT_EQ(state.Load(1), 6);
  EXPECT_TRUE(state.StoreBytes(2, 100, 0));
  EXPECT_FALSE(state.StoreBytes(3, 200, 128));
  EXPECT_EQ(state.BlobSize(3), 0);
  EXPECT_EQ(state.entry_count(), 2u);
  EXPECT_EQ(state.total_blob_bytes(), 100);
  EXPECT_TRUE(state.StoreBytes(2, 50, 0));
  EXPECT_EQ(state.total_blob_bytes(), 50);
}

TEST(VmStatusTest, Names) {
  EXPECT_EQ(VmStatusName(VmStatus::kOk), "ok");
  EXPECT_EQ(VmStatusName(VmStatus::kBudgetExceeded), "budget exceeded");
  EXPECT_FALSE(IsFailure(VmStatus::kOk));
  EXPECT_TRUE(IsFailure(VmStatus::kReverted));
}

// --- semantics locks for the dispatch loop ----------------------------------
// These pin edge-case behaviour of the byte interpreter — check ordering,
// failure statuses, exact gas/op accounting, and the self-modifying-control-
// flow quirks raw bytecode can reach — so a pre-decoded dispatch rewrite must
// reproduce them bit for bit.

Program RawProgram(std::vector<uint8_t> code) {
  Program program;
  program.name = "raw";
  program.code = std::move(code);
  program.functions.push_back(FunctionEntry{"main", 0});
  return program;
}

constexpr uint8_t Raw(Opcode op) { return static_cast<uint8_t>(op); }

TEST(VmSemanticsLock, DivModCheckUnderflowBeforeZeroDivisor) {
  // With one element the need(2) check fires before the zero-divisor check.
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  push 0\n  div\n"), "f").status,
            VmStatus::kStackUnderflow);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  push 0\n  mod\n"), "f").status,
            VmStatus::kStackUnderflow);
  const ExecResult div0 = RunVm(MustAssemble(".func f\n  push 1\n  push 0\n  div\n"), "f");
  EXPECT_EQ(div0.status, VmStatus::kDivisionByZero);
  EXPECT_EQ(div0.ops_executed, 3);
  EXPECT_EQ(div0.gas_used, LimitsOf(VmDialect::kGeth).intrinsic_gas +
                               2 * OpcodeGas(Opcode::kPush) + OpcodeGas(Opcode::kDiv));
}

TEST(VmSemanticsLock, FailingOpStillChargesGasAndOps) {
  // Gas and op accounting happen before the operation executes, so a failing
  // op is itself charged.
  const ExecResult result = RunVm(MustAssemble(".func f\n  pop\n"), "f");
  EXPECT_EQ(result.status, VmStatus::kStackUnderflow);
  EXPECT_EQ(result.ops_executed, 1);
  EXPECT_EQ(result.gas_used,
            LimitsOf(VmDialect::kGeth).intrinsic_gas + OpcodeGas(Opcode::kPop));
}

TEST(VmSemanticsLock, JumpToCodeSizeIsCleanStopBeyondIsInvalid) {
  // push 5; jump <target>  — 14 code bytes total. Target == code.size() is a
  // legal jump that falls off the end (clean stop); one past is invalid.
  std::vector<uint8_t> code = {Raw(Opcode::kPush), 5, 0, 0, 0, 0, 0, 0, 0,
                               Raw(Opcode::kJump), 14, 0, 0, 0};
  const ExecResult off_end = RunVm(RawProgram(code), "main");
  EXPECT_EQ(off_end.status, VmStatus::kOk);
  EXPECT_EQ(off_end.return_value, 0);  // never reached a return
  EXPECT_EQ(off_end.ops_executed, 2);
  EXPECT_EQ(off_end.gas_used, LimitsOf(VmDialect::kGeth).intrinsic_gas +
                                  OpcodeGas(Opcode::kPush) + OpcodeGas(Opcode::kJump));
  code[10] = 15;
  EXPECT_EQ(RunVm(RawProgram(code), "main").status, VmStatus::kInvalidJump);
}

TEST(VmSemanticsLock, JumpIValidatesTargetOnlyWhenTaken) {
  // push c; jumpi 255 — the wild target only matters when the branch fires.
  std::vector<uint8_t> code = {Raw(Opcode::kPush), 0, 0, 0, 0, 0, 0, 0, 0,
                               Raw(Opcode::kJumpI), 255, 0, 0, 0};
  EXPECT_EQ(RunVm(RawProgram(code), "main").status, VmStatus::kOk);
  code[1] = 1;
  EXPECT_EQ(RunVm(RawProgram(code), "main").status, VmStatus::kInvalidJump);
}

TEST(VmSemanticsLock, MisalignedJumpReinterpretsImmediateBytes) {
  // Jumping into the middle of a push immediate re-decodes those bytes as
  // instructions: byte 1 (the immediate's LSB, 30) is kReturn, which returns
  // the previously pushed value.
  ASSERT_EQ(static_cast<uint8_t>(Opcode::kReturn), 30);
  const std::vector<uint8_t> code = {Raw(Opcode::kPush), 30, 0, 0, 0, 0, 0, 0, 0,
                                     Raw(Opcode::kJump), 1, 0, 0, 0};
  const ExecResult result = RunVm(RawProgram(code), "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 30);
  EXPECT_EQ(result.ops_executed, 3);
}

TEST(VmSemanticsLock, TruncatedImmediateAndUnknownOpcodeAreInvalid) {
  // A push with no immediate bytes, a jump with a short immediate, and an
  // out-of-range opcode byte all fail with kInvalidOpcode before executing.
  EXPECT_EQ(RunVm(RawProgram({Raw(Opcode::kPush)}), "main").status,
            VmStatus::kInvalidOpcode);
  EXPECT_EQ(RunVm(RawProgram({Raw(Opcode::kJump), 0}), "main").status,
            VmStatus::kInvalidOpcode);
  EXPECT_EQ(RunVm(RawProgram({200}), "main").status, VmStatus::kInvalidOpcode);
  // Decode failures are detected before accounting, so nothing is charged
  // beyond the intrinsic gas.
  const ExecResult result = RunVm(RawProgram({Raw(Opcode::kPush)}), "main");
  EXPECT_EQ(result.ops_executed, 0);
  EXPECT_EQ(result.gas_used, LimitsOf(VmDialect::kGeth).intrinsic_gas);
}

TEST(VmSemanticsLock, SstoreBytesGasAccounting) {
  const Program program = MustAssemble(R"(
.func f
  push 40
  arg 0
  sstoreb
  stop
)");
  const int64_t base = LimitsOf(VmDialect::kGeth).intrinsic_gas +
                       OpcodeGas(Opcode::kPush) + OpcodeGas(Opcode::kArg) +
                       OpcodeGas(Opcode::kSstoreBytes);
  ContractState state;
  const ExecResult ten = RunVm(program, "f", {10}, &state);
  EXPECT_EQ(ten.status, VmStatus::kOk);
  EXPECT_EQ(ten.gas_used, base + kGasPerStoredByte * 10);
  // Negative byte counts charge nothing per byte.
  const ExecResult negative = RunVm(program, "f", {-5}, &state);
  EXPECT_EQ(negative.status, VmStatus::kOk);
  EXPECT_EQ(negative.gas_used, base);
  // The per-byte surcharge is re-checked against the gas limit immediately:
  // a limit that covers the flat costs but not the bytes fails out-of-gas.
  const ExecResult capped = RunVm(program, "f", {1000}, &state, VmDialect::kGeth,
                                  /*gas_limit=*/base + kGasPerStoredByte * 1000 - 1);
  EXPECT_EQ(capped.status, VmStatus::kOutOfGas);
  EXPECT_EQ(capped.gas_used, base + kGasPerStoredByte * 1000);
}

// --- decoded-vs-byte dispatch agreement -------------------------------------
// The assembler attaches a pre-decoded instruction table and Execute dispatches
// through it; stripping the table forces the byte-decoding reference path.
// Every observable field must agree between the two.

ExecResult RunForced(Program program, bool use_decoded, std::string_view function,
                     std::vector<int64_t> args = {}, ContractState* state = nullptr,
                     VmDialect dialect = VmDialect::kGeth, int64_t gas_limit = 0) {
  if (use_decoded) {
    program.Predecode();
  } else {
    program.decoded.clear();
  }
  return RunVm(program, function, std::move(args), state, dialect, gas_limit);
}

void ExpectBothPathsAgree(const std::string& source, std::vector<int64_t> args,
                          VmDialect dialect, int64_t gas_limit = 0) {
  const Program program = MustAssemble(source);
  ContractState byte_state;
  ContractState decoded_state;
  const ExecResult byte_result =
      RunForced(program, false, "f", args, &byte_state, dialect, gas_limit);
  const ExecResult decoded_result =
      RunForced(program, true, "f", args, &decoded_state, dialect, gas_limit);
  EXPECT_EQ(byte_result.status, decoded_result.status) << source;
  EXPECT_EQ(byte_result.gas_used, decoded_result.gas_used) << source;
  EXPECT_EQ(byte_result.ops_executed, decoded_result.ops_executed) << source;
  EXPECT_EQ(byte_result.return_value, decoded_result.return_value) << source;
  EXPECT_EQ(byte_result.events_emitted, decoded_result.events_emitted) << source;
  EXPECT_EQ(byte_state.entry_count(), decoded_state.entry_count()) << source;
  EXPECT_EQ(byte_state.total_blob_bytes(), decoded_state.total_blob_bytes()) << source;
  for (uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(byte_state.Load(key), decoded_state.Load(key)) << source << " key " << key;
  }
}

TEST(VmDecodedAgreement, AssembledProgramsMatch) {
  const std::string programs[] = {
      // Loop with jumps, memory, and comparisons.
      R"(
.func f
  push 0
  push 0
  mstore
  push 0
loop:
  dup 0
  arg 0
  ge
  jumpi end
  push 0
  mload
  dup 1
  add
  push 0
  swap 1
  mstore
  push 1
  add
  jump loop
end:
  push 0
  mload
  return
)",
      // Storage round-trip with journal-visible reads.
      R"(
.func f
  push 7
  arg 0
  sstore
  push 7
  sload
  push 2
  mul
  push 8
  swap 1
  sstore
  push 8
  sload
  return
)",
      // Subroutine call, events, caller and argcount.
      R"(
.func f
  caller
  argcount
  emit 2
  call helper
  return
.func helper
  arg 0
  arg 1
  add
  ret
)",
      // Blob store plus revert on a flag.
      R"(
.func f
  push 40
  arg 0
  sstoreb
  arg 1
  jumpi bad
  push 1
  return
bad:
  revert
)",
      // Division and failure paths.
      R"(
.func f
  arg 0
  arg 1
  div
  return
)",
  };
  const VmDialect dialects[] = {VmDialect::kGeth, VmDialect::kAvm, VmDialect::kMoveVm,
                                VmDialect::kEbpf};
  const std::vector<int64_t> arg_sets[] = {{0, 0}, {5, 1}, {100, 3}, {1024, 0}, {-5, -1}};
  for (const std::string& source : programs) {
    for (const VmDialect dialect : dialects) {
      for (const std::vector<int64_t>& args : arg_sets) {
        ExpectBothPathsAgree(source, args, dialect);
      }
    }
  }
}

TEST(VmDecodedAgreement, GasLimitEdgesMatch) {
  const std::string source = R"(
.func f
  push 40
  arg 0
  sstoreb
  push 1
  emit 1
  stop
)";
  // Sweep limits across every charge point so both paths run out of gas (or
  // don't) at exactly the same instruction.
  for (int64_t limit = 21000; limit < 21100; ++limit) {
    ExpectBothPathsAgree(source, {128}, VmDialect::kGeth, limit);
  }
  for (int64_t limit : {int64_t{23000}, int64_t{23047}, int64_t{23048}, int64_t{23049}}) {
    ExpectBothPathsAgree(source, {128}, VmDialect::kGeth, limit);
  }
}

TEST(VmDecodedAgreement, RawEdgeCasesMatch) {
  const std::vector<std::vector<uint8_t>> cases = {
      {Raw(Opcode::kPush), 5, 0, 0, 0, 0, 0, 0, 0, Raw(Opcode::kJump), 14, 0, 0, 0},
      {Raw(Opcode::kPush), 5, 0, 0, 0, 0, 0, 0, 0, Raw(Opcode::kJump), 15, 0, 0, 0},
      {Raw(Opcode::kPush), 30, 0, 0, 0, 0, 0, 0, 0, Raw(Opcode::kJump), 1, 0, 0, 0},
      {Raw(Opcode::kPush), 0, 0, 0, 0, 0, 0, 0, 0, Raw(Opcode::kJumpI), 255, 0, 0, 0},
      {Raw(Opcode::kPush)},
      {Raw(Opcode::kJump), 0},
      {200},
      {Raw(Opcode::kCall), 3, 0, 0, 0},  // call past the end: invalid
      {Raw(Opcode::kRet)},
      {},
  };
  for (const std::vector<uint8_t>& code : cases) {
    const Program program = RawProgram(code);
    const ExecResult byte_result = RunForced(program, false, "main");
    const ExecResult decoded_result = RunForced(program, true, "main");
    EXPECT_EQ(byte_result.status, decoded_result.status);
    EXPECT_EQ(byte_result.gas_used, decoded_result.gas_used);
    EXPECT_EQ(byte_result.ops_executed, decoded_result.ops_executed);
    EXPECT_EQ(byte_result.return_value, decoded_result.return_value);
  }
}

TEST(VmDecodedAgreement, AssemblerAttachesDecodedTable) {
  const Program program = MustAssemble(".func f\n  push 42\n  return\n");
  ASSERT_EQ(program.decoded.size(), program.code.size() + 1);
  EXPECT_EQ(program.decoded.back().kind, DecodedInsn::kEnd);
  // push at offset 0: operand and fall-through resolved at assembly time.
  EXPECT_EQ(program.decoded[0].kind, DecodedInsn::kOp);
  EXPECT_EQ(program.decoded[0].imm, 42);
  EXPECT_EQ(program.decoded[0].next, 9u);
}

TEST(VmSemanticsLock, MemoryAddressRangeBoundary) {
  // Addresses up to kMaxMemoryWords-1 read as zero; the first out-of-range
  // address fails with the (historical) kInvalidJump status.
  const Program program = MustAssemble(R"(
.func f
  arg 0
  mload
  return
)");
  const ExecResult in_range = RunVm(program, "f", {4095});
  EXPECT_EQ(in_range.status, VmStatus::kOk);
  EXPECT_EQ(in_range.return_value, 0);
  EXPECT_EQ(RunVm(program, "f", {4096}).status, VmStatus::kInvalidJump);
}

}  // namespace
}  // namespace diablo
