#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/vm/assembler.h"
#include "src/vm/dialect.h"
#include "src/vm/interpreter.h"
#include "src/vm/opcode.h"
#include "src/vm/state.h"

namespace diablo {
namespace {

ExecResult RunVm(const Program& program, std::string_view function,
               std::vector<int64_t> args = {}, ContractState* state = nullptr,
               VmDialect dialect = VmDialect::kGeth, int64_t gas_limit = 0) {
  ExecRequest request;
  request.program = &program;
  request.function = function;
  request.args = args;
  request.caller = 777;
  request.state = state;
  request.dialect = dialect;
  request.gas_limit = gas_limit;
  return Execute(request);
}

Program MustAssemble(std::string_view source) {
  AssembleResult result = Assemble("test", source);
  EXPECT_TRUE(result.ok) << result.error;
  return result.program;
}

TEST(OpcodeTest, NamesRoundTrip) {
  for (int i = 0; i < static_cast<int>(Opcode::kOpcodeCount); ++i) {
    const Opcode op = static_cast<Opcode>(i);
    Opcode parsed;
    ASSERT_FALSE(OpcodeName(op).empty());
    ASSERT_TRUE(ParseOpcode(OpcodeName(op), &parsed));
    EXPECT_EQ(parsed, op);
  }
  Opcode dummy;
  EXPECT_FALSE(ParseOpcode("frobnicate", &dummy));
}

TEST(OpcodeTest, StorageOpsCostMoreThanArithmetic) {
  EXPECT_GT(OpcodeGas(Opcode::kSstore), 100 * OpcodeGas(Opcode::kAdd));
  EXPECT_GT(OpcodeGas(Opcode::kSload), 10 * OpcodeGas(Opcode::kAdd));
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  AssembleResult result = Assemble("bad", "push 1\nbogus\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 2"), std::string::npos);

  result = Assemble("bad", ".func f\n  jump nowhere\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("nowhere"), std::string::npos);

  result = Assemble("bad", "push\n");
  EXPECT_FALSE(result.ok);

  result = Assemble("bad", "pop 3\n");
  EXPECT_FALSE(result.ok);

  result = Assemble("bad", "x:\nx:\n");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("duplicate"), std::string::npos);

  result = Assemble("bad", ".func dangling\n");
  EXPECT_FALSE(result.ok);
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  const Program program = MustAssemble(R"(
; full line comment
.func main
  push 5   ; trailing comment
  return
)");
  EXPECT_EQ(RunVm(program, "main").return_value, 5);
}

TEST(AssemblerTest, DisassembleShowsFunctionsAndImmediates) {
  const Program program = MustAssemble(".func main\n  push 42\n  return\n");
  const std::string text = Disassemble(program);
  EXPECT_NE(text.find(".func main"), std::string::npos);
  EXPECT_NE(text.find("push 42"), std::string::npos);
}


TEST(AssemblerTest, FunctionNamesAreCallTargets) {
  const Program program = MustAssemble(R"(
.func helper
  push 21
  push 2
  mul
  ret
.func main
  call helper
  return
)");
  EXPECT_EQ(RunVm(program, "main").return_value, 42);
}

TEST(InterpreterTest, PreResolvedEntryMatchesNameDispatch) {
  const Program program = MustAssemble(R"(
.func other
  push 1
  return
.func main
  push 42
  return
)");
  const ExecResult by_name = RunVm(program, "main");
  ASSERT_EQ(by_name.status, VmStatus::kOk);

  ExecRequest request;
  request.program = &program;
  request.function = "main";
  request.entry = program.EntryOf("main");
  request.caller = 777;
  const ExecResult by_entry = Execute(request);
  EXPECT_EQ(by_entry.status, by_name.status);
  EXPECT_EQ(by_entry.return_value, by_name.return_value);
  EXPECT_EQ(by_entry.gas_used, by_name.gas_used);

  // A bogus name with a valid pre-resolved entry must still run: the offset
  // wins, the name is informational.
  request.function = "no-such-function";
  EXPECT_EQ(Execute(request).return_value, by_name.return_value);
}

TEST(InterpreterTest, Arithmetic) {
  const Program program = MustAssemble(R"(
.func main
  push 7
  push 3
  sub       ; 4
  push 5
  mul       ; 20
  push 6
  div       ; 3
  push 2
  mod       ; 1
  push 41
  add
  return
)");
  const ExecResult result = RunVm(program, "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 42);
}

TEST(InterpreterTest, Comparisons) {
  const Program program = MustAssemble(R"(
.func main
  push 2
  push 3
  lt        ; 1
  push 3
  push 3
  le        ; 1
  and       ; 1
  push 5
  push 4
  gt        ; 1
  and
  push 4
  push 4
  ge
  and
  push 1
  push 2
  neq
  and
  push 9
  push 9
  eq
  and
  return
)");
  EXPECT_EQ(RunVm(program, "main").return_value, 1);
}

TEST(InterpreterTest, ShiftAndLogic) {
  const Program program = MustAssemble(R"(
.func main
  push 1
  push 6
  shl       ; 64
  push 2
  shr       ; 16
  push 0
  not       ; 1
  mul       ; 16
  return
)");
  EXPECT_EQ(RunVm(program, "main").return_value, 16);
}

TEST(InterpreterTest, LoopComputesSum) {
  // sum of 1..10 = 55
  const Program program = MustAssemble(R"(
.func main
  push 0    ; sum
  push 1    ; i
loop:
  dup 0
  push 10
  le
  jumpi body
  pop
  return
body:
  dup 0     ; [sum, i, i]
  swap 2    ; [i, i, sum]
  add       ; [i, sum']
  swap 1    ; [sum', i]
  push 1
  add
  jump loop
)");
  const ExecResult result = RunVm(program, "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 55);
}

TEST(InterpreterTest, StatePersistsAcrossCalls) {
  const Program program = MustAssemble(R"(
.func bump
  push 9
  dup 0
  sload
  push 1
  add
  sstore
  stop
.func read
  push 9
  sload
  return
)");
  ContractState state;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunVm(program, "bump", {}, &state).status, VmStatus::kOk);
  }
  EXPECT_EQ(RunVm(program, "read", {}, &state).return_value, 3);
}

TEST(InterpreterTest, RevertDiscardsWrites) {
  const Program program = MustAssemble(R"(
.func failing
  push 9
  push 123
  sstore
  revert
)");
  ContractState state;
  const ExecResult result = RunVm(program, "failing", {}, &state);
  EXPECT_EQ(result.status, VmStatus::kReverted);
  EXPECT_EQ(state.Load(9), 0);
}

TEST(InterpreterTest, ReadsObserveOwnWrites) {
  const Program program = MustAssemble(R"(
.func main
  push 5
  push 11
  sstore
  push 5
  sload
  return
)");
  ContractState state;
  const ExecResult result = RunVm(program, "main", {}, &state);
  EXPECT_EQ(result.return_value, 11);
  EXPECT_EQ(state.Load(5), 11);
}

TEST(InterpreterTest, ArgsAndCaller) {
  const Program program = MustAssemble(R"(
.func main
  arg 0
  arg 1
  add
  caller
  add
  argcount
  add
  return
)");
  const ExecResult result = RunVm(program, "main", {10, 20});
  EXPECT_EQ(result.return_value, 10 + 20 + 777 + 2);
  // Missing args read as zero.
  EXPECT_EQ(RunVm(program, "main", {}).return_value, 777);
}

TEST(InterpreterTest, EventsCounted) {
  const Program program = MustAssemble(R"(
.func main
  push 1
  push 2
  emit 2
  push 3
  emit 1
  stop
)");
  const ExecResult result = RunVm(program, "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.events_emitted, 2);
}

TEST(InterpreterTest, SubroutinesCallAndReturn) {
  // A shared "double" subroutine called twice: f(x) = 4x.
  const Program program = MustAssemble(R"(
.func main
  arg 0
  call double
  call double
  return
double:
  push 2
  mul
  ret
)");
  const ExecResult result = RunVm(program, "main", {5});
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 20);
}

TEST(InterpreterTest, NestedCallsAndDepthLimit) {
  const Program nested = MustAssemble(R"(
.func main
  push 1
  call a
  return
a:
  call b
  ret
b:
  push 10
  add
  ret
)");
  EXPECT_EQ(RunVm(nested, "main").return_value, 11);

  // Unbounded recursion trips the call-depth limit, not the host stack.
  const Program recursive = MustAssemble(R"(
.func main
  call main
  stop
)");
  EXPECT_EQ(RunVm(recursive, "main").status, VmStatus::kStackOverflow);
}

TEST(InterpreterTest, RetWithoutCallFails) {
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  ret\n"), "f").status,
            VmStatus::kStackUnderflow);
}

TEST(InterpreterTest, TransientMemory) {
  const Program program = MustAssemble(R"(
.func main
  push 7      ; mem[7] = 41
  push 41
  mstore
  push 7
  mload
  push 1
  add
  push 99     ; unset address reads as zero
  mload
  add
  return
)");
  const ExecResult result = RunVm(program, "main");
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.return_value, 42);
}

TEST(InterpreterTest, MemoryBoundsEnforced) {
  const Program program = MustAssemble(R"(
.func f
  push 100000
  push 1
  mstore
  stop
)");
  EXPECT_EQ(RunVm(program, "f").status, VmStatus::kInvalidJump);
}

TEST(InterpreterTest, MemoryIsTransientAcrossCalls) {
  const Program program = MustAssemble(R"(
.func write
  push 0
  push 123
  mstore
  stop
.func read
  push 0
  mload
  return
)");
  ContractState state;
  EXPECT_EQ(RunVm(program, "write", {}, &state).status, VmStatus::kOk);
  // A fresh call sees fresh memory (unlike SSTORE state).
  EXPECT_EQ(RunVm(program, "read", {}, &state).return_value, 0);
}

TEST(InterpreterTest, ErrorsDetected) {
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  pop\n"), "f").status, VmStatus::kStackUnderflow);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  push 1\n  push 0\n  div\n"), "f").status,
            VmStatus::kDivisionByZero);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  push 1\n  push 0\n  mod\n"), "f").status,
            VmStatus::kDivisionByZero);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  stop\n"), "nope").status,
            VmStatus::kNoSuchFunction);
  EXPECT_EQ(RunVm(MustAssemble(".func f\n  dup 5\n"), "f").status,
            VmStatus::kStackUnderflow);
}

TEST(InterpreterTest, StackOverflowDetected) {
  const Program program = MustAssemble(R"(
.func f
loop:
  push 1
  jump loop
)");
  EXPECT_EQ(RunVm(program, "f").status, VmStatus::kStackOverflow);
}

TEST(InterpreterTest, GasLimitEnforced) {
  const Program program = MustAssemble(R"(
.func f
loop:
  push 1
  pop
  jump loop
)");
  const ExecResult result = RunVm(program, "f", {}, nullptr, VmDialect::kGeth,
                                /*gas_limit=*/25000);
  EXPECT_EQ(result.status, VmStatus::kOutOfGas);
  EXPECT_LE(result.gas_used, 25000 + 20);
}

TEST(InterpreterTest, IntrinsicGasCharged) {
  const Program program = MustAssemble(".func f\n  stop\n");
  const ExecResult result = RunVm(program, "f");
  EXPECT_EQ(result.gas_used, LimitsOf(VmDialect::kGeth).intrinsic_gas);
}

TEST(DialectTest, AvmOpBudget) {
  // A loop of ~4 ops per iteration blows the 700-op AVM budget but runs
  // fine on geth.
  const Program program = MustAssemble(R"(
.func f
  push 0
loop:
  push 1
  add
  dup 0
  push 300
  lt
  jumpi loop
  return
)");
  EXPECT_EQ(RunVm(program, "f", {}, nullptr, VmDialect::kGeth).status, VmStatus::kOk);
  EXPECT_EQ(RunVm(program, "f", {}, nullptr, VmDialect::kAvm).status,
            VmStatus::kBudgetExceeded);
}

TEST(DialectTest, GasBudgetsHardCapped) {
  // 80 sstores ~= 164k gas: over MoveVM's 150k budget, under eBPF's 200k.
  const Program program = MustAssemble(R"(
.func f
  push 0
loop:
  dup 0
  dup 0
  sstore
  push 1
  add
  dup 0
  push 80
  lt
  jumpi loop
  stop
)");
  ContractState state;
  EXPECT_EQ(RunVm(program, "f", {}, &state, VmDialect::kMoveVm).status,
            VmStatus::kBudgetExceeded);
  EXPECT_EQ(RunVm(program, "f", {}, &state, VmDialect::kEbpf).status, VmStatus::kOk);
  EXPECT_EQ(RunVm(program, "f", {}, &state, VmDialect::kGeth).status, VmStatus::kOk);
}

TEST(DialectTest, AvmStateEntryLimit) {
  const Program program = MustAssemble(R"(
.func f
  push 40
  arg 0
  sstoreb
  stop
)");
  ContractState state;
  // 100 bytes fit in AVM's 128-byte entries; 1024 do not.
  EXPECT_EQ(RunVm(program, "f", {100}, &state, VmDialect::kAvm).status, VmStatus::kOk);
  EXPECT_EQ(RunVm(program, "f", {1024}, &state, VmDialect::kAvm).status,
            VmStatus::kStateLimitExceeded);
  EXPECT_EQ(RunVm(program, "f", {1024}, &state, VmDialect::kGeth).status, VmStatus::kOk);
  EXPECT_EQ(state.BlobSize(40), 1024);
}

TEST(DialectTest, StoredBytesCostGas) {
  const Program program = MustAssemble(R"(
.func f
  push 40
  arg 0
  sstoreb
  stop
)");
  ContractState s1;
  ContractState s2;
  const ExecResult small = RunVm(program, "f", {10}, &s1);
  const ExecResult large = RunVm(program, "f", {1000}, &s2);
  EXPECT_EQ(large.gas_used - small.gas_used, kGasPerStoredByte * 990);
}

TEST(DialectTest, Registry) {
  EXPECT_EQ(DialectName(VmDialect::kGeth), "geth");
  EXPECT_EQ(DialectName(VmDialect::kAvm), "avm");
  EXPECT_EQ(DialectName(VmDialect::kMoveVm), "movevm");
  EXPECT_EQ(DialectName(VmDialect::kEbpf), "ebpf");
  EXPECT_EQ(LimitsOf(VmDialect::kGeth).gas_budget, 0);
  EXPECT_EQ(LimitsOf(VmDialect::kAvm).op_budget, 700);
  EXPECT_EQ(LimitsOf(VmDialect::kAvm).max_kv_bytes, 128);
  EXPECT_EQ(LimitsOf(VmDialect::kEbpf).gas_budget, 200000);
}

TEST(StateTest, Basics) {
  ContractState state;
  EXPECT_EQ(state.Load(1), 0);
  state.Store(1, 5);
  state.Store(1, 6);
  EXPECT_EQ(state.Load(1), 6);
  EXPECT_TRUE(state.StoreBytes(2, 100, 0));
  EXPECT_FALSE(state.StoreBytes(3, 200, 128));
  EXPECT_EQ(state.BlobSize(3), 0);
  EXPECT_EQ(state.entry_count(), 2u);
  EXPECT_EQ(state.total_blob_bytes(), 100);
  EXPECT_TRUE(state.StoreBytes(2, 50, 0));
  EXPECT_EQ(state.total_blob_bytes(), 50);
}

TEST(VmStatusTest, Names) {
  EXPECT_EQ(VmStatusName(VmStatus::kOk), "ok");
  EXPECT_EQ(VmStatusName(VmStatus::kBudgetExceeded), "budget exceeded");
  EXPECT_FALSE(IsFailure(VmStatus::kOk));
  EXPECT_TRUE(IsFailure(VmStatus::kReverted));
}

}  // namespace
}  // namespace diablo
