#include <gtest/gtest.h>

#include <sstream>

#include "src/analysis/analysis.h"
#include "src/config/json.h"
#include "src/core/results.h"

namespace diablo {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_TRUE(ParseJson("null").ok);
  EXPECT_TRUE(ParseJson("true").value.boolean == false || true);
  const JsonResult t = ParseJson("true");
  ASSERT_TRUE(t.ok);
  EXPECT_TRUE(t.value.boolean);
  const JsonResult n = ParseJson("-12.5e2");
  ASSERT_TRUE(n.ok);
  EXPECT_DOUBLE_EQ(n.value.number, -1250.0);
  const JsonResult s = ParseJson("\"hi\\nthere\"");
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(s.value.string, "hi\nthere");
}

TEST(JsonTest, NestedStructures) {
  const JsonResult result =
      ParseJson(R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}, "e": false})");
  ASSERT_TRUE(result.ok) << result.error;
  const JsonValue& root = result.value;
  ASSERT_TRUE(root.IsObject());
  const JsonValue* a = root.Find("a");
  ASSERT_TRUE(a->IsArray());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->items[1].number, 2.0);
  EXPECT_EQ(a->items[2].GetString("b", ""), "x");
  EXPECT_TRUE(root.Find("c")->Find("d")->IsNull());
  EXPECT_FALSE(root.Find("e")->boolean);
  EXPECT_EQ(root.Find("zzz"), nullptr);
}

TEST(JsonTest, UnicodeEscapes) {
  const JsonResult result = ParseJson("\"\\u0041\\u00e9\\u20ac\"");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.value.string, "A\xC3\xA9\xE2\x82\xAC");  // A é €
}

TEST(JsonTest, ErrorsReported) {
  EXPECT_FALSE(ParseJson("").ok);
  EXPECT_FALSE(ParseJson("{").ok);
  EXPECT_FALSE(ParseJson("[1,]").ok);
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok);
  EXPECT_FALSE(ParseJson("\"unterminated").ok);
  EXPECT_FALSE(ParseJson("12 34").ok);
  EXPECT_FALSE(ParseJson("nul").ok);
  const JsonResult result = ParseJson("{\"a\": @}");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("offset"), std::string::npos);
}

TxStore MakeStore() {
  TxStore txs;
  for (int i = 0; i < 20; ++i) {
    Transaction tx;
    tx.submit_time = Seconds(i / 2);
    tx.commit_time = tx.submit_time + Milliseconds(2500);
    tx.phase = i % 5 == 0 ? TxPhase::kDropped : TxPhase::kCommitted;
    if (tx.phase == TxPhase::kDropped) {
      tx.commit_time = -1;
    }
    txs.Add(tx);
  }
  return txs;
}

TEST(AnalysisTest, JsonRoundTrip) {
  const TxStore txs = MakeStore();
  const Report report =
      BuildReport(txs, Seconds(1000), "quorum", "testnet", "native", 10.0);
  std::ostringstream out;
  WriteResultsJson(out, report, txs);

  const LoadResult loaded = LoadResultsJson(out.str());
  ASSERT_TRUE(loaded.ok) << loaded.error;
  const LoadedResults& results = loaded.results;
  EXPECT_EQ(results.chain, "quorum");
  EXPECT_EQ(results.workload, "native");
  EXPECT_EQ(results.submitted, report.submitted);
  EXPECT_EQ(results.committed, report.committed);
  EXPECT_EQ(results.dropped, report.dropped);
  EXPECT_EQ(results.transactions.size(), 20u);

  // Recomputed statistics match the report's.
  const SampleSet latencies = results.CommittedLatencies();
  EXPECT_EQ(latencies.count(), report.committed);
  EXPECT_NEAR(latencies.Mean(), report.avg_latency, 1e-3);
  EXPECT_EQ(results.CommittedPerSecond().TotalCount(), report.committed);
}

TEST(AnalysisTest, CsvRoundTrip) {
  const TxStore txs = MakeStore();
  std::ostringstream out;
  WriteResultsCsv(out, txs);
  const LoadResult loaded = LoadResultsCsv(out.str());
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.results.submitted, 20u);
  EXPECT_EQ(loaded.results.committed, 16u);
  EXPECT_EQ(loaded.results.dropped, 4u);
  EXPECT_NEAR(loaded.results.CommittedLatencies().Mean(), 2.5, 0.01);
}

TEST(AnalysisTest, CsvErrors) {
  EXPECT_FALSE(LoadResultsCsv("").ok);
  EXPECT_FALSE(LoadResultsCsv("bad,header,row\n").ok);
  EXPECT_FALSE(LoadResultsCsv("submit_time,latency,status\n1,2\n").ok);
  EXPECT_FALSE(LoadResultsCsv("submit_time,latency,status\nx,2,committed\n").ok);
}

TEST(AnalysisTest, CompareRendersRows) {
  LoadedResults a;
  a.chain = "quorum";
  a.deployment = "testnet";
  a.workload = "uber";
  a.submitted = 100;
  a.committed = 90;
  a.avg_throughput = 550.0;
  a.avg_latency = 3.25;
  LoadedResults b;
  b.chain = "solana";
  b.submitted = 100;
  b.committed = 0;
  const std::string table = CompareRuns({a, b});
  EXPECT_NE(table.find("quorum"), std::string::npos);
  EXPECT_NE(table.find("550.0"), std::string::npos);
  EXPECT_NE(table.find("90.0%"), std::string::npos);
  EXPECT_NE(table.find("solana"), std::string::npos);
}

}  // namespace
}  // namespace diablo
