#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/chains/chain_factory.h"
#include "src/chains/params.h"
#include "src/chains/registry.h"

namespace diablo {
namespace {

// Minimal submission driver: constant-rate native transfers straight into
// the chain's endpoints (the full diablo primary/secondary path is exercised
// by the core tests).
class Driver {
 public:
  Driver(const ChainParams& params, const std::string& deployment, uint64_t seed)
      : sim_(seed), net_(&sim_) {
    chain_ = BuildChainFromParams(params, GetDeployment(deployment), &sim_, &net_);
  }

  void SubmitConstant(double tps, int seconds, int accounts = 200) {
    ChainContext& ctx = chain_->context();
    const int n = ctx.node_count();
    uint32_t seq = 0;
    for (int s = 0; s < seconds; ++s) {
      const int count = static_cast<int>(tps);
      for (int i = 0; i < count; ++i) {
        Transaction tx;
        tx.account = seq % static_cast<uint32_t>(accounts);
        tx.sequence = seq;
        tx.gas = NativeTransferGas(ctx.params().dialect);
        tx.size_bytes = kNativeTransferBytes;
        const SimTime when =
            Seconds(s) + Milliseconds(static_cast<int64_t>(1000.0 * i / count));
        tx.submit_time = when;
        const TxId id = ctx.txs().Add(tx);
        const int endpoint = static_cast<int>(seq % static_cast<uint32_t>(n));
        sim_.ScheduleAt(when, [&ctx, id, endpoint] {
          ctx.SubmitAtEndpoint(id, endpoint, ctx.sim()->Now());
        });
        ++seq;
      }
    }
    submitted_ += static_cast<size_t>(seconds) * static_cast<size_t>(tps);
  }

  void Run(int horizon_seconds) {
    chain_->Start();
    sim_.RunUntil(Seconds(horizon_seconds));
  }

  size_t submitted() const { return submitted_; }

  size_t Committed() const {
    return chain_->context().txs().PhaseCounts()[static_cast<size_t>(TxPhase::kCommitted)];
  }

  size_t Dropped() const {
    return chain_->context().txs().PhaseCounts()[static_cast<size_t>(TxPhase::kDropped)];
  }

  // Committed transactions per second of active commit span (avoids counting
  // post-workload drain as instantaneous throughput).
  double Throughput() const {
    const TxStore& txs = chain_->context().txs();
    SimTime last_commit = 0;
    size_t count = 0;
    for (TxId id = 0; id < txs.size(); ++id) {
      const Transaction& tx = txs.at(id);
      if (tx.phase == TxPhase::kCommitted) {
        last_commit = std::max(last_commit, tx.commit_time);
        ++count;
      }
    }
    return last_commit <= 0 ? 0.0
                            : static_cast<double>(count) / ToSeconds(last_commit);
  }

  double AvgLatency() const {
    const TxStore& txs = chain_->context().txs();
    double sum = 0;
    size_t count = 0;
    for (TxId id = 0; id < txs.size(); ++id) {
      const Transaction& tx = txs.at(id);
      if (tx.phase == TxPhase::kCommitted) {
        sum += tx.LatencySeconds();
        ++count;
      }
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  ChainContext& ctx() { return chain_->context(); }

 private:
  Simulation sim_;
  Network net_;
  std::unique_ptr<ChainInstance> chain_;
  size_t submitted_ = 0;
};

class AllChainsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllChainsTest, CommitsModestLoadOnTestnet) {
  Driver driver(GetChainParams(GetParam()), "testnet", 42);
  driver.SubmitConstant(/*tps=*/50, /*seconds=*/20);
  driver.Run(/*horizon_seconds=*/90);
  EXPECT_GE(driver.Committed(), driver.submitted() * 8 / 10)
      << GetParam() << " committed " << driver.Committed() << "/" << driver.submitted();
  EXPECT_GT(driver.AvgLatency(), 0.0);
  EXPECT_GT(driver.ctx().stats().blocks_produced, 0u);
}

TEST_P(AllChainsTest, LatencyRespectsSubmitOrder) {
  Driver driver(GetChainParams(GetParam()), "testnet", 7);
  driver.SubmitConstant(20, 10);
  driver.Run(90);
  const TxStore& txs = driver.ctx().txs();
  for (TxId id = 0; id < txs.size(); ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase == TxPhase::kCommitted) {
      EXPECT_GT(tx.commit_time, tx.submit_time);
    }
  }
}

TEST_P(AllChainsTest, DeterministicAcrossSeeds) {
  auto run = [&](uint64_t seed) {
    Driver driver(GetChainParams(GetParam()), "devnet", seed);
    driver.SubmitConstant(30, 10);
    driver.Run(60);
    return std::make_pair(driver.Committed(), driver.ctx().stats().blocks_produced);
  };
  EXPECT_EQ(run(123), run(123));
}

INSTANTIATE_TEST_SUITE_P(SixChains, AllChainsTest,
                         ::testing::Values("algorand", "avalanche", "diem", "quorum",
                                           "ethereum", "solana"));

TEST(SolanaTest, ThirtyConfirmationLatencyFloor) {
  Driver driver(GetChainParams("solana"), "testnet", 5);
  driver.SubmitConstant(100, 10);
  driver.Run(60);
  // 30 confirmations at 400 ms slots puts a ~12 s floor under latency (§5.2).
  EXPECT_GE(driver.AvgLatency(), 12.0);
  EXPECT_LE(driver.AvgLatency(), 16.0);
}

TEST(SolanaTest, SlotCadenceIndependentOfLoad) {
  Driver idle(GetChainParams("solana"), "testnet", 5);
  idle.Run(20);
  Driver busy(GetChainParams("solana"), "testnet", 5);
  busy.SubmitConstant(1000, 15);
  busy.Run(20);
  // PoH keeps ticking: block (slot) production rate is load-independent.
  EXPECT_NEAR(static_cast<double>(idle.ctx().stats().blocks_produced),
              static_cast<double>(busy.ctx().stats().blocks_produced), 2.0);
}

TEST(DiemTest, LowLatencyOnLan) {
  Driver driver(GetChainParams("diem"), "datacenter", 5);
  driver.SubmitConstant(500, 10);
  driver.Run(60);
  // §6.2: Diem reaches its lowest latencies (~2 s) on single-datacenter
  // deployments.
  EXPECT_GE(driver.Committed(), driver.submitted() * 9 / 10);
  EXPECT_LT(driver.AvgLatency(), 2.5);
}

TEST(DiemTest, DegradedOnLargeWanDeployment) {
  // §6.2/§6.6: Diem is designed for low-RTT networks; the leader's direct
  // broadcast to 200 geo-distributed validators throttles both throughput
  // and latency on the community configuration.
  Driver lan(GetChainParams("diem"), "datacenter", 5);
  lan.SubmitConstant(1000, 10);
  lan.Run(90);
  Driver wan(GetChainParams("diem"), "community", 5);
  wan.SubmitConstant(1000, 10);
  wan.Run(90);
  EXPECT_GT(wan.AvgLatency(), 2.0 * lan.AvgLatency());
  EXPECT_LT(wan.Throughput(), 0.6 * lan.Throughput());
}

TEST(DiemTest, PerSignerCapDropsBursts) {
  // One signer floods: the 100-tx per-signer cap rejects the excess (§5.2).
  Driver driver(GetChainParams("diem"), "testnet", 5);
  driver.SubmitConstant(1500, 3, /*accounts=*/1);
  driver.Run(60);
  EXPECT_GT(driver.Dropped(), 0u);
}

TEST(QuorumTest, CollapsesUnderSustainedOverload) {
  // §6.3: Quorum's never-drop pool grows until the leader cannot assemble a
  // proposal within the round timeout; throughput goes to zero. Scaled-down
  // parameters keep the test fast.
  ChainParams params = GetChainParams("quorum");
  params.proposal_overhead_per_pending_tx = Milliseconds(2);
  params.round_timeout = Seconds(2);
  params.max_block_txs = 100;
  Driver driver(params, "testnet", 5);
  driver.SubmitConstant(500, 20);
  driver.Run(60);
  EXPECT_GT(driver.ctx().stats().view_changes, 0u);
  EXPECT_LT(driver.Committed(), driver.submitted() / 2);
}

TEST(QuorumTest, NeverDropsAtAdmission) {
  Driver driver(GetChainParams("quorum"), "testnet", 5);
  driver.SubmitConstant(2000, 5);
  driver.Run(30);
  // Unbounded pool: nothing is rejected on arrival.
  EXPECT_EQ(driver.ctx().mempool().rejected(), 0u);
  EXPECT_EQ(driver.Dropped(), 0u);
}

TEST(EthereumTest, ConfirmationDepthDelaysFinality) {
  Driver driver(GetChainParams("ethereum"), "testnet", 5);
  driver.SubmitConstant(50, 10);
  driver.Run(120);
  // 6 confirmations at a 5 s period: at least ~30 s before commit.
  EXPECT_GE(driver.AvgLatency(), 30.0);
}

TEST(EthereumTest, PoolCapDropsFlood) {
  Driver driver(GetChainParams("ethereum"), "testnet", 5);
  driver.SubmitConstant(5000, 5);
  driver.Run(60);
  // 25k offered against a 5120-entry pool draining ~300 TPS: most rejected.
  EXPECT_GT(driver.Dropped(), driver.submitted() / 2);
}

TEST(AvalancheTest, ThroughputCappedByBlockGas) {
  Driver driver(GetChainParams("avalanche"), "testnet", 5);
  driver.SubmitConstant(600, 20);
  driver.Run(120);
  // 8M gas / 21k-gas transfers / 1.9 s >= period: ~200 TPS ceiling (§6.2).
  const double tput = driver.Throughput();
  EXPECT_LT(tput, 280.0);
  EXPECT_GT(tput, 120.0);
}

TEST(AlgorandTest, RoundTimeFloorsLatency) {
  Driver driver(GetChainParams("algorand"), "testnet", 5);
  driver.SubmitConstant(100, 10);
  driver.Run(90);
  // BA* step timers put a multi-second floor under every commit.
  EXPECT_GE(driver.AvgLatency(), 2.0);
  EXPECT_GE(driver.Committed(), driver.submitted() * 8 / 10);
}

TEST(RegistryTest, ClaimedFiguresPresent) {
  EXPECT_EQ(ClaimedFigures().size(), 3u);
  ASSERT_NE(FindClaim("solana"), nullptr);
  EXPECT_EQ(FindClaim("solana")->claimed_throughput, "200K TPS");
  EXPECT_EQ(FindClaim("bitcoin"), nullptr);
}

TEST(FactoryTest, BuildsAllSixChains) {
  Simulation sim(1);
  Network net(&sim);
  for (const std::string& name : AllChainNames()) {
    const auto chain = BuildChain(name, GetDeployment("testnet"), &sim, &net);
    ASSERT_NE(chain, nullptr) << name;
    EXPECT_EQ(chain->params().name, name);
  }
  EXPECT_THROW(BuildChain("bitcoin", GetDeployment("testnet"), &sim, &net),
               std::invalid_argument);
}

}  // namespace
}  // namespace diablo
