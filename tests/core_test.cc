#include <gtest/gtest.h>

#include <sstream>

#include "src/config/spec.h"
#include "src/core/interface.h"
#include "src/core/parallel_runner.h"
#include "src/core/results.h"
#include "src/core/runner.h"

namespace diablo {
namespace {

TEST(ConnectorTest, FourPortingFunctions) {
  Simulation sim(1);
  Network net(&sim);
  const auto chain = BuildChain("quorum", GetDeployment("testnet"), &sim, &net);
  SimConnector connector(chain.get());

  // create_resource: accounts.
  ResourceSpec accounts_spec;
  accounts_spec.kind = ResourceSpec::Kind::kAccounts;
  accounts_spec.account_count = 10;
  Resource accounts;
  ASSERT_TRUE(connector.CreateResource(accounts_spec, &accounts));
  EXPECT_EQ(accounts.account_count, 10);

  // create_resource: contract.
  ResourceSpec contract_spec;
  contract_spec.kind = ResourceSpec::Kind::kContract;
  contract_spec.contract_name = "counter";
  Resource contract;
  ASSERT_TRUE(connector.CreateResource(contract_spec, &contract));
  EXPECT_GE(contract.contract_index, 0);

  contract_spec.contract_name = "not-a-contract";
  Resource bogus;
  EXPECT_FALSE(connector.CreateResource(contract_spec, &bogus));

  // encode.
  InteractionSpec invoke;
  invoke.type = InteractionSpec::Type::kInvoke;
  invoke.contract_index = contract.contract_index;
  invoke.function = "add";
  const TxId encoded = connector.Encode(invoke, accounts, Seconds(1));
  const Transaction& tx = chain->context().txs().at(encoded);
  EXPECT_GT(tx.gas, 0);
  EXPECT_GT(tx.size_bytes, 0);
  EXPECT_LT(tx.account, 10u);

  // create_client + trigger.
  auto client = connector.CreateClient(Region::kOhio, {0});
  ASSERT_NE(client, nullptr);
  client->Trigger(encoded, Seconds(1));
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(chain->context().txs().at(encoded).phase, TxPhase::kSubmitted);
  EXPECT_EQ(chain->context().mempool().size(), 1u);
}

TEST(ConnectorTest, ReadOnlyQueriesSkipConsensus) {
  Simulation sim(1);
  Network net(&sim);
  const auto chain = BuildChain("quorum", GetDeployment("testnet"), &sim, &net);
  SimConnector connector(chain.get());
  ResourceSpec accounts_spec;
  accounts_spec.kind = ResourceSpec::Kind::kAccounts;
  accounts_spec.account_count = 5;
  Resource accounts;
  connector.CreateResource(accounts_spec, &accounts);
  ResourceSpec contract_spec;
  contract_spec.kind = ResourceSpec::Kind::kContract;
  contract_spec.contract_name = "exchange";
  Resource contract;
  ASSERT_TRUE(connector.CreateResource(contract_spec, &contract));

  // checkStock is a query: answered by the endpoint without a block.
  InteractionSpec query;
  query.type = InteractionSpec::Type::kQuery;
  query.contract_index = contract.contract_index;
  query.function = "check_stock";
  query.args = {1};
  const TxId q = connector.Encode(query, accounts, Seconds(1));
  const auto client = connector.CreateClient(Region::kOhio, {0});
  client->Trigger(q, Seconds(1));
  sim.RunUntil(Seconds(5));

  ChainContext& ctx = chain->context();
  const Transaction& tx = ctx.txs().at(q);
  EXPECT_TRUE(tx.read_only);
  EXPECT_EQ(tx.phase, TxPhase::kCommitted);
  // Round trip + execution, orders of magnitude below block latency.
  EXPECT_LT(tx.LatencySeconds(), 0.1);
  EXPECT_EQ(ctx.mempool().size(), 0u);     // never pooled
  EXPECT_EQ(ctx.stats().blocks_produced, 0u);  // chain not even started
}

TEST(ConnectorTest, EncodeRotatesAccounts) {
  Simulation sim(1);
  Network net(&sim);
  const auto chain = BuildChain("quorum", GetDeployment("testnet"), &sim, &net);
  SimConnector connector(chain.get());
  ResourceSpec spec;
  spec.kind = ResourceSpec::Kind::kAccounts;
  spec.account_count = 3;
  Resource accounts;
  connector.CreateResource(spec, &accounts);
  InteractionSpec transfer;
  const TxId a = connector.Encode(transfer, accounts, 0);
  const TxId b = connector.Encode(transfer, accounts, 0);
  const TxId c = connector.Encode(transfer, accounts, 0);
  const TxId d = connector.Encode(transfer, accounts, 0);
  const TxStore& txs = chain->context().txs();
  EXPECT_NE(txs.at(a).account, txs.at(b).account);
  EXPECT_NE(txs.at(b).account, txs.at(c).account);
  EXPECT_EQ(txs.at(a).account, txs.at(d).account);
}

TEST(RunnerTest, QuickstartNativeRun) {
  // The artifact's first experiment: a light native-transfer workload.
  const RunResult result = RunNativeBenchmark("algorand", "testnet", 10, 20);
  EXPECT_FALSE(result.unsupported);
  EXPECT_EQ(result.report.submitted, 200u);
  EXPECT_GT(result.report.committed, 150u);
  EXPECT_GT(result.report.avg_latency, 0.0);
  EXPECT_GT(result.chain_stats.blocks_produced, 0u);
}

TEST(RunnerTest, DappRunOnQuorum) {
  const RunResult result = RunDappBenchmark("quorum", "testnet", "fifa", 1, 0.02);
  EXPECT_FALSE(result.unsupported);
  EXPECT_TRUE(result.failure_reason.empty());
  EXPECT_GT(result.report.committed, result.report.submitted / 2);
}

TEST(RunnerTest, YoutubeUnsupportedOnAlgorand) {
  // §5.2: the video sharing DApp has no TEAL implementation.
  const RunResult result = RunDappBenchmark("algorand", "testnet", "youtube", 1, 0.001);
  EXPECT_TRUE(result.unsupported);
  EXPECT_EQ(result.report.submitted, 0u);
}

TEST(RunnerTest, UberBudgetExceededOnCappedChains) {
  // §6.4 / Fig. 5: Algorand, Diem and Solana cannot run the mobility DApp.
  for (const char* chain : {"algorand", "diem", "solana"}) {
    const RunResult result = RunDappBenchmark(chain, "testnet", "uber", 1, 0.01);
    EXPECT_FALSE(result.unsupported) << chain;
    EXPECT_EQ(result.failure_reason, "budget exceeded") << chain;
    EXPECT_EQ(result.report.committed, 0u) << chain;
    EXPECT_GT(result.report.aborted, 0u) << chain;
  }
  const RunResult quorum = RunDappBenchmark("quorum", "testnet", "uber", 1, 0.01);
  EXPECT_TRUE(quorum.failure_reason.empty());
  EXPECT_GT(quorum.report.committed, 0u);
}

TEST(RunnerTest, ScaleShrinksSubmissions) {
  const RunResult full = RunNativeBenchmark("solana", "testnet", 100, 10, 1, 1.0);
  const RunResult tenth = RunNativeBenchmark("solana", "testnet", 100, 10, 1, 0.1);
  EXPECT_EQ(full.report.submitted, 1000u);
  EXPECT_EQ(tenth.report.submitted, 100u);
}

TEST(RunnerTest, PerStockWorkloads) {
  const RunResult result = RunDappBenchmark("quorum", "testnet", "google", 1, 0.1);
  EXPECT_EQ(result.report.workload, "google");
  EXPECT_GT(result.report.submitted, 0u);
}

TEST(RunnerTest, ScaleFromEnvParsesAndClamps) {
  unsetenv("DIABLO_SCALE");
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  setenv("DIABLO_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 0.25);
  setenv("DIABLO_SCALE", "7", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  setenv("DIABLO_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  unsetenv("DIABLO_SCALE");
}

TEST(RunnerTest, PoolThreadsForSplitsJobsBeforeCellClamp) {
  // No intra-cell workers: the pool takes min(jobs, cells), as before.
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(8, 0, 16), 8);
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(8, 1, 3), 3);
  // The job budget is divided by the per-cell worker count *before* the cell
  // clamp: 3 cells on a 16-thread budget with 4 workers each afford all
  // three cells in flight (the old clamp-first order ran one at a time).
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(16, 4, 3), 3);
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(16, 4, 16), 4);
  // Rounding never oversubscribes: pool × workers stays within the budget.
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(7, 2, 16), 3);
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(9, 4, 16), 2);
  // Floor of one cell in flight, even when a single cell's workers already
  // exceed the budget (cell workers are a separate knob the runner cannot
  // shrink).
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(2, 4, 16), 1);
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(1, 64, 1), 1);
  // Degenerate cell counts clamp sanely.
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(8, 2, 0), 1);
  EXPECT_EQ(ParallelRunner::PoolThreadsFor(8, 2, 1), 1);
}

TEST(PrimaryTest, SpecDrivenRun) {
  const SpecResult spec = ParseWorkloadSpec(R"(workloads:
  - number: 2
    client:
      behavior:
        - interaction: !invoke
            from: { sample: !account { number: 100 } }
            contract: { sample: !contract { name: "counter" } }
            function: "add"
          load:
            0: 10
            10: 0
)");
  ASSERT_TRUE(spec.ok) << spec.error;
  BenchmarkSetup setup;
  setup.chain = "quorum";
  setup.deployment = "testnet";
  Primary primary(setup);
  const RunResult result = primary.RunSpec(spec.spec);
  EXPECT_EQ(result.report.submitted, 200u);  // 2 clients x 10 TPS x 10 s
  EXPECT_GT(result.report.committed, 150u);
}

TEST(PrimaryTest, MultiBehaviorSpecRunsEveryStream) {
  // Two groups: one invokes the counter DApp, one sends native transfers;
  // both must be scheduled and accounted.
  const SpecResult spec = ParseWorkloadSpec(R"yaml(workloads:
  - number: 1
    client:
      location: { sample: !location [ "ohio" ] }
      behavior:
        - interaction: !invoke
            from: { sample: !account { number: 50 } }
            contract: { sample: !contract { name: "counter" } }
            function: "add"
          load:
            0: 20
            10: 0
  - number: 2
    client:
      behavior:
        - interaction: !transfer
          load:
            0: 15
            10: 0
)yaml");
  ASSERT_TRUE(spec.ok) << spec.error;
  ASSERT_EQ(spec.spec.groups.size(), 2u);
  BenchmarkSetup setup;
  setup.chain = "quorum";
  setup.deployment = "testnet";
  Primary primary(setup);
  const RunResult result = primary.RunSpec(spec.spec);
  // 1 client x 20 TPS x 10 s + 2 clients x 15 TPS x 10 s.
  EXPECT_EQ(result.report.submitted, 200u + 300u);
  EXPECT_GT(result.report.committed, 400u);
  EXPECT_TRUE(result.failure_reason.empty());
}

TEST(PrimaryTest, EndpointViewPatternsResolve) {
  // A ".*" view makes every client round-robin over all nodes; an explicit
  // index pins it. Both must run to completion with full accounting.
  BenchmarkSetup setup;
  setup.chain = "quorum";
  setup.deployment = "testnet";
  Primary primary(setup);
  WorkStream all_nodes;
  all_nodes.trace = ConstantTrace(40, 5);
  all_nodes.endpoints = {".*"};
  WorkStream pinned;
  pinned.trace = ConstantTrace(10, 5);
  pinned.endpoints = {"3"};
  const RunResult result = primary.RunStreams({all_nodes, pinned}, "views");
  EXPECT_EQ(result.report.submitted, 200u + 50u);
  EXPECT_GT(result.report.committed, 200u);
}

TEST(PrimaryTest, StreamsApiMixesDappsAndNative) {
  BenchmarkSetup setup;
  setup.chain = "solana";
  setup.deployment = "testnet";
  Primary primary(setup);
  WorkStream dapp;
  dapp.trace = ConstantTrace(10, 5);
  dapp.contract = "counter";
  dapp.fixed = Invocation{"add", {}};
  WorkStream native;
  native.trace = ConstantTrace(30, 5);
  native.locations = {Region::kTokyo};
  const RunResult result =
      primary.RunStreams({dapp, native}, "mixed");
  EXPECT_EQ(result.report.submitted, 50u + 150u);
  EXPECT_GT(result.report.committed, 150u);
  EXPECT_EQ(result.report.workload, "mixed");
}

TEST(PrimaryTest, DiemAccountRestrictionOnLargeDeployments) {
  // §5.2: Diem community/consortium runs used only 130 accounts. Observable
  // through per-signer mempool pressure; here just ensure the run completes
  // and transactions stay within 130 accounts.
  BenchmarkSetup setup;
  setup.chain = "diem";
  setup.deployment = "community";
  setup.accounts = 2000;
  setup.drain = Seconds(30);
  Primary primary(setup);
  const RunResult result = primary.RunNative(ConstantTrace(20, 5));
  EXPECT_GT(result.report.submitted, 0u);
  // No way to read accounts directly from the report; the restriction is
  // observable via the setup — keep this as a smoke test.
}

TEST(ReportTest, PendingAfterHorizon) {
  TxStore txs;
  Transaction tx;
  tx.submit_time = Seconds(1);
  tx.commit_time = Seconds(5);
  tx.phase = TxPhase::kCommitted;
  txs.Add(tx);
  tx.commit_time = Seconds(50);
  txs.Add(tx);  // commits after the horizon -> pending
  tx.phase = TxPhase::kDropped;
  txs.Add(tx);
  tx.phase = TxPhase::kAborted;
  txs.Add(tx);
  tx.phase = TxPhase::kCreated;
  txs.Add(tx);  // never submitted -> ignored

  const Report report = BuildReport(txs, Seconds(10), "x", "y", "z", 10.0);
  EXPECT_EQ(report.submitted, 4u);
  EXPECT_EQ(report.committed, 1u);
  EXPECT_EQ(report.pending, 1u);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.aborted, 1u);
  EXPECT_DOUBLE_EQ(report.commit_ratio, 0.25);
  EXPECT_DOUBLE_EQ(report.avg_latency, 4.0);
  EXPECT_NE(report.ToText().find("committed:    1"), std::string::npos);
}

TEST(ResultsTest, JsonAndCsvOutput) {
  TxStore txs;
  Transaction tx;
  tx.submit_time = Seconds(1);
  tx.commit_time = Seconds(3);
  tx.phase = TxPhase::kCommitted;
  txs.Add(tx);
  tx.phase = TxPhase::kDropped;
  tx.commit_time = -1;
  txs.Add(tx);

  const Report report = BuildReport(txs, Seconds(100), "quorum", "testnet", "t", 10.0);
  const std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"chain\": \"quorum\""), std::string::npos);
  EXPECT_NE(json.find("\"committed\": 1"), std::string::npos);

  std::ostringstream full;
  WriteResultsJson(full, report, txs);
  EXPECT_NE(full.str().find("\"transactions\""), std::string::npos);
  EXPECT_NE(full.str().find("\"status\": \"dropped\""), std::string::npos);

  std::ostringstream csv;
  WriteResultsCsv(csv, txs);
  EXPECT_NE(csv.str().find("submit_time,latency,status"), std::string::npos);
  EXPECT_NE(csv.str().find("committed"), std::string::npos);

  // Cap on per-transaction records.
  std::ostringstream capped;
  WriteResultsJson(capped, report, txs, /*max_txs=*/1);
  EXPECT_EQ(capped.str().find("dropped", capped.str().find("transactions")),
            std::string::npos);
}

TEST(DeterminismTest, FullRunReproducible) {
  const RunResult a = RunNativeBenchmark("solana", "devnet", 200, 10, 77);
  const RunResult b = RunNativeBenchmark("solana", "devnet", 200, 10, 77);
  EXPECT_EQ(a.report.committed, b.report.committed);
  EXPECT_DOUBLE_EQ(a.report.avg_latency, b.report.avg_latency);
  const RunResult c = RunNativeBenchmark("solana", "devnet", 200, 10, 78);
  // A different seed perturbs jitter; latency will not be bit-identical.
  EXPECT_NE(a.report.avg_latency, c.report.avg_latency);
}

}  // namespace
}  // namespace diablo
