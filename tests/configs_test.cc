// The shipped configuration files (configs/) must stay parseable and
// runnable — they are the artifact's workload-native-10 / workload-contract
// experiments (§A.3/§A.4) plus the paper's §4 example.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/config/spec.h"
#include "src/core/primary.h"
#include "src/crypto/sha256.h"
#include "src/support/check.h"
#include "src/workload/trace.h"

namespace diablo {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// Tests run from build/tests; the configs live at the repository root.
std::string ConfigPath(const std::string& name) {
  for (const char* prefix : {"../../configs/", "configs/", "../configs/"}) {
    std::ifstream probe(prefix + name);
    if (probe) {
      return prefix + name;
    }
  }
  return "configs/" + name;
}

class ShippedConfigTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ShippedConfigTest, ParsesAndAggregates) {
  const SpecResult result = ParseWorkloadSpec(ReadFile(ConfigPath(GetParam())));
  ASSERT_TRUE(result.ok) << GetParam() << ": " << result.error;
  EXPECT_FALSE(result.spec.groups.empty());
  EXPECT_GT(result.spec.ToTrace().TotalTxs(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFiles, ShippedConfigTest,
                         ::testing::Values("workload-native-10.yaml",
                                           "workload-native-100.yaml",
                                           "workload-native-10000.yaml",
                                           "workload-contract-10.yaml",
                                           "workload-dota.yaml",
                                           "workload-uber.yaml",
                                           "workload-faults.yaml",
                                           "workload-byzantine.yaml"));

TEST(ShippedConfigTest, ArtifactExperimentE1RunsAtBothRates) {
  // E1 (§A.4): the 10 TPS and 100 TPS native workloads produce different
  // results on the same chain — the experimental setting matters.
  BenchmarkSetup setup;
  setup.chain = "algorand";
  setup.deployment = "testnet";
  Primary primary(setup);

  const SpecResult ten =
      ParseWorkloadSpec(ReadFile(ConfigPath("workload-native-10.yaml")));
  const SpecResult hundred =
      ParseWorkloadSpec(ReadFile(ConfigPath("workload-native-100.yaml")));
  ASSERT_TRUE(ten.ok && hundred.ok);
  const RunResult low = primary.RunSpec(ten.spec);
  const RunResult high = primary.RunSpec(hundred.spec);
  EXPECT_EQ(low.report.submitted, 300u);
  EXPECT_EQ(high.report.submitted, 3000u);
  EXPECT_GT(high.report.avg_throughput, 2.0 * low.report.avg_throughput);
}

TEST(ShippedConfigTest, ArtifactExperimentE2BudgetExceeded) {
  // E2 (§A.4): the Uber workload fails with "budget exceeded" on Solana.
  const SpecResult spec =
      ParseWorkloadSpec(ReadFile(ConfigPath("workload-uber.yaml")));
  ASSERT_TRUE(spec.ok) << spec.error;
  BenchmarkSetup setup;
  setup.chain = "solana";
  setup.deployment = "testnet";
  setup.scale = 0.02;
  Primary primary(setup);
  const RunResult result = primary.RunSpec(spec.spec);
  EXPECT_EQ(result.failure_reason, "budget exceeded");
  EXPECT_EQ(result.report.committed, 0u);
}

TEST(ShippedConfigTest, FaultWorkloadRunsEndToEnd) {
  // The shipped fault scenario parses, adopts its schedule into the run,
  // and reports resilience metrics for both heal instants.
  const SpecResult spec =
      ParseWorkloadSpec(ReadFile(ConfigPath("workload-faults.yaml")));
  ASSERT_TRUE(spec.ok) << spec.error;
  ASSERT_EQ(spec.spec.faults.events.size(), 3u);
  BenchmarkSetup setup;
  setup.chain = "quorum";
  setup.deployment = "testnet";
  setup.retry.max_attempts = 3;
  setup.retry.timeout = Seconds(1);
  Primary primary(setup);
  const RunResult result = primary.RunSpec(spec.spec);
  ASSERT_TRUE(result.failure_reason.empty()) << result.failure_reason;
  EXPECT_TRUE(result.report.resilience);
  EXPECT_GT(result.report.committed, 0u);
  // crash restart @25, partition heal @45, loss window end @55.
  ASSERT_EQ(result.report.recoveries.size(), 3u);
  EXPECT_GE(result.report.recoveries[0], 0.0);
  EXPECT_GE(result.report.recoveries[1], 0.0);
  EXPECT_GE(result.report.recoveries[2], 0.0);
}

TEST(ShippedConfigTest, ByzantineWorkloadRunsEndToEnd) {
  // The shipped Byzantine scenario parses, arms its adversaries, and
  // reports the malicious-behavior evidence counters — while the chain
  // keeps committing (the adversaries here are always a minority).
  const SpecResult spec =
      ParseWorkloadSpec(ReadFile(ConfigPath("workload-byzantine.yaml")));
  ASSERT_TRUE(spec.ok) << spec.error;
  ASSERT_EQ(spec.spec.faults.events.size(), 4u);
  for (const FaultEvent& event : spec.spec.faults.events) {
    EXPECT_TRUE(IsByzantine(event.kind)) << FaultKindName(event.kind);
  }
  BenchmarkSetup setup;
  setup.chain = "quorum";
  setup.deployment = "testnet";
  setup.retry.max_attempts = 3;
  setup.retry.timeout = Seconds(1);
  Primary primary(setup);
  const RunResult result = primary.RunSpec(spec.spec);
  ASSERT_TRUE(result.failure_reason.empty()) << result.failure_reason;
  EXPECT_TRUE(result.report.byzantine);
  EXPECT_GT(result.report.committed, 0u);
  // The equivocating leader forced view changes; the double-voting window
  // left evidence; the censor and lazy windows touched transactions.
  EXPECT_GT(result.report.equivocations_seen, 0u);
  EXPECT_GT(result.report.double_votes_seen, 0u);
  EXPECT_GT(result.report.txs_censored, 0u);
  EXPECT_GT(result.report.lazy_proposals, 0u);
}

TEST(ShippedConfigTest, ByzantineGoldenReportIsStable) {
  // The rendered report of the shipped Byzantine scenario is pinned: the
  // adversary resolution, every defense path, and the evidence counters
  // are deterministic, and the checked build's safety invariant must not
  // perturb any of it (the same constant holds with kCheckedBuild on).
  const SpecResult spec =
      ParseWorkloadSpec(ReadFile(ConfigPath("workload-byzantine.yaml")));
  ASSERT_TRUE(spec.ok) << spec.error;
  BenchmarkSetup setup;
  setup.chain = "quorum";
  setup.deployment = "testnet";
  setup.retry.max_attempts = 3;
  setup.retry.timeout = Seconds(1);
  Primary primary(setup);
  const RunResult result = primary.RunSpec(spec.spec);
  ASSERT_TRUE(result.failure_reason.empty()) << result.failure_reason;
  const std::string digest = DigestHex(Sha256Digest(result.report.ToText()));
  EXPECT_EQ(digest,
            "4437e9586a1e3d357b829327b7c70e89e9ceaaa52d4083504786957309a57944")
      << "Byzantine report text changed; if intentional, update the golden "
         "hash (kCheckedBuild=" << kCheckedBuild << ")";
}

TEST(ShippedConfigTest, CheckedBuildDoesNotPerturbResults) {
  // The DIABLO_CHECKED invariants must be pure observers: the rendered
  // report of a reference run hashes to the same constant whether or not the
  // checks are compiled in. The constant below was produced by an unchecked
  // build; a checked build runs this same test and must reproduce it, so any
  // check that draws from an Rng, reorders events, or mutates state breaks
  // this test in exactly one of the two CI configurations.
  const SpecResult spec =
      ParseWorkloadSpec(ReadFile(ConfigPath("workload-native-10.yaml")));
  ASSERT_TRUE(spec.ok) << spec.error;
  BenchmarkSetup setup;
  setup.chain = "algorand";
  setup.deployment = "testnet";
  Primary primary(setup);
  const RunResult result = primary.RunSpec(spec.spec);
  ASSERT_TRUE(result.failure_reason.empty()) << result.failure_reason;
  const std::string digest = DigestHex(Sha256Digest(result.report.ToText()));
  EXPECT_EQ(digest,
            "a59ebe9091ff08e84e38855b5b020655604cb9872ab61a82f73f493f1aca56cb")
      << "report text changed; if intentional, update the golden hash "
         "(kCheckedBuild=" << kCheckedBuild << ")";
}

TEST(TraceCsvTest, RoundTrip) {
  const Trace original = UberTrace();
  Trace parsed;
  ASSERT_TRUE(TraceFromCsv(TraceToCsv(original), &parsed));
  ASSERT_EQ(parsed.tps.size(), original.tps.size());
  for (size_t s = 0; s < original.tps.size(); ++s) {
    EXPECT_NEAR(parsed.tps[s], original.tps[s], 0.001);
  }
}

TEST(TraceCsvTest, GapsFillWithZero) {
  Trace trace;
  ASSERT_TRUE(TraceFromCsv("0,100\n3,50\n", &trace));
  ASSERT_EQ(trace.tps.size(), 4u);
  EXPECT_DOUBLE_EQ(trace.tps[0], 100.0);
  EXPECT_DOUBLE_EQ(trace.tps[1], 0.0);
  EXPECT_DOUBLE_EQ(trace.tps[3], 50.0);
}

TEST(TraceCsvTest, HeaderToleratedErrorsRejected) {
  Trace trace;
  EXPECT_TRUE(TraceFromCsv("second,tps\n0,10\n", &trace));
  EXPECT_FALSE(TraceFromCsv("", &trace));
  EXPECT_FALSE(TraceFromCsv("a,b,c\n", &trace));
  EXPECT_FALSE(TraceFromCsv("0,-5\n", &trace));
  EXPECT_FALSE(TraceFromCsv("-1,5\n", &trace));
  EXPECT_FALSE(TraceFromCsv("0,xyz\n", &trace));
}

}  // namespace
}  // namespace diablo
