#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "src/net/deployment.h"
#include "src/net/network.h"
#include "src/net/region.h"
#include "src/net/topology.h"

namespace diablo {
namespace {

TEST(RegionTest, NamesRoundTrip) {
  for (int i = 0; i < kRegionCount; ++i) {
    const Region region = static_cast<Region>(i);
    Region parsed;
    ASSERT_TRUE(ParseRegion(RegionName(region), &parsed)) << RegionName(region);
    EXPECT_EQ(parsed, region);
  }
}

TEST(RegionTest, ParseAliases) {
  Region region;
  EXPECT_TRUE(ParseRegion("us-east-2", &region));
  EXPECT_EQ(region, Region::kOhio);
  EXPECT_TRUE(ParseRegion("us-west-2", &region));
  EXPECT_EQ(region, Region::kOregon);
  EXPECT_TRUE(ParseRegion("sao_paulo", &region));
  EXPECT_EQ(region, Region::kSaoPaulo);
  EXPECT_TRUE(ParseRegion("CAPE TOWN", &region));
  EXPECT_EQ(region, Region::kCapeTown);
  EXPECT_FALSE(ParseRegion("atlantis", &region));
}

TEST(TopologyTest, MatchesPaperTable3) {
  // Spot checks straight out of Table 3.
  EXPECT_DOUBLE_EQ(Topology::RttMs(Region::kTokyo, Region::kCapeTown), 354.0);
  EXPECT_DOUBLE_EQ(Topology::RttMs(Region::kCapeTown, Region::kTokyo), 354.0);
  EXPECT_DOUBLE_EQ(Topology::RttMs(Region::kOregon, Region::kOhio), 55.2);
  EXPECT_DOUBLE_EQ(Topology::RttMs(Region::kMilan, Region::kStockholm), 30.2);
  EXPECT_DOUBLE_EQ(Topology::BandwidthMbps(Region::kStockholm, Region::kMilan), 404.6);
  EXPECT_DOUBLE_EQ(Topology::BandwidthMbps(Region::kMumbai, Region::kBahrain), 336.3);
  EXPECT_DOUBLE_EQ(Topology::BandwidthMbps(Region::kOhio, Region::kOregon), 105.0);
}

TEST(TopologyTest, SymmetricMatrices) {
  for (int i = 0; i < kRegionCount; ++i) {
    for (int j = 0; j < kRegionCount; ++j) {
      const Region a = static_cast<Region>(i);
      const Region b = static_cast<Region>(j);
      EXPECT_DOUBLE_EQ(Topology::RttMs(a, b), Topology::RttMs(b, a));
      EXPECT_DOUBLE_EQ(Topology::BandwidthMbps(a, b), Topology::BandwidthMbps(b, a));
      if (i != j) {
        EXPECT_GT(Topology::RttMs(a, b), 0.0);
        EXPECT_GT(Topology::BandwidthMbps(a, b), 0.0);
      }
    }
  }
}

TEST(TopologyTest, IntraRegionIsDatacenterClass) {
  EXPECT_DOUBLE_EQ(Topology::RttMs(Region::kOhio, Region::kOhio), 1.0);
  EXPECT_DOUBLE_EQ(Topology::BandwidthMbps(Region::kOhio, Region::kOhio), 10000.0);
}

TEST(TopologyTest, TransmissionDelayScalesWithBytes) {
  const SimDuration one = Topology::TransmissionDelay(Region::kOhio, Region::kOregon, 1000);
  const SimDuration ten = Topology::TransmissionDelay(Region::kOhio, Region::kOregon, 10000);
  EXPECT_NEAR(static_cast<double>(ten), 10.0 * static_cast<double>(one),
              static_cast<double>(one) * 0.01);
  // 1 MB over 105 Mbps is roughly 76 ms.
  const SimDuration mb = Topology::TransmissionDelay(Region::kOhio, Region::kOregon, 1000000);
  EXPECT_NEAR(ToMilliseconds(mb), 76.2, 1.0);
}

TEST(DeploymentTest, PaperConfigurations) {
  const DeploymentConfig dc = GetDeployment("datacenter");
  EXPECT_EQ(dc.node_count, 10);
  EXPECT_EQ(dc.machine.vcpus, 36);
  EXPECT_EQ(dc.machine.memory_gib, 72);
  EXPECT_EQ(dc.regions.size(), 1u);

  const DeploymentConfig community = GetDeployment("community");
  EXPECT_EQ(community.node_count, 200);
  EXPECT_EQ(community.machine.vcpus, 4);
  EXPECT_EQ(community.regions.size(), 10u);

  const DeploymentConfig consortium = GetDeployment("consortium");
  EXPECT_EQ(consortium.node_count, 200);
  EXPECT_EQ(consortium.machine.vcpus, 8);
  EXPECT_EQ(consortium.machine.memory_gib, 16);

  EXPECT_EQ(AllDeployments().size(), 5u);
  EXPECT_THROW(GetDeployment("moonbase"), std::invalid_argument);
}

TEST(DeploymentTest, RoundRobinRegions) {
  const DeploymentConfig devnet = GetDeployment("devnet");
  EXPECT_EQ(devnet.NodeRegion(0), Region::kCapeTown);
  EXPECT_EQ(devnet.NodeRegion(9), Region::kOregon);
  EXPECT_EQ(devnet.NodeRegion(10), Region::kCapeTown);
}

TEST(NetworkTest, SendDeliversAfterDelay) {
  Simulation sim(1);
  Network net(&sim);
  const HostId a = net.AddHost(Region::kOhio);
  const HostId b = net.AddHost(Region::kTokyo);
  SimTime arrival = -1;
  net.Send(a, b, 100, [&] { arrival = sim.Now(); });
  sim.Run();
  // One-way Ohio->Tokyo is at least RTT/2 = 65.9 ms.
  EXPECT_GE(arrival, MillisecondsF(65.9));
  EXPECT_LT(arrival, MillisecondsF(100.0));
}

TEST(NetworkTest, SelfSendIsImmediate) {
  Simulation sim(1);
  Network net(&sim);
  const HostId a = net.AddHost(Region::kOhio);
  EXPECT_EQ(net.DelaySample(a, a, 1000000), 0);
}

TEST(NetworkTest, PartitionDropsMessages) {
  Simulation sim(1);
  Network net(&sim);
  const HostId a = net.AddHost(Region::kOhio);
  const HostId b = net.AddHost(Region::kTokyo);
  net.SetPartitioned(b, true);
  EXPECT_EQ(net.DelaySample(a, b, 10), kUnreachable);
  bool delivered = false;
  net.Send(a, b, 10, [&] { delivered = true; });
  sim.Run();
  EXPECT_FALSE(delivered);
  net.SetPartitioned(b, false);
  net.Send(a, b, 10, [&] { delivered = true; });
  sim.Run();
  EXPECT_TRUE(delivered);
}

TEST(NetworkTest, ExtraDelayInjection) {
  Simulation sim(1);
  Network net(&sim, /*jitter_frac=*/0.0);
  const HostId a = net.AddHost(Region::kOhio);
  const HostId b = net.AddHost(Region::kOregon);
  const SimDuration base = net.DelaySample(a, b, 10);
  net.SetExtraDelay(Region::kOhio, Region::kOregon, Seconds(1));
  const SimDuration delayed = net.DelaySample(a, b, 10);
  EXPECT_EQ(delayed, base + Seconds(1));
  // Updating the same pair overwrites rather than stacking.
  net.SetExtraDelay(Region::kOregon, Region::kOhio, Seconds(2));
  EXPECT_EQ(net.DelaySample(a, b, 10), base + Seconds(2));
}

TEST(NetworkTest, ExtraDelayAppliesBothDirections) {
  // Pins the documented contract: one SetExtraDelay call raises the pair in
  // both directions (the delay matrix stays symmetric).
  Simulation sim(1);
  Network net(&sim, /*jitter_frac=*/0.0);
  const HostId a = net.AddHost(Region::kOhio);
  const HostId b = net.AddHost(Region::kOregon);
  const SimDuration forward = net.DelaySample(a, b, 10);
  const SimDuration reverse = net.DelaySample(b, a, 10);
  net.SetExtraDelay(Region::kOhio, Region::kOregon, Seconds(1));
  EXPECT_EQ(net.DelaySample(a, b, 10), forward + Seconds(1));
  EXPECT_EQ(net.DelaySample(b, a, 10), reverse + Seconds(1));
}

TEST(NetworkTest, SendStatsCountUnreachableDrops) {
  Simulation sim(1);
  Network net(&sim);
  const HostId a = net.AddHost(Region::kOhio);
  const HostId b = net.AddHost(Region::kTokyo);
  net.Send(a, b, 10, [] {});
  EXPECT_EQ(net.stats().sends, 1u);
  EXPECT_EQ(net.stats().unreachable_drops, 0u);
  net.SetPartitioned(b, true);
  net.Send(a, b, 10, [] {});
  EXPECT_EQ(net.stats().sends, 2u);
  EXPECT_EQ(net.stats().unreachable_drops, 1u);
  sim.Run();
}

TEST(NetworkTest, LossWindowDropsAndCounts) {
  Simulation sim(1);
  Network net(&sim);
  const HostId a = net.AddHost(Region::kOhio);
  const HostId b = net.AddHost(Region::kTokyo);
  // Certain loss until t = 10 s; afterwards the link is clean again.
  net.AddLossWindow(0, Seconds(10), 1.0);
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    net.Send(a, b, 10, [&] { ++delivered; });
  }
  bool late_delivered = false;
  sim.ScheduleAt(Seconds(11), [&] {
    net.Send(a, b, 10, [&] { late_delivered = true; });
  });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_TRUE(late_delivered);
  EXPECT_EQ(net.stats().loss_drops, 5u);
  EXPECT_EQ(net.stats().unreachable_drops, 5u);
}

TEST(NetworkTest, RegionPairLossLeavesOtherLinksAlone) {
  Simulation sim(1);
  Network net(&sim);
  const HostId a = net.AddHost(Region::kOhio);
  const HostId b = net.AddHost(Region::kTokyo);
  const HostId c = net.AddHost(Region::kOregon);
  net.AddLossWindow(Region::kOhio, Region::kTokyo, 0, Seconds(10), 1.0);
  EXPECT_EQ(net.DelaySample(a, b, 10), kUnreachable);
  EXPECT_EQ(net.DelaySample(b, a, 10), kUnreachable);  // unordered pair
  EXPECT_NE(net.DelaySample(a, c, 10), kUnreachable);
}

TEST(NetworkTest, BroadcastReachesEveryone) {
  Simulation sim(7);
  Network net(&sim);
  const DeploymentConfig devnet = GetDeployment("devnet");
  std::vector<HostId> hosts;
  for (int i = 0; i < devnet.node_count; ++i) {
    hosts.push_back(net.AddHost(devnet.NodeRegion(i)));
  }
  const auto delays = net.BroadcastDelays(hosts[0], hosts, 1000, /*fanout=*/3);
  ASSERT_EQ(delays.size(), hosts.size());
  EXPECT_EQ(delays[0], 0);  // origin
  for (size_t i = 1; i < delays.size(); ++i) {
    EXPECT_GT(delays[i], 0) << i;
    EXPECT_LT(delays[i], Seconds(3)) << i;
  }
}

TEST(NetworkTest, BroadcastSkipsPartitioned) {
  Simulation sim(7);
  Network net(&sim);
  std::vector<HostId> hosts;
  for (int i = 0; i < 5; ++i) {
    hosts.push_back(net.AddHost(Region::kOhio));
  }
  net.SetPartitioned(hosts[3], true);
  const auto delays = net.BroadcastDelays(hosts[0], hosts, 100, 2);
  EXPECT_EQ(delays[3], kUnreachable);
  EXPECT_NE(delays[1], kUnreachable);
}

TEST(NetworkTest, LargePayloadBroadcastSlowerThanSmall) {
  Simulation sim(7);
  Network net(&sim, /*jitter_frac=*/0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 50; ++i) {
    hosts.push_back(net.AddHost(static_cast<Region>(i % kRegionCount)));
  }
  const auto small = net.BroadcastDelays(hosts[0], hosts, 1000, 4);
  const auto large = net.BroadcastDelays(hosts[0], hosts, 4000000, 4);
  double small_max = 0;
  double large_max = 0;
  for (size_t i = 0; i < hosts.size(); ++i) {
    small_max = std::max(small_max, static_cast<double>(small[i]));
    large_max = std::max(large_max, static_cast<double>(large[i]));
  }
  EXPECT_GT(large_max, 2.0 * small_max);
}

TEST(NetworkTest, GeoBroadcastSlowerThanLan) {
  Simulation sim(7);
  Network net(&sim, 0.0);
  std::vector<HostId> lan;
  std::vector<HostId> wan;
  Network net2(&sim, 0.0);
  for (int i = 0; i < 20; ++i) {
    lan.push_back(net.AddHost(Region::kOhio));
    wan.push_back(net2.AddHost(static_cast<Region>(i % kRegionCount)));
  }
  const auto lan_delays = net.BroadcastDelays(lan[0], lan, 10000, 4);
  const auto wan_delays = net2.BroadcastDelays(wan[0], wan, 10000, 4);
  double lan_max = 0;
  double wan_max = 0;
  for (size_t i = 0; i < 20; ++i) {
    lan_max = std::max(lan_max, static_cast<double>(lan_delays[i]));
    wan_max = std::max(wan_max, static_cast<double>(wan_delays[i]));
  }
  EXPECT_GT(wan_max, 10.0 * lan_max);
}

// --- semantics locks for the broadcast tree ---------------------------------
// A broadcast is a fanout-limited dissemination tree: each relay forwards to
// its next `fanout` targets, serialising one transmission slot per child
// (slot k costs (k+1) transmission delays), and children relay from their own
// arrival instant. With zero jitter in a single region every link is
// identical, so the multiset of arrival times is a pure function of the tree
// shape — a rewrite that changes expansion order or slot accounting fails.

TEST(NetworkTest, BroadcastTreeShapeSingleRegionLock) {
  Simulation sim(11);
  Network net(&sim, /*jitter_frac=*/0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 13; ++i) {
    hosts.push_back(net.AddHost(Region::kOhio));
  }
  const int64_t bytes = 50000;
  const SimDuration p = net.DelaySample(hosts[0], hosts[1], 0);
  const SimDuration t = net.DelaySample(hosts[0], hosts[1], bytes) - p;
  ASSERT_GT(p, 0);
  ASSERT_GT(t, 0);

  auto delays = net.BroadcastDelays(hosts[0], hosts, bytes, /*fanout=*/3);
  ASSERT_EQ(delays.size(), hosts.size());
  EXPECT_EQ(delays[0], 0);

  // Origin feeds 3 children at p+kt; each of those relays to 3 more from its
  // own ready time, so depth-2 arrivals are 2p + (parent_slot + k)t.
  std::vector<SimDuration> expected = {
      p + 1 * t, p + 2 * t, p + 3 * t,
      2 * p + 2 * t, 2 * p + 3 * t, 2 * p + 3 * t,
      2 * p + 4 * t, 2 * p + 4 * t, 2 * p + 4 * t,
      2 * p + 5 * t, 2 * p + 5 * t, 2 * p + 6 * t};
  std::vector<SimDuration> actual(delays.begin() + 1, delays.end());
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(actual, expected);
}

TEST(NetworkTest, BroadcastFanoutBelowOneBecomesChain) {
  Simulation sim(11);
  Network net(&sim, 0.0);
  std::vector<HostId> hosts;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(net.AddHost(Region::kOhio));
  }
  const int64_t bytes = 50000;
  const SimDuration p = net.DelaySample(hosts[0], hosts[1], 0);
  const SimDuration t = net.DelaySample(hosts[0], hosts[1], bytes) - p;
  const auto delays = net.BroadcastDelays(hosts[0], hosts, bytes, /*fanout=*/0);
  std::vector<SimDuration> actual(delays.begin() + 1, delays.end());
  std::sort(actual.begin(), actual.end());
  const std::vector<SimDuration> expected = {p + t, 2 * p + 2 * t};
  EXPECT_EQ(actual, expected);
}

// --- MinLinkDelay: the windowed scheduler's lookahead bound -----------------
// The conservative time-window scheduler uses Network::MinLinkDelay() as its
// lookahead, so these tests pin the two properties the scheduler's
// correctness rests on: the bound equals the true minimum over populated
// links (no slack lost), and no sample — any pair, any payload, jitter on —
// ever lands below it (conservatism).

TEST(NetworkTest, MinLinkDelayMatchesBruteForceMinimum) {
  Simulation sim(3);
  Network net(&sim, /*jitter_frac=*/0.0);
  const DeploymentConfig devnet = GetDeployment("devnet");
  std::vector<HostId> hosts;
  for (int i = 0; i < 20; ++i) {
    hosts.push_back(net.AddHost(devnet.NodeRegion(i)));
  }
  // Zero jitter and zero payload make DelaySample exactly propagation+extra,
  // the quantity MinLinkDelay minimises.
  SimDuration brute = std::numeric_limits<SimDuration>::max();
  for (const HostId a : hosts) {
    for (const HostId b : hosts) {
      if (a != b) {
        brute = std::min(brute, net.DelaySample(a, b, 0));
      }
    }
  }
  EXPECT_GT(net.MinLinkDelay(), 0);
  EXPECT_EQ(net.MinLinkDelay(), brute);
}

TEST(NetworkTest, MinLinkDelayLowerBoundsEverySample) {
  Simulation sim(5);
  Network net(&sim);  // default jitter fraction
  const DeploymentConfig devnet = GetDeployment("devnet");
  std::vector<HostId> hosts;
  for (int i = 0; i < 12; ++i) {
    hosts.push_back(net.AddHost(devnet.NodeRegion(i)));
  }
  const SimDuration bound = net.MinLinkDelay();
  ASSERT_GT(bound, 0);
  for (const HostId a : hosts) {
    for (const HostId b : hosts) {
      if (a == b) {
        continue;
      }
      for (const int64_t bytes : {int64_t{0}, int64_t{1000}, int64_t{100000}}) {
        EXPECT_LE(bound, net.DelaySample(a, b, bytes)) << a << "->" << b;
      }
    }
  }
}

TEST(NetworkTest, MinLinkDelayAccountsForExtraDelay) {
  Simulation sim(5);
  Network net(&sim, /*jitter_frac=*/0.0);
  net.AddHost(Region::kOhio);
  net.AddHost(Region::kOhio);
  const SimDuration base = net.MinLinkDelay();
  EXPECT_GT(base, 0);
  net.SetExtraDelay(Region::kOhio, Region::kOhio, Seconds(1));
  EXPECT_EQ(net.MinLinkDelay(), base + Seconds(1));
}

TEST(NetworkTest, MinLinkDelayZeroWithoutALink) {
  Simulation sim(5);
  Network net(&sim);
  EXPECT_EQ(net.MinLinkDelay(), 0);  // no hosts
  net.AddHost(Region::kOhio);
  EXPECT_EQ(net.MinLinkDelay(), 0);  // one host: no pair to bound
  net.AddHost(Region::kTokyo);
  EXPECT_GT(net.MinLinkDelay(), 0);
}

// --- MinLinkDelayInWindow: the window-aware lookahead bound -----------------
// Delay-spike schedules raise the true minimum link delay while a spike is
// in force; MinLinkDelayInWindow replays the registered onset/heal writers
// to bound any sample taken at a time in [from, to). The reference below is
// a brute force over dense time samples: extra(t) is the value of the last
// writer at or before t (writers carry absolute values, mirroring the
// injector's SetExtraDelay calls), and the floor of a window is the minimum
// of extra(t) over every millisecond of it.

namespace {

struct SpikeWriter {
  SimTime time;
  SimDuration value;
};

SimDuration BruteForceFloor(std::vector<SpikeWriter> writers, SimTime from,
                            SimTime to) {
  // Serial events execute in time order; same-instant writers keep their
  // registration (scheduling) order.
  std::stable_sort(writers.begin(), writers.end(),
                   [](const SpikeWriter& a, const SpikeWriter& b) {
                     return a.time < b.time;
                   });
  auto extra_at = [&](SimTime t) {
    SimDuration value = 0;
    for (const SpikeWriter& w : writers) {
      if (w.time <= t) {
        value = w.value;
      }
    }
    return value;
  };
  SimDuration floor = extra_at(from);
  for (SimTime t = from; t < to; t += Milliseconds(1)) {
    floor = std::min(floor, extra_at(t));
  }
  return floor;
}

}  // namespace

TEST(NetworkTest, MinLinkDelayInWindowMatchesBruteForceOverSpikeSchedule) {
  Simulation sim(7);
  Network net(&sim, /*jitter_frac=*/0.0);
  net.AddHost(Region::kOhio);
  net.AddHost(Region::kTokyo);
  const SimDuration base = net.MinLinkDelay();
  ASSERT_GT(base, 0);

  // Two overlapping all-pairs spikes. The second onset overwrites the first
  // spike's extra and the first heal zeroes it mid-flight — exactly the
  // last-writer-wins semantics of the injector's serial SetExtraDelay
  // events, which the registry replays in registration order.
  net.AddDelaySpikeWindow(Milliseconds(100), Milliseconds(300), Milliseconds(50));
  net.AddDelaySpikeWindow(Milliseconds(250), Milliseconds(400), Milliseconds(20));
  const std::vector<SpikeWriter> writers = {
      {Milliseconds(100), Milliseconds(50)},
      {Milliseconds(300), 0},
      {Milliseconds(250), Milliseconds(20)},
      {Milliseconds(400), 0},
  };

  for (SimTime from = 0; from <= Milliseconds(500); from += Milliseconds(25)) {
    for (const SimDuration span :
         {Milliseconds(10), Milliseconds(60), Milliseconds(200)}) {
      const SimTime to = from + span;
      const SimDuration got = net.MinLinkDelayInWindow(from, to);
      EXPECT_EQ(got, base + BruteForceFloor(writers, from, to))
          << "window [" << from << ", " << to << ")";
      EXPECT_GE(got, base);  // never below the zero-extra minimum
    }
  }
}

TEST(NetworkTest, MinLinkDelayInWindowHealInstantBoundary) {
  Simulation sim(7);
  Network net(&sim, /*jitter_frac=*/0.0);
  net.AddHost(Region::kOhio);
  net.AddHost(Region::kTokyo);
  const SimDuration base = net.MinLinkDelay();
  net.AddDelaySpikeWindow(Milliseconds(100), Milliseconds(300), Milliseconds(50));

  // A window headed exactly at the heal instant already sees the healed
  // value: the heal is a serial event, and serial events run before any
  // window that starts at their timestamp.
  EXPECT_EQ(net.MinLinkDelayInWindow(Milliseconds(300), Milliseconds(350)), base);
  // One tick earlier the spike is still fully in force (the heal at 300 is
  // not strictly inside [299, 300)).
  EXPECT_EQ(net.MinLinkDelayInWindow(Milliseconds(299), Milliseconds(300)),
            base + Milliseconds(50));
  // A window spanning the heal takes the healed floor.
  EXPECT_EQ(net.MinLinkDelayInWindow(Milliseconds(250), Milliseconds(301)), base);
  // An onset strictly inside the window lowers it to the pre-onset value —
  // here zero extra before 100 — but never below base.
  EXPECT_EQ(net.MinLinkDelayInWindow(Milliseconds(50), Milliseconds(150)), base);
  // Fully inside the spike.
  EXPECT_EQ(net.MinLinkDelayInWindow(Milliseconds(150), Milliseconds(200)),
            base + Milliseconds(50));
}

TEST(NetworkTest, MinLinkDelayInWindowOpenWindowAndRegionScope) {
  Simulation sim(7);
  Network net(&sim, /*jitter_frac=*/0.0);
  const HostId ohio_a = net.AddHost(Region::kOhio);
  const HostId ohio_b = net.AddHost(Region::kOhio);
  const HostId tokyo = net.AddHost(Region::kTokyo);
  const SimDuration intra = net.DelaySample(ohio_a, ohio_b, 0);
  const SimDuration cross = net.DelaySample(ohio_a, tokyo, 0);
  ASSERT_LT(intra, cross);
  ASSERT_EQ(net.MinLinkDelay(), intra);

  // A spike scoped to the cross-region pair cannot raise the bound: the
  // intra-Ohio pair stays the minimum.
  net.AddDelaySpikeWindow(Region::kOhio, Region::kTokyo, Milliseconds(100),
                          /*until=*/-1, Seconds(1));
  EXPECT_EQ(net.MinLinkDelayInWindow(Milliseconds(200), Milliseconds(250)), intra);

  // Spiking the minimal pair raises the bound, capped by the next-cheapest
  // pair; until < 0 keeps the spike active forever.
  net.AddDelaySpikeWindow(Region::kOhio, Region::kOhio, Milliseconds(100),
                          /*until=*/-1, Milliseconds(50));
  EXPECT_EQ(net.MinLinkDelayInWindow(Seconds(10), Seconds(11)),
            std::min(intra + Milliseconds(50), cross + Seconds(1)));
  // Before both onsets the zero-extra minimum still applies.
  EXPECT_EQ(net.MinLinkDelayInWindow(0, Milliseconds(50)), intra);
}

TEST(NetworkTest, BroadcastDeterministicPerSeed) {
  const DeploymentConfig devnet = GetDeployment("devnet");
  auto run = [&](uint64_t seed) {
    Simulation sim(seed);
    Network net(&sim);
    std::vector<HostId> hosts;
    for (int i = 0; i < devnet.node_count; ++i) {
      hosts.push_back(net.AddHost(devnet.NodeRegion(i)));
    }
    return net.BroadcastDelays(hosts[0], hosts, 20000, 3);
  };
  EXPECT_EQ(run(21), run(21));
  EXPECT_NE(run(21), run(22));
}

}  // namespace
}  // namespace diablo
