// Randomized property tests: the interpreter must never crash, hang or
// corrupt state on arbitrary bytecode; the YAML parser must reject or parse
// arbitrary text without crashing; the mempool must preserve its accounting
// invariants under random operation sequences.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chain/mempool.h"
#include "src/config/spec.h"
#include "src/config/yaml.h"
#include "src/core/parallel_runner.h"
#include "src/core/runner.h"
#include "src/fault/schedule.h"
#include "src/support/rng.h"
#include "src/support/strings.h"
#include "src/vm/assembler.h"
#include "src/vm/interpreter.h"

namespace diablo {
namespace {

class VmFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VmFuzzTest, RandomBytecodeNeverCrashes) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    Program program;
    program.name = "fuzz";
    const size_t length = 1 + rng.NextBelow(64);
    for (size_t i = 0; i < length; ++i) {
      program.code.push_back(static_cast<uint8_t>(rng.NextBelow(256)));
    }
    program.functions.push_back(
        FunctionEntry{"f", static_cast<uint32_t>(rng.NextBelow(length))});

    ContractState state;
    ExecRequest request;
    request.program = &program;
    request.function = "f";
    request.state = &state;
    // The AVM budget caps runaway loops quickly.
    request.dialect = static_cast<VmDialect>(rng.NextBelow(4));
    const ExecResult result = Execute(request);
    // Whatever happened, accounting is sane.
    EXPECT_GE(result.gas_used, 0);
    EXPECT_GE(result.ops_executed, 0);
  }
}

TEST_P(VmFuzzTest, RandomValidProgramsTerminate) {
  // Assemble random but well-formed instruction streams (no jumps, so they
  // always terminate) and check stack errors are reported, never UB.
  Rng rng(GetParam() ^ 0xabcdef);
  const char* ops[] = {"push 1", "push -3", "pop",  "dup 0", "swap 1", "add",
                       "sub",    "mul",     "lt",   "gt",    "eq",     "not",
                       "caller", "arg 0",   "argcount"};
  for (int round = 0; round < 200; ++round) {
    std::string source = ".func f\n";
    const size_t length = 1 + rng.NextBelow(30);
    for (size_t i = 0; i < length; ++i) {
      source += std::string(ops[rng.NextBelow(std::size(ops))]) + "\n";
    }
    source += "stop\n";
    const AssembleResult assembled = Assemble("fuzz", source);
    ASSERT_TRUE(assembled.ok) << assembled.error;
    ExecRequest request;
    request.program = &assembled.program;
    request.function = "f";
    const std::vector<int64_t> args = {7};
    request.args = args;
    const ExecResult result = Execute(request);
    EXPECT_TRUE(result.status == VmStatus::kOk ||
                result.status == VmStatus::kStackUnderflow ||
                result.status == VmStatus::kDivisionByZero)
        << VmStatusName(result.status);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

class YamlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(YamlFuzzTest, RandomTextNeverCrashes) {
  Rng rng(GetParam());
  const char alphabet[] = "abz: -!&*{}[]\"'\n\t #0123456789.";
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const size_t length = rng.NextBelow(200);
    for (size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    const YamlResult result = ParseYaml(text);
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

TEST_P(YamlFuzzTest, StructuredMutationsNeverCrash) {
  // Mutate a valid document: truncations and single-character changes.
  const std::string base =
      "let:\n  - &a { k: !tag [ 1, \"two\" ] }\nworkloads:\n  - number: 3\n"
      "    client:\n      view: *a\n      behavior:\n        - interaction: !invoke\n"
      "          load:\n            0: 10\n";
  Rng rng(GetParam() ^ 0x5eed);
  for (size_t cut = 0; cut < base.size(); cut += 3) {
    ParseYaml(base.substr(0, cut));
  }
  for (int round = 0; round < 200; ++round) {
    std::string mutated = base;
    mutated[rng.NextBelow(mutated.size())] =
        static_cast<char>(32 + rng.NextBelow(95));
    ParseYaml(mutated);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, YamlFuzzTest, ::testing::Values(11, 22, 33));

class FaultSpecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultSpecFuzzTest, MutatedFaultSectionsNeverCrash) {
  // Truncations and single-character mutations of a valid `faults:` section
  // must parse cleanly or produce a diagnostic — never crash or accept
  // silently-broken schedules (Validate runs at parse time).
  const std::string base =
      "workloads:\n  - client:\n      behavior:\n        - interaction: !transfer\n"
      "          load:\n            0: 10\n            30: 0\n"
      "faults:\n"
      "  - crash: { node: 0, at: 10, restart: 30 }\n"
      "  - partition: { nodes: [1, 2], from: 10, to: 40 }\n"
      "  - loss: { rate: 0.05, from: 45, to: 50 }\n"
      "  - straggler: { node: 4, cpu_factor: 0.5, from: 5, to: 20 }\n";
  ASSERT_TRUE(ParseWorkloadSpec(base).ok) << ParseWorkloadSpec(base).error;
  Rng rng(GetParam() ^ 0xfa017);
  for (size_t cut = 0; cut < base.size(); cut += 3) {
    const SpecResult result = ParseWorkloadSpec(base.substr(0, cut));
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty());
    }
  }
  for (int round = 0; round < 300; ++round) {
    std::string mutated = base;
    mutated[rng.NextBelow(mutated.size())] =
        static_cast<char>(32 + rng.NextBelow(95));
    const SpecResult result = ParseWorkloadSpec(mutated);
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSpecFuzzTest, ::testing::Values(7, 8, 9));

class ByzantineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ByzantineFuzzTest, MutatedByzantineSectionsNeverCrash) {
  // Same contract as the honest-fault mutator: truncations and point
  // mutations of a Byzantine `faults:` section parse or reject with a
  // diagnostic — never crash, never accept a schedule Validate would not.
  const std::string base =
      "workloads:\n  - client:\n      behavior:\n        - interaction: !transfer\n"
      "          load:\n            0: 10\n            30: 0\n"
      "faults:\n"
      "  - equivocate: { nodes: [0], from: 2, to: 8 }\n"
      "  - double-vote: { fraction: 0.2, from: 10, to: 14 }\n"
      "  - withhold: { nodes: [1, 2], from: 16, to: 20 }\n"
      "  - censor: { nodes: [3], signers: [0, 1], from: 22, to: 25 }\n"
      "  - lazy: { fraction: 0.1, from: 26, to: 28 }\n";
  ASSERT_TRUE(ParseWorkloadSpec(base).ok) << ParseWorkloadSpec(base).error;
  Rng rng(GetParam() ^ 0xb12a47);
  for (size_t cut = 0; cut < base.size(); cut += 3) {
    const SpecResult result = ParseWorkloadSpec(base.substr(0, cut));
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty());
    }
  }
  for (int round = 0; round < 300; ++round) {
    std::string mutated = base;
    mutated[rng.NextBelow(mutated.size())] =
        static_cast<char>(32 + rng.NextBelow(95));
    const SpecResult result = ParseWorkloadSpec(mutated);
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty());
    } else {
      std::string error;
      EXPECT_TRUE(result.spec.faults.Validate(-1, &error)) << error;
    }
  }
}

TEST_P(ByzantineFuzzTest, RandomSchedulesParseOrRejectCleanly) {
  // Assemble random Byzantine entries — kinds, scopes (explicit nodes, a
  // fraction, both, or neither), window shapes (forward, zero-width,
  // backwards), censor signer lists present or absent. Whatever comes out,
  // the parser either accepts a schedule that re-validates or rejects with
  // a non-empty diagnostic.
  const char* kinds[] = {"equivocate", "double-vote", "withhold", "censor",
                         "lazy"};
  Rng rng(GetParam() ^ 0x5ca1ab1e);
  for (int round = 0; round < 300; ++round) {
    std::string text =
        "workloads:\n  - client:\n      behavior:\n"
        "        - interaction: !transfer\n          load:\n"
        "            0: 10\n            30: 0\n"
        "faults:\n";
    const size_t entries = 1 + rng.NextBelow(3);
    for (size_t i = 0; i < entries; ++i) {
      const char* kind = kinds[rng.NextBelow(std::size(kinds))];
      std::string body;
      const uint64_t scope = rng.NextBelow(4);
      if (scope == 0 || scope == 2) {
        body += StrFormat("nodes: [%d], ", static_cast<int>(rng.NextBelow(12)));
      }
      if (scope == 1 || scope == 2) {
        body += StrFormat("fraction: %.2f, ",
                          -0.5 + 0.25 * static_cast<double>(rng.NextBelow(8)));
      }
      if (rng.NextBelow(3) != 0) {  // sometimes omit signers even for censor
        body += StrFormat("signers: [%d], ", static_cast<int>(rng.NextBelow(5)));
      }
      const int from = static_cast<int>(rng.NextBelow(30));
      const int to = from - 2 + static_cast<int>(rng.NextBelow(8));
      text += StrFormat("  - %s: { %sfrom: %d, to: %d }\n", kind, body.c_str(),
                        from, to);
    }
    const SpecResult result = ParseWorkloadSpec(text);
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty()) << text;
    } else {
      std::string error;
      EXPECT_TRUE(result.spec.faults.Validate(-1, &error)) << text << error;
      EXPECT_EQ(result.spec.faults.events.size(), entries) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByzantineFuzzTest,
                         ::testing::Values(41, 42, 43));

TEST(ByzantineFuzzTest, InjectorIsDeterministicAcrossRunnerJobs) {
  // A randomly chosen (but fixed-seed) Byzantine schedule produces
  // bit-identical reports whether the cells run inline or on four workers:
  // adversary resolution is a pure function of the schedule and the
  // deployment, never of thread identity.
  const FaultSchedule faults =
      FaultScheduleBuilder()
          .EquivocateFraction(0.2, Seconds(3), Seconds(9))
          .WithholdVotes({1, 2, 3}, Seconds(12), Seconds(18))
          .Censor({0}, {0, 1, 2, 3, 4}, Seconds(20), Seconds(24))
          .Build();
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.timeout = Seconds(1);
  auto sweep = [&](int jobs) {
    ParallelRunner runner(jobs);
    std::vector<ExperimentCell> cells;
    for (const char* chain : {"quorum", "diem", "redbelly"}) {
      const std::string name = chain;
      cells.push_back({name, [name, &faults, &retry] {
                         return RunFaultBenchmark(name, "testnet", 50, 30,
                                                  faults, retry, /*seed=*/3);
                       }});
    }
    return runner.Run(std::move(cells));
  };
  const std::vector<RunResult> serial = sweep(1);
  const std::vector<RunResult> parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].report.ToText(), parallel[i].report.ToText()) << i;
    EXPECT_EQ(serial[i].report.equivocations_seen,
              parallel[i].report.equivocations_seen);
    EXPECT_EQ(serial[i].report.votes_withheld, parallel[i].report.votes_withheld);
    EXPECT_EQ(serial[i].report.txs_censored, parallel[i].report.txs_censored);
  }
}

TEST(MempoolFuzzTest, RandomChurnPreservesInvariants) {
  Rng rng(77);
  for (int config_round = 0; config_round < 8; ++config_round) {
    MempoolConfig config;
    config.global_cap = rng.NextBelow(2) == 0 ? 0 : 50 + rng.NextBelow(100);
    config.per_signer_cap = rng.NextBelow(2) == 0 ? 0 : 1 + rng.NextBelow(10);
    config.ttl = rng.NextBelow(2) == 0 ? 0 : Seconds(5);
    config.evict_on_full = rng.NextBelow(2) == 0;
    Rng pool_rng = rng.Fork();
    Mempool pool(config, &pool_rng);

    size_t alive = 0;  // our own accounting of the live population
    SimTime now = 0;
    TxId next = 0;
    for (int step = 0; step < 2000; ++step) {
      now += static_cast<SimTime>(rng.NextBelow(Milliseconds(200)));
      if (rng.NextBelow(3) != 0) {
        TxId evicted = kInvalidTx;
        const AdmitResult result =
            pool.Add(next, static_cast<uint32_t>(rng.NextBelow(20)), now,
                     now + static_cast<SimTime>(rng.NextBelow(Seconds(1))), &evicted);
        if (result == AdmitResult::kAdmitted) {
          ++alive;
        }
        if (evicted != kInvalidTx) {
          --alive;
        }
        ++next;
      } else {
        std::vector<TxId> expired;
        const auto taken = pool.TakeReady(now, 0, 0, 1 + rng.NextBelow(20),
                                          [](TxId) { return 21000; },
                                          [](TxId) { return 110; }, &expired);
        alive -= taken.size() + expired.size();
      }
      ASSERT_EQ(pool.size(), alive) << "config round " << config_round;
      if (config.global_cap > 0) {
        ASSERT_LE(pool.size(), config.global_cap);
      }
    }
  }
}

}  // namespace
}  // namespace diablo
