// Tests for the fault-injection subsystem: schedule validation, the
// injector's execution of crash/partition/loss/straggler events, client
// retries, resilience metrics and determinism of faulty runs.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/chains/chain_factory.h"
#include "src/chains/params.h"
#include "src/core/runner.h"
#include "src/fault/injector.h"
#include "src/fault/schedule.h"

namespace diablo {
namespace {

struct MiniRun {
  Simulation sim;
  Network net;
  std::unique_ptr<ChainInstance> chain;

  MiniRun(const std::string& chain_name, uint64_t seed) : sim(seed), net(&sim) {
    chain = BuildChain(chain_name, GetDeployment("testnet"), &sim, &net);
  }

  void Submit(int tps, int seconds) {
    ChainContext& ctx = chain->context();
    uint32_t seq = 0;
    for (int s = 0; s < seconds; ++s) {
      for (int i = 0; i < tps; ++i) {
        Transaction tx;
        tx.account = seq % 100;
        tx.gas = NativeTransferGas(ctx.params().dialect);
        tx.size_bytes = kNativeTransferBytes;
        const SimTime when = Seconds(s) + Milliseconds(1000LL * i / tps);
        tx.submit_time = when;
        const TxId id = ctx.txs().Add(tx);
        const int endpoint = static_cast<int>(seq) % ctx.node_count();
        sim.ScheduleAt(when, [this, id, endpoint] {
          chain->context().SubmitAtEndpoint(id, endpoint, sim.Now());
        });
        ++seq;
      }
    }
  }

  size_t Committed() {
    return chain->context().txs().PhaseCounts()[static_cast<size_t>(
        TxPhase::kCommitted)];
  }
};

// --- Schedule validation ---

TEST(FaultScheduleTest, BuilderProducesWellFormedEvents) {
  const FaultSchedule schedule = FaultScheduleBuilder()
                                     .Crash(0, Seconds(10), Seconds(30))
                                     .Partition({1, 2, 3}, Seconds(5), Seconds(40))
                                     .Loss(0.05, Seconds(50), Seconds(60))
                                     .Straggler(4, 0.25, Seconds(5), Seconds(10))
                                     .Build();
  ASSERT_EQ(schedule.events.size(), 4u);
  EXPECT_EQ(schedule.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(schedule.events[0].node, 0);
  EXPECT_EQ(schedule.events[0].until, Seconds(30));
  EXPECT_EQ(schedule.events[1].nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(schedule.events[2].loss_rate, 0.05);
  EXPECT_DOUBLE_EQ(schedule.events[3].cpu_factor, 0.25);
  std::string error;
  EXPECT_TRUE(schedule.Validate(10, &error)) << error;
}

TEST(FaultScheduleTest, RejectsMalformedTimes) {
  std::string error;
  FaultSchedule negative =
      FaultScheduleBuilder().Crash(0, Seconds(-1)).Build();
  EXPECT_FALSE(negative.Validate(10, &error));

  FaultSchedule backwards =
      FaultScheduleBuilder().Partition({0}, Seconds(20), Seconds(10)).Build();
  EXPECT_FALSE(backwards.Validate(10, &error));
  EXPECT_NE(error.find("heal time"), std::string::npos) << error;
}

TEST(FaultScheduleTest, RejectsUnknownHosts) {
  std::string error;
  FaultSchedule schedule = FaultScheduleBuilder().Crash(12, Seconds(1)).Build();
  EXPECT_FALSE(schedule.Validate(10, &error));
  EXPECT_NE(error.find("unknown host"), std::string::npos) << error;
  // Without a deployment bound yet, host indices are not range-checked.
  EXPECT_TRUE(schedule.Validate(-1, &error)) << error;
}

TEST(FaultScheduleTest, RejectsOutOfRangeRatesAndFactors) {
  std::string error;
  EXPECT_FALSE(
      FaultScheduleBuilder().Loss(1.5, Seconds(1)).Build().Validate(10, &error));
  EXPECT_FALSE(
      FaultScheduleBuilder().Loss(-0.1, Seconds(1)).Build().Validate(10, &error));
  EXPECT_FALSE(FaultScheduleBuilder()
                   .Straggler(0, 0.0, Seconds(1))
                   .Build()
                   .Validate(10, &error));
  EXPECT_FALSE(FaultScheduleBuilder()
                   .Straggler(0, 1.5, Seconds(1))
                   .Build()
                   .Validate(10, &error));
}

TEST(FaultScheduleTest, RejectsOverlappingWindowsOnSameScope) {
  std::string error;
  // Two crash windows on the same node, overlapping in time.
  FaultSchedule same_node = FaultScheduleBuilder()
                                .Crash(0, Seconds(10), Seconds(30))
                                .Crash(0, Seconds(20), Seconds(40))
                                .Build();
  EXPECT_FALSE(same_node.Validate(10, &error));
  EXPECT_NE(error.find("overlaps"), std::string::npos) << error;

  // Same windows on different nodes are fine.
  FaultSchedule different_nodes = FaultScheduleBuilder()
                                      .Crash(0, Seconds(10), Seconds(30))
                                      .Crash(1, Seconds(20), Seconds(40))
                                      .Build();
  EXPECT_TRUE(different_nodes.Validate(10, &error)) << error;

  // Two all-pair loss windows overlapping; and back-to-back ones are fine.
  FaultSchedule loss_overlap = FaultScheduleBuilder()
                                   .Loss(0.1, Seconds(0), Seconds(10))
                                   .Loss(0.2, Seconds(5), Seconds(15))
                                   .Build();
  EXPECT_FALSE(loss_overlap.Validate(10, &error));
  FaultSchedule loss_sequential = FaultScheduleBuilder()
                                      .Loss(0.1, Seconds(0), Seconds(10))
                                      .Loss(0.2, Seconds(10), Seconds(15))
                                      .Build();
  EXPECT_TRUE(loss_sequential.Validate(10, &error)) << error;
}

TEST(FaultScheduleTest, HealTimesAreSortedHealInstants) {
  const FaultSchedule schedule = FaultScheduleBuilder()
                                     .Partition({1}, Seconds(10), Seconds(40))
                                     .Crash(0, Seconds(5), Seconds(15))
                                     .Loss(0.1, Seconds(0))  // never heals
                                     .Build();
  const std::vector<SimTime> heals = schedule.HealTimes();
  ASSERT_EQ(heals.size(), 2u);
  EXPECT_EQ(heals[0], Seconds(15));
  EXPECT_EQ(heals[1], Seconds(40));
}

// --- Byzantine schedule construction and validation ---

TEST(FaultScheduleTest, ByzantineBuilderProducesWellFormedEvents) {
  const FaultSchedule schedule =
      FaultScheduleBuilder()
          .Equivocate({0}, Seconds(5), Seconds(15))
          .DoubleVoteFraction(0.2, Seconds(20), Seconds(30))
          .WithholdVotes({1, 2}, Seconds(35), Seconds(45))
          .Censor({3}, {0, 1, 2}, Seconds(50), Seconds(55))
          .LazyProposerFraction(0.1, Seconds(56), Seconds(58))
          .Build();
  ASSERT_EQ(schedule.events.size(), 5u);
  EXPECT_EQ(schedule.events[0].kind, FaultKind::kEquivocate);
  EXPECT_EQ(schedule.events[0].nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(schedule.events[1].fraction, 0.2);
  EXPECT_EQ(schedule.events[2].nodes.size(), 2u);
  EXPECT_EQ(schedule.events[3].censored_signers.size(), 3u);
  EXPECT_DOUBLE_EQ(schedule.events[4].fraction, 0.1);
  for (const FaultEvent& event : schedule.events) {
    EXPECT_TRUE(IsByzantine(event.kind)) << FaultKindName(event.kind);
  }
  std::string error;
  EXPECT_TRUE(schedule.Validate(10, &error)) << error;
}

TEST(FaultScheduleTest, ByzantineRejectsMalformedScopes) {
  std::string error;
  // Fraction out of range.
  EXPECT_FALSE(FaultScheduleBuilder()
                   .EquivocateFraction(0.0, Seconds(1), Seconds(2))
                   .Build()
                   .Validate(10, &error));
  EXPECT_FALSE(FaultScheduleBuilder()
                   .EquivocateFraction(1.0, Seconds(1), Seconds(2))
                   .Build()
                   .Validate(10, &error));
  // Both an explicit node set and a fraction (or neither) is ambiguous.
  FaultEvent both;
  both.kind = FaultKind::kDoubleVote;
  both.nodes = {0};
  both.fraction = 0.2;
  both.at = Seconds(1);
  both.until = Seconds(2);
  FaultSchedule ambiguous;
  ambiguous.events.push_back(both);
  EXPECT_FALSE(ambiguous.Validate(10, &error));
  EXPECT_NE(error.find("exactly one"), std::string::npos) << error;
  FaultEvent neither;
  neither.kind = FaultKind::kWithholdVotes;
  neither.at = Seconds(1);
  neither.until = Seconds(2);
  FaultSchedule empty_scope;
  empty_scope.events.push_back(neither);
  EXPECT_FALSE(empty_scope.Validate(10, &error));
  // Censorship needs a non-empty, non-negative signer set.
  EXPECT_FALSE(FaultScheduleBuilder()
                   .Censor({0}, {}, Seconds(1), Seconds(2))
                   .Build()
                   .Validate(10, &error));
  EXPECT_NE(error.find("signer"), std::string::npos) << error;
  EXPECT_FALSE(FaultScheduleBuilder()
                   .Censor({0}, {-1}, Seconds(1), Seconds(2))
                   .Build()
                   .Validate(10, &error));
  // Adversary node indices are range-checked like honest-fault ones.
  EXPECT_FALSE(FaultScheduleBuilder()
                   .Equivocate({42}, Seconds(1), Seconds(2))
                   .Build()
                   .Validate(10, &error));
}

TEST(FaultScheduleTest, RejectsZeroDurationWindows) {
  std::string error;
  FaultSchedule zero =
      FaultScheduleBuilder().Equivocate({0}, Seconds(5), Seconds(5)).Build();
  EXPECT_FALSE(zero.Validate(10, &error));
  EXPECT_NE(error.find("zero-duration"), std::string::npos) << error;
  FaultSchedule honest_zero =
      FaultScheduleBuilder().Loss(0.1, Seconds(5), Seconds(5)).Build();
  EXPECT_FALSE(honest_zero.Validate(10, &error));
  EXPECT_NE(error.find("zero-duration"), std::string::npos) << error;
}

TEST(FaultScheduleTest, FaultKindNamesAreExhaustiveAndDistinct) {
  // Every enumerator up to the kCount sentinel has a real name, and no two
  // kinds share one — a new kind without a FaultKindName entry fails here.
  std::vector<std::string> names;
  for (int kind = 0; kind < static_cast<int>(FaultKind::kCount); ++kind) {
    const char* name = FaultKindName(static_cast<FaultKind>(kind));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "unknown") << "kind " << kind << " has no name";
    EXPECT_STRNE(name, "") << "kind " << kind << " has an empty name";
    for (const std::string& previous : names) {
      EXPECT_NE(previous, name) << "duplicate fault kind name";
    }
    names.push_back(name);
  }
  EXPECT_STREQ(FaultKindName(FaultKind::kCount), "unknown");
  // The Byzantine predicate splits the enum exactly where the enum says.
  EXPECT_FALSE(IsByzantine(FaultKind::kCrash));
  EXPECT_FALSE(IsByzantine(FaultKind::kStraggler));
  EXPECT_TRUE(IsByzantine(FaultKind::kEquivocate));
  EXPECT_TRUE(IsByzantine(FaultKind::kLazyProposer));
}

// --- Injector execution ---

TEST(FaultInjectorTest, CrashCausesViewChangesThenRecovery) {
  MiniRun run("quorum", 3);
  run.Submit(100, 30);
  FaultInjector injector(
      FaultScheduleBuilder().Crash(0, Seconds(5), Seconds(15)).Build(),
      &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(90));
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 1u);
  // The dead leader costs round changes, but the rotation keeps committing.
  EXPECT_GT(run.chain->context().stats().view_changes, 0u);
  EXPECT_GE(run.Committed(), 2000u);
}

TEST(FaultInjectorTest, MajorityPartitionStallsUntilHeal) {
  MiniRun run("quorum", 3);
  run.Submit(100, 30);
  FaultInjector injector(FaultScheduleBuilder()
                             .Partition({0, 1, 2, 3, 4, 5}, Seconds(5), Seconds(20))
                             .Build(),
                         &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(90));
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().heals, 1u);
  // No quorum inside the window, full progress after the heal.
  const TxStore& txs = run.chain->context().txs();
  size_t inside = 0;
  size_t after = 0;
  for (TxId id = 0; id < txs.size(); ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase != TxPhase::kCommitted) {
      continue;
    }
    if (tx.commit_time > Seconds(6) && tx.commit_time < Seconds(20)) {
      ++inside;
    } else if (tx.commit_time >= Seconds(20)) {
      ++after;
    }
  }
  EXPECT_EQ(inside, 0u);
  EXPECT_GT(after, 0u);
}

TEST(FaultInjectorTest, LossWindowRegistersDropsOnTheNetwork) {
  MiniRun run("quorum", 3);
  run.Submit(100, 10);
  FaultInjector injector(
      FaultScheduleBuilder().Loss(0.3, Seconds(2), Seconds(8)).Build(),
      &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  EXPECT_EQ(injector.stats().loss_windows, 1u);
  EXPECT_GT(run.net.stats().loss_drops, 0u);
  EXPECT_GT(run.Committed(), 0u);
}

TEST(FaultInjectorTest, StragglerSlowsButDoesNotStopTheChain) {
  MiniRun run("quorum", 3);
  run.Submit(100, 10);
  FaultInjector injector(
      FaultScheduleBuilder().Straggler(0, 0.2, Seconds(0), Seconds(20)).Build(),
      &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  EXPECT_EQ(injector.stats().stragglers, 1u);
  EXPECT_GE(run.Committed(), 800u);
}

TEST(FaultInjectorTest, InvalidScheduleFailsToInstall) {
  MiniRun run("quorum", 3);
  FaultInjector injector(FaultScheduleBuilder().Crash(42, Seconds(1)).Build(),
                         &run.chain->context());
  std::string error;
  EXPECT_FALSE(injector.Install(&error));
  EXPECT_NE(error.find("unknown host"), std::string::npos) << error;
}

// --- Byzantine behavior through the engines ---

TEST(FaultInjectorTest, EquivocatingLeaderForcesViewChangesButCommits) {
  MiniRun run("quorum", 3);
  run.Submit(100, 20);
  FaultInjector injector(
      FaultScheduleBuilder().Equivocate({0}, Seconds(2), Seconds(12)).Build(),
      &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  EXPECT_EQ(injector.stats().equivocate_windows, 1u);
  const ChainStats& stats = run.chain->context().stats();
  // Every time node 0 held the leader slot in the window, honest replicas
  // detected the conflicting proposals and view-changed past it...
  EXPECT_GT(stats.equivocations_seen, 0u);
  EXPECT_GT(stats.view_changes, 0u);
  // ...and the rotation kept the chain live: safety costs rounds, not txs.
  EXPECT_GE(run.Committed(), 1500u);
}

TEST(FaultInjectorTest, WithholdingMinorityCommitsButMajorityStalls) {
  // IBFT quorum on the 10-node testnet is 7: three silent validators leave
  // 7 voters (commits continue); four leave 6 (no quorum in the window).
  auto committed_inside_window = [](int withholders) {
    MiniRun run("quorum", 3);
    run.Submit(100, 20);
    std::vector<int> nodes;
    for (int i = 0; i < withholders; ++i) {
      nodes.push_back(i);
    }
    FaultInjector injector(FaultScheduleBuilder()
                               .WithholdVotes(nodes, Seconds(5), Seconds(15))
                               .Build(),
                           &run.chain->context());
    std::string error;
    EXPECT_TRUE(injector.Install(&error)) << error;
    run.chain->Start();
    run.sim.RunUntil(Seconds(60));
    EXPECT_GT(run.chain->context().stats().votes_withheld, 0u);
    EXPECT_GT(run.Committed(), 0u);  // both recover after the disarm
    const TxStore& txs = run.chain->context().txs();
    size_t inside = 0;
    for (TxId id = 0; id < txs.size(); ++id) {
      const Transaction& tx = txs.at(id);
      if (tx.phase == TxPhase::kCommitted && tx.commit_time > Seconds(6) &&
          tx.commit_time < Seconds(15)) {
        ++inside;
      }
    }
    return inside;
  };
  EXPECT_GT(committed_inside_window(3), 0u);
  EXPECT_EQ(committed_inside_window(4), 0u);
}

TEST(FaultInjectorTest, DoubleVotingLeavesEvidenceWithoutChangingCommits) {
  auto run_with = [](bool double_voting) {
    MiniRun run("quorum", 3);
    run.Submit(100, 10);
    std::unique_ptr<FaultInjector> injector;
    if (double_voting) {
      injector = std::make_unique<FaultInjector>(
          FaultScheduleBuilder()
              .DoubleVoteFraction(0.2, Seconds(2), Seconds(8))
              .Build(),
          &run.chain->context());
      std::string error;
      EXPECT_TRUE(injector->Install(&error)) << error;
    }
    run.chain->Start();
    run.sim.RunUntil(Seconds(60));
    return std::make_pair(run.Committed(),
                          run.chain->context().stats().double_votes_seen);
  };
  const auto [honest_committed, honest_evidence] = run_with(false);
  const auto [byzantine_committed, byzantine_evidence] = run_with(true);
  // A second vote from the same validator is deduplicated by the quorum
  // rule, so the duplicate changes evidence counters and nothing else.
  EXPECT_EQ(honest_evidence, 0u);
  EXPECT_GT(byzantine_evidence, 0u);
  EXPECT_EQ(byzantine_committed, honest_committed);
}

TEST(FaultInjectorTest, CensorshipDelaysVictimsButHonestProposersRescue) {
  MiniRun run("quorum", 3);
  run.Submit(100, 10);  // MiniRun signs with accounts 0..99
  FaultInjector injector(FaultScheduleBuilder()
                             .Censor({0, 1, 2}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
                                     Seconds(1), Seconds(9))
                             .Build(),
                         &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  EXPECT_EQ(injector.stats().censor_windows, 1u);
  const ChainStats& stats = run.chain->context().stats();
  EXPECT_GT(stats.txs_censored, 0u);
  // Censored transactions are requeued, not dropped: once an honest node
  // holds the proposer slot (or the window closes), everything commits.
  EXPECT_EQ(run.Committed(), 1000u);
}

TEST(FaultInjectorTest, LazyProposersSealEmptyBlocksAndSlowTheChain) {
  auto latency_with = [](bool lazy) {
    MiniRun run("quorum", 3);
    run.Submit(100, 10);
    std::unique_ptr<FaultInjector> injector;
    if (lazy) {
      injector = std::make_unique<FaultInjector>(
          FaultScheduleBuilder()
              .LazyProposer({0, 1, 2}, Seconds(1), Seconds(9))
              .Build(),
          &run.chain->context());
      std::string error;
      EXPECT_TRUE(injector->Install(&error)) << error;
    }
    run.chain->Start();
    run.sim.RunUntil(Seconds(60));
    EXPECT_EQ(run.Committed(), 1000u);  // liveness: honest slots catch up
    if (lazy) {
      EXPECT_GT(run.chain->context().stats().lazy_proposals, 0u);
    }
    // Aggregate commit delay: lazy slots defer work to later proposers.
    const TxStore& txs = run.chain->context().txs();
    double total = 0;
    for (TxId id = 0; id < txs.size(); ++id) {
      total += txs.at(id).LatencySeconds();
    }
    return total;
  };
  EXPECT_GT(latency_with(true), latency_with(false));
}

// --- Full-stack fault runs (primary + clients + resilience metrics) ---

TEST(FaultRunTest, PartitionHealYieldsRecoveryMetrics) {
  const FaultSchedule faults = FaultScheduleBuilder()
                                   .Partition({0, 1, 2, 3, 4, 5}, Seconds(10),
                                              Seconds(30))
                                   .Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = Seconds(2);
  const RunResult result =
      RunFaultBenchmark("quorum", "testnet", 100, 45, faults, retry, /*seed=*/1);
  ASSERT_TRUE(result.failure_reason.empty()) << result.failure_reason;
  const Report& report = result.report;
  EXPECT_TRUE(report.resilience);
  // The partition dents some submit-second's commit ratio...
  EXPECT_LT(report.min_interval_commit_ratio, 1.0);
  // ...and the chain recovers after the heal.
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_GE(report.recoveries[0], 0.0);
  EXPECT_LT(report.recoveries[0], 30.0);
  EXPECT_EQ(report.interval_commit_ratio.size(),
            report.submitted_per_second.size());
}

TEST(FaultRunTest, RetriesImproveCommitRatioUnderEndpointCrash) {
  // Node 0 dies for good. Clients see every node (the spec's ".*" view):
  // without retries the submissions routed to node 0 are lost; with retries
  // the next attempt rotates to a live endpoint and commits.
  const FaultSchedule faults =
      FaultScheduleBuilder().Crash(0, Seconds(5)).Build();
  auto run = [&](const RetryPolicy& retry) {
    BenchmarkSetup setup;
    setup.chain = "ethereum";
    setup.deployment = "testnet";
    setup.seed = 1;
    setup.faults = faults;
    setup.retry = retry;
    Primary primary(setup);
    WorkStream stream;
    stream.trace = ConstantTrace(100, 30);
    stream.endpoints = {".*"};
    std::vector<WorkStream> streams;
    streams.push_back(std::move(stream));
    return primary.RunStreams(std::move(streams), "retry-test");
  };
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.timeout = Seconds(1);
  const RunResult without = run(RetryPolicy{});
  const RunResult with = run(retry);
  EXPECT_GT(with.report.client_retries, 0u);
  EXPECT_GT(with.report.commit_ratio, without.report.commit_ratio);
}

TEST(FaultRunTest, SingleEndpointClientsAbortAfterBoundedAttempts) {
  // With a one-node view there is nowhere to walk: every retry re-hits the
  // dead endpoint, so the client aborts after its attempt budget.
  const FaultSchedule faults =
      FaultScheduleBuilder().Crash(0, Seconds(5)).Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = Seconds(1);
  const RunResult result = RunFaultBenchmark("ethereum", "testnet", 100, 30,
                                             faults, retry, /*seed=*/1);
  EXPECT_GT(result.report.client_retries, 0u);
  EXPECT_GT(result.report.client_aborts, 0u);
}

TEST(FaultRunTest, InvalidScheduleSurfacesAsFailureReason) {
  const FaultSchedule faults =
      FaultScheduleBuilder().Crash(42, Seconds(1)).Build();
  const RunResult result = RunFaultBenchmark("quorum", "testnet", 50, 10, faults,
                                             RetryPolicy{}, /*seed=*/1);
  EXPECT_NE(result.failure_reason.find("unknown host"), std::string::npos)
      << result.failure_reason;
}

TEST(FaultRunTest, FaultRunsAreDeterministic) {
  const FaultSchedule faults = FaultScheduleBuilder()
                                   .Crash(0, Seconds(5), Seconds(15))
                                   .Loss(0.05, Seconds(20), Seconds(25))
                                   .Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  auto run = [&] {
    return RunFaultBenchmark("quorum", "testnet", 100, 30, faults, retry,
                             /*seed=*/7);
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_EQ(a.report.submitted, b.report.submitted);
  EXPECT_EQ(a.report.committed, b.report.committed);
  EXPECT_EQ(a.report.dropped, b.report.dropped);
  EXPECT_EQ(a.report.view_changes, b.report.view_changes);
  EXPECT_EQ(a.report.client_retries, b.report.client_retries);
  EXPECT_EQ(a.report.client_aborts, b.report.client_aborts);
  EXPECT_EQ(a.report.avg_throughput, b.report.avg_throughput);
  EXPECT_EQ(a.report.avg_latency, b.report.avg_latency);
  EXPECT_EQ(a.report.recoveries, b.report.recoveries);
}

TEST(FaultRunTest, ByzantineRunsAreDeterministic) {
  const FaultSchedule faults = FaultScheduleBuilder()
                                   .EquivocateFraction(0.2, Seconds(5), Seconds(15))
                                   .WithholdVotesFraction(0.2, Seconds(20),
                                                          Seconds(25))
                                   .Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  auto run = [&] {
    return RunFaultBenchmark("quorum", "testnet", 100, 30, faults, retry,
                             /*seed=*/7);
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_TRUE(a.report.byzantine);
  EXPECT_EQ(a.report.submitted, b.report.submitted);
  EXPECT_EQ(a.report.committed, b.report.committed);
  EXPECT_EQ(a.report.view_changes, b.report.view_changes);
  EXPECT_EQ(a.report.equivocations_seen, b.report.equivocations_seen);
  EXPECT_EQ(a.report.votes_withheld, b.report.votes_withheld);
  EXPECT_EQ(a.report.avg_throughput, b.report.avg_throughput);
  EXPECT_EQ(a.report.avg_latency, b.report.avg_latency);
}

TEST(FaultRunTest, ByzantineScheduleTurnsOnTheByzantineReport) {
  // The extra report fields only appear when a schedule carries a
  // Byzantine kind — honest-fault runs keep the exact legacy shape.
  const FaultSchedule honest =
      FaultScheduleBuilder().Crash(0, Seconds(5), Seconds(10)).Build();
  RetryPolicy retry;
  retry.max_attempts = 2;
  const RunResult crash_only = RunFaultBenchmark("quorum", "testnet", 50, 15,
                                                 honest, retry, /*seed=*/1);
  EXPECT_TRUE(crash_only.report.resilience);
  EXPECT_FALSE(crash_only.report.byzantine);

  const FaultSchedule byzantine =
      FaultScheduleBuilder().LazyProposer({0}, Seconds(5), Seconds(10)).Build();
  const RunResult lazy = RunFaultBenchmark("quorum", "testnet", 50, 15,
                                           byzantine, retry, /*seed=*/1);
  EXPECT_TRUE(lazy.report.byzantine);
}

TEST(FaultRunTest, EmptyScheduleMatchesHealthyRunExactly) {
  // The fault machinery must be zero-cost when inactive: a run with an empty
  // schedule and retries disabled is bit-identical to the plain benchmark.
  const RunResult healthy =
      RunNativeBenchmark("quorum", "testnet", 100, 20, /*seed=*/5);
  const RunResult gated = RunFaultBenchmark("quorum", "testnet", 100, 20,
                                            FaultSchedule{}, RetryPolicy{},
                                            /*seed=*/5);
  EXPECT_EQ(healthy.report.submitted, gated.report.submitted);
  EXPECT_EQ(healthy.report.committed, gated.report.committed);
  EXPECT_EQ(healthy.report.avg_throughput, gated.report.avg_throughput);
  EXPECT_EQ(healthy.report.avg_latency, gated.report.avg_latency);
  EXPECT_EQ(healthy.report.max_latency, gated.report.max_latency);
  EXPECT_FALSE(gated.report.resilience);
}

}  // namespace
}  // namespace diablo
