// Tests for the fault-injection subsystem: schedule validation, the
// injector's execution of crash/partition/loss/straggler events, client
// retries, resilience metrics and determinism of faulty runs.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/chains/chain_factory.h"
#include "src/chains/params.h"
#include "src/core/runner.h"
#include "src/fault/injector.h"
#include "src/fault/schedule.h"

namespace diablo {
namespace {

struct MiniRun {
  Simulation sim;
  Network net;
  std::unique_ptr<ChainInstance> chain;

  MiniRun(const std::string& chain_name, uint64_t seed) : sim(seed), net(&sim) {
    chain = BuildChain(chain_name, GetDeployment("testnet"), &sim, &net);
  }

  void Submit(int tps, int seconds) {
    ChainContext& ctx = chain->context();
    uint32_t seq = 0;
    for (int s = 0; s < seconds; ++s) {
      for (int i = 0; i < tps; ++i) {
        Transaction tx;
        tx.account = seq % 100;
        tx.gas = NativeTransferGas(ctx.params().dialect);
        tx.size_bytes = kNativeTransferBytes;
        const SimTime when = Seconds(s) + Milliseconds(1000LL * i / tps);
        tx.submit_time = when;
        const TxId id = ctx.txs().Add(tx);
        const int endpoint = static_cast<int>(seq) % ctx.node_count();
        sim.ScheduleAt(when, [this, id, endpoint] {
          chain->context().SubmitAtEndpoint(id, endpoint, sim.Now());
        });
        ++seq;
      }
    }
  }

  size_t Committed() {
    return chain->context().txs().PhaseCounts()[static_cast<size_t>(
        TxPhase::kCommitted)];
  }
};

// --- Schedule validation ---

TEST(FaultScheduleTest, BuilderProducesWellFormedEvents) {
  const FaultSchedule schedule = FaultScheduleBuilder()
                                     .Crash(0, Seconds(10), Seconds(30))
                                     .Partition({1, 2, 3}, Seconds(5), Seconds(40))
                                     .Loss(0.05, Seconds(50), Seconds(60))
                                     .Straggler(4, 0.25, Seconds(5), Seconds(10))
                                     .Build();
  ASSERT_EQ(schedule.events.size(), 4u);
  EXPECT_EQ(schedule.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(schedule.events[0].node, 0);
  EXPECT_EQ(schedule.events[0].until, Seconds(30));
  EXPECT_EQ(schedule.events[1].nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(schedule.events[2].loss_rate, 0.05);
  EXPECT_DOUBLE_EQ(schedule.events[3].cpu_factor, 0.25);
  std::string error;
  EXPECT_TRUE(schedule.Validate(10, &error)) << error;
}

TEST(FaultScheduleTest, RejectsMalformedTimes) {
  std::string error;
  FaultSchedule negative =
      FaultScheduleBuilder().Crash(0, Seconds(-1)).Build();
  EXPECT_FALSE(negative.Validate(10, &error));

  FaultSchedule backwards =
      FaultScheduleBuilder().Partition({0}, Seconds(20), Seconds(10)).Build();
  EXPECT_FALSE(backwards.Validate(10, &error));
  EXPECT_NE(error.find("heal time"), std::string::npos) << error;
}

TEST(FaultScheduleTest, RejectsUnknownHosts) {
  std::string error;
  FaultSchedule schedule = FaultScheduleBuilder().Crash(12, Seconds(1)).Build();
  EXPECT_FALSE(schedule.Validate(10, &error));
  EXPECT_NE(error.find("unknown host"), std::string::npos) << error;
  // Without a deployment bound yet, host indices are not range-checked.
  EXPECT_TRUE(schedule.Validate(-1, &error)) << error;
}

TEST(FaultScheduleTest, RejectsOutOfRangeRatesAndFactors) {
  std::string error;
  EXPECT_FALSE(
      FaultScheduleBuilder().Loss(1.5, Seconds(1)).Build().Validate(10, &error));
  EXPECT_FALSE(
      FaultScheduleBuilder().Loss(-0.1, Seconds(1)).Build().Validate(10, &error));
  EXPECT_FALSE(FaultScheduleBuilder()
                   .Straggler(0, 0.0, Seconds(1))
                   .Build()
                   .Validate(10, &error));
  EXPECT_FALSE(FaultScheduleBuilder()
                   .Straggler(0, 1.5, Seconds(1))
                   .Build()
                   .Validate(10, &error));
}

TEST(FaultScheduleTest, RejectsOverlappingWindowsOnSameScope) {
  std::string error;
  // Two crash windows on the same node, overlapping in time.
  FaultSchedule same_node = FaultScheduleBuilder()
                                .Crash(0, Seconds(10), Seconds(30))
                                .Crash(0, Seconds(20), Seconds(40))
                                .Build();
  EXPECT_FALSE(same_node.Validate(10, &error));
  EXPECT_NE(error.find("overlaps"), std::string::npos) << error;

  // Same windows on different nodes are fine.
  FaultSchedule different_nodes = FaultScheduleBuilder()
                                      .Crash(0, Seconds(10), Seconds(30))
                                      .Crash(1, Seconds(20), Seconds(40))
                                      .Build();
  EXPECT_TRUE(different_nodes.Validate(10, &error)) << error;

  // Two all-pair loss windows overlapping; and back-to-back ones are fine.
  FaultSchedule loss_overlap = FaultScheduleBuilder()
                                   .Loss(0.1, Seconds(0), Seconds(10))
                                   .Loss(0.2, Seconds(5), Seconds(15))
                                   .Build();
  EXPECT_FALSE(loss_overlap.Validate(10, &error));
  FaultSchedule loss_sequential = FaultScheduleBuilder()
                                      .Loss(0.1, Seconds(0), Seconds(10))
                                      .Loss(0.2, Seconds(10), Seconds(15))
                                      .Build();
  EXPECT_TRUE(loss_sequential.Validate(10, &error)) << error;
}

TEST(FaultScheduleTest, HealTimesAreSortedHealInstants) {
  const FaultSchedule schedule = FaultScheduleBuilder()
                                     .Partition({1}, Seconds(10), Seconds(40))
                                     .Crash(0, Seconds(5), Seconds(15))
                                     .Loss(0.1, Seconds(0))  // never heals
                                     .Build();
  const std::vector<SimTime> heals = schedule.HealTimes();
  ASSERT_EQ(heals.size(), 2u);
  EXPECT_EQ(heals[0], Seconds(15));
  EXPECT_EQ(heals[1], Seconds(40));
}

// --- Injector execution ---

TEST(FaultInjectorTest, CrashCausesViewChangesThenRecovery) {
  MiniRun run("quorum", 3);
  run.Submit(100, 30);
  FaultInjector injector(
      FaultScheduleBuilder().Crash(0, Seconds(5), Seconds(15)).Build(),
      &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(90));
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 1u);
  // The dead leader costs round changes, but the rotation keeps committing.
  EXPECT_GT(run.chain->context().stats().view_changes, 0u);
  EXPECT_GE(run.Committed(), 2000u);
}

TEST(FaultInjectorTest, MajorityPartitionStallsUntilHeal) {
  MiniRun run("quorum", 3);
  run.Submit(100, 30);
  FaultInjector injector(FaultScheduleBuilder()
                             .Partition({0, 1, 2, 3, 4, 5}, Seconds(5), Seconds(20))
                             .Build(),
                         &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(90));
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().heals, 1u);
  // No quorum inside the window, full progress after the heal.
  const TxStore& txs = run.chain->context().txs();
  size_t inside = 0;
  size_t after = 0;
  for (TxId id = 0; id < txs.size(); ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase != TxPhase::kCommitted) {
      continue;
    }
    if (tx.commit_time > Seconds(6) && tx.commit_time < Seconds(20)) {
      ++inside;
    } else if (tx.commit_time >= Seconds(20)) {
      ++after;
    }
  }
  EXPECT_EQ(inside, 0u);
  EXPECT_GT(after, 0u);
}

TEST(FaultInjectorTest, LossWindowRegistersDropsOnTheNetwork) {
  MiniRun run("quorum", 3);
  run.Submit(100, 10);
  FaultInjector injector(
      FaultScheduleBuilder().Loss(0.3, Seconds(2), Seconds(8)).Build(),
      &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  EXPECT_EQ(injector.stats().loss_windows, 1u);
  EXPECT_GT(run.net.stats().loss_drops, 0u);
  EXPECT_GT(run.Committed(), 0u);
}

TEST(FaultInjectorTest, StragglerSlowsButDoesNotStopTheChain) {
  MiniRun run("quorum", 3);
  run.Submit(100, 10);
  FaultInjector injector(
      FaultScheduleBuilder().Straggler(0, 0.2, Seconds(0), Seconds(20)).Build(),
      &run.chain->context());
  std::string error;
  ASSERT_TRUE(injector.Install(&error)) << error;
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  EXPECT_EQ(injector.stats().stragglers, 1u);
  EXPECT_GE(run.Committed(), 800u);
}

TEST(FaultInjectorTest, InvalidScheduleFailsToInstall) {
  MiniRun run("quorum", 3);
  FaultInjector injector(FaultScheduleBuilder().Crash(42, Seconds(1)).Build(),
                         &run.chain->context());
  std::string error;
  EXPECT_FALSE(injector.Install(&error));
  EXPECT_NE(error.find("unknown host"), std::string::npos) << error;
}

// --- Full-stack fault runs (primary + clients + resilience metrics) ---

TEST(FaultRunTest, PartitionHealYieldsRecoveryMetrics) {
  const FaultSchedule faults = FaultScheduleBuilder()
                                   .Partition({0, 1, 2, 3, 4, 5}, Seconds(10),
                                              Seconds(30))
                                   .Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = Seconds(2);
  const RunResult result =
      RunFaultBenchmark("quorum", "testnet", 100, 45, faults, retry, /*seed=*/1);
  ASSERT_TRUE(result.failure_reason.empty()) << result.failure_reason;
  const Report& report = result.report;
  EXPECT_TRUE(report.resilience);
  // The partition dents some submit-second's commit ratio...
  EXPECT_LT(report.min_interval_commit_ratio, 1.0);
  // ...and the chain recovers after the heal.
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_GE(report.recoveries[0], 0.0);
  EXPECT_LT(report.recoveries[0], 30.0);
  EXPECT_EQ(report.interval_commit_ratio.size(),
            report.submitted_per_second.size());
}

TEST(FaultRunTest, RetriesImproveCommitRatioUnderEndpointCrash) {
  // Node 0 dies for good. Clients see every node (the spec's ".*" view):
  // without retries the submissions routed to node 0 are lost; with retries
  // the next attempt rotates to a live endpoint and commits.
  const FaultSchedule faults =
      FaultScheduleBuilder().Crash(0, Seconds(5)).Build();
  auto run = [&](const RetryPolicy& retry) {
    BenchmarkSetup setup;
    setup.chain = "ethereum";
    setup.deployment = "testnet";
    setup.seed = 1;
    setup.faults = faults;
    setup.retry = retry;
    Primary primary(setup);
    WorkStream stream;
    stream.trace = ConstantTrace(100, 30);
    stream.endpoints = {".*"};
    std::vector<WorkStream> streams;
    streams.push_back(std::move(stream));
    return primary.RunStreams(std::move(streams), "retry-test");
  };
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.timeout = Seconds(1);
  const RunResult without = run(RetryPolicy{});
  const RunResult with = run(retry);
  EXPECT_GT(with.report.client_retries, 0u);
  EXPECT_GT(with.report.commit_ratio, without.report.commit_ratio);
}

TEST(FaultRunTest, SingleEndpointClientsAbortAfterBoundedAttempts) {
  // With a one-node view there is nowhere to walk: every retry re-hits the
  // dead endpoint, so the client aborts after its attempt budget.
  const FaultSchedule faults =
      FaultScheduleBuilder().Crash(0, Seconds(5)).Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.timeout = Seconds(1);
  const RunResult result = RunFaultBenchmark("ethereum", "testnet", 100, 30,
                                             faults, retry, /*seed=*/1);
  EXPECT_GT(result.report.client_retries, 0u);
  EXPECT_GT(result.report.client_aborts, 0u);
}

TEST(FaultRunTest, InvalidScheduleSurfacesAsFailureReason) {
  const FaultSchedule faults =
      FaultScheduleBuilder().Crash(42, Seconds(1)).Build();
  const RunResult result = RunFaultBenchmark("quorum", "testnet", 50, 10, faults,
                                             RetryPolicy{}, /*seed=*/1);
  EXPECT_NE(result.failure_reason.find("unknown host"), std::string::npos)
      << result.failure_reason;
}

TEST(FaultRunTest, FaultRunsAreDeterministic) {
  const FaultSchedule faults = FaultScheduleBuilder()
                                   .Crash(0, Seconds(5), Seconds(15))
                                   .Loss(0.05, Seconds(20), Seconds(25))
                                   .Build();
  RetryPolicy retry;
  retry.max_attempts = 3;
  auto run = [&] {
    return RunFaultBenchmark("quorum", "testnet", 100, 30, faults, retry,
                             /*seed=*/7);
  };
  const RunResult a = run();
  const RunResult b = run();
  EXPECT_EQ(a.report.submitted, b.report.submitted);
  EXPECT_EQ(a.report.committed, b.report.committed);
  EXPECT_EQ(a.report.dropped, b.report.dropped);
  EXPECT_EQ(a.report.view_changes, b.report.view_changes);
  EXPECT_EQ(a.report.client_retries, b.report.client_retries);
  EXPECT_EQ(a.report.client_aborts, b.report.client_aborts);
  EXPECT_EQ(a.report.avg_throughput, b.report.avg_throughput);
  EXPECT_EQ(a.report.avg_latency, b.report.avg_latency);
  EXPECT_EQ(a.report.recoveries, b.report.recoveries);
}

TEST(FaultRunTest, EmptyScheduleMatchesHealthyRunExactly) {
  // The fault machinery must be zero-cost when inactive: a run with an empty
  // schedule and retries disabled is bit-identical to the plain benchmark.
  const RunResult healthy =
      RunNativeBenchmark("quorum", "testnet", 100, 20, /*seed=*/5);
  const RunResult gated = RunFaultBenchmark("quorum", "testnet", 100, 20,
                                            FaultSchedule{}, RetryPolicy{},
                                            /*seed=*/5);
  EXPECT_EQ(healthy.report.submitted, gated.report.submitted);
  EXPECT_EQ(healthy.report.committed, gated.report.committed);
  EXPECT_EQ(healthy.report.avg_throughput, gated.report.avg_throughput);
  EXPECT_EQ(healthy.report.avg_latency, gated.report.avg_latency);
  EXPECT_EQ(healthy.report.max_latency, gated.report.max_latency);
  EXPECT_FALSE(gated.report.resilience);
}

}  // namespace
}  // namespace diablo
