// Tests for the Raft engine (Quorum's crash-fault-tolerant option, §5.2)
// and for fault injection across the engines.
#include <gtest/gtest.h>

#include "src/chains/chain_factory.h"
#include "src/chains/params.h"

namespace diablo {
namespace {

ChainParams QuorumRaftParams() {
  ChainParams params = GetChainParams("quorum");
  params.name = "quorum-raft";
  params.consensus_name = "Raft";
  params.block_interval = Milliseconds(250);  // Raft mints on demand
  return params;
}

struct MiniRun {
  Simulation sim;
  Network net;
  std::unique_ptr<ChainInstance> chain;

  MiniRun(const ChainParams& params, const std::string& deployment, uint64_t seed)
      : sim(seed), net(&sim) {
    chain = BuildChainFromParams(params, GetDeployment(deployment), &sim, &net);
  }

  void Submit(int tps, int seconds) {
    ChainContext& ctx = chain->context();
    uint32_t seq = 0;
    for (int s = 0; s < seconds; ++s) {
      for (int i = 0; i < tps; ++i) {
        Transaction tx;
        tx.account = seq % 100;
        tx.gas = NativeTransferGas(ctx.params().dialect);
        tx.size_bytes = kNativeTransferBytes;
        const SimTime when = Seconds(s) + Milliseconds(1000LL * i / tps);
        tx.submit_time = when;
        const TxId id = ctx.txs().Add(tx);
        const int endpoint = static_cast<int>(seq) % ctx.node_count();
        sim.ScheduleAt(when, [this, id, endpoint] {
          chain->context().SubmitAtEndpoint(id, endpoint, sim.Now());
        });
        ++seq;
      }
    }
  }

  size_t Committed() {
    return chain->context().txs().PhaseCounts()[static_cast<size_t>(TxPhase::kCommitted)];
  }
};

TEST(RaftTest, CommitsWithMajorityAcks) {
  MiniRun run(QuorumRaftParams(), "testnet", 3);
  run.Submit(200, 10);
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  EXPECT_GE(run.Committed(), 1800u);
  EXPECT_EQ(run.chain->context().stats().view_changes, 0u);
}

TEST(RaftTest, FasterThanIbftOnWan) {
  // One round trip to a majority vs three BFT phases: Raft commits with
  // lower latency on the same WAN deployment.
  auto latency = [](const ChainParams& params) {
    MiniRun run(params, "devnet", 3);
    run.Submit(100, 10);
    run.chain->Start();
    run.sim.RunUntil(Seconds(60));
    const TxStore& txs = run.chain->context().txs();
    double sum = 0;
    size_t n = 0;
    for (TxId id = 0; id < txs.size(); ++id) {
      if (txs.at(id).phase == TxPhase::kCommitted) {
        sum += txs.at(id).LatencySeconds();
        ++n;
      }
    }
    return n == 0 ? 1e9 : sum / static_cast<double>(n);
  };
  ChainParams ibft = GetChainParams("quorum");
  ibft.block_interval = Milliseconds(250);
  EXPECT_LT(latency(QuorumRaftParams()), latency(ibft));
}

TEST(RaftTest, LeaderPartitionTriggersElection) {
  MiniRun run(QuorumRaftParams(), "testnet", 3);
  run.Submit(100, 20);
  run.chain->Start();
  // Cut the initial leader (node 0) off after 5 s.
  run.sim.ScheduleAt(Seconds(5), [&run] {
    run.net.SetPartitioned(run.chain->context().hosts()[0], true);
  });
  run.sim.RunUntil(Seconds(90));
  EXPECT_GT(run.chain->context().stats().view_changes, 0u);
  // A new leader keeps committing the workload.
  EXPECT_GE(run.Committed(), 1000u);
}

TEST(RedBellyTest, LeaderlessDbftCommitsNormally) {
  MiniRun run(GetChainParams("redbelly"), "testnet", 3);
  run.Submit(500, 10);
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  EXPECT_GE(run.Committed(), 4500u);
  EXPECT_EQ(run.chain->context().stats().view_changes, 0u);
}

TEST(RedBellyTest, ImmuneToTheQuorumCollapse) {
  // §6.3/§6.6: under the same sustained 10k TPS flood that collapses
  // Quorum's leader-based IBFT, leaderless DBFT keeps a high throughput.
  auto run_flood = [](const char* chain) {
    MiniRun run(GetChainParams(chain), "testnet", 3);
    run.Submit(10000, 30);
    run.chain->Start();
    run.sim.RunUntil(Seconds(120));
    return run.Committed();
  };
  const size_t redbelly = run_flood("redbelly");
  const size_t quorum = run_flood("quorum");
  EXPECT_GT(redbelly, 5 * quorum);
  EXPECT_GT(redbelly, 100000u);
}

TEST(RedBellyTest, SuperblocksUniteManyProposersWork) {
  MiniRun run(GetChainParams("redbelly"), "devnet", 3);
  run.Submit(4000, 10);
  run.chain->Start();
  run.sim.RunUntil(Seconds(60));
  const Ledger& ledger = run.chain->context().ledger();
  ASSERT_GT(ledger.block_count(), 0u);
  // Superblocks carry far more than a single leader's mini-block.
  size_t biggest = 0;
  for (size_t i = 0; i < ledger.block_count(); ++i) {
    biggest = std::max<size_t>(biggest, ledger.block(i).tx_count);
  }
  EXPECT_GT(biggest, 2000u);
}

TEST(FaultInjectionTest, IbftStallsWithoutQuorum) {
  ChainParams params = GetChainParams("quorum");
  MiniRun run(params, "testnet", 5);
  run.Submit(100, 20);
  run.chain->Start();
  // Partition 4 of 10 nodes at t = 5 s: fewer than 2f+1 = 7 remain.
  run.sim.ScheduleAt(Seconds(5), [&run] {
    for (int i = 0; i < 4; ++i) {
      run.net.SetPartitioned(run.chain->context().hosts()[static_cast<size_t>(i)], true);
    }
  });
  run.sim.RunUntil(Seconds(120));
  // Only the pre-partition seconds committed.
  EXPECT_LT(run.Committed(), 900u);
  EXPECT_GT(run.chain->context().stats().view_changes, 0u);
}

TEST(FaultInjectionTest, IbftSurvivesMinorityPartition) {
  ChainParams params = GetChainParams("quorum");
  MiniRun run(params, "testnet", 5);
  run.Submit(100, 20);
  run.chain->Start();
  // 3 of 10 partitioned: 7 = 2f+1 remain, the protocol keeps committing.
  run.sim.ScheduleAt(Seconds(5), [&run] {
    for (int i = 0; i < 3; ++i) {
      run.net.SetPartitioned(run.chain->context().hosts()[static_cast<size_t>(i)], true);
    }
  });
  run.sim.RunUntil(Seconds(120));
  // Progress continues, though rounds whose rotating proposer is partitioned
  // burn a view-change timeout each.
  EXPECT_GE(run.Committed(), 800u);
}

TEST(FaultInjectionTest, ExtraDelaySlowsCommits) {
  auto avg_latency = [](bool degraded) {
    ChainParams params = GetChainParams("quorum");
    MiniRun run(params, "devnet", 5);
    if (degraded) {
      for (int i = 0; i < kRegionCount; ++i) {
        for (int j = i + 1; j < kRegionCount; ++j) {
          run.net.SetExtraDelay(static_cast<Region>(i), static_cast<Region>(j),
                                Milliseconds(300));
        }
      }
    }
    run.Submit(100, 10);
    run.chain->Start();
    run.sim.RunUntil(Seconds(90));
    const TxStore& txs = run.chain->context().txs();
    double sum = 0;
    size_t n = 0;
    for (TxId id = 0; id < txs.size(); ++id) {
      if (txs.at(id).phase == TxPhase::kCommitted) {
        sum += txs.at(id).LatencySeconds();
        ++n;
      }
    }
    return n == 0 ? 1e9 : sum / static_cast<double>(n);
  };
  EXPECT_GT(avg_latency(true), avg_latency(false) + 0.5);
}

}  // namespace
}  // namespace diablo
