#include <gtest/gtest.h>

#include <cmath>

#include "src/contracts/contracts.h"
#include "src/vm/assembler.h"
#include "src/vm/dialect.h"
#include "src/vm/interpreter.h"

namespace diablo {
namespace {

ExecResult Call(const Program& program, std::string_view function,
                std::vector<int64_t> args, ContractState* state,
                VmDialect dialect = VmDialect::kGeth, uint64_t caller = 42) {
  ExecRequest request;
  request.program = &program;
  request.function = function;
  request.args = args;
  request.caller = caller;
  request.state = state;
  request.dialect = dialect;
  return Execute(request);
}

// Deploys a contract: compiles it and runs init (when exported) with the
// bundled init args.
Program Deploy(const ContractDef& def, ContractState* state) {
  Program program = CompileContract(def);
  if (program.EntryOf("init") >= 0) {
    const ExecResult result = Call(program, "init", def.init_args, state);
    EXPECT_EQ(result.status, VmStatus::kOk) << def.name;
  }
  return program;
}

TEST(RegistryTest, AllFiveDAppsPresent) {
  EXPECT_EQ(AllContracts().size(), 5u);
  for (const char* name : {"exchange", "dota", "counter", "uber", "youtube"}) {
    EXPECT_NE(FindContract(name), nullptr) << name;
  }
  EXPECT_NE(FindContract("ExchangeContractGafam"), nullptr);
  EXPECT_NE(FindContract("DecentralizedDota"), nullptr);
  EXPECT_EQ(FindContract("doom"), nullptr);
}

TEST(RegistryTest, DisassemblyCoversEveryBundledContract) {
  // Round-trip sanity: disassembling the bundled DApps never hits an
  // unknown opcode and mentions every exported function.
  for (const ContractDef& def : AllContracts()) {
    const Program program = CompileContract(def);
    const std::string text = Disassemble(program);
    for (const FunctionEntry& f : program.functions) {
      EXPECT_NE(text.find(".func " + f.name), std::string::npos)
          << def.name << "/" << f.name;
    }
  }
}

TEST(RegistryTest, AllContractsAssemble) {
  for (const ContractDef& def : AllContracts()) {
    const Program program = CompileContract(def);
    EXPECT_FALSE(program.code.empty()) << def.name;
    EXPECT_FALSE(program.functions.empty()) << def.name;
  }
}

TEST(ExchangeTest, BuyDecrementsSupply) {
  ContractState state;
  const Program program = Deploy(*FindContract("exchange"), &state);
  EXPECT_EQ(Call(program, "check_stock", {1}, &state).return_value, 100000000);
  for (const char* fn : {"buy_google", "buy_apple", "buy_facebook", "buy_amazon",
                         "buy_microsoft"}) {
    const ExecResult result = Call(program, fn, {}, &state);
    EXPECT_EQ(result.status, VmStatus::kOk) << fn;
    EXPECT_EQ(result.events_emitted, 1) << fn;
  }
  for (int64_t key = 1; key <= 5; ++key) {
    EXPECT_EQ(Call(program, "check_stock", {key}, &state).return_value, 99999999);
  }
}

TEST(ExchangeTest, SoldOutStockReverts) {
  ContractState state;
  const Program program = CompileContract(*FindContract("exchange"));
  // Initialize with supply 2 instead of the default.
  ASSERT_EQ(Call(program, "init", {2}, &state).status, VmStatus::kOk);
  EXPECT_EQ(Call(program, "buy_apple", {}, &state).status, VmStatus::kOk);
  EXPECT_EQ(Call(program, "buy_apple", {}, &state).status, VmStatus::kOk);
  const ExecResult result = Call(program, "buy_apple", {}, &state);
  EXPECT_EQ(result.status, VmStatus::kReverted);
  EXPECT_EQ(Call(program, "check_stock", {2}, &state).return_value, 0);
  // Other stocks unaffected.
  EXPECT_EQ(Call(program, "buy_google", {}, &state).status, VmStatus::kOk);
}

TEST(ExchangeTest, RunsOnEveryDialect) {
  for (const VmDialect dialect :
       {VmDialect::kGeth, VmDialect::kAvm, VmDialect::kMoveVm, VmDialect::kEbpf}) {
    ContractState state;
    const Program program = CompileContract(*FindContract("exchange"));
    ASSERT_EQ(Call(program, "init", {1000}, &state, dialect).status, VmStatus::kOk);
    EXPECT_EQ(Call(program, "buy_microsoft", {}, &state, dialect).status, VmStatus::kOk)
        << DialectName(dialect);
  }
}

TEST(DotaTest, InitSpreadsPlayers) {
  ContractState state;
  Deploy(*FindContract("dota"), &state);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(state.Load(static_cast<uint64_t>(100 + 4 * i)), 25 * i);
    EXPECT_EQ(state.Load(static_cast<uint64_t>(101 + 4 * i)), 1);
    EXPECT_EQ(state.Load(static_cast<uint64_t>(102 + 4 * i)), 20 * i);
    EXPECT_EQ(state.Load(static_cast<uint64_t>(103 + 4 * i)), 1);
  }
}

TEST(DotaTest, UpdateMovesAllPlayers) {
  ContractState state;
  const Program program = Deploy(*FindContract("dota"), &state);
  const ExecResult result = Call(program, "update", {1, 1}, &state);
  EXPECT_EQ(result.status, VmStatus::kOk);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(state.Load(static_cast<uint64_t>(100 + 4 * i)), 25 * i + 1) << i;
    EXPECT_EQ(state.Load(static_cast<uint64_t>(102 + 4 * i)), 20 * i + 1) << i;
  }
}

TEST(DotaTest, PlayersTurnBackAtBorders) {
  ContractState state;
  const Program program = Deploy(*FindContract("dota"), &state);
  // Push player 9 (x = 225) past the right border: 4 steps reach 245, the
  // 5th crosses 250 and clamps.
  for (int step = 0; step < 5; ++step) {
    ASSERT_EQ(Call(program, "update", {5, 0}, &state).status, VmStatus::kOk);
  }
  EXPECT_EQ(state.Load(100 + 4 * 9), 249);  // clamped at the border
  EXPECT_EQ(state.Load(101 + 4 * 9), -1);   // turned back
  ASSERT_EQ(Call(program, "update", {5, 0}, &state).status, VmStatus::kOk);
  EXPECT_EQ(state.Load(100 + 4 * 9), 244);  // now moving left
}

TEST(DotaTest, PlayersTurnBackAtLeftBorder) {
  ContractState state;
  const Program program = Deploy(*FindContract("dota"), &state);
  // Player 0 starts at x = 0 and immediately bounces when pushed left.
  // Move left: direction is +1 initially, so pass dx = -3.
  ASSERT_EQ(Call(program, "update", {-3, 0}, &state).status, VmStatus::kOk);
  EXPECT_EQ(state.Load(100), 0);
  EXPECT_EQ(state.Load(101), 1);
}

TEST(DotaTest, UpdateStaysWithinAvmOpBudgetOnTypicalPath) {
  ContractState state;
  const Program program = Deploy(*FindContract("dota"), &state);
  const ExecResult result = Call(program, "update", {1, 1}, &state, VmDialect::kAvm);
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_LE(result.ops_executed, LimitsOf(VmDialect::kAvm).op_budget);
}

TEST(CounterTest, AddIncrements) {
  ContractState state;
  const Program program = Deploy(*FindContract("counter"), &state);
  for (int i = 0; i < 5; ++i) {
    const ExecResult result = Call(program, "add", {}, &state);
    EXPECT_EQ(result.status, VmStatus::kOk);
  }
  EXPECT_EQ(Call(program, "get", {}, &state).return_value, 5);
}

TEST(CounterTest, CheapEnoughForEveryDialect) {
  for (const VmDialect dialect :
       {VmDialect::kGeth, VmDialect::kAvm, VmDialect::kMoveVm, VmDialect::kEbpf}) {
    ContractState state;
    const Program program = Deploy(*FindContract("counter"), &state);
    EXPECT_EQ(Call(program, "add", {}, &state, dialect).status, VmStatus::kOk)
        << DialectName(dialect);
  }
}

class IsqrtTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(IsqrtTest, MatchesFloorSqrt) {
  ContractState state;
  const Program program = Deploy(*FindContract("uber"), &state);
  const int64_t n = GetParam();
  const ExecResult result = Call(program, "isqrt", {n}, &state);
  ASSERT_EQ(result.status, VmStatus::kOk) << n;
  const int64_t expected = static_cast<int64_t>(std::sqrt(static_cast<double>(n)));
  // Guard against floating point edge cases in the oracle itself.
  int64_t want = expected;
  while ((want + 1) * (want + 1) <= n) {
    ++want;
  }
  while (want * want > n) {
    --want;
  }
  EXPECT_EQ(result.return_value, want) << n;
}

INSTANTIATE_TEST_SUITE_P(Values, IsqrtTest,
                         ::testing::Values(0, 1, 2, 3, 4, 8, 9, 15, 16, 17, 99, 100,
                                           10000, 123456, 999999, 250000000,
                                           287423001, 2147395600));

TEST(UberTest, CheckDistanceIsComputeIntensive) {
  ContractState state;
  const Program program = Deploy(*FindContract("uber"), &state);
  const ExecResult result = Call(program, "check_distance", {5000, 5000}, &state);
  EXPECT_EQ(result.status, VmStatus::kOk);
  // 10,000 probes, each with a Newton loop: the op count must dwarf every
  // hard dialect budget (the mechanism behind Fig. 5's X marks).
  EXPECT_GT(result.ops_executed, 1000000);
  EXPECT_GT(result.gas_used, 1000000);
  EXPECT_GE(result.return_value, 0);
  EXPECT_LT(result.return_value, 300000000);
}

TEST(UberTest, BudgetExceededOnCappedDialects) {
  // §6.4: Algorand, Diem and Solana report "budget exceeded" on the
  // mobility DApp; the three geth chains execute it.
  for (const VmDialect dialect :
       {VmDialect::kAvm, VmDialect::kMoveVm, VmDialect::kEbpf}) {
    ContractState state;
    const Program program = Deploy(*FindContract("uber"), &state);
    const ExecResult result = Call(program, "check_distance", {5000, 5000}, &state,
                                   dialect);
    EXPECT_EQ(result.status, VmStatus::kBudgetExceeded) << DialectName(dialect);
  }
  ContractState state;
  const Program program = Deploy(*FindContract("uber"), &state);
  EXPECT_EQ(Call(program, "check_distance", {5000, 5000}, &state, VmDialect::kGeth).status,
            VmStatus::kOk);
}

TEST(UberTest, DistanceDependsOnCustomerPosition) {
  ContractState state;
  const Program program = Deploy(*FindContract("uber"), &state);
  const int64_t near = Call(program, "check_distance", {7001, 4203}, &state).return_value;
  const int64_t far = Call(program, "check_distance", {1, 9999}, &state).return_value;
  EXPECT_LT(near, far);
  EXPECT_EQ(near, 0);  // a probe lands exactly on the customer
}

TEST(YoutubeTest, UploadRecordsOwnerAndData) {
  ContractState state;
  const Program program = Deploy(*FindContract("youtube"), &state);
  const ExecResult result = Call(program, "upload", {2048}, &state, VmDialect::kGeth,
                                 /*caller=*/99);
  EXPECT_EQ(result.status, VmStatus::kOk);
  EXPECT_EQ(result.events_emitted, 1);
  EXPECT_EQ(Call(program, "count", {}, &state).return_value, 1);
  EXPECT_EQ(state.Load(1000002), 99);      // owner record for video 1
  EXPECT_EQ(state.BlobSize(1000003), 2048);  // video data
}

TEST(YoutubeTest, MultipleUploadsGetDistinctSlots) {
  ContractState state;
  const Program program = Deploy(*FindContract("youtube"), &state);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(Call(program, "upload", {512}, &state).status, VmStatus::kOk);
  }
  EXPECT_EQ(Call(program, "count", {}, &state).return_value, 3);
  EXPECT_EQ(state.total_blob_bytes(), 3 * 512);
}

TEST(YoutubeTest, RejectedByAvmStateLimit) {
  // §5.2: "we could not implement the video sharing DApp in Teal as we
  // needed data structures that were too large to be stored in the state".
  ContractState state;
  const Program program = Deploy(*FindContract("youtube"), &state);
  const ExecResult result = Call(program, "upload", {1024}, &state, VmDialect::kAvm);
  EXPECT_EQ(result.status, VmStatus::kStateLimitExceeded);
  // The failed upload left no trace.
  EXPECT_EQ(Call(program, "count", {}, &state).return_value, 0);
}

}  // namespace
}  // namespace diablo
