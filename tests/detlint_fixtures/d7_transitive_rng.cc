// detlint fixture: rule D7 — RNG draws / global writes reachable from a
// parallel-phase root through the call graph, outside any marked region.
// v1's per-file region scan saw nothing here: every hazard sits in a helper
// lexically outside the begin/end markers.

unsigned long g_tally = 0;

unsigned long HelperDraw(diablo::ChainContext* ctx) {
  return ctx->rng().NextU64();  // D7 via Root -> HelperDraw (one level deep)
}

void HelperWrite(unsigned long v) {
  g_tally += v;  // D7 via Root -> Middle -> HelperWrite (two levels deep)
}

void Middle(unsigned long v) { HelperWrite(v); }

unsigned long HelperSuppressed(diablo::ChainContext* ctx) {
  // detlint: allow(D7, fixture: this helper is handed the shard-owned stream)
  return ctx->rng().NextU64();
}

unsigned long Unreached(diablo::ChainContext* ctx) {
  return ctx->rng().NextU64();  // no root calls this: quiet (ctx is D4-allowlisted)
}

// detlint: parallel-phase(begin, fixture-root)
unsigned long Root(diablo::ChainContext* ctx, unsigned long v) {
  Middle(v);
  return HelperDraw(ctx) + HelperSuppressed(ctx);
}
// detlint: parallel-phase(end)
