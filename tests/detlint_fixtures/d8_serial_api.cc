// detlint fixture: rule D8 — serial-only APIs reachable from a parallel
// phase, both through helpers and lexically inside the region.

void HelperSchedule(diablo::Simulation* sim, long when) {
  sim->ScheduleAt(when, [] {});  // D8 via Root -> HelperSchedule
}

void HelperPrint(unsigned long v) {
  printf("%lu\n", v);  // D8 via Root -> HelperPrint (stdout)
}

void HelperSuppressed(diablo::Simulation* sim, long when) {
  // detlint: allow(D8, fixture: this path only runs when sharding is disabled)
  sim->ScheduleAt(when, [] {});
}

// detlint: parallel-phase(begin)
void Root(diablo::Simulation* sim, long when) {
  HelperSchedule(sim, when);
  HelperPrint(7);
  HelperSuppressed(sim, when);
  sim->ScheduleAt(when, [] {});   // D8 directly inside the region
  sim->ScheduleOn(0, [] {});      // shard-owned alternative: quiet
  sim->ScheduleAtOn(1, when, [] {});  // also quiet
}
// detlint: parallel-phase(end)
