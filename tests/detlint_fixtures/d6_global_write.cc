// detlint fixture: rule D6 — writes to g_* globals inside parallel-phase regions.

unsigned long g_counter = 0;
double g_total = 0;
bool g_flag = false;

void WriteOutsidePhase() { g_counter = 1; }  // outside any region: quiet

// detlint: parallel-phase(begin)
void Writes(unsigned long v) {
  g_counter = v;
  g_counter += v;
  g_total *= 2.0;
  ++g_counter;
  g_counter++;
  g_flag.store(true);
}

unsigned long Reads(unsigned long v) {
  if (g_counter == v) {
    return v + g_counter;
  }
  return g_total <= 1.0 ? v : g_counter;
}

void Suppressed(unsigned long v) {
  // detlint: allow(D6, fixture: the runner merges this counter at the barrier)
  g_counter = v;
}
// detlint: parallel-phase(end)
