// detlint fixture: raw string literals are data, not code — including the
// encoding-prefixed forms (u8R/uR/UR/LR) the v1 lexer mis-lexed as an
// identifier followed by an ordinary string, which terminated at the first
// embedded quote and leaked the remainder into the token stream.
const char* kPlain = R"(rand() and steady_clock inside a raw string)";
const char* kDelim = R"x(std::unordered_map<int*, int> " and a stray )" stays raw)x";
const char* kPrefixed = u8R"(calling rand() with an embedded quote: ")";
const char* kWide = LR"(time(nullptr) and another quote: ")";
const char* kShort = uR"(srand(7))";
const char* kCaps = UR"(gettimeofday in here too)";
// The swallowed-suppression regression: with the prefix bug the lexer's
// quote state desynced above, so this directive vanished into a phantom
// string literal and the rand() below surfaced unsuppressed.
// detlint: allow(D2, fixture: proves suppressions survive raw strings)
unsigned long Tick() { return 1 + rand(); }
