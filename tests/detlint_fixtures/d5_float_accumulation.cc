// detlint fixture: rule D5 — FP accumulation without a fixed reduction order.
#include <unordered_map>

double MeanLatency() {
  std::unordered_map<int, double> samples;
  double total = 0.0;
  for (const auto& entry : samples) {
    total += entry.second;
  }
  return total;
}

double MeanSuppressed() {
  std::unordered_map<int, double> samples;
  double sum = 0.0;
  // detlint: allow(D1, fixture: demonstration of a fully suppressed loop)
  for (const auto& entry : samples) {
    // detlint: allow(D5, fixture: values are all equal so order cannot matter)
    sum += entry.second;
  }
  return sum;
}
