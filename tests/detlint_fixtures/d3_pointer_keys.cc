// detlint fixture: rule D3 — pointer-valued keys and address-derived order.
#include <cstdint>
#include <map>
#include <unordered_map>

struct Node {};

std::map<Node*, int> g_ranks;

uint64_t AddressKey(const Node* node) {
  return reinterpret_cast<uint64_t>(node);
}

// detlint: allow(D3, fixture: keyed for lifetime tracking only, never iterated or ordered)
std::unordered_map<Node*, int> g_lifetimes;
