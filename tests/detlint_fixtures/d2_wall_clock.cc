// detlint fixture: rule D2 — wall-clock and libc entropy sources.
#include <chrono>
#include <cstdlib>

long NowNanos() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

int LibcDraw() {
  int draw = rand();
  return draw;
}

long Stamp() {
  // detlint: allow(D2, fixture: profiling-only wall time)
  auto t = std::chrono::system_clock::now();
  return t.time_since_epoch().count();
}
