// detlint fixture: rule D4 — draws from RNG streams that may be shared.
#include "src/support/rng.h"

using diablo::Rng;

struct Engine {
  Rng& rng();
};

unsigned long DrawShared(Engine* engine) {
  unsigned long draw = engine->rng().NextU64();
  return draw;
}

static Rng g_shared_rng(42);

unsigned long DrawForked(diablo::ChainContext* ctx) {
  unsigned long draw = ctx->rng().NextU64();  // allowlisted receiver: no finding
  return draw;
}

unsigned long DrawSuppressed(Engine* engine) {
  // detlint: allow(D4, fixture: single-threaded tool with a fixed draw order)
  unsigned long draw = engine->rng().NextU64();
  return draw;
}
