// detlint fixture: SUP — a suppression that carries no reason is itself a
// finding, and it does not suppress anything.
#include <cstdlib>

int Draw() {
  // detlint: allow(D2)
  int draw = rand();
  return draw;
}
