// detlint fixture: rule D6 — accessor RNG draws inside parallel-phase regions.
#include "src/support/rng.h"

using diablo::Rng;

unsigned long DrawOutsidePhase(diablo::ChainContext* ctx) {
  unsigned long draw = ctx->rng().NextU64();  // outside any region: no finding
  return draw;
}

// detlint: parallel-phase(begin)
unsigned long DrawInsidePhase(diablo::ChainContext* ctx) {
  unsigned long draw = ctx->rng().NextU64();
  return draw;
}

struct Shard {
  Rng rng_{7};
  unsigned long DrawOwned() { return rng_.NextU64(); }  // owned member: quiet
  unsigned long DrawSuppressed(diablo::ChainContext* ctx) {
    // detlint: allow(D6, fixture: the accessor returns this shard's own stream)
    return ctx->rng().NextU64();
  }
};
// detlint: parallel-phase(end)
