// detlint fixture: rule D1 — iteration over unordered containers.
#include <unordered_map>
#include <string>

int SumValues() {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& entry : counts) {
    total += entry.second;
  }
  auto it = counts.begin();
  (void)it;
  // detlint: allow(D1, fixture: order is folded through a commutative max)
  for (const auto& entry : counts) {
    total = total > entry.second ? total : entry.second;
  }
  return total;
}
