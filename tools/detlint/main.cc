// detlint CLI: lints C++ sources for determinism hazards (rules D1-D8, see
// lint.h) and exits nonzero when unsuppressed findings remain. The whole
// file set is analyzed as one project so the call-graph rules (D7/D8) see
// edges that cross translation units.
//
// Usage: detlint [MODE] [--exclude SUBSTR]... PATH...
//   PATH        a file, or a directory scanned recursively for .h/.cc/.cpp
//   --exclude   skip files whose path contains SUBSTR (repeatable); used to
//               keep the deliberate-violation test fixtures out of the gate
//   --quiet     print only the summary line
//   --audit     suppression audit: list every allow-suppression with its
//               rule and reason so reviews see what the gate is not checking.
//               Exits nonzero only for malformed suppressions (an allow()
//               without a reason), not for ordinary findings.
//   --json      print the findings as one JSON document on stdout instead of
//               text lines (same exit-code contract as the default mode)
//   --github    additionally emit GitHub Actions workflow commands
//               (::error file=F,line=L::msg) for unsuppressed findings so CI
//               surfaces them as PR annotations
//   --shard-report
//               print the deterministic per-region shard-safety inventory
//               (transitive callees + shared state per parallel-phase root)
//               and exit 0; with --baseline FILE, compare against the
//               committed baseline instead and exit 1 on drift
//   --baseline FILE
//               baseline file for --shard-report drift checking
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/detlint/lint.h"

namespace {

bool HasSourceExtension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

// Escapes a message for a GitHub Actions workflow-command payload.
std::string GithubEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case '\n':
        out += "%0A";
        break;
      case '\r':
        out += "%0D";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  std::string baseline;
  bool quiet = false;
  bool audit = false;
  bool json = false;
  bool github = false;
  bool shard_report = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--github") {
      github = true;
    } else if (arg == "--shard-report") {
      shard_report = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline = argv[++i];
    } else if (arg == "--exclude" && i + 1 < argc) {
      excludes.push_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: detlint [--quiet] [--audit] [--json] [--github] "
                 "[--shard-report [--baseline FILE]] [--exclude SUBSTR]... "
                 "PATH...\n");
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(root, ec);
           it != std::filesystem::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else {
      files.push_back(root);
    }
  }
  // Directory iteration order is filesystem-dependent; a determinism linter
  // should at least report deterministically.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Load every kept file up front: the project passes need all TUs at once.
  std::vector<diablo::detlint::SourceFile> sources;
  size_t unreadable = 0;
  for (const std::string& file : files) {
    bool skip = false;
    for (const std::string& substr : excludes) {
      if (file.find(substr) != std::string::npos) {
        skip = true;
        break;
      }
    }
    if (skip) {
      continue;
    }
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "detlint: cannot read %s\n", file.c_str());
      ++unreadable;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sources.push_back(diablo::detlint::SourceFile{file, buffer.str()});
  }

  if (shard_report) {
    const std::string report = diablo::detlint::ShardReport(sources);
    if (baseline.empty()) {
      std::fputs(report.c_str(), stdout);
      return unreadable == 0 ? 0 : 1;
    }
    std::ifstream in(baseline);
    if (!in) {
      std::fprintf(stderr, "detlint: cannot read baseline %s\n", baseline.c_str());
      return 1;
    }
    std::ostringstream committed;
    committed << in.rdbuf();
    if (committed.str() == report) {
      std::printf("detlint shard-report: baseline %s is current\n",
                  baseline.c_str());
      return unreadable == 0 ? 0 : 1;
    }
    // Line-level diff so the drift is reviewable straight from CI logs.
    std::fprintf(stderr,
                 "detlint shard-report: baseline %s is stale; regenerate with\n"
                 "  detlint --shard-report <paths> > %s\n",
                 baseline.c_str(), baseline.c_str());
    std::istringstream want(committed.str());
    std::istringstream got(report);
    std::string want_line;
    std::string got_line;
    int line_no = 0;
    while (true) {
      const bool have_want = static_cast<bool>(std::getline(want, want_line));
      const bool have_got = static_cast<bool>(std::getline(got, got_line));
      if (!have_want && !have_got) {
        break;
      }
      ++line_no;
      if (!have_want) {
        std::fprintf(stderr, "  +%d: %s\n", line_no, got_line.c_str());
      } else if (!have_got) {
        std::fprintf(stderr, "  -%d: %s\n", line_no, want_line.c_str());
      } else if (want_line != got_line) {
        std::fprintf(stderr, "  -%d: %s\n  +%d: %s\n", line_no,
                     want_line.c_str(), line_no, got_line.c_str());
      }
    }
    return 1;
  }

  const diablo::detlint::LintResult result = diablo::detlint::LintProject(sources);
  size_t suppressed = 0;
  size_t unsuppressed = 0;
  size_t bad_suppressions = 0;
  for (const diablo::detlint::Finding& finding : result.findings) {
    if (finding.suppressed) {
      ++suppressed;
      if (audit && !quiet && !json) {
        std::printf("%s:%d: [%s] suppressed — %s\n", finding.file.c_str(),
                    finding.line, finding.rule.c_str(),
                    finding.suppress_reason.c_str());
      }
      continue;
    }
    ++unsuppressed;
    if (finding.rule == "SUP") {
      ++bad_suppressions;
    }
    if (!json && !quiet && (!audit || finding.rule == "SUP")) {
      std::printf("%s\n", diablo::detlint::FormatFinding(finding).c_str());
    }
    if (github) {
      std::printf("::error file=%s,line=%d::[%s] %s\n", finding.file.c_str(),
                  finding.line, finding.rule.c_str(),
                  GithubEscape(finding.message).c_str());
    }
  }
  if (json) {
    std::printf("%s\n", diablo::detlint::FindingsAsJson(result).c_str());
  }
  if (audit) {
    // The audit pass reviews the suppression inventory: every allow() is
    // listed with its reason, and only reason-less ones fail the gate (the
    // ordinary findings gate runs as a separate invocation).
    if (!json) {
      std::printf("detlint audit: %zu file(s), %zu suppression(s), "
                  "%zu malformed\n",
                  sources.size(), suppressed, bad_suppressions);
    }
    return bad_suppressions == 0 && unreadable == 0 ? 0 : 1;
  }
  if (!json) {
    std::printf("detlint: %zu file(s), %zu finding(s), %zu suppressed\n",
                sources.size(), unsuppressed, suppressed);
  }
  return unsuppressed == 0 && unreadable == 0 ? 0 : 1;
}
