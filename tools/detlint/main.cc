// detlint CLI: lints C++ sources for determinism hazards (rules D1-D5, see
// lint.h) and exits nonzero when unsuppressed findings remain.
//
// Usage: detlint [--quiet] [--audit] [--exclude SUBSTR]... PATH...
//   PATH        a file, or a directory scanned recursively for .h/.cc/.cpp
//   --exclude   skip files whose path contains SUBSTR (repeatable); used to
//               keep the deliberate-violation test fixtures out of the gate
//   --quiet     print only the summary line
//   --audit     suppression audit: list every allow-suppression with its
//               rule and reason so reviews see what the gate is not checking.
//               Exits nonzero only for malformed suppressions (an allow()
//               without a reason), not for ordinary findings.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/detlint/lint.h"

namespace {

bool HasSourceExtension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  bool quiet = false;
  bool audit = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--exclude" && i + 1 < argc) {
      excludes.push_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: detlint [--quiet] [--audit] [--exclude SUBSTR]... "
                 "PATH...\n");
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (auto it = std::filesystem::recursive_directory_iterator(root, ec);
           it != std::filesystem::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else {
      files.push_back(root);
    }
  }
  // Directory iteration order is filesystem-dependent; a determinism linter
  // should at least report deterministically.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  size_t scanned = 0;
  size_t suppressed = 0;
  size_t unsuppressed = 0;
  size_t bad_suppressions = 0;
  for (const std::string& file : files) {
    bool skip = false;
    for (const std::string& substr : excludes) {
      if (file.find(substr) != std::string::npos) {
        skip = true;
        break;
      }
    }
    if (skip) {
      continue;
    }
    ++scanned;
    const diablo::detlint::LintResult result = diablo::detlint::LintFile(file);
    for (const diablo::detlint::Finding& finding : result.findings) {
      if (finding.suppressed) {
        ++suppressed;
        if (audit && !quiet) {
          std::printf("%s:%d: [%s] suppressed — %s\n", finding.file.c_str(),
                      finding.line, finding.rule.c_str(),
                      finding.suppress_reason.c_str());
        }
        continue;
      }
      ++unsuppressed;
      if (finding.rule == "SUP") {
        ++bad_suppressions;
      }
      if (!quiet && (!audit || finding.rule == "SUP")) {
        std::printf("%s\n", diablo::detlint::FormatFinding(finding).c_str());
      }
    }
  }
  if (audit) {
    // The audit pass reviews the suppression inventory: every allow() is
    // listed with its reason, and only reason-less ones fail the gate (the
    // ordinary findings gate runs as a separate invocation).
    std::printf("detlint audit: %zu file(s), %zu suppression(s), "
                "%zu malformed\n",
                scanned, suppressed, bad_suppressions);
    return bad_suppressions == 0 ? 0 : 1;
  }
  std::printf("detlint: %zu file(s), %zu finding(s), %zu suppressed\n", scanned,
              unsuppressed, suppressed);
  return unsuppressed == 0 ? 0 : 1;
}
