#include "tools/detlint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace diablo::detlint {
namespace {

struct Token {
  std::string text;
  int line = 0;
};

struct Allow {
  std::string rule;
  std::string reason;
};

struct PhaseMark {
  int line = 0;
  bool is_begin = false;
  std::string name;  // optional region label from parallel-phase(begin, name)
};

// Per-line suppressions collected while lexing; standalone comment lines are
// re-attached to the next code line after lexing.
struct LexOutput {
  std::vector<Token> tokens;
  std::map<int, std::vector<Allow>> allows;       // line -> allows
  std::vector<std::pair<int, Allow>> standalone;  // comment line, allow
  std::vector<PhaseMark> phase_marks;             // region markers (D6/D7/D8)
  std::vector<Finding> comment_findings;          // malformed allow()
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentToken(const std::string& t) { return !t.empty() && IsIdentStart(t[0]); }

// Parses every detlint comment directive: `allow(RULE, reason)` suppressions
// and the `parallel-phase(begin[, name])` / `parallel-phase(end)` region
// markers that scope rule D6 and seed the D7/D8 reachability roots.
void ParseAllows(const std::string& comment, int line, bool standalone,
                 const std::string& file, LexOutput* out) {
  auto strip = [](std::string& s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.erase(s.begin());
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.pop_back();
  };
  size_t pos = 0;
  while ((pos = comment.find("detlint:", pos)) != std::string::npos) {
    pos += 8;
    // Region markers come right after the marker word; they must be matched
    // here because the allow() search below breaks out when absent.
    size_t marker = pos;
    while (marker < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[marker]))) {
      ++marker;
    }
    if (comment.compare(marker, 15, "parallel-phase(") == 0) {
      const size_t body_begin = marker + 15;
      const size_t body_end = comment.find(')', body_begin);
      if (body_end == std::string::npos) {
        break;
      }
      std::string body = comment.substr(body_begin, body_end - body_begin);
      const size_t comma = body.find(',');
      std::string kind = body.substr(0, comma == std::string::npos ? body.size() : comma);
      std::string name = comma == std::string::npos ? std::string() : body.substr(comma + 1);
      strip(kind);
      strip(name);
      if (kind == "begin" || kind == "end") {
        out->phase_marks.push_back(PhaseMark{line, kind == "begin", name});
      }
      pos = body_end + 1;
      continue;
    }
    size_t open = comment.find("allow(", pos);
    if (open == std::string::npos) {
      break;
    }
    open += 6;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) {
      break;
    }
    const std::string body = comment.substr(open, close - open);
    const size_t comma = body.find(',');
    std::string rule = body.substr(0, comma == std::string::npos ? body.size() : comma);
    std::string reason =
        comma == std::string::npos ? std::string() : body.substr(comma + 1);
    strip(rule);
    strip(reason);
    if (reason.empty()) {
      out->comment_findings.push_back(Finding{
          file, line, "SUP",
          "suppression allow(" + rule + ") carries no reason",
          "write `// detlint: allow(" + rule + ", <why this site is deterministic>)`",
          false,
          {},
          {}});
    } else if (standalone) {
      out->standalone.emplace_back(line, Allow{rule, reason});
    } else {
      out->allows[line].push_back(Allow{rule, reason});
    }
    pos = close;
  }
}

// Encoding prefixes that can precede a raw string literal. The lexer's
// identifier branch would otherwise swallow `u8R` and then mis-lex the
// remainder as an ordinary string that ends at the first embedded quote,
// leaking raw-string contents into the token stream (phantom findings) and
// desyncing quote state (swallowed suppressions).
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

// Lexes `source` into identifier / number / operator tokens, stripping
// comments, string and character literals, and preprocessor lines. Multi-char
// operators are combined only where a rule needs them (:: -> += -=).
LexOutput Lex(const std::string& file, const std::string& source) {
  LexOutput out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  bool line_has_code = false;
  auto newline = [&] {
    ++line;
    line_has_code = false;
  };
  // Consumes a raw string literal whose opening `"` sits at `quote`; returns
  // false (consuming nothing) if no valid delimiter/open-paren follows, in
  // which case the caller falls back to ordinary string lexing. Detlint
  // directives inside raw strings are data, not directives, so ParseAllows
  // is never called on the skipped bytes.
  auto lex_raw_string = [&](size_t quote) -> bool {
    size_t p = quote + 1;
    std::string delim;
    // [lex.string]: the delimiter is at most 16 chars and cannot contain
    // spaces, parens, or backslashes.
    while (p < n && source[p] != '(' && delim.size() <= 16) {
      const char d = source[p];
      if (d == ')' || d == '"' || d == '\\' || d == '\n' ||
          std::isspace(static_cast<unsigned char>(d))) {
        return false;
      }
      delim += d;
      ++p;
    }
    if (p >= n || source[p] != '(' || delim.size() > 16) {
      return false;
    }
    const std::string closer = ")" + delim + "\"";
    const size_t end = source.find(closer, p);
    // Count newlines inside the raw string so later line numbers stay true.
    const size_t stop = end == std::string::npos ? n : end + closer.size();
    for (size_t q = quote; q < stop; ++q) {
      if (source[q] == '\n') {
        newline();
      }
    }
    line_has_code = true;
    i = stop;
    return true;
  };
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    if (c == '#' && !line_has_code) {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const size_t start = i + 2;
      size_t end = start;
      while (end < n && source[end] != '\n') {
        ++end;
      }
      ParseAllows(source.substr(start, end - start), line, !line_has_code, file, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int comment_line = line;
      const bool standalone = !line_has_code;
      const size_t start = i + 2;
      size_t end = start;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/')) {
        if (source[end] == '\n') {
          newline();
        }
        ++end;
      }
      ParseAllows(source.substr(start, end - start), comment_line, standalone, file, &out);
      i = end + 2 > n ? n : end + 2;
      continue;
    }
    // Identifier — including raw-string encoding prefixes (R"..", u8R"..",
    // uR"..", UR"..", LR".."), which must divert to the raw-string skipper
    // before the identifier is emitted as a token.
    if (IsIdentStart(c)) {
      size_t end = i + 1;
      while (end < n && IsIdentChar(source[end])) {
        ++end;
      }
      std::string ident = source.substr(i, end - i);
      if (end < n && source[end] == '"' && IsRawStringPrefix(ident) &&
          lex_raw_string(end)) {
        continue;
      }
      line_has_code = true;
      out.tokens.push_back(Token{std::move(ident), line});
      i = end;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      // A ' between alphanumerics is a C++14 digit separator, handled by the
      // number lexer below; here a ' always opens a char literal because the
      // preceding token boundary was non-alphanumeric.
      const char quote = c;
      ++i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (source[i] == '\n') {
          newline();  // unterminated literal; keep line numbers sane
        }
        ++i;
      }
      ++i;
      line_has_code = true;
      continue;
    }
    line_has_code = true;
    // Number (consumes digit separators and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i + 1;
      while (end < n &&
             (IsIdentChar(source[end]) || source[end] == '.' || source[end] == '\'' ||
              ((source[end] == '+' || source[end] == '-') &&
               (source[end - 1] == 'e' || source[end - 1] == 'E' ||
                source[end - 1] == 'p' || source[end - 1] == 'P')))) {
        ++end;
      }
      out.tokens.push_back(Token{source.substr(i, end - i), line});
      i = end;
      continue;
    }
    // Operators; combine the few multi-char ones the rules look at.
    if (i + 1 < n) {
      const char d = source[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>') || (c == '+' && d == '=') ||
          (c == '-' && d == '=')) {
        out.tokens.push_back(Token{std::string{c, d}, line});
        i += 2;
        continue;
      }
    }
    out.tokens.push_back(Token{std::string(1, c), line});
    ++i;
  }
  return out;
}

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
const std::set<std::string> kAssociativeContainers = {
    "map", "set", "multimap", "multiset", "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset", "priority_queue"};
// Bare identifier hits: any appearance outside a comment/string is a finding.
const std::set<std::string> kClockIdentifiers = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "timespec_get", "localtime", "localtime_r", "mktime"};
// Call-position hits: only `name(` in expression position is a finding, so
// members and locals that happen to share the name stay quiet.
const std::set<std::string> kClockCalls = {"rand", "srand", "time", "clock"};
const std::set<std::string> kPointerCastTargets = {"uintptr_t", "intptr_t", "size_t",
                                                   "uint64_t"};
// Accessors returning an Rng& that is itself Fork-derived per component:
// ChainContext::rng() is forked from the simulation root at construction, so
// engines drawing through `ctx->rng()` / `ctx_->rng()` stay on a private
// per-chain stream.
const std::set<std::string> kForkedRngReceivers = {"ctx", "ctx_"};

// Keywords that can precede a parenthesized group followed by `{` without
// the group being a parameter list.
const std::set<std::string> kControlKeywords = {"if",     "for",   "while",
                                                "switch", "catch", "constexpr"};
// Identifiers that end the backward search for a function header: seeing one
// of these in return-type / trailer position proves the `{` opens a plain
// block or initializer, not a function body.
const std::set<std::string> kHeaderStoppers = {
    "return", "else", "do", "case", "goto", "throw", "break", "continue",
    "new",    "delete"};
// Callee names never recorded as call-graph edges (language keywords and
// cast-like constructs that lex as `name (`).
const std::set<std::string> kNotCallees = {
    "if",          "for",         "while",       "switch",     "catch",
    "return",      "sizeof",      "alignof",     "decltype",   "new",
    "delete",      "throw",       "assert",      "static_cast",
    "dynamic_cast", "const_cast", "reinterpret_cast", "defined", "alignas",
    "noexcept",    "typeid"};

// Serial-only APIs for rule D8. Exact callee-name match; `ScheduleOn`,
// `ScheduleAtOn`, `ScheduleEngine` and `ScheduleEngineAt` deliberately do
// not appear — those are the shard-owned alternatives.
const std::set<std::string> kSerialScheduleApis = {"Schedule", "ScheduleAt"};
const std::set<std::string> kReportApis = {"BuildReport", "AddResilienceMetrics"};
const std::set<std::string> kFaultMutatorApis = {
    "Install",         "SetNodeDown",       "SetCpuFactor",
    "SetAdversary",    "SetCensoredSigners", "SetExtraDelay",
    "SetPartitioned",  "AddLossWindow",      "AddDelaySpikeWindow",
    "Stop"};
const std::set<std::string> kStdoutCalls = {"printf", "puts", "putchar"};
const std::set<std::string> kStreamStdoutCalls = {"fprintf", "fputs", "fwrite"};

// Matches the D6(b) global-write pattern at token index `i`; on a match
// returns true and names the mutating operator. Shared between the per-file
// D6 scan (region-scoped) and the project indexer (region-free, for D7).
bool MatchGlobalWrite(const std::vector<Token>& tokens, size_t i, std::string* op) {
  auto tok = [&](size_t j) -> const std::string& {
    static const std::string kEmpty;
    return j < tokens.size() ? tokens[j].text : kEmpty;
  };
  const std::string& text = tokens[i].text;
  if (text.size() <= 2 || text.compare(0, 2, "g_") != 0 || !IsIdentStart(text[0])) {
    return false;
  }
  const std::string& next = tok(i + 1);
  if (next == "=" && tok(i + 2) != "=") {
    // Plain assignment; `g_x == y` lexes as `=` `=` and is skipped.
    *op = "=";
    return true;
  }
  if (next == "+=" || next == "-=") {
    *op = next;
    return true;
  }
  if ((next == "*" || next == "/" || next == "%" || next == "&" || next == "|" ||
       next == "^") &&
      tok(i + 2) == "=" && tok(i + 3) != "=") {
    // Compound ops the lexer splits (`*=` → `*` `=`). `<`/`>` are excluded:
    // `g_x <= y` would lex identically to a split `<=`.
    *op = next + "=";
    return true;
  }
  if (next == "+" && tok(i + 2) == "+" && !tok(i + 3).empty() &&
      !IsIdentStart(tok(i + 3)[0])) {
    // Postfix ++ (the lexer splits it); the trailing guard keeps
    // `g_x + +y` quiet.
    *op = "++";
    return true;
  }
  if (next == "-" && tok(i + 2) == "-" && !tok(i + 3).empty() &&
      !IsIdentStart(tok(i + 3)[0])) {
    *op = "--";
    return true;
  }
  if (i >= 2 && ((tok(i - 2) == "+" && tok(i - 1) == "+") ||
                 (tok(i - 2) == "-" && tok(i - 1) == "-"))) {
    // Prefix ++/--; the leading guard keeps `a + +g_x` (unary plus on an
    // operand after a binary +) quiet: before a genuine prefix increment
    // the previous token cannot end an expression.
    const std::string& before = i >= 3 ? tok(i - 3) : std::string();
    const bool ends_expression =
        !before.empty() && (IsIdentStart(before[0]) || before == ")" ||
                            before == "]" || (before[0] >= '0' && before[0] <= '9'));
    if (!ends_expression) {
      *op = tok(i - 1) == "+" ? "++" : "--";
      return true;
    }
  }
  if ((next == "." || next == "->") &&
      (tok(i + 2) == "store" || tok(i + 2) == "exchange" ||
       tok(i + 2) == "fetch_add" || tok(i + 2) == "fetch_sub") &&
      tok(i + 3) == "(") {
    // Atomic mutation is still a cross-shard effect ordered by the memory
    // model, not the window barrier.
    *op = tok(i + 2) + "()";
    return true;
  }
  return false;
}

// Matches the accessor-RNG-draw pattern `recv->rng().NextFoo(` (or `.`, or
// bare `rng().NextFoo(`) at token index `i`; fills the receiver spelling
// ("this" when bare) and the Next* method name. Shared by D4, D6 and the
// project indexer (D7).
bool MatchRngAccessorDraw(const std::vector<Token>& tokens, size_t i,
                          std::string* receiver, std::string* method) {
  auto tok = [&](size_t j) -> const std::string& {
    static const std::string kEmpty;
    return j < tokens.size() ? tokens[j].text : kEmpty;
  };
  if (tokens[i].text != "rng" || tok(i + 1) != "(" || tok(i + 2) != ")" ||
      tok(i + 3) != "." || tok(i + 4).compare(0, 4, "Next") != 0) {
    return false;
  }
  receiver->clear();
  if (i >= 2 && (tok(i - 1) == "->" || tok(i - 1) == ".")) {
    *receiver = tok(i - 2);
  }
  *method = tok(i + 4);
  return true;
}

// ---------------------------------------------------------------------------
// Pass 1: per-TU index — function definitions, call edges, hazard sites.
// ---------------------------------------------------------------------------

struct CallSite {
  std::string callee;  // last name component at the call site
  int line = 0;
};

enum class HazardKind { kRngAccessor, kGlobalWrite, kSerialApi };

struct HazardSite {
  HazardKind kind;
  std::string detail;  // receiver / global name / API name
  std::string extra;   // Next* method, write operator, or API class
  int line = 0;
};

struct FuncDef {
  std::string name;  // last component, e.g. "Trigger"
  std::string qual;  // e.g. "SimClient::Trigger"
  int file_index = -1;
  int line_begin = 0;  // line of the header's opening brace
  int line_end = 0;    // line of the closing brace
  std::vector<CallSite> calls;
  std::vector<HazardSite> hazards;
};

struct PhaseRegion {
  int begin = 0;
  int end = 0;
  std::string name;
};

// Folds lexer phase marks into inclusive [begin, end] line ranges. Markers
// arrive in source order; an unmatched begin keeps its region open to the
// end of the file (conservative: more code is scanned), and a stray end is
// ignored.
std::vector<PhaseRegion> BuildPhaseRegions(const std::vector<PhaseMark>& marks) {
  std::vector<PhaseRegion> regions;
  int open_line = 0;
  std::string open_name;
  for (const PhaseMark& mark : marks) {
    if (mark.is_begin) {
      if (open_line == 0) {
        open_line = mark.line;
        open_name = mark.name;
      }
    } else if (open_line != 0) {
      regions.push_back(PhaseRegion{open_line, mark.line, open_name});
      open_line = 0;
      open_name.clear();
    }
  }
  if (open_line != 0) {
    regions.push_back(
        PhaseRegion{open_line, std::numeric_limits<int>::max(), open_name});
  }
  return regions;
}

bool LineInRegions(const std::vector<PhaseRegion>& regions, int line) {
  for (const PhaseRegion& r : regions) {
    if (line >= r.begin && line <= r.end) {
      return true;
    }
  }
  return false;
}

// Extracts every function/method definition in a token stream along with the
// call edges and hazard sites inside each body. Token-level heuristic: a `{`
// is a function body when walking backward over a plausible header —
// trailing cv/ref/noexcept tokens, constructor init-list groups, a balanced
// parameter list, then a (possibly qualified) name that is not a control
// keyword. Lambdas and plain blocks attribute their contents to the nearest
// enclosing named function; `TEST(F, N) {` macro bodies index as functions
// named after the macro, which is harmless (nothing calls them by name).
class TuIndexer {
 public:
  TuIndexer(int file_index, const std::vector<Token>& tokens)
      : file_index_(file_index), tokens_(tokens) {}

  std::vector<FuncDef> Index() {
    struct Scope {
      enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
      std::string name;   // class name for kClass
      int func = -1;      // index into funcs_ for kFunction
    };
    std::vector<Scope> scopes;
    auto innermost_func = [&]() -> int {
      for (size_t s = scopes.size(); s-- > 0;) {
        if (scopes[s].kind == Scope::kFunction) {
          return scopes[s].func;
        }
      }
      return -1;
    };
    for (size_t i = 0; i < tokens_.size(); ++i) {
      const std::string& t = tokens_[i].text;
      if (t == "{") {
        Scope scope{Scope::kBlock, "", -1};
        std::string name;
        std::vector<std::string> components;
        if (IsNamespaceBrace(i, &name)) {
          scope.kind = Scope::kNamespace;
        } else if (IsClassBrace(i, &name)) {
          scope.kind = Scope::kClass;
          scope.name = name;
        } else if (innermost_func() < 0 && MatchFunctionHeader(i, &components)) {
          scope.kind = Scope::kFunction;
          FuncDef def;
          def.name = components.back();
          def.qual = Qualify(scopes, components);
          def.file_index = file_index_;
          def.line_begin = tokens_[i].line;
          def.line_end = tokens_[i].line;  // patched when the brace closes
          scope.func = static_cast<int>(funcs_.size());
          funcs_.push_back(std::move(def));
        }
        scopes.push_back(std::move(scope));
        continue;
      }
      if (t == "}") {
        if (!scopes.empty()) {
          if (scopes.back().kind == Scope::kFunction && scopes.back().func >= 0) {
            funcs_[scopes.back().func].line_end = tokens_[i].line;
          }
          scopes.pop_back();
        }
        continue;
      }
      const int fn = innermost_func();
      if (fn < 0) {
        continue;
      }
      CollectSites(i, &funcs_[fn]);
    }
    return std::move(funcs_);
  }

 private:
  const Token& Tok(size_t i) const {
    static const Token kEnd{"", 0};
    return i < tokens_.size() ? tokens_[i] : kEnd;
  }

  // `namespace foo {` / `namespace {`.
  bool IsNamespaceBrace(size_t brace, std::string* name) const {
    if (brace >= 1 && Tok(brace - 1).text == "namespace") {
      name->clear();
      return true;
    }
    if (brace >= 2 && IsIdentToken(Tok(brace - 1).text) &&
        Tok(brace - 2).text == "namespace") {
      *name = Tok(brace - 1).text;
      return true;
    }
    return false;
  }

  // `class X {`, `struct X final : public Y<Z> {`, `enum class X : T {`,
  // anonymous `struct {` / `union {`. Walks back over the base clause; any
  // token outside the clause grammar aborts the class interpretation.
  bool IsClassBrace(size_t brace, std::string* name) const {
    static const std::set<std::string> kClauseTokens = {
        "public", "private", "protected", "virtual", "final",
        "::",     "<",       ">",         ",",       ":"};
    size_t j = brace;
    int budget = 48;
    while (j > 0 && budget-- > 0) {
      const std::string& t = Tok(j - 1).text;
      if (t == "class" || t == "struct" || t == "union" || t == "enum") {
        // First identifier after the keyword names the type (may be absent
        // for anonymous aggregates). `enum class X` resolves via the inner
        // `class` first, which is fine: the name is the same.
        name->clear();
        if (IsIdentToken(Tok(j).text) && kClauseTokens.count(Tok(j).text) == 0) {
          *name = Tok(j).text;
        }
        return true;
      }
      if (IsIdentToken(t) || kClauseTokens.count(t) != 0) {
        --j;
        continue;
      }
      return false;
    }
    return false;
  }

  // Matches a balanced group backward: `close_idx` indexes the closing
  // token; returns the index of the matching opener, or SIZE_MAX on failure.
  size_t MatchGroupBack(size_t close_idx, const char* open, const char* close) const {
    int depth = 0;
    for (size_t j = close_idx + 1; j-- > 0;) {
      const std::string& t = Tok(j).text;
      if (t == close) {
        ++depth;
      } else if (t == open) {
        if (--depth == 0) {
          return j;
        }
      }
      if (close_idx - j > 512) {
        break;  // runaway; not a header
      }
    }
    return static_cast<size_t>(-1);
  }

  // Walks a qualified name ending at `last` backward: `Foo::Bar::baz`,
  // `~Foo`, `operator()`/`operator<`. Fills components root-first and
  // returns the index of the first token of the name, or SIZE_MAX.
  size_t WalkQualifiedNameBack(size_t last, std::vector<std::string>* components) const {
    components->clear();
    size_t j = last;
    if (!IsIdentToken(Tok(j).text)) {
      return static_cast<size_t>(-1);
    }
    components->push_back(Tok(j).text);
    while (j >= 2 && Tok(j - 1).text == "::" && IsIdentToken(Tok(j - 2).text)) {
      components->insert(components->begin(), Tok(j - 2).text);
      j -= 2;
    }
    if (j >= 1 && Tok(j - 1).text == "~") {
      components->back().insert(0, "~");
      --j;
    }
    return j;
  }

  // Backward function-header matcher from the `{` at `brace`. Grammar
  // (right to left): optional trailer (cv/ref/noexcept/trailing return
  // type), optional constructor init-list groups `name(...)` / `name{...}`
  // separated by `,` and introduced by `:`, then the parameter list
  // `( ... )` preceded by the function's (possibly qualified) name.
  bool MatchFunctionHeader(size_t brace, std::vector<std::string>* out) const {
    static const std::set<std::string> kTrailerTokens = {
        "const", "noexcept", "override", "final", "mutable",
        "&",     "*",        "->",       "::",    "try"};
    if (brace == 0) {
      return false;
    }
    size_t j = brace - 1;
    int budget = 96;
    // Phase A: consume trailer tokens until the first group closer.
    while (budget-- > 0) {
      const std::string& t = Tok(j).text;
      if (kTrailerTokens.count(t) != 0) {
        if (j == 0) return false;
        --j;
        continue;
      }
      if (t == ">") {
        const size_t open = MatchGroupBack(j, "<", ">");
        if (open == static_cast<size_t>(-1) || open == 0) return false;
        j = open - 1;
        continue;
      }
      if (IsIdentToken(t)) {
        if (kHeaderStoppers.count(t) != 0) return false;
        if (j == 0) return false;
        --j;
        continue;
      }
      if (t == ")" || t == "}") {
        break;  // first group found
      }
      return false;
    }
    // Phase B: groups right-to-left — init-list groups, then the parameter
    // list whose preceding name is the function name.
    bool saw_init_list = false;
    while (budget-- > 0) {
      const std::string& t = Tok(j).text;
      size_t open;
      if (t == ")") {
        open = MatchGroupBack(j, "(", ")");
      } else if (t == "}" && !saw_init_list) {
        open = MatchGroupBack(j, "{", "}");  // brace-init in an init list
      } else {
        return false;
      }
      if (open == static_cast<size_t>(-1) || open == 0) {
        return false;
      }
      size_t pre = open - 1;
      // `operator()` / `operator<` etc.: the group may sit right after the
      // operator keyword (with up to two symbol tokens in between, since
      // the lexer splits most multi-char operators).
      for (size_t back = 0; back <= 2 && pre - back < tokens_.size(); ++back) {
        if (Tok(pre - back).text == "operator") {
          out->clear();
          out->push_back("operator");
          return true;
        }
        if (IsIdentToken(Tok(pre - back).text)) {
          break;
        }
        if (pre - back == 0) {
          return false;
        }
      }
      if (Tok(pre).text == "noexcept") {
        // `noexcept(expr)` trailer; resume looking for the next group.
        if (pre == 0) return false;
        j = pre - 1;
        continue;
      }
      std::vector<std::string> components;
      const size_t name_begin = WalkQualifiedNameBack(pre, &components);
      if (name_begin == static_cast<size_t>(-1)) {
        return false;
      }
      if (kControlKeywords.count(components.back()) != 0 ||
          kHeaderStoppers.count(components.back()) != 0) {
        return false;
      }
      const std::string& before =
          name_begin > 0 ? Tok(name_begin - 1).text : std::string();
      if (before == ",") {
        // Another constructor init-list group to the left.
        if (name_begin < 2) return false;
        saw_init_list = true;
        j = name_begin - 2;
        continue;
      }
      if (before == ":" && Tok(name_begin - 2).text != ":") {
        // Start of the init list (a single `:`; `::` lexes fused). The
        // parameter list must close immediately to the left.
        if (name_begin < 2 || Tok(name_begin - 2).text != ")") return false;
        saw_init_list = true;
        j = name_begin - 2;
        continue;
      }
      if (before == "." || before == "->") {
        return false;  // member access expression, not a definition
      }
      *out = std::move(components);
      return true;
    }
    return false;
  }

  // Builds the qualified display name: enclosing class scopes joined with
  // the header's own (possibly already qualified) components. Namespace
  // names are dropped — class qualification is what the entry-point roots
  // and chain messages key on.
  template <typename Scopes>
  std::string Qualify(const Scopes& scopes, const std::vector<std::string>& components) const {
    std::string qual;
    if (components.size() == 1) {
      for (const auto& scope : scopes) {
        if (scope.kind == std::decay_t<decltype(scope)>::kClass && !scope.name.empty()) {
          qual += scope.name + "::";
        }
      }
    }
    for (size_t k = 0; k < components.size(); ++k) {
      qual += components[k];
      if (k + 1 < components.size()) {
        qual += "::";
      }
    }
    return qual;
  }

  // Records call edges and hazard sites at token `i` into `def`.
  void CollectSites(size_t i, FuncDef* def) {
    const std::string& text = tokens_[i].text;
    const int line = tokens_[i].line;
    std::string receiver;
    std::string method;
    if (MatchRngAccessorDraw(tokens_, i, &receiver, &method)) {
      def->hazards.push_back(HazardSite{HazardKind::kRngAccessor,
                                        receiver.empty() ? "this" : receiver,
                                        method, line});
    }
    std::string op;
    if (MatchGlobalWrite(tokens_, i, &op)) {
      def->hazards.push_back(HazardSite{HazardKind::kGlobalWrite, text, op, line});
    }
    if (text == "cout" && (i == 0 || Tok(i - 1).text != ".")) {
      def->hazards.push_back(
          HazardSite{HazardKind::kSerialApi, "cout", "stdout", line});
    }
    if (!IsIdentToken(text) || Tok(i + 1).text != "(") {
      return;
    }
    if (kSerialScheduleApis.count(text) != 0) {
      def->hazards.push_back(
          HazardSite{HazardKind::kSerialApi, text, "serial-shard scheduling", line});
      return;  // do not also record an edge: serial APIs are not traversed
    }
    if (kReportApis.count(text) != 0) {
      def->hazards.push_back(
          HazardSite{HazardKind::kSerialApi, text, "report construction", line});
      return;
    }
    if (kFaultMutatorApis.count(text) != 0) {
      def->hazards.push_back(
          HazardSite{HazardKind::kSerialApi, text, "fault-plane mutation", line});
      return;
    }
    if (kStdoutCalls.count(text) != 0) {
      def->hazards.push_back(HazardSite{HazardKind::kSerialApi, text, "stdout", line});
      return;
    }
    if (kStreamStdoutCalls.count(text) != 0) {
      // Only a finding when the stream argument is stdout; stderr is the
      // sanctioned diagnostics channel.
      int depth = 0;
      for (size_t j = i + 1; j < tokens_.size() && j < i + 64; ++j) {
        const std::string& a = tokens_[j].text;
        if (a == "(") {
          ++depth;
        } else if (a == ")") {
          if (--depth == 0) break;
        } else if (a == "stdout") {
          def->hazards.push_back(
              HazardSite{HazardKind::kSerialApi, text, "stdout", line});
          break;
        }
      }
      return;
    }
    if (kNotCallees.count(text) != 0) {
      return;
    }
    def->calls.push_back(CallSite{text, line});
  }

  int file_index_;
  const std::vector<Token>& tokens_;
  std::vector<FuncDef> funcs_;
};

// ---------------------------------------------------------------------------
// Per-file rules D1-D6 (v1 behavior, unchanged).
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(std::string file, LexOutput lex)
      : file_(std::move(file)), lex_(std::move(lex)), tokens_(lex_.tokens) {}

  // Collects the per-file findings (D1-D6 + malformed suppressions).
  // Project-level passes may then AddFinding() D7/D8 results before
  // Finish() sorts and applies suppressions.
  void Analyze() {
    AttachStandaloneAllows();
    phase_regions_ = BuildPhaseRegions(lex_.phase_marks);
    CollectDeclarations();
    Scan();
    for (Finding& f : lex_.comment_findings) {
      findings_.push_back(std::move(f));
    }
  }

  void AddFinding(Finding f) { findings_.push_back(std::move(f)); }

  LintResult Finish() {
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) { return a.line < b.line; });
    ApplySuppressions();
    LintResult result;
    result.findings = std::move(findings_);
    return result;
  }

  const std::vector<Token>& tokens() const { return tokens_; }
  const std::vector<PhaseRegion>& phase_regions() const { return phase_regions_; }
  const std::string& file() const { return file_; }

  // True when `line` carries an allow() for `rule` (or a wildcard). Used by
  // the shard report to mark state entries already under review.
  bool HasAllowFor(int line, const std::string& rule) const {
    const auto it = lex_.allows.find(line);
    if (it == lex_.allows.end()) {
      return false;
    }
    for (const Allow& allow : it->second) {
      if (allow.rule == rule || allow.rule == "all" || allow.rule == "*") {
        return true;
      }
    }
    return false;
  }

 private:
  const Token& Tok(size_t i) const {
    static const Token kEnd{"", 0};
    return i < tokens_.size() ? tokens_[i] : kEnd;
  }

  // A suppression comment standing on its own line suppresses the next line
  // that carries code.
  void AttachStandaloneAllows() {
    for (const auto& [comment_line, allow] : lex_.standalone) {
      int target = 0;
      for (const Token& t : tokens_) {
        if (t.line > comment_line) {
          target = t.line;
          break;
        }
      }
      if (target != 0) {
        lex_.allows[target].push_back(allow);
      }
      // Also cover the comment's own line: a same-line use inside a block
      // comment resolves identically either way.
      lex_.allows[comment_line].push_back(allow);
    }
  }

  bool InParallelPhase(int line) const { return LineInRegions(phase_regions_, line); }

  // Skips a balanced <...> starting at the `<` token index; returns the index
  // one past the matching `>`, and the token range of the first template
  // argument. `>` and `<` arrive as single-char tokens, so nested closers are
  // never fused into `>>`.
  size_t SkipTemplateArgs(size_t open, size_t* first_arg_begin, size_t* first_arg_end) {
    size_t depth = 0;
    *first_arg_begin = open + 1;
    *first_arg_end = 0;
    for (size_t i = open; i < tokens_.size(); ++i) {
      const std::string& t = tokens_[i].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        --depth;
        if (depth == 0) {
          if (*first_arg_end == 0) {
            *first_arg_end = i;
          }
          return i + 1;
        }
      } else if (t == "(") {
        // Not a template argument list after all (operator< in an
        // expression, e.g. `a < b(c)`); bail out.
        return open + 1;
      } else if (t == "," && depth == 1 && *first_arg_end == 0) {
        *first_arg_end = i;
      }
    }
    return tokens_.size();
  }

  // Registers identifiers declared with an unordered container type (for D1
  // and D5) or a float/double type (for D5), and flags pointer-valued keys
  // (D3) while the template arguments are in hand.
  void CollectDeclarations() {
    for (size_t i = 0; i < tokens_.size(); ++i) {
      const std::string& text = tokens_[i].text;
      if (kAssociativeContainers.count(text) != 0 && Tok(i + 1).text == "<") {
        size_t arg_begin = 0;
        size_t arg_end = 0;
        const size_t after = SkipTemplateArgs(i + 1, &arg_begin, &arg_end);
        if (arg_end > arg_begin) {
          if (tokens_[arg_end - 1].text == "*") {
            Report(tokens_[i].line, "D3",
                   "associative container '" + text + "' keyed on a pointer type",
                   "key on a dense id or stable index; pointer values change run to run");
          }
        }
        if (kUnorderedContainers.count(text) != 0) {
          // Declared name: first identifier after the closing '>', skipping
          // cv/ref tokens. Misses aliases and typedefs by design.
          size_t j = after;
          while (Tok(j).text == "const" || Tok(j).text == "&" || Tok(j).text == "*") {
            ++j;
          }
          if (!Tok(j).text.empty() && IsIdentStart(Tok(j).text[0])) {
            unordered_names_.insert(Tok(j).text);
          }
        }
        i = after > i ? after - 1 : i;
        continue;
      }
      if ((text == "double" || text == "float") && !Tok(i + 1).text.empty() &&
          IsIdentStart(Tok(i + 1).text[0]) && Tok(i + 1).text != "const") {
        float_names_.insert(Tok(i + 1).text);
      }
    }
  }

  void Scan() {
    for (size_t i = 0; i < tokens_.size(); ++i) {
      ScanD1D5(i);
      ScanD2(i);
      ScanD3Cast(i);
      ScanD4(i);
      ScanD6(i);
      ScanD6GlobalWrite(i);
    }
  }

  void ScanD1D5(size_t i) {
    // Range-for over an unordered container declared in this file.
    if (tokens_[i].text == "for" && Tok(i + 1).text == "(") {
      size_t depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < tokens_.size(); ++j) {
        const std::string& t = tokens_[j].text;
        if (t == "(") {
          ++depth;
        } else if (t == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (t == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) {
        return;
      }
      bool unordered = false;
      for (size_t j = colon + 1; j < close; ++j) {
        if (unordered_names_.count(tokens_[j].text) != 0) {
          unordered = true;
          break;
        }
      }
      if (!unordered) {
        return;
      }
      Report(tokens_[i].line, "D1",
             "range-for over an unordered container",
             "iterate a sorted copy of the keys, or use a vector/flat table with a "
             "deterministic order");
      // D5: float accumulation inside this loop's body.
      size_t body_end = close + 1;
      if (Tok(close + 1).text == "{") {
        size_t brace = 0;
        for (size_t j = close + 1; j < tokens_.size(); ++j) {
          if (tokens_[j].text == "{") {
            ++brace;
          } else if (tokens_[j].text == "}") {
            if (--brace == 0) {
              body_end = j;
              break;
            }
          }
        }
      } else {
        while (body_end < tokens_.size() && tokens_[body_end].text != ";") {
          ++body_end;
        }
      }
      for (size_t j = close + 1; j < body_end; ++j) {
        if ((tokens_[j].text == "+=" || tokens_[j].text == "-=") && j > 0 &&
            float_names_.count(tokens_[j - 1].text) != 0) {
          Report(tokens_[j].line, "D5",
                 "floating-point accumulation inside unordered iteration",
                 "FP addition is not associative; accumulate in a fixed order (sorted "
                 "keys or index order)");
        }
      }
      return;
    }
    // Explicit iterator over an unordered container.
    if ((tokens_[i].text == "begin" || tokens_[i].text == "cbegin") &&
        Tok(i + 1).text == "(" && i >= 2 &&
        (Tok(i - 1).text == "." || Tok(i - 1).text == "->") &&
        unordered_names_.count(Tok(i - 2).text) != 0) {
      Report(tokens_[i].line, "D1",
             "iterator over an unordered container ('" + Tok(i - 2).text + "')",
             "iterate a sorted copy of the keys, or use a vector/flat table with a "
             "deterministic order");
    }
  }

  void ScanD2(size_t i) {
    const std::string& text = tokens_[i].text;
    if (kClockIdentifiers.count(text) != 0) {
      Report(tokens_[i].line, "D2",
             "nondeterministic time/entropy source '" + text + "'",
             "use Simulation::Now() for simulated time or a seeded Rng for entropy; "
             "wall-clock belongs only in the profiling layer");
      return;
    }
    if (kClockCalls.count(text) != 0 && Tok(i + 1).text == "(") {
      // Only expression-position calls: `x.time(...)`, `Foo::time(...)` and
      // declarations `SimTime time(...)` are someone else's `time`.
      const std::string& prev = i > 0 ? tokens_[i - 1].text : std::string();
      if (prev == "." || prev == "->") {
        return;
      }
      if (prev == "::") {
        // std::rand / ::time are the libc entry points; Foo::time is not.
        if (i >= 2 && Tok(i - 2).text != "std" && IsIdentStart(Tok(i - 2).text[0])) {
          return;
        }
      } else if (!prev.empty() &&
                 (IsIdentStart(prev[0]) || prev == ">" || prev == "*" || prev == "&")) {
        return;  // declaration: a type name precedes
      }
      Report(tokens_[i].line, "D2",
             "call to wall-clock/libc entropy function '" + text + "()'",
             "use Simulation::Now() for simulated time or a seeded Rng for entropy; "
             "wall-clock belongs only in the profiling layer");
    }
  }

  void ScanD3Cast(size_t i) {
    if (tokens_[i].text == "reinterpret_cast" && Tok(i + 1).text == "<" &&
        kPointerCastTargets.count(Tok(i + 2).text) != 0) {
      Report(tokens_[i].line, "D3",
             "pointer-to-integer cast (reinterpret_cast<" + Tok(i + 2).text + ">)",
             "an address is not a stable identity; derive keys/orderings from dense "
             "ids instead");
    }
  }

  void ScanD4(size_t i) {
    // x->rng().NextFoo(...) / x.rng().NextFoo(...) / bare rng().NextFoo(...):
    // drawing through an accessor means the draw site cannot prove the stream
    // is private. Fork-derived accessors are allowlisted by receiver name.
    std::string receiver;
    std::string method;
    if (MatchRngAccessorDraw(tokens_, i, &receiver, &method)) {
      if (kForkedRngReceivers.count(receiver) != 0) {
        return;
      }
      Report(tokens_[i].line, "D4",
             "direct draw from a shared RNG stream (" +
                 (receiver.empty() ? std::string("this") : receiver) +
                 "->rng()." + method + ")",
             "fork a private stream once at construction (Rng::Fork / "
             "Simulation::ForkRng) and draw from the fork");
      return;
    }
    // A static / thread_local Rng is shared across every caller and thread.
    if ((tokens_[i].text == "static" || tokens_[i].text == "thread_local") &&
        Tok(i + 1).text == "Rng" && !Tok(i + 2).text.empty() &&
        IsIdentStart(Tok(i + 2).text[0])) {
      Report(tokens_[i].line, "D4",
             "shared " + tokens_[i].text + " Rng '" + Tok(i + 2).text + "'",
             "give each component its own Fork()-derived stream; shared streams make "
             "draw order depend on scheduling");
    }
  }

  void ScanD6(size_t i) {
    // Any accessor-reached RNG draw inside a parallel-phase region: code that
    // may run on a windowed worker must draw from a stream the shard owns
    // (a forked member), never through an accessor — even the accessors D4
    // allowlists, since those streams are shared across shards. Owned member
    // draws (`rng_.NextFoo(...)`) stay quiet.
    std::string receiver;
    std::string method;
    if (MatchRngAccessorDraw(tokens_, i, &receiver, &method) &&
        InParallelPhase(tokens_[i].line)) {
      Report(tokens_[i].line, "D6",
             "RNG accessor draw inside a parallel-phase region (" +
                 (receiver.empty() ? std::string("this") : receiver) +
                 "->rng()." + method + ")",
             "a parallel-phase shard must draw from a stream it owns; fork one at "
             "construction and draw from the member, or pass the owned Rng* "
             "explicitly (e.g. Network::DelaySampleFrom)");
    }
  }

  void ScanD6GlobalWrite(size_t i) {
    // Writes to namespace-scope mutables inside a parallel-phase region: a
    // shard may mutate only state it owns, and by this codebase's naming
    // convention namespace-scope mutables are spelled `g_...`. Token-level
    // heuristic over that prefix — reads stay quiet, and the lexer splits
    // `==` into two `=` tokens, so comparisons don't match the assignment
    // pattern. Blind spots (by design, like every rule here): globals not
    // named `g_*`, writes through references/pointers taken earlier.
    if (!InParallelPhase(tokens_[i].line)) {
      return;
    }
    std::string op;
    if (!MatchGlobalWrite(tokens_, i, &op)) {
      return;
    }
    Report(tokens_[i].line, "D6",
           "write to non-shard-owned global '" + tokens_[i].text + "' (" + op +
               ") inside a parallel-phase region",
           "a parallel phase may mutate only shard-owned state; buffer the "
           "effect through the barrier push lists or accumulate per-worker "
           "and merge at the barrier");
  }

  void Report(int line, const char* rule, std::string message, std::string hint) {
    findings_.push_back(
        Finding{file_, line, rule, std::move(message), std::move(hint), false, {}, {}});
  }

  void ApplySuppressions() {
    for (Finding& f : findings_) {
      if (f.rule == "SUP") {
        continue;  // malformed suppressions cannot suppress themselves
      }
      const auto it = lex_.allows.find(f.line);
      if (it == lex_.allows.end()) {
        continue;
      }
      for (const Allow& allow : it->second) {
        if (allow.rule == f.rule || allow.rule == "all" || allow.rule == "*") {
          f.suppressed = true;
          f.suppress_reason = allow.reason;
          break;
        }
      }
    }
  }

  std::string file_;
  LexOutput lex_;
  const std::vector<Token>& tokens_;
  std::vector<PhaseRegion> phase_regions_;
  std::set<std::string> unordered_names_;
  std::set<std::string> float_names_;
  std::vector<Finding> findings_;
};

// ---------------------------------------------------------------------------
// Pass 2: project graph — reachability fixpoint from parallel-phase roots.
// ---------------------------------------------------------------------------

// Built-in worker entry points: functions the windowed scheduler invokes on
// worker threads even without a lexical region marker around them.
const std::set<std::string> kBuiltinRootQuals = {"SimClient::Trigger",
                                                 "Secondary::SubmitBatch"};

// Top-level directory of a path, used to keep unrelated helpers out of
// production reachability: an edge into a file under tests/, bench/,
// examples/ or tools/ resolves only when the caller lives under the same
// top-level directory. Everything else (src/, bare filenames) is one shared
// category so production roots still reach all production code.
std::string PathCategory(const std::string& path) {
  size_t start = 0;
  // Normalize leading "./".
  while (path.compare(start, 2, "./") == 0) {
    start += 2;
  }
  const size_t slash = path.find('/', start);
  if (slash == std::string::npos) {
    return "";
  }
  const std::string top = path.substr(start, slash - start);
  if (top == "tests" || top == "bench" || top == "examples" || top == "tools") {
    return top;
  }
  return "";
}

struct ProjectGraph {
  std::vector<FuncDef> funcs;                    // all files, stable order
  std::vector<std::string> categories;           // per file
  std::vector<std::string> paths;                // per file
  std::map<std::string, std::vector<int>> by_name;  // last component -> funcs
  std::vector<int> roots;                        // indices into funcs
  std::vector<std::string> root_regions;         // region label per root ("" if none)
};

ProjectGraph BuildProjectGraph(const std::vector<SourceFile>& files,
                               const std::vector<Linter>& linters) {
  ProjectGraph graph;
  for (size_t f = 0; f < files.size(); ++f) {
    graph.paths.push_back(files[f].path);
    graph.categories.push_back(PathCategory(files[f].path));
    TuIndexer indexer(static_cast<int>(f), linters[f].tokens());
    for (FuncDef& def : indexer.Index()) {
      graph.funcs.push_back(std::move(def));
    }
  }
  for (size_t i = 0; i < graph.funcs.size(); ++i) {
    graph.by_name[graph.funcs[i].name].push_back(static_cast<int>(i));
  }
  // Roots: functions overlapping a parallel-phase region in their own file,
  // plus the scheduler's built-in worker entry points.
  for (size_t i = 0; i < graph.funcs.size(); ++i) {
    const FuncDef& def = graph.funcs[i];
    const auto& regions = linters[def.file_index].phase_regions();
    std::string region_label;
    bool is_root = false;
    for (const PhaseRegion& r : regions) {
      if (def.line_end >= r.begin && def.line_begin <= r.end) {
        is_root = true;
        region_label = r.name;
        break;
      }
    }
    if (!is_root && kBuiltinRootQuals.count(def.qual) != 0) {
      is_root = true;
    }
    if (is_root) {
      graph.roots.push_back(static_cast<int>(i));
      graph.root_regions.push_back(region_label);
    }
  }
  return graph;
}

// BFS over name-resolved call edges from `start` (inclusive). Fills
// `parent` with the BFS tree (-1 for unreached / the start) so chains can
// be reconstructed; returns reached indices in BFS order. Deterministic:
// adjacency is ordered by call-site order, name resolution by function
// index (itself file-order stable).
std::vector<int> Reach(const ProjectGraph& graph, const std::vector<int>& starts,
                       std::vector<int>* parent) {
  parent->assign(graph.funcs.size(), -1);
  std::vector<char> seen(graph.funcs.size(), 0);
  std::deque<int> queue;
  std::vector<int> order;
  for (int s : starts) {
    if (!seen[s]) {
      seen[s] = 1;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    order.push_back(u);
    const std::string& from_cat = graph.categories[graph.funcs[u].file_index];
    for (const CallSite& call : graph.funcs[u].calls) {
      const auto it = graph.by_name.find(call.callee);
      if (it == graph.by_name.end()) {
        continue;
      }
      for (int v : it->second) {
        if (seen[v]) {
          continue;
        }
        const std::string& to_cat = graph.categories[graph.funcs[v].file_index];
        if (!to_cat.empty() && to_cat != from_cat) {
          continue;  // production code never reaches test/bench helpers
        }
        seen[v] = 1;
        (*parent)[v] = u;
        queue.push_back(v);
      }
    }
  }
  return order;
}

std::vector<std::string> ChainFor(const ProjectGraph& graph,
                                  const std::vector<int>& parent, int func) {
  std::vector<std::string> chain;
  for (int v = func; v != -1; v = parent[v]) {
    chain.push_back(graph.funcs[v].qual);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

// Emits D7/D8 findings into the per-file linters. D7: RNG-accessor draws and
// `g_` writes in functions reachable from a parallel-phase root but outside
// any marked region (in-region sites are D6's). D8: serial-only API calls in
// any reachable function, in-region included.
void EmitReachabilityFindings(const ProjectGraph& graph, std::vector<Linter>* linters) {
  std::vector<int> parent;
  const std::vector<int> reached = Reach(graph, graph.roots, &parent);
  std::set<std::string> emitted;  // file:line:rule:detail dedup
  for (const int u : reached) {
    const FuncDef& def = graph.funcs[u];
    Linter& linter = (*linters)[def.file_index];
    const bool is_root = parent[u] == -1;
    const std::vector<std::string> chain = ChainFor(graph, parent, u);
    for (const HazardSite& site : def.hazards) {
      const bool in_region = LineInRegions(linter.phase_regions(), site.line);
      std::string rule;
      std::string message;
      std::string hint;
      switch (site.kind) {
        case HazardKind::kRngAccessor:
          if (in_region) {
            continue;  // D6 already reports it at the site
          }
          rule = "D7";
          message = "RNG accessor draw (" + site.detail + "->rng()." + site.extra +
                    ") reachable from parallel-phase root '" + chain.front() + "'";
          hint =
              "code reachable from a parallel phase must draw from a stream the "
              "shard owns; fork a member stream or pass the owned Rng* down the "
              "call chain";
          break;
        case HazardKind::kGlobalWrite:
          if (in_region) {
            continue;
          }
          rule = "D7";
          message = "write to global '" + site.detail + "' (" + site.extra +
                    ") reachable from parallel-phase root '" + chain.front() + "'";
          hint =
              "a parallel phase may mutate only shard-owned state, including "
              "through helpers; accumulate per-worker and merge at the barrier";
          break;
        case HazardKind::kSerialApi:
          rule = "D8";
          message = "serial-only API '" + site.detail + "' (" + site.extra +
                    ") reachable from parallel-phase root '" + chain.front() + "'";
          hint =
              site.extra == "serial-shard scheduling"
                  ? "schedule onto an owned shard instead: ScheduleEngine/"
                    "ScheduleEngineAt for engine work, ScheduleOn/ScheduleAtOn "
                    "otherwise"
                  : (site.extra == "stdout"
                         ? "windowed code must not write stdout; diagnostics go to "
                           "stderr, results flow through the report"
                         : "this API assumes serial context; defer it to a "
                           "barrier-published serial event");
          break;
      }
      const std::string key = graph.paths[def.file_index] + ":" +
                              std::to_string(site.line) + ":" + rule + ":" +
                              site.detail;
      if (!emitted.insert(key).second) {
        continue;
      }
      Finding finding{linter.file(), site.line,      rule, std::move(message),
                      std::move(hint), false, {}, {}};
      if (!is_root || site.kind == HazardKind::kSerialApi) {
        finding.chain = chain;
      }
      linter.AddFinding(std::move(finding));
    }
  }
}

std::vector<Linter> AnalyzeFiles(const std::vector<SourceFile>& files) {
  std::vector<Linter> linters;
  linters.reserve(files.size());
  for (const SourceFile& file : files) {
    linters.emplace_back(file.path, Lex(file.path, file.source));
    linters.back().Analyze();
  }
  return linters;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

LintResult LintProject(const std::vector<SourceFile>& files) {
  std::vector<Linter> linters = AnalyzeFiles(files);
  const ProjectGraph graph = BuildProjectGraph(files, linters);
  EmitReachabilityFindings(graph, &linters);
  LintResult result;
  for (Linter& linter : linters) {
    LintResult file_result = linter.Finish();
    for (Finding& f : file_result.findings) {
      result.findings.push_back(std::move(f));
    }
  }
  return result;
}

LintResult LintSource(const std::string& path_label, const std::string& source) {
  return LintProject({SourceFile{path_label, source}});
}

LintResult LintFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    LintResult result;
    result.findings.push_back(
        Finding{path, 0, "SUP", "cannot read file", "check the path", false, {}, {}});
    return result;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return LintSource(path, buffer.str());
}

std::string ShardReport(const std::vector<SourceFile>& files) {
  std::vector<Linter> linters = AnalyzeFiles(files);
  const ProjectGraph graph = BuildProjectGraph(files, linters);
  // Order roots by (path, qualified name, body start) for a stable report.
  std::vector<size_t> root_order(graph.roots.size());
  for (size_t i = 0; i < root_order.size(); ++i) {
    root_order[i] = i;
  }
  std::sort(root_order.begin(), root_order.end(), [&](size_t a, size_t b) {
    const FuncDef& fa = graph.funcs[graph.roots[a]];
    const FuncDef& fb = graph.funcs[graph.roots[b]];
    return std::tie(graph.paths[fa.file_index], fa.qual, fa.line_begin) <
           std::tie(graph.paths[fb.file_index], fb.qual, fb.line_begin);
  });
  std::ostringstream out;
  out << "# detlint shard report\n"
      << "# One section per parallel-phase root: transitive callees and the\n"
      << "# shared state reachable from the root. Regenerate with\n"
      << "#   detlint --shard-report <paths> > tools/detlint/shard_report.baseline\n"
      << "# Line numbers are deliberately absent so reformatting does not\n"
      << "# churn the baseline; adding/removing calls or shared-state touches\n"
      << "# does, and that is the review signal.\n";
  for (const size_t idx : root_order) {
    const int root = graph.roots[idx];
    const FuncDef& def = graph.funcs[root];
    out << "\nroot " << def.qual << " (" << graph.paths[def.file_index] << ")";
    if (!graph.root_regions[idx].empty()) {
      out << " region=" << graph.root_regions[idx];
    }
    out << "\n";
    std::vector<int> parent;
    const std::vector<int> reached = Reach(graph, {root}, &parent);
    // Callees: everything reached except the root itself.
    std::set<std::string> callees;
    std::set<std::string> state;
    for (const int u : reached) {
      const FuncDef& fn = graph.funcs[u];
      if (u != root) {
        callees.insert(fn.qual + " (" + graph.paths[fn.file_index] + ")");
      }
      const Linter& linter = linters[fn.file_index];
      for (const HazardSite& site : fn.hazards) {
        std::string entry;
        std::string rule;
        switch (site.kind) {
          case HazardKind::kRngAccessor:
            entry = "rng-accessor " + site.detail + "->rng()." + site.extra;
            rule = LineInRegions(linter.phase_regions(), site.line) ? "D6" : "D7";
            break;
          case HazardKind::kGlobalWrite:
            entry = "global-write " + site.detail;
            rule = LineInRegions(linter.phase_regions(), site.line) ? "D6" : "D7";
            break;
          case HazardKind::kSerialApi:
            entry = "serial-api " + site.detail;
            rule = "D8";
            break;
        }
        entry += " (" + graph.paths[fn.file_index] + ")";
        if (linter.HasAllowFor(site.line, rule)) {
          entry += " [suppressed]";
        }
        state.insert(entry);
      }
    }
    out << "  calls:" << (callees.empty() ? " none\n" : "\n");
    for (const std::string& callee : callees) {
      out << "    " << callee << "\n";
    }
    out << "  state:" << (state.empty() ? " none\n" : "\n");
    for (const std::string& entry : state) {
      out << "    " << entry << "\n";
    }
  }
  return out.str();
}

size_t CountUnsuppressed(const LintResult& result) {
  size_t count = 0;
  for (const Finding& f : result.findings) {
    count += f.suppressed ? 0 : 1;
  }
  return count;
}

std::string FormatFinding(const Finding& finding) {
  std::string out = finding.file + ":" + std::to_string(finding.line) + ": [" +
                    finding.rule + "] " + finding.message;
  if (finding.suppressed) {
    out += " [suppressed: " + finding.suppress_reason + "]";
  } else if (!finding.hint.empty()) {
    out += " (hint: " + finding.hint + ")";
  }
  if (!finding.chain.empty()) {
    out += " [via ";
    for (size_t i = 0; i < finding.chain.size(); ++i) {
      if (i != 0) {
        out += " -> ";
      }
      out += finding.chain[i];
    }
    out += "]";
  }
  return out;
}

std::string FindingsAsJson(const LintResult& result) {
  std::string out = "{\"findings\":[";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    if (i != 0) {
      out += ",";
    }
    out += "{\"file\":";
    AppendJsonString(f.file, &out);
    out += ",\"line\":" + std::to_string(f.line);
    out += ",\"rule\":";
    AppendJsonString(f.rule, &out);
    out += ",\"message\":";
    AppendJsonString(f.message, &out);
    out += ",\"hint\":";
    AppendJsonString(f.hint, &out);
    out += ",\"suppressed\":";
    out += f.suppressed ? "true" : "false";
    out += ",\"reason\":";
    AppendJsonString(f.suppress_reason, &out);
    out += ",\"chain\":[";
    for (size_t c = 0; c < f.chain.size(); ++c) {
      if (c != 0) {
        out += ",";
      }
      AppendJsonString(f.chain[c], &out);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace diablo::detlint
