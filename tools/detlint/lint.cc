#include "tools/detlint/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace diablo::detlint {
namespace {

struct Token {
  std::string text;
  int line = 0;
};

struct Allow {
  std::string rule;
  std::string reason;
};

// Per-line suppressions collected while lexing; standalone comment lines are
// re-attached to the next code line after lexing.
struct LexOutput {
  std::vector<Token> tokens;
  std::map<int, std::vector<Allow>> allows;         // line -> allows
  std::vector<std::pair<int, Allow>> standalone;    // comment line, allow
  std::vector<std::pair<int, bool>> phase_marks;    // line, is_begin (D6)
  std::vector<Finding> comment_findings;            // malformed allow()
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Parses every detlint comment directive: `allow(RULE, reason)` suppressions
// and the `parallel-phase(begin)` / `parallel-phase(end)` region markers that
// scope rule D6.
void ParseAllows(const std::string& comment, int line, bool standalone,
                 const std::string& file, LexOutput* out) {
  size_t pos = 0;
  while ((pos = comment.find("detlint:", pos)) != std::string::npos) {
    pos += 8;
    // Region markers come right after the marker word; they must be matched
    // here because the allow() search below breaks out when absent.
    size_t marker = pos;
    while (marker < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[marker]))) {
      ++marker;
    }
    if (comment.compare(marker, 21, "parallel-phase(begin)") == 0) {
      out->phase_marks.emplace_back(line, true);
      pos = marker + 21;
      continue;
    }
    if (comment.compare(marker, 19, "parallel-phase(end)") == 0) {
      out->phase_marks.emplace_back(line, false);
      pos = marker + 19;
      continue;
    }
    size_t open = comment.find("allow(", pos);
    if (open == std::string::npos) {
      break;
    }
    open += 6;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) {
      break;
    }
    const std::string body = comment.substr(open, close - open);
    const size_t comma = body.find(',');
    std::string rule = body.substr(0, comma == std::string::npos ? body.size() : comma);
    std::string reason =
        comma == std::string::npos ? std::string() : body.substr(comma + 1);
    auto strip = [](std::string& s) {
      while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.erase(s.begin());
      while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.pop_back();
    };
    strip(rule);
    strip(reason);
    if (reason.empty()) {
      out->comment_findings.push_back(Finding{
          file, line, "SUP",
          "suppression allow(" + rule + ") carries no reason",
          "write `// detlint: allow(" + rule + ", <why this site is deterministic>)`",
          false,
          {}});
    } else if (standalone) {
      out->standalone.emplace_back(line, Allow{rule, reason});
    } else {
      out->allows[line].push_back(Allow{rule, reason});
    }
    pos = close;
  }
}

// Lexes `source` into identifier / number / operator tokens, stripping
// comments, string and character literals, and preprocessor lines. Multi-char
// operators are combined only where a rule needs them (:: -> += -=).
LexOutput Lex(const std::string& file, const std::string& source) {
  LexOutput out;
  const size_t n = source.size();
  size_t i = 0;
  int line = 1;
  bool line_has_code = false;
  auto newline = [&] {
    ++line;
    line_has_code = false;
  };
  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    if (c == '#' && !line_has_code) {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const size_t start = i + 2;
      size_t end = start;
      while (end < n && source[end] != '\n') {
        ++end;
      }
      ParseAllows(source.substr(start, end - start), line, !line_has_code, file, &out);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int comment_line = line;
      const bool standalone = !line_has_code;
      const size_t start = i + 2;
      size_t end = start;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/')) {
        if (source[end] == '\n') {
          newline();
        }
        ++end;
      }
      ParseAllows(source.substr(start, end - start), comment_line, standalone, file, &out);
      i = end + 2 > n ? n : end + 2;
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t p = i + 2;
      std::string delim;
      while (p < n && source[p] != '(') {
        delim += source[p++];
      }
      const std::string closer = ")" + delim + "\"";
      const size_t end = source.find(closer, p);
      // Count newlines inside the raw string so later line numbers stay true.
      const size_t stop = end == std::string::npos ? n : end + closer.size();
      for (size_t q = i; q < stop; ++q) {
        if (source[q] == '\n') {
          newline();
        }
      }
      line_has_code = true;
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      // A ' between alphanumerics is a C++14 digit separator, handled by the
      // number lexer below; here a ' always opens a char literal because the
      // preceding token boundary was non-alphanumeric.
      const char quote = c;
      ++i;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (source[i] == '\n') {
          newline();  // unterminated literal; keep line numbers sane
        }
        ++i;
      }
      ++i;
      line_has_code = true;
      continue;
    }
    line_has_code = true;
    // Identifier.
    if (IsIdentStart(c)) {
      size_t end = i + 1;
      while (end < n && IsIdentChar(source[end])) {
        ++end;
      }
      out.tokens.push_back(Token{source.substr(i, end - i), line});
      i = end;
      continue;
    }
    // Number (consumes digit separators and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i + 1;
      while (end < n &&
             (IsIdentChar(source[end]) || source[end] == '.' || source[end] == '\'' ||
              ((source[end] == '+' || source[end] == '-') &&
               (source[end - 1] == 'e' || source[end - 1] == 'E' ||
                source[end - 1] == 'p' || source[end - 1] == 'P')))) {
        ++end;
      }
      out.tokens.push_back(Token{source.substr(i, end - i), line});
      i = end;
      continue;
    }
    // Operators; combine the few multi-char ones the rules look at.
    if (i + 1 < n) {
      const char d = source[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>') || (c == '+' && d == '=') ||
          (c == '-' && d == '=')) {
        out.tokens.push_back(Token{std::string{c, d}, line});
        i += 2;
        continue;
      }
    }
    out.tokens.push_back(Token{std::string(1, c), line});
    ++i;
  }
  return out;
}

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
const std::set<std::string> kAssociativeContainers = {
    "map", "set", "multimap", "multiset", "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset", "priority_queue"};
// Bare identifier hits: any appearance outside a comment/string is a finding.
const std::set<std::string> kClockIdentifiers = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "timespec_get", "localtime", "localtime_r", "mktime"};
// Call-position hits: only `name(` in expression position is a finding, so
// members and locals that happen to share the name stay quiet.
const std::set<std::string> kClockCalls = {"rand", "srand", "time", "clock"};
const std::set<std::string> kPointerCastTargets = {"uintptr_t", "intptr_t", "size_t",
                                                   "uint64_t"};
// Accessors returning an Rng& that is itself Fork-derived per component:
// ChainContext::rng() is forked from the simulation root at construction, so
// engines drawing through `ctx->rng()` / `ctx_->rng()` stay on a private
// per-chain stream.
const std::set<std::string> kForkedRngReceivers = {"ctx", "ctx_"};

class Linter {
 public:
  Linter(std::string file, LexOutput lex)
      : file_(std::move(file)), lex_(std::move(lex)), tokens_(lex_.tokens) {}

  LintResult Run() {
    AttachStandaloneAllows();
    BuildPhaseRegions();
    CollectDeclarations();
    Scan();
    for (Finding& f : lex_.comment_findings) {
      findings_.push_back(std::move(f));
    }
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) { return a.line < b.line; });
    ApplySuppressions();
    LintResult result;
    result.findings = std::move(findings_);
    return result;
  }

 private:
  const Token& Tok(size_t i) const {
    static const Token kEnd{"", 0};
    return i < tokens_.size() ? tokens_[i] : kEnd;
  }

  // A suppression comment standing on its own line suppresses the next line
  // that carries code.
  void AttachStandaloneAllows() {
    for (const auto& [comment_line, allow] : lex_.standalone) {
      int target = 0;
      for (const Token& t : tokens_) {
        if (t.line > comment_line) {
          target = t.line;
          break;
        }
      }
      if (target != 0) {
        lex_.allows[target].push_back(allow);
      }
      // Also cover the comment's own line: a same-line use inside a block
      // comment resolves identically either way.
      lex_.allows[comment_line].push_back(allow);
    }
  }

  // Folds the lexer's parallel-phase(begin/end) markers into [begin, end]
  // line ranges. Markers arrive in source order; an unmatched begin keeps its
  // region open to the end of the file (conservative: more code is scanned),
  // and a stray end is ignored.
  void BuildPhaseRegions() {
    int open_line = 0;
    for (const auto& [line, is_begin] : lex_.phase_marks) {
      if (is_begin) {
        if (open_line == 0) {
          open_line = line;
        }
      } else if (open_line != 0) {
        phase_regions_.emplace_back(open_line, line);
        open_line = 0;
      }
    }
    if (open_line != 0) {
      phase_regions_.emplace_back(open_line, std::numeric_limits<int>::max());
    }
  }

  bool InParallelPhase(int line) const {
    for (const auto& [begin, end] : phase_regions_) {
      if (line >= begin && line <= end) {
        return true;
      }
    }
    return false;
  }

  // Skips a balanced <...> starting at the `<` token index; returns the index
  // one past the matching `>`, and the token range of the first template
  // argument. `>` and `<` arrive as single-char tokens, so nested closers are
  // never fused into `>>`.
  size_t SkipTemplateArgs(size_t open, size_t* first_arg_begin, size_t* first_arg_end) {
    size_t depth = 0;
    *first_arg_begin = open + 1;
    *first_arg_end = 0;
    for (size_t i = open; i < tokens_.size(); ++i) {
      const std::string& t = tokens_[i].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        --depth;
        if (depth == 0) {
          if (*first_arg_end == 0) {
            *first_arg_end = i;
          }
          return i + 1;
        }
      } else if (t == "(") {
        // Not a template argument list after all (operator< in an
        // expression, e.g. `a < b(c)`); bail out.
        return open + 1;
      } else if (t == "," && depth == 1 && *first_arg_end == 0) {
        *first_arg_end = i;
      }
    }
    return tokens_.size();
  }

  // Registers identifiers declared with an unordered container type (for D1
  // and D5) or a float/double type (for D5), and flags pointer-valued keys
  // (D3) while the template arguments are in hand.
  void CollectDeclarations() {
    for (size_t i = 0; i < tokens_.size(); ++i) {
      const std::string& text = tokens_[i].text;
      if (kAssociativeContainers.count(text) != 0 && Tok(i + 1).text == "<") {
        size_t arg_begin = 0;
        size_t arg_end = 0;
        const size_t after = SkipTemplateArgs(i + 1, &arg_begin, &arg_end);
        if (arg_end > arg_begin) {
          if (tokens_[arg_end - 1].text == "*") {
            Report(tokens_[i].line, "D3",
                   "associative container '" + text + "' keyed on a pointer type",
                   "key on a dense id or stable index; pointer values change run to run");
          }
        }
        if (kUnorderedContainers.count(text) != 0) {
          // Declared name: first identifier after the closing '>', skipping
          // cv/ref tokens. Misses aliases and typedefs by design.
          size_t j = after;
          while (Tok(j).text == "const" || Tok(j).text == "&" || Tok(j).text == "*") {
            ++j;
          }
          if (!Tok(j).text.empty() && IsIdentStart(Tok(j).text[0])) {
            unordered_names_.insert(Tok(j).text);
          }
        }
        i = after > i ? after - 1 : i;
        continue;
      }
      if ((text == "double" || text == "float") && !Tok(i + 1).text.empty() &&
          IsIdentStart(Tok(i + 1).text[0]) && Tok(i + 1).text != "const") {
        float_names_.insert(Tok(i + 1).text);
      }
    }
  }

  void Scan() {
    for (size_t i = 0; i < tokens_.size(); ++i) {
      ScanD1D5(i);
      ScanD2(i);
      ScanD3Cast(i);
      ScanD4(i);
      ScanD6(i);
      ScanD6GlobalWrite(i);
    }
  }

  void ScanD1D5(size_t i) {
    // Range-for over an unordered container declared in this file.
    if (tokens_[i].text == "for" && Tok(i + 1).text == "(") {
      size_t depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < tokens_.size(); ++j) {
        const std::string& t = tokens_[j].text;
        if (t == "(") {
          ++depth;
        } else if (t == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        } else if (t == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) {
        return;
      }
      bool unordered = false;
      for (size_t j = colon + 1; j < close; ++j) {
        if (unordered_names_.count(tokens_[j].text) != 0) {
          unordered = true;
          break;
        }
      }
      if (!unordered) {
        return;
      }
      Report(tokens_[i].line, "D1",
             "range-for over an unordered container",
             "iterate a sorted copy of the keys, or use a vector/flat table with a "
             "deterministic order");
      // D5: float accumulation inside this loop's body.
      size_t body_end = close + 1;
      if (Tok(close + 1).text == "{") {
        size_t brace = 0;
        for (size_t j = close + 1; j < tokens_.size(); ++j) {
          if (tokens_[j].text == "{") {
            ++brace;
          } else if (tokens_[j].text == "}") {
            if (--brace == 0) {
              body_end = j;
              break;
            }
          }
        }
      } else {
        while (body_end < tokens_.size() && tokens_[body_end].text != ";") {
          ++body_end;
        }
      }
      for (size_t j = close + 1; j < body_end; ++j) {
        if ((tokens_[j].text == "+=" || tokens_[j].text == "-=") && j > 0 &&
            float_names_.count(tokens_[j - 1].text) != 0) {
          Report(tokens_[j].line, "D5",
                 "floating-point accumulation inside unordered iteration",
                 "FP addition is not associative; accumulate in a fixed order (sorted "
                 "keys or index order)");
        }
      }
      return;
    }
    // Explicit iterator over an unordered container.
    if ((tokens_[i].text == "begin" || tokens_[i].text == "cbegin") &&
        Tok(i + 1).text == "(" && i >= 2 &&
        (Tok(i - 1).text == "." || Tok(i - 1).text == "->") &&
        unordered_names_.count(Tok(i - 2).text) != 0) {
      Report(tokens_[i].line, "D1",
             "iterator over an unordered container ('" + Tok(i - 2).text + "')",
             "iterate a sorted copy of the keys, or use a vector/flat table with a "
             "deterministic order");
    }
  }

  void ScanD2(size_t i) {
    const std::string& text = tokens_[i].text;
    if (kClockIdentifiers.count(text) != 0) {
      Report(tokens_[i].line, "D2",
             "nondeterministic time/entropy source '" + text + "'",
             "use Simulation::Now() for simulated time or a seeded Rng for entropy; "
             "wall-clock belongs only in the profiling layer");
      return;
    }
    if (kClockCalls.count(text) != 0 && Tok(i + 1).text == "(") {
      // Only expression-position calls: `x.time(...)`, `Foo::time(...)` and
      // declarations `SimTime time(...)` are someone else's `time`.
      const std::string& prev = i > 0 ? tokens_[i - 1].text : std::string();
      if (prev == "." || prev == "->") {
        return;
      }
      if (prev == "::") {
        // std::rand / ::time are the libc entry points; Foo::time is not.
        if (i >= 2 && Tok(i - 2).text != "std" && IsIdentStart(Tok(i - 2).text[0])) {
          return;
        }
      } else if (!prev.empty() &&
                 (IsIdentStart(prev[0]) || prev == ">" || prev == "*" || prev == "&")) {
        return;  // declaration: a type name precedes
      }
      Report(tokens_[i].line, "D2",
             "call to wall-clock/libc entropy function '" + text + "()'",
             "use Simulation::Now() for simulated time or a seeded Rng for entropy; "
             "wall-clock belongs only in the profiling layer");
    }
  }

  void ScanD3Cast(size_t i) {
    if (tokens_[i].text == "reinterpret_cast" && Tok(i + 1).text == "<" &&
        kPointerCastTargets.count(Tok(i + 2).text) != 0) {
      Report(tokens_[i].line, "D3",
             "pointer-to-integer cast (reinterpret_cast<" + Tok(i + 2).text + ">)",
             "an address is not a stable identity; derive keys/orderings from dense "
             "ids instead");
    }
  }

  void ScanD4(size_t i) {
    // x->rng().NextFoo(...) / x.rng().NextFoo(...) / bare rng().NextFoo(...):
    // drawing through an accessor means the draw site cannot prove the stream
    // is private. Fork-derived accessors are allowlisted by receiver name.
    if (tokens_[i].text == "rng" && Tok(i + 1).text == "(" && Tok(i + 2).text == ")" &&
        Tok(i + 3).text == "." && Tok(i + 4).text.compare(0, 4, "Next") == 0) {
      std::string receiver;
      if (i >= 2 && (Tok(i - 1).text == "->" || Tok(i - 1).text == ".")) {
        receiver = Tok(i - 2).text;
      }
      if (kForkedRngReceivers.count(receiver) != 0) {
        return;
      }
      Report(tokens_[i].line, "D4",
             "direct draw from a shared RNG stream (" +
                 (receiver.empty() ? std::string("this") : receiver) +
                 "->rng()." + Tok(i + 4).text + ")",
             "fork a private stream once at construction (Rng::Fork / "
             "Simulation::ForkRng) and draw from the fork");
      return;
    }
    // A static / thread_local Rng is shared across every caller and thread.
    if ((tokens_[i].text == "static" || tokens_[i].text == "thread_local") &&
        Tok(i + 1).text == "Rng" && !Tok(i + 2).text.empty() &&
        IsIdentStart(Tok(i + 2).text[0])) {
      Report(tokens_[i].line, "D4",
             "shared " + tokens_[i].text + " Rng '" + Tok(i + 2).text + "'",
             "give each component its own Fork()-derived stream; shared streams make "
             "draw order depend on scheduling");
    }
  }

  void ScanD6(size_t i) {
    // Any accessor-reached RNG draw inside a parallel-phase region: code that
    // may run on a windowed worker must draw from a stream the shard owns
    // (a forked member), never through an accessor — even the accessors D4
    // allowlists, since those streams are shared across shards. Owned member
    // draws (`rng_.NextFoo(...)`) stay quiet.
    if (tokens_[i].text == "rng" && Tok(i + 1).text == "(" && Tok(i + 2).text == ")" &&
        Tok(i + 3).text == "." && Tok(i + 4).text.compare(0, 4, "Next") == 0 &&
        InParallelPhase(tokens_[i].line)) {
      std::string receiver;
      if (i >= 2 && (Tok(i - 1).text == "->" || Tok(i - 1).text == ".")) {
        receiver = Tok(i - 2).text;
      }
      Report(tokens_[i].line, "D6",
             "RNG accessor draw inside a parallel-phase region (" +
                 (receiver.empty() ? std::string("this") : receiver) +
                 "->rng()." + Tok(i + 4).text + ")",
             "a parallel-phase shard must draw from a stream it owns; fork one at "
             "construction and draw from the member, or pass the owned Rng* "
             "explicitly (e.g. Network::DelaySampleFrom)");
    }
  }

  void ScanD6GlobalWrite(size_t i) {
    // Writes to namespace-scope mutables inside a parallel-phase region: a
    // shard may mutate only state it owns, and by this codebase's naming
    // convention namespace-scope mutables are spelled `g_...`. Token-level
    // heuristic over that prefix — reads stay quiet, and the lexer splits
    // `==` into two `=` tokens, so comparisons don't match the assignment
    // pattern. Blind spots (by design, like every rule here): globals not
    // named `g_*`, writes through references/pointers taken earlier.
    const std::string& text = tokens_[i].text;
    if (text.size() <= 2 || text.compare(0, 2, "g_") != 0 ||
        !IsIdentStart(text[0]) || !InParallelPhase(tokens_[i].line)) {
      return;
    }
    const std::string& next = Tok(i + 1).text;
    bool write = false;
    std::string op;
    if (next == "=" && Tok(i + 2).text != "=") {
      // Plain assignment; `g_x == y` lexes as `=` `=` and is skipped.
      write = true;
      op = "=";
    } else if (next == "+=" || next == "-=") {
      write = true;
      op = next;
    } else if ((next == "*" || next == "/" || next == "%" || next == "&" ||
                next == "|" || next == "^") &&
               Tok(i + 2).text == "=" && Tok(i + 3).text != "=") {
      // Compound ops the lexer splits (`*=` → `*` `=`). `<`/`>` are excluded:
      // `g_x <= y` would lex identically to a split `<=`.
      write = true;
      op = next + "=";
    } else if (next == "+" && Tok(i + 2).text == "+" &&
               !Tok(i + 3).text.empty() && !IsIdentStart(Tok(i + 3).text[0])) {
      // Postfix ++ (the lexer splits it); the trailing guard keeps
      // `g_x + +y` quiet.
      write = true;
      op = "++";
    } else if (next == "-" && Tok(i + 2).text == "-" &&
               !Tok(i + 3).text.empty() && !IsIdentStart(Tok(i + 3).text[0])) {
      write = true;
      op = "--";
    } else if (i >= 2 &&
               ((Tok(i - 2).text == "+" && Tok(i - 1).text == "+") ||
                (Tok(i - 2).text == "-" && Tok(i - 1).text == "-"))) {
      // Prefix ++/--; the leading guard keeps `a + +g_x` (unary plus on an
      // operand after a binary +) quiet: before a genuine prefix increment
      // the previous token cannot end an expression.
      const std::string& before = i >= 3 ? Tok(i - 3).text : std::string();
      const bool ends_expression =
          !before.empty() && (IsIdentStart(before[0]) || before == ")" ||
                              before == "]" || (before[0] >= '0' && before[0] <= '9'));
      if (!ends_expression) {
        write = true;
        op = Tok(i - 1).text == "+" ? "++" : "--";
      }
    } else if ((next == "." || next == "->") &&
               (Tok(i + 2).text == "store" || Tok(i + 2).text == "exchange" ||
                Tok(i + 2).text == "fetch_add" || Tok(i + 2).text == "fetch_sub") &&
               Tok(i + 3).text == "(") {
      // Atomic mutation is still a cross-shard effect ordered by the memory
      // model, not the window barrier.
      write = true;
      op = Tok(i + 2).text + "()";
    }
    if (!write) {
      return;
    }
    Report(tokens_[i].line, "D6",
           "write to non-shard-owned global '" + text + "' (" + op +
               ") inside a parallel-phase region",
           "a parallel phase may mutate only shard-owned state; buffer the "
           "effect through the barrier push lists or accumulate per-worker "
           "and merge at the barrier");
  }

  void Report(int line, const char* rule, std::string message, std::string hint) {
    findings_.push_back(
        Finding{file_, line, rule, std::move(message), std::move(hint), false, {}});
  }

  void ApplySuppressions() {
    for (Finding& f : findings_) {
      if (f.rule == "SUP") {
        continue;  // malformed suppressions cannot suppress themselves
      }
      const auto it = lex_.allows.find(f.line);
      if (it == lex_.allows.end()) {
        continue;
      }
      for (const Allow& allow : it->second) {
        if (allow.rule == f.rule || allow.rule == "all" || allow.rule == "*") {
          f.suppressed = true;
          f.suppress_reason = allow.reason;
          break;
        }
      }
    }
  }

  std::string file_;
  LexOutput lex_;
  const std::vector<Token>& tokens_;
  std::vector<std::pair<int, int>> phase_regions_;  // inclusive line ranges
  std::set<std::string> unordered_names_;
  std::set<std::string> float_names_;
  std::vector<Finding> findings_;
};

}  // namespace

LintResult LintSource(const std::string& path_label, const std::string& source) {
  return Linter(path_label, Lex(path_label, source)).Run();
}

LintResult LintFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    LintResult result;
    result.findings.push_back(
        Finding{path, 0, "SUP", "cannot read file", "check the path", false, {}});
    return result;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return LintSource(path, buffer.str());
}

size_t CountUnsuppressed(const LintResult& result) {
  size_t count = 0;
  for (const Finding& f : result.findings) {
    count += f.suppressed ? 0 : 1;
  }
  return count;
}

std::string FormatFinding(const Finding& finding) {
  std::string out = finding.file + ":" + std::to_string(finding.line) + ": [" +
                    finding.rule + "] " + finding.message;
  if (finding.suppressed) {
    out += " [suppressed: " + finding.suppress_reason + "]";
  } else if (!finding.hint.empty()) {
    out += " (hint: " + finding.hint + ")";
  }
  return out;
}

}  // namespace diablo::detlint
