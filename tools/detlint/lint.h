// detlint: a determinism lint for this codebase.
//
// The simulator's one non-negotiable property is bit-determinism: the same
// seed must produce byte-identical output regardless of DIABLO_JOBS,
// DIABLO_CELL_WORKERS, host, or standard library. The golden-output tests
// catch violations after they ship; detlint catches the hazard *classes* at
// lint time, before a run is ever needed. It is a token-level scanner
// (comments, strings and preprocessor lines are stripped; no libclang),
// which keeps it fast, dependency-free and honest about what it can see —
// each rule is a syntactic pattern with a documented blind spot, not a
// soundness proof.
//
// Since v2 the lint is project-wide and call-graph-aware: pass 1 indexes
// every translation unit (function and method definitions, call edges,
// RNG-accessor draw sites, `g_` global writes, serial-only API calls), and
// pass 2 computes a fixpoint of parallel-phase reachability from the marked
// `parallel-phase` regions plus the scheduler's worker entry points
// (`SimClient::Trigger`, `Secondary::SubmitBatch`). Rules D4/D6 therefore
// apply transitively through helper calls via the two reachability rules
// D7/D8 below.
//
// Rules:
//   D1  iteration over std::unordered_map / std::unordered_set declared in
//       the same file (range-for or .begin()/.cbegin()): iteration order is
//       unspecified and leaks into output, RNG draw order, event scheduling
//       and report aggregation.
//   D2  wall-clock or ambient-entropy sources: std::random_device, rand(),
//       srand(), time(), clock(), gettimeofday, localtime, and the <chrono>
//       clocks (system_clock / steady_clock / high_resolution_clock).
//       Simulated time comes from Simulation::Now(); randomness from a
//       seeded Rng. The profiling layer suppresses these inline.
//   D3  pointer-valued keys in associative containers (map/set/unordered_*
//       keyed on T*) and pointer-to-integer casts (reinterpret_cast to
//       uintptr_t/intptr_t/size_t/uint64_t): addresses vary run to run, so
//       any order or hash derived from them is nondeterministic.
//   D4  draws from a shared RNG stream reached through an accessor
//       (x->rng().NextFoo(...)): components must fork a private stream once
//       at construction (Rng::Fork / Simulation::ForkRng) so event
//       reordering never perturbs another component's draws. Receivers
//       known to return an already-forked per-component stream (the
//       ChainContext accessor spelled `ctx` / `ctx_`) are allowlisted.
//       Also flags `static Rng` / `thread_local Rng` declarations.
//   D5  floating-point accumulation (+=/-= on a float/double) inside a
//       range-for over an unordered container: FP addition is not
//       associative, so an unspecified reduction order changes the sum.
//   D6  parallel-phase hazards — inside a region bracketed by the
//       standalone markers `// detlint: parallel-phase(begin)` and
//       `// detlint: parallel-phase(end)`, which mark functions the
//       windowed scheduler may run on a worker thread (an unmatched begin
//       extends to the end of the file; `parallel-phase(begin, <name>)`
//       names the region for `--shard-report`):
//       (a) RNG draws through an accessor (x->rng().NextFoo(...)).
//           Stricter than D4: even the accessors D4 allowlists are shared
//           across shards, so a parallel phase must draw only from streams
//           it owns (forked members, or an owned Rng* passed explicitly).
//       (b) writes to namespace-scope mutables, matched by this codebase's
//           `g_` naming convention: assignment (plain and compound,
//           including the forms the lexer splits, `*=` et al.), `++`/`--`,
//           and atomic mutators (.store/.exchange/.fetch_add/.fetch_sub).
//           A shard may mutate only state it owns; global effects belong in
//           the barrier push lists or per-worker accumulators merged at the
//           barrier. Reads, and `<<=`/`>>=`/`<=`-adjacent forms the lexer
//           cannot distinguish from comparisons, are out of scope.
//   D7  transitive parallel-phase hazards: an RNG-accessor draw or a `g_`
//       global write inside a function *reachable* from a parallel-phase
//       root through the call graph, even though the function itself is
//       outside every marked region. This is the transitive closure of
//       D4/D6 — the helper a marked region calls is as much parallel code
//       as the region itself. The finding carries the full call chain
//       (root -> ... -> enclosing function). Sites lexically inside a
//       region are D6's business and are not re-reported.
//   D8  serial-only APIs reachable from a parallel phase: serial-shard
//       scheduling (`Schedule` / `ScheduleAt` — use `ScheduleEngine*` or
//       `ScheduleOn`/`ScheduleAtOn` on an owned shard instead), Report
//       construction (`BuildReport`, `AddResilienceMetrics`), fault-plane
//       mutation (`FaultInjector::Install`, `SetNodeDown`, `SetAdversary`,
//       ... — injector mutations must stay barrier-published serial
//       events), `Simulation::Stop`, and stdout writes (printf/puts/
//       std::cout/fprintf(stdout,...)). These APIs assume serial context;
//       calling them from windowed code races the barrier. Unlike D7, D8
//       also fires on sites lexically inside a region. Call edges are not
//       followed *into* a serial-only API's own implementation.
//
// Call-graph blind spots (by design, like every rule here): edges are
// resolved by callee name (last `::` component) against every project
// definition of that name, so unrelated same-named functions over-connect
// (conservative) and calls through function pointers / std::function are
// invisible (unsound). Definitions in tests/, bench/, examples/ and tools/
// are only reachable from their own top-level directory so production roots
// never drag test helpers into the fixpoint.
//
// Suppression: `// detlint: allow(D2, <reason>)` on the finding's line, or
// standalone on the line above (it then applies to the next code line).
// The reason is mandatory; an allow() without one is itself reported (rule
// id "SUP"). Suppressed findings are kept in the result with `suppressed`
// set so tests and tooling can audit them.
#ifndef TOOLS_DETLINT_LINT_H_
#define TOOLS_DETLINT_LINT_H_

#include <string>
#include <vector>

namespace diablo::detlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     // "D1".."D8" or "SUP"
  std::string message;  // what was matched
  std::string hint;     // how to fix it
  bool suppressed = false;
  std::string suppress_reason;  // set when suppressed
  // For D7/D8: the call chain from the parallel-phase root to the function
  // enclosing the site, as qualified names (root first). Empty otherwise.
  std::vector<std::string> chain;
};

struct LintResult {
  std::vector<Finding> findings;  // in file then line order, suppressed included
};

// An in-memory translation unit handed to the project-wide passes.
struct SourceFile {
  std::string path;    // used for Finding::file and reachability categories
  std::string source;  // full file contents
};

// Lints an in-memory translation unit; `path_label` is used only for the
// Finding::file field. Single-file shorthand for LintProject.
LintResult LintSource(const std::string& path_label, const std::string& source);

// Reads and lints a file; returns a single SUP finding when unreadable.
LintResult LintFile(const std::string& path);

// Project-wide lint: runs the per-file rules D1-D6 on every file, then the
// two-pass call-graph analysis (D7/D8) across all of them. Findings are
// ordered by file (in input order) then line.
LintResult LintProject(const std::vector<SourceFile>& files);

// Deterministic per-region shard-safety inventory: one section per
// parallel-phase root function listing its transitive callees and the
// shared state (RNG accessors, `g_` globals, serial-only APIs) reachable
// from it. Stable under reformatting (no line numbers) so it can be
// committed as a review baseline and diffed in CI.
std::string ShardReport(const std::vector<SourceFile>& files);

// Number of findings that are not suppressed.
size_t CountUnsuppressed(const LintResult& result);

// One formatted line per finding: "file:line: [rule] message (hint: ...)",
// with " [via a -> b -> c]" appended for chain-carrying findings.
std::string FormatFinding(const Finding& finding);

// Machine-readable dump of every finding:
// {"findings":[{"file":...,"line":...,"rule":...,"message":...,
//   "hint":...,"suppressed":...,"reason":...,"chain":[...]}, ...]}
std::string FindingsAsJson(const LintResult& result);

}  // namespace diablo::detlint

#endif  // TOOLS_DETLINT_LINT_H_
