// detlint: a determinism lint for this codebase.
//
// The simulator's one non-negotiable property is bit-determinism: the same
// seed must produce byte-identical output regardless of DIABLO_JOBS, host,
// or standard library. The golden-output tests catch violations after they
// ship; detlint catches the hazard *classes* at lint time, before a run is
// ever needed. It is a token-level scanner (comments, strings and
// preprocessor lines are stripped; no libclang), which keeps it fast,
// dependency-free and honest about what it can see — each rule is a
// syntactic pattern with a documented blind spot, not a soundness proof.
//
// Rules:
//   D1  iteration over std::unordered_map / std::unordered_set declared in
//       the same file (range-for or .begin()/.cbegin()): iteration order is
//       unspecified and leaks into output, RNG draw order, event scheduling
//       and report aggregation.
//   D2  wall-clock or ambient-entropy sources: std::random_device, rand(),
//       srand(), time(), clock(), gettimeofday, localtime, and the <chrono>
//       clocks (system_clock / steady_clock / high_resolution_clock).
//       Simulated time comes from Simulation::Now(); randomness from a
//       seeded Rng. The profiling layer suppresses these inline.
//   D3  pointer-valued keys in associative containers (map/set/unordered_*
//       keyed on T*) and pointer-to-integer casts (reinterpret_cast to
//       uintptr_t/intptr_t/size_t/uint64_t): addresses vary run to run, so
//       any order or hash derived from them is nondeterministic.
//   D4  draws from a shared RNG stream reached through an accessor
//       (x->rng().NextFoo(...)): components must fork a private stream once
//       at construction (Rng::Fork / Simulation::ForkRng) so event
//       reordering never perturbs another component's draws. Receivers
//       known to return an already-forked per-component stream (the
//       ChainContext accessor spelled `ctx` / `ctx_`) are allowlisted.
//       Also flags `static Rng` / `thread_local Rng` declarations.
//   D5  floating-point accumulation (+=/-= on a float/double) inside a
//       range-for over an unordered container: FP addition is not
//       associative, so an unspecified reduction order changes the sum.
//   D6  parallel-phase hazards — inside a region bracketed by the
//       standalone markers `// detlint: parallel-phase(begin)` and
//       `// detlint: parallel-phase(end)`, which mark functions the
//       windowed scheduler may run on a worker thread (an unmatched begin
//       extends to the end of the file):
//       (a) RNG draws through an accessor (x->rng().NextFoo(...)).
//           Stricter than D4: even the accessors D4 allowlists are shared
//           across shards, so a parallel phase must draw only from streams
//           it owns (forked members, or an owned Rng* passed explicitly).
//       (b) writes to namespace-scope mutables, matched by this codebase's
//           `g_` naming convention: assignment (plain and compound,
//           including the forms the lexer splits, `*=` et al.), `++`/`--`,
//           and atomic mutators (.store/.exchange/.fetch_add/.fetch_sub).
//           A shard may mutate only state it owns; global effects belong in
//           the barrier push lists or per-worker accumulators merged at the
//           barrier. Reads, and `<<=`/`>>=`/`<=`-adjacent forms the lexer
//           cannot distinguish from comparisons, are out of scope.
//
// Suppression: `// detlint: allow(D2, <reason>)` on the finding's line, or
// standalone on the line above (it then applies to the next code line).
// The reason is mandatory; an allow() without one is itself reported (rule
// id "SUP"). Suppressed findings are kept in the result with `suppressed`
// set so tests and tooling can audit them.
#ifndef TOOLS_DETLINT_LINT_H_
#define TOOLS_DETLINT_LINT_H_

#include <string>
#include <vector>

namespace diablo::detlint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;     // "D1".."D6" or "SUP"
  std::string message;  // what was matched
  std::string hint;     // how to fix it
  bool suppressed = false;
  std::string suppress_reason;  // set when suppressed
};

struct LintResult {
  std::vector<Finding> findings;  // in line order, suppressed included
};

// Lints an in-memory translation unit; `path_label` is used only for the
// Finding::file field.
LintResult LintSource(const std::string& path_label, const std::string& source);

// Reads and lints a file; returns a single SUP finding when unreadable.
LintResult LintFile(const std::string& path);

// Number of findings that are not suppressed.
size_t CountUnsuppressed(const LintResult& result);

// One formatted line per finding: "file:line: [rule] message (hint: ...)".
std::string FormatFinding(const Finding& finding);

}  // namespace diablo::detlint

#endif  // TOOLS_DETLINT_LINT_H_
