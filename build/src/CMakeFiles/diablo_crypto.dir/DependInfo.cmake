
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/merkle.cc" "src/CMakeFiles/diablo_crypto.dir/crypto/merkle.cc.o" "gcc" "src/CMakeFiles/diablo_crypto.dir/crypto/merkle.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/diablo_crypto.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/diablo_crypto.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/signature.cc" "src/CMakeFiles/diablo_crypto.dir/crypto/signature.cc.o" "gcc" "src/CMakeFiles/diablo_crypto.dir/crypto/signature.cc.o.d"
  "/root/repo/src/crypto/sortition.cc" "src/CMakeFiles/diablo_crypto.dir/crypto/sortition.cc.o" "gcc" "src/CMakeFiles/diablo_crypto.dir/crypto/sortition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/diablo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
