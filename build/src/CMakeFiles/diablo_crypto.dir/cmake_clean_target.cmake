file(REMOVE_RECURSE
  "libdiablo_crypto.a"
)
