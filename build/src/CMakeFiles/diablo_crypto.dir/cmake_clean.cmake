file(REMOVE_RECURSE
  "CMakeFiles/diablo_crypto.dir/crypto/merkle.cc.o"
  "CMakeFiles/diablo_crypto.dir/crypto/merkle.cc.o.d"
  "CMakeFiles/diablo_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/diablo_crypto.dir/crypto/sha256.cc.o.d"
  "CMakeFiles/diablo_crypto.dir/crypto/signature.cc.o"
  "CMakeFiles/diablo_crypto.dir/crypto/signature.cc.o.d"
  "CMakeFiles/diablo_crypto.dir/crypto/sortition.cc.o"
  "CMakeFiles/diablo_crypto.dir/crypto/sortition.cc.o.d"
  "libdiablo_crypto.a"
  "libdiablo_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
