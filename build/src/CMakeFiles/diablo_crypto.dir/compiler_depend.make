# Empty compiler generated dependencies file for diablo_crypto.
# This may be replaced when dependencies are built.
