file(REMOVE_RECURSE
  "CMakeFiles/diablo_net.dir/net/deployment.cc.o"
  "CMakeFiles/diablo_net.dir/net/deployment.cc.o.d"
  "CMakeFiles/diablo_net.dir/net/network.cc.o"
  "CMakeFiles/diablo_net.dir/net/network.cc.o.d"
  "CMakeFiles/diablo_net.dir/net/region.cc.o"
  "CMakeFiles/diablo_net.dir/net/region.cc.o.d"
  "CMakeFiles/diablo_net.dir/net/topology.cc.o"
  "CMakeFiles/diablo_net.dir/net/topology.cc.o.d"
  "libdiablo_net.a"
  "libdiablo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
