# Empty compiler generated dependencies file for diablo_config.
# This may be replaced when dependencies are built.
