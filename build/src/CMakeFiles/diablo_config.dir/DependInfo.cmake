
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/json.cc" "src/CMakeFiles/diablo_config.dir/config/json.cc.o" "gcc" "src/CMakeFiles/diablo_config.dir/config/json.cc.o.d"
  "/root/repo/src/config/spec.cc" "src/CMakeFiles/diablo_config.dir/config/spec.cc.o" "gcc" "src/CMakeFiles/diablo_config.dir/config/spec.cc.o.d"
  "/root/repo/src/config/yaml.cc" "src/CMakeFiles/diablo_config.dir/config/yaml.cc.o" "gcc" "src/CMakeFiles/diablo_config.dir/config/yaml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/diablo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
