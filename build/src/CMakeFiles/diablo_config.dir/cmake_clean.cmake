file(REMOVE_RECURSE
  "CMakeFiles/diablo_config.dir/config/json.cc.o"
  "CMakeFiles/diablo_config.dir/config/json.cc.o.d"
  "CMakeFiles/diablo_config.dir/config/spec.cc.o"
  "CMakeFiles/diablo_config.dir/config/spec.cc.o.d"
  "CMakeFiles/diablo_config.dir/config/yaml.cc.o"
  "CMakeFiles/diablo_config.dir/config/yaml.cc.o.d"
  "libdiablo_config.a"
  "libdiablo_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
