file(REMOVE_RECURSE
  "libdiablo_config.a"
)
