file(REMOVE_RECURSE
  "CMakeFiles/diablo_vm.dir/vm/assembler.cc.o"
  "CMakeFiles/diablo_vm.dir/vm/assembler.cc.o.d"
  "CMakeFiles/diablo_vm.dir/vm/dialect.cc.o"
  "CMakeFiles/diablo_vm.dir/vm/dialect.cc.o.d"
  "CMakeFiles/diablo_vm.dir/vm/interpreter.cc.o"
  "CMakeFiles/diablo_vm.dir/vm/interpreter.cc.o.d"
  "CMakeFiles/diablo_vm.dir/vm/opcode.cc.o"
  "CMakeFiles/diablo_vm.dir/vm/opcode.cc.o.d"
  "CMakeFiles/diablo_vm.dir/vm/state.cc.o"
  "CMakeFiles/diablo_vm.dir/vm/state.cc.o.d"
  "libdiablo_vm.a"
  "libdiablo_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
