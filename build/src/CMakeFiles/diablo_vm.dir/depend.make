# Empty dependencies file for diablo_vm.
# This may be replaced when dependencies are built.
