
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/assembler.cc" "src/CMakeFiles/diablo_vm.dir/vm/assembler.cc.o" "gcc" "src/CMakeFiles/diablo_vm.dir/vm/assembler.cc.o.d"
  "/root/repo/src/vm/dialect.cc" "src/CMakeFiles/diablo_vm.dir/vm/dialect.cc.o" "gcc" "src/CMakeFiles/diablo_vm.dir/vm/dialect.cc.o.d"
  "/root/repo/src/vm/interpreter.cc" "src/CMakeFiles/diablo_vm.dir/vm/interpreter.cc.o" "gcc" "src/CMakeFiles/diablo_vm.dir/vm/interpreter.cc.o.d"
  "/root/repo/src/vm/opcode.cc" "src/CMakeFiles/diablo_vm.dir/vm/opcode.cc.o" "gcc" "src/CMakeFiles/diablo_vm.dir/vm/opcode.cc.o.d"
  "/root/repo/src/vm/state.cc" "src/CMakeFiles/diablo_vm.dir/vm/state.cc.o" "gcc" "src/CMakeFiles/diablo_vm.dir/vm/state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/diablo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
