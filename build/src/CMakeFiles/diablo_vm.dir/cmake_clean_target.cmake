file(REMOVE_RECURSE
  "libdiablo_vm.a"
)
