
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cc" "src/CMakeFiles/diablo_chain.dir/chain/block.cc.o" "gcc" "src/CMakeFiles/diablo_chain.dir/chain/block.cc.o.d"
  "/root/repo/src/chain/execution.cc" "src/CMakeFiles/diablo_chain.dir/chain/execution.cc.o" "gcc" "src/CMakeFiles/diablo_chain.dir/chain/execution.cc.o.d"
  "/root/repo/src/chain/mempool.cc" "src/CMakeFiles/diablo_chain.dir/chain/mempool.cc.o" "gcc" "src/CMakeFiles/diablo_chain.dir/chain/mempool.cc.o.d"
  "/root/repo/src/chain/node.cc" "src/CMakeFiles/diablo_chain.dir/chain/node.cc.o" "gcc" "src/CMakeFiles/diablo_chain.dir/chain/node.cc.o.d"
  "/root/repo/src/chain/tx.cc" "src/CMakeFiles/diablo_chain.dir/chain/tx.cc.o" "gcc" "src/CMakeFiles/diablo_chain.dir/chain/tx.cc.o.d"
  "/root/repo/src/chain/vote_round.cc" "src/CMakeFiles/diablo_chain.dir/chain/vote_round.cc.o" "gcc" "src/CMakeFiles/diablo_chain.dir/chain/vote_round.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
