file(REMOVE_RECURSE
  "libdiablo_chain.a"
)
