file(REMOVE_RECURSE
  "CMakeFiles/diablo_chain.dir/chain/block.cc.o"
  "CMakeFiles/diablo_chain.dir/chain/block.cc.o.d"
  "CMakeFiles/diablo_chain.dir/chain/execution.cc.o"
  "CMakeFiles/diablo_chain.dir/chain/execution.cc.o.d"
  "CMakeFiles/diablo_chain.dir/chain/mempool.cc.o"
  "CMakeFiles/diablo_chain.dir/chain/mempool.cc.o.d"
  "CMakeFiles/diablo_chain.dir/chain/node.cc.o"
  "CMakeFiles/diablo_chain.dir/chain/node.cc.o.d"
  "CMakeFiles/diablo_chain.dir/chain/tx.cc.o"
  "CMakeFiles/diablo_chain.dir/chain/tx.cc.o.d"
  "CMakeFiles/diablo_chain.dir/chain/vote_round.cc.o"
  "CMakeFiles/diablo_chain.dir/chain/vote_round.cc.o.d"
  "libdiablo_chain.a"
  "libdiablo_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
