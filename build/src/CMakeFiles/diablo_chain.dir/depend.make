# Empty dependencies file for diablo_chain.
# This may be replaced when dependencies are built.
