file(REMOVE_RECURSE
  "libdiablo_workload.a"
)
