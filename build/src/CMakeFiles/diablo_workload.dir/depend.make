# Empty dependencies file for diablo_workload.
# This may be replaced when dependencies are built.
