file(REMOVE_RECURSE
  "CMakeFiles/diablo_workload.dir/workload/arrival.cc.o"
  "CMakeFiles/diablo_workload.dir/workload/arrival.cc.o.d"
  "CMakeFiles/diablo_workload.dir/workload/dapps.cc.o"
  "CMakeFiles/diablo_workload.dir/workload/dapps.cc.o.d"
  "CMakeFiles/diablo_workload.dir/workload/trace.cc.o"
  "CMakeFiles/diablo_workload.dir/workload/trace.cc.o.d"
  "libdiablo_workload.a"
  "libdiablo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
