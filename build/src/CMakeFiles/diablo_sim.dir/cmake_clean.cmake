file(REMOVE_RECURSE
  "CMakeFiles/diablo_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/diablo_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/diablo_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/diablo_sim.dir/sim/simulation.cc.o.d"
  "libdiablo_sim.a"
  "libdiablo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
