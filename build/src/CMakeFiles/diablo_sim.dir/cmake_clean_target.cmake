file(REMOVE_RECURSE
  "libdiablo_sim.a"
)
