# Empty compiler generated dependencies file for diablo_contracts.
# This may be replaced when dependencies are built.
