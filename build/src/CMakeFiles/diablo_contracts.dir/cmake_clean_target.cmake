file(REMOVE_RECURSE
  "libdiablo_contracts.a"
)
