file(REMOVE_RECURSE
  "CMakeFiles/diablo_contracts.dir/contracts/contracts.cc.o"
  "CMakeFiles/diablo_contracts.dir/contracts/contracts.cc.o.d"
  "libdiablo_contracts.a"
  "libdiablo_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
