# Empty dependencies file for diablo_core.
# This may be replaced when dependencies are built.
