file(REMOVE_RECURSE
  "CMakeFiles/diablo_core.dir/core/interface.cc.o"
  "CMakeFiles/diablo_core.dir/core/interface.cc.o.d"
  "CMakeFiles/diablo_core.dir/core/primary.cc.o"
  "CMakeFiles/diablo_core.dir/core/primary.cc.o.d"
  "CMakeFiles/diablo_core.dir/core/report.cc.o"
  "CMakeFiles/diablo_core.dir/core/report.cc.o.d"
  "CMakeFiles/diablo_core.dir/core/results.cc.o"
  "CMakeFiles/diablo_core.dir/core/results.cc.o.d"
  "CMakeFiles/diablo_core.dir/core/runner.cc.o"
  "CMakeFiles/diablo_core.dir/core/runner.cc.o.d"
  "CMakeFiles/diablo_core.dir/core/secondary.cc.o"
  "CMakeFiles/diablo_core.dir/core/secondary.cc.o.d"
  "libdiablo_core.a"
  "libdiablo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
