
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/interface.cc" "src/CMakeFiles/diablo_core.dir/core/interface.cc.o" "gcc" "src/CMakeFiles/diablo_core.dir/core/interface.cc.o.d"
  "/root/repo/src/core/primary.cc" "src/CMakeFiles/diablo_core.dir/core/primary.cc.o" "gcc" "src/CMakeFiles/diablo_core.dir/core/primary.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/diablo_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/diablo_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/results.cc" "src/CMakeFiles/diablo_core.dir/core/results.cc.o" "gcc" "src/CMakeFiles/diablo_core.dir/core/results.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/diablo_core.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/diablo_core.dir/core/runner.cc.o.d"
  "/root/repo/src/core/secondary.cc" "src/CMakeFiles/diablo_core.dir/core/secondary.cc.o" "gcc" "src/CMakeFiles/diablo_core.dir/core/secondary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/diablo_chains.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_config.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
