# Empty compiler generated dependencies file for diablo_support.
# This may be replaced when dependencies are built.
