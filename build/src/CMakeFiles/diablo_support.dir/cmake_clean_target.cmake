file(REMOVE_RECURSE
  "libdiablo_support.a"
)
