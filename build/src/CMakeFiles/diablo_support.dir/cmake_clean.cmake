file(REMOVE_RECURSE
  "CMakeFiles/diablo_support.dir/support/log.cc.o"
  "CMakeFiles/diablo_support.dir/support/log.cc.o.d"
  "CMakeFiles/diablo_support.dir/support/rng.cc.o"
  "CMakeFiles/diablo_support.dir/support/rng.cc.o.d"
  "CMakeFiles/diablo_support.dir/support/stats.cc.o"
  "CMakeFiles/diablo_support.dir/support/stats.cc.o.d"
  "CMakeFiles/diablo_support.dir/support/strings.cc.o"
  "CMakeFiles/diablo_support.dir/support/strings.cc.o.d"
  "libdiablo_support.a"
  "libdiablo_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
