file(REMOVE_RECURSE
  "CMakeFiles/diablo_analysis.dir/analysis/analysis.cc.o"
  "CMakeFiles/diablo_analysis.dir/analysis/analysis.cc.o.d"
  "libdiablo_analysis.a"
  "libdiablo_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
