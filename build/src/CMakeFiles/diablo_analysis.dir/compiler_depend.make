# Empty compiler generated dependencies file for diablo_analysis.
# This may be replaced when dependencies are built.
