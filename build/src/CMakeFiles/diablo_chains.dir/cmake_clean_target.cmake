file(REMOVE_RECURSE
  "libdiablo_chains.a"
)
