# Empty dependencies file for diablo_chains.
# This may be replaced when dependencies are built.
