file(REMOVE_RECURSE
  "CMakeFiles/diablo_chains.dir/chains/chain_factory.cc.o"
  "CMakeFiles/diablo_chains.dir/chains/chain_factory.cc.o.d"
  "CMakeFiles/diablo_chains.dir/chains/params.cc.o"
  "CMakeFiles/diablo_chains.dir/chains/params.cc.o.d"
  "CMakeFiles/diablo_chains.dir/chains/registry.cc.o"
  "CMakeFiles/diablo_chains.dir/chains/registry.cc.o.d"
  "libdiablo_chains.a"
  "libdiablo_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
