
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/algorand.cc" "src/CMakeFiles/diablo_consensus.dir/consensus/algorand.cc.o" "gcc" "src/CMakeFiles/diablo_consensus.dir/consensus/algorand.cc.o.d"
  "/root/repo/src/consensus/avalanche.cc" "src/CMakeFiles/diablo_consensus.dir/consensus/avalanche.cc.o" "gcc" "src/CMakeFiles/diablo_consensus.dir/consensus/avalanche.cc.o.d"
  "/root/repo/src/consensus/clique.cc" "src/CMakeFiles/diablo_consensus.dir/consensus/clique.cc.o" "gcc" "src/CMakeFiles/diablo_consensus.dir/consensus/clique.cc.o.d"
  "/root/repo/src/consensus/dbft.cc" "src/CMakeFiles/diablo_consensus.dir/consensus/dbft.cc.o" "gcc" "src/CMakeFiles/diablo_consensus.dir/consensus/dbft.cc.o.d"
  "/root/repo/src/consensus/hotstuff.cc" "src/CMakeFiles/diablo_consensus.dir/consensus/hotstuff.cc.o" "gcc" "src/CMakeFiles/diablo_consensus.dir/consensus/hotstuff.cc.o.d"
  "/root/repo/src/consensus/ibft.cc" "src/CMakeFiles/diablo_consensus.dir/consensus/ibft.cc.o" "gcc" "src/CMakeFiles/diablo_consensus.dir/consensus/ibft.cc.o.d"
  "/root/repo/src/consensus/raft.cc" "src/CMakeFiles/diablo_consensus.dir/consensus/raft.cc.o" "gcc" "src/CMakeFiles/diablo_consensus.dir/consensus/raft.cc.o.d"
  "/root/repo/src/consensus/solana.cc" "src/CMakeFiles/diablo_consensus.dir/consensus/solana.cc.o" "gcc" "src/CMakeFiles/diablo_consensus.dir/consensus/solana.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/diablo_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/diablo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
