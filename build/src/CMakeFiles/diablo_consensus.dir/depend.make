# Empty dependencies file for diablo_consensus.
# This may be replaced when dependencies are built.
