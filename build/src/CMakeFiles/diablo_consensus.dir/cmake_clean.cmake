file(REMOVE_RECURSE
  "CMakeFiles/diablo_consensus.dir/consensus/algorand.cc.o"
  "CMakeFiles/diablo_consensus.dir/consensus/algorand.cc.o.d"
  "CMakeFiles/diablo_consensus.dir/consensus/avalanche.cc.o"
  "CMakeFiles/diablo_consensus.dir/consensus/avalanche.cc.o.d"
  "CMakeFiles/diablo_consensus.dir/consensus/clique.cc.o"
  "CMakeFiles/diablo_consensus.dir/consensus/clique.cc.o.d"
  "CMakeFiles/diablo_consensus.dir/consensus/dbft.cc.o"
  "CMakeFiles/diablo_consensus.dir/consensus/dbft.cc.o.d"
  "CMakeFiles/diablo_consensus.dir/consensus/hotstuff.cc.o"
  "CMakeFiles/diablo_consensus.dir/consensus/hotstuff.cc.o.d"
  "CMakeFiles/diablo_consensus.dir/consensus/ibft.cc.o"
  "CMakeFiles/diablo_consensus.dir/consensus/ibft.cc.o.d"
  "CMakeFiles/diablo_consensus.dir/consensus/raft.cc.o"
  "CMakeFiles/diablo_consensus.dir/consensus/raft.cc.o.d"
  "CMakeFiles/diablo_consensus.dir/consensus/solana.cc.o"
  "CMakeFiles/diablo_consensus.dir/consensus/solana.cc.o.d"
  "libdiablo_consensus.a"
  "libdiablo_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
