file(REMOVE_RECURSE
  "libdiablo_consensus.a"
)
