# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/configs_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
