file(REMOVE_RECURSE
  "CMakeFiles/diablo_cli.dir/diablo_cli.cpp.o"
  "CMakeFiles/diablo_cli.dir/diablo_cli.cpp.o.d"
  "diablo_cli"
  "diablo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diablo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
