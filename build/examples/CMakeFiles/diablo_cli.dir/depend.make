# Empty dependencies file for diablo_cli.
# This may be replaced when dependencies are built.
