file(REMOVE_RECURSE
  "CMakeFiles/custom_blockchain.dir/custom_blockchain.cpp.o"
  "CMakeFiles/custom_blockchain.dir/custom_blockchain.cpp.o.d"
  "custom_blockchain"
  "custom_blockchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_blockchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
