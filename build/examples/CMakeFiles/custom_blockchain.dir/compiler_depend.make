# Empty compiler generated dependencies file for custom_blockchain.
# This may be replaced when dependencies are built.
