# Empty dependencies file for results_analysis.
# This may be replaced when dependencies are built.
