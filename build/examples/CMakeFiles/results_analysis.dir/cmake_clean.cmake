file(REMOVE_RECURSE
  "CMakeFiles/results_analysis.dir/results_analysis.cpp.o"
  "CMakeFiles/results_analysis.dir/results_analysis.cpp.o.d"
  "results_analysis"
  "results_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/results_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
