# Empty dependencies file for exchange_dapp.
# This may be replaced when dependencies are built.
