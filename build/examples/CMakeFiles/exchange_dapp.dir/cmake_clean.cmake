file(REMOVE_RECURSE
  "CMakeFiles/exchange_dapp.dir/exchange_dapp.cpp.o"
  "CMakeFiles/exchange_dapp.dir/exchange_dapp.cpp.o.d"
  "exchange_dapp"
  "exchange_dapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_dapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
