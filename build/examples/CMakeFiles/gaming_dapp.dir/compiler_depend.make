# Empty compiler generated dependencies file for gaming_dapp.
# This may be replaced when dependencies are built.
