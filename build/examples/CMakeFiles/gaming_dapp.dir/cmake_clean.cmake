file(REMOVE_RECURSE
  "CMakeFiles/gaming_dapp.dir/gaming_dapp.cpp.o"
  "CMakeFiles/gaming_dapp.dir/gaming_dapp.cpp.o.d"
  "gaming_dapp"
  "gaming_dapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaming_dapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
