# Empty compiler generated dependencies file for workload_spec.
# This may be replaced when dependencies are built.
