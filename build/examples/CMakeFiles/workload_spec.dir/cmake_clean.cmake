file(REMOVE_RECURSE
  "CMakeFiles/workload_spec.dir/workload_spec.cpp.o"
  "CMakeFiles/workload_spec.dir/workload_spec.cpp.o.d"
  "workload_spec"
  "workload_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
