# Empty dependencies file for table2_workload_shapes.
# This may be replaced when dependencies are built.
