file(REMOVE_RECURSE
  "CMakeFiles/table2_workload_shapes.dir/table2_workload_shapes.cc.o"
  "CMakeFiles/table2_workload_shapes.dir/table2_workload_shapes.cc.o.d"
  "table2_workload_shapes"
  "table2_workload_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_workload_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
