file(REMOVE_RECURSE
  "CMakeFiles/table3_network_matrix.dir/table3_network_matrix.cc.o"
  "CMakeFiles/table3_network_matrix.dir/table3_network_matrix.cc.o.d"
  "table3_network_matrix"
  "table3_network_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_network_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
