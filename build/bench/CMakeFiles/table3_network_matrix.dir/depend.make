# Empty dependencies file for table3_network_matrix.
# This may be replaced when dependencies are built.
