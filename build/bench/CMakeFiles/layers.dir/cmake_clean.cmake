file(REMOVE_RECURSE
  "CMakeFiles/layers.dir/layers.cc.o"
  "CMakeFiles/layers.dir/layers.cc.o.d"
  "layers"
  "layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
