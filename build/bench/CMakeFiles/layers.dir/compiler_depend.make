# Empty compiler generated dependencies file for layers.
# This may be replaced when dependencies are built.
