# Empty compiler generated dependencies file for fig5_universality.
# This may be replaced when dependencies are built.
