file(REMOVE_RECURSE
  "CMakeFiles/fig5_universality.dir/fig5_universality.cc.o"
  "CMakeFiles/fig5_universality.dir/fig5_universality.cc.o.d"
  "fig5_universality"
  "fig5_universality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_universality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
