# Empty compiler generated dependencies file for table1_claimed_vs_observed.
# This may be replaced when dependencies are built.
