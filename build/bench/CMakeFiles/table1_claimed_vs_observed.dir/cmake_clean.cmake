file(REMOVE_RECURSE
  "CMakeFiles/table1_claimed_vs_observed.dir/table1_claimed_vs_observed.cc.o"
  "CMakeFiles/table1_claimed_vs_observed.dir/table1_claimed_vs_observed.cc.o.d"
  "table1_claimed_vs_observed"
  "table1_claimed_vs_observed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_claimed_vs_observed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
