# Empty compiler generated dependencies file for fig2_dapps_consortium.
# This may be replaced when dependencies are built.
