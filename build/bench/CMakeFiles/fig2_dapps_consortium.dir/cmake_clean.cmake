file(REMOVE_RECURSE
  "CMakeFiles/fig2_dapps_consortium.dir/fig2_dapps_consortium.cc.o"
  "CMakeFiles/fig2_dapps_consortium.dir/fig2_dapps_consortium.cc.o.d"
  "fig2_dapps_consortium"
  "fig2_dapps_consortium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dapps_consortium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
