file(REMOVE_RECURSE
  "CMakeFiles/fig6_availability_cdf.dir/fig6_availability_cdf.cc.o"
  "CMakeFiles/fig6_availability_cdf.dir/fig6_availability_cdf.cc.o.d"
  "fig6_availability_cdf"
  "fig6_availability_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_availability_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
