# Empty dependencies file for fig6_availability_cdf.
# This may be replaced when dependencies are built.
