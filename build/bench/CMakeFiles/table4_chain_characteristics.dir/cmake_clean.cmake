file(REMOVE_RECURSE
  "CMakeFiles/table4_chain_characteristics.dir/table4_chain_characteristics.cc.o"
  "CMakeFiles/table4_chain_characteristics.dir/table4_chain_characteristics.cc.o.d"
  "table4_chain_characteristics"
  "table4_chain_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_chain_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
