# Empty dependencies file for table4_chain_characteristics.
# This may be replaced when dependencies are built.
