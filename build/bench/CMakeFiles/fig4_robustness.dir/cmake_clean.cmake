file(REMOVE_RECURSE
  "CMakeFiles/fig4_robustness.dir/fig4_robustness.cc.o"
  "CMakeFiles/fig4_robustness.dir/fig4_robustness.cc.o.d"
  "fig4_robustness"
  "fig4_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
