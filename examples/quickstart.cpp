// Quickstart: the artifact's first experiment (§A.3) — a light native
// transfer workload ("workload-native-10": 10 TPS) against one blockchain,
// printing the primary's aggregate statistics and writing the results JSON
// and CSV files.
//
//   ./quickstart [chain] [deployment] [tps] [seconds]
//   ./quickstart algorand testnet 10 30
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/interface.h"
#include "src/core/results.h"
#include "src/core/runner.h"
#include "src/support/strings.h"

int main(int argc, char** argv) {
  const std::string chain = argc > 1 ? argv[1] : "algorand";
  const std::string deployment = argc > 2 ? argv[2] : "testnet";
  const double tps = argc > 3 ? std::atof(argv[3]) : 10.0;
  const int seconds = argc > 4 ? std::atoi(argv[4]) : 30;

  std::printf("diablo quickstart: %.0f native TPS for %d s on %s (%s)\n\n", tps,
              seconds, chain.c_str(), deployment.c_str());

  // Primary + Secondaries + simulated chain, one call.
  diablo::BenchmarkSetup setup;
  setup.chain = chain;
  setup.deployment = deployment;
  diablo::Primary primary(setup);
  const diablo::RunResult result =
      primary.RunNative(diablo::ConstantTrace(tps, seconds));

  std::printf("%s\n", result.report.ToText().c_str());
  std::printf("blocks produced: %llu (%llu empty), view changes: %llu\n",
              static_cast<unsigned long long>(result.chain_stats.blocks_produced),
              static_cast<unsigned long long>(result.chain_stats.empty_blocks),
              static_cast<unsigned long long>(result.chain_stats.view_changes));

  // The aggregate JSON the primary would emit with --output.
  std::printf("\nsummary json:\n%s\n", diablo::ReportToJson(result.report).c_str());
  return 0;
}
