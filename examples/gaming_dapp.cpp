// Gaming DApp example: the DecentralizedDota contract (§3) — 10 players on
// a 250x250 map, updated at ~13,000 TPS for 276 s, the most demanding
// constant workload of the suite. Runs a scaled-down trace by default and
// additionally demonstrates the contract itself through the VM.
//
//   ./gaming_dapp [chain] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/contracts/contracts.h"
#include "src/core/runner.h"
#include "src/vm/interpreter.h"

namespace {

// Drive the contract directly: deploy, run a few updates, read positions.
void ShowContractBehaviour() {
  using namespace diablo;
  const ContractDef& def = *FindContract("dota");
  const Program program = CompileContract(def);
  ContractState state;

  ExecRequest init;
  init.program = &program;
  init.function = "init";
  init.state = &state;
  Execute(init);

  ExecRequest update;
  update.program = &program;
  update.function = "update";
  const std::vector<int64_t> args = {3, 1};
  update.args = args;
  update.state = &state;
  for (int step = 0; step < 5; ++step) {
    const ExecResult result = Execute(update);
    std::printf("update(3, 1) step %d: %lld gas, %lld ops, %s\n", step + 1,
                static_cast<long long>(result.gas_used),
                static_cast<long long>(result.ops_executed),
                std::string(VmStatusName(result.status)).c_str());
  }
  std::printf("player positions after 5 updates:");
  for (uint64_t i = 0; i < 10; ++i) {
    std::printf(" (%lld,%lld)", static_cast<long long>(state.Load(100 + 4 * i)),
                static_cast<long long>(state.Load(102 + 4 * i)));
  }
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string chain = argc > 1 ? argv[1] : "solana";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;

  std::printf("--- DecentralizedDota on the VM ---\n");
  ShowContractBehaviour();

  std::printf("--- Dota 2 trace (scale %.2f) on %s, consortium ---\n", scale,
              chain.c_str());
  const diablo::RunResult result =
      diablo::RunDappBenchmark(chain, "consortium", "dota", /*seed=*/1, scale);
  std::printf("%s", result.report.ToText().c_str());
  return 0;
}
