// Command-line front end, in the spirit of the paper's
//   diablo primary -vvv --output=results.json 10 setup.yaml workload.yaml
//
// Usage:
//   diablo_cli --chain=quorum --deployment=testnet --workload=native
//              --tps=100 --duration=60 [--seed=1] [--scale=1.0]
//              [--output=results.json] [--csv=results.csv] [-v|-vv|-vvv]
//   diablo_cli --chain=solana --deployment=consortium --workload=fifa
//   diablo_cli --spec=workload.yaml --chain=quorum
//
// Workloads: "native" (constant --tps for --duration), one of the five
// DApps (exchange, dota, fifa, uber, youtube), a NASDAQ stock burst
// (google, amazon, facebook, microsoft, apple), or --spec=FILE for a YAML
// workload specification (§4).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/config/spec.h"
#include "src/core/results.h"
#include "src/core/runner.h"
#include "src/support/log.h"
#include "src/support/strings.h"

namespace {

struct Options {
  std::string chain = "quorum";
  std::string deployment = "testnet";
  std::string workload = "native";
  std::string spec_file;
  std::string output_json;
  std::string output_csv;
  double tps = 100;
  int duration = 60;
  uint64_t seed = 1;
  double scale = 1.0;
  int verbosity = 0;
  bool help = false;
};

bool ParseFlag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (!diablo::StartsWith(arg, prefix)) {
    return false;
  }
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    int64_t integer = 0;
    double real = 0;
    if (arg == "--help" || arg == "-h") {
      options->help = true;
    } else if (arg == "-v" || arg == "-vv" || arg == "-vvv") {
      options->verbosity = static_cast<int>(arg.size()) - 1;
    } else if (ParseFlag(arg, "chain", &value)) {
      options->chain = value;
    } else if (ParseFlag(arg, "deployment", &value)) {
      options->deployment = value;
    } else if (ParseFlag(arg, "workload", &value)) {
      options->workload = value;
    } else if (ParseFlag(arg, "spec", &value)) {
      options->spec_file = value;
    } else if (ParseFlag(arg, "output", &value)) {
      options->output_json = value;
    } else if (ParseFlag(arg, "csv", &value)) {
      options->output_csv = value;
    } else if (ParseFlag(arg, "tps", &value) && diablo::ParseDouble(value, &real)) {
      options->tps = real;
    } else if (ParseFlag(arg, "duration", &value) && diablo::ParseInt64(value, &integer)) {
      options->duration = static_cast<int>(integer);
    } else if (ParseFlag(arg, "seed", &value) && diablo::ParseInt64(value, &integer)) {
      options->seed = static_cast<uint64_t>(integer);
    } else if (ParseFlag(arg, "scale", &value) && diablo::ParseDouble(value, &real)) {
      options->scale = real;
    } else {
      std::fprintf(stderr, "unknown or malformed argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage() {
  std::printf(
      "diablo_cli — run a diablo benchmark against a simulated blockchain\n"
      "  --chain=NAME        algorand|avalanche|diem|quorum|ethereum|solana\n"
      "  --deployment=NAME   datacenter|testnet|devnet|community|consortium\n"
      "  --workload=NAME     native|exchange|dota|fifa|uber|youtube|<stock>\n"
      "  --tps=N             rate for --workload=native (default 100)\n"
      "  --duration=SECONDS  duration for --workload=native (default 60)\n"
      "  --spec=FILE         YAML workload specification instead of --workload\n"
      "  --seed=N --scale=F  determinism and downscaling controls\n"
      "  --output=FILE.json  write summary + per-transaction records\n"
      "  --csv=FILE.csv      write per-transaction CSV\n"
      "  -v|-vv|-vvv         verbosity\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 1;
  }
  if (options.help) {
    PrintUsage();
    return 0;
  }
  if (options.verbosity >= 1) {
    diablo::SetLogLevel(options.verbosity >= 3   ? diablo::LogLevel::kDebug
                        : options.verbosity == 2 ? diablo::LogLevel::kInfo
                                                 : diablo::LogLevel::kWarn);
  }

  diablo::RunResult result;
  if (!options.spec_file.empty()) {
    std::ifstream file(options.spec_file);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", options.spec_file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const diablo::SpecResult spec = diablo::ParseWorkloadSpec(buffer.str());
    if (!spec.ok) {
      std::fprintf(stderr, "spec error: %s\n", spec.error.c_str());
      return 1;
    }
    diablo::BenchmarkSetup setup;
    setup.chain = options.chain;
    setup.deployment = options.deployment;
    setup.seed = options.seed;
    setup.scale = options.scale;
    setup.results_json_path = options.output_json;
    setup.results_csv_path = options.output_csv;
    diablo::Primary primary(setup);
    result = primary.RunSpec(spec.spec);
  } else {
    diablo::BenchmarkSetup setup;
    setup.chain = options.chain;
    setup.deployment = options.deployment;
    setup.seed = options.seed;
    setup.scale = options.scale;
    setup.results_json_path = options.output_json;
    setup.results_csv_path = options.output_csv;
    diablo::Primary primary(setup);
    if (options.workload == "native") {
      result = primary.RunNative(diablo::ConstantTrace(options.tps, options.duration));
    } else {
      diablo::DappWorkload workload;
      const std::string key = diablo::ToLower(options.workload);
      bool stock = false;
      for (const char* name : {"google", "amazon", "facebook", "microsoft", "apple"}) {
        if (key == name) {
          workload = diablo::GetDappWorkload("exchange");
          workload.name = key;
          workload.trace = diablo::NasdaqStockTrace(key);
          stock = true;
        }
      }
      if (!stock) {
        workload = diablo::GetDappWorkload(options.workload);
      }
      result = primary.RunDapp(workload);
    }
  }

  if (result.unsupported) {
    std::printf("workload not supported on %s: %s\n", options.chain.c_str(),
                result.failure_reason.c_str());
    return 2;
  }
  std::printf("%s", result.report.ToText().c_str());
  if (!result.failure_reason.empty()) {
    std::printf("client errors: %s\n", result.failure_reason.c_str());
  }

  // The primary wrote the full documents (summary + per-transaction
  // records) itself; see src/analysis/ for loading them back.
  if (!options.output_json.empty()) {
    std::printf("wrote %s\n", options.output_json.c_str());
  }
  if (!options.output_csv.empty()) {
    std::printf("wrote %s\n", options.output_csv.c_str());
  }
  return 0;
}
