// Post-mortem analysis example, mirroring the artifact's results pipeline
// (§A.3: unpack results, convert to CSV, inspect latencies):
//
//   1. runs two benchmarks writing full results documents,
//   2. loads them back through the analysis library,
//   3. recomputes the latency distribution from the raw records and prints
//      a side-by-side comparison.
//
//   ./results_analysis [chain_a] [chain_b]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/analysis/analysis.h"
#include "src/core/runner.h"

namespace {

diablo::LoadedResults RunAndReload(const std::string& chain, const std::string& path) {
  diablo::BenchmarkSetup setup;
  setup.chain = chain;
  setup.deployment = "testnet";
  setup.results_json_path = path;
  diablo::Primary primary(setup);
  primary.RunNative(diablo::ConstantTrace(100, 30));

  std::ifstream file(path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const diablo::LoadResult loaded = diablo::LoadResultsJson(buffer.str());
  if (!loaded.ok) {
    std::fprintf(stderr, "failed to reload %s: %s\n", path.c_str(),
                 loaded.error.c_str());
    std::exit(1);
  }
  return loaded.results;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string chain_a = argc > 1 ? argv[1] : "quorum";
  const std::string chain_b = argc > 2 ? argv[2] : "solana";

  std::printf("running 100 TPS x 30 s on %s and %s, writing results JSON...\n\n",
              chain_a.c_str(), chain_b.c_str());
  const diablo::LoadedResults a = RunAndReload(chain_a, "/tmp/diablo_a.json");
  const diablo::LoadedResults b = RunAndReload(chain_b, "/tmp/diablo_b.json");

  std::printf("%s\n", diablo::CompareRuns({a, b}).c_str());

  for (const diablo::LoadedResults* run : {&a, &b}) {
    const diablo::SampleSet latencies = run->CommittedLatencies();
    std::printf("%s latency from raw records: p50 %.2f s, p90 %.2f s, p99 %.2f s\n",
                run->chain.c_str(), latencies.Percentile(0.5),
                latencies.Percentile(0.9), latencies.Percentile(0.99));
  }

  // Per-second commit counts, like the artifact's postmortem time series.
  std::printf("\n%s commits per second: ", a.chain.c_str());
  const diablo::TimeSeries series = a.CommittedPerSecond();
  for (size_t s = 0; s < std::min<size_t>(series.size(), 15); ++s) {
    std::printf("%llu ", static_cast<unsigned long long>(series.CountAt(s)));
  }
  std::printf("...\n");
  return 0;
}
