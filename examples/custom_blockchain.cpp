// Extensibility example (§4): adding a new blockchain to diablo.
//
// Two levels are shown:
//  1. A new parameter sheet ("fastnet") run through the existing engines —
//     the common case for evaluating protocol variants.
//  2. A from-scratch BlockchainConnector implementing the abstraction's four
//     porting functions (create_client / create_resource / encode / trigger)
//     over a deliberately silly centralized "instantchain", to show the
//     harness only needs those four functions.
#include <cstdio>
#include <memory>

#include "src/core/interface.h"
#include "src/core/runner.h"

namespace diablo {
namespace {

// ---- level 1: a custom parameter sheet ------------------------------------

ChainParams FastnetParams() {
  // An IBFT chain with a 250 ms block cadence and a bounded mempool —
  // "what if Quorum dropped requests instead of collapsing?"
  ChainParams params = GetChainParams("quorum");
  params.name = "fastnet";
  params.block_interval = Milliseconds(250);
  params.mempool.global_cap = 50000;
  params.proposal_overhead_quadratic = 0;
  return params;
}

void RunFastnet() {
  BenchmarkSetup setup;
  setup.chain = "fastnet";
  setup.params = FastnetParams();
  setup.deployment = "testnet";
  Primary primary(setup);
  const RunResult result = primary.RunNative(ConstantTrace(2000, 30));
  std::printf("--- fastnet (custom ChainParams, IBFT engine) ---\n%s\n",
              result.report.ToText().c_str());
}

// ---- level 2: a from-scratch connector -------------------------------------

// A one-node "chain" that commits everything after a fixed 50 ms delay. The
// point is the interface: Primary/Secondary logic never sees the difference.
class InstantChainConnector : public BlockchainConnector {
 public:
  InstantChainConnector(Simulation* sim, ChainInstance* backing)
      : sim_(sim), backing_(backing) {}

  std::unique_ptr<BlockchainClient> CreateClient(Region location,
                                                 std::vector<int> endpoints) override {
    (void)location;
    (void)endpoints;
    class Client : public BlockchainClient {
     public:
      Client(Simulation* sim, ChainContext* ctx) : sim_(sim), ctx_(ctx) {}
      void Trigger(TxId encoded, SimTime submit_time) override {
        Transaction& tx = ctx_->txs().at(encoded);
        tx.submit_time = submit_time;
        tx.phase = TxPhase::kSubmitted;
        Simulation* sim = sim_;
        ChainContext* ctx = ctx_;
        sim->ScheduleAt(submit_time + Milliseconds(50), [ctx, encoded] {
          Transaction& done = ctx->txs().at(encoded);
          done.phase = TxPhase::kCommitted;
          done.commit_time = ctx->sim()->Now();
        });
      }

     private:
      Simulation* sim_;
      ChainContext* ctx_;
    };
    return std::make_unique<Client>(sim_, &backing_->context());
  }

  bool CreateResource(const ResourceSpec& spec, Resource* out) override {
    *out = Resource{};
    out->account_count = spec.account_count;
    return spec.kind == ResourceSpec::Kind::kAccounts;  // no contracts here
  }

  TxId Encode(const InteractionSpec& spec, const Resource& accounts,
              SimTime scheduled_time) override {
    (void)spec;
    Transaction tx;
    tx.account = accounts.first_account;
    tx.gas = 21000;
    tx.size_bytes = kNativeTransferBytes;
    tx.submit_time = scheduled_time;
    return backing_->context().txs().Add(tx);
  }

 private:
  Simulation* sim_;
  ChainInstance* backing_;  // reused only for its TxStore
};

void RunInstantChain() {
  Simulation sim(7);
  Network net(&sim);
  // Borrow a context purely as transaction storage for the demo connector.
  const auto backing = BuildChain("quorum", GetDeployment("testnet"), &sim, &net);
  InstantChainConnector connector(&sim, backing.get());

  ResourceSpec accounts_spec;
  accounts_spec.kind = ResourceSpec::Kind::kAccounts;
  accounts_spec.account_count = 10;
  Resource accounts;
  connector.CreateResource(accounts_spec, &accounts);
  const auto client = connector.CreateClient(Region::kOhio, {0});

  for (int i = 0; i < 100; ++i) {
    const TxId tx = connector.Encode(InteractionSpec{}, accounts, Milliseconds(10 * i));
    client->Trigger(tx, Milliseconds(10 * i));
  }
  sim.Run();

  const auto counts = backing->context().txs().PhaseCounts();
  std::printf("--- instantchain (custom 4-function connector) ---\n");
  std::printf("100 transfers triggered, %zu committed, each after ~50 ms\n\n",
              counts[static_cast<size_t>(TxPhase::kCommitted)]);
}

}  // namespace
}  // namespace diablo

int main() {
  diablo::RunInstantChain();
  diablo::RunFastnet();
  return 0;
}
