// Exchange DApp example: replay the NASDAQ GAFAM opening-bell workload (§3)
// against two blockchains and compare how they absorb the 19,800 TPS burst.
//
//   ./exchange_dapp [chain_a] [chain_b] [scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/runner.h"
#include "src/workload/dapps.h"

namespace {

void RunOne(const std::string& chain, double scale) {
  const diablo::RunResult result =
      diablo::RunDappBenchmark(chain, "consortium", "exchange", /*seed=*/1, scale);
  const diablo::Report& report = result.report;
  std::printf("%-10s committed %5.1f%%  throughput %7.1f TPS  latency %6.2f s (p95 %.2f s)\n",
              chain.c_str(), 100.0 * report.commit_ratio, report.avg_throughput,
              report.avg_latency, report.p95_latency);
  // How the burst drains: committed transactions per 10-second window.
  std::printf("           commits/10s:");
  for (size_t s = 0; s + 10 <= report.committed_per_second.size(); s += 10) {
    double window = 0;
    for (size_t i = s; i < s + 10; ++i) {
      window += static_cast<double>(report.committed_per_second.CountAt(i));
    }
    std::printf(" %6.0f", window);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string chain_a = argc > 1 ? argv[1] : "quorum";
  const std::string chain_b = argc > 2 ? argv[2] : "avalanche";
  const double scale = argc > 3 ? std::atof(argv[3]) : 1.0;

  const diablo::Trace trace = diablo::GetDappWorkload("exchange").trace.Scaled(scale);
  std::printf("ExchangeContractGafam under the NASDAQ GAFAM trace:\n");
  std::printf("  %zu s, avg %.0f TPS, opening burst %.0f TPS\n\n",
              trace.duration_seconds(), trace.AverageTps(), trace.PeakTps());

  RunOne(chain_a, scale);
  RunOne(chain_b, scale);
  return 0;
}
