// Workload-specification example: parse the gaming DApp configuration from
// §4 of the paper (anchors, !tags, load ramps) — from a file when given,
// otherwise the embedded copy — and run it through the Primary.
//
//   ./workload_spec [spec.yaml] [chain] [scale]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/config/spec.h"
#include "src/core/runner.h"

namespace {

constexpr char kPaperSpec[] = R"yaml(let:
  - &loc { sample: !location [ "us-east-2" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 2000 } }
  - &dapp { sample: !contract { name: "dota" } }
workloads:
  - number: 3
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "update(1, 1)"
          load:
            0: 4432
            50: 4438
            120: 0
)yaml";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kPaperSpec;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  const std::string chain = argc > 2 ? argv[2] : "quorum";
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.05;

  const diablo::SpecResult parsed = diablo::ParseWorkloadSpec(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "spec error: %s\n", parsed.error.c_str());
    return 1;
  }
  const diablo::WorkloadSpec& spec = parsed.spec;
  const diablo::Trace trace = spec.ToTrace();
  std::printf("parsed workload spec:\n");
  std::printf("  groups: %zu, accounts: %d, contract: %s\n", spec.groups.size(),
              spec.TotalAccounts(), spec.PrimaryContract().c_str());
  std::printf("  aggregate load: %zu s, avg %.0f TPS, peak %.0f TPS\n\n",
              trace.duration_seconds(), trace.AverageTps(), trace.PeakTps());

  diablo::BenchmarkSetup setup;
  setup.chain = chain;
  setup.deployment = "testnet";
  setup.accounts = spec.TotalAccounts();
  setup.scale = scale;
  diablo::Primary primary(setup);
  const diablo::RunResult result = primary.RunSpec(spec);
  std::printf("run at scale %.2f on %s:\n%s", scale, chain.c_str(),
              result.report.ToText().c_str());
  return 0;
}
