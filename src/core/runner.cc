#include "src/core/runner.h"

#include <algorithm>
#include <cstdlib>

#include "src/support/strings.h"

namespace diablo {

RunResult RunNativeBenchmark(const std::string& chain, const std::string& deployment,
                             double tps, int seconds, uint64_t seed, double scale) {
  BenchmarkSetup setup;
  setup.chain = chain;
  setup.deployment = deployment;
  setup.seed = seed;
  setup.scale = scale;
  Primary primary(setup);
  return primary.RunNative(ConstantTrace(tps, seconds));
}

RunResult RunDappBenchmark(const std::string& chain, const std::string& deployment,
                           const std::string& dapp, uint64_t seed, double scale) {
  BenchmarkSetup setup;
  setup.chain = chain;
  setup.deployment = deployment;
  setup.seed = seed;
  setup.scale = scale;
  Primary primary(setup);
  const std::string key = ToLower(dapp);
  for (const char* stock : {"google", "amazon", "facebook", "microsoft", "apple"}) {
    if (key == stock) {
      // Per-stock NASDAQ bursts invoke the exchange contract's matching
      // buy function (§6.5).
      DappWorkload workload = GetDappWorkload("exchange");
      workload.name = key;
      workload.trace = NasdaqStockTrace(key);
      return primary.RunDapp(workload);
    }
  }
  return primary.RunDapp(GetDappWorkload(dapp));
}

RunResult RunFaultBenchmark(const std::string& chain, const std::string& deployment,
                            double tps, int seconds, const FaultSchedule& faults,
                            const RetryPolicy& retry, uint64_t seed, double scale) {
  BenchmarkSetup setup;
  setup.chain = chain;
  setup.deployment = deployment;
  setup.seed = seed;
  setup.scale = scale;
  setup.faults = faults;
  setup.retry = retry;
  Primary primary(setup);
  return primary.RunNative(ConstantTrace(tps, seconds));
}

double ScaleFromEnv() {
  const char* raw = std::getenv("DIABLO_SCALE");
  if (raw == nullptr) {
    return 1.0;
  }
  double value = 1.0;
  if (!ParseDouble(raw, &value) || value <= 0.0) {
    return 1.0;
  }
  return std::min(value, 1.0);
}

}  // namespace diablo
