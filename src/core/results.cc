#include "src/core/results.h"

#include <fstream>

#include "src/support/strings.h"
#include "src/vm/interpreter.h"

namespace diablo {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ReportToJson(const Report& report) {
  std::string out = "{";
  out += StrFormat("\"chain\": \"%s\", ", JsonEscape(report.chain).c_str());
  out += StrFormat("\"deployment\": \"%s\", ", JsonEscape(report.deployment).c_str());
  out += StrFormat("\"workload\": \"%s\", ", JsonEscape(report.workload).c_str());
  out += StrFormat("\"duration_s\": %.1f, ", report.workload_duration);
  out += StrFormat("\"submitted\": %zu, ", report.submitted);
  out += StrFormat("\"committed\": %zu, ", report.committed);
  out += StrFormat("\"dropped\": %zu, ", report.dropped);
  out += StrFormat("\"aborted\": %zu, ", report.aborted);
  out += StrFormat("\"pending\": %zu, ", report.pending);
  out += StrFormat("\"avg_load_tps\": %.2f, ", report.avg_load);
  out += StrFormat("\"avg_throughput_tps\": %.2f, ", report.avg_throughput);
  out += StrFormat("\"commit_ratio\": %.4f, ", report.commit_ratio);
  out += StrFormat("\"avg_latency_s\": %.3f, ", report.avg_latency);
  out += StrFormat("\"median_latency_s\": %.3f, ", report.median_latency);
  out += StrFormat("\"p95_latency_s\": %.3f, ", report.p95_latency);
  out += StrFormat("\"max_latency_s\": %.3f", report.max_latency);
  if (report.resilience) {
    out += StrFormat(", \"view_changes\": %llu",
                     static_cast<unsigned long long>(report.view_changes));
    out += StrFormat(", \"blocks_abandoned\": %llu",
                     static_cast<unsigned long long>(report.blocks_abandoned));
    out += StrFormat(", \"client_retries\": %llu",
                     static_cast<unsigned long long>(report.client_retries));
    out += StrFormat(", \"client_aborts\": %llu",
                     static_cast<unsigned long long>(report.client_aborts));
    out += StrFormat(", \"min_interval_commit_ratio\": %.4f",
                     report.min_interval_commit_ratio);
    out += ", \"time_to_recovery_s\": [";
    for (size_t i = 0; i < report.recoveries.size(); ++i) {
      out += StrFormat("%s%.3f", i == 0 ? "" : ", ", report.recoveries[i]);
    }
    out += "]";
  }
  if (report.byzantine) {
    out += StrFormat(", \"equivocations_seen\": %llu",
                     static_cast<unsigned long long>(report.equivocations_seen));
    out += StrFormat(", \"double_votes_seen\": %llu",
                     static_cast<unsigned long long>(report.double_votes_seen));
    out += StrFormat(", \"votes_withheld\": %llu",
                     static_cast<unsigned long long>(report.votes_withheld));
    out += StrFormat(", \"txs_censored\": %llu",
                     static_cast<unsigned long long>(report.txs_censored));
    out += StrFormat(", \"lazy_proposals\": %llu",
                     static_cast<unsigned long long>(report.lazy_proposals));
  }
  out += "}";
  return out;
}

void WriteResultsJson(std::ostream& out, const Report& report, const TxStore& txs,
                      size_t max_txs) {
  out << "{\n  \"summary\": " << ReportToJson(report) << ",\n";
  out << "  \"transactions\": [\n";
  size_t written = 0;
  for (TxId id = 0; id < txs.size() && written < max_txs; ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase == TxPhase::kCreated) {
      continue;
    }
    if (written > 0) {
      out << ",\n";
    }
    out << StrFormat(
        "    {\"submit\": %.6f, \"commit\": %.6f, \"latency\": %.6f, \"status\": "
        "\"%s\"}",
        ToSeconds(tx.submit_time),
        tx.commit_time < 0 ? -1.0 : ToSeconds(tx.commit_time), tx.LatencySeconds(),
        std::string(TxPhaseName(tx.phase)).c_str());
    ++written;
  }
  out << "\n  ]\n}\n";
}

void WriteResultsCsv(std::ostream& out, const TxStore& txs) {
  out << "submit_time,latency,status\n";
  for (TxId id = 0; id < txs.size(); ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase == TxPhase::kCreated) {
      continue;
    }
    out << StrFormat("%.6f,%.6f,%s\n", ToSeconds(tx.submit_time), tx.LatencySeconds(),
                     std::string(TxPhaseName(tx.phase)).c_str());
  }
}

bool WriteResultsJsonFile(const std::string& path, const Report& report,
                          const TxStore& txs, size_t max_txs) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  WriteResultsJson(file, report, txs, max_txs);
  return static_cast<bool>(file);
}

bool WriteResultsCsvFile(const std::string& path, const TxStore& txs) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  WriteResultsCsv(file, txs);
  return static_cast<bool>(file);
}

}  // namespace diablo
