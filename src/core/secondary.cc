#include "src/core/secondary.h"

#include <algorithm>

namespace diablo {

Secondary::Secondary(int index, Region location, Simulation* sim,
                     std::unique_ptr<BlockchainClient> client)
    : index_(index), location_(location), sim_(sim), client_(std::move(client)) {}

void Secondary::Assign(SimTime submit_time, TxId tx) {
  schedule_.push_back(Planned{submit_time, tx});
}

void Secondary::Start() {
  std::sort(schedule_.begin(), schedule_.end(),
            [](const Planned& a, const Planned& b) { return a.time < b.time; });
  // One event per second of schedule; the batch submits every transaction
  // of that second with its precise timestamp.
  size_t first = 0;
  while (first < schedule_.size()) {
    const SimTime second_start =
        (schedule_[first].time / kSecond) * kSecond;
    size_t last = first;
    while (last < schedule_.size() && schedule_[last].time < second_start + kSecond) {
      ++last;
    }
    if (sharded_) {
      // Shard 0 belongs to the consensus engine; secondaries take 1..C so a
      // sharded engine and the client drivers spread across workers without
      // colliding on a shard.
      sim_->ScheduleAtOn(static_cast<uint32_t>(index_) + 1, second_start,
                         [this, first, last] { SubmitBatch(first, last); });
    } else {
      sim_->ScheduleAt(second_start,
                       [this, first, last] { SubmitBatch(first, last); });
    }
    first = last;
  }
}

// Runs on a worker thread when sharding is enabled: touches only this
// secondary's state, its client, and the per-transaction slots the schedule
// assigned to it. Now() reads the event's own timestamp in either mode.
// detlint: parallel-phase(begin, client-submit)
void Secondary::SubmitBatch(size_t first, size_t last) {
  const SimTime now = sim_->Now();
  for (size_t i = first; i < last; ++i) {
    const Planned& planned = schedule_[i];
    if (now > planned.time + kSecond) {
      ++behind_schedule_;
    }
    client_->Trigger(planned.tx, planned.time);
    ++submitted_;
  }
}
// detlint: parallel-phase(end)

}  // namespace diablo
