#include "src/core/interface.h"

#include <utility>

#include "src/contracts/contracts.h"

namespace diablo {
namespace {

// Client bound to a secondary location; submissions travel over the
// simulated network to the collocated endpoint.
class SimClient : public BlockchainClient {
 public:
  SimClient(ChainInstance* chain, HostId client_host, std::vector<int> endpoints)
      : chain_(chain), client_host_(client_host), endpoints_(std::move(endpoints)) {}

  void Trigger(TxId encoded, SimTime submit_time) override {
    ChainContext& ctx = chain_->context();
    Transaction& tx = ctx.txs().at(encoded);
    tx.submit_time = submit_time;

    // Pre-flight: chains whose VM rejects the call (hard budget, state
    // limits) error out at the client, like Solana's "Computational budget
    // exceeded" logs in the artifact appendix.
    if (tx.exec_status != VmStatus::kOk) {
      tx.phase = TxPhase::kAborted;
      tx.commit_time = submit_time + Milliseconds(50);
      if (ctx.on_tx_complete) {
        ctx.on_tx_complete(encoded);
      }
      return;
    }

    const int endpoint = endpoints_[next_endpoint_++ % endpoints_.size()];
    const HostId endpoint_host = ctx.hosts()[static_cast<size_t>(endpoint)];
    SimDuration delay =
        ctx.net()->DelaySample(client_host_, endpoint_host, tx.size_bytes + 128);
    if (delay == kUnreachable) {
      delay = Milliseconds(500);
    }

    // Read-only calls: the endpoint executes against its local state and
    // replies — request travels there, execution runs, response returns.
    if (tx.read_only) {
      const SimDuration exec = ctx.ExecAndVerifyTime(tx.gas, 1);
      SimDuration back =
          ctx.net()->DelaySample(endpoint_host, client_host_, 256);
      if (back == kUnreachable) {
        back = Milliseconds(500);
      }
      tx.phase = TxPhase::kCommitted;
      tx.commit_time = submit_time + delay + exec + back;
      if (ctx.on_tx_complete) {
        ctx.on_tx_complete(encoded);
      }
      return;
    }

    const SimTime arrival = submit_time + delay;
    ctx.sim()->ScheduleAt(arrival, [&ctx, encoded, endpoint, arrival] {
      ctx.SubmitAtEndpoint(encoded, endpoint, arrival);
    });
  }

 private:
  ChainInstance* chain_;
  HostId client_host_;
  std::vector<int> endpoints_;
  size_t next_endpoint_ = 0;
};

}  // namespace

SimConnector::SimConnector(ChainInstance* chain) : chain_(chain) {}

std::unique_ptr<BlockchainClient> SimConnector::CreateClient(
    Region location, std::vector<int> endpoint_view) {
  const HostId host = chain_->context().net()->AddHost(location);
  return std::make_unique<SimClient>(chain_, host, std::move(endpoint_view));
}

bool SimConnector::CreateResource(const ResourceSpec& spec, Resource* out) {
  *out = Resource{};
  if (spec.kind == ResourceSpec::Kind::kAccounts) {
    out->first_account = next_account_;
    out->account_count = spec.account_count;
    next_account_ += static_cast<uint32_t>(spec.account_count);
    return true;
  }
  const ContractDef* def = FindContract(spec.contract_name);
  if (def == nullptr) {
    return false;
  }
  out->contract_index = chain_->context().oracle().Deploy(*def);
  return out->contract_index >= 0;
}

TxId SimConnector::Encode(const InteractionSpec& spec, const Resource& accounts,
                          SimTime scheduled_time) {
  ChainContext& ctx = chain_->context();
  Transaction tx;
  tx.account = accounts.first_account +
               static_cast<uint32_t>(encode_counter_ %
                                     static_cast<uint64_t>(accounts.account_count));
  tx.sequence = static_cast<uint32_t>(encode_counter_);
  ++encode_counter_;
  tx.submit_time = scheduled_time;

  if (spec.type == InteractionSpec::Type::kTransfer) {
    tx.contract = -1;
    tx.gas = NativeTransferGas(ctx.params().dialect);
    tx.size_bytes = kNativeTransferBytes;
  } else {
    tx.read_only = spec.type == InteractionSpec::Type::kQuery;
    tx.contract = static_cast<int16_t>(spec.contract_index);
    tx.function =
        static_cast<int16_t>(ctx.oracle().FunctionIndex(spec.contract_index, spec.function));
    const CallProfile& profile =
        ctx.oracle().Profile(spec.contract_index, spec.function, spec.args);
    tx.gas = profile.gas;
    tx.exec_status = profile.status;
    // Payload-bearing calls (e.g. youtube upload) carry their data on the
    // wire as well.
    int64_t payload = 0;
    if (!spec.args.empty() && spec.function == "upload") {
      payload = spec.args[0];
    }
    tx.size_bytes =
        kNativeTransferBytes + profile.calldata_bytes + static_cast<int32_t>(payload);
  }
  return ctx.txs().Add(tx);
}

}  // namespace diablo
