#include "src/core/interface.h"

#include <utility>

#include "src/contracts/contracts.h"

namespace diablo {
namespace {

// Client bound to a secondary location; submissions travel over the
// simulated network to the collocated endpoint. With a retry policy
// enabled, failed write submissions rotate endpoints and back off
// exponentially until the attempt budget runs out.
//
// Each client owns its delay-jitter stream (rng_, forked once at creation):
// Trigger runs inside the windowed scheduler's parallel phase when cell
// workers are enabled, where drawing from the network's shared generator
// would race and break the canonical draw order.
class SimClient : public BlockchainClient {
 public:
  SimClient(ChainInstance* chain, HostId client_host, std::vector<int> endpoints,
            const RetryPolicy* policy, ClientStats* stats, Rng rng)
      : chain_(chain),
        client_host_(client_host),
        endpoints_(std::move(endpoints)),
        policy_(policy),
        stats_(stats),
        rng_(rng) {}

  // detlint: parallel-phase(begin, client-trigger)
  void Trigger(TxId encoded, SimTime submit_time) override {
    ChainContext& ctx = chain_->context();
    Transaction& tx = ctx.txs().at(encoded);
    tx.submit_time = submit_time;

    // Pre-flight: chains whose VM rejects the call (hard budget, state
    // limits) error out at the client, like Solana's "Computational budget
    // exceeded" logs in the artifact appendix.
    if (tx.exec_status != VmStatus::kOk) {
      tx.phase = TxPhase::kAborted;
      tx.commit_time = submit_time + Milliseconds(50);
      if (ctx.on_tx_complete) {
        ctx.on_tx_complete(encoded);
      }
      return;
    }

    // Writes under a retry policy go through the attempt loop; everything
    // else (the paper's fire-and-forget clients, and reads, which a client
    // simply re-issues elsewhere at application level) keeps the one-shot
    // path below.
    if (policy_->enabled() && !tx.read_only) {
      Attempt(encoded, /*attempt=*/0, submit_time);
      return;
    }

    const int endpoint = endpoints_[next_endpoint_++ % endpoints_.size()];
    const HostId endpoint_host = ctx.hosts()[static_cast<size_t>(endpoint)];
    SimDuration delay = ctx.net()->DelaySampleFrom(&rng_, client_host_,
                                                   endpoint_host, tx.size_bytes + 128);
    if (delay == kUnreachable) {
      delay = Milliseconds(500);
    }

    // Read-only calls: the endpoint executes against its local state and
    // replies — request travels there, execution runs, response returns.
    if (tx.read_only) {
      const SimDuration exec = ctx.ExecAndVerifyTime(tx.gas, 1);
      SimDuration back =
          ctx.net()->DelaySampleFrom(&rng_, endpoint_host, client_host_, 256);
      if (back == kUnreachable) {
        back = Milliseconds(500);
      }
      tx.phase = TxPhase::kCommitted;
      tx.commit_time = submit_time + delay + exec + back;
      if (ctx.on_tx_complete) {
        ctx.on_tx_complete(encoded);
      }
      return;
    }

    // The arrival event mutates engine-owned state (mempool, the context and
    // network RNG streams) and schedules nothing itself, so it rides the
    // engine's shard when engine sharding is enabled — that is what moves
    // the dominant one-event-per-transaction cost off the serial loop. With
    // engine sharding off this is a plain serial ScheduleAt, as before.
    // Conservatism of this push: `delay` is a real link sample (at least the
    // window span by the lookahead bound) or the 500 ms unreachable
    // fallback, which the runner caps the span at when clients shard.
    const SimTime arrival = submit_time + delay;
    ctx.ScheduleEngineAt(arrival, [&ctx, encoded, endpoint, arrival] {
      ctx.SubmitAtEndpoint(encoded, endpoint, arrival);
    });
  }
  // detlint: parallel-phase(end)

 private:
  // One submission attempt issued at `now`. Endpoints rotate per attempt,
  // so a client with a multi-node view walks away from a dead node.
  void Attempt(TxId encoded, int attempt, SimTime now) {
    ChainContext& ctx = chain_->context();
    const Transaction& tx = ctx.txs().at(encoded);
    ++stats_->attempts;
    if (attempt > 0) {
      ++stats_->retries;
    }
    const int endpoint = endpoints_[next_endpoint_++ % endpoints_.size()];
    const HostId endpoint_host = ctx.hosts()[static_cast<size_t>(endpoint)];
    const SimDuration delay = ctx.net()->DelaySampleFrom(
        &rng_, client_host_, endpoint_host, tx.size_bytes + 128);
    if (delay == kUnreachable) {
      // The request vanished (endpoint crashed or partitioned); the client
      // only learns after its submission timeout.
      FailAttempt(encoded, attempt, now + policy_->timeout);
      return;
    }
    const SimTime arrival = now + delay;
    // detlint: allow(D8, retry clients run with client sharding disabled — RetryPolicy forces engine-only sharding, so this path executes on the serial shard by construction)
    ctx.sim()->ScheduleAt(arrival, [this, encoded, endpoint, attempt, arrival] {
      ChainContext& c = chain_->context();
      if (c.SubmitAtEndpoint(encoded, endpoint, arrival, /*drop_on_reject=*/false)) {
        return;
      }
      // Admission rejected (pool full, signer cap) or the node died while
      // the request was in flight; the rejection reply travels back.
      const HostId ehost = c.hosts()[static_cast<size_t>(endpoint)];
      SimDuration back = c.net()->DelaySampleFrom(&rng_, ehost, client_host_, 256);
      if (back == kUnreachable) {
        back = policy_->timeout;
      }
      FailAttempt(encoded, attempt, arrival + back);
    });
  }

  // Books a failed attempt known to the client at `known_at` and either
  // schedules the next one after backoff or gives up.
  void FailAttempt(TxId encoded, int attempt, SimTime known_at) {
    ChainContext& ctx = chain_->context();
    ++stats_->endpoint_failures;
    if (attempt + 1 >= policy_->max_attempts) {
      ++stats_->aborts;
      ctx.DropTx(encoded);
      return;
    }
    const SimTime next = known_at + policy_->BackoffAfter(attempt);
    // detlint: allow(D8, retry clients run with client sharding disabled — RetryPolicy forces engine-only sharding, so this path executes on the serial shard by construction)
    ctx.sim()->ScheduleAt(next, [this, encoded, attempt, next] {
      Attempt(encoded, attempt + 1, next);
    });
  }

  ChainInstance* chain_;
  HostId client_host_;
  std::vector<int> endpoints_;
  size_t next_endpoint_ = 0;
  const RetryPolicy* policy_;
  ClientStats* stats_;
  Rng rng_;  // owned jitter stream; safe to draw from inside a parallel phase
};

}  // namespace

SimDuration RetryPolicy::BackoffAfter(int attempt) const {
  double wait = static_cast<double>(backoff);
  for (int i = 0; i < attempt; ++i) {
    wait *= backoff_multiplier;
    if (wait >= static_cast<double>(max_backoff)) {
      return max_backoff;
    }
  }
  if (wait >= static_cast<double>(max_backoff)) {
    return max_backoff;
  }
  return static_cast<SimDuration>(wait);
}

SimConnector::SimConnector(ChainInstance* chain) : chain_(chain) {}

std::unique_ptr<BlockchainClient> SimConnector::CreateClient(
    Region location, std::vector<int> endpoint_view) {
  ChainContext& ctx = chain_->context();
  const HostId host = ctx.net()->AddHost(location);
  return std::make_unique<SimClient>(chain_, host, std::move(endpoint_view),
                                     &retry_, &client_stats_, ctx.sim()->ForkRng());
}

bool SimConnector::CreateResource(const ResourceSpec& spec, Resource* out) {
  *out = Resource{};
  if (spec.kind == ResourceSpec::Kind::kAccounts) {
    out->first_account = next_account_;
    out->account_count = spec.account_count;
    next_account_ += static_cast<uint32_t>(spec.account_count);
    return true;
  }
  const ContractDef* def = FindContract(spec.contract_name);
  if (def == nullptr) {
    return false;
  }
  out->contract_index = chain_->context().oracle().Deploy(*def);
  return out->contract_index >= 0;
}

TxId SimConnector::Encode(const InteractionSpec& spec, const Resource& accounts,
                          SimTime scheduled_time) {
  ChainContext& ctx = chain_->context();
  Transaction tx;
  tx.account = accounts.first_account +
               static_cast<uint32_t>(encode_counter_ %
                                     static_cast<uint64_t>(accounts.account_count));
  tx.sequence = static_cast<uint32_t>(encode_counter_);
  ++encode_counter_;
  tx.submit_time = scheduled_time;

  if (spec.type == InteractionSpec::Type::kTransfer) {
    tx.contract = -1;
    tx.gas = NativeTransferGas(ctx.params().dialect);
    tx.size_bytes = kNativeTransferBytes;
  } else {
    tx.read_only = spec.type == InteractionSpec::Type::kQuery;
    tx.contract = static_cast<int16_t>(spec.contract_index);
    tx.function =
        static_cast<int16_t>(ctx.oracle().FunctionIndex(spec.contract_index, spec.function));
    const CallProfile& profile =
        ctx.oracle().Profile(spec.contract_index, spec.function, spec.args);
    tx.gas = profile.gas;
    tx.exec_status = profile.status;
    // Payload-bearing calls (e.g. youtube upload) carry their data on the
    // wire as well.
    int64_t payload = 0;
    if (!spec.args.empty() && spec.function == "upload") {
      payload = spec.args[0];
    }
    tx.size_bytes =
        kNativeTransferBytes + profile.calldata_bytes + static_cast<int32_t>(payload);
  }
  return ctx.txs().Add(tx);
}

}  // namespace diablo
