// One-call entry points used by the examples and the benchmark harness.
#ifndef SRC_CORE_RUNNER_H_
#define SRC_CORE_RUNNER_H_

#include <string>

#include "src/core/primary.h"

namespace diablo {

// Constant-rate native transfers (the §6.2/§6.3 synthetic workloads).
RunResult RunNativeBenchmark(const std::string& chain, const std::string& deployment,
                             double tps, int seconds, uint64_t seed = 1,
                             double scale = 1.0);

// One of the five §3 DApp workloads: "exchange", "dota", "fifa", "uber",
// "youtube", or a per-stock NASDAQ burst: "google", "microsoft", "apple", ...
RunResult RunDappBenchmark(const std::string& chain, const std::string& deployment,
                           const std::string& dapp, uint64_t seed = 1,
                           double scale = 1.0);

// Constant-rate native transfers under a fault schedule, with client
// retries. The resilience metrics (per-interval commit ratio, recovery
// times) land on the returned report.
RunResult RunFaultBenchmark(const std::string& chain, const std::string& deployment,
                            double tps, int seconds, const FaultSchedule& faults,
                            const RetryPolicy& retry, uint64_t seed = 1,
                            double scale = 1.0);

// Reads DIABLO_SCALE from the environment (default 1.0, clamped to
// (0, 1]); the bench binaries use it to shrink the heaviest workloads.
double ScaleFromEnv();

}  // namespace diablo

#endif  // SRC_CORE_RUNNER_H_
