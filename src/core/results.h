// Result serialization: the primary's JSON output (aggregates plus
// per-transaction timestamps) and the artifact's CSV conversion.
#ifndef SRC_CORE_RESULTS_H_
#define SRC_CORE_RESULTS_H_

#include <ostream>
#include <string>

#include "src/chain/tx.h"
#include "src/core/report.h"

namespace diablo {

// Aggregate metrics as a JSON object.
std::string ReportToJson(const Report& report);

// Full results document: the aggregate object plus a "transactions" array
// of {submit, commit, latency, status} records (capped at `max_txs` to keep
// multi-million-transaction runs reviewable).
void WriteResultsJson(std::ostream& out, const Report& report, const TxStore& txs,
                      size_t max_txs = 100000);

// CSV with one line per transaction: submit_time,latency,status — the
// schema of the artifact's csv-results script.
void WriteResultsCsv(std::ostream& out, const TxStore& txs);

// Convenience file variants; return false on I/O failure.
bool WriteResultsJsonFile(const std::string& path, const Report& report,
                          const TxStore& txs, size_t max_txs = 100000);
bool WriteResultsCsvFile(const std::string& path, const TxStore& txs);

}  // namespace diablo

#endif  // SRC_CORE_RESULTS_H_
