#include "src/core/parallel_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>

#include "src/config/json.h"
#include "src/support/rng.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace diablo {

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : JobsFromEnv()) {
  stats_.jobs = jobs_;
}

int ParallelRunner::JobsFromEnv() {
  const char* raw = std::getenv("DIABLO_JOBS");
  if (raw != nullptr) {
    int64_t value = 0;
    if (ParseInt64(raw, &value) && value > 0) {
      return static_cast<int>(std::min<int64_t>(value, 1024));
    }
  }
  return ThreadPool::HardwareConcurrency();
}

int ParallelRunner::CellWorkersFromEnv() {
  const char* raw = std::getenv("DIABLO_CELL_WORKERS");
  if (raw != nullptr) {
    int64_t value = 0;
    if (ParseInt64(raw, &value) && value > 0) {
      return static_cast<int>(std::min<int64_t>(value, 64));
    }
  }
  return 0;
}

int ParallelRunner::PoolThreadsFor(int jobs, int cell_workers, size_t cells) {
  // Split the job budget across the two layers first, then clamp by how
  // many cells can actually run at once.
  int budget = jobs;
  if (cell_workers > 1) {
    budget = std::max(1, jobs / cell_workers);
  }
  return std::min<int>(budget, static_cast<int>(std::max<size_t>(cells, 1)));
}

std::vector<RunResult> ParallelRunner::Run(std::vector<ExperimentCell> cells) {
  // detlint: allow(D2, wall time feeds only RunnerStats::wall_seconds, a profiling observable outside every report)
  const auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results(cells.size());

  // Nested-parallelism budget: when each cell spins up its own windowed
  // worker pool (DIABLO_CELL_WORKERS > 1), divide the job budget between the
  // two layers instead of oversubscribing jobs × workers threads.
  const int pool_threads =
      PoolThreadsFor(jobs_, CellWorkersFromEnv(), cells.size());

  if (pool_threads == 1 || cells.size() <= 1) {
    for (size_t i = 0; i < cells.size(); ++i) {
      results[i] = cells[i].run();
    }
  } else {
    ThreadPool pool(pool_threads);
    std::vector<std::future<void>> futures;
    futures.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      futures.push_back(
          pool.Submit([&cells, &results, i] { results[i] = cells[i].run(); }));
    }
    // Wait for every cell before rethrowing, so one failure cannot leave
    // workers writing into a destroyed results vector.
    std::exception_ptr first_error;
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
  }

  const std::chrono::duration<double> elapsed =
      // detlint: allow(D2, wall time feeds only RunnerStats::wall_seconds, a profiling observable outside every report)
      std::chrono::steady_clock::now() - start;
  stats_.cells += cells.size();
  stats_.wall_seconds += elapsed.count();
  for (const RunResult& result : results) {
    stats_.total_events += result.events_executed;
  }
  return results;
}

uint64_t CellSeed(uint64_t base_seed, uint64_t cell_index) {
  // splitmix64 over (base, index) gives well-separated streams even for
  // adjacent cells; never fold in thread identity here.
  uint64_t state = base_seed + 0x9e3779b97f4a7c15ull * (cell_index + 1);
  return SplitMix64(state);
}

namespace {

void AppendJson(const JsonValue& value, std::ostringstream* out);

void AppendJsonString(const std::string& s, std::ostringstream* out) {
  *out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        *out << "\\\"";
        break;
      case '\\':
        *out << "\\\\";
        break;
      case '\n':
        *out << "\\n";
        break;
      case '\t':
        *out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

void AppendJson(const JsonValue& value, std::ostringstream* out) {
  switch (value.type) {
    case JsonValue::Type::kNull:
      *out << "null";
      break;
    case JsonValue::Type::kBool:
      *out << (value.boolean ? "true" : "false");
      break;
    case JsonValue::Type::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", value.number);
      *out << buf;
      break;
    }
    case JsonValue::Type::kString:
      AppendJsonString(value.string, out);
      break;
    case JsonValue::Type::kArray:
      *out << '[';
      for (size_t i = 0; i < value.items.size(); ++i) {
        if (i > 0) {
          *out << ',';
        }
        AppendJson(value.items[i], out);
      }
      *out << ']';
      break;
    case JsonValue::Type::kObject:
      *out << '{';
      for (size_t i = 0; i < value.members.size(); ++i) {
        if (i > 0) {
          *out << ',';
        }
        AppendJsonString(value.members[i].first, out);
        *out << ':';
        AppendJson(value.members[i].second, out);
      }
      *out << '}';
      break;
  }
}

std::string StatsEntryJson(const RunnerStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"jobs\": %d, \"cells\": %zu, \"wall_seconds\": %.6f, "
                "\"total_events\": %llu, \"events_per_second\": %.1f, "
                "\"hardware_threads\": %d}",
                stats.jobs, stats.cells, stats.wall_seconds,
                static_cast<unsigned long long>(stats.total_events),
                stats.EventsPerSecond(), ThreadPool::HardwareConcurrency());
  return buf;
}

}  // namespace

bool WriteRunnerStatsJson(const std::string& path, const std::string& binary,
                          const RunnerStats& stats) {
  return WriteRunnerJsonEntry(path, binary, StatsEntryJson(stats));
}

bool WriteRunnerJsonEntry(const std::string& path, const std::string& key,
                          const std::string& entry_json) {
  // Keep other binaries' entries so the file accumulates a whole-suite view.
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream raw;
      raw << in.rdbuf();
      const JsonResult parsed = ParseJson(raw.str());
      if (parsed.ok && parsed.value.IsObject()) {
        for (const auto& [existing, value] : parsed.value.members) {
          // The schema stamp is re-emitted at the top, never copied through;
          // this entry's key is replaced below.
          if (existing == key || existing == "schema_version") {
            continue;
          }
          std::ostringstream serialized;
          AppendJson(value, &serialized);
          entries.emplace_back(existing, serialized.str());
        }
      }
    }
  }
  entries.emplace_back(key, entry_json);

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << "{\n";
  out << "  \"schema_version\": " << kRunnerStatsSchemaVersion << ",\n";
  for (size_t i = 0; i < entries.size(); ++i) {
    std::ostringstream key;
    AppendJsonString(entries[i].first, &key);
    out << "  " << key.str() << ": " << entries[i].second;
    out << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return out.good();
}

}  // namespace diablo
