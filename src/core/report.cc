#include "src/core/report.h"

#include <algorithm>

#include "src/support/strings.h"

namespace diablo {

Report BuildReport(const TxStore& txs, SimTime horizon, std::string chain,
                   std::string deployment, std::string workload,
                   double workload_duration) {
  Report report;
  report.chain = std::move(chain);
  report.deployment = std::move(deployment);
  report.workload = std::move(workload);
  report.workload_duration = workload_duration;

  // One latency sample per committed transaction at most; sizing for the
  // whole store keeps the aggregation loop reallocation-free.
  report.latencies.Reserve(txs.size());

  SimTime last_commit = 0;
  for (TxId id = 0; id < txs.size(); ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase == TxPhase::kCreated) {
      continue;  // never submitted
    }
    ++report.submitted;
    report.submitted_per_second.Add(ToSeconds(tx.submit_time), 1.0);
    switch (tx.phase) {
      case TxPhase::kCommitted:
        if (tx.commit_time <= horizon) {
          ++report.committed;
          last_commit = std::max(last_commit, tx.commit_time);
          const double latency = tx.LatencySeconds();
          report.latencies.Add(latency);
          report.committed_per_second.Add(ToSeconds(tx.commit_time), 1.0);
        } else {
          ++report.pending;
        }
        break;
      case TxPhase::kDropped:
        ++report.dropped;
        break;
      case TxPhase::kAborted:
        ++report.aborted;
        break;
      case TxPhase::kSubmitted:
        ++report.pending;
        break;
      case TxPhase::kCreated:
        break;
    }
  }

  if (report.workload_duration > 0) {
    report.avg_load = static_cast<double>(report.submitted) / report.workload_duration;
  }
  const double span = std::max(report.workload_duration, ToSeconds(last_commit));
  if (span > 0) {
    report.avg_throughput = static_cast<double>(report.committed) / span;
  }
  if (report.submitted > 0) {
    report.commit_ratio =
        static_cast<double>(report.committed) / static_cast<double>(report.submitted);
  }
  if (report.latencies.count() > 0) {
    report.avg_latency = report.latencies.Mean();
    report.median_latency = report.latencies.Median();
    report.p95_latency = report.latencies.Percentile(0.95);
    report.max_latency = report.latencies.Max();
  }
  return report;
}

std::string Report::ToText() const {
  std::string out;
  out += StrFormat("chain:        %s\n", chain.c_str());
  out += StrFormat("deployment:   %s\n", deployment.c_str());
  out += StrFormat("workload:     %s (%.0f s)\n", workload.c_str(), workload_duration);
  out += StrFormat("submitted:    %zu (avg load %.1f TPS)\n", submitted, avg_load);
  out += StrFormat("committed:    %zu (%.1f%%)\n", committed, 100.0 * commit_ratio);
  out += StrFormat("dropped:      %zu\n", dropped);
  out += StrFormat("aborted:      %zu\n", aborted);
  out += StrFormat("pending:      %zu\n", pending);
  out += StrFormat("throughput:   %.1f TPS\n", avg_throughput);
  out += StrFormat("latency avg:  %.2f s  median: %.2f s  p95: %.2f s  max: %.2f s\n",
                   avg_latency, median_latency, p95_latency, max_latency);
  return out;
}

}  // namespace diablo
