#include "src/core/report.h"

#include <algorithm>

#include "src/support/strings.h"

namespace diablo {

Report BuildReport(const TxStore& txs, SimTime horizon, std::string chain,
                   std::string deployment, std::string workload,
                   double workload_duration) {
  Report report;
  report.chain = std::move(chain);
  report.deployment = std::move(deployment);
  report.workload = std::move(workload);
  report.workload_duration = workload_duration;

  // One latency sample per committed transaction at most; sizing for the
  // whole store keeps the aggregation loop reallocation-free.
  report.latencies.Reserve(txs.size());

  SimTime last_commit = 0;
  for (TxId id = 0; id < txs.size(); ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase == TxPhase::kCreated) {
      continue;  // never submitted
    }
    ++report.submitted;
    report.submitted_per_second.Add(ToSeconds(tx.submit_time), 1.0);
    switch (tx.phase) {
      case TxPhase::kCommitted:
        if (tx.commit_time <= horizon) {
          ++report.committed;
          last_commit = std::max(last_commit, tx.commit_time);
          const double latency = tx.LatencySeconds();
          report.latencies.Add(latency);
          report.committed_per_second.Add(ToSeconds(tx.commit_time), 1.0);
        } else {
          ++report.pending;
        }
        break;
      case TxPhase::kDropped:
        ++report.dropped;
        break;
      case TxPhase::kAborted:
        ++report.aborted;
        break;
      case TxPhase::kSubmitted:
        ++report.pending;
        break;
      case TxPhase::kCreated:
        break;
    }
  }

  if (report.workload_duration > 0) {
    report.avg_load = static_cast<double>(report.submitted) / report.workload_duration;
  }
  const double span = std::max(report.workload_duration, ToSeconds(last_commit));
  if (span > 0) {
    report.avg_throughput = static_cast<double>(report.committed) / span;
  }
  if (report.submitted > 0) {
    report.commit_ratio =
        static_cast<double>(report.committed) / static_cast<double>(report.submitted);
  }
  if (report.latencies.count() > 0) {
    report.avg_latency = report.latencies.Mean();
    report.median_latency = report.latencies.Median();
    report.p95_latency = report.latencies.Percentile(0.95);
    report.max_latency = report.latencies.Max();
  }
  return report;
}

void AddResilienceMetrics(Report* report, const TxStore& txs, SimTime horizon,
                          const std::vector<SimTime>& heal_times) {
  report->resilience = true;

  // Per-submit-second commit ratio: how much of each second's offered load
  // eventually landed. Buckets follow the submit clock, not the commit
  // clock, so a fault window shows up as a dip even when its transactions
  // commit late.
  std::vector<uint64_t> offered;
  std::vector<uint64_t> landed;
  std::vector<SimTime> commits;
  for (TxId id = 0; id < txs.size(); ++id) {
    const Transaction& tx = txs.at(id);
    if (tx.phase == TxPhase::kCreated) {
      continue;
    }
    const size_t second = static_cast<size_t>(ToSeconds(tx.submit_time));
    if (second >= offered.size()) {
      offered.resize(second + 1, 0);
      landed.resize(second + 1, 0);
    }
    ++offered[second];
    if (tx.phase == TxPhase::kCommitted && tx.commit_time <= horizon) {
      ++landed[second];
      commits.push_back(tx.commit_time);
    }
  }
  report->interval_commit_ratio.clear();
  report->interval_commit_ratio.reserve(offered.size());
  report->min_interval_commit_ratio = offered.empty() ? 0.0 : 1.0;
  for (size_t second = 0; second < offered.size(); ++second) {
    const double ratio =
        offered[second] == 0
            ? 1.0
            : static_cast<double>(landed[second]) / static_cast<double>(offered[second]);
    report->interval_commit_ratio.push_back(ratio);
    report->min_interval_commit_ratio =
        std::min(report->min_interval_commit_ratio, ratio);
  }

  // Time-to-recovery: first commit at or after each heal instant.
  std::sort(commits.begin(), commits.end());
  report->recoveries.clear();
  report->recoveries.reserve(heal_times.size());
  for (const SimTime heal : heal_times) {
    const auto first = std::lower_bound(commits.begin(), commits.end(), heal);
    report->recoveries.push_back(first == commits.end() ? -1.0
                                                        : ToSeconds(*first - heal));
  }
}

std::string Report::ToText() const {
  std::string out;
  out += StrFormat("chain:        %s\n", chain.c_str());
  out += StrFormat("deployment:   %s\n", deployment.c_str());
  out += StrFormat("workload:     %s (%.0f s)\n", workload.c_str(), workload_duration);
  out += StrFormat("submitted:    %zu (avg load %.1f TPS)\n", submitted, avg_load);
  out += StrFormat("committed:    %zu (%.1f%%)\n", committed, 100.0 * commit_ratio);
  out += StrFormat("dropped:      %zu\n", dropped);
  out += StrFormat("aborted:      %zu\n", aborted);
  out += StrFormat("pending:      %zu\n", pending);
  out += StrFormat("throughput:   %.1f TPS\n", avg_throughput);
  out += StrFormat("latency avg:  %.2f s  median: %.2f s  p95: %.2f s  max: %.2f s\n",
                   avg_latency, median_latency, p95_latency, max_latency);
  if (resilience) {
    out += StrFormat("view changes: %llu  abandoned blocks: %llu\n",
                     static_cast<unsigned long long>(view_changes),
                     static_cast<unsigned long long>(blocks_abandoned));
    out += StrFormat("retries:      %llu  client aborts: %llu\n",
                     static_cast<unsigned long long>(client_retries),
                     static_cast<unsigned long long>(client_aborts));
    out += StrFormat("min interval commit ratio: %.1f%%\n",
                     100.0 * min_interval_commit_ratio);
    for (size_t i = 0; i < recoveries.size(); ++i) {
      if (recoveries[i] < 0) {
        out += StrFormat("recovery %zu:   never\n", i);
      } else {
        out += StrFormat("recovery %zu:   %.2f s\n", i, recoveries[i]);
      }
    }
  }
  if (byzantine) {
    out += StrFormat("equivocations: %llu  double votes: %llu  votes withheld: %llu\n",
                     static_cast<unsigned long long>(equivocations_seen),
                     static_cast<unsigned long long>(double_votes_seen),
                     static_cast<unsigned long long>(votes_withheld));
    out += StrFormat("txs censored: %llu  lazy proposals: %llu\n",
                     static_cast<unsigned long long>(txs_censored),
                     static_cast<unsigned long long>(lazy_proposals));
  }
  return out;
}

}  // namespace diablo
