// The blockchain abstraction of §4: a blockchain is ⟨E, R, I⟩ — endpoints,
// resources and interaction types — and porting diablo to a new chain means
// implementing four functions: create_client, create_resource, encode and
// trigger. SimConnector implements them over this repository's simulated
// chains; examples/custom_blockchain.cc shows a from-scratch implementation.
#ifndef SRC_CORE_INTERFACE_H_
#define SRC_CORE_INTERFACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/chains/chain_factory.h"

namespace diablo {

// φ^R: a resource needed by the benchmark — a set of accounts or a deployed
// contract.
struct ResourceSpec {
  enum class Kind { kAccounts, kContract };
  Kind kind = Kind::kAccounts;
  int account_count = 0;
  std::string contract_name;  // registry key for kContract
};

struct Resource {
  // kAccounts: [first_account, first_account + account_count)
  uint32_t first_account = 0;
  int account_count = 0;
  // kContract: index usable in InteractionSpec::contract_index.
  int contract_index = -1;
};

// φ^i: one interaction type instance — transfer_X, invoke_D_Xs, or a
// read-only query served without consensus (§4).
struct InteractionSpec {
  enum class Type { kTransfer, kInvoke, kQuery };
  Type type = Type::kTransfer;
  int64_t amount = 1;                 // transfer_X
  int contract_index = -1;            // invoke_D_Xs
  std::string function;
  std::vector<int64_t> args;
};

// Submission timeout + exponential-backoff retry policy for clients. The
// default (max_attempts = 1) is fire-and-forget: exactly the behaviour the
// paper's secondaries have, and what every healthy-path benchmark uses. A
// fault run enables retries so the harness distinguishes "the chain
// rejected it" from "the client gave up after bounded attempts".
struct RetryPolicy {
  int max_attempts = 1;  // 1 = retries disabled
  // Deadline for one submission RPC; an unreachable endpoint costs this
  // long before the client moves on.
  SimDuration timeout = Seconds(5);
  SimDuration backoff = Milliseconds(500);  // before attempt 2
  double backoff_multiplier = 2.0;
  SimDuration max_backoff = Seconds(30);

  bool enabled() const { return max_attempts > 1; }

  // Wait after failed attempt number `attempt` (0-based), exponential with
  // a ceiling.
  SimDuration BackoffAfter(int attempt) const;
};

// Aggregated client-side submission accounting (across all of a
// connector's clients): how many attempts ran, how many were retries, and
// how many transactions the clients abandoned after exhausting the policy.
struct ClientStats {
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t endpoint_failures = 0;  // timed-out or rejected attempts
  uint64_t aborts = 0;             // transactions given up on
};

// c.trigger(e): a client bound to one secondary location submitting encoded
// interactions to its view of the endpoints.
class BlockchainClient {
 public:
  virtual ~BlockchainClient() = default;

  // Sends the encoded interaction at `submit_time` (diablo records the
  // submission clock right before the send).
  virtual void Trigger(TxId encoded, SimTime submit_time) = 0;
};

class BlockchainConnector {
 public:
  virtual ~BlockchainConnector() = default;

  // s.create_client(E): a client at `location` that routes submissions to
  // `endpoint_view` (node indices).
  virtual std::unique_ptr<BlockchainClient> CreateClient(
      Region location, std::vector<int> endpoint_view) = 0;

  // create_resource(φ^r). Returns false when the resource cannot exist on
  // this chain (e.g. a contract the chain's VM cannot host, §5.2).
  virtual bool CreateResource(const ResourceSpec& spec, Resource* out) = 0;

  // encode(φ^i, r, t): pre-signs and encodes; returns an opaque handle.
  virtual TxId Encode(const InteractionSpec& spec, const Resource& accounts,
                      SimTime scheduled_time) = 0;
};

// Connector over a simulated ChainInstance.
class SimConnector : public BlockchainConnector {
 public:
  explicit SimConnector(ChainInstance* chain);

  std::unique_ptr<BlockchainClient> CreateClient(Region location,
                                                 std::vector<int> endpoint_view) override;
  bool CreateResource(const ResourceSpec& spec, Resource* out) override;
  TxId Encode(const InteractionSpec& spec, const Resource& accounts,
              SimTime scheduled_time) override;

  // Applies to every client created afterwards; call before CreateClient.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Submission accounting summed over all clients of this connector.
  const ClientStats& client_stats() const { return client_stats_; }

 private:
  ChainInstance* chain_;
  uint32_t next_account_ = 0;
  uint64_t encode_counter_ = 0;
  RetryPolicy retry_;
  ClientStats client_stats_;
};

}  // namespace diablo

#endif  // SRC_CORE_INTERFACE_H_
