// Result aggregation: the metrics the paper reports — average load,
// average throughput, average/median latency, proportion of committed
// transactions, per-second time series and the latency CDF of Fig. 6.
#ifndef SRC_CORE_REPORT_H_
#define SRC_CORE_REPORT_H_

#include <string>
#include <vector>

#include "src/chain/tx.h"
#include "src/support/stats.h"

namespace diablo {

struct Report {
  std::string chain;
  std::string deployment;
  std::string workload;

  size_t submitted = 0;  // sent by secondaries
  size_t committed = 0;  // included and successful before the horizon
  size_t dropped = 0;    // rejected / evicted / expired
  size_t aborted = 0;    // execution failure (e.g. budget exceeded)
  size_t pending = 0;    // still in flight at the horizon

  double workload_duration = 0;  // seconds of trace
  double avg_load = 0;           // submitted / duration
  double avg_throughput = 0;     // committed / commit span
  double avg_latency = 0;        // seconds, over committed
  double median_latency = 0;
  double p95_latency = 0;
  double max_latency = 0;
  double commit_ratio = 0;  // committed / submitted

  TimeSeries submitted_per_second;
  TimeSeries committed_per_second;
  SampleSet latencies;

  // --- Resilience metrics (fault runs only) ---
  // `resilience` gates their emission in ToText/ReportToJson so healthy-path
  // outputs stay byte-identical whether or not the fields are populated.
  bool resilience = false;
  uint64_t view_changes = 0;      // leader/round changes across all nodes
  uint64_t blocks_abandoned = 0;  // proposals that missed quorum
  uint64_t client_retries = 0;    // re-submissions by retrying clients
  uint64_t client_aborts = 0;     // transactions clients gave up on
  // Fraction of each submit-second's transactions that eventually committed;
  // the dip during a fault window is the resilience signature.
  std::vector<double> interval_commit_ratio;
  double min_interval_commit_ratio = 1.0;
  // Time-to-recovery: seconds from each heal/restart instant to the first
  // commit at or after it; -1 when the chain never recovered in view.
  std::vector<double> recoveries;

  // --- Byzantine evidence (adversary runs only) ---
  // `byzantine` gates emission the same way `resilience` does: healthy and
  // honest-fault outputs are byte-identical to before these fields existed.
  bool byzantine = false;
  uint64_t equivocations_seen = 0;
  uint64_t double_votes_seen = 0;
  uint64_t votes_withheld = 0;
  uint64_t txs_censored = 0;
  uint64_t lazy_proposals = 0;

  // Multi-line human-readable summary (the primary's --stat output).
  std::string ToText() const;
};

// Fills the fault-run metrics on `report`: the per-submit-second commit
// ratio series and, for each instant in `heal_times` (partition heals,
// crash restarts), the time to the first commit at or after it. Marks the
// report as a resilience report.
void AddResilienceMetrics(Report* report, const TxStore& txs, SimTime horizon,
                          const std::vector<SimTime>& heal_times);

// Builds the report from the transaction arena. Transactions whose commit
// time falls after `horizon` count as pending — the benchmark stopped
// observing before they landed.
Report BuildReport(const TxStore& txs, SimTime horizon, std::string chain,
                   std::string deployment, std::string workload,
                   double workload_duration);

}  // namespace diablo

#endif  // SRC_CORE_REPORT_H_
