// Result aggregation: the metrics the paper reports — average load,
// average throughput, average/median latency, proportion of committed
// transactions, per-second time series and the latency CDF of Fig. 6.
#ifndef SRC_CORE_REPORT_H_
#define SRC_CORE_REPORT_H_

#include <string>

#include "src/chain/tx.h"
#include "src/support/stats.h"

namespace diablo {

struct Report {
  std::string chain;
  std::string deployment;
  std::string workload;

  size_t submitted = 0;  // sent by secondaries
  size_t committed = 0;  // included and successful before the horizon
  size_t dropped = 0;    // rejected / evicted / expired
  size_t aborted = 0;    // execution failure (e.g. budget exceeded)
  size_t pending = 0;    // still in flight at the horizon

  double workload_duration = 0;  // seconds of trace
  double avg_load = 0;           // submitted / duration
  double avg_throughput = 0;     // committed / commit span
  double avg_latency = 0;        // seconds, over committed
  double median_latency = 0;
  double p95_latency = 0;
  double max_latency = 0;
  double commit_ratio = 0;  // committed / submitted

  TimeSeries submitted_per_second;
  TimeSeries committed_per_second;
  SampleSet latencies;

  // Multi-line human-readable summary (the primary's --stat output).
  std::string ToText() const;
};

// Builds the report from the transaction arena. Transactions whose commit
// time falls after `horizon` count as pending — the benchmark stopped
// observing before they landed.
Report BuildReport(const TxStore& txs, SimTime horizon, std::string chain,
                   std::string deployment, std::string workload,
                   double workload_duration);

}  // namespace diablo

#endif  // SRC_CORE_REPORT_H_
