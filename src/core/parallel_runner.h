// Parallel experiment execution (the benchmark matrix fan-out).
//
// The paper's evaluation is a grid of independent (chain, workload,
// deployment, scale, seed) cells; each cell owns its own Simulation, Network
// and RNG streams, so cells can run on any thread in any order without
// perturbing each other. The runner fans cells across a ThreadPool and
// returns results in submission order.
//
// Determinism contract: a cell's seed is a pure function of the experiment
// grid (base seed and cell position — see CellSeed), never of thread
// identity or scheduling, so results are bit-identical to a serial run and
// invariant to DIABLO_JOBS.
#ifndef SRC_CORE_PARALLEL_RUNNER_H_
#define SRC_CORE_PARALLEL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/primary.h"

namespace diablo {

// One independent benchmark run: a label for reports plus a closure that
// builds and runs the whole experiment (Primary, Simulation, Network, ...).
struct ExperimentCell {
  std::string label;
  std::function<RunResult()> run;
};

// Cumulative execution statistics, the payload of BENCH_runner.json.
struct RunnerStats {
  int jobs = 1;
  size_t cells = 0;
  double wall_seconds = 0;
  uint64_t total_events = 0;  // simulator events summed over all cells

  double EventsPerSecond() const {
    return wall_seconds > 0 ? static_cast<double>(total_events) / wall_seconds : 0;
  }
};

class ParallelRunner {
 public:
  // jobs <= 0 means JobsFromEnv().
  explicit ParallelRunner(int jobs = 0);

  // Runs every cell and returns their results in cell order. jobs == 1 runs
  // inline on the calling thread (no pool); otherwise cells are dispatched
  // FIFO to a pool of min(jobs, cells) workers. Exceptions from a cell
  // propagate out after all other cells finished.
  std::vector<RunResult> Run(std::vector<ExperimentCell> cells);

  int jobs() const { return jobs_; }

  // Accumulated across every Run() call on this runner.
  const RunnerStats& stats() const { return stats_; }

  // DIABLO_JOBS from the environment; unset, empty or invalid values fall
  // back to the hardware concurrency.
  static int JobsFromEnv();

  // DIABLO_CELL_WORKERS from the environment: the intra-cell windowed
  // scheduler's worker count (see Simulation::ConfigureCellWorkers). Unset,
  // empty or invalid values mean 0 — intra-cell parallelism disabled, the
  // legacy single-threaded loop. Output is byte-identical at every setting;
  // only the thread budget changes.
  static int CellWorkersFromEnv();

  // Pool size for dispatching `cells` cells under a budget of `jobs` threads
  // when each cell spins up `cell_workers` windowed workers of its own. The
  // job budget is divided between the two layers *before* clamping by the
  // cell count, so pool_threads × cell_workers never exceeds jobs (except
  // the unavoidable floor of one cell in flight when jobs < cell_workers).
  // Clamping by the cell count first divided the wrong quantity: 3 cells on
  // jobs=16 with cell_workers=4 came out as min(16,3)/4 → 1 pool thread —
  // one cell at a time on a budget that affords all three — and the
  // division then re-derived the split from the cell count rather than the
  // job budget, so the product drifted from the budget on every small
  // matrix.
  static int PoolThreadsFor(int jobs, int cell_workers, size_t cells);

 private:
  int jobs_;
  RunnerStats stats_;
};

// Deterministic per-cell seed: mixes the grid position into the base seed so
// every cell gets an independent stream no matter which thread runs it.
uint64_t CellSeed(uint64_t base_seed, uint64_t cell_index);

// Version stamp of the BENCH_runner.json layout. Version 2 added the
// top-level "schema_version" key itself; version 3 added the "kernels" entry
// (micro-kernel speedups vs in-binary seed replicas, written by
// micro_benchmarks) alongside the per-runner-binary stats. Bump it when an
// entry field is added, removed or changes meaning, so perf-trajectory
// tooling comparing files across PRs can tell layouts apart.
inline constexpr int kRunnerStatsSchemaVersion = 3;

// Writes (or updates) `path` — a JSON object with a "schema_version" stamp
// plus one member per benchmark binary mapping to its runner stats —
// replacing this binary's entry and keeping the others, so successive bench
// binaries accumulate into one report. Returns false on I/O failure.
bool WriteRunnerStatsJson(const std::string& path, const std::string& binary,
                          const RunnerStats& stats);

// Same merge-and-rewrite, but with a caller-provided pre-serialized JSON
// value for `key` — used for entries that are not RunnerStats, like the
// micro-kernel speedup summary.
bool WriteRunnerJsonEntry(const std::string& path, const std::string& key,
                          const std::string& entry_json);

}  // namespace diablo

#endif  // SRC_CORE_PARALLEL_RUNNER_H_
