#include "src/core/primary.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/interface.h"
#include "src/core/parallel_runner.h"
#include "src/core/results.h"
#include "src/core/secondary.h"
#include "src/fault/injector.h"
#include "src/support/log.h"
#include "src/support/strings.h"
#include "src/workload/arrival.h"

namespace diablo {

Primary::Primary(BenchmarkSetup setup) : setup_(std::move(setup)) {}

RunResult Primary::RunNative(const Trace& trace) {
  WorkStream stream;
  stream.trace = trace;
  return RunStreams({std::move(stream)}, trace.name);
}

RunResult Primary::RunDapp(const DappWorkload& dapp) {
  WorkStream stream;
  stream.trace = dapp.trace;
  stream.contract = dapp.contract;
  stream.fixed = dapp.fixed;
  stream.dapp_name = dapp.name;
  return RunStreams({std::move(stream)}, dapp.name);
}

RunResult Primary::RunSpec(const WorkloadSpec& spec) {
  // A `faults:` section in the workload file configures the run unless the
  // caller already installed a schedule programmatically.
  if (setup_.faults.empty() && !spec.faults.empty()) {
    setup_.faults = spec.faults;
  }
  std::vector<WorkStream> streams;
  std::string workload_name = "spec";
  for (const WorkloadGroup& group : spec.groups) {
    // Client locations (AWS zone tags in the file) map to regions.
    std::vector<Region> locations;
    for (const std::string& tag : group.locations) {
      Region region;
      if (ParseRegion(tag, &region)) {
        locations.push_back(region);
      }
    }
    for (const ClientBehavior& behavior : group.behaviors) {
      WorkStream stream;
      stream.locations = locations;
      stream.endpoints = group.endpoints;
      // Per-client load ramp, scaled by the number of clients in the group.
      Trace trace;
      trace.name = "spec";
      if (!behavior.load.empty()) {
        const double end = behavior.load.back().at_seconds;
        trace.tps.assign(static_cast<size_t>(end), 0.0);
        for (size_t i = 0; i + 1 < behavior.load.size(); ++i) {
          const LoadPoint& from = behavior.load[i];
          const LoadPoint& to = behavior.load[i + 1];
          for (size_t s = static_cast<size_t>(from.at_seconds);
               s < static_cast<size_t>(to.at_seconds) && s < trace.tps.size(); ++s) {
            trace.tps[s] = from.tps * group.clients;
          }
        }
      }
      stream.trace = std::move(trace);
      if (behavior.interaction == "invoke") {
        stream.contract = behavior.contract;
        stream.fixed = Invocation{behavior.function, behavior.args};
        workload_name = "spec-" + behavior.contract;
      }
      streams.push_back(std::move(stream));
    }
  }
  return RunStreams(std::move(streams), workload_name);
}

RunResult Primary::RunStreams(std::vector<WorkStream> streams,
                              const std::string& workload_name) {
  RunResult result;
  result.report.chain = setup_.chain;
  result.report.deployment = setup_.deployment;
  result.report.workload = workload_name;
  if (streams.empty()) {
    return result;
  }
  for (WorkStream& stream : streams) {
    if (setup_.scale != 1.0) {
      stream.trace = stream.trace.Scaled(setup_.scale);
    }
  }

  Simulation sim(setup_.seed);
  Network net(&sim);
  const DeploymentConfig deployment = GetDeployment(setup_.deployment);
  ChainParams params =
      setup_.params.has_value() ? *setup_.params : GetChainParams(setup_.chain);
  const auto chain = BuildChainFromParams(params, deployment, &sim, &net);
  ChainContext& ctx = chain->context();
  SimConnector connector(chain.get());
  connector.set_retry_policy(setup_.retry);
  result.report.chain = params.name;

  // The injector lives on the stack for the whole run; Install only
  // schedules events when the schedule is non-empty.
  FaultInjector injector(setup_.faults, &ctx);
  if (!setup_.faults.empty()) {
    std::string error;
    if (!injector.Install(&error)) {
      result.failure_reason = "fault schedule: " + error;
      return result;
    }
  }

  // Accounts.
  int account_count = setup_.accounts;
  if (params.name == "diem" && deployment.node_count >= 200) {
    // §5.2: Diem's setup tooling fails past 130 accounts, so the community
    // and consortium runs were restricted to 130 accounts.
    account_count = std::min(account_count, 130);
  }
  ResourceSpec accounts_spec;
  accounts_spec.kind = ResourceSpec::Kind::kAccounts;
  accounts_spec.account_count = account_count;
  Resource accounts;
  connector.CreateResource(accounts_spec, &accounts);

  // Contracts, deduplicated across streams.
  std::map<std::string, Resource> contracts;
  for (const WorkStream& stream : streams) {
    if (stream.contract.empty() || contracts.contains(stream.contract)) {
      continue;
    }
    ResourceSpec contract_spec;
    contract_spec.kind = ResourceSpec::Kind::kContract;
    contract_spec.contract_name = stream.contract;
    Resource resource;
    if (!connector.CreateResource(contract_spec, &resource)) {
      // E.g. DecentralizedYoutube on the AVM (§5.2): no bar in Fig. 2.
      result.unsupported = true;
      result.failure_reason = "contract not deployable on " + params.vm_name;
      return result;
    }
    contracts.emplace(stream.contract, resource);
  }

  // Secondaries. Streams without explicit locations share a default set
  // collocated with the blockchain nodes (§5.3); located streams get their
  // own clients in the requested regions, still one endpoint each.
  std::vector<std::unique_ptr<Secondary>> secondaries;
  std::vector<std::vector<size_t>> stream_secondaries(streams.size());
  std::vector<size_t> default_set;
  auto add_secondary = [&](Region region, std::vector<int> view) {
    auto client = connector.CreateClient(region, std::move(view));
    secondaries.push_back(std::make_unique<Secondary>(
        static_cast<int>(secondaries.size()), region, &sim, std::move(client)));
    return secondaries.size() - 1;
  };
  // The spec's `view:` patterns select which nodes a client submits to.
  auto resolve_view = [&](const std::vector<std::string>& patterns,
                          int collocated) -> std::vector<int> {
    std::vector<int> view;
    for (const std::string& pattern : patterns) {
      if (pattern == ".*") {
        for (int node = 0; node < deployment.node_count; ++node) {
          view.push_back(node);
        }
        continue;
      }
      int64_t index = 0;
      if (ParseInt64(pattern, &index) && index >= 0 &&
          index < deployment.node_count) {
        view.push_back(static_cast<int>(index));
      }
    }
    if (view.empty()) {
      view.push_back(collocated);
    }
    return view;
  };
  for (size_t i = 0; i < streams.size(); ++i) {
    if (streams[i].locations.empty() && streams[i].endpoints.empty()) {
      if (default_set.empty()) {
        for (int s = 0; s < setup_.secondaries; ++s) {
          const int endpoint = s % deployment.node_count;
          default_set.push_back(
              add_secondary(deployment.NodeRegion(endpoint), {endpoint}));
        }
      }
      stream_secondaries[i] = default_set;
    } else if (streams[i].locations.empty()) {
      // View-only streams: default locations, explicit endpoints.
      for (int s = 0; s < setup_.secondaries; ++s) {
        const int collocated = s % deployment.node_count;
        stream_secondaries[i].push_back(
            add_secondary(deployment.NodeRegion(collocated),
                          resolve_view(streams[i].endpoints, collocated)));
      }
    } else {
      for (const Region region : streams[i].locations) {
        // Route to the nearest node: the first node in the same region, or
        // node 0 when the deployment does not span that region.
        int endpoint = 0;
        for (int node = 0; node < deployment.node_count; ++node) {
          if (deployment.NodeRegion(node) == region) {
            endpoint = node;
            break;
          }
        }
        stream_secondaries[i].push_back(
            add_secondary(region, resolve_view(streams[i].endpoints, endpoint)));
      }
    }
  }

  // Pre-sign and partition every stream. Arrivals are expanded for all
  // streams first so transaction storage, the mempool side tables and the
  // block-tx pool can be sized once for the whole run before encoding
  // begins — the same up-front treatment the event heap gets below.
  size_t total_txs = 0;
  std::vector<std::vector<SimTime>> stream_arrivals(streams.size());
  for (size_t i = 0; i < streams.size(); ++i) {
    stream_arrivals[i] = ExpandArrivals(streams[i].trace, ArrivalProcess::kUniform, nullptr);
    total_txs += stream_arrivals[i].size();
  }
  ctx.ReserveTxs(total_txs);
  for (size_t i = 0; i < streams.size(); ++i) {
    const WorkStream& stream = streams[i];
    const std::vector<SimTime>& arrivals = stream_arrivals[i];
    DappWorkload mix;  // provides InvocationFor when no fixed invocation
    mix.name = stream.dapp_name.empty() ? stream.contract : stream.dapp_name;
    mix.fixed = stream.fixed;
    for (size_t k = 0; k < arrivals.size(); ++k) {
      InteractionSpec spec;
      if (!stream.contract.empty()) {
        const Invocation invocation = mix.InvocationFor(k);
        spec.type = InteractionSpec::Type::kInvoke;
        spec.contract_index = contracts.at(stream.contract).contract_index;
        spec.function = invocation.function;
        spec.args = invocation.args;
      }
      const TxId tx = connector.Encode(spec, accounts, arrivals[k]);
      const auto& set = stream_secondaries[i];
      secondaries[set[k % set.size()]]->Assign(arrivals[k], tx);
      if (k == 0 && !stream.contract.empty() && result.failure_reason.empty()) {
        const VmStatus status = ctx.txs().at(tx).exec_status;
        if (status != VmStatus::kOk) {
          result.failure_reason = std::string(VmStatusName(status));
        }
      }
    }
  }

  size_t duration = 0;
  for (const WorkStream& stream : streams) {
    duration = std::max(duration, stream.trace.duration_seconds());
  }
  // Heavy workloads momentarily hold tens of thousands of in-flight events;
  // size the heap up-front so the hot loop never reallocates mid-burst.
  sim.Reserve(std::min<size_t>(total_txs, 65536));
  DIABLO_LOG(LogLevel::kInfo,
             StrFormat("primary: %zu txs over %zu s on %s/%s (%zu streams)", total_txs,
                       duration, params.name.c_str(), setup_.deployment.c_str(),
                       streams.size()));

  // Intra-cell parallelism (DIABLO_CELL_WORKERS): run the consensus engine's
  // rounds and the secondaries' submission batches on a windowed worker pool,
  // with the network's minimum link delay as the conservative lookahead.
  // Eligibility is split per shard owner:
  //  - The engine shards when its reschedule floor covers the lookahead, so
  //    every engine self-reschedule lands at or past the window edge. The
  //    engine shard also receives the one-shot submission arrivals
  //    (interface.cc), which mutate only engine-owned state.
  //  - Clients shard unless a retry policy or a loss schedule routes their
  //    submissions through shared mutable state (loss draws against the
  //    fault stream, client retry stats); those paths stay serial.
  // Fault mutations themselves are serial events — they publish at window
  // barriers against the frozen per-window snapshot — so faulted runs shard
  // too. Output is byte-identical at every worker count.
  const int cell_workers = ParallelRunner::CellWorkersFromEnv();
  if (cell_workers > 0) {
    bool any_loss = false;
    for (const FaultEvent& event : setup_.faults.events) {
      any_loss = any_loss || event.kind == FaultKind::kLoss;
    }
    const bool clients_shardable = !setup_.retry.enabled() && !any_loss;
    SimDuration lookahead = net.MinLinkDelay();
    if (clients_shardable && !setup_.faults.empty()) {
      // Under crash/partition schedules a sharded client's unreachable
      // submission falls back to a 500 ms arrival push (interface.cc); the
      // window span must stay at or below that floor.
      lookahead = std::min(lookahead, Milliseconds(500));
    }
    const SimDuration engine_floor = chain->MinRescheduleDelay();
    const bool engine_shardable = lookahead > 0 && engine_floor >= lookahead;
    if (lookahead > 0 && (clients_shardable || engine_shardable)) {
      sim.ConfigureCellWorkers(cell_workers, lookahead);
      if (engine_shardable) {
        chain->EnableEngineSharding(0);
      }
      // Checked build: tag the engine-owned mutable state with its
      // window-time owner — shard 0 when the engine shards, serial-only when
      // just the clients do — so any cross-shard access aborts instead of
      // silently racing.
      chain->context().BindShardOwners(engine_shardable ? 0u : kSerialShard);
      if (clients_shardable) {
        for (const auto& secondary : secondaries) {
          secondary->EnableSharding();
        }
      }
      if (net.HasDelaySpikeWindows()) {
        // Active delay spikes raise the true minimum link delay, so the
        // window span may widen to the spiked minimum — but never beyond the
        // floors that bound sharded pushes: the engine's reschedule floor
        // and the clients' 500 ms unreachable fallback. The second probe
        // closes the fixed point (MinLinkDelayInWindow is non-increasing in
        // `to`, so probing the wider window can only shrink the answer back
        // to a self-consistent span), and capping afterwards is sound for
        // the same monotonicity reason.
        SimDuration cap = engine_shardable ? engine_floor : Milliseconds(500);
        if (clients_shardable) {
          cap = std::min(cap, Milliseconds(500));
        }
        sim.SetLookaheadProvider([&net, lookahead, cap](SimTime head) {
          const SimDuration first =
              net.MinLinkDelayInWindow(head, head + lookahead);
          SimDuration span = first;
          if (first > lookahead) {
            span = std::min(first, net.MinLinkDelayInWindow(head, head + first));
          }
          return std::min(span, cap);
        });
      }
    }
  }

  chain->Start();
  for (const auto& secondary : secondaries) {
    secondary->Start();
  }

  const SimTime horizon = Seconds(static_cast<int64_t>(duration)) + setup_.drain;
  sim.RunUntil(horizon);
  result.events_executed = sim.events_executed();

  result.report = BuildReport(ctx.txs(), horizon, params.name, setup_.deployment,
                              workload_name, static_cast<double>(duration));
  result.chain_stats = ctx.stats();
  for (const auto& secondary : secondaries) {
    result.behind_schedule += secondary->behind_schedule();
  }
  if (!setup_.faults.empty() || setup_.retry.enabled()) {
    result.report.view_changes = ctx.stats().view_changes;
    result.report.blocks_abandoned = ctx.stats().blocks_abandoned;
    result.report.client_retries = connector.client_stats().retries;
    result.report.client_aborts = connector.client_stats().aborts;
    AddResilienceMetrics(&result.report, ctx.txs(), horizon,
                         setup_.faults.HealTimes());
  }
  // Evidence counters are emitted only when the schedule actually declares
  // a Byzantine window, so honest-fault reports don't change shape.
  bool any_byzantine = false;
  for (const FaultEvent& event : setup_.faults.events) {
    any_byzantine = any_byzantine || IsByzantine(event.kind);
  }
  if (any_byzantine) {
    result.report.byzantine = true;
    result.report.equivocations_seen = ctx.stats().equivocations_seen;
    result.report.double_votes_seen = ctx.stats().double_votes_seen;
    result.report.votes_withheld = ctx.stats().votes_withheld;
    result.report.txs_censored = ctx.stats().txs_censored;
    result.report.lazy_proposals = ctx.stats().lazy_proposals;
  }
  if (!setup_.results_json_path.empty()) {
    WriteResultsJsonFile(setup_.results_json_path, result.report, ctx.txs());
  }
  if (!setup_.results_csv_path.empty()) {
    WriteResultsCsvFile(setup_.results_csv_path, ctx.txs());
  }
  return result;
}

}  // namespace diablo
