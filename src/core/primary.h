// The diablo Primary (§4): builds the deployment, deploys contracts,
// pre-encodes the workload, partitions it across Secondaries collocated
// with the blockchain nodes, runs the benchmark and aggregates the results.
#ifndef SRC_CORE_PRIMARY_H_
#define SRC_CORE_PRIMARY_H_

#include <optional>
#include <string>
#include <vector>

#include "src/config/spec.h"
#include "src/core/interface.h"
#include "src/core/report.h"
#include "src/fault/schedule.h"
#include "src/workload/dapps.h"

#include "src/chain/node.h"

namespace diablo {

struct BenchmarkSetup {
  std::string chain = "quorum";
  // Overrides GetChainParams(chain) when set (ablations, custom chains).
  std::optional<ChainParams> params;
  std::string deployment = "testnet";
  int secondaries = 10;
  int accounts = 2000;  // §5.2: most configurations submit from 2,000 accounts
  uint64_t seed = 1;
  // Observation continues this long past the end of the trace.
  SimDuration drain = Seconds(120);
  // Multiplies every trace rate; < 1 shrinks heavy workloads for quick runs.
  double scale = 1.0;
  // When set, the primary writes the full results documents (summary plus
  // per-transaction records) before returning — the paper's --output flow.
  std::string results_json_path;
  std::string results_csv_path;
  // Fault schedule executed against the chain during the run. Empty (the
  // default) keeps every piece of fault machinery inert.
  FaultSchedule faults;
  // Client submission retry policy; the default is fire-and-forget.
  RetryPolicy retry;
};

struct RunResult {
  Report report;
  ChainStats chain_stats;
  // The DApp's contract cannot exist on this chain (Fig. 2's absent bars).
  bool unsupported = false;
  // Non-empty when invocations fail before commit, e.g. "budget exceeded"
  // (Fig. 5's X marks).
  std::string failure_reason;
  size_t behind_schedule = 0;
  // Simulator events executed by this run; the parallel runner aggregates
  // these into its events/sec figure.
  uint64_t events_executed = 0;
};

// One independent submission stream: a trace plus what each of its
// transactions does and where its clients sit. Workload-spec groups map to
// streams; the simple RunNative / RunDapp entry points build a single one.
struct WorkStream {
  Trace trace;
  std::string contract;              // empty = native transfers
  std::optional<Invocation> fixed;   // overrides the dapp mix when set
  std::string dapp_name;             // for the per-index invocation mix
  std::vector<Region> locations;     // client regions; empty = collocated spread
  // Endpoint view patterns (the spec's `view:`): ".*" = every node, or
  // node indices as decimal strings. Empty = the collocated default.
  std::vector<std::string> endpoints;
};

class Primary {
 public:
  explicit Primary(BenchmarkSetup setup);

  // Native transfers following `trace` (§6.2/§6.3 synthetic workloads).
  RunResult RunNative(const Trace& trace);

  // One of the five DApp workloads (§3).
  RunResult RunDapp(const DappWorkload& dapp);

  // A parsed workload specification file (§4); every group/behavior becomes
  // its own stream with its own clients and load ramp.
  RunResult RunSpec(const WorkloadSpec& spec);

  // General entry point: any mix of streams over one chain deployment.
  RunResult RunStreams(std::vector<WorkStream> streams,
                       const std::string& workload_name);

  const BenchmarkSetup& setup() const { return setup_; }

 private:
  BenchmarkSetup setup_;
};

}  // namespace diablo

#endif  // SRC_CORE_PRIMARY_H_
