// A diablo Secondary (§4): holds a pre-encoded transaction schedule, spawns
// logical worker clients and submits each transaction at its scheduled
// time, warning when it falls behind. Submissions are batched one event per
// second to keep the event queue small at tens of thousands of TPS; each
// transaction still carries its exact scheduled submission timestamp.
#ifndef SRC_CORE_SECONDARY_H_
#define SRC_CORE_SECONDARY_H_

#include <memory>
#include <vector>

#include "src/core/interface.h"

namespace diablo {

class Secondary {
 public:
  Secondary(int index, Region location, Simulation* sim,
            std::unique_ptr<BlockchainClient> client);

  int index() const { return index_; }
  Region location() const { return location_; }

  // Adds one pre-signed transaction to the schedule (must be called before
  // Start, times need not be sorted).
  void Assign(SimTime submit_time, TxId tx);

  // Tags this secondary's submission events with its index as their shard, so
  // the windowed scheduler may run different secondaries' batches on parallel
  // workers. Requires the client to be parallel-phase safe (owned RNG stream,
  // no shared mutable state). Must be called before Start.
  void EnableSharding() { sharded_ = true; }

  // Schedules the submission events.
  void Start();

  size_t assigned() const { return schedule_.size(); }
  size_t submitted() const { return submitted_; }
  // Submissions that ran later than their scheduled second (the Secondary's
  // "too late" warning counter).
  size_t behind_schedule() const { return behind_schedule_; }

 private:
  struct Planned {
    SimTime time;
    TxId tx;
  };

  void SubmitBatch(size_t first, size_t last);

  int index_;
  Region location_;
  Simulation* sim_;
  std::unique_ptr<BlockchainClient> client_;
  std::vector<Planned> schedule_;
  bool sharded_ = false;
  size_t submitted_ = 0;
  size_t behind_schedule_ = 0;
};

}  // namespace diablo

#endif  // SRC_CORE_SECONDARY_H_
