#include "src/chain/vote_round.h"

#include <algorithm>
#include <cmath>

namespace diablo {

PairwiseDelays::PairwiseDelays(Network* net, const std::vector<HostId>& hosts,
                               int64_t message_bytes)
    : n_(hosts.size()), delays_(n_ * n_, 0) {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      delays_[i * n_ + j] =
          i == j ? 0 : net->DelaySample(hosts[i], hosts[j], message_bytes);
    }
  }
}

SimDuration QuorumArrival(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t receiver,
                          size_t quorum, double hop_scale) {
  std::vector<SimDuration> arrivals;
  arrivals.reserve(send_times.size());
  for (size_t j = 0; j < send_times.size(); ++j) {
    if (send_times[j] == kUnreachable) {
      continue;
    }
    const SimDuration hop = delays.at(j, receiver);
    if (hop == kUnreachable) {
      continue;
    }
    arrivals.push_back(send_times[j] +
                       static_cast<SimDuration>(static_cast<double>(hop) * hop_scale));
  }
  if (arrivals.size() < quorum || quorum == 0) {
    return kUnreachable;
  }
  std::nth_element(arrivals.begin(), arrivals.begin() + static_cast<long>(quorum - 1),
                   arrivals.end());
  return arrivals[quorum - 1];
}

std::vector<SimDuration> QuorumArrivalAll(const PairwiseDelays& delays,
                                          const std::vector<SimDuration>& send_times,
                                          size_t quorum, double hop_scale) {
  std::vector<SimDuration> result(send_times.size(), kUnreachable);
  for (size_t i = 0; i < send_times.size(); ++i) {
    result[i] = QuorumArrival(delays, send_times, i, quorum, hop_scale);
  }
  return result;
}

double GossipHopScale(int n) {
  if (n <= 25) {
    return 1.0;
  }
  return 1.0 + std::log2(static_cast<double>(n) / 25.0);
}

int ByzantineQuorum(int n) {
  const int f = (n - 1) / 3;
  return 2 * f + 1;
}

SimDuration MedianDelay(const std::vector<SimDuration>& delays) {
  std::vector<SimDuration> reachable;
  reachable.reserve(delays.size());
  for (const SimDuration d : delays) {
    if (d != kUnreachable) {
      reachable.push_back(d);
    }
  }
  if (reachable.empty()) {
    return kUnreachable;
  }
  const size_t mid = reachable.size() / 2;
  std::nth_element(reachable.begin(), reachable.begin() + static_cast<long>(mid),
                   reachable.end());
  return reachable[mid];
}

}  // namespace diablo
