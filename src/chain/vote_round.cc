#include "src/chain/vote_round.h"

#include <algorithm>
#include <cmath>

#if defined(DIABLO_CHECKED)
#include <atomic>
#endif

#include "src/support/check.h"
#include "src/support/profile.h"

namespace diablo {
namespace {

// Exact selection of the k-th smallest (0-based) of v[0..cnt) by insertion
// sort; the branch-predictable choice for the short inputs (committees,
// devnet-sized deployments) where partitioning overhead dominates.
SimDuration InsertionSelect(SimDuration* v, size_t cnt, size_t k) {
  for (size_t i = 1; i < cnt; ++i) {
    const SimDuration x = v[i];
    size_t j = i;
    for (; j > 0 && v[j - 1] > x; --j) {
      v[j] = v[j - 1];
    }
    v[j] = x;
  }
  return v[k];
}

// Selection within an already-filtered window: the k-th overall sits kk deep
// in the w values of [center-span, center+span]. Exact regardless of how the
// window was produced; also recenters/retunes the hint for the next round.
SimDuration SelectFromWindow(SimDuration* win, size_t w, size_t kk, SelectionHint& hint) {
  SimDuration ans;
  if (w <= 32) {
    ans = InsertionSelect(win, w, kk);
  } else {
    std::nth_element(win, win + static_cast<long>(kk), win + static_cast<long>(w));
    ans = win[kk];
  }
  hint.center = ans;
  // Proportional control on the window population: (w, span) measures the
  // local density directly, so steer the next span toward capturing ~20
  // values — big enough to absorb drift between consecutive selections,
  // small enough that selection stays in cheap insertion-sort territory.
  hint.span = hint.span * 20 / static_cast<SimDuration>(w) + 512;
  return ans;
}

// nth_element fallback (first round, regime change), reseeding the window
// from the local spread above the answer so the first carried round already
// has a tight-but-safe span.
SimDuration SelectFallback(SimDuration* buf, size_t cnt, size_t k, SelectionHint& hint) {
  std::nth_element(buf, buf + static_cast<long>(k), buf + static_cast<long>(cnt));
  const SimDuration ans = buf[k];
  const size_t hi_i = std::min(k + 12, cnt - 1);
  if (hi_i > k) {
    std::nth_element(buf + static_cast<long>(k) + 1, buf + static_cast<long>(hi_i),
                     buf + static_cast<long>(cnt));
  }
  hint.center = ans;
  hint.span = 2 * (buf[hi_i] - ans) + 1024;
  hint.valid = true;
  return ans;
}

// Exact k-th smallest with a carried value window. nth_element on
// fresh-per-round data is branch-misprediction bound; consecutive rounds of
// the same vote stage select from near-identical distributions, so we keep a
// [center-span, center+span] window around the last answer, copy only the
// values inside it (a predictable streaming pass), and select within. When
// the window misses (first round, regime change) we fall back to nth_element
// and re-derive the window from the freshly partitioned buffer. The returned
// value is the exact order statistic either way — the hint only decides how
// much data the selection touches.
SimDuration WindowSelect(SimDuration* buf, size_t cnt, size_t k, SimDuration* win,
                         SelectionHint& hint) {
  if (cnt <= 24) {
    return InsertionSelect(buf, cnt, k);
  }
  if (hint.valid) {
    const SimDuration lo = hint.center - hint.span;
    const SimDuration hi = hint.center + hint.span;
    size_t below = 0;
    size_t w = 0;
    for (size_t i = 0; i < cnt; ++i) {
      const SimDuration v = buf[i];
      below += v < lo;
      win[w] = v;
      w += static_cast<size_t>((v >= lo) & (v <= hi));
    }
    if (k >= below && k - below < w) {
      return SelectFromWindow(win, w, k - below, hint);
    }
    hint.valid = false;
  }
  return SelectFallback(buf, cnt, k, hint);
}

// Fills buf with the arrival times of all reachable votes at `receiver` and
// returns how many there are. The hop_scale multiply runs in integer
// arithmetic when that is provably bit-exact (integral scale, products below
// 2^52 so the double rounding the reference formula goes through is the
// identity); the community/consortium scales (1.0, 4.0) qualify, so the
// common scans vectorize.
size_t ScanArrivals(const PairwiseDelays& delays,
                    const std::vector<SimDuration>& send_times, size_t receiver,
                    double hop_scale, SimDuration* buf) {
  const size_t n = send_times.size();
  const SimDuration* col = delays.column(receiver);
  const SimDuration* sends = send_times.data();
  size_t cnt = 0;
  const double floor_scale = std::floor(hop_scale);
  const bool integral = hop_scale == floor_scale && hop_scale >= 1.0 && hop_scale < 65536.0;
  const SimDuration int_scale = integral ? static_cast<SimDuration>(hop_scale) : 1;
  // Both loops compact branchlessly: every element is computed and written,
  // the write cursor only advances for reachable pairs. Unreachable lanes
  // (kUnreachable == -1) produce small garbage values that the next write
  // overwrites, so there is no overflow hazard and the loops vectorize.
  if (integral && delays.max_delay() <= (int64_t{1} << 52) / int_scale) {
    for (size_t j = 0; j < n; ++j) {
      const SimDuration s = sends[j];
      const SimDuration hop = col[j];
      buf[cnt] = s + hop * int_scale;
      cnt += static_cast<size_t>((s != kUnreachable) & (hop != kUnreachable));
    }
    return cnt;
  }
  for (size_t j = 0; j < n; ++j) {
    const SimDuration s = sends[j];
    const SimDuration hop = col[j];
    buf[cnt] = s + static_cast<SimDuration>(static_cast<double>(hop) * hop_scale);
    cnt += static_cast<size_t>((s != kUnreachable) & (hop != kUnreachable));
  }
  return cnt;
}

// Fused scan + window filter for the all-receivers reduction: one lean pass
// over the senders counts reachable arrivals, counts values below the carried
// window, and compacts the in-window values into win — without materialising
// the full arrival set. On a window hit (the steady-state case) that single
// pass is all the data movement a receiver costs; only a window miss pays a
// second, plain scan to fill buf for the nth_element fallback.
struct WindowedScan {
  size_t cnt = 0;
  size_t below = 0;
  size_t w = 0;
};

WindowedScan ScanArrivalsWindowed(const PairwiseDelays& delays,
                                  const std::vector<SimDuration>& send_times,
                                  size_t receiver, double hop_scale, SimDuration* win,
                                  SimDuration lo, SimDuration hi) {
  const size_t n = send_times.size();
  const SimDuration* col = delays.column(receiver);
  const SimDuration* sends = send_times.data();
  WindowedScan scan;
  const double floor_scale = std::floor(hop_scale);
  const bool integral = hop_scale == floor_scale && hop_scale >= 1.0 && hop_scale < 65536.0;
  const SimDuration int_scale = integral ? static_cast<SimDuration>(hop_scale) : 1;
  if (integral && delays.max_delay() <= (int64_t{1} << 52) / int_scale) {
    for (size_t j = 0; j < n; ++j) {
      const SimDuration s = sends[j];
      const SimDuration hop = col[j];
      const SimDuration v = s + hop * int_scale;
      const size_t keep =
          static_cast<size_t>((s != kUnreachable) & (hop != kUnreachable));
      scan.cnt += keep;
      scan.below += keep & static_cast<size_t>(v < lo);
      win[scan.w] = v;
      scan.w += keep & static_cast<size_t>((v >= lo) & (v <= hi));
    }
    return scan;
  }
  for (size_t j = 0; j < n; ++j) {
    const SimDuration s = sends[j];
    const SimDuration hop = col[j];
    const SimDuration v = s + static_cast<SimDuration>(static_cast<double>(hop) * hop_scale);
    const size_t keep = static_cast<size_t>((s != kUnreachable) & (hop != kUnreachable));
    scan.cnt += keep;
    scan.below += keep & static_cast<size_t>(v < lo);
    win[scan.w] = v;
    scan.w += keep & static_cast<size_t>((v >= lo) & (v <= hi));
  }
  return scan;
}

#if defined(DIABLO_CHECKED)
// Sampled cross-check of the adaptive-window selector: the carried hints are
// pure accelerators, so every answer must equal a from-scratch nth_element
// over a fresh arrival scan. The tick is process-wide (cells run on worker
// threads in parallel sweeps), relaxed, and never feeds back into results,
// so a nondeterministic sampling pattern is harmless. 257 is prime to avoid
// phase-locking with common validator counts.
std::atomic<uint64_t> g_select_tick{0};
constexpr uint64_t kSelectCheckCadence = 257;

// Single funnel for the cadence tick so the one deliberate global write
// carries the one suppression (the windowed quorum kernels are
// parallel-phase-reachable, and detlint D7 rightly flags the write).
bool SelectCheckDue() {
  // detlint: allow(D7, checked-build-only sampling tick: relaxed atomic that only decides when the read-only cross-check runs and never feeds back into results)
  return g_select_tick.fetch_add(1, std::memory_order_relaxed) % kSelectCheckCadence ==
         0;
}

void CheckQuorumSelection(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t receiver,
                          double hop_scale, size_t k, SimDuration got) {
  std::vector<SimDuration> ref(send_times.size());
  const size_t cnt = ScanArrivals(delays, send_times, receiver, hop_scale, ref.data());
  DIABLO_CHECK(k < cnt, "selection rank escaped the reachable arrival set");
  ref.resize(cnt);
  std::nth_element(ref.begin(), ref.begin() + static_cast<long>(k), ref.end());
  DIABLO_CHECK(ref[k] == got,
               "windowed quorum selection disagrees with nth_element reference");
}
#endif

}  // namespace

PairwiseDelays::PairwiseDelays(Network* net, const std::vector<HostId>& hosts,
                               int64_t message_bytes)
    : n_(hosts.size()) {
  net->FillPairwiseDelays(hosts, message_bytes, &delays_);
  BuildTranspose();
}

PairwiseDelays::PairwiseDelays(size_t n, std::vector<SimDuration> row_major)
    : n_(n), delays_(std::move(row_major)) {
  if (delays_.size() != n_ * n_) {
    CheckFailed(__FILE__, __LINE__, "row_major.size() == n * n",
                "explicit pairwise matrix has the wrong element count");
  }
  BuildTranspose();
}

void PairwiseDelays::BuildTranspose() {
  by_receiver_.resize(n_ * n_);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      const SimDuration d = delays_[i * n_ + j];
      by_receiver_[j * n_ + i] = d;
      if (d != kUnreachable && d > max_delay_) {
        max_delay_ = d;
      }
    }
  }
}

VoteDelays::VoteDelays(Network* net, const std::vector<HostId>& hosts,
                       int64_t message_bytes, size_t dense_threshold)
    : n_(hosts.size()) {
  if (n_ < dense_threshold) {
    matrix_ = std::make_unique<PairwiseDelays>(net, hosts, message_bytes);
  } else {
    streamed_ = std::make_unique<StreamedDelays>(net, hosts, message_bytes);
  }
}

size_t VoteDelays::ApproxBytes() const {
  if (matrix_ != nullptr) {
    // Row-major matrix plus its transpose.
    return sizeof(*this) + sizeof(PairwiseDelays) +
           2 * n_ * n_ * sizeof(SimDuration);
  }
  return sizeof(*this) + streamed_->ApproxBytes();
}

SimDuration QuorumArrival(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t receiver,
                          size_t quorum, double hop_scale) {
  MessagePlaneScratch scratch;
  return QuorumArrivalInto(delays, send_times, receiver, quorum, hop_scale, &scratch);
}

SimDuration QuorumArrivalInto(const PairwiseDelays& delays,
                              const std::vector<SimDuration>& send_times,
                              size_t receiver, size_t quorum, double hop_scale,
                              MessagePlaneScratch* scratch, int hint_slot) {
  if (quorum == 0) {
    return kUnreachable;
  }
  const size_t n = send_times.size();
  scratch->buf.resize(n);
  scratch->win.resize(n);
  const size_t cnt = ScanArrivals(delays, send_times, receiver, hop_scale,
                                  scratch->buf.data());
  if (cnt < quorum) {
    return kUnreachable;
  }
  const SimDuration selected =
      WindowSelect(scratch->buf.data(), cnt, quorum - 1, scratch->win.data(),
                   scratch->quorum_hint[hint_slot]);
#if defined(DIABLO_CHECKED)
  if (SelectCheckDue()) {
    CheckQuorumSelection(delays, send_times, receiver, hop_scale, quorum - 1, selected);
  }
#endif
  return selected;
}

std::vector<SimDuration> QuorumArrivalAll(const PairwiseDelays& delays,
                                          const std::vector<SimDuration>& send_times,
                                          size_t quorum, double hop_scale) {
  MessagePlaneScratch scratch;
  std::vector<SimDuration> result;
  QuorumArrivalAllInto(delays, send_times, quorum, hop_scale, &scratch, &result);
  return result;
}

void QuorumArrivalAllInto(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t quorum,
                          double hop_scale, MessagePlaneScratch* scratch,
                          std::vector<SimDuration>* result, int hint_slot) {
  const size_t n = send_times.size();
  result->assign(n, kUnreachable);
  profile::CountVoteRound();
  if (quorum == 0) {
    return;
  }
  scratch->buf.resize(n);
  scratch->win.resize(n);
  SelectionHint& hint = scratch->quorum_hint[hint_slot];
  SimDuration* buf = scratch->buf.data();
  SimDuration* win = scratch->win.data();
  SimDuration* out = result->data();
  const size_t k = quorum - 1;
  for (size_t receiver = 0; receiver < n; ++receiver) {
    if (!hint.valid) {
      const size_t cnt = ScanArrivals(delays, send_times, receiver, hop_scale, buf);
      if (cnt < quorum) {
        continue;
      }
      out[receiver] = WindowSelect(buf, cnt, k, win, hint);
      continue;
    }
    WindowedScan scan = ScanArrivalsWindowed(
        delays, send_times, receiver, hop_scale, win,
        hint.center - hint.span, hint.center + hint.span);
    if (scan.cnt < quorum) {
      continue;
    }
    if (scan.cnt > 24) {
      SimDuration span_cap = 0;
      if (k < scan.below || k - scan.below >= scan.w) {
        // Window missed the target rank: widen once and rescan. A second
        // lean pass is far cheaper than materialising the full arrival set
        // for the nth_element fallback, and the widened window nearly always
        // recaptures the rank since the distribution drifts slowly. The
        // widening is transient — the span is capped back after selection so
        // one outlier does not inflate every later window.
        span_cap = hint.span * 2 + 1024;
        hint.span = hint.span * 4 + 4096;
        scan = ScanArrivalsWindowed(delays, send_times, receiver, hop_scale, win,
                                    hint.center - hint.span, hint.center + hint.span);
      }
      if (k >= scan.below && k - scan.below < scan.w) {
        out[receiver] = SelectFromWindow(win, scan.w, k - scan.below, hint);
        if (span_cap != 0 && hint.span > span_cap) {
          hint.span = span_cap;
        }
        continue;
      }
    }
    // Window miss (or tiny arrival set): pay a second scan to materialise the
    // full arrival set, then select exactly as the cold path would.
    const size_t cnt = ScanArrivals(delays, send_times, receiver, hop_scale, buf);
    if (cnt <= 24) {
      out[receiver] = InsertionSelect(buf, cnt, k);
      continue;
    }
    hint.valid = false;
    out[receiver] = SelectFallback(buf, cnt, k, hint);
  }
#if defined(DIABLO_CHECKED)
  // Second pass so every assignment path above (windowed hit, widened retry,
  // insertion select, fallback) funnels through one reference comparison.
  for (size_t receiver = 0; receiver < n; ++receiver) {
    if (out[receiver] == kUnreachable) {
      continue;
    }
    if (!SelectCheckDue()) {
      continue;
    }
    CheckQuorumSelection(delays, send_times, receiver, hop_scale, k, out[receiver]);
  }
#endif
}

double GossipHopScale(int n) {
  if (n <= 25) {
    return 1.0;
  }
  return 1.0 + std::log2(static_cast<double>(n) / 25.0);
}

int ByzantineQuorum(int n) {
  const int f = (n - 1) / 3;
  return 2 * f + 1;
}

SimDuration MedianDelay(const std::vector<SimDuration>& delays) {
  MessagePlaneScratch scratch;
  return MedianDelayInto(delays, &scratch);
}

SimDuration MedianDelayInto(const std::vector<SimDuration>& delays,
                            MessagePlaneScratch* scratch) {
  const size_t n = delays.size();
  scratch->buf.resize(n);
  scratch->win.resize(n);
  SimDuration* buf = scratch->buf.data();
  size_t cnt = 0;
  for (const SimDuration d : delays) {
    buf[cnt] = d;
    cnt += static_cast<size_t>(d != kUnreachable);
  }
  if (cnt == 0) {
    return kUnreachable;
  }
  const SimDuration median =
      WindowSelect(buf, cnt, cnt / 2, scratch->win.data(), scratch->median_hint);
#if defined(DIABLO_CHECKED)
  if (SelectCheckDue()) {
    std::vector<SimDuration> ref;
    ref.reserve(delays.size());
    for (const SimDuration d : delays) {
      if (d != kUnreachable) {
        ref.push_back(d);
      }
    }
    std::nth_element(ref.begin(), ref.begin() + static_cast<long>(ref.size() / 2),
                     ref.end());
    DIABLO_CHECK(ref[ref.size() / 2] == median,
                 "windowed median disagrees with nth_element reference");
  }
#endif
  return median;
}

namespace {

#if defined(DIABLO_CHECKED)
// Cross-check of the streamed quorum kernels: materialise the model into a
// dense matrix (every at(i, j) is a pure function, so this reproduces the
// exact delays the streaming kernel saw) and replay the reduction through
// the dense path. Gated to small n — the check is O(n²) by construction.
constexpr size_t kStreamCheckMaxN = 256;

void CheckStreamedQuorum(const StreamedDelays& model,
                         const std::vector<SimDuration>& send_times,
                         size_t receiver, size_t quorum, double hop_scale,
                         SimDuration got) {
  const size_t n = model.size();
  if (n > kStreamCheckMaxN) {
    return;
  }
  std::vector<SimDuration> dense(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dense[i * n + j] = model.at(i, j);
    }
  }
  const PairwiseDelays matrix(n, std::move(dense));
  MessagePlaneScratch scratch;
  const SimDuration ref =
      QuorumArrivalInto(matrix, send_times, receiver, quorum, hop_scale, &scratch);
  DIABLO_CHECK(ref == got,
               "streamed quorum kernel disagrees with the dense matrix path");
}
#endif

}  // namespace

SimDuration QuorumArrivalInto(const VoteDelays& delays,
                              const std::vector<SimDuration>& send_times,
                              size_t receiver, size_t quorum, double hop_scale,
                              MessagePlaneScratch* scratch, int hint_slot) {
  if (delays.dense()) {
    return QuorumArrivalInto(delays.matrix(), send_times, receiver, quorum,
                             hop_scale, scratch, hint_slot);
  }
  const SimDuration got =
      QuorumArrivalLargeN(delays.streamed(), send_times.data(), send_times.size(),
                          receiver, quorum, hop_scale, &scratch->buf);
#if defined(DIABLO_CHECKED)
  if (quorum > 0 && SelectCheckDue()) {
    CheckStreamedQuorum(delays.streamed(), send_times, receiver, quorum, hop_scale,
                        got);
  }
#endif
  return got;
}

void QuorumArrivalAllInto(const VoteDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t quorum,
                          double hop_scale, MessagePlaneScratch* scratch,
                          std::vector<SimDuration>* result, int hint_slot) {
  if (delays.dense()) {
    QuorumArrivalAllInto(delays.matrix(), send_times, quorum, hop_scale, scratch,
                         result, hint_slot);
    return;
  }
  const size_t n = send_times.size();
  result->assign(n, kUnreachable);
  profile::CountVoteRound();
  if (quorum == 0) {
    return;
  }
  for (size_t receiver = 0; receiver < n; ++receiver) {
    (*result)[receiver] =
        QuorumArrivalLargeN(delays.streamed(), send_times.data(), n, receiver,
                            quorum, hop_scale, &scratch->buf);
  }
#if defined(DIABLO_CHECKED)
  for (size_t receiver = 0; receiver < n; ++receiver) {
    if ((*result)[receiver] == kUnreachable) {
      continue;
    }
    if (!SelectCheckDue()) {
      continue;
    }
    CheckStreamedQuorum(delays.streamed(), send_times, receiver, quorum, hop_scale,
                        (*result)[receiver]);
  }
#endif
}

void QuorumArrivalCommitteeInto(const VoteDelays& delays,
                                const std::vector<uint32_t>& senders,
                                const std::vector<SimDuration>& sender_times,
                                const std::vector<uint32_t>& receivers, size_t n,
                                size_t quorum, double hop_scale,
                                MessagePlaneScratch* scratch,
                                std::vector<SimDuration>* result, int hint_slot) {
  result->assign(n, kUnreachable);
  profile::CountVoteRound();
  if (quorum == 0) {
    return;
  }
  VoteBitset& seen = scratch->receiver_bits;
  seen.Reset(n);
  if (delays.dense()) {
    // Widen the compact sender list into a full send-times vector once, then
    // run the exact dense single-receiver kernel per listed receiver.
    scratch->expanded.assign(n, kUnreachable);
    for (size_t j = 0; j < senders.size(); ++j) {
      scratch->expanded[senders[j]] = sender_times[j];
    }
    for (const uint32_t r : receivers) {
      if (!seen.Set(r)) {
        continue;
      }
      (*result)[r] = QuorumArrivalInto(delays.matrix(), scratch->expanded, r,
                                       quorum, hop_scale, scratch, hint_slot);
    }
    return;
  }
  for (const uint32_t r : receivers) {
    if (!seen.Set(r)) {
      continue;
    }
    (*result)[r] = QuorumArrivalLargeN(delays.streamed(), senders.data(),
                                       sender_times.data(), senders.size(), r,
                                       quorum, hop_scale, &scratch->buf);
#if defined(DIABLO_CHECKED)
    if ((*result)[r] != kUnreachable && SelectCheckDue()) {
      std::vector<SimDuration> full(n, kUnreachable);
      for (size_t j = 0; j < senders.size(); ++j) {
        full[senders[j]] = sender_times[j];
      }
      CheckStreamedQuorum(delays.streamed(), full, r, quorum, hop_scale,
                          (*result)[r]);
    }
#endif
  }
}

}  // namespace diablo
