#include "src/chain/validator_table.h"

#include <algorithm>

namespace diablo {

ValidatorTable::ValidatorTable(const DeploymentConfig& deployment) {
  region_.reserve(static_cast<size_t>(deployment.node_count));
  for (int i = 0; i < deployment.node_count; ++i) {
    region_.push_back(static_cast<uint8_t>(deployment.NodeRegion(i)));
  }
}

void ValidatorTable::SetDown(int index, bool down) {
  if (down_.empty()) {
    if (!down) {
      return;
    }
    down_.Reset(region_.size());
  }
  down_.Assign(static_cast<size_t>(index), down);
}

void ValidatorTable::SetCpuFactor(int index, double factor) {
  const uint32_t key = static_cast<uint32_t>(index);
  auto it = std::lower_bound(
      cpu_overrides_.begin(), cpu_overrides_.end(), key,
      [](const std::pair<uint32_t, double>& e, uint32_t k) { return e.first < k; });
  if (factor == 1.0) {
    if (it != cpu_overrides_.end() && it->first == key) {
      cpu_overrides_.erase(it);
    }
    return;
  }
  if (it != cpu_overrides_.end() && it->first == key) {
    it->second = factor;
    return;
  }
  cpu_overrides_.insert(it, {key, factor});
}

void ValidatorTable::SetAdversary(int index, uint8_t bits, bool on) {
  if (adversary_.empty()) {
    if (!on) {
      return;
    }
    adversary_.assign(region_.size(), 0);
  }
  uint8_t& entry = adversary_[static_cast<size_t>(index)];
  const bool was_set = entry != 0;
  if (on) {
    entry = static_cast<uint8_t>(entry | bits);
  } else {
    entry = static_cast<uint8_t>(entry & ~bits);
  }
  const bool now_set = entry != 0;
  if (now_set && !was_set) {
    ++adversary_count_;
  } else if (!now_set && was_set) {
    --adversary_count_;
  }
}

double ValidatorTable::CpuFactor(int index) const {
  const uint32_t key = static_cast<uint32_t>(index);
  const auto it = std::lower_bound(
      cpu_overrides_.begin(), cpu_overrides_.end(), key,
      [](const std::pair<uint32_t, double>& e, uint32_t k) { return e.first < k; });
  if (it != cpu_overrides_.end() && it->first == key) {
    return it->second;
  }
  return 1.0;
}

}  // namespace diablo
