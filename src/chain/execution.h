// Execution cost model and the contract cost oracle.
//
// Nodes execute blocks at a per-chain rate of gas per second per vCPU. To
// keep the discrete-event simulation tractable at millions of transactions,
// contract calls are NOT interpreted per transaction: the CostOracle runs
// each (contract, function, dialect) once in the real VM, caches the
// measured gas / op count / status, and the chain charges the cached cost
// thereafter. Unit tests and the micro benches exercise the interpreter
// directly; all contracts in the suite have call-invariant cost profiles.
#ifndef SRC_CHAIN_EXECUTION_H_
#define SRC_CHAIN_EXECUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/contracts/contracts.h"
#include "src/support/time.h"
#include "src/vm/interpreter.h"
#include "src/vm/state.h"

namespace diablo {

struct ExecutionModel {
  // Chain-specific execution speed on one reference vCPU.
  double gas_per_second_per_vcpu = 100e6;

  SimDuration ExecTime(int64_t gas, int vcpus) const {
    const double seconds =
        static_cast<double>(gas) / (gas_per_second_per_vcpu * static_cast<double>(vcpus));
    return SecondsF(seconds);
  }
};

// Cost profile of one contract function under one dialect.
struct CallProfile {
  VmStatus status = VmStatus::kOk;
  int64_t gas = 0;
  int64_t ops = 0;
  int32_t calldata_bytes = 0;  // wire size contribution of the call payload
};

// Deploys contracts for one chain instance (dialect-specific) and serves
// cached per-function cost profiles.
class CostOracle {
 public:
  explicit CostOracle(VmDialect dialect);

  // Deploys (compiles + runs init). Returns the contract index used by
  // Transaction::contract, or -1 when the contract cannot be deployed on
  // this dialect (e.g. DecentralizedYoutube on the AVM, §5.2).
  int Deploy(const ContractDef& def);

  // Profile of calling `function` with `args`; measured on first use.
  const CallProfile& Profile(int contract_index, const std::string& function,
                             const std::vector<int64_t>& args);

  // Function-name table per contract (Transaction::function indexes it).
  int FunctionIndex(int contract_index, const std::string& function);
  const std::string& FunctionName(int contract_index, int function_index) const;

  VmDialect dialect() const { return dialect_; }
  size_t contract_count() const { return deployed_.size(); }
  const std::string& ContractName(int contract_index) const;

 private:
  struct Deployed {
    ContractDef def;
    Program program;
    ContractState state;
    std::vector<std::string> functions;
    std::vector<CallProfile> profiles;
    std::vector<bool> measured;
  };

  VmDialect dialect_;
  std::vector<std::unique_ptr<Deployed>> deployed_;
};

// Intrinsic gas of a native transfer (no VM execution) and its wire size.
int64_t NativeTransferGas(VmDialect dialect);
inline constexpr int32_t kNativeTransferBytes = 110;

}  // namespace diablo

#endif  // SRC_CHAIN_EXECUTION_H_
