#include "src/chain/block.h"

namespace diablo {

void Ledger::Append(Block block) {
  total_txs_ += block.tx_count;
  blocks_.push_back(block);
}

Digest256 Ledger::HeaderChainDigest() const {
  Sha256 hasher;
  for (const Block& block : blocks_) {
    hasher.Update(&block.height, sizeof(block.height));
    hasher.Update(&block.proposer, sizeof(block.proposer));
    const uint64_t n = block.tx_count;
    hasher.Update(&n, sizeof(n));
  }
  return hasher.Finish();
}

}  // namespace diablo
