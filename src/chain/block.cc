#include "src/chain/block.h"

namespace diablo {

void Ledger::Append(Block block) {
  total_txs_ += block.txs.size();
  blocks_.push_back(std::move(block));
}

Digest256 Ledger::HeaderChainDigest() const {
  Sha256 hasher;
  for (const Block& block : blocks_) {
    hasher.Update(&block.height, sizeof(block.height));
    hasher.Update(&block.proposer, sizeof(block.proposer));
    const uint64_t n = block.txs.size();
    hasher.Update(&n, sizeof(n));
  }
  return hasher.Finish();
}

}  // namespace diablo
