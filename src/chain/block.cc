#include "src/chain/block.h"

namespace diablo {

#if defined(DIABLO_CHECKED)
namespace {

// One chain link: digest of (parent digest, height, proposer, tx_count) —
// the fields that are immutable once appended. finalized_at is deliberately
// excluded: forkable chains finalize blocks retroactively.
Digest256 ChainLink(const Digest256& parent, const Block& block) {
  Sha256 hasher;
  hasher.Update(parent.data(), parent.size());
  hasher.Update(&block.height, sizeof(block.height));
  hasher.Update(&block.proposer, sizeof(block.proposer));
  const uint64_t n = block.tx_count;
  hasher.Update(&n, sizeof(n));
  return hasher.Finish();
}

}  // namespace
#endif

void Ledger::Append(Block block) {
  guard_.AssertAccess();
  // Heights come from per-protocol round counters, which skip numbers when a
  // round fails to seal (crashed leader, lost quorum) — so the chain is
  // strictly increasing, not contiguous.
  DIABLO_CHECK(blocks_.empty() ? block.height >= 1
                               : block.height > blocks_.back().height,
               "ledger heights must be appended in strictly increasing order");
  DIABLO_CHECK(block.finalized_at < 0 || block.finalized_at >= block.proposed_at,
               "a block cannot finalize before it was proposed");
  DIABLO_CHECK(block.proposed_at >= 0, "block proposal times are simulation times");
  total_txs_ += block.tx_count;
  blocks_.push_back(block);
#if defined(DIABLO_CHECKED)
  head_digest_ = ChainLink(head_digest_, block);
  if (++append_tick_ % 256 == 0) {
    Digest256 replay{};
    for (const Block& b : blocks_) {
      replay = ChainLink(replay, b);
    }
    DIABLO_CHECK(replay == head_digest_,
                 "ledger parent-hash chain no longer matches the stored headers");
  }
#endif
}

Digest256 Ledger::HeaderChainDigest() const {
  Sha256 hasher;
  for (const Block& block : blocks_) {
    hasher.Update(&block.height, sizeof(block.height));
    hasher.Update(&block.proposer, sizeof(block.proposer));
    const uint64_t n = block.tx_count;
    hasher.Update(&n, sizeof(n));
  }
  return hasher.Finish();
}

}  // namespace diablo
