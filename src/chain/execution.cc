#include "src/chain/execution.h"

#include <cstdio>
#include <cstdlib>

namespace diablo {

CostOracle::CostOracle(VmDialect dialect) : dialect_(dialect) {}

int CostOracle::Deploy(const ContractDef& def) {
  auto deployed = std::make_unique<Deployed>();
  deployed->def = def;
  deployed->program = CompileContract(def);
  for (const FunctionEntry& f : deployed->program.functions) {
    deployed->functions.push_back(f.name);
  }
  deployed->profiles.resize(deployed->functions.size());
  deployed->measured.resize(deployed->functions.size(), false);

  const int64_t init_entry = deployed->program.EntryOf("init");
  if (init_entry >= 0) {
    ExecRequest request;
    request.program = &deployed->program;
    request.function = "init";
    request.entry = init_entry;
    request.args = def.init_args;
    request.caller = 0;
    request.state = &deployed->state;
    request.dialect = dialect_;
    const ExecResult result = Execute(request);
    // Deployment fails when init itself cannot run (never the case for the
    // bundled contracts; init paths fit every dialect's budget).
    if (result.status != VmStatus::kOk && result.status != VmStatus::kBudgetExceeded) {
      return -1;
    }
    if (result.status == VmStatus::kBudgetExceeded) {
      // AVM-style budgets can reject heavy init paths; deployment tooling
      // splits those, so charge it as successful but note nothing.
      ExecRequest retry = request;
      retry.dialect = VmDialect::kGeth;
      if (Execute(retry).status != VmStatus::kOk) {
        return -1;
      }
      // Re-run the init writes under geth rules so state is populated.
      deployed->state = ContractState();
      Execute(retry);
    }
  }

  // The paper could not implement DecentralizedYoutube in TEAL because of
  // the 128-byte state limit: detect payload-bearing contracts that can
  // never store their data and refuse deployment.
  if (LimitsOf(dialect_).max_kv_bytes > 0 &&
      deployed->program.EntryOf("upload") >= 0) {
    return -1;
  }

  deployed_.push_back(std::move(deployed));
  return static_cast<int>(deployed_.size() - 1);
}

const CallProfile& CostOracle::Profile(int contract_index, const std::string& function,
                                       const std::vector<int64_t>& args) {
  Deployed& deployed = *deployed_[static_cast<size_t>(contract_index)];
  const int fn = FunctionIndex(contract_index, function);
  if (fn < 0) {
    std::fprintf(stderr, "no function '%s' in contract '%s'\n", function.c_str(),
                 deployed.def.name.c_str());
    std::abort();
  }
  CallProfile& profile = deployed.profiles[static_cast<size_t>(fn)];
  if (!deployed.measured[static_cast<size_t>(fn)]) {
    ExecRequest request;
    request.program = &deployed.program;
    request.function = function;
    // deployed.functions mirrors program.functions, so the FunctionIndex
    // lookup above already names the entry — no second scan in Execute.
    request.entry = deployed.program.functions[static_cast<size_t>(fn)].offset;
    request.args = args;
    request.caller = 1;
    request.state = &deployed.state;
    request.dialect = dialect_;
    const ExecResult result = Execute(request);
    profile.status = result.status;
    profile.gas = result.gas_used;
    profile.ops = result.ops_executed;
    profile.calldata_bytes = static_cast<int32_t>(8 * args.size() + 16);
    deployed.measured[static_cast<size_t>(fn)] = true;
  }
  return profile;
}

int CostOracle::FunctionIndex(int contract_index, const std::string& function) {
  const Deployed& deployed = *deployed_[static_cast<size_t>(contract_index)];
  for (size_t i = 0; i < deployed.functions.size(); ++i) {
    if (deployed.functions[i] == function) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const std::string& CostOracle::FunctionName(int contract_index, int function_index) const {
  return deployed_[static_cast<size_t>(contract_index)]
      ->functions[static_cast<size_t>(function_index)];
}

const std::string& CostOracle::ContractName(int contract_index) const {
  return deployed_[static_cast<size_t>(contract_index)]->def.name;
}

int64_t NativeTransferGas(VmDialect dialect) {
  return LimitsOf(dialect).intrinsic_gas;
}

}  // namespace diablo
