#include "src/chain/tx.h"

namespace diablo {

std::string_view TxPhaseName(TxPhase phase) {
  switch (phase) {
    case TxPhase::kCreated:
      return "created";
    case TxPhase::kSubmitted:
      return "submitted";
    case TxPhase::kCommitted:
      return "committed";
    case TxPhase::kDropped:
      return "dropped";
    case TxPhase::kAborted:
      return "aborted";
  }
  return "?";
}

TxId TxStore::Add(const Transaction& tx) {
  txs_.push_back(tx);
  gas_.push_back(tx.gas);
  bytes_.push_back(tx.size_bytes);
  return static_cast<TxId>(txs_.size() - 1);
}

std::vector<size_t> TxStore::PhaseCounts() const {
  std::vector<size_t> counts(5, 0);
  for (const Transaction& tx : txs_) {
    ++counts[static_cast<size_t>(tx.phase)];
  }
  return counts;
}

}  // namespace diablo
