// ChainContext: everything one simulated blockchain deployment owns — the
// node hosts, the shared transaction arena, the distributed mempool, the
// ledger — plus the helpers consensus engines use to build, finalize and
// account blocks. ConsensusEngine is the strategy interface the six
// protocol simulators implement.
#ifndef SRC_CHAIN_NODE_H_
#define SRC_CHAIN_NODE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/chain/block.h"
#include "src/chain/execution.h"
#include "src/chain/mempool.h"
#include "src/chain/tx.h"
#include "src/chain/validator_table.h"
#include "src/chain/vote_round.h"
#include "src/crypto/signature.h"
#include "src/net/deployment.h"
#include "src/net/network.h"
#include "src/sim/simulation.h"
#include "src/support/arena.h"
#include "src/support/shard_guard.h"

namespace diablo {

// Full parameter sheet of one blockchain. Values for the six evaluated
// chains live in src/chains/params.cc with calibration notes.
struct ChainParams {
  std::string name;            // "quorum"
  std::string consensus_name;  // "IBFT" (Table 4)
  std::string property;        // "det." | "prob." | "eventual" (Table 4)
  std::string vm_name;         // "geth" | "AVM" | "MoveVM" | "eBPF" (Table 4)
  std::string dapp_language;   // "Solidity" | "PyTeal" | "Move" (Table 4)
  VmDialect dialect = VmDialect::kGeth;
  SignatureScheme sig_scheme = SignatureScheme::kEcdsa;

  // Block production.
  SimDuration block_interval = Seconds(1);  // minimum period between blocks
  int64_t block_gas_limit = 0;              // 0 = unlimited
  int64_t max_block_bytes = 0;              // 0 = unlimited (wire-size cap)
  size_t max_block_txs = 10000;
  int confirmation_depth = 0;  // further blocks before a client treats it final

  // Admission control.
  MempoolConfig mempool;

  // Transaction dissemination.
  SimDuration gossip_batch_interval = Milliseconds(200);
  int gossip_fanout = 8;

  // Execution.
  double gas_per_sec_per_vcpu = 100e6;

  // Congestion collapse: when the pending pool exceeds this many
  // transactions, effective block capacity scales by
  // threshold / (threshold + backlog). 0 = immune (§6.3's Avalanche).
  size_t congestion_threshold = 0;

  // Ingress overload: request admission burns node CPU, so effective block
  // capacity also scales by capacity / (capacity + arrival_rate) when this
  // is non-zero (requests per second the RPC layer absorbs gracefully).
  double ingress_capacity = 0;

  // Leader-based protocols (IBFT / HotStuff).
  SimDuration round_timeout = Seconds(10);
  SimDuration proposal_overhead_per_pending_tx = 0;  // pool-scan cost pre-proposal
  // Superlinear pool-management cost: charged per (pending/1000)^2. Models
  // the queue-shuffling collapse of a never-drop pool under sustained
  // overload (§6.3).
  SimDuration proposal_overhead_quadratic = 0;

  // Algorand.
  double committee_expected = 0;
  SimDuration step_timeout = 0;

  // Avalanche.
  int sample_k = 20;
  int beta = 15;
  double alpha_fraction = 0.8;

  // Solana.
  SimDuration slot_duration = Milliseconds(400);
  int leader_window_slots = 4;

  // Client-side commit observation (websocket push / polling granularity).
  SimDuration client_poll_interval = Milliseconds(500);
};

// Per-run counters a chain reports besides per-transaction phases.
struct ChainStats {
  uint64_t blocks_produced = 0;
  uint64_t empty_blocks = 0;
  uint64_t view_changes = 0;
  uint64_t txs_committed = 0;
  uint64_t txs_dropped = 0;
  uint64_t txs_expired = 0;
  // Drafted blocks whose round failed (leader crash / lost quorum); their
  // transactions went back to the pool.
  uint64_t blocks_abandoned = 0;
  // Byzantine evidence, counted by the engines' detection hooks. Zero on
  // every healthy run.
  uint64_t equivocations_seen = 0;  // conflicting proposals detected
  uint64_t double_votes_seen = 0;   // duplicate votes discarded
  uint64_t votes_withheld = 0;      // expected votes that never arrived
  uint64_t txs_censored = 0;        // transactions refused by a censoring proposer
  uint64_t lazy_proposals = 0;      // deliberately empty blocks sealed
};

class ChainContext {
 public:
  ChainContext(Simulation* sim, Network* net, DeploymentConfig deployment,
               ChainParams params);

  ChainContext(const ChainContext&) = delete;
  ChainContext& operator=(const ChainContext&) = delete;

  // --- setup -------------------------------------------------------------
  Simulation* sim() { return sim_; }
  Network* net() { return net_; }
  const DeploymentConfig& deployment() const { return deployment_; }
  const ChainParams& params() const { return params_; }
  int node_count() const { return deployment_.node_count; }
  const std::vector<HostId>& hosts() const { return hosts_; }
  const VoteDelays& vote_delays() const { return *vote_delays_; }
  // Packed per-validator state (region bytes, down bits, sparse CPU
  // overrides) — O(n) bytes at any deployment size.
  const ValidatorTable& validators() const { return validators_; }
  // Shared per-engine message-plane scratch: stage vectors, order-statistic
  // buffers and broadcast working memory, warm after the first round so
  // steady-state vote rounds allocate nothing.
  MessagePlaneScratch* plane() {
    guard_.AssertAccess();
    return &plane_;
  }
  Rng& rng() {
    guard_.AssertAccess();
    return rng_;
  }
  CostOracle& oracle() { return oracle_; }

  TxStore& txs() { return txs_; }
  Mempool& mempool() {
    guard_.AssertAccess();
    return mempool_;
  }
  Ledger& ledger() {
    guard_.AssertAccess();
    return ledger_;
  }
  ChainStats& stats() {
    guard_.AssertAccess();
    return stats_;
  }
  const ChainStats& stats() const { return stats_; }

  // --- engine sharding ----------------------------------------------------
  // Routes the consensus engine's event chain onto one shard of the windowed
  // parallel scheduler. The engine is the sole window-time owner of this
  // context's state (rng, mempool, ledger, stats, block-tx pool, message
  // plane) plus the network's shared stream, so pinning its entire event
  // chain — round timers, slot ticks, view changes, and the submission
  // arrivals that feed the mempool — to a single shard executes it in drain
  // order on one worker, byte-identical to the serial loop. Engines may only
  // shard when their minimum self-reschedule delay is at least the window
  // lookahead (checked by the runner), otherwise the chain stays on the
  // serial loop (the default: engine_shard_ = kSerialShard).
  void EnableEngineSharding(uint32_t shard) { engine_shard_ = shard; }
  bool engine_sharded() const { return engine_shard_ != kSerialShard; }
  uint32_t engine_shard() const { return engine_shard_; }

  // Checked build: tags this context's mutable state — rng, mempool, ledger,
  // stats, message plane — plus the network's shared stream and counters
  // with their window-time owner. `shard` is the engine's shard when the
  // engine is sharded, kSerialShard when only the clients shard (the engine
  // state is then serial-only and any windowed access to it is a bug).
  // The runner calls this exactly when windowed workers are configured; an
  // unbound guard (serial runs, legacy loop) allows everything.
  void BindShardOwners(uint32_t shard) {
    guard_.Bind(shard, "ChainContext");
    mempool_.shard_owner().Bind(shard, "Mempool");
    ledger_.shard_owner().Bind(shard, "Ledger");
    net_->shard_owner().Bind(shard, "Network shared stream");
  }

  // Engine-owned scheduling: targets the engine's shard when sharding is
  // enabled, the serial loop otherwise. Engines must route every
  // self-reschedule through these two calls.
  void ScheduleEngine(SimDuration delay, EventFn fn) {
    sim_->ScheduleOn(engine_shard_, delay, std::move(fn));
  }
  void ScheduleEngineAt(SimTime time, EventFn fn) {
    sim_->ScheduleAtOn(engine_shard_, time, std::move(fn));
  }

  // Pre-sizes transaction storage, the mempool side tables and the block-tx
  // pool for a run expected to carry `expected_txs` transactions, so the
  // steady-state submission/assembly path never reallocates. The event
  // queue gets the same treatment in Primary.
  void ReserveTxs(size_t expected_txs) {
    txs_.Reserve(expected_txs);
    mempool_.Reserve(expected_txs);
    block_txs_.reserve(expected_txs);
  }

  // --- submission path (called by the diablo core) -----------------------
  // Handles a transaction arriving at endpoint node `endpoint` at time
  // `arrival`. Applies admission control and schedules gossip readiness.
  // Returns false when the transaction was rejected — because the endpoint
  // is down or admission control refused it. With `drop_on_reject` (the
  // default) a rejection also finalizes the transaction as dropped; clients
  // running a retry policy pass false and keep the transaction alive for
  // the next attempt.
  bool SubmitAtEndpoint(TxId id, int endpoint, SimTime arrival,
                        bool drop_on_reject = true);

  // --- fault hooks (driven by the FaultInjector) --------------------------
  // Marks a node crashed / restarted. A down node is partitioned off the
  // network (in-flight messages to it drop), refuses submissions, and is
  // skipped as proposer by the consensus engines. Restart models a rejoin
  // from the ledger head: the shared-pool mempool means the node sees the
  // network's pending set again immediately, with no replay of what it held
  // before the crash.
  void SetNodeDown(int node, bool down);
  bool NodeDown(int node) const { return validators_.Down(node); }

  // Straggler injection: `factor` in (0, 1] scales the node's CPU speed, so
  // its proposer-side block preparation takes 1/factor as long.
  void SetCpuFactor(int node, double factor);

  // --- adversary hooks (driven by the FaultInjector) ----------------------
  // Arms / disarms one adversary behavior bit (kAdversary* in
  // validator_table.h) on `node`. The engines consult the bits through the
  // helpers below; a healthy run never allocates the underlying table.
  void SetAdversary(int node, uint8_t bits, bool on);
  uint8_t AdversaryBits(int node) const { return validators_.Adversary(node); }
  bool AnyAdversary() const { return validators_.AnyAdversary(); }

  // Censorship target set: signer ids the censoring proposers refuse.
  // `signers` need not be sorted; the context keeps a sorted copy.
  void SetCensoredSigners(std::vector<uint32_t> signers);
  void ClearCensoredSigners() { censored_signers_.clear(); }

  // True while `node` is alive and armed with the given behavior.
  bool ProposerEquivocates(int node) const {
    return (AdversaryBits(node) & kAdversaryEquivocate) != 0 && !NodeDown(node);
  }
  bool VoteWithheld(int node) const {
    return (AdversaryBits(node) & kAdversaryWithhold) != 0 && !NodeDown(node);
  }

  // Detection bookkeeping: one conflicting-proposal pair witnessed.
  void RecordEquivocation() {
    guard_.AssertAccess();
    ++stats_.equivocations_seen;
  }

  // Applies the armed vote-stage adversaries to one round's arrival-delay
  // vector (indexed by node): withholding validators become kUnreachable
  // (the quorum kernels then exclude them), double-voters are counted as
  // evidence — the duplicate vote itself is discarded, so it never helps a
  // quorum. Early-outs when no adversary is armed; entries already
  // kUnreachable (down / partitioned) are left untouched.
  void ApplyVoteAdversaries(std::vector<SimDuration>* delays);
  // Committee-sampled variant (Algorand's large-N path): `delays` is indexed
  // by committee position, `members` maps positions to node indices.
  void ApplyVoteAdversaries(std::vector<SimDuration>* delays,
                            const std::vector<uint32_t>& members);

  // --- engine helpers -----------------------------------------------------
  // Transaction ids of drafted blocks live in one flat append-only pool on
  // the context (each id is written there once, by TakeReady, and never
  // copied again); BuiltBlock and Block carry (tx_begin, tx_count) ranges
  // into it. Engines that buffer drafts across rounds (clique's confirmation
  // window, hotstuff's 3-chain) can hold BuiltBlocks freely — the pool never
  // shrinks or moves entries within a run.
  struct BuiltBlock {
    uint32_t tx_begin = 0;
    uint32_t tx_count = 0;
    int64_t gas = 0;
    int64_t bytes = kBlockHeaderBytes;
    // Proposer-side preparation: pool scan, execution, signature checks.
    SimDuration build_time = 0;
  };

  std::span<const TxId> BlockTxs(const BuiltBlock& built) const {
    return {block_txs_.data() + built.tx_begin, built.tx_count};
  }
  std::span<const TxId> BlockTxs(const Block& block) const {
    return {block_txs_.data() + block.tx_begin, block.tx_count};
  }

  // Drafts a block at `now` from the proposer's view of the pool, honoring
  // gas/count limits and the congestion model.
  BuiltBlock BuildBlock(SimTime now, int proposer);

  // Records the block and schedules commit notifications for its
  // transactions at `final_time` (plus client observation delay).
  void FinalizeBlock(uint64_t height, int proposer, BuiltBlock&& built,
                     SimTime proposed_at, SimTime final_time);

  // Returns a failed round's drafted transactions to the mempool (they were
  // taken by BuildBlock but the block never committed), preserving signer
  // accounting; they become takeable again at `now`. Engines call this on
  // the view-change paths a fault can force.
  void AbandonBlock(const BuiltBlock& built, SimTime now);

  // Shrinks a drafted block to its first `keep` transactions, requeueing the
  // tail (takeable again at `now`) and re-deriving gas/bytes. Only valid for
  // the most recently built block — its ids must still be the tail of the
  // block-tx pool. DBFT uses this when equivocating vice-blocks are excluded
  // from a superblock.
  void RequeueBlockTail(BuiltBlock* built, uint32_t keep, SimTime now);

  void DropTx(TxId id, VmStatus reason = VmStatus::kOk);

  // Submissions seen in the most recent completed one-second window.
  double RecentArrivalRate(SimTime now) const;

  // Time for one node to execute a block of `gas` and verify `tx_count`
  // signatures.
  SimDuration ExecAndVerifyTime(int64_t gas, size_t tx_count) const;

  // Leader-side pending-set management cost at the current pool size.
  SimDuration PoolScanTime() const;

  // Completion hook: fired once per transaction when it commits or drops.
  std::function<void(TxId)> on_tx_complete;

 private:
  uint32_t engine_shard_ = kSerialShard;
  // Window-time owner of this context's mutable state (see BindShardOwners).
  shard_guard::ShardOwner guard_;
  Simulation* sim_;
  Network* net_;
  DeploymentConfig deployment_;
  ChainParams params_;
  Rng rng_;
  std::vector<HostId> hosts_;
  ValidatorTable validators_;
  std::unique_ptr<VoteDelays> vote_delays_;
  CostOracle oracle_;
  TxStore txs_;
  Mempool mempool_;
  Ledger ledger_;
  ChainStats stats_;
  ExecutionModel exec_model_;
  std::vector<uint32_t> arrivals_per_second_;
  // Flat pool of every drafted block's transaction ids (see BuiltBlock).
  std::vector<TxId> block_txs_;
  // Per-block scratch (expired batches); reset at the top of BuildBlock.
  Arena scratch_arena_;
  MessagePlaneScratch plane_;
  // Reusable AbandonBlock staging (cleared per call, warm across rounds).
  std::vector<TxId> abandon_ids_;
  std::vector<uint32_t> abandon_signers_;
  std::vector<SimTime> abandon_ingress_;
  std::vector<SimTime> abandon_ready_;
  // Sorted signer ids the active censorship window targets; empty otherwise.
  std::vector<uint32_t> censored_signers_;
  // Checked build: commit-safety witness — FinalizeBlock asserts no two
  // committed blocks ever share a height with different contents, whatever
  // adversary schedule is armed.
  DIABLO_CHECKED_ONLY(uint64_t last_commit_height_ = 0;
                      Digest256 last_commit_digest_{};)
};

// Strategy interface: each consensus protocol schedules its own rounds
// against the context's simulation.
class ConsensusEngine {
 public:
  explicit ConsensusEngine(ChainContext* ctx) : ctx_(ctx) {}
  virtual ~ConsensusEngine() = default;

  ConsensusEngine(const ConsensusEngine&) = delete;
  ConsensusEngine& operator=(const ConsensusEngine&) = delete;

  // Begins block production; called once after the context is constructed.
  virtual void Start() = 0;

  // Lower bound on the delay between any event of this engine's chain and
  // the earliest event it schedules, over every code path (success, timeout,
  // view change, skip). The windowed runner shards the engine only when this
  // floor is at least the window lookahead — that is the engine-side
  // conservatism condition: every self-reschedule then lands at or past the
  // window end. Must be a constant derived from the chain parameters.
  virtual SimDuration MinRescheduleDelay() const = 0;

 protected:
  ChainContext* ctx_;
};

}  // namespace diablo

#endif  // SRC_CHAIN_NODE_H_
