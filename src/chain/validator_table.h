// Structure-of-arrays per-validator state.
//
// At paper scale (≤ 200 nodes) per-validator bookkeeping is noise; at
// fig3-XL scale (10k–100k) every per-node vector and every per-node byte is
// multiplied by n. This table packs the per-validator state one deployment
// needs — region byte, down bit, CPU-speed override — into a handful of
// flat arrays whose cost is bytes per validator, not objects per validator:
//
//   region     1 byte/validator, filled at construction
//   down       1 bit/validator, allocated lazily on the first fault
//   cpu        sparse (index, factor) pairs — fault schedules slow a few
//              stragglers, never the whole fleet, so the common case is an
//              empty vector and a single emptiness check per block
//
// The table is deliberately dumb storage: fault semantics (partitioning the
// network, skipping down proposers) stay in ChainContext / the engines.
#ifndef SRC_CHAIN_VALIDATOR_TABLE_H_
#define SRC_CHAIN_VALIDATOR_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/chain/vote_round.h"
#include "src/net/deployment.h"
#include "src/net/region.h"

namespace diablo {

class ValidatorTable {
 public:
  ValidatorTable() = default;
  explicit ValidatorTable(const DeploymentConfig& deployment);

  size_t count() const { return region_.size(); }

  Region region(int index) const {
    return static_cast<Region>(region_[static_cast<size_t>(index)]);
  }

  // --- down bits -----------------------------------------------------------
  // The bitset is empty until the first SetDown, so healthy runs pay one
  // emptiness check and zero bytes.
  void SetDown(int index, bool down);
  bool Down(int index) const {
    return !down_.empty() && down_.Test(static_cast<size_t>(index));
  }
  size_t DownCount() const { return down_.Count(); }

  // --- CPU-speed overrides -------------------------------------------------
  // Stored sparsely, sorted by index; factor 1.0 erases the entry.
  void SetCpuFactor(int index, double factor);
  bool AnyCpuOverride() const { return !cpu_overrides_.empty(); }
  // 1.0 unless an override was set for this validator.
  double CpuFactor(int index) const;

  // --- adversary bits ------------------------------------------------------
  // One behavior byte per validator, allocated lazily on the first armed
  // Byzantine window, so healthy runs pay one emptiness check and zero
  // bytes. Bits combine: a node can equivocate *and* withhold.
  void SetAdversary(int index, uint8_t bits, bool on);
  uint8_t Adversary(int index) const {
    return adversary_.empty() ? 0 : adversary_[static_cast<size_t>(index)];
  }
  // True while any validator has any adversary bit set — the engines'
  // healthy-path early-out.
  bool AnyAdversary() const { return adversary_count_ > 0; }

  // Bytes owned by the table; asserted against the fig3-XL per-validator
  // budget.
  size_t ApproxBytes() const {
    return sizeof(*this) + region_.capacity() + down_.ApproxBytes() +
           cpu_overrides_.capacity() * sizeof(cpu_overrides_[0]) +
           adversary_.capacity();
  }

 private:
  std::vector<uint8_t> region_;
  VoteBitset down_;
  std::vector<std::pair<uint32_t, double>> cpu_overrides_;
  std::vector<uint8_t> adversary_;
  size_t adversary_count_ = 0;  // validators with a nonzero adversary byte
};

// Adversary behavior bits for ValidatorTable::SetAdversary.
inline constexpr uint8_t kAdversaryEquivocate = 1u << 0;
inline constexpr uint8_t kAdversaryDoubleVote = 1u << 1;
inline constexpr uint8_t kAdversaryWithhold = 1u << 2;
inline constexpr uint8_t kAdversaryCensor = 1u << 3;
inline constexpr uint8_t kAdversaryLazy = 1u << 4;

}  // namespace diablo

#endif  // SRC_CHAIN_VALIDATOR_TABLE_H_
