// The distributed memory pool.
//
// Per-node mempool replicas would cost O(nodes × transactions) memory at
// this scale, so the pool is modelled once, logically shared: each entry
// carries a readiness time — its ingress time plus a sampled gossip delay —
// before which no proposer can include it. Admission control (global and
// per-signer caps, TTL expiry, geth-style eviction: the policies that
// differentiate Quorum, Diem, geth and Solana under load, §6.3/§6.5) runs
// at the ingress node.
#ifndef SRC_CHAIN_MEMPOOL_H_
#define SRC_CHAIN_MEMPOOL_H_

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/chain/tx.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace diablo {

struct MempoolConfig {
  // Maximum transactions in the pool; 0 = unbounded (Quorum/IBFT's design
  // of never dropping a client request).
  size_t global_cap = 0;
  // Maximum pending transactions per signer; 0 = none. Diem: 100 (§5.2).
  size_t per_signer_cap = 0;
  // Pending lifetime before expiry; 0 = forever. Solana rejects transactions
  // whose recent-blockhash is older than ~120 s (§5.2).
  SimDuration ttl = 0;
  // When the pool is full, evict a random pending transaction to admit the
  // newcomer (geth replaces by price; price and age are uncorrelated here,
  // so a uniform victim is the equivalent model) instead of rejecting it.
  bool evict_on_full = false;
};

enum class AdmitResult : uint8_t {
  kAdmitted = 0,
  kPoolFull,
  kSignerCapReached,
};

class Mempool {
 public:
  // `rng` is required only when config.evict_on_full is set.
  explicit Mempool(MempoolConfig config, Rng* rng = nullptr)
      : config_(config), rng_(rng) {}

  // Attempts to admit a transaction that arrived at `ingress_time` and
  // becomes visible to proposers at `ready_time`. With evict_on_full, a
  // successful admission into a full pool sets *evicted to the victim
  // (kInvalidTx otherwise); the caller owns reporting it dropped.
  AdmitResult Add(TxId id, uint32_t signer, SimTime ingress_time, SimTime ready_time,
                  TxId* evicted = nullptr);

  // Pops up to `max_txs` transactions that are ready at `now` and whose
  // cumulative gas / wire size stay within `gas_budget` / `byte_budget`
  // (0 = unlimited), oldest first. Expired entries encountered along the
  // way are appended to *expired. `gas_of` / `bytes_of` map TxId to cost.
  template <typename GasFn, typename BytesFn>
  std::vector<TxId> TakeReady(SimTime now, int64_t gas_budget, int64_t byte_budget,
                              size_t max_txs, GasFn gas_of, BytesFn bytes_of,
                              std::vector<TxId>* expired);

  // Returns transactions to the pool (leader failure / fork), preserving
  // their readiness times.
  void Requeue(const std::vector<TxId>& txs, const std::vector<uint32_t>& signers,
               const std::vector<SimTime>& ingress, const std::vector<SimTime>& ready);

  size_t size() const { return live_count_; }
  uint64_t admitted() const { return admitted_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    SimTime ready;
    SimTime ingress;
    TxId id;
    uint32_t signer;
    bool operator>(const Entry& other) const {
      if (ready != other.ready) {
        return ready > other.ready;
      }
      return id > other.id;
    }
  };

  void ReleaseSigner(uint32_t signer);
  // Removes one uniformly random live transaction; returns it.
  TxId EvictRandom();
  void CompactRingIfNeeded();
  void NoteGone(TxId id);

  MempoolConfig config_;
  Rng* rng_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_map<uint32_t, uint32_t> signer_counts_;
  // Random-victim support: candidate ring of (id, signer) plus the set of
  // ids that left the pool (taken/expired/evicted) but may still appear in
  // the ring, and the subset evicted while still queued.
  std::vector<std::pair<TxId, uint32_t>> ring_;
  std::unordered_set<TxId> gone_;
  std::unordered_set<TxId> zombies_;
  size_t live_count_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t evictions_ = 0;
};

template <typename GasFn, typename BytesFn>
std::vector<TxId> Mempool::TakeReady(SimTime now, int64_t gas_budget, int64_t byte_budget,
                                     size_t max_txs, GasFn gas_of, BytesFn bytes_of,
                                     std::vector<TxId>* expired) {
  std::vector<TxId> taken;
  int64_t gas = 0;
  int64_t bytes = 0;
  while (!queue_.empty() && taken.size() < max_txs) {
    const Entry& top = queue_.top();
    if (zombies_.erase(top.id) > 0) {
      queue_.pop();  // evicted earlier; already accounted
      continue;
    }
    if (top.ready > now) {
      break;
    }
    if (config_.ttl > 0 && now - top.ingress > config_.ttl) {
      expired->push_back(top.id);
      NoteGone(top.id);
      ReleaseSigner(top.signer);
      --live_count_;
      queue_.pop();
      continue;
    }
    const int64_t tx_gas = gas_of(top.id);
    const int64_t tx_bytes = bytes_of(top.id);
    if (gas_budget > 0 && gas + tx_gas > gas_budget && !taken.empty()) {
      break;
    }
    if (byte_budget > 0 && bytes + tx_bytes > byte_budget && !taken.empty()) {
      break;
    }
    if (gas_budget > 0 && tx_gas > gas_budget && taken.empty()) {
      // A single transaction over the whole budget can never be included;
      // treat as expired so it does not wedge the queue head.
      expired->push_back(top.id);
      NoteGone(top.id);
      ReleaseSigner(top.signer);
      --live_count_;
      queue_.pop();
      continue;
    }
    gas += tx_gas;
    bytes += tx_bytes;
    taken.push_back(top.id);
    NoteGone(top.id);
    ReleaseSigner(top.signer);
    --live_count_;
    queue_.pop();
  }
  return taken;
}

}  // namespace diablo

#endif  // SRC_CHAIN_MEMPOOL_H_
