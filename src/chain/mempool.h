// The distributed memory pool.
//
// Per-node mempool replicas would cost O(nodes × transactions) memory at
// this scale, so the pool is modelled once, logically shared: each entry
// carries a readiness time — its ingress time plus a sampled gossip delay —
// before which no proposer can include it. Admission control (global and
// per-signer caps, TTL expiry, geth-style eviction: the policies that
// differentiate Quorum, Diem, geth and Solana under load, §6.3/§6.5) runs
// at the ingress node.
//
// TxIds and account ids are dense uint32s handed out sequentially, so all
// per-transaction state lives in struct-of-arrays side tables indexed by
// TxId — one lifecycle byte, the ingress time, the signer — and per-signer
// pending counts in a flat vector indexed by account id. Admission,
// TakeReady, TTL expiry, eviction and Requeue do zero hashing. The ready
// queue is an implicit binary heap of 16-byte (ready, id) entries popped
// with a bottom-up sift (unlike the event queue's wide heap, the backlog
// here is usually small and cache-resident, so comparison count beats tree
// depth — measured: a 4-ary sift is ~40% slower on a 512-entry drain); the
// random-eviction candidate ring is a flat TxId vector compacted in place.
#ifndef SRC_CHAIN_MEMPOOL_H_
#define SRC_CHAIN_MEMPOOL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/chain/tx.h"
#include "src/support/check.h"
#include "src/support/rng.h"
#include "src/support/shard_guard.h"
#include "src/support/time.h"

namespace diablo {

struct MempoolConfig {
  // Maximum transactions in the pool; 0 = unbounded (Quorum/IBFT's design
  // of never dropping a client request).
  size_t global_cap = 0;
  // Maximum pending transactions per signer; 0 = none. Diem: 100 (§5.2).
  size_t per_signer_cap = 0;
  // Pending lifetime before expiry; 0 = forever. Solana rejects transactions
  // whose recent-blockhash is older than ~120 s (§5.2).
  SimDuration ttl = 0;
  // When the pool is full, evict a random pending transaction to admit the
  // newcomer (geth replaces by price; price and age are uncorrelated here,
  // so a uniform victim is the equivalent model) instead of rejecting it.
  bool evict_on_full = false;
};

enum class AdmitResult : uint8_t {
  kAdmitted = 0,
  kPoolFull,
  kSignerCapReached,
};

class Mempool {
 public:
  // `rng` is required only when config.evict_on_full is set.
  explicit Mempool(MempoolConfig config, Rng* rng = nullptr)
      : config_(config), rng_(rng) {}

  // Pre-sizes the side tables, the ready heap and the eviction ring for a
  // workload of `expected_txs` transactions so steady-state admission never
  // reallocates mid-run.
  void Reserve(size_t expected_txs);

  // Attempts to admit a transaction that arrived at `ingress_time` and
  // becomes visible to proposers at `ready_time`. With evict_on_full, a
  // successful admission into a full pool sets *evicted to the victim
  // (kInvalidTx otherwise); the caller owns reporting it dropped.
  AdmitResult Add(TxId id, uint32_t signer, SimTime ingress_time, SimTime ready_time,
                  TxId* evicted = nullptr);

  // Pops up to `max_txs` transactions that are ready at `now` and whose
  // cumulative gas / wire size stay within `gas_budget` / `byte_budget`
  // (0 = unlimited), oldest first, appending them to *taken. Expired entries
  // encountered along the way are appended to *expired. `gas_of` /
  // `bytes_of` map TxId to cost. Output containers only need push_back
  // (std::vector, ArenaVector, ...); neither is cleared first, so callers
  // can accumulate straight into long-lived storage.
  template <typename GasFn, typename BytesFn, typename TakenOut, typename ExpiredOut>
  void TakeReady(SimTime now, int64_t gas_budget, int64_t byte_budget,
                 size_t max_txs, GasFn gas_of, BytesFn bytes_of,
                 TakenOut* taken, ExpiredOut* expired);

  // Convenience wrapper returning the taken batch as a fresh vector.
  template <typename GasFn, typename BytesFn>
  std::vector<TxId> TakeReady(SimTime now, int64_t gas_budget, int64_t byte_budget,
                              size_t max_txs, GasFn gas_of, BytesFn bytes_of,
                              std::vector<TxId>* expired);

  // Returns transactions to the pool (leader failure / fork), preserving
  // their readiness times.
  void Requeue(const std::vector<TxId>& txs, const std::vector<uint32_t>& signers,
               const std::vector<SimTime>& ingress, const std::vector<SimTime>& ready);

  size_t size() const { return live_count_; }
  uint64_t admitted() const { return admitted_; }
  uint64_t rejected() const { return rejected_; }
  uint64_t evictions() const { return evictions_; }

  // Checked build: window-time owner tag; Add/TakeReady/Requeue assert the
  // caller runs on the owning shard (or serial). Bound by
  // ChainContext::BindShardOwners.
  shard_guard::ShardOwner& shard_owner() { return guard_; }

 private:
  // Lifecycle byte of a TxId. kGone covers everything that left the pool —
  // taken, expired, or a popped zombie — and doubles as "never seen":
  // leaving and never-arrived are indistinguishable to every consumer.
  enum TxState : uint8_t {
    kGone = 0,
    kLive,     // queued and takeable
    kZombie,   // evicted from the pool but its heap entry still pending
  };

  struct HeapEntry {
    SimTime ready;
    TxId id;
  };

  // Pop order: earliest readiness first, TxId breaking ties — the same
  // total order the seed priority_queue used, so drafted blocks are
  // bit-identical.
  static bool Later(const HeapEntry& a, const HeapEntry& b) {
    if (a.ready != b.ready) {
      return a.ready > b.ready;
    }
    return a.id > b.id;
  }

  void HeapPush(HeapEntry entry);
  void HeapPopTop();

  // Grows the TxId-indexed side tables to cover `id`.
  void EnsureTx(TxId id) {
    if (static_cast<size_t>(id) >= state_.size()) {
      const size_t grown = std::max<size_t>(
          static_cast<size_t>(id) + 1, state_.size() + state_.size() / 2 + 16);
      state_.resize(grown, kGone);
      ingress_.resize(grown, 0);
      signer_of_.resize(grown, 0);
    }
  }

  // Marks a live queue head gone and removes it from the heap.
  void RemoveHead(TxId id) {
    state_[id] = kGone;
    ReleaseSigner(signer_of_[id]);
    --live_count_;
    HeapPopTop();
  }

  void ReleaseSigner(uint32_t signer) {
    if (config_.per_signer_cap == 0) {
      return;
    }
    uint32_t& count = signer_counts_[signer];
    if (count > 0) {
      --count;
    }
  }

  // Removes one uniformly random live transaction; returns it.
  TxId EvictRandom();
  void CompactRingIfNeeded();

  // Checked build: full cross-check of the SoA side tables — live_count_
  // equals the number of kLive lifecycle bytes, the signer count vector sums
  // back to it, and every heap entry still refers to a live or zombie id.
  // O(table size), so sampled on a per-pool op cadence; a no-op otherwise.
#if defined(DIABLO_CHECKED)
  void CheckConsistencySampled();
  void CheckConsistency() const;
#else
  void CheckConsistencySampled() {}
#endif

  MempoolConfig config_;
  Rng* rng_;
  shard_guard::ShardOwner guard_;
  std::vector<HeapEntry> heap_;
  // Struct-of-arrays side tables, indexed by TxId.
  std::vector<uint8_t> state_;    // TxState
  std::vector<SimTime> ingress_;  // valid while state != kGone
  std::vector<uint32_t> signer_of_;
  // Pending-count per signer, indexed by account id.
  std::vector<uint32_t> signer_counts_;
  // Random-victim support: candidate slots, possibly stale (state != kLive).
  std::vector<TxId> ring_;
  size_t live_count_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t evictions_ = 0;
  DIABLO_CHECKED_ONLY(uint64_t check_tick_ = 0;)
};

template <typename GasFn, typename BytesFn, typename TakenOut, typename ExpiredOut>
void Mempool::TakeReady(SimTime now, int64_t gas_budget, int64_t byte_budget,
                        size_t max_txs, GasFn gas_of, BytesFn bytes_of,
                        TakenOut* taken, ExpiredOut* expired) {
  guard_.AssertAccess();
  int64_t gas = 0;
  int64_t bytes = 0;
  size_t taken_count = 0;
  while (!heap_.empty() && taken_count < max_txs) {
    const HeapEntry top = heap_.front();
    if (state_[top.id] != kLive) {
      // Evicted earlier (zombie); already accounted.
      state_[top.id] = kGone;
      HeapPopTop();
      continue;
    }
    if (top.ready > now) {
      break;
    }
    if (config_.ttl > 0 && now - ingress_[top.id] > config_.ttl) {
      expired->push_back(top.id);
      RemoveHead(top.id);
      continue;
    }
    const int64_t tx_gas = gas_of(top.id);
    const int64_t tx_bytes = bytes_of(top.id);
    if (gas_budget > 0 && gas + tx_gas > gas_budget && taken_count > 0) {
      break;
    }
    if (byte_budget > 0 && bytes + tx_bytes > byte_budget && taken_count > 0) {
      break;
    }
    if (gas_budget > 0 && tx_gas > gas_budget && taken_count == 0) {
      // A single transaction over the whole budget can never be included;
      // treat as expired so it does not wedge the queue head.
      expired->push_back(top.id);
      RemoveHead(top.id);
      continue;
    }
    gas += tx_gas;
    bytes += tx_bytes;
    taken->push_back(top.id);
    ++taken_count;
    RemoveHead(top.id);
  }
  CheckConsistencySampled();
}

template <typename GasFn, typename BytesFn>
std::vector<TxId> Mempool::TakeReady(SimTime now, int64_t gas_budget, int64_t byte_budget,
                                     size_t max_txs, GasFn gas_of, BytesFn bytes_of,
                                     std::vector<TxId>* expired) {
  std::vector<TxId> taken;
  TakeReady(now, gas_budget, byte_budget, max_txs, gas_of, bytes_of, &taken, expired);
  return taken;
}

}  // namespace diablo

#endif  // SRC_CHAIN_MEMPOOL_H_
