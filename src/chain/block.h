// Blocks and the ledger (the canonical chain of finalized blocks).
//
// The simulators model fork resolution through per-protocol confirmation
// depths rather than explicit branch structures: a block's finality time is
// computed by its consensus engine (immediately for deterministic finality,
// after k further blocks for forkable chains).
#ifndef SRC_CHAIN_BLOCK_H_
#define SRC_CHAIN_BLOCK_H_

#include <cstdint>
#include <vector>

#include "src/chain/tx.h"
#include "src/crypto/sha256.h"
#include "src/support/check.h"
#include "src/support/shard_guard.h"
#include "src/support/time.h"

namespace diablo {

struct Block {
  uint64_t height = 0;
  uint32_t proposer = 0;       // node index
  int64_t gas_used = 0;
  int64_t bytes = 0;           // wire size, header included
  SimTime proposed_at = 0;
  SimTime finalized_at = -1;   // -1 while not yet final
  // Transaction ids live in the owning ChainContext's flat block-tx pool
  // (ChainContext::BlockTxs resolves the range); keeping just the range here
  // makes Block trivially copyable and the ledger one contiguous vector.
  uint32_t tx_begin = 0;
  uint32_t tx_count = 0;
};

// Fixed header overhead added to the transaction payload bytes.
inline constexpr int64_t kBlockHeaderBytes = 512;

class Ledger {
 public:
  // Appends a block; heights must be appended in increasing order.
  void Append(Block block);

  // Pre-sizes the chain for an expected block count.
  void Reserve(size_t blocks) { blocks_.reserve(blocks); }

  size_t block_count() const { return blocks_.size(); }
  const Block& block(size_t i) const { return blocks_[i]; }
  Block& block(size_t i) { return blocks_[i]; }
  const Block& last() const { return blocks_.back(); }
  bool empty() const { return blocks_.empty(); }

  uint64_t next_height() const { return blocks_.empty() ? 1 : blocks_.back().height + 1; }

  size_t total_txs() const { return total_txs_; }

  // Header-chain digest over (height, proposer, tx count) triples; gives
  // tests a cheap integrity check without hashing every transaction.
  Digest256 HeaderChainDigest() const;

  // Checked build: window-time owner tag; Append asserts the caller runs on
  // the owning shard (or serial). Bound by ChainContext::BindShardOwners.
  shard_guard::ShardOwner& shard_owner() { return guard_; }

 private:
  shard_guard::ShardOwner guard_;
  std::vector<Block> blocks_;
  size_t total_txs_ = 0;
  // Checked build: a parent-hash chain over the appended headers. Append
  // extends it incrementally; on a sampled cadence the whole chain is
  // re-derived from the stored blocks and compared, so any retroactive edit
  // of the header fields (or an out-of-order append the height check missed)
  // breaks the link.
  DIABLO_CHECKED_ONLY(Digest256 head_digest_{}; uint64_t append_tick_ = 0;)
};

}  // namespace diablo

#endif  // SRC_CHAIN_BLOCK_H_
