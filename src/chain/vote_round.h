// Aggregate vote-round arithmetic.
//
// A 200-validator IBFT deployment exchanges ~40,000 PREPARE messages per
// block; scheduling each as a discrete event would dominate the simulation.
// Because vote messages are small and fixed-size, their pairwise delays are
// precomputed once and each round is reduced to order statistics: "when has
// node i received votes from a quorum of nodes, given when each node
// started voting?".
#ifndef SRC_CHAIN_VOTE_ROUND_H_
#define SRC_CHAIN_VOTE_ROUND_H_

#include <vector>

#include "src/net/network.h"
#include "src/support/time.h"

namespace diablo {

// One-way delays for fixed-size messages between every pair of hosts,
// sampled once at construction (jitter baked in).
class PairwiseDelays {
 public:
  PairwiseDelays(Network* net, const std::vector<HostId>& hosts, int64_t message_bytes);

  SimDuration at(size_t from, size_t to) const { return delays_[from * n_ + to]; }
  size_t size() const { return n_; }

 private:
  size_t n_;
  std::vector<SimDuration> delays_;
};

// Time at which `receiver` holds votes from `quorum` distinct senders, when
// sender j starts broadcasting its vote at send_times[j] (kUnreachable = that
// sender never votes). Senders include the receiver itself (self-votes are
// instant). `hop_scale` multiplies each vote's network delay: on large
// deployments votes relay through a bounded-degree p2p mesh instead of
// travelling one hop (see GossipHopScale). Returns kUnreachable when fewer
// than `quorum` senders vote.
SimDuration QuorumArrival(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t receiver,
                          size_t quorum, double hop_scale = 1.0);

// QuorumArrival for every receiver at once.
std::vector<SimDuration> QuorumArrivalAll(const PairwiseDelays& delays,
                                          const std::vector<SimDuration>& send_times,
                                          size_t quorum, double hop_scale = 1.0);

// Expected relay hops for flooding a vote through a p2p mesh of n nodes
// with ~25 direct peers: 1 + log2(n / 25), at least 1.
double GossipHopScale(int n);

// Smallest f such that n >= 3f + 1, i.e. the Byzantine fault tolerance of an
// n-node deployment; quorum is 2f + 1.
int ByzantineQuorum(int n);

// Median of a delay vector, ignoring kUnreachable entries; kUnreachable when
// every entry is unreachable.
SimDuration MedianDelay(const std::vector<SimDuration>& delays);

}  // namespace diablo

#endif  // SRC_CHAIN_VOTE_ROUND_H_
