// Aggregate vote-round arithmetic.
//
// A 200-validator IBFT deployment exchanges ~40,000 PREPARE messages per
// block; scheduling each as a discrete event would dominate the simulation.
// Because vote messages are small and fixed-size, their pairwise delays are
// precomputed once and each round is reduced to order statistics: "when has
// node i received votes from a quorum of nodes, given when each node
// started voting?".
//
// The reduction itself is the hot loop of every consensus engine, so it runs
// over caller-owned scratch (MessagePlaneScratch) instead of allocating per
// receiver: steady-state vote rounds perform zero heap allocations. The
// selection step is exact — a k-th order statistic is a value, not an
// algorithm — so the adaptive-window selector below produces bit-identical
// results to a plain sort-and-index while skipping most of the partitioning
// work on the (highly similar) rounds that follow one another.
#ifndef SRC_CHAIN_VOTE_ROUND_H_
#define SRC_CHAIN_VOTE_ROUND_H_

#include <vector>

#include "src/net/network.h"
#include "src/support/time.h"

namespace diablo {

// One-way delays for fixed-size messages between every pair of hosts,
// sampled once at construction (jitter baked in). Kept in both row-major
// (sender-major, `at`) and column-major (receiver-major, `column`) layouts:
// the quorum reduction reads all senders for one receiver, which is a strided
// walk in the row-major matrix but contiguous in the transpose.
class PairwiseDelays {
 public:
  PairwiseDelays(Network* net, const std::vector<HostId>& hosts, int64_t message_bytes);

  SimDuration at(size_t from, size_t to) const { return delays_[from * n_ + to]; }
  size_t size() const { return n_; }

  // All senders' delays into `to`, contiguous. column(to)[from] == at(from, to).
  const SimDuration* column(size_t to) const { return &by_receiver_[to * n_]; }
  // Largest reachable entry; gates the integer hop-scale fast path.
  SimDuration max_delay() const { return max_delay_; }

 private:
  size_t n_;
  std::vector<SimDuration> delays_;
  std::vector<SimDuration> by_receiver_;
  SimDuration max_delay_ = 0;
};

// Carry-over state for the adaptive-window selector. Purely an accelerator:
// whatever the hint holds, the selected value is exact, so this state never
// influences simulation output — only how fast it is produced.
struct SelectionHint {
  SimDuration center = 0;
  SimDuration span = 0;
  bool valid = false;
};

// Reusable working memory for one engine's message plane: order-statistic
// buffers, per-round stage vectors, and broadcast scratch. Allocated once per
// ChainContext and warm after the first round.
struct MessagePlaneScratch {
  // Selection working buffers (sized to the validator count on first use).
  std::vector<SimDuration> buf;
  std::vector<SimDuration> win;
  // One hint per vote stage: the two QuorumArrivalAll stages of a
  // PBFT-style round see different delay distributions, so they track
  // separate windows. The median has its own.
  SelectionHint quorum_hint[2];
  SelectionHint median_hint;
  // Per-round vectors the engines refill each round.
  std::vector<SimDuration> stage_a;
  std::vector<SimDuration> stage_b;
  std::vector<SimDuration> stage_c;
  std::vector<SimDuration> senders;
  std::vector<SimDuration> round_trips;
  std::vector<uint32_t> committee;
  BroadcastScratch broadcast;
};

// Time at which `receiver` holds votes from `quorum` distinct senders, when
// sender j starts broadcasting its vote at send_times[j] (kUnreachable = that
// sender never votes). Senders include the receiver itself (self-votes are
// instant). `hop_scale` multiplies each vote's network delay: on large
// deployments votes relay through a bounded-degree p2p mesh instead of
// travelling one hop (see GossipHopScale). Returns kUnreachable when fewer
// than `quorum` senders vote.
SimDuration QuorumArrival(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t receiver,
                          size_t quorum, double hop_scale = 1.0);

// QuorumArrival for every receiver at once.
std::vector<SimDuration> QuorumArrivalAll(const PairwiseDelays& delays,
                                          const std::vector<SimDuration>& send_times,
                                          size_t quorum, double hop_scale = 1.0);

// Allocation-free forms over caller scratch; results are bit-identical to the
// allocating versions. `hint_slot` (0 or 1) picks which carried selection
// window to use — engines pass 0 for their first vote stage and 1 for the
// second.
SimDuration QuorumArrivalInto(const PairwiseDelays& delays,
                              const std::vector<SimDuration>& send_times,
                              size_t receiver, size_t quorum, double hop_scale,
                              MessagePlaneScratch* scratch, int hint_slot = 0);
void QuorumArrivalAllInto(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t quorum,
                          double hop_scale, MessagePlaneScratch* scratch,
                          std::vector<SimDuration>* result, int hint_slot = 0);

// Expected relay hops for flooding a vote through a p2p mesh of n nodes
// with ~25 direct peers: 1 + log2(n / 25), at least 1.
double GossipHopScale(int n);

// Smallest f such that n >= 3f + 1, i.e. the Byzantine fault tolerance of an
// n-node deployment; quorum is 2f + 1.
int ByzantineQuorum(int n);

// Median of a delay vector, ignoring kUnreachable entries; kUnreachable when
// every entry is unreachable.
SimDuration MedianDelay(const std::vector<SimDuration>& delays);

// Allocation-free MedianDelay over caller scratch; bit-identical result.
SimDuration MedianDelayInto(const std::vector<SimDuration>& delays,
                            MessagePlaneScratch* scratch);

}  // namespace diablo

#endif  // SRC_CHAIN_VOTE_ROUND_H_
