// Aggregate vote-round arithmetic.
//
// A 200-validator IBFT deployment exchanges ~40,000 PREPARE messages per
// block; scheduling each as a discrete event would dominate the simulation.
// Because vote messages are small and fixed-size, their pairwise delays are
// precomputed once and each round is reduced to order statistics: "when has
// node i received votes from a quorum of nodes, given when each node
// started voting?".
//
// The reduction itself is the hot loop of every consensus engine, so it runs
// over caller-owned scratch (MessagePlaneScratch) instead of allocating per
// receiver: steady-state vote rounds perform zero heap allocations. The
// selection step is exact — a k-th order statistic is a value, not an
// algorithm — so the adaptive-window selector below produces bit-identical
// results to a plain sort-and-index while skipping most of the partitioning
// work on the (highly similar) rounds that follow one another.
#ifndef SRC_CHAIN_VOTE_ROUND_H_
#define SRC_CHAIN_VOTE_ROUND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/support/time.h"

namespace diablo {

// Dense bit set over validator indices with a maintained population count:
// one bit per validator instead of a byte (or a vector entry) per vote.
// Tracking "who voted / is this a quorum yet" over 100k validators costs
// 12.5 KB instead of the 800 KB a SimTime-per-sender vector costs, and the
// quorum question is a counter compare instead of a scan.
class VoteBitset {
 public:
  VoteBitset() = default;

  // Clears to `bits` zero bits (capacity is retained across rounds).
  void Reset(size_t bits) {
    bits_ = bits;
    count_ = 0;
    words_.assign((bits + 63) / 64, 0);
  }

  bool empty() const { return words_.empty(); }
  size_t size_bits() const { return bits_; }

  // Sets bit i; returns true when it was newly set (a first vote).
  bool Set(size_t i) {
    uint64_t& word = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if ((word & mask) != 0) {
      return false;
    }
    word |= mask;
    ++count_;
    return true;
  }

  void Clear(size_t i) {
    uint64_t& word = words_[i >> 6];
    const uint64_t mask = uint64_t{1} << (i & 63);
    if ((word & mask) != 0) {
      word &= ~mask;
      --count_;
    }
  }

  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  bool Test(size_t i) const {
    return (words_[i >> 6] & (uint64_t{1} << (i & 63))) != 0;
  }

  // Distinct set bits; maintained incrementally, never recounted.
  size_t Count() const { return count_; }
  bool HasQuorum(size_t quorum) const { return count_ >= quorum; }

  size_t ApproxBytes() const { return sizeof(*this) + words_.capacity() * 8; }

 private:
  std::vector<uint64_t> words_;
  size_t bits_ = 0;
  size_t count_ = 0;
};

// One-way delays for fixed-size messages between every pair of hosts,
// sampled once at construction (jitter baked in). Kept in both row-major
// (sender-major, `at`) and column-major (receiver-major, `column`) layouts:
// the quorum reduction reads all senders for one receiver, which is a strided
// walk in the row-major matrix but contiguous in the transpose.
class PairwiseDelays {
 public:
  PairwiseDelays(Network* net, const std::vector<HostId>& hosts, int64_t message_bytes);

  // Builds directly from an explicit row-major matrix of n·n entries. Used
  // by the checked-build cross-check and by tests to run the dense kernels
  // over delays sampled elsewhere (e.g. a StreamedDelays model).
  PairwiseDelays(size_t n, std::vector<SimDuration> row_major);

  SimDuration at(size_t from, size_t to) const { return delays_[from * n_ + to]; }
  size_t size() const { return n_; }

  // All senders' delays into `to`, contiguous. column(to)[from] == at(from, to).
  const SimDuration* column(size_t to) const { return &by_receiver_[to * n_]; }
  // Largest reachable entry; gates the integer hop-scale fast path.
  SimDuration max_delay() const { return max_delay_; }

 private:
  // Builds the column-major copy and max_delay_ from delays_.
  void BuildTranspose();

  size_t n_;
  std::vector<SimDuration> delays_;
  std::vector<SimDuration> by_receiver_;
  SimDuration max_delay_ = 0;
};

// How many validators a deployment may have before the consensus message
// plane stops materialising the n×n delay matrix and switches to the
// streamed large-N model. 512 keeps every paper-scale configuration
// (≤ 200 nodes) on the bit-exact dense path while fig3-XL deployments
// (1k–100k) stay at O(n) bytes.
inline constexpr size_t kDenseVoteDelayThreshold = 512;

// The vote-delay plane of one deployment: a dense PairwiseDelays matrix
// below `dense_threshold` hosts, a StreamedDelays model at or above it.
// Engines hold one of these and call the facade kernels below; which
// representation backs a deployment never changes mid-run.
class VoteDelays {
 public:
  VoteDelays(Network* net, const std::vector<HostId>& hosts, int64_t message_bytes,
             size_t dense_threshold = kDenseVoteDelayThreshold);

  bool dense() const { return matrix_ != nullptr; }
  size_t size() const { return n_; }

  SimDuration at(size_t from, size_t to) const {
    return matrix_ != nullptr ? matrix_->at(from, to) : streamed_->at(from, to);
  }

  const PairwiseDelays& matrix() const { return *matrix_; }
  const StreamedDelays& streamed() const { return *streamed_; }

  // Bytes owned by the plane: quadratic in n when dense, linear when
  // streamed. The fig3-XL memory-budget tests assert the streamed bound.
  size_t ApproxBytes() const;

 private:
  size_t n_ = 0;
  std::unique_ptr<PairwiseDelays> matrix_;
  std::unique_ptr<StreamedDelays> streamed_;
};

// Carry-over state for the adaptive-window selector. Purely an accelerator:
// whatever the hint holds, the selected value is exact, so this state never
// influences simulation output — only how fast it is produced.
struct SelectionHint {
  SimDuration center = 0;
  SimDuration span = 0;
  bool valid = false;
};

// Reusable working memory for one engine's message plane: order-statistic
// buffers, per-round stage vectors, and broadcast scratch. Allocated once per
// ChainContext and warm after the first round.
struct MessagePlaneScratch {
  // Selection working buffers (sized to the validator count on first use).
  std::vector<SimDuration> buf;
  std::vector<SimDuration> win;
  // One hint per vote stage: the two QuorumArrivalAll stages of a
  // PBFT-style round see different delay distributions, so they track
  // separate windows. The median has its own.
  SelectionHint quorum_hint[2];
  SelectionHint median_hint;
  // Per-round vectors the engines refill each round.
  std::vector<SimDuration> stage_a;
  std::vector<SimDuration> stage_b;
  std::vector<SimDuration> stage_c;
  std::vector<SimDuration> senders;
  std::vector<SimDuration> round_trips;
  std::vector<uint32_t> committee;
  // Second committee for the large-N sampled rounds (BA* selects the next
  // step's committee up front so each step only evaluates its receivers).
  std::vector<uint32_t> committee_b;
  // Receiver de-duplication for the committee-sampled kernels.
  VoteBitset receiver_bits;
  // Full-width send-times expansion of a compact sender list (dense
  // committee path only — the streamed path never widens to n).
  std::vector<SimDuration> expanded;
  BroadcastScratch broadcast;
};

// Time at which `receiver` holds votes from `quorum` distinct senders, when
// sender j starts broadcasting its vote at send_times[j] (kUnreachable = that
// sender never votes). Senders include the receiver itself (self-votes are
// instant). `hop_scale` multiplies each vote's network delay: on large
// deployments votes relay through a bounded-degree p2p mesh instead of
// travelling one hop (see GossipHopScale). Returns kUnreachable when fewer
// than `quorum` senders vote.
SimDuration QuorumArrival(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t receiver,
                          size_t quorum, double hop_scale = 1.0);

// QuorumArrival for every receiver at once.
std::vector<SimDuration> QuorumArrivalAll(const PairwiseDelays& delays,
                                          const std::vector<SimDuration>& send_times,
                                          size_t quorum, double hop_scale = 1.0);

// Allocation-free forms over caller scratch; results are bit-identical to the
// allocating versions. `hint_slot` (0 or 1) picks which carried selection
// window to use — engines pass 0 for their first vote stage and 1 for the
// second.
SimDuration QuorumArrivalInto(const PairwiseDelays& delays,
                              const std::vector<SimDuration>& send_times,
                              size_t receiver, size_t quorum, double hop_scale,
                              MessagePlaneScratch* scratch, int hint_slot = 0);
void QuorumArrivalAllInto(const PairwiseDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t quorum,
                          double hop_scale, MessagePlaneScratch* scratch,
                          std::vector<SimDuration>* result, int hint_slot = 0);

// Expected relay hops for flooding a vote through a p2p mesh of n nodes
// with ~25 direct peers: 1 + log2(n / 25), at least 1.
double GossipHopScale(int n);

// Smallest f such that n >= 3f + 1, i.e. the Byzantine fault tolerance of an
// n-node deployment; quorum is 2f + 1.
int ByzantineQuorum(int n);

// Median of a delay vector, ignoring kUnreachable entries; kUnreachable when
// every entry is unreachable.
SimDuration MedianDelay(const std::vector<SimDuration>& delays);

// Allocation-free MedianDelay over caller scratch; bit-identical result.
SimDuration MedianDelayInto(const std::vector<SimDuration>& delays,
                            MessagePlaneScratch* scratch);

// --- facade kernels over either delay representation ------------------------
// Dense deployments dispatch to the exact windowed kernels above (results are
// bit-identical to calling them directly); streamed deployments run the
// large-N kernels, which never touch an n×n matrix. In checked builds the
// streamed answers are cross-checked against the dense kernels over a
// materialised copy of the model at small n.

SimDuration QuorumArrivalInto(const VoteDelays& delays,
                              const std::vector<SimDuration>& send_times,
                              size_t receiver, size_t quorum, double hop_scale,
                              MessagePlaneScratch* scratch, int hint_slot = 0);

void QuorumArrivalAllInto(const VoteDelays& delays,
                          const std::vector<SimDuration>& send_times, size_t quorum,
                          double hop_scale, MessagePlaneScratch* scratch,
                          std::vector<SimDuration>* result, int hint_slot = 0);

// Committee-sampled round: the arrival of `quorum` of the listed senders'
// votes, evaluated only at the listed receivers. `result` is sized to n with
// kUnreachable everywhere else; duplicated receivers are computed once
// (tracked in scratch->receiver_bits). This is the O(committee²) round shape
// the sampling engines use at large N, where evaluating every one of 10k+
// receivers per step would bring the O(n²) flood back in through compute.
void QuorumArrivalCommitteeInto(const VoteDelays& delays,
                                const std::vector<uint32_t>& senders,
                                const std::vector<SimDuration>& sender_times,
                                const std::vector<uint32_t>& receivers, size_t n,
                                size_t quorum, double hop_scale,
                                MessagePlaneScratch* scratch,
                                std::vector<SimDuration>* result, int hint_slot = 0);

}  // namespace diablo

#endif  // SRC_CHAIN_VOTE_ROUND_H_
