#include "src/chain/node.h"

#include <algorithm>

#include "src/support/check.h"

namespace diablo {

ChainContext::ChainContext(Simulation* sim, Network* net, DeploymentConfig deployment,
                           ChainParams params)
    : sim_(sim),
      net_(net),
      deployment_(std::move(deployment)),
      params_(std::move(params)),
      rng_(sim->ForkRng()),
      validators_(deployment_),
      oracle_(params_.dialect),
      mempool_(params_.mempool, &rng_) {
  hosts_.reserve(static_cast<size_t>(deployment_.node_count));
  for (int i = 0; i < deployment_.node_count; ++i) {
    hosts_.push_back(net_->AddHost(validators_.region(i)));
  }
  // Delay plane for consensus votes (small fixed-size messages): a dense
  // matrix at paper scale, the streamed model at fig3-XL scale.
  vote_delays_ = std::make_unique<VoteDelays>(net_, hosts_, /*message_bytes=*/256);
  exec_model_.gas_per_second_per_vcpu = params_.gas_per_sec_per_vcpu;
}

double ChainContext::RecentArrivalRate(SimTime now) const {
  const size_t second = static_cast<size_t>(now / kSecond);
  // Use the last completed window; the current one is still filling.
  if (second == 0 || second - 1 >= arrivals_per_second_.size()) {
    return 0.0;
  }
  return static_cast<double>(arrivals_per_second_[second - 1]);
}

bool ChainContext::SubmitAtEndpoint(TxId id, int endpoint, SimTime arrival,
                                    bool drop_on_reject) {
  Transaction& tx = txs_.at(id);
  if (NodeDown(endpoint)) {
    // The request reached a crashed node's address: nobody answers it.
    if (drop_on_reject) {
      DropTx(id);
    }
    return false;
  }
  const size_t second = static_cast<size_t>(arrival / kSecond);
  if (second >= arrivals_per_second_.size()) {
    arrivals_per_second_.resize(second + 1, 0);
  }
  ++arrivals_per_second_[second];
  // Gossip readiness: half a batching interval on average, plus the one-way
  // delay from the ingress node to a representative peer.
  const int peer = static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(node_count())));
  SimDuration gossip = net_->DelaySample(hosts_[static_cast<size_t>(endpoint)],
                                         hosts_[static_cast<size_t>(peer)],
                                         tx.size_bytes + 64);
  if (gossip == kUnreachable) {
    gossip = Milliseconds(500);
  }
  const SimDuration batch_wait = static_cast<SimDuration>(
      rng_.NextBelow(static_cast<uint64_t>(params_.gossip_batch_interval) + 1));
  const SimTime ready = arrival + batch_wait + gossip;

  TxId evicted = kInvalidTx;
  const AdmitResult result = mempool_.Add(id, tx.account, arrival, ready, &evicted);
  if (evicted != kInvalidTx) {
    DropTx(evicted);
  }
  if (result != AdmitResult::kAdmitted) {
    if (drop_on_reject) {
      DropTx(id);
    }
    return false;
  }
  tx.phase = TxPhase::kSubmitted;
  return true;
}

void ChainContext::SetNodeDown(int node, bool down) {
  validators_.SetDown(node, down);
  net_->SetPartitioned(hosts_[static_cast<size_t>(node)], down);
}

void ChainContext::SetCpuFactor(int node, double factor) {
  validators_.SetCpuFactor(node, factor);
}

void ChainContext::SetAdversary(int node, uint8_t bits, bool on) {
  validators_.SetAdversary(node, bits, on);
}

void ChainContext::SetCensoredSigners(std::vector<uint32_t> signers) {
  censored_signers_ = std::move(signers);
  std::sort(censored_signers_.begin(), censored_signers_.end());
}

void ChainContext::ApplyVoteAdversaries(std::vector<SimDuration>* delays) {
  if (!validators_.AnyAdversary()) {
    return;
  }
  for (size_t node = 0; node < delays->size(); ++node) {
    const uint8_t bits = validators_.Adversary(static_cast<int>(node));
    if (bits == 0) {
      continue;
    }
    SimDuration& delay = (*delays)[node];
    if (delay == kUnreachable) {
      continue;  // already down or partitioned; nothing left to withhold
    }
    if ((bits & kAdversaryWithhold) != 0) {
      delay = kUnreachable;
      ++stats_.votes_withheld;
    } else if ((bits & kAdversaryDoubleVote) != 0) {
      // The honest vote stands; the duplicate is detected and discarded, so
      // it contributes evidence but never a second quorum slot.
      ++stats_.double_votes_seen;
    }
  }
}

void ChainContext::ApplyVoteAdversaries(std::vector<SimDuration>* delays,
                                        const std::vector<uint32_t>& members) {
  if (!validators_.AnyAdversary()) {
    return;
  }
  const size_t count = std::min(delays->size(), members.size());
  for (size_t pos = 0; pos < count; ++pos) {
    const uint8_t bits = validators_.Adversary(static_cast<int>(members[pos]));
    if (bits == 0) {
      continue;
    }
    SimDuration& delay = (*delays)[pos];
    if (delay == kUnreachable) {
      continue;
    }
    if ((bits & kAdversaryWithhold) != 0) {
      delay = kUnreachable;
      ++stats_.votes_withheld;
    } else if ((bits & kAdversaryDoubleVote) != 0) {
      ++stats_.double_votes_seen;
    }
  }
}

void ChainContext::AbandonBlock(const BuiltBlock& built, SimTime now) {
  ++stats_.blocks_abandoned;
  if (built.tx_count == 0) {
    return;
  }
  DIABLO_CHECK(static_cast<size_t>(built.tx_begin) + built.tx_count <=
                   block_txs_.size(),
               "abandoned block's (tx_begin, tx_count) range escapes the block-tx pool");
  abandon_ids_.clear();
  abandon_signers_.clear();
  abandon_ingress_.clear();
  abandon_ready_.clear();
  for (const TxId id : BlockTxs(built)) {
    const Transaction& tx = txs_.at(id);
    abandon_ids_.push_back(id);
    abandon_signers_.push_back(tx.account);
    abandon_ingress_.push_back(tx.submit_time);
    abandon_ready_.push_back(now);
  }
  mempool_.Requeue(abandon_ids_, abandon_signers_, abandon_ingress_, abandon_ready_);
}

void ChainContext::RequeueBlockTail(BuiltBlock* built, uint32_t keep,
                                    SimTime now) {
  DIABLO_CHECK(static_cast<size_t>(built->tx_begin) + built->tx_count ==
                   block_txs_.size(),
               "RequeueBlockTail only applies to the most recently drafted block");
  if (keep >= built->tx_count) {
    return;
  }
  abandon_ids_.clear();
  abandon_signers_.clear();
  abandon_ingress_.clear();
  abandon_ready_.clear();
  for (size_t i = static_cast<size_t>(built->tx_begin) + keep;
       i < block_txs_.size(); ++i) {
    const TxId id = block_txs_[i];
    const Transaction& tx = txs_.at(id);
    abandon_ids_.push_back(id);
    abandon_signers_.push_back(tx.account);
    abandon_ingress_.push_back(tx.submit_time);
    abandon_ready_.push_back(now);
  }
  mempool_.Requeue(abandon_ids_, abandon_signers_, abandon_ingress_, abandon_ready_);
  block_txs_.resize(static_cast<size_t>(built->tx_begin) + keep);
  built->tx_count = keep;
  built->gas = 0;
  built->bytes = kBlockHeaderBytes;
  const int64_t* gas_table = txs_.gas_data();
  const int32_t* bytes_table = txs_.bytes_data();
  for (const TxId id : BlockTxs(*built)) {
    built->gas += gas_table[id];
    built->bytes += bytes_table[id];
  }
}

ChainContext::BuiltBlock ChainContext::BuildBlock(SimTime now, int proposer) {
  // The shared-pool model makes drafting proposer-agnostic; the proposer
  // index only matters for straggler and adversary injection below.
  BuiltBlock built;

  // A lazy proposer seals a deliberately empty block: no pool scan, no
  // execution, just the sealing itself.
  if (validators_.AnyAdversary() &&
      (validators_.Adversary(proposer) & kAdversaryLazy) != 0 &&
      !NodeDown(proposer)) {
    built.tx_begin = static_cast<uint32_t>(block_txs_.size());
    ++stats_.lazy_proposals;
    return built;
  }

  // Congestion model: a growing pending set erodes the usable block
  // capacity by threshold / (threshold + backlog) — the node spends its
  // time shuffling queues instead of packing blocks (§6.3). With a small
  // backlog the factor is ~1; chains with threshold 0 are immune.
  size_t max_txs = params_.max_block_txs;
  int64_t gas_limit = params_.block_gas_limit;
  if (params_.ingress_capacity > 0) {
    const double rate = RecentArrivalRate(now);
    const double factor =
        params_.ingress_capacity / (params_.ingress_capacity + rate);
    max_txs = std::max<size_t>(1, static_cast<size_t>(static_cast<double>(max_txs) * factor));
  }
  if (params_.congestion_threshold > 0 && mempool_.size() > 0) {
    const double factor = static_cast<double>(params_.congestion_threshold) /
                          static_cast<double>(params_.congestion_threshold + mempool_.size());
    max_txs = std::max<size_t>(1, static_cast<size_t>(static_cast<double>(max_txs) * factor));
    if (gas_limit > 0) {
      // Never shrink below one worst-case transaction so the head of the
      // queue cannot wedge.
      gas_limit = std::max<int64_t>(
          params_.block_gas_limit / 100,
          static_cast<int64_t>(static_cast<double>(gas_limit) * factor));
    }
  }

  // Taken ids go straight into the context's flat block-tx pool; the
  // expired batch is per-block scratch served from the arena. With both
  // pre-sized, drafting a block performs no heap allocation.
  scratch_arena_.Reset();
  ArenaVector<TxId> expired(&scratch_arena_);
  built.tx_begin = static_cast<uint32_t>(block_txs_.size());
  const int64_t* gas_table = txs_.gas_data();
  const int32_t* bytes_table = txs_.bytes_data();
  mempool_.TakeReady(
      now, gas_limit, params_.max_block_bytes, max_txs,
      [gas_table](TxId id) { return gas_table[id]; },
      [bytes_table](TxId id) { return static_cast<int64_t>(bytes_table[id]); },
      &block_txs_, &expired);
  built.tx_count = static_cast<uint32_t>(block_txs_.size()) - built.tx_begin;
  DIABLO_CHECK(built.tx_count <= max_txs,
               "TakeReady returned more transactions than the block's cap");
  for (const TxId id : expired) {
    ++stats_.txs_expired;
    DropTx(id);
  }

  // Censorship: a censoring proposer silently leaves the targeted signers'
  // transactions out of its draft. They go back to the pool (takeable
  // immediately), so an honest proposer picks them up later — censorship
  // delays the victims, it cannot drop them.
  if (!censored_signers_.empty() && built.tx_count > 0 &&
      (validators_.Adversary(proposer) & kAdversaryCensor) != 0 &&
      !NodeDown(proposer)) {
    abandon_ids_.clear();
    abandon_signers_.clear();
    abandon_ingress_.clear();
    abandon_ready_.clear();
    size_t write = built.tx_begin;
    for (size_t i = built.tx_begin; i < block_txs_.size(); ++i) {
      const TxId id = block_txs_[i];
      const Transaction& tx = txs_.at(id);
      if (std::binary_search(censored_signers_.begin(), censored_signers_.end(),
                             tx.account)) {
        ++stats_.txs_censored;
        abandon_ids_.push_back(id);
        abandon_signers_.push_back(tx.account);
        abandon_ingress_.push_back(tx.submit_time);
        abandon_ready_.push_back(now);
      } else {
        block_txs_[write++] = id;
      }
    }
    if (!abandon_ids_.empty()) {
      block_txs_.resize(write);
      built.tx_count = static_cast<uint32_t>(write) - built.tx_begin;
      mempool_.Requeue(abandon_ids_, abandon_signers_, abandon_ingress_,
                       abandon_ready_);
    }
  }

  for (const TxId id : BlockTxs(built)) {
    built.gas += gas_table[id];
    built.bytes += bytes_table[id];
  }

  // Proposer work: scan of the pending set, block execution, signature
  // verification.
  built.build_time = PoolScanTime() + ExecAndVerifyTime(built.gas, built.tx_count);
  if (validators_.AnyCpuOverride()) {
    const double factor = validators_.CpuFactor(proposer);
    if (factor < 1.0) {
      built.build_time =
          static_cast<SimDuration>(static_cast<double>(built.build_time) / factor);
    }
  }
  return built;
}

SimDuration ChainContext::PoolScanTime() const {
  const double pending = static_cast<double>(mempool_.size());
  const double linear =
      static_cast<double>(params_.proposal_overhead_per_pending_tx) * pending;
  const double kilo = pending / 1000.0;
  const double quadratic =
      static_cast<double>(params_.proposal_overhead_quadratic) * kilo * kilo;
  return static_cast<SimDuration>(linear + quadratic);
}

SimDuration ChainContext::ExecAndVerifyTime(int64_t gas, size_t tx_count) const {
  const int vcpus = deployment_.machine.vcpus;
  const SimDuration exec = exec_model_.ExecTime(gas, vcpus);
  const SimDuration verify =
      CostOf(params_.sig_scheme).verify * static_cast<SimDuration>(tx_count) / vcpus;
  return exec + verify;
}

void ChainContext::FinalizeBlock(uint64_t height, int proposer, BuiltBlock&& built,
                                 SimTime proposed_at, SimTime final_time) {
  ++stats_.blocks_produced;
  if (built.tx_count == 0) {
    ++stats_.empty_blocks;
  }
  DIABLO_CHECK(static_cast<size_t>(built.tx_begin) + built.tx_count <=
                   block_txs_.size(),
               "finalized block's (tx_begin, tx_count) range escapes the block-tx pool");
  DIABLO_CHECK(final_time >= proposed_at,
               "a block cannot finalize before it was proposed");

  // Commit-safety invariant: no two committed blocks may ever share a
  // height with different contents — whatever adversary schedule is armed,
  // the engines' equivocation defenses must funnel exactly one proposal per
  // height into FinalizeBlock. Pure observer: hashes already-final data.
  DIABLO_CHECKED_ONLY({
    Sha256 hasher;
    hasher.Update(&height, sizeof(height));
    hasher.Update(&built.gas, sizeof(built.gas));
    hasher.Update(&built.tx_count, sizeof(built.tx_count));
    const std::span<const TxId> ids = BlockTxs(built);
    hasher.Update(ids.data(), ids.size_bytes());
    const Digest256 digest = hasher.Finish();
    if (stats_.blocks_produced > 1 && height <= last_commit_height_) {
      DIABLO_CHECK(height == last_commit_height_ && digest == last_commit_digest_,
                   "safety violation: two committed blocks at one height "
                   "with different contents");
    }
    last_commit_height_ = height;
    last_commit_digest_ = digest;
  })

  Block block;
  block.height = height;
  block.proposer = static_cast<uint32_t>(proposer);
  block.gas_used = built.gas;
  block.bytes = built.bytes;
  block.proposed_at = proposed_at;
  block.finalized_at = final_time;
  block.tx_begin = built.tx_begin;
  block.tx_count = built.tx_count;

  for (const TxId id : BlockTxs(block)) {
    Transaction& tx = txs_.at(id);
    // Client observation: collocated secondaries learn of the commit on the
    // next head notification.
    const SimDuration observe =
        Milliseconds(1) + static_cast<SimDuration>(rng_.NextBelow(
                              static_cast<uint64_t>(params_.client_poll_interval) + 1));
    const SimTime commit_time = final_time + observe;
    if (tx.exec_status == VmStatus::kOk) {
      tx.phase = TxPhase::kCommitted;
      ++stats_.txs_committed;
    } else {
      tx.phase = TxPhase::kAborted;
    }
    tx.commit_time = commit_time;
    if (on_tx_complete) {
      on_tx_complete(id);
    }
  }
  ledger_.Append(block);
}

void ChainContext::DropTx(TxId id, VmStatus reason) {
  Transaction& tx = txs_.at(id);
  tx.phase = TxPhase::kDropped;
  if (reason != VmStatus::kOk) {
    tx.exec_status = reason;
  }
  ++stats_.txs_dropped;
  if (on_tx_complete) {
    on_tx_complete(id);
  }
}

}  // namespace diablo
