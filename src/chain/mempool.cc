#include "src/chain/mempool.h"

namespace diablo {

void Mempool::Reserve(size_t expected_txs) {
  if (expected_txs > state_.size()) {
    state_.resize(expected_txs, kGone);
    ingress_.resize(expected_txs, 0);
    signer_of_.resize(expected_txs, 0);
  }
  // The pending set is bounded by the cap when there is one; otherwise be
  // generous up to the event queue's pre-sizing convention.
  const size_t pending =
      config_.global_cap > 0
          ? std::min(expected_txs, config_.global_cap + 1)
          : std::min<size_t>(expected_txs, 65536);
  heap_.reserve(pending);
  if (config_.evict_on_full) {
    ring_.reserve(pending * 2);
  }
}

void Mempool::HeapPush(HeapEntry entry) {
  // Hole insertion: bubble the hole up, one move per level instead of a
  // three-move swap.
  heap_.push_back(entry);
  size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const size_t parent = (hole - 1) / 2;
    if (!Later(heap_[parent], entry)) {
      break;
    }
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = entry;
}

void Mempool::HeapPopTop() {
  // Bottom-up pop: the replacement element comes from the back of the
  // array, so it almost always belongs near a leaf again. Sift the hole
  // all the way down choosing the smaller child (one comparison per
  // level, never against `moving`), then bubble `moving` back up the few
  // levels it needs — fewer comparisons than the classic top-down sift.
  const HeapEntry moving = heap_.back();
  heap_.pop_back();
  const size_t count = heap_.size();
  if (count == 0) {
    return;
  }
  size_t hole = 0;
  size_t child = 2 * hole + 1;
  while (child < count) {
    if (child + 1 < count && Later(heap_[child], heap_[child + 1])) {
      ++child;
    }
    heap_[hole] = heap_[child];
    hole = child;
    child = 2 * hole + 1;
  }
  while (hole > 0) {
    const size_t parent = (hole - 1) / 2;
    if (!Later(heap_[parent], moving)) {
      break;
    }
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = moving;
}

AdmitResult Mempool::Add(TxId id, uint32_t signer, SimTime ingress_time,
                         SimTime ready_time, TxId* evicted) {
  guard_.AssertAccess();
  if (evicted != nullptr) {
    *evicted = kInvalidTx;
  }
  if (config_.global_cap > 0 && live_count_ >= config_.global_cap) {
    if (!config_.evict_on_full || rng_ == nullptr) {
      ++rejected_;
      return AdmitResult::kPoolFull;
    }
    const TxId victim = EvictRandom();
    if (victim == kInvalidTx) {
      ++rejected_;
      return AdmitResult::kPoolFull;
    }
    if (evicted != nullptr) {
      *evicted = victim;
    }
  }
  if (config_.per_signer_cap > 0) {
    if (static_cast<size_t>(signer) >= signer_counts_.size()) {
      signer_counts_.resize(static_cast<size_t>(signer) + 1, 0);
    }
    uint32_t& count = signer_counts_[signer];
    if (count >= config_.per_signer_cap) {
      ++rejected_;
      return AdmitResult::kSignerCapReached;
    }
    ++count;
  }
  EnsureTx(id);
  state_[id] = kLive;
  ingress_[id] = ingress_time;
  signer_of_[id] = signer;
  HeapPush(HeapEntry{ready_time, id});
  if (config_.evict_on_full) {
    ring_.push_back(id);
    CompactRingIfNeeded();
  }
  ++live_count_;
  ++admitted_;
  CheckConsistencySampled();
  return AdmitResult::kAdmitted;
}

TxId Mempool::EvictRandom() {
  while (!ring_.empty()) {
    const size_t slot = rng_->NextBelow(ring_.size());
    const TxId id = ring_[slot];
    ring_[slot] = ring_.back();
    ring_.pop_back();
    if (state_[id] != kLive) {
      continue;  // stale slot: already taken/expired/evicted
    }
    // Live victim: mark it a zombie so TakeReady skips its heap entry.
    state_[id] = kZombie;
    ReleaseSigner(signer_of_[id]);
    --live_count_;
    ++evictions_;
    return id;
  }
  return kInvalidTx;
}

void Mempool::CompactRingIfNeeded() {
  if (ring_.size() < 64 || ring_.size() < 2 * live_count_) {
    return;
  }
  // Keep live slots, preserving order, without a scratch vector.
  size_t out = 0;
  for (const TxId id : ring_) {
    if (state_[id] == kLive) {
      ring_[out++] = id;
    }
  }
  ring_.resize(out);
}

void Mempool::Requeue(const std::vector<TxId>& txs, const std::vector<uint32_t>& signers,
                      const std::vector<SimTime>& ingress,
                      const std::vector<SimTime>& ready) {
  guard_.AssertAccess();
  for (size_t i = 0; i < txs.size(); ++i) {
    if (config_.per_signer_cap > 0) {
      if (static_cast<size_t>(signers[i]) >= signer_counts_.size()) {
        signer_counts_.resize(static_cast<size_t>(signers[i]) + 1, 0);
      }
      ++signer_counts_[signers[i]];
    }
    EnsureTx(txs[i]);
    state_[txs[i]] = kLive;
    ingress_[txs[i]] = ingress[i];
    signer_of_[txs[i]] = signers[i];
    HeapPush(HeapEntry{ready[i], txs[i]});
    if (config_.evict_on_full) {
      ring_.push_back(txs[i]);
    }
    ++live_count_;
  }
  CheckConsistencySampled();
}

#if defined(DIABLO_CHECKED)
namespace {
// One full table scan every 1024 pool operations: frequent enough that a
// bookkeeping bug trips within the block it was introduced, cheap enough
// that checked ctest runs stay interactive.
constexpr uint64_t kCheckCadence = 1024;
}  // namespace

void Mempool::CheckConsistencySampled() {
  if (++check_tick_ % kCheckCadence == 0) {
    CheckConsistency();
  }
}

void Mempool::CheckConsistency() const {
  size_t live = 0;
  size_t zombie = 0;
  for (const uint8_t s : state_) {
    live += s == kLive;
    zombie += s == kZombie;
  }
  DIABLO_CHECK(live == live_count_,
               "mempool live_count_ disagrees with the lifecycle table");
  DIABLO_CHECK(heap_.size() == live + zombie,
               "mempool heap entries must map 1:1 onto live and zombie ids");
  for (const HeapEntry& entry : heap_) {
    DIABLO_CHECK(static_cast<size_t>(entry.id) < state_.size() &&
                     state_[entry.id] != kGone,
                 "mempool heap entry refers to an id that already left the pool");
  }
  if (config_.per_signer_cap > 0) {
    size_t signer_total = 0;
    for (const uint32_t count : signer_counts_) {
      signer_total += count;
    }
    DIABLO_CHECK(signer_total == live_count_,
                 "mempool per-signer counts must sum to the live count");
  }
}
#endif

}  // namespace diablo
