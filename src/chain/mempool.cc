#include "src/chain/mempool.h"

namespace diablo {

AdmitResult Mempool::Add(TxId id, uint32_t signer, SimTime ingress_time,
                         SimTime ready_time, TxId* evicted) {
  if (evicted != nullptr) {
    *evicted = kInvalidTx;
  }
  if (config_.global_cap > 0 && live_count_ >= config_.global_cap) {
    if (!config_.evict_on_full || rng_ == nullptr) {
      ++rejected_;
      return AdmitResult::kPoolFull;
    }
    const TxId victim = EvictRandom();
    if (victim == kInvalidTx) {
      ++rejected_;
      return AdmitResult::kPoolFull;
    }
    if (evicted != nullptr) {
      *evicted = victim;
    }
  }
  if (config_.per_signer_cap > 0) {
    uint32_t& count = signer_counts_[signer];
    if (count >= config_.per_signer_cap) {
      ++rejected_;
      return AdmitResult::kSignerCapReached;
    }
    ++count;
  }
  queue_.push(Entry{ready_time, ingress_time, id, signer});
  if (config_.evict_on_full) {
    ring_.emplace_back(id, signer);
    CompactRingIfNeeded();
  }
  ++live_count_;
  ++admitted_;
  return AdmitResult::kAdmitted;
}

TxId Mempool::EvictRandom() {
  while (!ring_.empty()) {
    const size_t slot = rng_->NextBelow(ring_.size());
    const auto [id, signer] = ring_[slot];
    ring_[slot] = ring_.back();
    ring_.pop_back();
    if (gone_.erase(id) > 0) {
      continue;  // stale slot: already taken/expired/evicted
    }
    // Live victim: mark it a zombie so TakeReady skips its queue entry.
    zombies_.insert(id);
    ReleaseSigner(signer);
    --live_count_;
    ++evictions_;
    return id;
  }
  return kInvalidTx;
}

void Mempool::CompactRingIfNeeded() {
  if (ring_.size() < 64 || ring_.size() < 2 * live_count_) {
    return;
  }
  std::vector<std::pair<TxId, uint32_t>> compacted;
  compacted.reserve(live_count_);
  for (const auto& [id, signer] : ring_) {
    if (gone_.erase(id) > 0) {
      continue;
    }
    compacted.emplace_back(id, signer);
  }
  ring_ = std::move(compacted);
}

void Mempool::NoteGone(TxId id) {
  if (config_.evict_on_full) {
    gone_.insert(id);
  }
}

void Mempool::ReleaseSigner(uint32_t signer) {
  if (config_.per_signer_cap == 0) {
    return;
  }
  const auto it = signer_counts_.find(signer);
  if (it != signer_counts_.end() && it->second > 0) {
    --it->second;
  }
}

void Mempool::Requeue(const std::vector<TxId>& txs, const std::vector<uint32_t>& signers,
                      const std::vector<SimTime>& ingress,
                      const std::vector<SimTime>& ready) {
  for (size_t i = 0; i < txs.size(); ++i) {
    if (config_.per_signer_cap > 0) {
      ++signer_counts_[signers[i]];
    }
    queue_.push(Entry{ready[i], ingress[i], txs[i], signers[i]});
    if (config_.evict_on_full) {
      ring_.emplace_back(txs[i], signers[i]);
    }
    ++live_count_;
  }
}

}  // namespace diablo
