// Transactions and their flat arena.
//
// A benchmark run can carry millions of transactions (the YouTube workload
// submits ~38,761 TPS), so Transaction is kept compact and lives in one
// contiguous TxStore indexed by TxId.
#ifndef SRC_CHAIN_TX_H_
#define SRC_CHAIN_TX_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/support/time.h"
#include "src/vm/interpreter.h"

namespace diablo {

using TxId = uint32_t;
inline constexpr TxId kInvalidTx = UINT32_MAX;

enum class TxPhase : uint8_t {
  kCreated = 0,   // encoded, not yet submitted
  kSubmitted,     // sent by a secondary, in flight or pending in a mempool
  kCommitted,     // included in a final block, executed successfully
  kDropped,       // rejected or evicted by a mempool, or expired
  kAborted,       // included but execution failed (revert / budget exceeded)
};

std::string_view TxPhaseName(TxPhase phase);

struct Transaction {
  uint32_t account = 0;    // signer
  uint32_t sequence = 0;   // per-signer sequence number
  int16_t contract = -1;   // index into the run's deployed contracts; -1 = native transfer
  int16_t function = -1;   // index into the contract's function table
  int64_t gas = 0;         // execution cost, including intrinsic gas
  int32_t size_bytes = 0;  // wire size
  SimTime submit_time = -1;
  SimTime commit_time = -1;
  // Read-only calls (e.g. the exchange DApp's checkStock) are served by the
  // endpoint directly and never enter consensus.
  bool read_only = false;
  TxPhase phase = TxPhase::kCreated;
  VmStatus exec_status = VmStatus::kOk;

  double LatencySeconds() const {
    return commit_time < 0 || submit_time < 0
               ? -1.0
               : ToSeconds(commit_time - submit_time);
  }
};

class TxStore {
 public:
  TxId Add(const Transaction& tx);
  Transaction& at(TxId id) { return txs_[id]; }
  const Transaction& at(TxId id) const { return txs_[id]; }
  size_t size() const { return txs_.size(); }
  void Reserve(size_t n) {
    txs_.reserve(n);
    gas_.reserve(n);
    bytes_.reserve(n);
  }

  // Flat per-transaction cost tables, snapshot at Add (gas and size_bytes
  // are immutable afterwards): block assembly's gas_of/bytes_of callbacks
  // become single dense-array loads instead of striding 48-byte Transaction
  // records.
  int64_t gas_of(TxId id) const { return gas_[id]; }
  int32_t bytes_of(TxId id) const { return bytes_[id]; }
  const int64_t* gas_data() const { return gas_.data(); }
  const int32_t* bytes_data() const { return bytes_.data(); }

  // Counts by phase, in TxPhase order.
  std::vector<size_t> PhaseCounts() const;

 private:
  std::vector<Transaction> txs_;
  std::vector<int64_t> gas_;
  std::vector<int32_t> bytes_;
};

}  // namespace diablo

#endif  // SRC_CHAIN_TX_H_
