// 4-ary-heap event queue for the discrete-event simulation.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties) so runs are deterministic
// regardless of heap internals.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/support/check.h"
#include "src/support/time.h"

namespace diablo {

class EventQueue {
 public:
  EventQueue();

  void Push(SimTime time, EventFn fn);

  // Pre-sizes the heap so a known burst of Push calls never reallocates.
  void Reserve(size_t events) { heap_.reserve(events); }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; undefined when empty.
  SimTime PeekTime() const { return heap_.front().time; }

  // Removes and returns the earliest event's callback, setting *time.
  EventFn Pop(SimTime* time);

  void Clear();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventFn fn;

    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  // Heap fan-out. 4 halves the depth of a binary heap and keeps the
  // sibling scan within one or two cache lines of contiguous entries.
  static constexpr size_t kArity = 4;

  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
  // Checked build: the (time, seq) total order must come out of Pop
  // monotonically — any heap bug that reorders events shows up as a
  // nonmonotone pop long before it shows up as wrong golden output.
  DIABLO_CHECKED_ONLY(SimTime last_pop_time_ = 0; uint64_t last_pop_seq_ = 0;
                      bool popped_any_ = false;)
};

}  // namespace diablo

#endif  // SRC_SIM_EVENT_QUEUE_H_
