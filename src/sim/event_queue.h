// 4-ary-heap event queue for the discrete-event simulation.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties) so runs are deterministic
// regardless of heap internals.
//
// Every entry also carries a shard tag. kSerialShard (the default) marks an
// event that must run on the simulation's serial loop; any other value names
// the logical shard (e.g. a secondary index) the event belongs to, which the
// windowed parallel scheduler in Simulation uses to fan a lookahead window of
// consecutive sharded events across workers. The tag never participates in
// ordering — pop order is the (time, seq) total order alone.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/support/check.h"
#include "src/support/time.h"

namespace diablo {

// Shard tag of events that must execute on the serial loop.
inline constexpr uint32_t kSerialShard = 0xffffffffu;

class EventQueue {
 public:
  EventQueue();

  void Push(SimTime time, EventFn fn);
  void Push(SimTime time, uint32_t shard, EventFn fn);

  // Pre-sizes the heap so a known burst of Push calls never reallocates.
  void Reserve(size_t events) { heap_.reserve(events); }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; undefined when empty.
  SimTime PeekTime() const { return heap_.front().time; }

  // Shard tag of the earliest pending event; undefined when empty.
  uint32_t PeekShard() const { return heap_.front().shard; }

  // Removes and returns the earliest event's callback, setting *time (and
  // *shard in the tagged overload).
  EventFn Pop(SimTime* time) {
    uint32_t shard = kSerialShard;
    return Pop(time, &shard);
  }
  EventFn Pop(SimTime* time, uint32_t* shard);

  void Clear();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    uint32_t shard;
    EventFn fn;

    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  // Heap fan-out. 4 halves the depth of a binary heap and keeps the
  // sibling scan within one or two cache lines of contiguous entries.
  static constexpr size_t kArity = 4;

  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
  // Checked build: the (time, seq) total order must come out of Pop
  // monotonically — any heap bug that reorders events shows up as a
  // nonmonotone pop long before it shows up as wrong golden output.
  DIABLO_CHECKED_ONLY(SimTime last_pop_time_ = 0; uint64_t last_pop_seq_ = 0;
                      bool popped_any_ = false;)
};

}  // namespace diablo

#endif  // SRC_SIM_EVENT_QUEUE_H_
