// The simulation driver: a single-threaded event loop over simulated time.
//
// Every component (blockchain node, diablo secondary, the network) schedules
// closures against this loop. The loop is deterministic: same seed, same
// schedule, same results.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <limits>

#include "src/sim/event_queue.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace diablo {

class Simulation {
 public:
  explicit Simulation(uint64_t seed);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay < 0 clamps to now).
  void Schedule(SimDuration delay, EventFn fn);

  // Schedules `fn` at an absolute time (past times clamp to now).
  void ScheduleAt(SimTime time, EventFn fn);

  // Runs events until the queue drains or simulated time would pass `until`.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime until);

  // Runs until the queue drains. Returns the number of events executed.
  uint64_t Run() { return RunUntil(std::numeric_limits<SimTime>::max()); }

  // Requests that the loop stop after the current event.
  void Stop() { stopped_ = true; }

  // Pre-sizes the event heap for a known number of in-flight events.
  void Reserve(size_t events) { queue_.Reserve(events); }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  // Root generator; components should call ForkRng() once at construction to
  // obtain an independent stream.
  Rng ForkRng() { return rng_.Fork(); }
  Rng& rng() { return rng_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  uint64_t events_executed_ = 0;
  Rng rng_;
};

}  // namespace diablo

#endif  // SRC_SIM_SIMULATION_H_
