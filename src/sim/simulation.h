// The simulation driver: an event loop over simulated time.
//
// Every component (blockchain node, diablo secondary, the network) schedules
// closures against this loop. The loop is deterministic: same seed, same
// schedule, same results.
//
// By default the loop is single-threaded. ConfigureCellWorkers() engages
// conservative time-window parallel execution *inside* the cell: events
// tagged with a shard (ScheduleOn / ScheduleAtOn) that sit within one
// lookahead window of each other are executed concurrently by a fixed worker
// pool, one shard never splitting across workers. The lookahead bound is the
// network's minimum link delay, so a window's events can only schedule work
// at or past the window end — which makes the windowed schedule equivalent
// to the serial one. Cross-worker pushes are buffered per worker and merged
// at the window barrier in canonical (source drain order, program order), so
// sequence numbers — and therefore every tie-break and every downstream draw
// — come out byte-identical to a serial run at any worker count.
//
// The lookahead bound may also be *window-aware*: SetLookaheadProvider()
// installs a callback queried at each window head that may return a larger
// bound than the configured floor (e.g. when every link is inside an active
// delay-spike window, the effective minimum link delay is higher). The
// provider can only enlarge windows, never shrink them below the configured
// lookahead, so the conservatism argument is unchanged; regime changes
// (spike onset/heal) are serial events, so no window ever spans one.
//
// Contract for sharded events (asserted under DIABLO_CHECKED):
//   - they only touch state owned by their shard, plus frozen shared state;
//   - every draw comes from a stream owned by the shard (detlint rule D6);
//   - everything they schedule targets time >= window end (conservatism);
//   - they never call Stop().
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/support/arena.h"
#include "src/support/rng.h"
#include "src/support/time.h"

namespace diablo {

class ThreadPool;

class Simulation {
 public:
  explicit Simulation(uint64_t seed);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time. Inside a parallel window each worker observes
  // the executing event's own timestamp, exactly as a serial run would.
  SimTime Now() const { return windowed_ ? WorkerNow() : now_; }

  // Schedules `fn` to run `delay` from now (delay < 0 clamps to now).
  void Schedule(SimDuration delay, EventFn fn);

  // Schedules `fn` at an absolute time (past times clamp to now).
  void ScheduleAt(SimTime time, EventFn fn);

  // Shard-tagged variants: the event may execute on a parallel worker when
  // cell workers are configured (it runs on the serial loop otherwise, in
  // exactly the same order).
  void ScheduleOn(uint32_t shard, SimDuration delay, EventFn fn);
  void ScheduleAtOn(uint32_t shard, SimTime time, EventFn fn);

  // Engages time-window parallel execution for sharded events with the given
  // worker count (>= 1; 1 runs the canonical windowed algorithm inline) and
  // conservative lookahead bound (> 0, normally Network::MinLinkDelay()).
  // Must be called before RunUntil. Never calling it keeps the legacy
  // single-threaded loop, bit-identical to previous releases.
  void ConfigureCellWorkers(int workers, SimDuration lookahead);

  int cell_workers() const { return workers_; }
  SimDuration lookahead() const { return lookahead_; }

  // Installs a window-aware lookahead bound, queried once per window with the
  // window head time. The effective span of a window is
  // max(lookahead(), provider(head)) — the provider can widen windows when
  // the instantaneous minimum link delay exceeds the static floor (delay
  // spikes), but can never shrink them, so a provider that misbehaves costs
  // correctness nothing. Must be a pure function of its argument and frozen
  // network state (it runs on the serial loop between windows).
  void SetLookaheadProvider(std::function<SimDuration(SimTime)> provider) {
    lookahead_provider_ = std::move(provider);
  }

  // Runs events until the queue drains or simulated time would pass `until`.
  // Returns the number of events executed.
  uint64_t RunUntil(SimTime until);

  // Runs until the queue drains. Returns the number of events executed.
  uint64_t Run() { return RunUntil(std::numeric_limits<SimTime>::max()); }

  // Requests that the loop stop after the current event. Serial events only.
  void Stop() { stopped_ = true; }

  // Pre-sizes the event heap for a known number of in-flight events.
  void Reserve(size_t events) { queue_.Reserve(events); }

  uint64_t events_executed() const { return events_executed_; }
  size_t pending_events() const { return queue_.size(); }

  // Window barriers crossed so far (0 outside windowed mode).
  uint64_t window_barriers() const { return window_barriers_; }

  // Scratch arena for the currently executing event: each parallel worker
  // owns one (reset at every window barrier), serial events share one owned
  // by the loop. Allocations must not outlive the window.
  Arena& scratch_arena();

  // Root generator; components should call ForkRng() once at construction to
  // obtain an independent stream.
  Rng ForkRng() { return rng_.Fork(); }
  Rng& rng() { return rng_; }

 private:
  // One buffered Push from a parallel window. `drain_index` is the position
  // of the source event in the window's drain order; merging by it (stably)
  // re-creates the exact sequence-number assignment of a serial run.
  struct BufferedPush {
    uint32_t drain_index;
    uint32_t shard;
    SimTime time;
    EventFn fn;
  };

  struct BatchEntry {
    SimTime time;
    uint32_t shard;
    EventFn fn;
  };

  // Per-worker owned state; workers never touch each other's.
  struct Worker {
    std::vector<BufferedPush> pushes;  // kept warm across windows
    Arena arena{256};                  // reset at every barrier
    uint64_t executed = 0;
  };

  uint64_t RunUntilLegacy(SimTime until);
  uint64_t RunUntilWindowed(SimTime until);
  // Drains and executes one parallel window; returns events executed.
  uint64_t RunWindow(SimTime until);
  // Executes this worker's slice of batch_ (entries with shard % workers_ ==
  // worker) in drain order, buffering every push.
  void ExecuteSlice(int worker);
  // Executes the whole batch in drain order on worker 0 (single-worker or
  // single-event windows).
  void ExecuteAllInline();
  void AdvanceToHorizon(SimTime until);
  SimTime WorkerNow() const;

  EventQueue queue_;
  SimTime now_ = 0;
  bool stopped_ = false;
  bool windowed_ = false;
  int workers_ = 0;
  SimDuration lookahead_ = 0;
  uint64_t events_executed_ = 0;
  uint64_t window_barriers_ = 0;
  // Occupancy accounting for windowed runs, fed to the profile counters at
  // destruction: events that ran on the serial loop (window breakers) and a
  // histogram of window batch sizes bucketed by floor(log2(size)).
  uint64_t serial_loop_events_ = 0;
  uint64_t window_hist_[16] = {};
  std::function<SimDuration(SimTime)> lookahead_provider_;
  std::vector<std::unique_ptr<Worker>> worker_state_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<BatchEntry> batch_;    // kept warm across windows
  std::vector<BufferedPush> merge_;  // kept warm across windows
  Arena serial_arena_{256};
  Rng rng_;
};

}  // namespace diablo

#endif  // SRC_SIM_SIMULATION_H_
