#include "src/sim/event_queue.h"

#include <utility>

namespace diablo {

void EventQueue::Push(SimTime time, EventFn fn) {
  heap_.push_back(Entry{time, next_seq_++, std::move(fn)});
  SiftUp(heap_.size() - 1);
}

EventFn EventQueue::Pop(SimTime* time) {
  Entry top = std::move(heap_.front());
  *time = top.time;
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    SiftDown(0);
  } else {
    heap_.pop_back();
  }
  return std::move(top.fn);
}

void EventQueue::Clear() {
  heap_.clear();
  next_seq_ = 0;
}

void EventQueue::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!(heap_[parent] > heap_[i])) {
      break;
    }
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t smallest = i;
    if (left < n && heap_[smallest] > heap_[left]) {
      smallest = left;
    }
    if (right < n && heap_[smallest] > heap_[right]) {
      smallest = right;
    }
    if (smallest == i) {
      return;
    }
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace diablo
