#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace diablo {

namespace {
// Typical runs schedule thousands of events before the first Pop; starting
// with a real allocation avoids the doubling churn of an empty vector.
constexpr size_t kInitialCapacity = 1024;
}  // namespace

EventQueue::EventQueue() { heap_.reserve(kInitialCapacity); }

void EventQueue::Push(SimTime time, EventFn fn) {
  Push(time, kSerialShard, std::move(fn));
}

void EventQueue::Push(SimTime time, uint32_t shard, EventFn fn) {
  heap_.push_back(Entry{time, next_seq_++, shard, std::move(fn)});
  SiftUp(heap_.size() - 1);
}

EventFn EventQueue::Pop(SimTime* time, uint32_t* shard) {
  Entry top = std::move(heap_.front());
  *time = top.time;
  *shard = top.shard;
#if defined(DIABLO_CHECKED)
  DIABLO_CHECK(!popped_any_ || top.time > last_pop_time_ ||
                   (top.time == last_pop_time_ && top.seq > last_pop_seq_),
               "event pops must follow the (time, seq) total order");
  last_pop_time_ = top.time;
  last_pop_seq_ = top.seq;
  popped_any_ = true;
#endif
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    SiftDown(0);
  } else {
    heap_.pop_back();
  }
  return std::move(top.fn);
}

void EventQueue::Clear() {
  heap_.clear();
  next_seq_ = 0;
  DIABLO_CHECKED_ONLY(popped_any_ = false; last_pop_time_ = 0; last_pop_seq_ = 0;)
}

// The heap is 4-ary (children of i are 4i+1..4i+4): half the depth of a
// binary heap, and the sibling scan walks contiguous memory — the classic
// layout for large discrete-event queues. Both sift loops use hole
// insertion: the displaced entry is held aside while lighter entries shift
// into the hole with a single move each, instead of the three moves a
// std::swap would cost per level. Pop order only depends on the (time, seq)
// total order, which none of this touches.
void EventQueue::SiftUp(size_t i) {
  if (i == 0) {
    return;
  }
  Entry moving = std::move(heap_[i]);
  while (i > 0) {
    const size_t parent = (i - 1) / kArity;
    if (!(heap_[parent] > moving)) {
      break;
    }
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(moving);
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  Entry moving = std::move(heap_[i]);
  while (true) {
    const size_t first = kArity * i + 1;
    if (first >= n) {
      break;
    }
    // Smallest child, lowest index winning ties (keeps the comparison
    // semantics of the binary version).
    size_t child = first;
    const size_t limit = std::min(first + kArity, n);
    for (size_t c = first + 1; c < limit; ++c) {
      if (heap_[child] > heap_[c]) {
        child = c;
      }
    }
    if (!(moving > heap_[child])) {
      break;
    }
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(moving);
}

}  // namespace diablo
