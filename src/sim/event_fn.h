// A move-only callable with small-buffer optimisation, replacing
// std::function<void()> on the event-loop hot path.
//
// The simulator schedules tens of millions of closures per run; std::function
// heap-allocates any capture larger than its (implementation-defined, often
// 16-byte) inline buffer and drags in copy machinery the loop never uses.
// EventFn stores captures up to kInlineSize bytes inline — large enough for
// every closure the simulator schedules today — and only falls back to the
// heap for oversized, over-aligned or potentially-throwing moves.
//
// Relocation (the event heap shifts entries on every push/pop) is a plain
// memcpy whenever the capture is trivially copyable or lives on the heap
// (pointer copy); only non-trivial inline captures pay an indirect call.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace diablo {

class EventFn {
 public:
  // Capture budget before the heap fallback kicks in. 32 bytes covers every
  // closure the simulator schedules today (the largest is four word-sized
  // captures) while keeping a queue entry (time + seq + functor) at 56
  // bytes, under one cache line.
  static constexpr size_t kInlineSize = 32;

  // Inline storage alignment; captures with stricter alignment go to the
  // heap. 8 covers pointers, doubles and int64 — everything scheduled today.
  static constexpr size_t kInlineAlign = 8;

  EventFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::kOps;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      Relocate(&other);
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        Relocate(&other);
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(unsigned char* storage);
    // Move-constructs into `dst` from `src` and destroys the `src` object;
    // nullptr means relocation is a plain memcpy of the storage.
    void (*relocate)(unsigned char* src, unsigned char* dst) noexcept;
    // nullptr means destruction is a no-op (trivial or already-moved state
    // handled by the owner clearing ops_).
    void (*destroy)(unsigned char* storage) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static void Invoke(unsigned char* storage) {
      (*std::launder(reinterpret_cast<D*>(storage)))();
    }
    static void Relocate(unsigned char* src, unsigned char* dst) noexcept {
      D* from = std::launder(reinterpret_cast<D*>(src));
      ::new (static_cast<void*>(dst)) D(std::move(*from));
      from->~D();
    }
    static void Destroy(unsigned char* storage) noexcept {
      std::launder(reinterpret_cast<D*>(storage))->~D();
    }
    static constexpr Ops kOps = {
        &Invoke,
        std::is_trivially_copyable_v<D> ? nullptr : &Relocate,
        std::is_trivially_destructible_v<D> ? nullptr : &Destroy,
    };
  };

  template <typename D>
  struct HeapOps {
    static D*& Slot(unsigned char* storage) {
      return *reinterpret_cast<D**>(storage);
    }
    static void Invoke(unsigned char* storage) { (*Slot(storage))(); }
    static void Destroy(unsigned char* storage) noexcept { delete Slot(storage); }
    // Relocation is the owning-pointer copy: always a memcpy.
    static constexpr Ops kOps = {&Invoke, nullptr, &Destroy};
  };

  // Takes the payload out of `other`; ops_ must already equal other.ops_.
  void Relocate(EventFn* other) noexcept {
    if (ops_->relocate == nullptr) {
      std::memcpy(storage_, other->storage_, kInlineSize);
    } else {
      ops_->relocate(other->storage_, storage_);
    }
    other->ops_ = nullptr;
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace diablo

#endif  // SRC_SIM_EVENT_FN_H_
