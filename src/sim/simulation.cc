#include "src/sim/simulation.h"

#include <utility>

#include "src/support/check.h"
#include "src/support/profile.h"

namespace diablo {

Simulation::Simulation(uint64_t seed) : rng_(seed) {}

Simulation::~Simulation() { profile::AddEvents(events_executed_); }

void Simulation::Schedule(SimDuration delay, EventFn fn) {
  ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void Simulation::ScheduleAt(SimTime time, EventFn fn) {
  queue_.Push(time < now_ ? now_ : time, std::move(fn));
}

uint64_t Simulation::RunUntil(SimTime until) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.PeekTime() > until) {
      break;
    }
    SimTime time = 0;
    EventFn fn = queue_.Pop(&time);
    DIABLO_CHECK(time >= now_, "simulated time ran backwards");
    now_ = time;
    fn();
    ++executed;
  }
  events_executed_ += executed;
  // When stopping because the horizon was reached, advance the clock to it so
  // subsequent scheduling is relative to the horizon.
  if (!stopped_ && (queue_.empty() || queue_.PeekTime() > until) &&
      until != std::numeric_limits<SimTime>::max() && now_ < until) {
    now_ = until;
  }
  return executed;
}

}  // namespace diablo
