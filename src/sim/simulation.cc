#include "src/sim/simulation.h"

#include <algorithm>
#include <future>
#include <iterator>
#include <utility>

#include "src/support/check.h"
#include "src/support/profile.h"
#include "src/support/shard_guard.h"
#include "src/support/thread_pool.h"

namespace diablo {

namespace {

// Binding of the current thread to a parallel window. While set (sim !=
// nullptr), Now() reads the executing event's own timestamp and every
// Schedule* call is buffered on the owning worker instead of touching the
// shared heap. The main thread binds itself for its own slice and unbinds at
// the barrier; pool threads rebind at the start of every slice they run.
struct TlsWorker {
  const void* sim = nullptr;
  int worker = 0;
  SimTime now = 0;
  uint32_t drain_index = 0;
};

thread_local TlsWorker tls_worker;

}  // namespace

Simulation::Simulation(uint64_t seed) : rng_(seed) {}

Simulation::~Simulation() {
  profile::AddEvents(events_executed_);
  profile::AddWindowBarriers(window_barriers_);
  for (size_t w = 0; w < worker_state_.size(); ++w) {
    profile::AddWorkerEvents(static_cast<int>(w), worker_state_[w]->executed);
  }
  profile::AddSerialLoopEvents(serial_loop_events_);
  profile::AddWindowHistogram(window_hist_,
                              static_cast<int>(std::size(window_hist_)));
}

void Simulation::Schedule(SimDuration delay, EventFn fn) {
  ScheduleOn(kSerialShard, delay, std::move(fn));
}

void Simulation::ScheduleAt(SimTime time, EventFn fn) {
  ScheduleAtOn(kSerialShard, time, std::move(fn));
}

void Simulation::ScheduleOn(uint32_t shard, SimDuration delay, EventFn fn) {
  ScheduleAtOn(shard, Now() + (delay < 0 ? 0 : delay), std::move(fn));
}

void Simulation::ScheduleAtOn(uint32_t shard, SimTime time, EventFn fn) {
  if (tls_worker.sim == this) {
    // Called from inside a parallel window: buffer on the owning worker.
    // The barrier merge re-pushes these in canonical order, so the shared
    // heap is never touched concurrently.
    Worker& w = *worker_state_[tls_worker.worker];
    if (time < tls_worker.now) {
      time = tls_worker.now;
    }
    w.pushes.push_back(
        BufferedPush{tls_worker.drain_index, shard, time, std::move(fn)});
    return;
  }
  queue_.Push(time < now_ ? now_ : time, shard, std::move(fn));
}

void Simulation::ConfigureCellWorkers(int workers, SimDuration lookahead) {
  DIABLO_CHECK(workers >= 1, "cell worker count must be at least 1");
  DIABLO_CHECK(lookahead > 0, "windowed scheduling needs positive lookahead");
  if (workers < 1) {
    workers = 1;
  }
  workers_ = workers;
  lookahead_ = lookahead;
  windowed_ = true;
  worker_state_.clear();
  worker_state_.reserve(static_cast<size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    worker_state_.push_back(std::make_unique<Worker>());
  }
  // The main thread executes slice 0 itself, so the pool only needs the
  // remaining workers.
  pool_ = workers_ > 1 ? std::make_unique<ThreadPool>(workers_ - 1) : nullptr;
}

Arena& Simulation::scratch_arena() {
  if (tls_worker.sim == this) {
    return worker_state_[tls_worker.worker]->arena;
  }
  return serial_arena_;
}

SimTime Simulation::WorkerNow() const {
  return tls_worker.sim == this ? tls_worker.now : now_;
}

uint64_t Simulation::RunUntil(SimTime until) {
  return windowed_ ? RunUntilWindowed(until) : RunUntilLegacy(until);
}

uint64_t Simulation::RunUntilLegacy(SimTime until) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.PeekTime() > until) {
      break;
    }
    SimTime time = 0;
    EventFn fn = queue_.Pop(&time);
    DIABLO_CHECK(time >= now_, "simulated time ran backwards");
    now_ = time;
    fn();
    ++executed;
  }
  events_executed_ += executed;
  AdvanceToHorizon(until);
  return executed;
}

uint64_t Simulation::RunUntilWindowed(SimTime until) {
  stopped_ = false;
  uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.PeekTime() > until) {
      break;
    }
    if (queue_.PeekShard() == kSerialShard) {
      // Serial events run exactly as on the legacy loop.
      SimTime time = 0;
      EventFn fn = queue_.Pop(&time);
      DIABLO_CHECK(time >= now_, "simulated time ran backwards");
      now_ = time;
      fn();
      ++executed;
      ++serial_loop_events_;
    } else {
      executed += RunWindow(until);
    }
  }
  events_executed_ += executed;
  AdvanceToHorizon(until);
  return executed;
}

// One conservative time window: drain every consecutive sharded event within
// `lookahead_` of the window head, execute the batch across workers (each
// shard pinned to shard % workers_), then merge the buffered pushes back
// into the heap in canonical order.
//
// The merge sorts by drain_index — the source event's position in the drain
// order — with a stable sort. All pushes sharing a drain_index come from
// exactly one worker, already in program order, and concatenation preserves
// that order, so the merged sequence is exactly the push order of a serial
// run. Sequence numbers, and with them every future tie-break, are therefore
// identical at any worker count.
uint64_t Simulation::RunWindow(SimTime until) {
  const SimTime head = queue_.PeekTime();
  SimDuration span = lookahead_;
  if (lookahead_provider_) {
    // Window-aware lookahead: the provider may widen this window (never
    // shrink it) when the instantaneous minimum link delay exceeds the
    // static floor, e.g. while every link sits inside a delay-spike window.
    const SimDuration dynamic = lookahead_provider_(head);
    if (dynamic > span) {
      span = dynamic;
    }
  }
  const SimTime window_end = head + span;
  batch_.clear();
  while (!queue_.empty() && queue_.PeekShard() != kSerialShard &&
         queue_.PeekTime() < window_end && queue_.PeekTime() <= until) {
    SimTime time = 0;
    uint32_t shard = kSerialShard;
    EventFn fn = queue_.Pop(&time, &shard);
    DIABLO_CHECK(time >= now_, "simulated time ran backwards");
    batch_.push_back(BatchEntry{time, shard, std::move(fn)});
  }
  if (workers_ > 1 && batch_.size() > 1) {
    std::vector<std::future<void>> pending;
    pending.reserve(static_cast<size_t>(workers_) - 1);
    for (int w = 1; w < workers_; ++w) {
      pending.push_back(pool_->Submit([this, w] { ExecuteSlice(w); }));
    }
    ExecuteSlice(0);
    for (std::future<void>& f : pending) {
      f.get();
    }
  } else {
    ExecuteAllInline();
  }
  // Barrier: single-threaded from here. Merge buffered pushes canonically.
  merge_.clear();
  for (std::unique_ptr<Worker>& w : worker_state_) {
    for (BufferedPush& push : w->pushes) {
      merge_.push_back(std::move(push));
    }
    w->pushes.clear();
    w->arena.Reset();
  }
  std::stable_sort(merge_.begin(), merge_.end(),
                   [](const BufferedPush& a, const BufferedPush& b) {
                     return a.drain_index < b.drain_index;
                   });
  for (BufferedPush& push : merge_) {
    // Conservatism invariant: a window's events may only schedule work at or
    // past the window end, otherwise the batch we just executed was not
    // causally closed and the windowed order could diverge from serial.
    DIABLO_CHECK(push.time >= window_end,
                 "parallel window event scheduled inside its own window "
                 "(lookahead bound violated)");
    queue_.Push(push.time, push.shard, std::move(push.fn));
  }
  merge_.clear();
  now_ = batch_.back().time;
  ++window_barriers_;
  // Histogram bucket = floor(log2(batch size)), folded into the last slot.
  size_t bucket = 0;
  for (size_t n = batch_.size(); n > 1; n >>= 1) {
    ++bucket;
  }
  if (bucket >= std::size(window_hist_)) {
    bucket = std::size(window_hist_) - 1;
  }
  ++window_hist_[bucket];
  return batch_.size();
}

// Worker `worker`'s share of the current window: every batch entry whose
// shard maps to it, in drain order, with Now() pinned to each event's own
// timestamp and all pushes buffered.
void Simulation::ExecuteSlice(int worker) {
  tls_worker.sim = this;
  tls_worker.worker = worker;
  Worker& w = *worker_state_[static_cast<size_t>(worker)];
  const uint32_t stride = static_cast<uint32_t>(workers_);
  uint64_t ran = 0;
  for (uint32_t i = 0; i < static_cast<uint32_t>(batch_.size()); ++i) {
    BatchEntry& entry = batch_[i];
    if (entry.shard % stride != static_cast<uint32_t>(worker)) {
      continue;
    }
    tls_worker.now = entry.time;
    tls_worker.drain_index = i;
    shard_guard::EnterEvent(entry.shard);
    entry.fn();
    shard_guard::ExitEvent();
    ++ran;
  }
  w.executed += ran;
  tls_worker.sim = nullptr;
}

// Single-worker (or single-event) window: run the whole batch in drain order
// on worker 0's context. Buffering and merging still go through the same
// path, so the schedule is identical to the multi-worker one by construction.
void Simulation::ExecuteAllInline() {
  tls_worker.sim = this;
  tls_worker.worker = 0;
  Worker& w = *worker_state_[0];
  for (uint32_t i = 0; i < static_cast<uint32_t>(batch_.size()); ++i) {
    BatchEntry& entry = batch_[i];
    tls_worker.now = entry.time;
    tls_worker.drain_index = i;
    shard_guard::EnterEvent(entry.shard);
    entry.fn();
    shard_guard::ExitEvent();
  }
  w.executed += batch_.size();
  tls_worker.sim = nullptr;
}

void Simulation::AdvanceToHorizon(SimTime until) {
  // When stopping because the horizon was reached, advance the clock to it so
  // subsequent scheduling is relative to the horizon.
  if (!stopped_ && (queue_.empty() || queue_.PeekTime() > until) &&
      until != std::numeric_limits<SimTime>::max() && now_ < until) {
    now_ = until;
  }
}

}  // namespace diablo
