// Post-mortem analysis of benchmark results, in the spirit of the
// artifact's results/csv-results tooling (§A.3): load the primary's JSON
// output back, recompute distributions, and compare runs side by side.
#ifndef SRC_ANALYSIS_ANALYSIS_H_
#define SRC_ANALYSIS_ANALYSIS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/support/stats.h"

namespace diablo {

// One transaction record from a results document.
struct TxRecord {
  double submit = 0;   // seconds
  double commit = -1;  // seconds, -1 when never committed
  double latency = -1;
  std::string status;  // "committed" | "dropped" | "aborted" | "submitted"
};

// A loaded results document: the summary plus (optionally capped)
// per-transaction records.
struct LoadedResults {
  std::string chain;
  std::string deployment;
  std::string workload;
  double duration_s = 0;
  size_t submitted = 0;
  size_t committed = 0;
  size_t dropped = 0;
  size_t aborted = 0;
  size_t pending = 0;
  double avg_throughput = 0;
  double avg_latency = 0;
  std::vector<TxRecord> transactions;

  // Recomputes latency statistics from the transaction records (exactly
  // what the artifact's csv pipeline does).
  SampleSet CommittedLatencies() const;
  // Committed transactions per second, bucketed from the records.
  TimeSeries CommittedPerSecond() const;
};

struct LoadResult {
  bool ok = false;
  std::string error;
  LoadedResults results;
};

// Parses a results JSON document produced by WriteResultsJson.
LoadResult LoadResultsJson(std::string_view json_text);

// Parses a per-transaction CSV produced by WriteResultsCsv.
LoadResult LoadResultsCsv(std::string_view csv_text);

// Renders a side-by-side comparison of several runs as a fixed-width text
// table (chain, workload, throughput, latency, commit ratio).
std::string CompareRuns(const std::vector<LoadedResults>& runs);

}  // namespace diablo

#endif  // SRC_ANALYSIS_ANALYSIS_H_
