#include "src/analysis/analysis.h"

#include "src/config/json.h"
#include "src/support/strings.h"

namespace diablo {

SampleSet LoadedResults::CommittedLatencies() const {
  SampleSet latencies;
  for (const TxRecord& tx : transactions) {
    if (tx.status == "committed" && tx.latency >= 0) {
      latencies.Add(tx.latency);
    }
  }
  return latencies;
}

TimeSeries LoadedResults::CommittedPerSecond() const {
  TimeSeries series;
  for (const TxRecord& tx : transactions) {
    if (tx.status == "committed" && tx.commit >= 0) {
      series.Add(tx.commit, 1.0);
    }
  }
  return series;
}

LoadResult LoadResultsJson(std::string_view json_text) {
  LoadResult result;
  const JsonResult parsed = ParseJson(json_text);
  if (!parsed.ok) {
    result.error = parsed.error;
    return result;
  }
  const JsonValue* summary = parsed.value.Find("summary");
  if (summary == nullptr || !summary->IsObject()) {
    result.error = "missing 'summary' object";
    return result;
  }
  LoadedResults& out = result.results;
  out.chain = summary->GetString("chain", "?");
  out.deployment = summary->GetString("deployment", "?");
  out.workload = summary->GetString("workload", "?");
  out.duration_s = summary->GetNumber("duration_s", 0);
  out.submitted = static_cast<size_t>(summary->GetNumber("submitted", 0));
  out.committed = static_cast<size_t>(summary->GetNumber("committed", 0));
  out.dropped = static_cast<size_t>(summary->GetNumber("dropped", 0));
  out.aborted = static_cast<size_t>(summary->GetNumber("aborted", 0));
  out.pending = static_cast<size_t>(summary->GetNumber("pending", 0));
  out.avg_throughput = summary->GetNumber("avg_throughput_tps", 0);
  out.avg_latency = summary->GetNumber("avg_latency_s", 0);

  const JsonValue* txs = parsed.value.Find("transactions");
  if (txs != nullptr && txs->IsArray()) {
    out.transactions.reserve(txs->items.size());
    for (const JsonValue& item : txs->items) {
      TxRecord record;
      record.submit = item.GetNumber("submit", 0);
      record.commit = item.GetNumber("commit", -1);
      record.latency = item.GetNumber("latency", -1);
      record.status = item.GetString("status", "?");
      out.transactions.push_back(std::move(record));
    }
  }
  result.ok = true;
  return result;
}

LoadResult LoadResultsCsv(std::string_view csv_text) {
  LoadResult result;
  bool saw_header = false;
  for (const std::string& raw : Split(csv_text, '\n')) {
    const std::string line = Trim(raw);
    if (line.empty()) {
      continue;
    }
    if (!saw_header) {
      if (line != "submit_time,latency,status") {
        result.error = "unexpected header: " + line;
        return result;
      }
      saw_header = true;
      continue;
    }
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 3) {
      result.error = "malformed row: " + line;
      return result;
    }
    TxRecord record;
    if (!ParseDouble(fields[0], &record.submit) ||
        !ParseDouble(fields[1], &record.latency)) {
      result.error = "malformed numbers: " + line;
      return result;
    }
    record.status = fields[2];
    if (record.latency >= 0) {
      record.commit = record.submit + record.latency;
    }
    result.results.transactions.push_back(std::move(record));
  }
  if (!saw_header) {
    result.error = "empty document";
    return result;
  }
  LoadedResults& out = result.results;
  for (const TxRecord& tx : out.transactions) {
    ++out.submitted;
    if (tx.status == "committed") {
      ++out.committed;
    } else if (tx.status == "dropped") {
      ++out.dropped;
    } else if (tx.status == "aborted") {
      ++out.aborted;
    } else {
      ++out.pending;
    }
  }
  result.ok = true;
  return result;
}

std::string CompareRuns(const std::vector<LoadedResults>& runs) {
  std::string out = StrFormat("%-10s %-12s %-12s %10s %10s %9s\n", "chain",
                              "deployment", "workload", "tput TPS", "lat s",
                              "commit%");
  for (const LoadedResults& run : runs) {
    const double ratio =
        run.submitted == 0
            ? 0.0
            : 100.0 * static_cast<double>(run.committed) / static_cast<double>(run.submitted);
    out += StrFormat("%-10s %-12s %-12s %10.1f %10.2f %8.1f%%\n", run.chain.c_str(),
                     run.deployment.c_str(), run.workload.c_str(), run.avg_throughput,
                     run.avg_latency, ratio);
  }
  return out;
}

}  // namespace diablo
