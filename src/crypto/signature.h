// Signature cost model.
//
// The simulation does not need cryptographic security from signatures — the
// adversary model of the benchmark is load, not forgery — but it does need
// their *cost*: signing burns client CPU (diablo pre-signs transactions) and
// verification burns validator CPU. §5.2 recounts Avalanche's RSA4096
// signing being too slow at scale, which this model reproduces. Tags are
// SHA-256-based so that verification is a real check in tests.
#ifndef SRC_CRYPTO_SIGNATURE_H_
#define SRC_CRYPTO_SIGNATURE_H_

#include <cstdint>
#include <string_view>

#include "src/crypto/sha256.h"
#include "src/support/time.h"

namespace diablo {

enum class SignatureScheme : uint8_t {
  kEcdsa = 0,     // secp256k1-style: Ethereum, Quorum, Avalanche (after the
                  // paper's fallback from RSA4096)
  kEd25519 = 1,   // Solana, Algorand, Diem
  kRsa4096 = 2,   // Avalanche's original recommendation; signing is slow
};

struct SignatureCost {
  SimDuration sign;    // one signature on a reference core
  SimDuration verify;  // one verification on a reference core
  int bytes;           // wire size of the signature
};

// Cost of the scheme on one reference vCPU.
SignatureCost CostOf(SignatureScheme scheme);

struct Signature {
  Digest256 tag;
};

// "Signs" the message under the (secret, public) = (key, key) toy keypair.
Signature Sign(uint64_t key, std::string_view message);

// Checks a tag produced by Sign with the same key and message.
bool Verify(uint64_t key, std::string_view message, const Signature& sig);

}  // namespace diablo

#endif  // SRC_CRYPTO_SIGNATURE_H_
