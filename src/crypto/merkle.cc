#include "src/crypto/merkle.h"

namespace diablo {
namespace {

Digest256 HashPair(const Digest256& left, const Digest256& right) {
  Sha256 hasher;
  hasher.Update(left.data(), left.size());
  hasher.Update(right.data(), right.size());
  return hasher.Finish();
}

}  // namespace

Digest256 MerkleRoot(const std::vector<Digest256>& leaves) {
  if (leaves.empty()) {
    return Sha256Digest("");
  }
  std::vector<Digest256> level = leaves;
  while (level.size() > 1) {
    if (level.size() % 2 != 0) {
      level.push_back(level.back());
    }
    std::vector<Digest256> next;
    next.reserve(level.size() / 2);
    for (size_t i = 0; i < level.size(); i += 2) {
      next.push_back(HashPair(level[i], level[i + 1]));
    }
    level = std::move(next);
  }
  return level.front();
}

std::vector<MerkleProofStep> MerkleProve(const std::vector<Digest256>& leaves,
                                         size_t index) {
  std::vector<MerkleProofStep> proof;
  std::vector<Digest256> level = leaves;
  while (level.size() > 1) {
    if (level.size() % 2 != 0) {
      level.push_back(level.back());
    }
    const size_t sibling = index ^ 1;
    proof.push_back(MerkleProofStep{level[sibling], sibling < index});
    std::vector<Digest256> next;
    next.reserve(level.size() / 2);
    for (size_t i = 0; i < level.size(); i += 2) {
      next.push_back(HashPair(level[i], level[i + 1]));
    }
    level = std::move(next);
    index /= 2;
  }
  return proof;
}

bool MerkleVerify(const Digest256& leaf, const std::vector<MerkleProofStep>& proof,
                  const Digest256& root) {
  Digest256 current = leaf;
  for (const MerkleProofStep& step : proof) {
    current = step.sibling_on_left ? HashPair(step.sibling, current)
                                   : HashPair(current, step.sibling);
  }
  return current == root;
}

}  // namespace diablo
