#include "src/crypto/sortition.h"

#include "src/crypto/sha256.h"

namespace diablo {

double SortitionDraw(uint64_t seed, uint64_t round, uint64_t step, uint64_t participant) {
  Sha256 hasher;
  hasher.Update(&seed, sizeof(seed));
  hasher.Update(&round, sizeof(round));
  hasher.Update(&step, sizeof(step));
  hasher.Update(&participant, sizeof(participant));
  const uint64_t prefix = DigestPrefix64(hasher.Finish());
  return static_cast<double>(prefix >> 11) * 0x1.0p-53;
}

std::vector<uint32_t> SelectCommittee(uint64_t seed, uint64_t round, uint64_t step,
                                      uint32_t population, double expected) {
  std::vector<uint32_t> committee;
  SelectCommitteeInto(seed, round, step, population, expected, &committee);
  return committee;
}

void SelectCommitteeInto(uint64_t seed, uint64_t round, uint64_t step,
                         uint32_t population, double expected,
                         std::vector<uint32_t>* committee) {
  committee->clear();
  if (population == 0) {
    return;
  }
  const double probability = expected / static_cast<double>(population);
  for (uint32_t p = 0; p < population; ++p) {
    if (SortitionDraw(seed, round, step, p) < probability) {
      committee->push_back(p);
    }
  }
}

uint32_t SelectProposer(uint64_t seed, uint64_t round, uint32_t population) {
  uint32_t best = 0;
  double best_draw = 2.0;
  for (uint32_t p = 0; p < population; ++p) {
    const double draw = SortitionDraw(seed, round, /*step=*/0, p);
    if (draw < best_draw) {
      best_draw = draw;
      best = p;
    }
  }
  return best;
}

}  // namespace diablo
