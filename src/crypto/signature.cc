#include "src/crypto/signature.h"

namespace diablo {

SignatureCost CostOf(SignatureScheme scheme) {
  // Reference-core numbers in the ballpark of openssl speed on a c5 vCPU.
  switch (scheme) {
    case SignatureScheme::kEcdsa:
      return SignatureCost{Microseconds(72), Microseconds(85), 65};
    case SignatureScheme::kEd25519:
      return SignatureCost{Microseconds(26), Microseconds(70), 64};
    case SignatureScheme::kRsa4096:
      // RSA signing is orders of magnitude slower than verification; this
      // asymmetry is what broke Avalanche's setup at scale in the paper.
      return SignatureCost{Milliseconds(9), Microseconds(180), 512};
  }
  return SignatureCost{Microseconds(100), Microseconds(100), 64};
}

Signature Sign(uint64_t key, std::string_view message) {
  Sha256 hasher;
  hasher.Update(&key, sizeof(key));
  hasher.Update(message);
  return Signature{hasher.Finish()};
}

bool Verify(uint64_t key, std::string_view message, const Signature& sig) {
  return Sign(key, message).tag == sig.tag;
}

}  // namespace diablo
