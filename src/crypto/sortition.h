// Cryptographic sortition in the style of Algorand's VRF-based committee
// selection: a deterministic, seed-keyed uniform draw per (round, step,
// participant) decides membership and proposer priority.
#ifndef SRC_CRYPTO_SORTITION_H_
#define SRC_CRYPTO_SORTITION_H_

#include <cstdint>
#include <vector>

namespace diablo {

// Uniform double in [0, 1) derived from SHA-256 of the inputs. Acts as the
// published VRF output: all honest parties compute the same value.
double SortitionDraw(uint64_t seed, uint64_t round, uint64_t step, uint64_t participant);

// Selects a committee of expected size `expected` from `population`
// equally-weighted participants. Returns the selected participant indices.
std::vector<uint32_t> SelectCommittee(uint64_t seed, uint64_t round, uint64_t step,
                                      uint32_t population, double expected);

// SelectCommittee into a caller-owned vector (cleared first), so per-round
// selection reuses one allocation.
void SelectCommitteeInto(uint64_t seed, uint64_t round, uint64_t step,
                         uint32_t population, double expected,
                         std::vector<uint32_t>* committee);

// Proposer priority: the participant with the lowest draw for the round.
uint32_t SelectProposer(uint64_t seed, uint64_t round, uint32_t population);

}  // namespace diablo

#endif  // SRC_CRYPTO_SORTITION_H_
