// Binary Merkle tree over transaction digests, as used by block headers.
// Odd levels duplicate the last node (Bitcoin-style), and proofs of
// inclusion can be generated and verified.
#ifndef SRC_CRYPTO_MERKLE_H_
#define SRC_CRYPTO_MERKLE_H_

#include <vector>

#include "src/crypto/sha256.h"

namespace diablo {

// Root over the given leaf digests; the root of zero leaves is the digest of
// the empty string.
Digest256 MerkleRoot(const std::vector<Digest256>& leaves);

struct MerkleProofStep {
  Digest256 sibling;
  bool sibling_on_left = false;
};

// Inclusion proof for leaves[index]; index must be in range.
std::vector<MerkleProofStep> MerkleProve(const std::vector<Digest256>& leaves,
                                         size_t index);

// Verifies that `leaf` hashes up to `root` through `proof`.
bool MerkleVerify(const Digest256& leaf, const std::vector<MerkleProofStep>& proof,
                  const Digest256& root);

}  // namespace diablo

#endif  // SRC_CRYPTO_MERKLE_H_
