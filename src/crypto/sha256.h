// SHA-256, implemented from scratch (FIPS 180-4). Used for block hashes,
// Merkle trees and the sortition "VRF" — everywhere the simulated chains
// need a real collision-resistant digest.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace diablo {

using Digest256 = std::array<uint8_t, 32>;

// Incremental hasher.
class Sha256 {
 public:
  Sha256();

  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  // Finalizes and returns the digest; the hasher must not be reused after.
  Digest256 Finish();

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  uint64_t total_len_ = 0;
  size_t buffer_len_ = 0;
};

// One-shot convenience.
Digest256 Sha256Digest(std::string_view data);
Digest256 Sha256Digest(const void* data, size_t len);

// First 8 bytes of the digest as a little-endian integer; handy as a cheap
// deterministic identifier derived from hashed content.
uint64_t DigestPrefix64(const Digest256& digest);

// Lowercase hex encoding.
std::string DigestHex(const Digest256& digest);

}  // namespace diablo

#endif  // SRC_CRYPTO_SHA256_H_
