#include "src/config/yaml.h"

#include <map>
#include <stdexcept>

#include "src/support/strings.h"

namespace diablo {

const YamlNode* YamlNode::Find(std::string_view key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

bool YamlNode::AsInt64(int64_t* out) const {
  return IsScalar() && ParseInt64(scalar, out);
}

bool YamlNode::AsDouble(double* out) const {
  return IsScalar() && ParseDouble(scalar, out);
}

int64_t YamlNode::GetInt(std::string_view key, int64_t fallback) const {
  const YamlNode* child = Find(key);
  int64_t value = 0;
  return child != nullptr && child->AsInt64(&value) ? value : fallback;
}

std::string YamlNode::GetString(std::string_view key, std::string_view fallback) const {
  const YamlNode* child = Find(key);
  return child != nullptr && child->IsScalar() ? child->scalar : std::string(fallback);
}

namespace {

struct Line {
  int indent;
  std::string content;  // comment-stripped, trailing-trimmed
  int number;           // 1-based source line
};

class Parser {
 public:
  explicit Parser(std::string_view text) { Preprocess(text); }

  YamlResult Run() {
    YamlResult result;
    try {
      size_t pos = 0;
      result.root = ParseBlock(pos, /*min_indent=*/0);
      if (pos < lines_.size()) {
        Fail(lines_[pos].number, "unexpected content (bad indentation?)");
      }
      result.ok = true;
    } catch (const std::runtime_error& error) {
      result.error = error.what();
    }
    return result;
  }

 private:
  [[noreturn]] void Fail(int line, const std::string& message) {
    throw std::runtime_error(StrFormat("line %d: %s", line, message.c_str()));
  }

  void Preprocess(std::string_view text) {
    int number = 0;
    for (const std::string& raw : Split(text, '\n')) {
      ++number;
      // Strip comments outside quotes.
      std::string stripped;
      bool in_single = false;
      bool in_double = false;
      for (const char c : raw) {
        if (c == '\'' && !in_double) {
          in_single = !in_single;
        } else if (c == '"' && !in_single) {
          in_double = !in_double;
        } else if (c == '#' && !in_single && !in_double) {
          break;
        }
        stripped.push_back(c);
      }
      int indent = 0;
      while (indent < static_cast<int>(stripped.size()) &&
             stripped[static_cast<size_t>(indent)] == ' ') {
        ++indent;
      }
      const std::string content = Trim(stripped);
      if (content.empty()) {
        continue;
      }
      lines_.push_back(Line{indent, content, number});
    }
  }

  // Parses the block starting at lines_[pos] whose indent is >= min_indent;
  // consumes every line belonging to it.
  YamlNode ParseBlock(size_t& pos, int min_indent) {
    if (pos >= lines_.size() || lines_[pos].indent < min_indent) {
      return YamlNode{};  // null
    }
    const int indent = lines_[pos].indent;
    if (StartsWith(lines_[pos].content, "- ") || lines_[pos].content == "-") {
      return ParseSequence(pos, indent);
    }
    return ParseMapping(pos, indent);
  }

  YamlNode ParseSequence(size_t& pos, int indent) {
    YamlNode node;
    node.type = YamlNode::Type::kList;
    node.line = lines_[pos].number;
    while (pos < lines_.size() && lines_[pos].indent == indent &&
           (StartsWith(lines_[pos].content, "- ") || lines_[pos].content == "-")) {
      const Line& line = lines_[pos];
      std::string rest =
          line.content == "-" ? std::string() : Trim(line.content.substr(2));
      if (rest.empty()) {
        ++pos;
        node.items.push_back(ParseBlock(pos, indent + 1));
        continue;
      }
      // Compact mapping item: "- key: value" opens a map whose keys are
      // indented past the dash.
      if (LooksLikeMapEntry(rest)) {
        const int item_indent = indent + 2;
        lines_[pos] = Line{item_indent, rest, line.number};
        node.items.push_back(ParseMapping(pos, item_indent));
        continue;
      }
      ++pos;
      node.items.push_back(ParseValue(rest, pos, indent + 1, line.number));
    }
    return node;
  }

  YamlNode ParseMapping(size_t& pos, int indent) {
    YamlNode node;
    node.type = YamlNode::Type::kMap;
    node.line = lines_[pos].number;
    while (pos < lines_.size() && lines_[pos].indent == indent &&
           !StartsWith(lines_[pos].content, "- ")) {
      const Line& line = lines_[pos];
      const size_t colon = FindKeyColon(line.content);
      if (colon == std::string::npos) {
        Fail(line.number, "expected 'key: value'");
      }
      std::string key = Trim(line.content.substr(0, colon));
      if (key.size() >= 2 && (key.front() == '"' || key.front() == '\'') &&
          key.back() == key.front()) {
        key = key.substr(1, key.size() - 2);
      }
      const std::string rest = Trim(line.content.substr(colon + 1));
      ++pos;
      node.entries.emplace_back(key, ParseValue(rest, pos, indent + 1, line.number));
    }
    return node;
  }

  // Parses an in-line value; when it is empty (or only anchor/tag prefixes),
  // the value continues as a nested block at `child_indent`.
  YamlNode ParseValue(std::string rest, size_t& pos, int child_indent, int line_no) {
    std::string anchor;
    std::string tag;
    // Prefixes: &anchor and/or !tag, in either order (YAML allows both).
    while (true) {
      if (StartsWith(rest, "&")) {
        const size_t end = rest.find_first_of(" \t");
        anchor = rest.substr(1, end == std::string::npos ? end : end - 1);
        rest = end == std::string::npos ? std::string() : Trim(rest.substr(end));
        continue;
      }
      if (StartsWith(rest, "!")) {
        const size_t end = rest.find_first_of(" \t");
        tag = rest.substr(1, end == std::string::npos ? end : end - 1);
        rest = end == std::string::npos ? std::string() : Trim(rest.substr(end));
        continue;
      }
      break;
    }

    YamlNode value;
    if (rest.empty()) {
      value = ParseBlock(pos, child_indent);
    } else if (StartsWith(rest, "*")) {
      const std::string name = Trim(rest.substr(1));
      const auto it = anchors_.find(name);
      if (it == anchors_.end()) {
        Fail(line_no, "unknown alias '*" + name + "'");
      }
      value = it->second;
    } else if (rest.front() == '[' || rest.front() == '{') {
      size_t cursor = 0;
      value = ParseFlow(rest, cursor, line_no);
      if (cursor != rest.size()) {
        Fail(line_no, "trailing characters after flow value");
      }
    } else {
      value.type = YamlNode::Type::kScalar;
      value.scalar = Unquote(rest);
    }

    if (value.line == 0) {
      value.line = line_no;
    }
    if (!tag.empty()) {
      value.tag = tag;
    }
    if (!anchor.empty()) {
      anchors_[anchor] = value;
    }
    return value;
  }

  // Parses a flow collection or scalar starting at text[cursor].
  YamlNode ParseFlow(const std::string& text, size_t& cursor, int line_no) {
    SkipSpaces(text, cursor);
    if (cursor >= text.size()) {
      Fail(line_no, "unterminated flow value");
    }
    YamlNode node;
    node.line = line_no;
    if (text[cursor] == '[') {
      node.type = YamlNode::Type::kList;
      ++cursor;
      SkipSpaces(text, cursor);
      while (cursor < text.size() && text[cursor] != ']') {
        const size_t before = cursor;
        node.items.push_back(ParseFlowValue(text, cursor, line_no));
        SkipSpaces(text, cursor);
        if (cursor < text.size() && text[cursor] == ',') {
          ++cursor;
          SkipSpaces(text, cursor);
        } else if (cursor == before) {
          // No progress: a stray '}' or similar would loop forever.
          Fail(line_no, "malformed flow sequence");
        }
      }
      if (cursor >= text.size()) {
        Fail(line_no, "missing ']'");
      }
      ++cursor;
      return node;
    }
    if (text[cursor] == '{') {
      node.type = YamlNode::Type::kMap;
      ++cursor;
      SkipSpaces(text, cursor);
      while (cursor < text.size() && text[cursor] != '}') {
        const size_t before = cursor;
        const size_t colon = text.find(':', cursor);
        if (colon == std::string::npos) {
          Fail(line_no, "missing ':' in flow map");
        }
        const std::string key = Unquote(Trim(text.substr(cursor, colon - cursor)));
        cursor = colon + 1;
        node.entries.emplace_back(key, ParseFlowValue(text, cursor, line_no));
        SkipSpaces(text, cursor);
        if (cursor < text.size() && text[cursor] == ',') {
          ++cursor;
          SkipSpaces(text, cursor);
        } else if (cursor <= before) {
          Fail(line_no, "malformed flow mapping");
        }
      }
      if (cursor >= text.size()) {
        Fail(line_no, "missing '}'");
      }
      ++cursor;
      return node;
    }
    YamlNode scalar = ParseFlowScalar(text, cursor);
    scalar.line = line_no;
    return scalar;
  }

  YamlNode ParseFlowValue(const std::string& text, size_t& cursor, int line_no) {
    SkipSpaces(text, cursor);
    // Tags and aliases inside flow collections.
    if (cursor < text.size() && text[cursor] == '!') {
      const size_t end = text.find_first_of(" \t", cursor);
      if (end == std::string::npos) {
        Fail(line_no, "tag without value in flow collection");
      }
      const std::string tag = text.substr(cursor + 1, end - cursor - 1);
      cursor = end;
      YamlNode value = ParseFlowValue(text, cursor, line_no);
      value.tag = tag;
      return value;
    }
    if (cursor < text.size() && text[cursor] == '*') {
      size_t end = cursor + 1;
      while (end < text.size() && text[end] != ',' && text[end] != '}' &&
             text[end] != ']' && text[end] != ' ') {
        ++end;
      }
      const std::string name = text.substr(cursor + 1, end - cursor - 1);
      cursor = end;
      const auto it = anchors_.find(name);
      if (it == anchors_.end()) {
        Fail(line_no, "unknown alias '*" + name + "'");
      }
      return it->second;
    }
    if (cursor < text.size() && (text[cursor] == '[' || text[cursor] == '{')) {
      return ParseFlow(text, cursor, line_no);
    }
    YamlNode scalar = ParseFlowScalar(text, cursor);
    scalar.line = line_no;
    return scalar;
  }

  YamlNode ParseFlowScalar(const std::string& text, size_t& cursor) {
    YamlNode node;
    node.type = YamlNode::Type::kScalar;
    SkipSpaces(text, cursor);
    if (cursor < text.size() && (text[cursor] == '"' || text[cursor] == '\'')) {
      const char quote = text[cursor];
      const size_t end = text.find(quote, cursor + 1);
      node.scalar = text.substr(cursor + 1, end - cursor - 1);
      cursor = end == std::string::npos ? text.size() : end + 1;
      return node;
    }
    size_t end = cursor;
    while (end < text.size() && text[end] != ',' && text[end] != '}' &&
           text[end] != ']') {
      ++end;
    }
    node.scalar = Trim(text.substr(cursor, end - cursor));
    cursor = end;
    return node;
  }

  static void SkipSpaces(const std::string& text, size_t& cursor) {
    while (cursor < text.size() &&
           (text[cursor] == ' ' || text[cursor] == '\t')) {
      ++cursor;
    }
  }

  static std::string Unquote(const std::string& s) {
    if (s.size() >= 2 && (s.front() == '"' || s.front() == '\'') &&
        s.back() == s.front()) {
      return s.substr(1, s.size() - 2);
    }
    return s;
  }

  // A compact sequence item opens a mapping when it contains a top-level
  // "key:" outside quotes/flow brackets.
  static bool LooksLikeMapEntry(const std::string& text) {
    return FindKeyColon(text) != std::string::npos;
  }

  // Position of the colon terminating a mapping key, or npos.
  static size_t FindKeyColon(const std::string& text) {
    bool in_single = false;
    bool in_double = false;
    int depth = 0;
    for (size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '\'' && !in_double) {
        in_single = !in_single;
      } else if (c == '"' && !in_single) {
        in_double = !in_double;
      } else if (!in_single && !in_double) {
        if (c == '[' || c == '{') {
          ++depth;
        } else if (c == ']' || c == '}') {
          --depth;
        } else if (c == ':' && depth == 0 &&
                   (i + 1 == text.size() || text[i + 1] == ' ')) {
          return i;
        }
      }
    }
    return std::string::npos;
  }

  std::vector<Line> lines_;
  std::map<std::string, YamlNode> anchors_;
};

}  // namespace

YamlResult ParseYaml(std::string_view text) { return Parser(text).Run(); }

}  // namespace diablo
