// The benchmark workload specification of §4: let-bound sample sets
// (!location / !endpoint / !account / !contract), workload groups mapping
// clients to endpoints, interaction behaviors and load ramps.
#ifndef SRC_CONFIG_SPEC_H_
#define SRC_CONFIG_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/config/yaml.h"
#include "src/fault/schedule.h"
#include "src/workload/trace.h"

namespace diablo {

struct LoadPoint {
  double at_seconds = 0;
  double tps = 0;  // per client; 0 ends the workload
};

struct ClientBehavior {
  // "invoke" (DApp call) or "transfer" (native).
  std::string interaction = "transfer";
  std::string contract;             // registry key, e.g. "dota"
  std::string function;             // e.g. "update"
  std::vector<int64_t> args;        // parsed from "update(1, 1)"
  int64_t transfer_amount = 1;      // for transfers
  int accounts = 0;                 // size of the bound !account set
  std::vector<LoadPoint> load;      // ramp, sorted by at_seconds
};

struct WorkloadGroup {
  int clients = 1;                       // "number" of worker threads
  std::vector<std::string> locations;    // secondary location tags
  std::vector<std::string> endpoints;    // endpoint patterns (".*" = all)
  std::vector<ClientBehavior> behaviors;
};

struct WorkloadSpec {
  std::vector<WorkloadGroup> groups;

  // Fault schedule from the optional top-level `faults:` list; structurally
  // validated at parse time (host indices are checked later, against the
  // actual deployment).
  FaultSchedule faults;

  // Total accounts referenced by any behavior.
  int TotalAccounts() const;

  // Aggregate submission trace: sum over groups of clients x per-client
  // load, piecewise constant between load points.
  Trace ToTrace() const;

  // First invoked contract (empty when transfers only).
  std::string PrimaryContract() const;
};

struct SpecResult {
  bool ok = false;
  std::string error;
  WorkloadSpec spec;
};

// Parses the YAML text of a workload configuration file.
SpecResult ParseWorkloadSpec(std::string_view yaml_text);

// Parses a function reference of the form "update(1, 1)" or "add".
bool ParseFunctionRef(std::string_view text, std::string* name,
                      std::vector<int64_t>* args);

}  // namespace diablo

#endif  // SRC_CONFIG_SPEC_H_
