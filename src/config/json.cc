#include "src/config/json.h"

#include <cctype>
#include <cstdlib>

#include "src/support/strings.h"

namespace diablo {

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* child = Find(key);
  return child != nullptr && child->IsNumber() ? child->number : fallback;
}

std::string JsonValue::GetString(std::string_view key, std::string_view fallback) const {
  const JsonValue* child = Find(key);
  return child != nullptr && child->IsString() ? child->string : std::string(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonResult Run() {
    JsonResult result;
    if (!ParseValue(&result.value)) {
      result.error = StrFormat("offset %zu: %s", pos_, error_.c_str());
      return result;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      result.error = StrFormat("offset %zu: trailing characters", pos_);
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(StrFormat("expected '%c'", c));
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject(out);
    }
    if (c == '[') {
      return ParseArray(out);
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') {
      return ParseKeyword(c == 't' ? "true" : "false", out);
    }
    if (c == 'n') {
      return ParseKeyword("null", out);
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode (basic multilingual plane only).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseKeyword(std::string_view keyword, JsonValue* out) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      return Fail("bad literal");
    }
    pos_ += keyword.size();
    if (keyword == "null") {
      out->type = JsonValue::Type::kNull;
    } else {
      out->type = JsonValue::Type::kBool;
      out->boolean = keyword == "true";
    }
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    double value = 0;
    if (!ParseDouble(text_.substr(start, pos_ - start), &value)) {
      return Fail("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonResult ParseJson(std::string_view text) { return Parser(text).Run(); }

}  // namespace diablo
