#include "src/config/spec.h"

#include <algorithm>
#include <cmath>

#include "src/support/strings.h"

namespace diablo {
namespace {

std::vector<std::string> StringList(const YamlNode& node) {
  std::vector<std::string> out;
  if (node.IsList()) {
    for (const YamlNode& item : node.items) {
      out.push_back(item.scalar);
    }
  } else if (node.IsScalar()) {
    out.push_back(node.scalar);
  }
  return out;
}

bool ParseBehavior(const YamlNode& node, ClientBehavior* behavior, std::string* error) {
  const YamlNode* interaction = node.Find("interaction");
  if (interaction == nullptr) {
    *error = "behavior missing 'interaction'";
    return false;
  }
  if (interaction->tag == "invoke") {
    behavior->interaction = "invoke";
    const YamlNode* contract = interaction->Find("contract");
    if (contract != nullptr) {
      // The contract sample set: { sample: !contract { name: "dota" } }.
      const YamlNode* sample = contract->Find("sample");
      if (sample != nullptr && sample->tag == "contract") {
        behavior->contract = sample->GetString("name", "");
      } else if (contract->IsScalar()) {
        behavior->contract = contract->scalar;
      }
    }
    const YamlNode* function = interaction->Find("function");
    if (function != nullptr) {
      if (!ParseFunctionRef(function->scalar, &behavior->function, &behavior->args)) {
        *error = "malformed function reference: " + function->scalar;
        return false;
      }
    }
    const YamlNode* from = interaction->Find("from");
    if (from != nullptr) {
      const YamlNode* sample = from->Find("sample");
      if (sample != nullptr && sample->tag == "account") {
        behavior->accounts = static_cast<int>(sample->GetInt("number", 0));
      }
    }
  } else if (interaction->tag == "transfer" || interaction->IsNull() ||
             interaction->IsScalar()) {
    behavior->interaction = "transfer";
    if (interaction->IsMap()) {
      behavior->transfer_amount = interaction->GetInt("amount", 1);
    }
  } else {
    *error = "unknown interaction tag: !" + interaction->tag;
    return false;
  }

  const YamlNode* load = node.Find("load");
  if (load == nullptr || !load->IsMap()) {
    *error = "behavior missing 'load' map";
    return false;
  }
  for (const auto& [key, value] : load->entries) {
    LoadPoint point;
    if (!ParseDouble(key, &point.at_seconds) || !value.AsDouble(&point.tps)) {
      *error = "malformed load point: " + key;
      return false;
    }
    behavior->load.push_back(point);
  }
  std::sort(behavior->load.begin(), behavior->load.end(),
            [](const LoadPoint& a, const LoadPoint& b) {
              return a.at_seconds < b.at_seconds;
            });
  return true;
}

// Reads a time field in float seconds. Required fields must be present;
// optional ones fall back (e.g. `to:` absent = window never closes).
bool FaultTime(const YamlNode& node, std::string_view key, bool required,
               SimTime fallback, SimTime* out, std::string* error) {
  const YamlNode* value = node.Find(key);
  if (value == nullptr) {
    if (required) {
      *error = StrFormat("fault missing '%s'", std::string(key).c_str());
      return false;
    }
    *out = fallback;
    return true;
  }
  double seconds = 0;
  if (!value->AsDouble(&seconds)) {
    *error = StrFormat("malformed fault time '%s': %s", std::string(key).c_str(),
                       value->scalar.c_str());
    return false;
  }
  *out = SecondsF(seconds);
  return true;
}

// Resolves a `between: [region-a, region-b]` scope. Absent = all pairs.
bool FaultPair(const YamlNode& node, bool* scoped, Region* a, Region* b,
               std::string* error) {
  const YamlNode* between = node.Find("between");
  *scoped = false;
  if (between == nullptr) {
    return true;
  }
  if (!between->IsList() || between->items.size() != 2) {
    *error = "fault 'between' must list exactly two regions";
    return false;
  }
  if (!ParseRegion(between->items[0].scalar, a) ||
      !ParseRegion(between->items[1].scalar, b)) {
    *error = "fault 'between' names an unknown region";
    return false;
  }
  *scoped = true;
  return true;
}

// Rejects keys a fault kind does not understand, pointing at the offending
// source line — a typo ("restat:") must fail loudly, not silently fall back
// to a default.
bool CheckFaultKeys(const std::string& kind, const YamlNode& body,
                    std::initializer_list<std::string_view> allowed,
                    std::string* error) {
  if (!body.IsMap()) {
    return true;
  }
  for (const auto& [key, value] : body.entries) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      known = known || key == candidate;
    }
    if (!known) {
      *error = StrFormat("%s fault has unknown key '%s' (line %d)",
                         kind.c_str(), key.c_str(),
                         value.line > 0 ? value.line : body.line);
      return false;
    }
  }
  return true;
}

// Byzantine adversary scope: an explicit `nodes:` list or a `fraction:` of
// the deployment (the injector resolves the fraction deterministically).
bool FaultAdversaries(const std::string& kind, const YamlNode& body,
                      FaultEvent* event, std::string* error) {
  const YamlNode* nodes = body.Find("nodes");
  const YamlNode* fraction = body.Find("fraction");
  if (nodes != nullptr) {
    if (!nodes->IsList()) {
      *error = kind + " fault 'nodes' must be a list";
      return false;
    }
    for (const YamlNode& item : nodes->items) {
      int64_t index = -1;
      if (!item.AsInt64(&index)) {
        *error = "malformed " + kind + " node index: " + item.scalar;
        return false;
      }
      event->nodes.push_back(static_cast<int>(index));
    }
  }
  if (fraction != nullptr && !fraction->AsDouble(&event->fraction)) {
    *error = "malformed " + kind + " 'fraction': " + fraction->scalar;
    return false;
  }
  if ((nodes == nullptr) == (fraction == nullptr)) {
    *error = kind + " fault needs exactly one of 'nodes' or 'fraction'";
    return false;
  }
  return true;
}

// One `- kind: { ... }` entry of the top-level `faults:` list.
bool ParseFaultEntry(const std::string& kind, const YamlNode& body,
                     FaultSchedule* schedule, std::string* error) {
  FaultEvent event;
  if (kind == "crash") {
    event.kind = FaultKind::kCrash;
    if (!CheckFaultKeys(kind, body, {"node", "at", "restart"}, error)) {
      return false;
    }
    int64_t index = -1;
    const YamlNode* node = body.Find("node");
    if (node == nullptr || !node->AsInt64(&index)) {
      *error = "crash fault missing 'node'";
      return false;
    }
    event.node = static_cast<int>(index);
    if (!FaultTime(body, "at", true, 0, &event.at, error) ||
        !FaultTime(body, "restart", false, -1, &event.until, error)) {
      return false;
    }
  } else if (kind == "partition") {
    event.kind = FaultKind::kPartition;
    if (!CheckFaultKeys(kind, body, {"nodes", "region", "from", "to"}, error)) {
      return false;
    }
    const YamlNode* region = body.Find("region");
    const YamlNode* nodes = body.Find("nodes");
    if (region != nullptr) {
      event.by_region = true;
      if (!ParseRegion(region->scalar, &event.region)) {
        *error = "partition names an unknown region: " + region->scalar;
        return false;
      }
    } else if (nodes != nullptr && nodes->IsList()) {
      for (const YamlNode& item : nodes->items) {
        int64_t index = -1;
        if (!item.AsInt64(&index)) {
          *error = "malformed partition node index: " + item.scalar;
          return false;
        }
        event.nodes.push_back(static_cast<int>(index));
      }
    } else {
      *error = "partition fault needs 'nodes' or 'region'";
      return false;
    }
    if (!FaultTime(body, "from", true, 0, &event.at, error) ||
        !FaultTime(body, "to", false, -1, &event.until, error)) {
      return false;
    }
  } else if (kind == "loss") {
    event.kind = FaultKind::kLoss;
    if (!CheckFaultKeys(kind, body, {"rate", "between", "from", "to"}, error)) {
      return false;
    }
    const YamlNode* rate = body.Find("rate");
    if (rate == nullptr || !rate->AsDouble(&event.loss_rate)) {
      *error = "loss fault missing 'rate'";
      return false;
    }
    if (!FaultPair(body, &event.region_pair, &event.pair_a, &event.pair_b,
                   error) ||
        !FaultTime(body, "from", true, 0, &event.at, error) ||
        !FaultTime(body, "to", false, -1, &event.until, error)) {
      return false;
    }
  } else if (kind == "delay") {
    event.kind = FaultKind::kDelaySpike;
    if (!CheckFaultKeys(kind, body, {"extra_ms", "between", "from", "to"},
                        error)) {
      return false;
    }
    const YamlNode* extra = body.Find("extra_ms");
    double extra_ms = 0;
    if (extra == nullptr || !extra->AsDouble(&extra_ms)) {
      *error = "delay fault missing 'extra_ms'";
      return false;
    }
    event.extra_delay = SecondsF(extra_ms / 1000.0);
    if (!FaultPair(body, &event.region_pair, &event.pair_a, &event.pair_b,
                   error) ||
        !FaultTime(body, "from", true, 0, &event.at, error) ||
        !FaultTime(body, "to", false, -1, &event.until, error)) {
      return false;
    }
  } else if (kind == "straggler") {
    event.kind = FaultKind::kStraggler;
    if (!CheckFaultKeys(kind, body, {"node", "cpu_factor", "from", "to"},
                        error)) {
      return false;
    }
    int64_t index = -1;
    const YamlNode* node = body.Find("node");
    if (node == nullptr || !node->AsInt64(&index)) {
      *error = "straggler fault missing 'node'";
      return false;
    }
    event.node = static_cast<int>(index);
    const YamlNode* factor = body.Find("cpu_factor");
    if (factor == nullptr || !factor->AsDouble(&event.cpu_factor)) {
      *error = "straggler fault missing 'cpu_factor'";
      return false;
    }
    if (!FaultTime(body, "from", true, 0, &event.at, error) ||
        !FaultTime(body, "to", false, -1, &event.until, error)) {
      return false;
    }
  } else if (kind == "equivocate" || kind == "double-vote" ||
             kind == "withhold" || kind == "lazy") {
    event.kind = kind == "equivocate"    ? FaultKind::kEquivocate
                 : kind == "double-vote" ? FaultKind::kDoubleVote
                 : kind == "withhold"    ? FaultKind::kWithholdVotes
                                         : FaultKind::kLazyProposer;
    if (!CheckFaultKeys(kind, body, {"nodes", "fraction", "from", "to"},
                        error) ||
        !FaultAdversaries(kind, body, &event, error) ||
        !FaultTime(body, "from", true, 0, &event.at, error) ||
        !FaultTime(body, "to", false, -1, &event.until, error)) {
      return false;
    }
  } else if (kind == "censor") {
    event.kind = FaultKind::kCensor;
    if (!CheckFaultKeys(kind, body,
                        {"nodes", "fraction", "signers", "from", "to"},
                        error) ||
        !FaultAdversaries(kind, body, &event, error)) {
      return false;
    }
    const YamlNode* signers = body.Find("signers");
    if (signers == nullptr || !signers->IsList()) {
      *error = "censor fault needs a 'signers' list";
      return false;
    }
    for (const YamlNode& item : signers->items) {
      int64_t signer = -1;
      if (!item.AsInt64(&signer)) {
        *error = "malformed censored signer id: " + item.scalar;
        return false;
      }
      event.censored_signers.push_back(static_cast<int>(signer));
    }
    if (!FaultTime(body, "from", true, 0, &event.at, error) ||
        !FaultTime(body, "to", false, -1, &event.until, error)) {
      return false;
    }
  } else {
    *error = StrFormat("unknown fault kind: %s (line %d)", kind.c_str(),
                       body.line);
    return false;
  }
  schedule->events.push_back(std::move(event));
  return true;
}

bool ParseFaults(const YamlNode& faults, FaultSchedule* schedule,
                 std::string* error) {
  if (!faults.IsList()) {
    *error = "'faults' must be a list";
    return false;
  }
  for (const YamlNode& item : faults.items) {
    if (!item.IsMap() || item.entries.size() != 1) {
      *error = "each fault must be a single '<kind>: {...}' entry";
      return false;
    }
    if (!ParseFaultEntry(item.entries[0].first, item.entries[0].second, schedule,
                         error)) {
      return false;
    }
  }
  // Structural validation now; host indices are re-checked against the real
  // deployment when the injector installs the schedule.
  return schedule->Validate(/*node_count=*/-1, error);
}

}  // namespace

bool ParseFunctionRef(std::string_view text, std::string* name,
                      std::vector<int64_t>* args) {
  name->clear();
  args->clear();
  const size_t open = text.find('(');
  if (open == std::string_view::npos) {
    *name = Trim(text);
    return !name->empty();
  }
  if (text.back() != ')') {
    return false;
  }
  *name = Trim(text.substr(0, open));
  const std::string_view inner = text.substr(open + 1, text.size() - open - 2);
  if (Trim(inner).empty()) {
    return !name->empty();
  }
  for (const std::string& part : Split(inner, ',')) {
    int64_t value = 0;
    if (!ParseInt64(part, &value)) {
      return false;
    }
    args->push_back(value);
  }
  return !name->empty();
}

int WorkloadSpec::TotalAccounts() const {
  int total = 0;
  for (const WorkloadGroup& group : groups) {
    for (const ClientBehavior& behavior : group.behaviors) {
      total = std::max(total, behavior.accounts);
    }
  }
  return total;
}

Trace WorkloadSpec::ToTrace() const {
  Trace trace;
  trace.name = "spec";
  for (const WorkloadGroup& group : groups) {
    for (const ClientBehavior& behavior : group.behaviors) {
      if (behavior.load.empty()) {
        continue;
      }
      const double end = behavior.load.back().at_seconds;
      if (trace.tps.size() < static_cast<size_t>(end)) {
        trace.tps.resize(static_cast<size_t>(end), 0.0);
      }
      for (size_t i = 0; i + 1 < behavior.load.size(); ++i) {
        const LoadPoint& from = behavior.load[i];
        const LoadPoint& to = behavior.load[i + 1];
        for (size_t s = static_cast<size_t>(from.at_seconds);
             s < static_cast<size_t>(to.at_seconds) && s < trace.tps.size(); ++s) {
          trace.tps[s] += from.tps * group.clients;
        }
      }
    }
  }
  return trace;
}

std::string WorkloadSpec::PrimaryContract() const {
  for (const WorkloadGroup& group : groups) {
    for (const ClientBehavior& behavior : group.behaviors) {
      if (behavior.interaction == "invoke" && !behavior.contract.empty()) {
        return behavior.contract;
      }
    }
  }
  return std::string();
}

SpecResult ParseWorkloadSpec(std::string_view yaml_text) {
  SpecResult result;
  const YamlResult yaml = ParseYaml(yaml_text);
  if (!yaml.ok) {
    result.error = yaml.error;
    return result;
  }
  const YamlNode* workloads = yaml.root.Find("workloads");
  if (workloads == nullptr || !workloads->IsList()) {
    result.error = "missing 'workloads' list";
    return result;
  }
  const YamlNode* faults = yaml.root.Find("faults");
  if (faults != nullptr &&
      !ParseFaults(*faults, &result.spec.faults, &result.error)) {
    return result;
  }
  for (const YamlNode& item : workloads->items) {
    WorkloadGroup group;
    group.clients = static_cast<int>(item.GetInt("number", 1));
    const YamlNode* client = item.Find("client");
    if (client == nullptr || !client->IsMap()) {
      result.error = "workload missing 'client'";
      return result;
    }
    const YamlNode* location = client->Find("location");
    if (location != nullptr) {
      const YamlNode* sample = location->Find("sample");
      group.locations = StringList(sample != nullptr ? *sample : *location);
    }
    const YamlNode* view = client->Find("view");
    if (view != nullptr) {
      const YamlNode* sample = view->Find("sample");
      group.endpoints = StringList(sample != nullptr ? *sample : *view);
    }
    const YamlNode* behaviors = client->Find("behavior");
    if (behaviors == nullptr || !behaviors->IsList()) {
      result.error = "client missing 'behavior' list";
      return result;
    }
    for (const YamlNode& entry : behaviors->items) {
      ClientBehavior behavior;
      if (!ParseBehavior(entry, &behavior, &result.error)) {
        return result;
      }
      group.behaviors.push_back(std::move(behavior));
    }
    result.spec.groups.push_back(std::move(group));
  }
  result.ok = true;
  return result;
}

}  // namespace diablo
