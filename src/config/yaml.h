// A YAML-subset parser covering diablo's benchmark configuration files (§4):
// block maps and sequences by indentation, compact "- key: value" items,
// inline flow lists/maps, quoted scalars, comments, anchors (&name / *name)
// and application tags (!invoke, !location, !endpoint, !account, !contract).
#ifndef SRC_CONFIG_YAML_H_
#define SRC_CONFIG_YAML_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace diablo {

class YamlNode {
 public:
  enum class Type { kNull, kScalar, kList, kMap };

  Type type = Type::kNull;
  int line = 0;        // 1-based source line this node started on; 0 = unknown
  std::string tag;     // without the '!', empty when untagged
  std::string scalar;  // valid when kScalar
  std::vector<YamlNode> items;                             // kList
  std::vector<std::pair<std::string, YamlNode>> entries;   // kMap, in order

  bool IsNull() const { return type == Type::kNull; }
  bool IsScalar() const { return type == Type::kScalar; }
  bool IsList() const { return type == Type::kList; }
  bool IsMap() const { return type == Type::kMap; }

  // Map lookup; nullptr when absent or not a map.
  const YamlNode* Find(std::string_view key) const;

  // Scalar conversions; return false when the node is not a scalar of the
  // requested shape.
  bool AsInt64(int64_t* out) const;
  bool AsDouble(double* out) const;
  const std::string& AsString() const { return scalar; }

  // Convenience: child scalar with default.
  int64_t GetInt(std::string_view key, int64_t fallback) const;
  std::string GetString(std::string_view key, std::string_view fallback) const;
};

struct YamlResult {
  bool ok = false;
  std::string error;  // "line N: message"
  YamlNode root;
};

YamlResult ParseYaml(std::string_view text);

}  // namespace diablo

#endif  // SRC_CONFIG_YAML_H_
