// A small JSON parser for the results documents the primary emits
// (post-mortem analysis reads them back, like the artifact's csv-results
// script). Supports objects, arrays, strings with escapes, numbers,
// booleans and null.
#ifndef SRC_CONFIG_JSON_H_
#define SRC_CONFIG_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace diablo {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, ordered

  bool IsNull() const { return type == Type::kNull; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }

  // Object lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Convenience accessors with fallbacks.
  double GetNumber(std::string_view key, double fallback) const;
  std::string GetString(std::string_view key, std::string_view fallback) const;
};

struct JsonResult {
  bool ok = false;
  std::string error;  // with character offset
  JsonValue value;
};

JsonResult ParseJson(std::string_view text);

}  // namespace diablo

#endif  // SRC_CONFIG_JSON_H_
