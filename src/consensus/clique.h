// Clique proof-of-authority (Ethereum, §5.2): authorized signers take turns
// producing a block every fixed period. Forks from out-of-turn signing are
// modelled through a confirmation depth — a block is client-final only once
// `confirmation_depth` further blocks sit on top of it.
#ifndef SRC_CONSENSUS_CLIQUE_H_
#define SRC_CONSENSUS_CLIQUE_H_

#include <deque>

#include "src/chain/node.h"

namespace diablo {

class CliqueEngine : public ConsensusEngine {
 public:
  explicit CliqueEngine(ChainContext* ctx) : ConsensusEngine(ctx) {}

  void Start() override;
  SimDuration MinRescheduleDelay() const override;

 private:
  struct PendingBlock {
    uint64_t height;
    int proposer;
    ChainContext::BuiltBlock built;
    SimTime proposed_at;
    SimTime visible_at;  // block fully propagated to the network
  };

  void ProduceBlock();

  uint64_t height_ = 1;
  std::deque<PendingBlock> pending_;
};

}  // namespace diablo

#endif  // SRC_CONSENSUS_CLIQUE_H_
