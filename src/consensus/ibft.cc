#include "src/consensus/ibft.h"

#include <algorithm>
#include <utility>

namespace diablo {

void IbftEngine::Start() {
  ctx_->ScheduleEngine(ctx_->params().block_interval, [this] { Round(); });
}

// Floor over every reschedule path: view changes (leader down, equivocation,
// no quorum) wait round_timeout, the saturation backoff never shrinks below
// round_timeout, and a successful round schedules at or past t0 +
// block_interval.
SimDuration IbftEngine::MinRescheduleDelay() const {
  return std::min(ctx_->params().round_timeout, ctx_->params().block_interval);
}

// Runs on the engine's shard when engine sharding is enabled: the engine is
// the sole window-time owner of the chain context (mempool, ledger, stats,
// message plane, the context and network RNG streams), and every reschedule
// below goes through ScheduleEngine/ScheduleEngineAt with a delay at or
// above MinRescheduleDelay().
// detlint: parallel-phase(begin, ibft-engine)
void IbftEngine::Round() {
  const SimTime t0 = ctx_->sim()->Now();
  const ChainParams& params = ctx_->params();
  const int n = ctx_->node_count();
  const int leader = static_cast<int>((height_ + round_) % static_cast<uint64_t>(n));

  // A crashed leader never even proposes: the round-change timer fires and
  // the next round picks the next leader in rotation.
  if (ctx_->NodeDown(leader)) {
    ++ctx_->stats().view_changes;
    ++round_;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  // An equivocating leader sends conflicting PRE-PREPAREs: validators
  // cross-check the proposal digests during PREPARE, record the evidence,
  // and force a round change — neither proposal can gather a quorum.
  if (ctx_->ProposerEquivocates(leader)) {
    ctx_->RecordEquivocation();
    ++ctx_->stats().view_changes;
    ++round_;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  // View change when the leader cannot even scan the pending set within the
  // round timeout (saturation by a constantly high workload, §6.3). The
  // exponential backoff mirrors IBFT's round-change timer doubling; the
  // shift saturates rather than overflowing under pathological timeout
  // configurations.
  const SimDuration pool_scan = ctx_->PoolScanTime();
  if (pool_scan > params.round_timeout) {
    ++ctx_->stats().view_changes;
    ++round_;
    consecutive_failures_ = std::min(consecutive_failures_ + 1, 6);
    const SimDuration backoff =
        SaturatingBackoff(params.round_timeout, consecutive_failures_);
    ctx_->ScheduleEngine(backoff, [this] { Round(); });
    return;
  }
  consecutive_failures_ = 0;

  ChainContext::BuiltBlock built = ctx_->BuildBlock(t0, leader);
  const SimDuration build_time = built.build_time;
  const size_t quorum = static_cast<size_t>(ByzantineQuorum(n));
  const auto& hosts = ctx_->hosts();
  MessagePlaneScratch* plane = ctx_->plane();

  // PRE-PREPARE: the proposal reaches every validator, which re-executes it.
  std::vector<SimDuration>& bcast = plane->stage_a;
  ctx_->net()->BroadcastDelaysInto(hosts[static_cast<size_t>(leader)], hosts,
                                   built.bytes, params.gossip_fanout,
                                   &plane->broadcast, &bcast);
  const SimDuration follower_exec = ctx_->ExecAndVerifyTime(built.gas, built.tx_count);
  std::vector<SimDuration>& preprepared = bcast;  // arrival + execution, in place
  for (int i = 0; i < n; ++i) {
    if (bcast[static_cast<size_t>(i)] != kUnreachable) {
      preprepared[static_cast<size_t>(i)] =
          build_time + bcast[static_cast<size_t>(i)] + follower_exec;
    }
  }

  // PREPARE then COMMIT: all-to-all vote rounds over 2f+1 quorums; on large
  // deployments the n^2 vote flood relays through the devp2p mesh.
  // Withholding validators never enter the sender set (their slot turns
  // kUnreachable), so the 2f+1 quorums count only votes actually cast;
  // double votes are discarded as evidence before they reach the tally.
  ctx_->ApplyVoteAdversaries(&preprepared);
  const double hops = GossipHopScale(n);
  std::vector<SimDuration>& prepared = plane->stage_b;
  QuorumArrivalAllInto(ctx_->vote_delays(), preprepared, quorum, hops, plane,
                       &prepared, /*hint_slot=*/0);
  ctx_->ApplyVoteAdversaries(&prepared);
  std::vector<SimDuration>& committed = plane->stage_c;
  QuorumArrivalAllInto(ctx_->vote_delays(), prepared, quorum, hops, plane,
                       &committed, /*hint_slot=*/1);

  const SimDuration round_latency = MedianDelayInto(committed, plane);
  if (round_latency == kUnreachable) {
    // No commit quorum (partition / crash fault): the drafted transactions
    // go back to the pool for the next leader.
    ctx_->AbandonBlock(built, t0 + params.round_timeout);
    ++ctx_->stats().view_changes;
    ++round_;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  const SimTime final_time = t0 + round_latency;
  ctx_->FinalizeBlock(height_, leader, std::move(built), t0, final_time);
  ++height_;
  round_ = 0;

  const SimTime next = std::max(final_time, t0 + params.block_interval);
  ctx_->ScheduleEngineAt(next, [this] { Round(); });
}
// detlint: parallel-phase(end)

}  // namespace diablo
