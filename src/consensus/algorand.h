// Algorand BA* (§5.2): pure proof-of-stake with cryptographic sortition.
// Each round a VRF lottery picks a proposer and per-step committees; the
// block is final as soon as the certify step completes (no forks with high
// probability). Step timeouts put a floor under the round time, which is
// why Algorand's latency sits in seconds even on fast networks.
#ifndef SRC_CONSENSUS_ALGORAND_H_
#define SRC_CONSENSUS_ALGORAND_H_

#include "src/chain/node.h"

namespace diablo {

class AlgorandEngine : public ConsensusEngine {
 public:
  explicit AlgorandEngine(ChainContext* ctx);

  void Start() override;
  SimDuration MinRescheduleDelay() const override;

 private:
  void Round();

  uint64_t seed_;
  uint64_t height_ = 1;
};

}  // namespace diablo

#endif  // SRC_CONSENSUS_ALGORAND_H_
