#include "src/consensus/clique.h"

#include <algorithm>
#include <utility>

namespace diablo {

void CliqueEngine::Start() {
  ctx_->ScheduleEngine(ctx_->params().block_interval, [this] { ProduceBlock(); });
}

// Floor over every reschedule path: the out-of-turn wiggle waits half a
// block interval, everything else at least a full one.
SimDuration CliqueEngine::MinRescheduleDelay() const {
  return ctx_->params().block_interval / 2;
}

// Runs on the engine's shard when engine sharding is enabled: the engine is
// the sole window-time owner of the chain context (mempool, ledger, stats,
// message plane, the context and network RNG streams), and every reschedule
// below goes through ScheduleEngine/ScheduleEngineAt with a delay at or
// above MinRescheduleDelay().
// detlint: parallel-phase(begin, clique-engine)
void CliqueEngine::ProduceBlock() {
  const SimTime t0 = ctx_->sim()->Now();
  const int n = ctx_->node_count();
  const int proposer = static_cast<int>(height_ % static_cast<uint64_t>(n));

  // Clique: when the in-turn signer is crashed or unreachable, an
  // out-of-turn signer seals the block after a wiggle delay instead.
  const auto& all_hosts = ctx_->hosts();
  if (ctx_->NodeDown(proposer) ||
      ctx_->net()->DelaySample(all_hosts[static_cast<size_t>(proposer)],
                               all_hosts[static_cast<size_t>((proposer + 1) % n)],
                               64) == kUnreachable) {
    ++height_;
    ++ctx_->stats().view_changes;
    ctx_->ScheduleEngine(ctx_->params().block_interval / 2, [this] { ProduceBlock(); });
    return;
  }

  // An equivocating signer seals two conflicting blocks for its turn; peers
  // keep the first-received seal (lowest-hash tiebreak in geth), so the
  // conflict only leaves evidence — the confirmation window already absorbs
  // the short fork.
  if (ctx_->ProposerEquivocates(proposer)) {
    ctx_->RecordEquivocation();
  }

  ChainContext::BuiltBlock built = ctx_->BuildBlock(t0, proposer);
  const SimDuration build_time = built.build_time;
  const auto& hosts = ctx_->hosts();
  MessagePlaneScratch* plane = ctx_->plane();
  std::vector<SimDuration>& bcast = plane->stage_a;
  ctx_->net()->BroadcastDelaysInto(hosts[static_cast<size_t>(proposer)], hosts,
                                   built.bytes, ctx_->params().gossip_fanout,
                                   &plane->broadcast, &bcast);
  const SimDuration propagation = MedianDelayInto(bcast, plane);
  const SimTime visible = t0 + built.build_time +
                          (propagation == kUnreachable ? Seconds(1) : propagation) +
                          ctx_->ExecAndVerifyTime(built.gas, built.tx_count);

  pending_.push_back(
      PendingBlock{height_, proposer, std::move(built), t0, visible});

  // A block becomes client-final when `confirmation_depth` descendants exist:
  // the newest block's visibility seals the oldest pending one.
  while (pending_.size() > static_cast<size_t>(ctx_->params().confirmation_depth)) {
    PendingBlock sealed = std::move(pending_.front());
    pending_.pop_front();
    const SimTime final_time = std::max(sealed.visible_at, visible);
    ctx_->FinalizeBlock(sealed.height, sealed.proposer, std::move(sealed.built),
                        sealed.proposed_at, final_time);
  }

  ++height_;
  const SimTime next = std::max(t0 + ctx_->params().block_interval, t0 + build_time);
  ctx_->ScheduleEngineAt(next, [this] { ProduceBlock(); });
}
// detlint: parallel-phase(end)

}  // namespace diablo
