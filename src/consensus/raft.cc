#include "src/consensus/raft.h"

#include <algorithm>
#include <utility>

namespace diablo {

void RaftEngine::Start() {
  ctx_->ScheduleEngine(ctx_->params().block_interval, [this] { Round(); });
}

// Floor over every reschedule path: elections wait round_timeout and a
// committed round schedules at or past t0 + block_interval.
SimDuration RaftEngine::MinRescheduleDelay() const {
  return std::min(ctx_->params().round_timeout, ctx_->params().block_interval);
}

// Runs on the engine's shard when engine sharding is enabled: the engine is
// the sole window-time owner of the chain context (mempool, ledger, stats,
// message plane, the context and network RNG streams), and every reschedule
// below goes through ScheduleEngine/ScheduleEngineAt with a delay at or
// above MinRescheduleDelay().
// detlint: parallel-phase(begin, raft-engine)
void RaftEngine::Round() {
  const SimTime t0 = ctx_->sim()->Now();
  const ChainParams& params = ctx_->params();
  const int n = ctx_->node_count();
  const size_t majority = static_cast<size_t>(n) / 2 + 1;
  const auto& hosts = ctx_->hosts();

  // A crashed leader stops heartbeating: followers elect the next node
  // after an election timeout, without a proposal this round.
  if (ctx_->NodeDown(leader_)) {
    ++ctx_->stats().view_changes;
    leader_ = (leader_ + 1) % n;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  // An equivocating Raft leader ships divergent AppendEntries; the log
  // matching property keeps the first entry per index, so the conflict dies
  // as recorded evidence rather than a fork (first-proposal-wins).
  if (ctx_->ProposerEquivocates(leader_)) {
    ctx_->RecordEquivocation();
  }

  ChainContext::BuiltBlock built = ctx_->BuildBlock(t0, leader_);
  const SimDuration build_time = built.build_time;

  // AppendEntries: the leader streams the block to every follower and
  // commits once a majority acknowledged.
  MessagePlaneScratch* plane = ctx_->plane();
  std::vector<SimDuration>& bcast = plane->stage_a;
  ctx_->net()->BroadcastDelaysInto(hosts[static_cast<size_t>(leader_)], hosts,
                                   built.bytes, /*fanout=*/n - 1, &plane->broadcast,
                                   &bcast);
  const SimDuration follower_exec = ctx_->ExecAndVerifyTime(built.gas, built.tx_count);
  std::vector<SimDuration>& acked = bcast;  // arrival + execution, in place
  for (int i = 0; i < n; ++i) {
    if (bcast[static_cast<size_t>(i)] != kUnreachable) {
      acked[static_cast<size_t>(i)] =
          build_time + bcast[static_cast<size_t>(i)] + follower_exec;
    }
  }
  // Followers that withhold their acks drop out of the majority count.
  ctx_->ApplyVoteAdversaries(&acked);
  const SimDuration commit = QuorumArrivalInto(
      ctx_->vote_delays(), acked, static_cast<size_t>(leader_), majority, 1.0, plane);
  if (commit == kUnreachable) {
    // Leader lost its majority: elect the next node and retry after an
    // election timeout. The uncommitted entries return to the pool.
    ctx_->AbandonBlock(built, t0 + params.round_timeout);
    ++ctx_->stats().view_changes;
    leader_ = (leader_ + 1) % n;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  const SimTime final_time = t0 + commit;
  ctx_->FinalizeBlock(height_, leader_, std::move(built), t0, final_time);
  ++height_;

  const SimTime next = std::max(final_time, t0 + params.block_interval);
  ctx_->ScheduleEngineAt(next, [this] { Round(); });
}
// detlint: parallel-phase(end)

}  // namespace diablo
