#include "src/consensus/algorand.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/crypto/sortition.h"

namespace diablo {

AlgorandEngine::AlgorandEngine(ChainContext* ctx)
    : ConsensusEngine(ctx), seed_(ctx->rng().NextU64()) {}

void AlgorandEngine::Start() {
  ctx_->ScheduleEngine(ctx_->params().block_interval, [this] { Round(); });
}

// Floor over every reschedule path: failed rounds wait three step timeouts
// (the BA* recovery floor) and certified rounds at least one block interval.
SimDuration AlgorandEngine::MinRescheduleDelay() const {
  return std::min(ctx_->params().step_timeout * 3, ctx_->params().block_interval);
}

// Runs on the engine's shard when engine sharding is enabled: the engine is
// the sole window-time owner of the chain context (mempool, ledger, stats,
// message plane, the context and network RNG streams), and every reschedule
// below goes through ScheduleEngine/ScheduleEngineAt with a delay at or
// above MinRescheduleDelay().
// detlint: parallel-phase(begin, algorand-engine)
void AlgorandEngine::Round() {
  const SimTime t0 = ctx_->sim()->Now();
  const ChainParams& params = ctx_->params();
  const uint32_t n = static_cast<uint32_t>(ctx_->node_count());
  const auto& hosts = ctx_->hosts();

  // Sortition: proposer priority and per-step committees derive from the
  // round seed; everyone computes the same outcome.
  const int proposer = static_cast<int>(SelectProposer(seed_, height_, n));
  const double expected =
      params.committee_expected > 0
          ? std::min<double>(params.committee_expected, static_cast<double>(n))
          : static_cast<double>(n);

  // A crashed sortition winner simply never proposes; the round times out
  // and the next seed picks a fresh proposer.
  if (ctx_->NodeDown(proposer)) {
    ++ctx_->stats().view_changes;
    ++height_;
    ctx_->ScheduleEngine(params.step_timeout * 3, [this] { Round(); });
    return;
  }

  // An equivocating sortition winner gossips two credentialed proposals;
  // the soft vote splits between them, certification fails, and the next
  // seed reassigns the proposer — BA* reaches the empty block instead.
  if (ctx_->ProposerEquivocates(proposer)) {
    ctx_->RecordEquivocation();
    ++ctx_->stats().view_changes;
    ++height_;
    ctx_->ScheduleEngine(params.step_timeout * 3, [this] { Round(); });
    return;
  }

  ChainContext::BuiltBlock built = ctx_->BuildBlock(t0, proposer);
  const SimDuration build_time = built.build_time;

  // Proposal dissemination by gossip; nodes wait out the proposal step
  // timeout before soft-voting (the λ parameter of BA*).
  MessagePlaneScratch* plane = ctx_->plane();
  std::vector<SimDuration>& bcast = plane->stage_a;
  ctx_->net()->BroadcastDelaysInto(hosts[static_cast<size_t>(proposer)], hosts,
                                   built.bytes, params.gossip_fanout,
                                   &plane->broadcast, &bcast);
  const SimDuration verify = ctx_->ExecAndVerifyTime(built.gas, built.tx_count);

  auto vote_step = [&](uint64_t step, const std::vector<SimDuration>& start_times,
                       std::vector<SimDuration>* voted, int hint_slot) {
    std::vector<uint32_t>& committee = plane->committee;
    SelectCommitteeInto(seed_, height_, step, n, expected, &committee);
    // BA* step timers are sequential: the soft vote fires after one λ, the
    // certify vote after two.
    const SimDuration step_floor =
        params.step_timeout * static_cast<SimDuration>(step);
    std::vector<SimDuration>& senders = plane->senders;
    senders.assign(n, kUnreachable);
    for (const uint32_t member : committee) {
      const SimDuration start = start_times[member];
      if (start != kUnreachable) {
        // Committee members vote after their step timer or once they hold
        // the previous step's result, whichever is later.
        senders[member] = std::max<SimDuration>(start, step_floor);
      }
    }
    // Committee members that withhold (or double-cast) their votes: the
    // slot is node-indexed here, and only committee slots are reachable, so
    // exactly the selected adversaries are affected.
    ctx_->ApplyVoteAdversaries(&senders);
    // BA* thresholds sit just below 3/4 of the expected committee weight.
    const size_t threshold = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(0.685 * static_cast<double>(committee.size()))));
    // Votes flood through the gossip network (multi-hop on large meshes).
    QuorumArrivalAllInto(ctx_->vote_delays(), senders, threshold,
                         GossipHopScale(static_cast<int>(n)), plane, voted, hint_slot);
  };

  std::vector<SimDuration>& have_proposal = bcast;  // arrival + verify, in place
  for (uint32_t i = 0; i < n; ++i) {
    if (bcast[i] != kUnreachable) {
      have_proposal[i] = build_time + bcast[i] + verify;
    }
  }

  std::vector<SimDuration>& soft = plane->stage_b;
  std::vector<SimDuration>& cert = plane->stage_c;
  if (!ctx_->vote_delays().dense()) {
    // Committee-sampled BA* for large N. Sortition already bounds who votes,
    // so each step only needs its result at the nodes that consume it — the
    // next step's committee — instead of flooding all n receivers, keeping a
    // round at O(committee²) while the dense path below stays O(n²). Both
    // committees derive from the round seed, so they are known up front.
    std::vector<uint32_t>& committee1 = plane->committee;
    std::vector<uint32_t>& committee2 = plane->committee_b;
    SelectCommitteeInto(seed_, height_, /*step=*/1, n, expected, &committee1);
    SelectCommitteeInto(seed_, height_, /*step=*/2, n, expected, &committee2);
    const double hops = GossipHopScale(static_cast<int>(n));
    auto sampled_step = [&](uint64_t step, const std::vector<uint32_t>& committee,
                            const std::vector<SimDuration>& start_times,
                            std::vector<SimDuration>* voted, int hint_slot) {
      const SimDuration step_floor =
          params.step_timeout * static_cast<SimDuration>(step);
      std::vector<SimDuration>& times = plane->senders;
      times.clear();
      for (const uint32_t member : committee) {
        const SimDuration start = start_times[member];
        times.push_back(start == kUnreachable
                            ? kUnreachable
                            : std::max<SimDuration>(start, step_floor));
      }
      // `times` is committee-position-indexed; map positions back to node
      // ids to find the withholding members.
      ctx_->ApplyVoteAdversaries(&times, committee);
      const size_t threshold = std::max<size_t>(
          1, static_cast<size_t>(
                 std::ceil(0.685 * static_cast<double>(committee.size()))));
      QuorumArrivalCommitteeInto(ctx_->vote_delays(), committee, times, committee2,
                                 n, threshold, hops, plane, voted, hint_slot);
    };
    sampled_step(/*step=*/1, committee1, have_proposal, &soft, /*hint_slot=*/0);
    sampled_step(/*step=*/2, committee2, soft, &cert, /*hint_slot=*/1);
  } else {
    vote_step(/*step=*/1, have_proposal, &soft, /*hint_slot=*/0);
    vote_step(/*step=*/2, soft, &cert, /*hint_slot=*/1);
  }

  const SimDuration round_latency = MedianDelayInto(cert, plane);
  if (round_latency == kUnreachable) {
    // No certification this round (committee unlucky / partitioned): the
    // proposal's transactions return to the pool and the round retries.
    ctx_->AbandonBlock(built, t0 + params.step_timeout * 3);
    ++ctx_->stats().view_changes;
    ++height_;
    ctx_->ScheduleEngine(params.step_timeout * 3, [this] { Round(); });
    return;
  }

  // Immediate finality: Algorand does not fork with high probability.
  const SimTime final_time = t0 + round_latency;
  ctx_->FinalizeBlock(height_, proposer, std::move(built), t0, final_time);
  ++height_;

  const SimTime next = std::max(final_time, t0 + params.block_interval);
  ctx_->ScheduleEngineAt(next, [this] { Round(); });
}
// detlint: parallel-phase(end)

}  // namespace diablo
