#include "src/consensus/dbft.h"

#include <algorithm>
#include <utility>

namespace diablo {

DbftEngine::DbftEngine(ChainContext* ctx)
    : ConsensusEngine(ctx), rng_(ctx->sim()->ForkRng()) {}

void DbftEngine::Start() {
  ctx_->ScheduleEngine(ctx_->params().block_interval, [this] { Round(); });
}

// Floor over every reschedule path: a missed superblock quorum waits
// round_timeout, a decided one at least one block interval.
SimDuration DbftEngine::MinRescheduleDelay() const {
  return std::min(ctx_->params().round_timeout, ctx_->params().block_interval);
}

// Runs on the engine's shard when engine sharding is enabled: the engine is
// the sole window-time owner of the chain context (mempool, ledger, stats,
// message plane, the context and network RNG streams), and every reschedule
// below goes through ScheduleEngine/ScheduleEngineAt with a delay at or
// above MinRescheduleDelay().
// detlint: parallel-phase(begin, dbft-engine)
void DbftEngine::Round() {
  const SimTime t0 = ctx_->sim()->Now();
  const ChainParams& params = ctx_->params();
  const int n = ctx_->node_count();
  const size_t quorum = static_cast<size_t>(ByzantineQuorum(n));
  const auto& hosts = ctx_->hosts();

  // The superblock is the union of n mini-blocks; drafting and execution
  // are sharded across the proposers, so the per-node work is 1/n of it.
  ChainContext::BuiltBlock built = ctx_->BuildBlock(t0, /*proposer=*/0);
  const SimDuration per_node_work =
      built.build_time / static_cast<SimDuration>(std::max(1, n));

  // Equivocating proposers submit conflicting vice-blocks; the per-proposer
  // binary consensus decides 0 for them, so their share of the superblock is
  // excluded and its transactions return to the pool for the next round.
  if (ctx_->AnyAdversary() && built.tx_count > 0) {
    int equivocators = 0;
    for (int i = 0; i < n; ++i) {
      if (ctx_->ProposerEquivocates(i)) {
        ++equivocators;
        ctx_->RecordEquivocation();
      }
    }
    if (equivocators > 0) {
      const uint32_t keep = static_cast<uint32_t>(
          (static_cast<uint64_t>(built.tx_count) *
           static_cast<uint64_t>(n - equivocators)) /
          static_cast<uint64_t>(n));
      ctx_->RequeueBlockTail(&built, keep, t0);
    }
  }

  // Reliable broadcast of the mini-blocks: every node disseminates ~1/n of
  // the payload concurrently — no leader uplink on the critical path. The
  // slowest mini-block dissemination gates the round; sample one
  // representative proposer per round.
  const int sampled =
      static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(n)));
  MessagePlaneScratch* plane = ctx_->plane();
  std::vector<SimDuration>& bcast = plane->stage_a;
  ctx_->net()->BroadcastDelaysInto(
      hosts[static_cast<size_t>(sampled)], hosts,
      std::max<int64_t>(kBlockHeaderBytes, built.bytes / n), params.gossip_fanout,
      &plane->broadcast, &bcast);

  std::vector<SimDuration>& delivered = bcast;  // arrival + sharded work, in place
  for (int i = 0; i < n; ++i) {
    if (bcast[static_cast<size_t>(i)] != kUnreachable) {
      delivered[static_cast<size_t>(i)] = per_node_work + bcast[static_cast<size_t>(i)];
    }
  }

  // Binary consensus per proposer, run concurrently: two all-to-all vote
  // rounds over 2f+1 quorums decide the whole batch. Withheld votes leave
  // the sender set; double votes are discarded as evidence.
  ctx_->ApplyVoteAdversaries(&delivered);
  const double hops = GossipHopScale(n);
  std::vector<SimDuration>& echoed = plane->stage_b;
  QuorumArrivalAllInto(ctx_->vote_delays(), delivered, quorum, hops, plane, &echoed,
                       /*hint_slot=*/0);
  ctx_->ApplyVoteAdversaries(&echoed);
  std::vector<SimDuration>& decided = plane->stage_c;
  QuorumArrivalAllInto(ctx_->vote_delays(), echoed, quorum, hops, plane, &decided,
                       /*hint_slot=*/1);

  const SimDuration round_latency = MedianDelayInto(decided, plane);
  if (round_latency == kUnreachable) {
    // The superblock missed its quorum: every mini-block's transactions
    // return to the pool for the next round.
    ctx_->AbandonBlock(built, t0 + params.round_timeout);
    ++ctx_->stats().view_changes;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  // Deterministic finality; every node then executes the union block.
  const SimTime final_time =
      t0 + round_latency + ctx_->ExecAndVerifyTime(built.gas, built.tx_count);
  ctx_->FinalizeBlock(height_, sampled, std::move(built), t0, final_time);
  ++height_;

  const SimTime next = std::max(final_time, t0 + params.block_interval);
  ctx_->ScheduleEngineAt(next, [this] { Round(); });
}

// detlint: parallel-phase(end)

ChainParams RedBellyParams() {
  ChainParams p;
  p.name = "redbelly";
  p.consensus_name = "DBFT";
  p.property = "det.";
  p.vm_name = "geth";  // Smart Red Belly runs EVM smart contracts
  p.dapp_language = "Solidity";
  p.dialect = VmDialect::kGeth;
  p.sig_scheme = SignatureScheme::kEcdsa;
  p.block_interval = Seconds(1);
  p.block_gas_limit = 0;
  p.max_block_txs = 8192;       // superblocks: the union of n mini-blocks
  p.confirmation_depth = 0;     // deterministic finality
  p.mempool.global_cap = 500000;  // bounded pool: sheds load instead of dying
  p.gas_per_sec_per_vcpu = 800e6;
  p.congestion_threshold = 0;   // leaderless: no pending-set scan on the path
  return p;
}

}  // namespace diablo
