// Avalanche Snowball (C-Chain, §5.2): metastable consensus by repeated
// random sampling. A decision needs beta consecutive successful query
// rounds, each querying k random peers and waiting for an alpha fraction of
// replies. The C-Chain throttles block production to a minimum period of
// ~1.9 s with an 8M-gas block cap — the ceiling that keeps Avalanche's
// throughput low regardless of hardware (§6.2) yet insensitive to overload
// (§6.3).
#ifndef SRC_CONSENSUS_AVALANCHE_H_
#define SRC_CONSENSUS_AVALANCHE_H_

#include "src/chain/node.h"

namespace diablo {

class AvalancheEngine : public ConsensusEngine {
 public:
  explicit AvalancheEngine(ChainContext* ctx);

  void Start() override;
  SimDuration MinRescheduleDelay() const override;

 private:
  void ProduceBlock();

  // Time for beta consecutive Snowball query rounds from `node`. A
  // `conflicted` decision (equivocating issuer) needs twice the rounds to
  // re-converge from the metastable split.
  SimDuration DecisionTime(int node, bool conflicted);

  Rng rng_;
  uint64_t height_ = 1;
};

}  // namespace diablo

#endif  // SRC_CONSENSUS_AVALANCHE_H_
