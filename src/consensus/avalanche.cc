#include "src/consensus/avalanche.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace diablo {

AvalancheEngine::AvalancheEngine(ChainContext* ctx)
    : ConsensusEngine(ctx), rng_(ctx->sim()->ForkRng()) {}

void AvalancheEngine::Start() {
  ctx_->ScheduleEngine(ctx_->params().block_interval, [this] { ProduceBlock(); });
}

// Floor over every reschedule path: production is throttled to at least one
// block interval, whether or not a proposer was found.
SimDuration AvalancheEngine::MinRescheduleDelay() const {
  return ctx_->params().block_interval;
}

// Runs on the engine's shard when engine sharding is enabled: the engine is
// the sole window-time owner of the chain context (mempool, ledger, stats,
// message plane, the context and network RNG streams), and every reschedule
// below goes through ScheduleEngine/ScheduleEngineAt with a delay at or
// above MinRescheduleDelay().
// detlint: parallel-phase(begin, avalanche-engine)
SimDuration AvalancheEngine::DecisionTime(int node, bool conflicted) {
  const ChainParams& params = ctx_->params();
  const int n = ctx_->node_count();
  const int k = std::min(params.sample_k, n - 1);
  if (k <= 0) {
    return Milliseconds(1);
  }
  const size_t alpha = std::max<size_t>(
      1, static_cast<size_t>(params.alpha_fraction * static_cast<double>(k)));

  // A conflicting issuance splits the initial preferences, so the counter
  // of consecutive successes has to climb out of the metastable state: the
  // sampling phase runs for twice as many rounds before beta is reached.
  const int rounds = conflicted ? 2 * params.beta : params.beta;
  const bool adversaries = ctx_->AnyAdversary();
  SimDuration total = 0;
  std::vector<SimDuration>& round_trips = ctx_->plane()->round_trips;
  for (int round = 0; round < rounds; ++round) {
    // One query round: ask k random peers, proceed once alpha replied.
    round_trips.clear();
    for (int q = 0; q < k; ++q) {
      const size_t peer = rng_.NextBelow(static_cast<uint64_t>(n));
      SimDuration one_way = ctx_->vote_delays().at(static_cast<size_t>(node), peer);
      if (adversaries && one_way != kUnreachable) {
        // A sampled peer that withholds its chit counts as an unresponsive
        // query; a double-casting peer's extra chit is discarded.
        const uint8_t bits = ctx_->AdversaryBits(static_cast<int>(peer));
        if ((bits & kAdversaryWithhold) != 0) {
          one_way = kUnreachable;
          ++ctx_->stats().votes_withheld;
        } else if ((bits & kAdversaryDoubleVote) != 0) {
          ++ctx_->stats().double_votes_seen;
        }
      }
      round_trips.push_back(one_way == kUnreachable ? Seconds(2) : 2 * one_way);
    }
    std::nth_element(round_trips.begin(),
                     round_trips.begin() + static_cast<long>(alpha - 1),
                     round_trips.end());
    total += round_trips[alpha - 1] + Milliseconds(2);  // reply processing
  }
  return total;
}

void AvalancheEngine::ProduceBlock() {
  const SimTime t0 = ctx_->sim()->Now();
  const ChainParams& params = ctx_->params();
  const int n = ctx_->node_count();
  const auto& hosts = ctx_->hosts();
  // Any live node can issue the next block; sample until one responds.
  int proposer = -1;
  for (int attempt = 0; attempt < n; ++attempt) {
    const int candidate = static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(n)));
    if (!ctx_->NodeDown(candidate) &&
        ctx_->net()->DelaySample(hosts[static_cast<size_t>(candidate)],
                                 hosts[static_cast<size_t>((candidate + 1) % n)],
                                 64) != kUnreachable) {
      proposer = candidate;
      break;
    }
  }
  if (proposer < 0) {
    ctx_->ScheduleEngine(params.block_interval, [this] { ProduceBlock(); });
    return;
  }

  ChainContext::BuiltBlock built = ctx_->BuildBlock(t0, proposer);
  const SimDuration build_time = built.build_time;

  MessagePlaneScratch* plane = ctx_->plane();
  std::vector<SimDuration>& bcast = plane->stage_a;
  ctx_->net()->BroadcastDelaysInto(hosts[static_cast<size_t>(proposer)], hosts,
                                   built.bytes, params.gossip_fanout,
                                   &plane->broadcast, &bcast);
  const SimDuration propagation = MedianDelayInto(bcast, plane);
  const SimDuration verify = ctx_->ExecAndVerifyTime(built.gas, built.tx_count);
  // An equivocating issuer gossips a conflicting sibling block; Snowball
  // resolves the conflict set to one winner — safety holds, convergence
  // just takes longer.
  const bool conflicted = ctx_->ProposerEquivocates(proposer);
  if (conflicted) {
    ctx_->RecordEquivocation();
  }
  const SimDuration decision = DecisionTime(proposer, conflicted);

  const SimTime final_time =
      t0 + build_time + (propagation == kUnreachable ? Seconds(1) : propagation) +
      verify + decision;
  ctx_->FinalizeBlock(height_, proposer, std::move(built), t0, final_time);
  ++height_;

  // Throttled production: at least block_interval (≥ 1.9 s) between blocks,
  // and never before the previous decision completed.
  const SimTime next = std::max(t0 + params.block_interval, final_time);
  ctx_->ScheduleEngineAt(next, [this] { ProduceBlock(); });
}
// detlint: parallel-phase(end)

}  // namespace diablo
