// Solana TowerBFT over proof-of-history (§5.2): a verifiable delay function
// paces fixed 400 ms slots regardless of communication, leaders rotate in
// fixed slot windows, and blocks stream through a Turbine-style gossip
// tree. Because Solana can fork, clients wait for 30 confirmations before
// treating a transaction as final — the dominant term of its ~12 s latency.
#ifndef SRC_CONSENSUS_SOLANA_H_
#define SRC_CONSENSUS_SOLANA_H_

#include "src/chain/node.h"

namespace diablo {

class SolanaEngine : public ConsensusEngine {
 public:
  explicit SolanaEngine(ChainContext* ctx) : ConsensusEngine(ctx) {}

  void Start() override;
  SimDuration MinRescheduleDelay() const override;

 private:
  void Slot();

  uint64_t slot_ = 0;
};

}  // namespace diablo

#endif  // SRC_CONSENSUS_SOLANA_H_
