#include "src/consensus/solana.h"

#include <algorithm>
#include <utility>

namespace diablo {

void SolanaEngine::Start() {
  ctx_->ScheduleEngine(ctx_->params().slot_duration, [this] { Slot(); });
}

// PoH ticks on a fixed cadence: every path reschedules exactly one slot
// ahead.
SimDuration SolanaEngine::MinRescheduleDelay() const {
  return ctx_->params().slot_duration;
}

// Runs on the engine's shard when engine sharding is enabled: the engine is
// the sole window-time owner of the chain context (mempool, ledger, stats,
// message plane, the context and network RNG streams), and every reschedule
// below goes through ScheduleEngine/ScheduleEngineAt with a delay at or
// above MinRescheduleDelay().
// detlint: parallel-phase(begin, solana-engine)
void SolanaEngine::Slot() {
  const SimTime t0 = ctx_->sim()->Now();
  const ChainParams& params = ctx_->params();
  const int n = ctx_->node_count();
  const int leader = static_cast<int>(
      (slot_ / static_cast<uint64_t>(params.leader_window_slots)) %
      static_cast<uint64_t>(n));
  const auto& hosts = ctx_->hosts();

  // A crashed or partitioned leader simply skips its slots; PoH ticks on
  // regardless.
  if (ctx_->NodeDown(leader) ||
      ctx_->net()->DelaySample(hosts[static_cast<size_t>(leader)],
                               hosts[static_cast<size_t>((leader + 1) % n)],
                               64) == kUnreachable) {
    ++ctx_->stats().view_changes;
    ++slot_;
    ctx_->ScheduleEngineAt(t0 + params.slot_duration, [this] { Slot(); });
    return;
  }

  // A leader shredding two conflicting versions of its slot loses to the
  // first-shred-wins rule TowerBFT voters lock on; duplicate-block proofs
  // are gossiped as evidence and the slot proceeds on the winning version.
  if (ctx_->ProposerEquivocates(leader)) {
    ctx_->RecordEquivocation();
  }

  ChainContext::BuiltBlock built = ctx_->BuildBlock(t0, leader);

  // Turbine dissemination runs concurrently with PoH; the slot cadence does
  // not wait for it, but client-visible finality does.
  MessagePlaneScratch* plane = ctx_->plane();
  std::vector<SimDuration>& bcast = plane->stage_a;
  ctx_->net()->BroadcastDelaysInto(hosts[static_cast<size_t>(leader)], hosts,
                                   built.bytes, params.gossip_fanout,
                                   &plane->broadcast, &bcast);
  const SimDuration propagation = MedianDelayInto(bcast, plane);

  // Client commitment: the slot completes, then `confirmation_depth`
  // further slots must land on top (§5.2: 30 confirmations).
  const SimTime final_time =
      t0 + params.slot_duration +
      params.slot_duration * static_cast<SimDuration>(params.confirmation_depth) +
      (propagation == kUnreachable ? Seconds(1) : propagation);
  ctx_->FinalizeBlock(slot_ + 1, leader, std::move(built), t0, final_time);

  ++slot_;
  // PoH keeps ticking: the next slot starts on schedule no matter what.
  ctx_->ScheduleEngineAt(t0 + params.slot_duration, [this] { Slot(); });
}
// detlint: parallel-phase(end)

}  // namespace diablo
