// Leaderless DBFT, modelled on the Red Belly Blockchain the paper cites as
// immune to the §6.3 overload collapse ([40], §6.6): every node contributes
// a mini-block each round, the union is decided through reliable broadcast
// plus binary consensus, and no single leader's uplink or pending-set scan
// is on the critical path. Shipped as an extension chain ("redbelly") —
// the paper discusses it but does not benchmark it.
#ifndef SRC_CONSENSUS_DBFT_H_
#define SRC_CONSENSUS_DBFT_H_

#include "src/chain/node.h"

namespace diablo {

class DbftEngine : public ConsensusEngine {
 public:
  explicit DbftEngine(ChainContext* ctx);

  void Start() override;
  SimDuration MinRescheduleDelay() const override;

 private:
  void Round();

  Rng rng_;
  uint64_t height_ = 1;
};

// The extension chain's parameter sheet (not part of the paper's six).
ChainParams RedBellyParams();

}  // namespace diablo

#endif  // SRC_CONSENSUS_DBFT_H_
