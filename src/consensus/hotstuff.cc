#include "src/consensus/hotstuff.h"

#include <algorithm>
#include <utility>

namespace diablo {

void HotStuffEngine::Start() {
  ctx_->ScheduleEngine(ctx_->params().block_interval, [this] { Round(); });
}

// Floor over every reschedule path: pacemaker view changes wait
// round_timeout and a certified round schedules at or past t0 +
// block_interval.
SimDuration HotStuffEngine::MinRescheduleDelay() const {
  return std::min(ctx_->params().round_timeout, ctx_->params().block_interval);
}

// Runs on the engine's shard when engine sharding is enabled: the engine is
// the sole window-time owner of the chain context (mempool, ledger, stats,
// message plane, the context and network RNG streams), and every reschedule
// below goes through ScheduleEngine/ScheduleEngineAt with a delay at or
// above MinRescheduleDelay().
// detlint: parallel-phase(begin, hotstuff-engine)
void HotStuffEngine::Round() {
  const SimTime t0 = ctx_->sim()->Now();
  const ChainParams& params = ctx_->params();
  const int n = ctx_->node_count();
  const int leader = static_cast<int>(round_ % static_cast<uint64_t>(n));
  const int next_leader = static_cast<int>((round_ + 1) % static_cast<uint64_t>(n));
  const size_t quorum = static_cast<size_t>(ByzantineQuorum(n));
  const auto& hosts = ctx_->hosts();

  // A crashed leader triggers the pacemaker directly: no proposal, view
  // change to the next leader.
  if (ctx_->NodeDown(leader)) {
    ++ctx_->stats().view_changes;
    ++round_;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  // An equivocating leader proposes two blocks for the view; the vote rule
  // ("vote once per view") splits the votes, no quorum certificate forms,
  // and the pacemaker advances past the recorded evidence.
  if (ctx_->ProposerEquivocates(leader)) {
    ctx_->RecordEquivocation();
    ++ctx_->stats().view_changes;
    ++round_;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  // Pacemaker timeout under saturation (Diem's mempool caps keep the
  // pending set bounded, so unlike Quorum this rarely cascades, §6.3).
  const SimDuration pool_scan = ctx_->PoolScanTime();
  if (pool_scan > params.round_timeout) {
    ++ctx_->stats().view_changes;
    ++round_;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  ChainContext::BuiltBlock built = ctx_->BuildBlock(t0, leader);
  const SimDuration build_time = built.build_time;

  // The leader sends the full proposal to every validator itself (star, no
  // relay) — LibraBFT's direct broadcast. Validators verify, then vote to
  // the next leader, which needs a 2f+1 quorum certificate.
  MessagePlaneScratch* plane = ctx_->plane();
  std::vector<SimDuration>& bcast = plane->stage_a;
  ctx_->net()->BroadcastDelaysInto(hosts[static_cast<size_t>(leader)], hosts,
                                   built.bytes, /*fanout=*/n - 1, &plane->broadcast,
                                   &bcast);
  const SimDuration follower_exec = ctx_->ExecAndVerifyTime(built.gas, built.tx_count);
  std::vector<SimDuration>& received = bcast;  // arrival + execution, in place
  for (int i = 0; i < n; ++i) {
    if (bcast[static_cast<size_t>(i)] != kUnreachable) {
      received[static_cast<size_t>(i)] =
          build_time + bcast[static_cast<size_t>(i)] + follower_exec;
    }
  }
  // Withheld votes never reach the next leader's certificate; double votes
  // are discarded as evidence by the one-vote-per-view rule.
  ctx_->ApplyVoteAdversaries(&received);
  const SimDuration qc_at_next_leader =
      QuorumArrivalInto(ctx_->vote_delays(), received,
                        static_cast<size_t>(next_leader), quorum, 1.0, plane);
  if (qc_at_next_leader == kUnreachable) {
    // No quorum certificate: the proposal dies with the view and its
    // transactions return to the pool.
    ctx_->AbandonBlock(built, t0 + params.round_timeout);
    ++ctx_->stats().view_changes;
    ++round_;
    ctx_->ScheduleEngine(params.round_timeout, [this] { Round(); });
    return;
  }

  const SimTime round_end = t0 + qc_at_next_leader;
  pipeline_.push_back(PendingBlock{height_, leader, std::move(built), t0});
  ++height_;
  ++round_;

  // Three-chain commit: the grandparent of the newest certified block is
  // final.
  while (pipeline_.size() >= 3) {
    PendingBlock sealed = std::move(pipeline_.front());
    pipeline_.pop_front();
    ctx_->FinalizeBlock(sealed.height, sealed.proposer, std::move(sealed.built),
                        sealed.proposed_at, round_end);
  }

  const SimTime next = std::max(round_end, t0 + params.block_interval);
  ctx_->ScheduleEngineAt(next, [this] { Round(); });
}
// detlint: parallel-phase(end)

}  // namespace diablo
