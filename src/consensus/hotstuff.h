// HotStuff (Diem, §5.2): pipelined three-phase leader-based BFT. Each round
// a rotating leader broadcasts a proposal directly to all validators and
// collects a quorum certificate at the next leader; a block is final after
// the three-chain rule (two further rounds). Leader rounds are dominated by
// the leader's uplink and the WAN round-trip — the reason Diem shines in a
// single datacenter and degrades on high-RTT networks (§6.2).
#ifndef SRC_CONSENSUS_HOTSTUFF_H_
#define SRC_CONSENSUS_HOTSTUFF_H_

#include <deque>

#include "src/chain/node.h"

namespace diablo {

class HotStuffEngine : public ConsensusEngine {
 public:
  explicit HotStuffEngine(ChainContext* ctx) : ConsensusEngine(ctx) {}

  void Start() override;
  SimDuration MinRescheduleDelay() const override;

 private:
  struct PendingBlock {
    uint64_t height;
    int proposer;
    ChainContext::BuiltBlock built;
    SimTime proposed_at;
  };

  void Round();

  uint64_t round_ = 0;
  uint64_t height_ = 1;
  std::deque<PendingBlock> pipeline_;  // blocks awaiting the 3-chain rule
};

}  // namespace diablo

#endif  // SRC_CONSENSUS_HOTSTUFF_H_
